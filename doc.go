// Package repro is a full reproduction of "RETHINK big: European Roadmap
// for Hardware and Networking Optimizations for Big Data" (DATE 2017) as
// an executable Go toolkit: every subsystem the roadmap analyses —
// datacenter fabrics, SDN/NFV control planes, disaggregated
// infrastructure, heterogeneous accelerators and their economics,
// MapReduce/dataflow/SQL processing layers, heterogeneous scheduling and
// the roadmap process itself (survey corpus → findings → prioritized
// recommendations) — implemented as libraries under internal/, exercised
// by the experiment harnesses in internal/experiments, and reproduced as
// benchmarks in bench_test.go. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
