// Package repro is a full reproduction of "RETHINK big: European Roadmap
// for Hardware and Networking Optimizations for Big Data" (DATE 2017) as
// an executable Go toolkit: every subsystem the roadmap analyses —
// datacenter fabrics, SDN/NFV control planes, disaggregated
// infrastructure, heterogeneous accelerators and their economics,
// MapReduce/dataflow/SQL processing layers, heterogeneous scheduling and
// the roadmap process itself (survey corpus → findings → prioritized
// recommendations) — implemented as libraries under internal/, exercised
// by the experiment harnesses in internal/experiments, and reproduced as
// benchmarks in bench_test.go. The SQL layer is entered through the
// Engine/Session API (sql.NewEngine, Engine.Session, Session.Prepare /
// Query with context cancellation): it executes on a morsel-parallel,
// batch-at-a-time engine (internal/relational) whose inner loops
// delegate to the accelerator building blocks in internal/kernels, and
// scales out shard-parallel across the simulated datacenter fabrics
// (internal/dist over internal/topo + internal/netsim), charging every
// broadcast, shuffle and gather as simulated network flows on the
// engine's one shared simulator — so concurrent sessions contend for
// the fabric exactly as the roadmap's multi-query interference argument
// requires. The fabric carries a programmable control plane
// (netsim.Controller, wired via sql.Config.Controller): between
// admission rounds it observes pending flows and link loads and may
// reroute flows or assign scheduling weights, which the data plane
// honours through weighted max-min fairness; sessions tag their flows
// with QoS classes and weights (Session.Priority / Session.Weight), the
// reference controller lives in internal/sdn (NetController over a
// flow-table with LRU eviction, plus the Baseline / RerouteHotLinks /
// StrictPriority policy catalog — the latter preferring the fabric's
// per-round load-telemetry windows), and every Result reports its
// admission view (rounds joined, barrier wait, class, weight) next to
// its network stats. Compute is heterogeneous the same way the network
// is programmable: internal/exec is the operator-execution seam
// (exec.Device over the internal/hw roofline models, pluggable
// placement policies, per-operator morsel dispatchers with selectivity
// feedback), wired via sql.Config.Devices / Config.Placement /
// Session.Placement, so the batch operators place each morsel on
// whichever modeled device class — SIMD CPU, SIMT GPU, spatial FPGA
// pipeline — the cost model picks, charge the modeled time/energy and
// offload overheads into their stats and Result.Devices, and still
// return rows identical to the homogeneous engine on every path
// (devices model cost, not semantics; distributed shard hosts place
// independently). Memory is budgeted the same way compute is placed:
// sql.Config.MemoryBudget / Config.SpillTier (and their Session
// overrides) cap resident operator state per query — hash-join build
// tables grace-partition, aggregates spill generations of group state,
// sorts go external-run-merge when the relational.MemoryBudget arena
// runs out — with every byte crossing the tier boundary priced by a
// memtier spill device (Recommendation 5's memory wall as a cost
// model: access latency, bandwidth and energy of NVM/SSD/disk) into
// per-operator OpStats.Spill, the query's Result.Spill, and — in
// distributed mode, where each worker host forks its own budget —
// QueryStats.SpillSeconds beside the fabric time; rows stay identical
// to the unbudgeted engine at every budget on every path. Movement is
// pipelined the same way memory is budgeted: sql.Config.PipelineChunkRows
// (and its Session override) splits every distributed movement phase —
// broadcast, repartition shuffle, final gather — into deterministic
// per-source chunks whose fabric flows are admitted as eager netsim
// sub-rounds while consumers digest the previous chunk (hash builds
// fill, partial aggregates fold, the coordinator's sequence merger
// advances), the final gather competing at a boosted QoS weight; the
// overlap is measured, not assumed (QueryStats.ComputeSeconds /
// OverlapSeconds / WallSeconds beside NetSeconds), rows stay identical
// to the bulk engine at every chunk size, and a chunk covering the
// whole payload replays bulk bit-identically. The whole engine is
// servable the same way it is embeddable: internal/serve fronts one
// shared Engine as the multi-tenant rethinkd daemon (cmd/rethinkd) —
// API-key tenants whose configured QoS class, fabric weight, worker and
// memory-budget defaults apply to every query they submit, an HTTP/JSON
// wire surface whose canonical encoding (internal/serve/wire) is shared
// with rethink-sql -json and the rethink-load harness (cmd/rethink-load:
// thousands of concurrent sessions dealt across tenants by share,
// per-tenant wall and modeled latency quantiles, row-fingerprint parity
// against direct library execution), a server-side prepared-statement
// cache keyed by (tenant, statement, session-config) whose entries
// record the engine's catalog epoch at preparation so Engine.Register
// invalidates them by construction, client-disconnect cancellation
// threaded onto the engine's cancel path (a dead client releases its
// admission-barrier slot instead of wedging the round), and graceful
// drain — in-flight queries finish, new ones get 503, orphaned gang
// slots are withdrawn from the shared fabric's barrier, and tenants
// with a configured max-inflight cap are refused with 429 before the
// fabric sees their excess work. The cluster underneath is elastic the
// same way the engine is servable: internal/lifecycle
// (sql.Config.Replication / Config.Faults, rethinkd -replication
// -chaos) replicates every shard across R live hosts, reshapes
// membership at runtime — drain/restore/join with the evacuated bytes
// billed to the fabric as rebalance-class flows, /v1/hosts over the
// wire — and injects deterministic faults (kill mid-phase with
// replica failover and re-shipped recovery, stragglers raced by
// speculative duplicates with first-result-wins, link degradation and
// partitions), pricing survival into QueryStats.RecoverySeconds /
// RetriedFragments / SpeculativeWins while rows stay identical to the
// failure-free run and fault-free clusters replay the static engine
// bit-identically. See README.md
// for the package map, the migration table from the deprecated
// DB/Options API, the control-plane policy catalog, the
// heterogeneous-execution, out-of-core, pipelined-execution, serving
// and elastic-cluster sections, and build, test and benchmark
// instructions.
package repro
