package repro

// Cross-module integration tests: scenarios that thread several substrates
// together in ways no single package test does — the SDN control plane
// feeding the flow simulator, three processing engines cross-checked on
// one dataset, the scheduler driven by the building-block descriptors, and
// the roadmap engine consuming every survey projection.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/sdn"
	"repro/internal/sql"
	"repro/internal/survey"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestSDNRoutedFlowsThroughSimulator installs paths via the controller,
// then replays exactly those paths in the flow simulator: control and data
// plane agree end-to-end, and the simulated shuffle completes.
func TestSDNRoutedFlowsThroughSimulator(t *testing.T) {
	net := topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
	c := sdn.NewController(net, sdn.Reactive, 0)
	s := netsim.NewSimulator(net)
	hosts := net.Hosts()
	flows := 0
	for i, src := range hosts {
		dst := hosts[(i+5)%len(hosts)]
		if src == dst {
			continue
		}
		if _, err := c.FlowSetupUS(src, dst); err != nil {
			t.Fatal(err)
		}
		p, err := c.Forward(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		// The data-plane path must be a valid route of the same topology
		// the simulator prices.
		if p.NodeIDs[0] != src || p.NodeIDs[len(p.NodeIDs)-1] != dst {
			t.Fatalf("controller path endpoints wrong: %v", p.NodeIDs)
		}
		if _, err := s.StartFlow(src, dst, 2e7); err != nil {
			t.Fatal(err)
		}
		flows++
	}
	s.Run()
	if s.FCTs().N() != flows {
		t.Fatalf("completed %d of %d flows", s.FCTs().N(), flows)
	}
	if got := s.BytesDelivered(); got != float64(flows)*2e7 {
		t.Fatalf("bytes delivered = %v", got)
	}
}

// TestThreeEnginesAgreeOnLargeDataset is the full-size version of E8's
// agreement check: SQL, MapReduce and dataflow compute identical
// region-revenue aggregates over 100k rows.
func TestThreeEnginesAgreeOnLargeDataset(t *testing.T) {
	const (
		seed = 1234
		n    = 100000
	)
	sales := workload.Sales(seed, n, 2000)

	// SQL.
	db := sql.NewDB()
	db.Register(sql.SalesRelation(seed, n, 2000))
	res, err := db.Query("SELECT region, SUM(price) AS total FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, row := range res.Rows {
		want[row[0].S] = row[1].F
	}

	// MapReduce.
	mrOut, _, err := mapreduce.Run(mapreduce.Config{MapTasks: 8, ReduceTasks: 4}, sales,
		func(s workload.SalesRow, emit func(string, float64)) { emit(s.Region, s.Price) },
		func(a, b float64) float64 { return a + b },
		func(_ string, vs []float64) float64 {
			tot := 0.0
			for _, v := range vs {
				tot += v
			}
			return tot
		})
	if err != nil {
		t.Fatal(err)
	}

	// Dataflow.
	d := dataflow.FromSlice("sales", sales, 8)
	keyed := dataflow.Map(dataflow.KeyBy(d, func(s workload.SalesRow) string { return s.Region }),
		func(p dataflow.Pair[string, workload.SalesRow]) dataflow.Pair[string, float64] {
			return dataflow.Pair[string, float64]{Key: p.Key, Val: p.Val.Price}
		})
	dfOut, err := dataflow.Collect(dataflow.ReduceByKey(keyed, func(a, b float64) float64 { return a + b }))
	if err != nil {
		t.Fatal(err)
	}

	if len(mrOut) != len(want) {
		t.Fatalf("MapReduce regions = %d, SQL = %d", len(mrOut), len(want))
	}
	for region, total := range want {
		if math.Abs(mrOut[region]-total) > 1e-6*math.Abs(total) {
			t.Fatalf("MapReduce %s = %v, SQL = %v", region, mrOut[region], total)
		}
	}
	seen := 0
	for _, kv := range dfOut {
		total, ok := want[kv.Key]
		if !ok {
			t.Fatalf("dataflow produced unknown region %q", kv.Key)
		}
		if math.Abs(kv.Val-total) > 1e-6*math.Abs(total) {
			t.Fatalf("dataflow %s = %v, SQL = %v", kv.Key, kv.Val, total)
		}
		seen++
	}
	if seen != len(want) {
		t.Fatalf("dataflow regions = %d, want %d", seen, len(want))
	}
}

// TestBuildingBlocksDriveScheduler runs a DAG whose tasks are the actual
// Recommendation-10 block descriptors through every policy and checks the
// schedules remain valid with eligibility constraints (the ASIC only
// accelerates its kernel family).
func TestBuildingBlocksDriveScheduler(t *testing.T) {
	blocks := kernels.Blocks()
	names := []string{"sort", "hash-join", "aggregate", "kmeans", "matmul", "pagerank"}
	dag := &sched.DAG{}
	for i, name := range names {
		task := sched.Task{ID: i, Name: name, Kernel: blocks[name], OutBytes: 1e6}
		if i > 0 {
			task.Deps = []int{i - 1}
		}
		if name == "matmul" || name == "kmeans" {
			// Compute-intense family: may use the ASIC, GPU or CPU.
			task.Eligible = func(d *hw.Device) bool { return d.Class != hw.FPGA }
		}
		dag.Tasks = append(dag.Tasks, task)
	}
	cluster := sched.NewCluster(hw.KitchenSinkNode(), hw.CommodityNode())
	for _, p := range sched.AllPolicies() {
		res, err := sched.Schedule(dag, cluster, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := res.Validate(dag, cluster); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
	// EFT-based scheduling sends matmul to the ASIC (38× faster there).
	res, err := sched.Schedule(dag, cluster, sched.MinMin)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if dag.Tasks[a.Task].Name == "matmul" && a.Ref.Device.Class != hw.ASIC {
			t.Fatalf("matmul scheduled on %v, want asic", a.Ref.Device.Class)
		}
	}
}

// TestRoadmapConsumesProjectedCorpora runs the full pipeline — projected
// survey rates → synthesized corpus → findings → scored recommendations —
// for every year of the roadmap window.
func TestRoadmapConsumesProjectedCorpora(t *testing.T) {
	for year := 2016; year <= 2024; year += 2 {
		spec := survey.DefaultSpec(uint64(year))
		spec.Rates = core.ProjectedRates(year)
		c, err := survey.Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		roadmap, err := core.BuildRoadmap(c, year)
		if err != nil {
			t.Fatal(err)
		}
		if len(roadmap.Recommendations) != 12 {
			t.Fatalf("year %d: %d recommendations", year, len(roadmap.Recommendations))
		}
		for _, rec := range roadmap.Recommendations {
			if rec.Priority <= 0 || rec.Priority > 1 {
				t.Fatalf("year %d rec %d: priority %v", year, rec.ID, rec.Priority)
			}
		}
	}
}
