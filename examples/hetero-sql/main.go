// Example hetero-sql sweeps the heterogeneous execution API across
// placement policies — the RETHINK big roadmap's Section IV.C.3 thesis
// that operators should run on whichever device class a cost model says
// is cheapest, made executable. One scan-heavy workload runs four ways
// on the same engine catalog: every morsel forced onto the modeled CPU,
// GPU and FPGA in turn, then under cost-based auto placement. Rows are
// identical in all four runs (devices model cost, not semantics); what
// changes is the modeled bill.
//
// The sweep's punchline is the roadmap's own: at 2016-era PCIe
// bandwidth, the bandwidth-bound SQL kernels never pay for the
// transfer, so forcing the GPU buys a transfer-dominated slowdown,
// forcing the FPGA thrashes bitstream reconfigurations when adjacent
// morsels want different kernels, and the cost-based policy's real job
// is *refusing* offload — exactly the "accelerators must integrate
// closer to memory and network" argument (Recommendations 4 and 10).
// The per-kernel estimates close with the Pennycook
// performance-portability score, quantifying how far each device class
// sits from the per-kernel optimum. A final distributed act shows each
// simulated worker host placing its shard's morsels independently.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/sql"
)

const (
	rows      = 200000
	customers = 1000
)

const query = "SELECT region, COUNT(*) AS n, SUM(price * (1 - discount)) AS net " +
	"FROM sales WHERE year >= 2013 AND quantity <= 6 GROUP BY region ORDER BY net DESC"

func engine(devices []string, placement string, distributed bool) *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Devices = devices
	cfg.Placement = placement
	if distributed {
		cfg.Distributed = true
		cfg.Shards = 4
		cfg.Topology = "leafspine"
	}
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	return eng
}

func run(eng *sql.Engine) *sql.Result {
	res, err := eng.Session().Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("== Act 1: one workload, four placements ==")
	fmt.Printf("query: %s\n%d sales rows; morsels priced per device via roofline descriptors\n\n", query, rows)

	devices := []string{"cpu", "gpu", "fpga"}
	table := metrics.NewTable("placement sweep (identical rows in every run)",
		"placement", "modeled time", "energy", "xfer", "reconfig", "morsel split")
	var firstRows string
	var cpuSeconds, autoSeconds float64
	for _, placement := range []string{"cpu", "gpu", "fpga", "auto"} {
		res := run(engine(devices, placement, false))
		sig := fmt.Sprintf("%d rows / %v", res.Rows.Len(), res.Rows.Rows[0])
		if firstRows == "" {
			firstRows = sig
		} else if sig != firstRows {
			log.Fatalf("placement %s changed the result: %s vs %s", placement, sig, firstRows)
		}
		var sec, energy, xfer, setup float64
		split := ""
		for _, d := range res.Devices {
			sec += d.Seconds
			energy += d.EnergyJ
			xfer += d.TransferSeconds
			setup += d.SetupSeconds
			if split != "" {
				split += " "
			}
			split += fmt.Sprintf("%s:%d", d.Device, d.Morsels)
		}
		switch placement {
		case "cpu":
			cpuSeconds = sec
		case "auto":
			autoSeconds = sec
		}
		table.AddRow(placement,
			metrics.FormatSeconds(sec), fmt.Sprintf("%.3g J", energy),
			metrics.FormatSeconds(xfer), metrics.FormatSeconds(setup), split)
	}
	fmt.Println(table.Render())
	fmt.Printf("all four placements returned: %s\n", firstRows)
	fmt.Printf("auto vs cpu-only modeled time: %s vs %s (auto never loses — it may refuse offload)\n\n",
		metrics.FormatSeconds(autoSeconds), metrics.FormatSeconds(cpuSeconds))

	fmt.Println("== Act 2: why auto refuses — per-kernel estimates ==")
	morsel := 1 << 20 // a large sort-scale morsel, the offload best case
	kern := []struct {
		name    string
		branchy bool
		desc    func() (k kernelDesc)
	}{
		{"filter", true, func() kernelDesc { return kernelDesc{kernels.FilterDescriptor(morsel, 0.5), 8 * 1.5 * float64(morsel)} }},
		{"sort", false, func() kernelDesc { return kernelDesc{kernels.SortDescriptor(morsel), 16 * float64(morsel)} }},
		{"aggregate", false, func() kernelDesc { return kernelDesc{kernels.AggregateDescriptor(morsel, 64), 8 * float64(morsel)} }},
	}
	est := metrics.NewTable(fmt.Sprintf("per-kernel estimates at %d rows (one-shot)", morsel),
		"kernel", "cpu", "gpu (xfer share)", "fpga (+reconfig)", "perf-portability")
	for _, kk := range kern {
		d := kk.desc()
		cpu := accel.NewCPU().EstimateKernel(d.k, kk.branchy, d.hostBytes)
		gpu := accel.NewGPU().EstimateKernel(d.k, kk.branchy, d.hostBytes)
		fpga := accel.NewFPGA().EstimateKernel(d.k, kk.branchy, d.hostBytes)
		pp := accel.PerformancePortability([]accel.Estimate{cpu, gpu, fpga})
		est.AddRow(kk.name,
			metrics.FormatSeconds(cpu.Seconds),
			fmt.Sprintf("%s (%.0f%%)", metrics.FormatSeconds(gpu.Seconds), 100*gpu.TransferSeconds/gpu.Seconds),
			fmt.Sprintf("%s (+%s)", metrics.FormatSeconds(fpga.Seconds), metrics.FormatSeconds(fpga.SetupSeconds)),
			fmt.Sprintf("%.2f", pp))
	}
	fmt.Println(est.Render())
	fmt.Println("PCIe transfer dominates every GPU estimate: the roadmap's case for tighter integration.")
	fmt.Println()

	fmt.Println("== Act 3: distributed — every worker host places independently ==")
	res := run(engine(devices, "auto", true))
	fmt.Printf("4-shard leafspine run, placement %s:\n", res.Placement)
	for _, d := range res.Devices {
		fmt.Printf("  %s\n", d)
	}
	if res.Net != nil {
		fmt.Printf("network: %s shuffled in %s simulated\n",
			metrics.FormatBytes(res.Net.BytesShuffled), metrics.FormatSeconds(res.Net.NetSeconds))
	}
}

// kernelDesc pairs a roofline descriptor with the host bytes an offload
// of it would move.
type kernelDesc struct {
	k         hw.Kernel
	hostBytes float64
}
