// Quickstart: a five-minute tour of the toolkit. It builds a small
// leaf-spine datacenter, runs a shuffle over it, offloads an analytics
// kernel onto the device catalog, asks the roadmap engine for the top
// recommendation, and prints each result.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/survey"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)

	// 1. A datacenter fabric and a shuffle over it.
	net := topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 2, Spines: 2, HostsPerLeaf: 4,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
	sim := netsim.NewSimulator(net)
	hosts := net.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				if _, err := sim.StartFlow(src, dst, 1e7); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	sim.Run()
	fmt.Printf("shuffle: %d flows, mean FCT %.3fs, max %.3fs\n",
		sim.FCTs().N(), sim.FCTs().Mean(), sim.FCTs().Max())

	// 2. An analytics kernel on the heterogeneous device catalog.
	k := hw.Kernel{Name: "feature-extract", Ops: 5e9, Bytes: 1e8, ParallelFraction: 0.98}
	node := hw.KitchenSinkNode()
	best, speedup := node.BestDevice(k)
	fmt.Printf("kernel %q: best device %s, %.1fx over the host CPU\n", k.Name, best.Name, speedup)

	// 3. The roadmap itself: synthesize the evidence base and ask for the
	// highest-priority recommendation.
	corpus, err := survey.Synthesize(survey.DefaultSpec(2016))
	if err != nil {
		log.Fatal(err)
	}
	roadmap, err := core.BuildRoadmap(corpus, 2016)
	if err != nil {
		log.Fatal(err)
	}
	top := roadmap.Recommendations[0]
	fmt.Printf("top recommendation: #%d %q (priority %.2f, %s)\n",
		top.ID, top.Title, top.Priority, top.Horizon)
}
