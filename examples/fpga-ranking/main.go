// fpga-ranking reproduces the Catapult scenario interactively: a search
// ranking service under Poisson load, with and without FPGA offload of
// the scoring stage, reporting the full latency distribution (the E1
// experiment with tunable parameters).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	servers := flag.Int("servers", 16, "ranking servers")
	rho := flag.Float64("rho", 0.75, "offered utilization of the software system")
	meanMS := flag.Float64("mean-ms", 5, "mean software ranking time (ms)")
	sigma := flag.Float64("sigma", 0.6, "lognormal shape (tail heaviness)")
	scoreFrac := flag.Float64("score-frac", 0.4, "fraction of work the FPGA absorbs")
	accel := flag.Float64("accel", 8, "FPGA speedup on the scoring fraction")
	n := flag.Int("n", 60000, "requests per run")
	flag.Parse()

	run := func(offload bool) *metrics.Sample {
		e := sim.NewEngine()
		st := netsim.NewStation(e, *servers)
		rng := sim.NewRNG(42)
		mean := *meanMS / 1000
		if offload {
			mean *= 1 - *scoreFrac + *scoreFrac / *accel
		}
		lambda := *rho * float64(*servers) / (*meanMS / 1000)
		arr := sim.NewPoisson(rng.Split(), lambda)
		srv := rng.Split()
		mu := math.Log(mean) - *sigma**sigma/2
		t := sim.Time(0)
		for i := 0; i < *n; i++ {
			t += arr.NextGap()
			e.At(t, func() { st.Submit(sim.Time(srv.Lognormal(mu, *sigma)), nil) })
		}
		e.Run()
		return st.Latency()
	}
	sw := run(false)
	fp := run(true)

	tab := metrics.NewTable(
		fmt.Sprintf("Ranking latency (ms), %d servers, ρ=%.2f, %d requests", *servers, *rho, *n),
		"system", "p50", "p95", "p99", "p999")
	ms := func(s float64) string { return fmt.Sprintf("%.2f", s*1000) }
	tab.AddRow("software", ms(sw.P50()), ms(sw.P95()), ms(sw.P99()), ms(sw.P999()))
	tab.AddRow("fpga-offload", ms(fp.P50()), ms(fp.P95()), ms(fp.P99()), ms(fp.P999()))
	fmt.Print(tab.Render())
	fmt.Printf("\nP99 reduction: %.0f%%  (paper's Catapult citation: 29%%)\n",
		(1-fp.P99()/sw.P99())*100)
}
