// disaggregation walks through Section IV.A.3's composable-datacenter
// economics: resource stranding under skewed machine shapes and the
// six-year upgrade bill, monolithic versus pooled.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/disagg"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	servers := flag.Int("servers", 64, "servers' worth of hardware")
	horizon := flag.Float64("years", 6, "upgrade horizon in years")
	flag.Parse()

	spec := disagg.CommodityServer()
	fmt.Printf("server shape: %s @ %.0f EUR\n\n", spec.Shape, spec.PriceEUR)

	shapes := map[string]disagg.Vector{
		"memory-heavy (2c/192G)": disagg.V(2, 192, 1, 1, 0),
		"cpu-heavy (24c/32G)":    disagg.V(24, 32, 1, 2, 0),
		"balanced (8c/64G)":      disagg.V(8, 64, 2, 2, 0),
	}
	tab := metrics.NewTable("Machines granted before the first rejection matters",
		"request shape", "monolithic", "composable", "composable advantage")
	for name, d := range shapes {
		mono := disagg.NewMonolithic(spec, *servers, disagg.BestFit)
		comp := disagg.NewComposableFromServers(spec, *servers)
		gm, gc := 0, 0
		for i := 0; i < 10_000; i++ {
			if _, ok := mono.Allocate(disagg.Request{ID: i, Demand: d}); ok {
				gm++
			}
			if _, ok := comp.Allocate(disagg.Request{ID: i + 100000, Demand: d}); ok {
				gc++
			}
		}
		tab.AddRowf(name, gm, gc, fmt.Sprintf("%+d machines", gc-gm))
	}
	fmt.Print(tab.Render())

	plan := disagg.NewUpgradePlan(spec.PriceEUR, *servers, *horizon)
	delta, ratio := plan.Savings()
	fmt.Printf("\nKeeping %d servers current for %.0f years:\n", *servers, *horizon)
	fmt.Printf("  monolithic (whole-server refresh): %.2f MEUR\n", plan.MonolithicCostEUR()/1e6)
	fmt.Printf("  composable (per-sled refresh):     %.2f MEUR (%.0f%% of monolithic)\n",
		plan.ComposableCostEUR()/1e6, ratio*100)
	if delta > 0 {
		fmt.Printf("  disaggregation saves %.2f MEUR over the horizon\n", delta/1e6)
	} else {
		fmt.Printf("  monolithic wins on this horizon by %.2f MEUR (premium not yet amortized)\n", -delta/1e6)
	}
}
