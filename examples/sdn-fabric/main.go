// sdn-fabric demonstrates the control-plane contrast of Section IV.A.2 on
// a large fat-tree: one logical SDN controller versus box-by-box
// management, including recovery from a spine link failure.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sdn"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	k := flag.Int("k", 16, "fat-tree arity (k=16 → 320 switches, 1024 hosts)")
	flows := flag.Int("flows", 200, "flows to route")
	flag.Parse()

	net := topo.FatTree(*k, topo.Gen40)
	fmt.Printf("fat-tree k=%d: %d switches, %d hosts, %d links\n",
		*k, len(net.Switches()), len(net.Hosts()), len(net.Links))

	c := sdn.NewController(net, sdn.Reactive, 0)
	hosts := net.Hosts()
	for i := 0; i < *flows; i++ {
		src := hosts[(i*37)%len(hosts)]
		dst := hosts[(i*61+19)%len(hosts)]
		if src == dst {
			continue
		}
		if _, err := c.FlowSetupUS(src, dst); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("sdn: %d flows routed with %d control ops, %d rules in the fabric\n",
		*flows, c.ControlOps, c.TotalRules())

	// Fail a core link and watch the controller repair every affected path.
	var failed int = -1
	for _, l := range net.Links {
		if net.Nodes[l.A].Kind != topo.Host && net.Nodes[l.B].Kind != topo.Host {
			failed = l.ID
			break
		}
	}
	rerouted, err := c.FailLink(failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sdn: failed link %d, controller rerouted %d flows centrally\n", failed, rerouted)

	legacy := sdn.NewLegacyFabric(net)
	wallS := legacy.ApplyPolicy(4) / 1e6
	fmt.Printf("legacy: the same fabric-wide change costs %d box sessions — %.0f s of wall clock with 4 operators\n",
		legacy.ControlOps, wallS)
	fmt.Printf("legacy: distributed reconvergence after the failure ≈ %.1f s\n", legacy.Reconverge()/1e6)
}
