// hetsched runs the Recommendation-11 scheduler bake-off on an analytics
// DAG over a heterogeneous cluster and prints the policy comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	log.SetFlags(0)
	stages := flag.Int("stages", 6, "pipeline stages")
	width := flag.Int("width", 8, "parallel tasks per stage")
	nodes := flag.Int("nodes", 6, "cluster nodes (GPU/FPGA/CPU alternating)")
	computeHeavy := flag.Bool("compute-heavy", true, "HPC-style compute-bound kernels")
	seed := flag.Uint64("seed", 17, "DAG generation seed")
	flag.Parse()

	dag := sched.AnalyticsDAG(sched.AnalyticsDAGSpec{
		Seed: *seed, Stages: *stages, WidthPerStage: *width, ComputeHeavy: *computeHeavy,
	})
	cluster := sched.Heterogeneous(*nodes)
	fmt.Printf("%d tasks on %d nodes (%d device instances)\n\n",
		len(dag.Tasks), *nodes, len(cluster.Devices()))

	tab := metrics.NewTable("Scheduling policy comparison",
		"policy", "makespan (s)", "energy (kJ)", "mean device utilization")
	var bestPolicy sched.Policy
	best := -1.0
	for _, p := range sched.AllPolicies() {
		res, err := sched.Schedule(dag, cluster, p)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Validate(dag, cluster); err != nil {
			log.Fatalf("%v produced an invalid schedule: %v", p, err)
		}
		tab.AddRowf(p.String(), res.MakespanS, res.EnergyJ/1000, res.MeanUtilization())
		if best < 0 || res.MakespanS < best {
			best, bestPolicy = res.MakespanS, p
		}
	}
	fmt.Print(tab.Render())
	fmt.Printf("\nfastest policy: %s (%.3f s)\n", bestPolicy, best)
}
