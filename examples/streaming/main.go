// streaming demonstrates the batch/stream duality of Section IV.C.3's
// Spark/Flink discussion: the same tumbling-window aggregation under
// different micro-batch intervals, trading result latency against
// scheduling overhead.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	durationS := flag.Float64("duration", 60, "stream length in seconds")
	rate := flag.Float64("rate", 500, "events per second")
	windowS := flag.Float64("window", 5, "tumbling window (s)")
	flag.Parse()

	// A Poisson event stream over a handful of sensor keys.
	rng := sim.NewRNG(99)
	arr := sim.NewPoisson(rng.Split(), *rate)
	keys := []string{"sensor-a", "sensor-b", "sensor-c", "sensor-d"}
	var events []dataflow.KeyedEvent
	t := 0.0
	for {
		t += float64(arr.NextGap())
		if t > *durationS {
			break
		}
		events = append(events, dataflow.KeyedEvent{
			Key:   keys[rng.Intn(len(keys))],
			Time:  t,
			Value: rng.Range(0, 10),
		})
	}
	fmt.Printf("%d events over %.0fs, %.0f-second tumbling windows\n\n",
		len(events), *durationS, *windowS)

	tab := metrics.NewTable("Micro-batch interval sweep",
		"batch (s)", "batches", "results", "mean latency (s)", "max latency (s)", "overhead (s)")
	// Deliberately misaligned intervals: a window closing mid-batch waits
	// for the batch to finish, so latency tracks the batch length.
	for _, batch := range []float64{3.0, 1.3, 0.7, 0.1} {
		results, stats, err := dataflow.TumblingWindowSum(events, dataflow.MicroBatchConfig{
			WindowS: *windowS, BatchS: batch, PerBatchOverheadS: 0.02,
		})
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRowf(batch, stats.Batches, len(results),
			stats.MeanLatencyS, stats.MaxLatencyS, stats.OverheadS)
	}
	fmt.Print(tab.Render())
	fmt.Println("\nsmaller batches cut emission latency and pay for it in scheduling overhead —")
	fmt.Println("the knob that separates Spark-style micro-batching from Flink-style continuous operators.")
}
