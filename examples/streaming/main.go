// streaming demonstrates continuous queries on the relational engine:
// a Poisson sensor stream appended batch-by-batch to a growing relation
// while a subscribed aggregate emits event-time windows as the
// watermark passes them. The lateness sweep shows the disorder
// tradeoff — absorb more out-of-order events by holding windows open
// longer, or emit eagerly and drop stragglers — and the run closes with
// a parity check against the deprecated micro-batch simulator
// (dataflow.TumblingWindowSum): same events, same windows, identical
// sums on both paths, the engine just also accounts for lateness,
// freshness and spill.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/relational"
	"repro/internal/sim"
	"repro/internal/sql"
	"repro/internal/stream"
)

const contQuery = "SELECT k, SUM(v) AS total, COUNT(*) AS n FROM events GROUP BY k"

func main() {
	log.SetFlags(0)
	durationS := flag.Float64("duration", 60, "stream length in seconds")
	rate := flag.Float64("rate", 500, "events per second")
	windowTicks := flag.Int64("window", 50, "tumbling window length in event-time ticks (10 ticks per second)")
	jitter := flag.Int64("jitter", 4, "max backward event-time disorder in ticks")
	flag.Parse()

	// A Poisson event stream over a handful of sensor keys, quantized to
	// 10 ticks per second, with bounded backward jitter so the arrival
	// order genuinely disagrees with event time.
	rng := sim.NewRNG(99)
	arr := sim.NewPoisson(rng.Split(), *rate)
	keys := []string{"sensor-a", "sensor-b", "sensor-c", "sensor-d"}
	var events []ev
	now := 0.0
	horizon := int64(*durationS) * 10
	for {
		now += float64(arr.NextGap())
		tick := int64(now * 10)
		if tick >= horizon {
			break
		}
		if j := rng.Intn(int(*jitter) + 1); int64(j) <= tick {
			tick -= int64(j)
		}
		events = append(events, ev{
			k: keys[rng.Intn(len(keys))],
			t: tick,
			v: int64(rng.Intn(100)),
		})
	}
	fmt.Printf("%d events over %.0fs (ticks 0..%d, backward jitter <= %d), window %d ticks\n\n",
		len(events), *durationS, horizon-1, *jitter, *windowTicks)

	// Lateness sweep: each run streams the identical events through a
	// fresh engine. Lateness 0 emits the moment the watermark touches a
	// window edge and drops every straggler behind it; absorbing the
	// jitter costs emission delay but loses nothing.
	tab := metrics.NewTable("Lateness sweep (continuous query, identical input)",
		"lateness", "windows", "events", "late", "dropped", "freshness p95 (ms)")
	var zeroDropped map[string]cellKey
	for _, lateness := range []int64{0, *jitter, 4 * *jitter} {
		wins, stats := runContinuous(events, stream.WindowSpec{
			TimeCol: "t", Size: *windowTicks, Lateness: lateness,
		})
		tab.AddRowf(lateness, stats.Windows, stats.Events, stats.Late, stats.Dropped,
			stats.FreshnessP95*1e3)
		if lateness >= *jitter {
			if stats.Dropped != 0 {
				log.Fatalf("lateness %d covers jitter %d but dropped %d events", lateness, *jitter, stats.Dropped)
			}
			cells := collectCells(wins)
			if zeroDropped == nil {
				zeroDropped = cells
			} else if len(cells) != len(zeroDropped) {
				log.Fatalf("drop-free runs disagree: %d vs %d cells", len(cells), len(zeroDropped))
			}
		}
	}
	fmt.Print(tab.Render())
	fmt.Println("\nlateness holds windows open past their end, so nothing bounded by the jitter is lost;")
	fmt.Println("emitting eagerly (lateness 0) trades those stragglers for the freshest possible windows.")

	// Parity with the deprecated micro-batch simulator: sort the same
	// events into time order (the legacy path enforces it), truncate to
	// whole windows (it never emits a final partial window), and compare
	// every (window, key) sum/count.
	sorted := append([]ev(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].t < sorted[j].t })
	cut := (horizon / *windowTicks) * *windowTicks
	var legacyIn []dataflow.KeyedEvent
	var engineIn []ev
	for _, e := range sorted {
		if e.t >= cut {
			continue
		}
		legacyIn = append(legacyIn, dataflow.KeyedEvent{Key: e.k, Time: float64(e.t), Value: float64(e.v)})
		engineIn = append(engineIn, e)
	}
	results, mbStats, err := dataflow.TumblingWindowSum(legacyIn, dataflow.MicroBatchConfig{
		WindowS: float64(*windowTicks), BatchS: 1, PerBatchOverheadS: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	legacy := map[string]cellKey{}
	for _, r := range results {
		legacy[fmt.Sprintf("%d|%s", int64(r.WindowStart), r.Key)] = cellKey{sum: int64(r.Sum), count: int64(r.Count)}
	}
	wins, _ := runContinuous(engineIn, stream.WindowSpec{TimeCol: "t", Size: *windowTicks, Lateness: *jitter})
	engine := collectCells(wins)
	if len(engine) != len(legacy) {
		log.Fatalf("parity: engine %d cells, micro-batch %d", len(engine), len(legacy))
	}
	for k, lc := range legacy {
		if engine[k] != lc {
			log.Fatalf("parity: cell %s: engine %+v, micro-batch %+v", k, engine[k], lc)
		}
	}
	fmt.Printf("\nparity: %d (window, key) cells identical between the engine's continuous query\n", len(engine))
	fmt.Printf("and the deprecated micro-batch simulator (%d micro-batches, %.1fs modeled overhead) —\n",
		mbStats.Batches, mbStats.OverheadS)
	fmt.Println("dataflow.TumblingWindowSum survives only as this reference; new code subscribes to the engine.")
}

type ev struct {
	k string
	t int64
	v int64
}

type cellKey struct{ sum, count int64 }

// runContinuous streams events through a fresh engine under contQuery
// and returns the emitted windows plus the subscription stats.
func runContinuous(events []ev, spec stream.WindowSpec) ([]stream.Window, stream.Stats) {
	eng, err := sql.NewEngine(sql.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng.Register(relational.NewRelation("events", relational.Schema{
		{Name: "k", Type: relational.String},
		{Name: "t", Type: relational.Int},
		{Name: "v", Type: relational.Int},
	}))
	sess := eng.Session()
	sub, err := sess.Subscribe(context.Background(), contQuery, spec)
	if err != nil {
		log.Fatal(err)
	}
	src, err := sess.StreamSource("events")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		defer src.Close()
		const batch = 512
		for off := 0; off < len(events); off += batch {
			end := off + batch
			if end > len(events) {
				end = len(events)
			}
			rows := make([]relational.Row, 0, end-off)
			for _, e := range events[off:end] {
				rows = append(rows, relational.Row{
					relational.StringV(e.k), relational.IntV(e.t), relational.IntV(e.v),
				})
			}
			if err := src.Append(rows...); err != nil {
				log.Fatal(err)
			}
		}
	}()
	var wins []stream.Window
	for w := range sub.Out() {
		wins = append(wins, w)
	}
	if err := sub.Err(); err != nil {
		log.Fatal(err)
	}
	return wins, sub.Stats()
}

// collectCells flattens windows into (windowStart|key) -> sum/count.
func collectCells(wins []stream.Window) map[string]cellKey {
	out := map[string]cellKey{}
	for _, w := range wins {
		for _, row := range w.Rows.Rows {
			out[fmt.Sprintf("%d|%s", w.Start, row[0].S)] = cellKey{sum: row[1].I, count: row[2].I}
		}
	}
	return out
}
