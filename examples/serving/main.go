// Example serving boots the multi-tenant serving front door in-process
// and drives it with the load harness: one shared sql.Engine behind the
// rethinkd HTTP surface, two tenants at fabric weight 3:1 ("gold" in
// the interactive class, "bronze" best-effort), and one gang-announced
// wave of concurrent sessions so every query verifiably contends in the
// same admission round.
//
// The point the numbers make is the serving restatement of the
// concurrent-sql example: under identical statements and identical
// contention, the weight-3 tenant's modeled latency distribution (the
// simulated fabric wall time the server reports per query) sits
// measurably below the weight-1 tenant's, the plan cache serves every
// repeat submission, and the rows every session saw are byte-identical
// to direct library execution — QoS shapes *when*, never *what*.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/serve"
	"repro/internal/sql"
)

const (
	rows      = 20000
	customers = 400
	shards    = 4
	sessions  = 200
)

func engine() *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = "leafspine"
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	return eng
}

func main() {
	srv := serve.New(engine(), serve.DefaultTenants(), serve.Options{})
	fmt.Printf("serving: in-process rethinkd over %d demo rows, %d shards; gold weight 3 (interactive) vs bronze weight 1\n\n", rows, shards)

	report, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Handler:           srv.Handler(),
		Sessions:          sessions,
		QueriesPerSession: 2,
		Prepare:           true,
		Gang:              true,
		Tenants: []serve.LoadTenant{
			{Name: "gold", APIKey: "gold-key", Share: 1},
			{Name: "bronze", APIKey: "bronze-key", Share: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())
	if report.TotalErrors > 0 {
		log.Fatalf("%d queries failed", report.TotalErrors)
	}

	gold, bronze := report.Tenants["gold"], report.Tenants["bronze"]
	fmt.Printf("\nweighted QoS, served: gold model p95 %.2f ms vs bronze %.2f ms (%.2fx)\n",
		gold.Model.P95, bronze.Model.P95, bronze.Model.P95/gold.Model.P95)
	if gold.Model.P95 >= bronze.Model.P95 {
		log.Fatal("expected the weight-3 tenant's model p95 below the weight-1 tenant's")
	}

	if err := serve.VerifyAgainstEngine(report, engine()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verify: every session's rows identical to direct library execution")
}
