// sql-analytics shows Section IV.C.1's abstraction stack end-to-end: the
// same revenue-by-segment analytics expressed as a SQL query (with the
// optimizer visible via EXPLAIN) and as a dataflow pipeline, with the
// results cross-checked.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dataflow"
	"repro/internal/sql"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		seed      = 42
		salesRows = 30000
		customers = 400
	)

	// --- Declarative: SQL with the optimizer on.
	db := sql.DemoDB(seed, salesRows, customers)
	query := `SELECT c.segment, SUM(s.price * (1 - s.discount)) AS revenue
	          FROM sales s JOIN customers c ON s.customer_id = c.customer_id
	          WHERE s.year >= 2012
	          GROUP BY c.segment ORDER BY revenue DESC`
	plan, err := db.Plan(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EXPLAIN:")
	fmt.Println(plan.Explain())
	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL result:")
	sqlRev := map[string]float64{}
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %12.2f\n", row[0].S, row[1].F)
		sqlRev[row[0].S] = row[1].F
	}

	// --- Same query on the serial row engine: the batch engine must agree.
	serialDB := sql.DemoDB(seed, salesRows, customers)
	serialDB.Opt.Parallel = false
	serialRes, err := serialDB.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	if len(serialRes.Rows) != len(res.Rows) {
		log.Fatalf("engine mismatch: %d parallel rows vs %d serial rows", len(res.Rows), len(serialRes.Rows))
	}
	for i, row := range serialRes.Rows {
		if row[0].S != res.Rows[i][0].S || math.Abs(row[1].F-res.Rows[i][1].F) > 1e-6*math.Abs(row[1].F) {
			log.Fatalf("engine mismatch at row %d: %v vs %v", i, res.Rows[i], row)
		}
	}
	fmt.Println("\nbatch engine matches row-at-a-time engine ✓")

	// --- The same analytics as an explicit dataflow pipeline.
	sales := workload.Sales(seed, salesRows, customers)
	custs := workload.Customers(seed+1, customers)
	salesDS := dataflow.FromSlice("sales", sales, 8)
	filtered := dataflow.Filter(salesDS, func(s workload.SalesRow) bool { return s.Year >= 2012 })
	bySale := dataflow.Map(dataflow.KeyBy(filtered, func(s workload.SalesRow) int64 { return s.CustomerID }),
		func(p dataflow.Pair[int64, workload.SalesRow]) dataflow.Pair[int64, float64] {
			return dataflow.Pair[int64, float64]{Key: p.Key, Val: p.Val.Price * (1 - p.Val.Discount)}
		})
	custDS := dataflow.KeyBy(dataflow.FromSlice("customers", custs, 8),
		func(c workload.CustomerRow) int64 { return c.CustomerID })
	joined := dataflow.Join(bySale, custDS)
	seg := dataflow.Map(joined, func(p dataflow.Pair[int64, dataflow.Joined[float64, workload.CustomerRow]]) dataflow.Pair[string, float64] {
		return dataflow.Pair[string, float64]{Key: p.Val.Right.Segment, Val: p.Val.Left}
	})
	out, err := dataflow.Collect(dataflow.ReduceByKey(seg, func(a, b float64) float64 { return a + b }))
	if err != nil {
		log.Fatal(err)
	}
	stages, tasks, shuffled := salesDS.M.Snapshot()
	fmt.Printf("\ndataflow: %d stages, %d tasks, %d records shuffled\n", stages, tasks, shuffled)

	// --- Cross-check.
	for _, kv := range out {
		want := sqlRev[kv.Key]
		if math.Abs(kv.Val-want) > 1e-6*math.Abs(want) {
			log.Fatalf("MISMATCH %s: dataflow %.2f vs sql %.2f", kv.Key, kv.Val, want)
		}
	}
	fmt.Println("dataflow result matches SQL exactly ✓")
}
