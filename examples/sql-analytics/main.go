// sql-analytics shows Section IV.C.1's abstraction stack end-to-end: the
// same revenue-by-segment analytics expressed as a SQL query (with the
// optimizer visible via EXPLAIN) and as a dataflow pipeline, with the
// results cross-checked.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/dataflow"
	"repro/internal/sql"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		seed      = 42
		salesRows = 30000
		customers = 400
	)
	ctx := context.Background()

	// --- Declarative: SQL with the optimizer on, through Engine/Session.
	eng, err := sql.NewEngine(sql.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, seed, salesRows, customers)
	query := `SELECT c.segment, SUM(s.price * (1 - s.discount)) AS revenue
	          FROM sales s JOIN customers c ON s.customer_id = c.customer_id
	          WHERE s.year >= 2012
	          GROUP BY c.segment ORDER BY revenue DESC`
	// Prepare once: the same statement re-executes below on demand.
	stmt, err := eng.Session().Prepare(query)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stmt.Exec(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EXPLAIN:")
	fmt.Println(res.Explain())
	fmt.Println("\nSQL result:")
	sqlRev := map[string]float64{}
	for _, row := range res.Rows.Rows {
		fmt.Printf("  %-12s %12.2f\n", row[0].S, row[1].F)
		sqlRev[row[0].S] = row[1].F
	}
	fmt.Printf("\noperator stats: scanned %d sales rows, aggregated to %d groups\n",
		res.Ops["scan:s"].RowsOut, res.Ops["agg"].RowsOut)

	// --- Same query on the serial row engine: the batch engine must agree.
	serialCfg := sql.DefaultConfig()
	serialCfg.Parallel = false
	serialEng, err := sql.NewEngine(serialCfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(serialEng, seed, salesRows, customers)
	serialRes, err := serialEng.Session().Query(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	if serialRes.Rows.Len() != res.Rows.Len() {
		log.Fatalf("engine mismatch: %d parallel rows vs %d serial rows", res.Rows.Len(), serialRes.Rows.Len())
	}
	for i, row := range serialRes.Rows.Rows {
		if row[0].S != res.Rows.Rows[i][0].S || math.Abs(row[1].F-res.Rows.Rows[i][1].F) > 1e-6*math.Abs(row[1].F) {
			log.Fatalf("engine mismatch at row %d: %v vs %v", i, res.Rows.Rows[i], row)
		}
	}
	fmt.Println("batch engine matches row-at-a-time engine ✓")

	// --- Prepared statements re-execute with fresh stats every run.
	again, err := stmt.Exec(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if again.Rows.Len() != res.Rows.Len() || again.Ops["scan:s"].RowsOut != res.Ops["scan:s"].RowsOut {
		log.Fatalf("prepared re-execution diverged: %d rows, %d scanned",
			again.Rows.Len(), again.Ops["scan:s"].RowsOut)
	}
	fmt.Println("prepared statement re-executed with fresh stats ✓")

	// --- The same analytics as an explicit dataflow pipeline.
	sales := workload.Sales(seed, salesRows, customers)
	custs := workload.Customers(seed+1, customers)
	salesDS := dataflow.FromSlice("sales", sales, 8)
	filtered := dataflow.Filter(salesDS, func(s workload.SalesRow) bool { return s.Year >= 2012 })
	bySale := dataflow.Map(dataflow.KeyBy(filtered, func(s workload.SalesRow) int64 { return s.CustomerID }),
		func(p dataflow.Pair[int64, workload.SalesRow]) dataflow.Pair[int64, float64] {
			return dataflow.Pair[int64, float64]{Key: p.Key, Val: p.Val.Price * (1 - p.Val.Discount)}
		})
	custDS := dataflow.KeyBy(dataflow.FromSlice("customers", custs, 8),
		func(c workload.CustomerRow) int64 { return c.CustomerID })
	joined := dataflow.Join(bySale, custDS)
	seg := dataflow.Map(joined, func(p dataflow.Pair[int64, dataflow.Joined[float64, workload.CustomerRow]]) dataflow.Pair[string, float64] {
		return dataflow.Pair[string, float64]{Key: p.Val.Right.Segment, Val: p.Val.Left}
	})
	out, err := dataflow.Collect(dataflow.ReduceByKey(seg, func(a, b float64) float64 { return a + b }))
	if err != nil {
		log.Fatal(err)
	}
	stages, tasks, shuffled := salesDS.M.Snapshot()
	fmt.Printf("\ndataflow: %d stages, %d tasks, %d records shuffled\n", stages, tasks, shuffled)

	// --- Cross-check.
	for _, kv := range out {
		want := sqlRev[kv.Key]
		if math.Abs(kv.Val-want) > 1e-6*math.Abs(want) {
			log.Fatalf("MISMATCH %s: dataflow %.2f vs sql %.2f", kv.Key, kv.Val, want)
		}
	}
	fmt.Println("dataflow result matches SQL exactly ✓")
}
