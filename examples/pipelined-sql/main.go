// Example pipelined-sql demonstrates pipelined distributed execution —
// overlapping compute with network movement by splitting every bulk
// phase into chunked sub-rounds. A shuffle-heavy join runs on an
// 8-shard leaf-spine cluster across a chunk-size sweep, from the bulk
// engine (chunk size "infinity") down to 128-row chunks. At every
// chunk size the rows are identical — chunk boundaries come from
// deterministic #seq ranks, so chunking models cost, not semantics —
// while the per-query stats show the measured overlap: consumer
// compute (hash builds filling, partials folding, the coordinator
// merge advancing) hides under the next chunk's in-flight flows, and
// the modeled wall time drops below bulk's net+compute serial sum.
//
// Act 2 streams a full-table ordered gather through the coordinator's
// sequence merger, with the gather phase competing at boosted QoS
// weight, and closes with the degenerate case: one chunk larger than
// the payload replays the bulk phase bit-for-bit — same rows, same
// network floats, zero overlap.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/sql"
)

// A fact table big enough that the repartition shuffle dominates the
// fabric, over a dimension small enough that the final gather is tiny:
// the shape where pipelining pays.
const (
	rows      = 1 << 17
	customers = 2000
	shards    = 8
)

const joinQuery = "SELECT c.segment, COUNT(*) AS n, SUM(s.price) AS v " +
	"FROM sales s JOIN customers c ON s.customer_id = c.customer_id " +
	"GROUP BY c.segment ORDER BY v DESC"

const gatherQuery = "SELECT order_id, price FROM sales ORDER BY order_id"

func engine(chunkRows int) *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = "leafspine"
	cfg.DistJoin = "repartition"
	cfg.PipelineChunkRows = chunkRows
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	return eng
}

func run(eng *sql.Engine, q string) *sql.Result {
	res, err := eng.Session().Query(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// signature fingerprints a result's rows for the parity assertion.
func signature(res *sql.Result) string {
	return fmt.Sprintf("%d rows / %v", res.Rows.Len(), res.Rows.Rows)
}

func main() {
	fmt.Println("== Act 1: shuffle-heavy join, chunk-size sweep ==")
	fmt.Printf("%d sales rows x %d customers, %d shards, leaf-spine, repartition join\n\n", rows, customers, shards)

	bulk := run(engine(0), joinQuery)
	ref := signature(bulk)
	bulkNet := bulk.Net.NetSeconds

	table := metrics.NewTable(fmt.Sprintf("join: %s", joinQuery),
		"chunk rows", "chunks", "net", "compute", "overlap", "wall", "speedup")
	table.AddRow("bulk", "-", metrics.FormatSeconds(bulkNet), "-", "-", "-", "-")
	for _, chunk := range []int{1 << 30, 8192, 1024, 128} {
		res := run(engine(chunk), joinQuery)
		if sig := signature(res); sig != ref {
			log.Fatalf("chunk %d changed the result:\n%s\nvs\n%s", chunk, sig, ref)
		}
		st := res.Net
		// Bulk's wall is its net time plus the same consumer compute done
		// serially after each phase; the pipelined run's compute sum is
		// chunk-invariant, so it prices that serial term exactly.
		bulkWall := bulkNet + st.ComputeSeconds
		name := fmt.Sprintf("%d", chunk)
		if chunk == 1<<30 {
			name = "2^30 (one chunk)"
		}
		chunks := 0
		for _, p := range st.Phases {
			chunks += p.Chunks
		}
		table.AddRow(name, fmt.Sprintf("%d", chunks),
			metrics.FormatSeconds(st.NetSeconds),
			metrics.FormatSeconds(st.ComputeSeconds),
			metrics.FormatSeconds(st.OverlapSeconds),
			metrics.FormatSeconds(st.WallSeconds()),
			fmt.Sprintf("%.2fx", bulkWall/st.WallSeconds()))
	}
	fmt.Println(table.Render())
	fmt.Println("rows identical at every chunk size; finer chunks hide more compute under in-flight flows")
	fmt.Println()

	fmt.Println("== Act 2: streamed ordered gather, and the bulk-identical edge ==")
	gBulk := run(engine(0), gatherQuery)
	gPipe := run(engine(1024), gatherQuery)
	if signature(gPipe) != signature(gBulk) {
		log.Fatal("pipelined gather changed the result")
	}
	fmt.Printf("gather %s into the coordinator's sequence merger (gather flows at %dx weight):\n",
		metrics.FormatBytes(gPipe.Net.BytesShuffled), 4)
	fmt.Printf("  chunk 1024: net %s, compute %s, overlap %s -> wall %s\n",
		metrics.FormatSeconds(gPipe.Net.NetSeconds), metrics.FormatSeconds(gPipe.Net.ComputeSeconds),
		metrics.FormatSeconds(gPipe.Net.OverlapSeconds), metrics.FormatSeconds(gPipe.Net.WallSeconds()))

	gOne := run(engine(1<<30), gatherQuery)
	if signature(gOne) != signature(gBulk) {
		log.Fatal("single-chunk gather changed the result")
	}
	if gOne.Net.NetSeconds != gBulk.Net.NetSeconds || gOne.Net.BytesShuffled != gBulk.Net.BytesShuffled {
		log.Fatalf("single-chunk run diverged from bulk: net %v vs %v, bytes %v vs %v",
			gOne.Net.NetSeconds, gBulk.Net.NetSeconds, gOne.Net.BytesShuffled, gBulk.Net.BytesShuffled)
	}
	if gOne.Net.OverlapSeconds != 0 {
		log.Fatalf("one chunk cannot overlap, got %v", gOne.Net.OverlapSeconds)
	}
	fmt.Printf("  chunk 2^30:  one chunk per phase replays bulk bit-identically (net %s, overlap 0)\n",
		metrics.FormatSeconds(gOne.Net.NetSeconds))
}
