// Example chaos-sql demonstrates the elastic cluster lifecycle: shard
// replication, deterministic fault injection, and measured recovery.
//
// Act 1 is the headline: the same shuffle-heavy join runs on two
// replication-2 clusters, one failure-free and one whose worker 1 is
// killed halfway through the first movement phase. The rows come back
// identical — the dead worker's fragments re-dispatch to surviving
// replicas and its lost flows re-ship — and the faulted run's stats
// price the recovery (re-shipped bytes, retried fragments, modeled
// recovery seconds) instead of hiding it.
//
// Act 2 injects a straggler: one worker is slowed past the speculation
// threshold, a duplicate fragment races it, and the first result wins —
// same rows, nonzero speculative wins. Act 3 partitions a worker and
// shows the query pay for crossing the cut. Act 4 drains a worker, then
// annexes a spare host, with every byte of rebalanced state charged to
// the fabric. Act 5 shows why replication matters: the same kill on a
// replication-1 cluster loses data and fails loudly, and the engine
// keeps serving afterwards.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/sql"
)

const (
	rows      = 1 << 15
	customers = 1000
	shards    = 4
)

const query = "SELECT c.segment, COUNT(*) AS n, SUM(s.price) AS v " +
	"FROM sales s JOIN customers c ON s.customer_id = c.customer_id " +
	"GROUP BY c.segment ORDER BY v DESC"

func engine(replication int, chaos string) *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = "leafspine"
	cfg.DistJoin = "repartition"
	cfg.Replication = replication
	if chaos != "" {
		plan, err := lifecycle.ParsePlan(chaos, shards)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	return eng
}

func run(eng *sql.Engine) *sql.Result {
	res, err := eng.Session().Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// signature fingerprints a result's rows for the parity assertions.
func signature(res *sql.Result) string {
	return fmt.Sprintf("%d rows / %v", res.Rows.Len(), res.Rows.Rows)
}

func main() {
	fmt.Println("== Act 1: kill a worker mid-shuffle, recover from replicas ==")
	fmt.Printf("%d sales rows x %d customers, %d shards, leaf-spine, replication 2\n\n", rows, customers, shards)

	clean := run(engine(2, ""))
	ref := signature(clean)

	killed := run(engine(2, "kill:1@0:0.5"))
	if signature(killed) != ref {
		log.Fatalf("kill changed the result:\n%s\nvs\n%s", signature(killed), ref)
	}
	if killed.Net.RetriedFragments == 0 || killed.Net.RecoverySeconds <= 0 {
		log.Fatalf("kill run reported no recovery: %d fragments retried, %v recovery seconds",
			killed.Net.RetriedFragments, killed.Net.RecoverySeconds)
	}
	fmt.Printf("clean run:  net %s, no recovery\n", metrics.FormatSeconds(clean.Net.NetSeconds))
	fmt.Printf("worker 1 killed 50%% through the shuffle:\n")
	fmt.Printf("  rows identical to the failure-free run\n")
	fmt.Printf("  net %s, recovery %s modeled, %d fragment(s) re-dispatched to surviving replicas\n\n",
		metrics.FormatSeconds(killed.Net.NetSeconds),
		metrics.FormatSeconds(killed.Net.RecoverySeconds), killed.Net.RetriedFragments)

	fmt.Println("== Act 2: straggler vs speculative duplicate ==")
	slow := run(engine(2, "slow:2@0:4"))
	if signature(slow) != ref {
		log.Fatalf("speculation changed the result:\n%s\nvs\n%s", signature(slow), ref)
	}
	if slow.Net.SpeculativeWins == 0 {
		log.Fatal("straggling worker produced no speculative wins")
	}
	fmt.Printf("worker 2 straggling 4x: %d speculative duplicate(s) won the race, rows identical\n\n",
		slow.Net.SpeculativeWins)

	fmt.Println("== Act 3: partition a worker, pay for crossing the cut ==")
	parted := run(engine(2, "partition:3@0"))
	if signature(parted) != ref {
		log.Fatalf("partition changed the result:\n%s\nvs\n%s", signature(parted), ref)
	}
	if parted.Net.NetSeconds <= clean.Net.NetSeconds {
		log.Fatalf("partitioned run was not slower: %v vs clean %v",
			parted.Net.NetSeconds, clean.Net.NetSeconds)
	}
	fmt.Printf("worker 3 cut off from phase 0: net %s vs clean %s — every byte across the cut priced up\n\n",
		metrics.FormatSeconds(parted.Net.NetSeconds), metrics.FormatSeconds(clean.Net.NetSeconds))

	fmt.Println("== Act 4: drain a worker, annex a spare host ==")
	eng := engine(2, "")
	lcm := eng.Lifecycle()
	// A first query shards the tables onto the workers — until then
	// there is no placed state for a drain to move.
	if sig := signature(run(eng)); sig != ref {
		log.Fatalf("warm-up run changed the result:\n%s\nvs\n%s", sig, ref)
	}
	if err := eng.DrainHost(1); err != nil {
		log.Fatal(err)
	}
	h := lcm.Health()
	if h.Drained != 1 || h.RebalancedBytes <= 0 {
		log.Fatalf("drain moved nothing: %+v", h)
	}
	fmt.Printf("drained worker 1: %s rebalanced in %s (generation %d)\n",
		metrics.FormatBytes(h.RebalancedBytes), metrics.FormatSeconds(h.RebalanceSeconds), h.Generation)
	if sig := signature(run(eng)); sig != ref {
		log.Fatalf("drained cluster changed the result:\n%s\nvs\n%s", sig, ref)
	}
	newWorker, err := eng.JoinHost()
	if err != nil {
		log.Fatal(err)
	}
	h = lcm.Health()
	fmt.Printf("annexed a spare host as worker %d: %d live of %d workers, %d spare(s) left\n",
		newWorker, h.Live, h.Workers, h.Spares)
	if sig := signature(run(eng)); sig != ref {
		log.Fatalf("grown cluster changed the result:\n%s\nvs\n%s", sig, ref)
	}
	fmt.Println("rows identical across drain and join")
	fmt.Println()

	fmt.Println("== Act 5: the same kill without replication loses data ==")
	solo := engine(1, "kill:1@0:0.5")
	if _, err := solo.Session().Query(context.Background(), query); err == nil {
		log.Fatal("replication-1 kill should have failed")
	} else {
		fmt.Printf("replication 1: %v\n", err)
	}
	// The cluster is degraded, not the engine: later fault-free queries
	// against the surviving shards' tables would still plan. The headline
	// stands — replication 2 survived the identical fault with identical
	// rows and an honest recovery bill.
	fmt.Println("replication 2 survived the identical fault — that is the whole point")
}
