// Example outofcore-sql sweeps the out-of-core execution API down the
// memory wall — the RETHINK big roadmap's Recommendation 5 thesis that
// once datasets outgrow the memory budget, the storage hierarchy's
// latency, bandwidth and energy shape the engine, made executable. One
// analytics workload (a join, a group-by and a full sort) runs under a
// shrinking operator-state budget, from "everything fits" down to 5% of
// the working set. At every step the rows are identical — the budget
// models cost, not semantics — while the spill report shows the engine
// degrading gracefully: hash joins grace-partition their build tables,
// aggregates spill generations of group state, sorts switch to external
// run merging, and every byte crossing the tier boundary is priced by
// the memtier spill device (access latency + bandwidth + energy).
//
// A second act prices the same overflow against each spill tier — NVM,
// SSD, spinning disk — reproducing the roadmap's storage-hierarchy
// argument as a cost cliff: the same partitions cost orders of
// magnitude more time on media further from DRAM. The finale runs the
// sweep distributed, each simulated worker host spilling against its
// own forked budget, with the modeled tier I/O reported beside the
// fabric time.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/sql"
)

// A wide customer dimension makes the join's build table and the
// per-customer group state a real fraction of the working set — the
// out-of-core boundary has to be somewhere a budget sweep can cross.
const (
	rows      = 120000
	customers = 60000
)

var queries = []struct{ name, q string }{
	{"join", "SELECT c.segment, COUNT(*) AS n, SUM(s.quantity) AS qty " +
		"FROM sales s JOIN customers c ON s.customer_id = c.customer_id " +
		"WHERE s.year >= 2012 GROUP BY c.segment ORDER BY qty DESC"},
	{"group-by", "SELECT customer_id, COUNT(*) AS n, SUM(quantity) AS qty " +
		"FROM sales GROUP BY customer_id ORDER BY qty DESC, customer_id LIMIT 10"},
	{"sort", "SELECT product, price, quantity FROM sales ORDER BY price DESC, quantity LIMIT 10"},
}

func engine(budget int64, tier string, distributed bool) *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.MemoryBudget = budget
	cfg.SpillTier = tier
	if distributed {
		cfg.Distributed = true
		cfg.Shards = 4
		cfg.Topology = "leafspine"
	}
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	return eng
}

func run(eng *sql.Engine, q string) *sql.Result {
	res, err := eng.Session().Query(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// signature fingerprints a result's rows for the parity assertion.
func signature(res *sql.Result) string {
	return fmt.Sprintf("%d rows / %v", res.Rows.Len(), res.Rows.Rows)
}

func main() {
	// The working set is the fact table's serialized size: the sort
	// materializes all of it, and the join/aggregate state scales with
	// it, so budget fractions of it sweep every operator across its
	// in-memory/out-of-core boundary.
	ref := engine(0, "", false)
	sales, _ := ref.Table("sales")
	workingSet := int64(sales.EncodedBytes())

	fmt.Println("== Act 1: one workload, shrinking memory budget ==")
	fmt.Printf("%d sales rows, working set %s; spill tier ssd\n\n", rows, metrics.FormatBytes(float64(workingSet)))

	refSig := make(map[string]string, len(queries))
	for _, qq := range queries {
		refSig[qq.name] = signature(run(ref, qq.q))
	}

	for _, qq := range queries {
		table := metrics.NewTable(fmt.Sprintf("%s: %s", qq.name, qq.q),
			"budget", "partitions", "spilled", "write", "read", "energy")
		for _, frac := range []float64{1.0, 0.5, 0.25, 0.1, 0.05} {
			budget := int64(float64(workingSet) * frac)
			res := run(engine(budget, "ssd", false), qq.q)
			if sig := signature(res); sig != refSig[qq.name] {
				log.Fatalf("%s: budget %.0f%% changed the result:\n%s\nvs\n%s", qq.name, frac*100, sig, refSig[qq.name])
			}
			sp := res.Spill
			table.AddRow(fmt.Sprintf("%3.0f%% (%s)", frac*100, metrics.FormatBytes(float64(budget))),
				fmt.Sprintf("%d", sp.Partitions),
				metrics.FormatBytes(float64(sp.SpilledBytes)),
				metrics.FormatSeconds(sp.WriteSeconds),
				metrics.FormatSeconds(sp.ReadSeconds),
				fmt.Sprintf("%.3g J", sp.EnergyJ))
		}
		fmt.Println(table.Render())
	}
	fmt.Println("rows identical at every budget; spill I/O grows as the budget shrinks — degradation, not a cliff")
	fmt.Println()

	fmt.Println("== Act 2: the same overflow, priced per tier ==")
	tierTable := metrics.NewTable("join at 10% budget across the storage hierarchy",
		"tier", "spilled", "write", "read", "energy")
	budget := workingSet / 10
	for _, tier := range []string{"nvm", "ssd", "disk"} {
		res := run(engine(budget, tier, false), queries[0].q)
		sp := res.Spill
		tierTable.AddRow(tier,
			metrics.FormatBytes(float64(sp.SpilledBytes)),
			metrics.FormatSeconds(sp.WriteSeconds),
			metrics.FormatSeconds(sp.ReadSeconds),
			fmt.Sprintf("%.3g J", sp.EnergyJ))
	}
	fmt.Println(tierTable.Render())
	fmt.Println("same partitions, orders-of-magnitude cost spread: the storage hierarchy shapes the plan")
	fmt.Println()

	fmt.Println("== Act 3: distributed, per-host budgets ==")
	distRef := signature(run(engine(0, "", true), queries[0].q))
	res := run(engine(budget/4, "ssd", true), queries[0].q)
	if sig := signature(res); sig != distRef {
		log.Fatalf("distributed budgeted run changed the result:\n%s\nvs\n%s", sig, distRef)
	}
	fmt.Printf("4 shards, %s budget per host — rows identical to the unbudgeted cluster\n", metrics.FormatBytes(float64(budget/4)))
	if res.Spill != nil && res.Spill.Active() {
		fmt.Printf("  %s\n", res.Spill)
	}
	if res.Net != nil {
		fmt.Printf("  fabric %s in %s; spill tier I/O %s — storage time beside network time\n",
			metrics.FormatBytes(res.Net.BytesShuffled), metrics.FormatSeconds(res.Net.NetSeconds),
			metrics.FormatSeconds(res.Net.SpillSeconds))
	}
}
