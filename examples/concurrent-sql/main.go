// Example concurrent-sql demonstrates fabric interference between SQL
// sessions — the multi-query contention the RETHINK big roadmap says
// big-data engines must be co-designed around. Two queries run first in
// isolation (each on its own fresh fabric) and then simultaneously as
// two sessions of ONE engine, whose single shared network simulator
// admits both queries' broadcasts, shuffles and gathers as coexisting
// flows. The same queries, the same data and the same topology get
// measurably slower per query — while the fabric's hot links get busier
// — purely because the flows now share links.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sql"
	"repro/internal/workload"

	"repro/internal/relational"
)

const (
	rows      = 30000
	customers = 600
	shards    = 4
)

// queryA moves a lot of data twice (two repartition shuffles) before a
// wide gather; queryB is one shuffle and a narrow gather. Their phase
// structures are deliberately different so contention overlaps phases
// with different bottleneck links.
const (
	queryA = "SELECT s.order_id, s.price, c.segment, p.margin FROM sales s JOIN customers c ON s.customer_id = c.customer_id JOIN products p ON s.product = p.product"
	queryB = "SELECT s.order_id FROM sales s JOIN customers c ON s.customer_id = c.customer_id"
)

func engine() *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = "single"
	cfg.DistJoin = "repartition"
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	products := relational.NewRelation("products", relational.Schema{
		{Name: "product", Type: relational.String},
		{Name: "margin", Type: relational.Float},
	})
	for i, p := range workload.Products {
		products.MustAppend(relational.Row{relational.StringV(p), relational.FloatV(0.1 + 0.05*float64(i))})
	}
	eng.Register(products)
	return eng
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Isolated baselines: fresh engine (fresh fabric) per query.
	isoA, err := engine().Session().Query(ctx, queryA)
	if err != nil {
		log.Fatal(err)
	}
	isoB, err := engine().Session().Query(ctx, queryB)
	if err != nil {
		log.Fatal(err)
	}

	// Contended run: two sessions, ONE engine, one shared fabric. The
	// Expect barrier guarantees the first admission round really contains
	// both queries regardless of goroutine scheduling.
	eng := engine()
	eng.Fabric().Expect(2)
	var wg sync.WaitGroup
	var conA, conB *sql.Result
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); conA, errA = eng.Session().Query(ctx, queryA) }()
	go func() { defer wg.Done(); conB, errB = eng.Session().Query(ctx, queryB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		log.Fatalf("concurrent queries failed: %v / %v", errA, errB)
	}
	if conA.Rows.Len() != isoA.Rows.Len() || conB.Rows.Len() != isoB.Rows.Len() {
		log.Fatal("contended results diverged from isolated runs")
	}

	fmt.Printf("== fabric interference (%d-shard %s fabric) ==\n", shards, "single-switch")
	tbl := metrics.NewTable("per-query network cost, isolated vs contended",
		"query", "mode", "bytes shuffled", "net time", "slowdown")
	add := func(name string, iso, con *sql.Result) {
		tbl.AddRow(name, "isolated", metrics.FormatBytes(iso.Net.BytesShuffled),
			metrics.FormatSeconds(iso.Net.NetSeconds), "1.00x")
		tbl.AddRow(name, "contended", metrics.FormatBytes(con.Net.BytesShuffled),
			metrics.FormatSeconds(con.Net.NetSeconds),
			fmt.Sprintf("%.2fx", con.Net.NetSeconds/iso.Net.NetSeconds))
	}
	add("A (2-join, wide)", isoA, conA)
	add("B (1-join, narrow)", isoB, conB)
	fmt.Print(tbl.Render())

	fmt.Println("\n== shared-fabric aggregate ==")
	fmt.Println(eng.Fabric().Stats().Summary())
	fmt.Println("\nsame queries, same data, same fabric — slower only because the flows coexist")
}
