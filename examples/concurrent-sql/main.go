// Example concurrent-sql demonstrates fabric interference between SQL
// sessions — the multi-query contention the RETHINK big roadmap says
// big-data engines must be co-designed around. Two queries run first in
// isolation (each on its own fresh fabric) and then simultaneously as
// two sessions of ONE engine, whose single shared network simulator
// admits both queries' broadcasts, shuffles and gathers as coexisting
// flows. The same queries, the same data and the same topology get
// measurably slower per query — while the fabric's hot links get busier
// — purely because the flows now share links.
//
// The final act is the control plane's answer: the same contended pair
// re-runs with session A marked high-priority at weight 3 while B stays
// best-effort. The fabric's weighted max-min allocator gives A's flows
// three times the bandwidth on every shared bottleneck, so A's net time
// degrades far less than under uniform contention — B pays for it —
// and the per-class byte attribution shows exactly who used the fabric.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sql"
	"repro/internal/workload"

	"repro/internal/relational"
)

const (
	rows      = 30000
	customers = 600
	shards    = 4
)

// queryA moves a lot of data twice (two repartition shuffles) before a
// wide gather; queryB is one shuffle and a narrow gather. Their phase
// structures are deliberately different so contention overlaps phases
// with different bottleneck links.
const (
	queryA = "SELECT s.order_id, s.price, c.segment, p.margin FROM sales s JOIN customers c ON s.customer_id = c.customer_id JOIN products p ON s.product = p.product"
	queryB = "SELECT s.order_id FROM sales s JOIN customers c ON s.customer_id = c.customer_id"
)

func engine() *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = "single"
	cfg.DistJoin = "repartition"
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	products := relational.NewRelation("products", relational.Schema{
		{Name: "product", Type: relational.String},
		{Name: "margin", Type: relational.Float},
	})
	for i, p := range workload.Products {
		products.MustAppend(relational.Row{relational.StringV(p), relational.FloatV(0.1 + 0.05*float64(i))})
	}
	eng.Register(products)
	return eng
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Isolated baselines: fresh engine (fresh fabric) per query.
	isoA, err := engine().Session().Query(ctx, queryA)
	if err != nil {
		log.Fatal(err)
	}
	isoB, err := engine().Session().Query(ctx, queryB)
	if err != nil {
		log.Fatal(err)
	}

	// Contended run: two sessions, ONE engine, one shared fabric. The
	// Expect barrier guarantees the first admission round really contains
	// both queries regardless of goroutine scheduling.
	eng := engine()
	eng.Fabric().Expect(2)
	var wg sync.WaitGroup
	var conA, conB *sql.Result
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); conA, errA = eng.Session().Query(ctx, queryA) }()
	go func() { defer wg.Done(); conB, errB = eng.Session().Query(ctx, queryB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		log.Fatalf("concurrent queries failed: %v / %v", errA, errB)
	}
	if conA.Rows.Len() != isoA.Rows.Len() || conB.Rows.Len() != isoB.Rows.Len() {
		log.Fatal("contended results diverged from isolated runs")
	}

	// Weighted re-run: the same contended pair, but session A is
	// high-priority at weight 3 while B stays best-effort at weight 1.
	wEng := engine()
	wEng.Fabric().Expect(2)
	sessA := wEng.Session()
	sessA.Priority, sessA.Weight = "interactive", 3
	sessB := wEng.Session()
	sessB.Priority = "batch"
	var wconA, wconB *sql.Result
	wg.Add(2)
	go func() { defer wg.Done(); wconA, errA = sessA.Query(ctx, queryA) }()
	go func() { defer wg.Done(); wconB, errB = sessB.Query(ctx, queryB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		log.Fatalf("weighted queries failed: %v / %v", errA, errB)
	}
	if wconA.Rows.Len() != isoA.Rows.Len() || wconB.Rows.Len() != isoB.Rows.Len() {
		log.Fatal("weighted results diverged from isolated runs")
	}

	fmt.Printf("== fabric interference (%d-shard %s fabric) ==\n", shards, "single-switch")
	tbl := metrics.NewTable("per-query network cost: isolated, contended 1:1, contended 3:1",
		"query", "mode", "bytes shuffled", "net time", "slowdown")
	add := func(name, mode string, iso, con *sql.Result) {
		slow := "1.00x"
		if con != iso {
			slow = fmt.Sprintf("%.2fx", con.Net.NetSeconds/iso.Net.NetSeconds)
		}
		tbl.AddRow(name, mode, metrics.FormatBytes(con.Net.BytesShuffled),
			metrics.FormatSeconds(con.Net.NetSeconds), slow)
	}
	add("A (2-join, wide)", "isolated", isoA, isoA)
	add("A (2-join, wide)", "contended 1:1", isoA, conA)
	add("A (2-join, wide)", "contended, weight 3", isoA, wconA)
	add("B (1-join, narrow)", "isolated", isoB, isoB)
	add("B (1-join, narrow)", "contended 1:1", isoB, conB)
	add("B (1-join, narrow)", "contended, weight 1", isoB, wconB)
	fmt.Print(tbl.Render())
	fmt.Printf("\nweighted run: A joined %d rounds waiting %.3f ms at the barrier as class %q\n",
		wconA.Admission.RoundsJoined, wconA.Admission.BarrierWaitSeconds*1e3, wconA.Admission.Class)

	fmt.Println("\n== shared-fabric aggregate (uniform weights) ==")
	fmt.Println(eng.Fabric().Stats().Summary())
	fmt.Println("\n== shared-fabric aggregate (3:1 weights) ==")
	fmt.Println(wEng.Fabric().Stats().Summary())
	fmt.Println("\nsame queries, same data, same fabric — contention slows queries down,")
	fmt.Println("and the control plane decides who absorbs the slowdown")
}
