// Example distributed-sql runs the same analytics queries shard-parallel
// over different simulated datacenter fabrics and shard counts, showing
// what the RETHINK big roadmap argues: once a query spans hosts, its cost
// is dominated by what the network moves — build-side broadcasts, hash
// repartition shuffles and the final gather — not by the per-core scan
// speed. Every byte reported below was charged as a max-min-fair flow
// over the chosen topology, and results are row-for-row identical to the
// single-node engine.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/sql"
)

const (
	rows      = 40000
	customers = 800
)

// engine builds a fresh distributed engine over the demo catalog.
func engine(cfg sql.Config) *sql.Engine {
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, customers)
	return eng
}

func distConfig(topology string, shards int) sql.Config {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = topology
	return cfg
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	queries := []struct{ name, q string }{
		{"filter+topk", "SELECT order_id, price FROM sales WHERE year >= 2014 ORDER BY price DESC LIMIT 10"},
		{"groupby", "SELECT region, COUNT(*) AS n, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC"},
		{"join+groupby", "SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC"},
	}

	fmt.Println("== distributed execution across fabrics (4 shards) ==")
	tbl := metrics.NewTable("per-query network cost by topology",
		"query", "topology", "flows", "bytes shuffled", "net time", "max link util")
	for _, topo := range []string{"single", "leafspine", "fattree", "torus"} {
		sess := engine(distConfig(topo, 4)).Session()
		for _, q := range queries {
			stats := mustRun(ctx, sess, q.q)
			tbl.AddRow(q.name, topo, fmt.Sprint(stats.Flows),
				metrics.FormatBytes(stats.BytesShuffled),
				metrics.FormatSeconds(stats.NetSeconds),
				fmt.Sprintf("%.1f%%", stats.MaxLinkUtil*100))
		}
	}
	fmt.Print(tbl.Render())

	fmt.Println("\n== broadcast vs repartition (join+groupby, leafspine) ==")
	tbl2 := metrics.NewTable("movement strategy vs shard count",
		"shards", "movement", "flows", "bytes shuffled", "net time")
	for _, shards := range []int{2, 4, 8} {
		eng := engine(distConfig("leafspine", shards))
		for _, strat := range []string{"auto", "broadcast", "repartition"} {
			// A per-session override: the same engine serves all three
			// movement strategies.
			sess := eng.Session()
			sess.DistJoin = strat
			stats := mustRun(ctx, sess, queries[2].q)
			tbl2.AddRow(fmt.Sprint(shards), strat, fmt.Sprint(stats.Flows),
				metrics.FormatBytes(stats.BytesShuffled),
				metrics.FormatSeconds(stats.NetSeconds))
		}
	}
	fmt.Print(tbl2.Render())

	// Cross-check: the distributed result equals the single-node engine's,
	// row for row.
	single, err := engine(sql.DefaultConfig()).Session().Query(ctx, queries[2].q)
	if err != nil {
		log.Fatal(err)
	}
	want := single.Rows
	cfg := distConfig("leafspine", 8)
	cfg.ShardHash = true
	got, err := engine(cfg).Session().Query(ctx, queries[2].q)
	if err != nil {
		log.Fatal(err)
	}
	if want.Len() != got.Rows.Len() {
		log.Fatalf("distributed result diverged: %d vs %d rows", want.Len(), got.Rows.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows.Rows[i][j]
			diff := a.F - b.F
			if diff < 0 {
				diff = -diff
			}
			// Same relative float tolerance as the parity suite: the two
			// engines merge partial sums in different orders.
			tol := 1e-9
			if mag := a.F; mag > 1 || mag < -1 {
				if mag < 0 {
					mag = -mag
				}
				tol *= mag
			}
			if a.I != b.I || a.S != b.S || diff > tol {
				log.Fatalf("distributed result diverged at row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}
	fmt.Println("\ncross-check: 8-shard hash-partitioned output is row-for-row identical to the single-node engine")
}

func mustRun(ctx context.Context, sess *sql.Session, q string) *dist.QueryStats {
	res, err := sess.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	return res.Net
}
