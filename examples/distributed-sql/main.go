// Example distributed-sql runs the same analytics queries shard-parallel
// over different simulated datacenter fabrics and shard counts, showing
// what the RETHINK big roadmap argues: once a query spans hosts, its cost
// is dominated by what the network moves — build-side broadcasts, hash
// repartition shuffles and the final gather — not by the per-core scan
// speed. Every byte reported below was charged as a max-min-fair flow
// over the chosen topology, and results are row-for-row identical to the
// single-node engine.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/relational"
	"repro/internal/sql"
)

const (
	rows      = 40000
	customers = 800
)

func main() {
	log.SetFlags(0)
	queries := []struct{ name, q string }{
		{"filter+topk", "SELECT order_id, price FROM sales WHERE year >= 2014 ORDER BY price DESC LIMIT 10"},
		{"groupby", "SELECT region, COUNT(*) AS n, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC"},
		{"join+groupby", "SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC"},
	}

	fmt.Println("== distributed execution across fabrics (4 shards) ==")
	tbl := metrics.NewTable("per-query network cost by topology",
		"query", "topology", "flows", "bytes shuffled", "net time", "max link util")
	for _, topo := range []string{"single", "leafspine", "fattree", "torus"} {
		db := sql.DemoDB(42, rows, customers)
		db.Opt.Distributed = true
		db.Opt.Shards = 4
		db.Opt.Topology = topo
		for _, q := range queries {
			stats := mustRun(db, q.q)
			tbl.AddRow(q.name, topo, fmt.Sprint(stats.Flows),
				metrics.FormatBytes(stats.BytesShuffled),
				metrics.FormatSeconds(stats.NetSeconds),
				fmt.Sprintf("%.1f%%", stats.MaxLinkUtil*100))
		}
	}
	fmt.Print(tbl.Render())

	fmt.Println("\n== broadcast vs repartition (join+groupby, leafspine) ==")
	tbl2 := metrics.NewTable("movement strategy vs shard count",
		"shards", "movement", "flows", "bytes shuffled", "net time")
	for _, shards := range []int{2, 4, 8} {
		for _, strat := range []string{"auto", "broadcast", "repartition"} {
			db := sql.DemoDB(42, rows, customers)
			db.Opt.Distributed = true
			db.Opt.Shards = shards
			db.Opt.DistJoin = strat
			stats := mustRun(db, queries[2].q)
			tbl2.AddRow(fmt.Sprint(shards), strat, fmt.Sprint(stats.Flows),
				metrics.FormatBytes(stats.BytesShuffled),
				metrics.FormatSeconds(stats.NetSeconds))
		}
	}
	fmt.Print(tbl2.Render())

	// Cross-check: the distributed result equals the single-node engine's,
	// row for row.
	single := sql.DemoDB(42, rows, customers)
	want, err := single.Query(queries[2].q)
	if err != nil {
		log.Fatal(err)
	}
	db := sql.DemoDB(42, rows, customers)
	db.Opt.Distributed = true
	db.Opt.Shards = 8
	db.Opt.ShardHash = true
	got, err := db.Query(queries[2].q)
	if err != nil {
		log.Fatal(err)
	}
	if want.Len() != got.Len() {
		log.Fatalf("distributed result diverged: %d vs %d rows", want.Len(), got.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			diff := a.F - b.F
			if diff < 0 {
				diff = -diff
			}
			// Same relative float tolerance as the parity suite: the two
			// engines merge partial sums in different orders.
			tol := 1e-9
			if mag := a.F; mag > 1 || mag < -1 {
				if mag < 0 {
					mag = -mag
				}
				tol *= mag
			}
			if a.I != b.I || a.S != b.S || diff > tol {
				log.Fatalf("distributed result diverged at row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}
	fmt.Println("\ncross-check: 8-shard hash-partitioned output is row-for-row identical to the single-node engine")
}

func mustRun(db *sql.DB, q string) *dist.QueryStats {
	plan, err := db.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := relational.Collect(plan.Root, "result"); err != nil {
		log.Fatal(err)
	}
	return plan.NetStats()
}
