package repro

// One benchmark per reproduced exhibit: the paper's Table 1 and Figure 1,
// the sixteen derived experiments E1–E16, and the DESIGN.md ablations.
// Each benchmark regenerates its experiment end-to-end and reports the
// headline numbers as custom metrics; `go test -bench . -benchmem` thus
// re-derives every row EXPERIMENTS.md records. Micro-benchmarks of the
// real building-block implementations follow at the bottom.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/relational"
	"repro/internal/sdn"
	"repro/internal/sql"
	"repro/internal/workload"
)

// reportKeys attaches an experiment's key metrics to the benchmark.
func reportKeys(b *testing.B, r *experiments.Report, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := r.Key[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkT1Consortium(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.T1()
	}
	reportKeys(b, r, "partners")
}

func BenchmarkF1Landscape(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.F1()
	}
	reportKeys(b, r, "initiatives", "topics_covered")
}

func BenchmarkE1CatapultTail(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E1()
	}
	reportKeys(b, r, "p99_cut_fraction", "p99_software", "p99_fpga")
}

func BenchmarkE2SDNScale(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E2()
	}
	reportKeys(b, r, "ops_ratio", "sdn_ops_at_max", "legacy_ops_at_max")
}

func BenchmarkE3BandwidthGen(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E3()
	}
	reportKeys(b, r, "speedup_400_vs_10", "maxfct_10", "maxfct_400")
}

func BenchmarkE4Disagg(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E4()
	}
	reportKeys(b, r, "granted_monolithic", "granted_composable", "stranded_cpu_fraction", "upgrade_cost_ratio")
}

func BenchmarkE5Accel10x(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E5()
	}
	reportKeys(b, r, "max_speedup", "cells_at_10x")
}

func BenchmarkE6GPGPUROI(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E6()
	}
	reportKeys(b, r, "breakeven_workrate_kernels_per_s", "savings_at_10", "savings_at_100000")
}

func BenchmarkE7SoCvsSiP(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E7()
	}
	reportKeys(b, r, "crossover_volume", "retrofit_nre_ratio")
}

func BenchmarkE8Abstractions(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E8()
	}
	reportKeys(b, r, "results_agree", "mr_shuffled", "df_shuffled")
}

func BenchmarkE9Portability(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E9()
	}
	reportKeys(b, r, "performance_portability", "spread_worst_over_best")
}

func BenchmarkE10Suite(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E10()
	}
	reportKeys(b, r, "overall_gpu", "overall_hetero", "energy_fpga")
}

func BenchmarkE11Blocks(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E11()
	}
	reportKeys(b, r, "gpu_speedup_matmul", "gpu_speedup_sort")
}

func BenchmarkE12HetSched(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E12()
	}
	reportKeys(b, r, "heft_vs_rr_speedup", "makespan_heft", "makespan_fifo")
}

func BenchmarkE13Findings(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E13()
	}
	reportKeys(b, r, "interviews", "companies", "findings_holding")
}

func BenchmarkE14Roadmap(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E14()
	}
	reportKeys(b, r, "recommendations", "top_priority_id", "near_term_actions")
}

func BenchmarkE15NFV(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E15()
	}
	reportKeys(b, r, "latency_appliance", "latency_nfv", "latency_nfv+offload", "price_ratio_hw_vs_sw")
}

func BenchmarkE16Convergence(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E16()
	}
	reportKeys(b, r, "shared_minus_seg_at_50", "shared_minus_seg_at_1.25")
}

func BenchmarkE17Neuromorphic(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E17()
	}
	reportKeys(b, r, "npu_advantage_at_1eps", "adoption_gap_years")
}

func BenchmarkE18DataPooling(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E18()
	}
	reportKeys(b, r, "mean_err_siloed", "mean_err_pooled", "viable_solo", "viable_pooled")
}

func BenchmarkE19Longitudinal(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E19()
	}
	reportKeys(b, r, "finding1_inversion_year", "bottleneck_awareness_2026")
}

func BenchmarkE20NVMTiering(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E20()
	}
	reportKeys(b, r, "saving_at_2us", "saving_at_20us")
}

func BenchmarkE21EdgeCloud(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E21()
	}
	reportKeys(b, r, "makespan_hybrid", "misses_cloud", "misses_hybrid")
}

func BenchmarkAblationFusion(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationFusion()
	}
	reportKeys(b, r, "fusion_speedup_xeon-2s/simd", "fusion_speedup_gpgpu/simt")
}

func BenchmarkAblationFairness(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationFairness()
	}
	reportKeys(b, r, "maxmin_fct", "proportional_fct")
}

func BenchmarkAblationSDNMode(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSDNMode()
	}
	reportKeys(b, r, "reactive_first_packet_us", "proactive_rules")
}

func BenchmarkAblationSort(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSort()
	}
	reportKeys(b, r, "radix_speedup_at_1M")
}

func BenchmarkAblationPacking(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationPacking()
	}
	reportKeys(b, r, "first_fit_granted", "best_fit_granted")
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the real building-block implementations.

func BenchmarkRadixSort1M(b *testing.B) {
	base := make([]uint64, 1<<20)
	st := uint64(7)
	for i := range base {
		st = st*2862933555777941757 + 3037000493
		base[i] = st
	}
	buf := make([]uint64, len(base))
	b.SetBytes(int64(len(base) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		kernels.RadixSortUint64(buf)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	build := make([]kernels.Pair, 1<<16)
	probe := make([]kernels.Pair, 1<<18)
	for i := range build {
		build[i] = kernels.Pair{Key: uint64(i), Val: int64(i)}
	}
	for i := range probe {
		probe[i] = kernels.Pair{Key: uint64(i % (1 << 16)), Val: int64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.HashJoin(build, probe)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	n := 256
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i % 97)
		bb[i] = float64(i % 89)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.MatMulNew(a, bb, n, n, n)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := workload.RMAT(3, 1<<14, 1<<17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.PageRank(g, 0.85, 1e-8, 50)
	}
}

func BenchmarkSubstringScan(b *testing.B) {
	docs := workload.Corpus(13, 100, 400, 800)
	var text []byte
	for _, d := range docs {
		for _, w := range d.Words {
			text = append(text, w...)
			text = append(text, ' ')
		}
	}
	pat := []byte("data")
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.SubstringScan(text, pat)
	}
}

func BenchmarkSQLJoinAggregate(b *testing.B) {
	db := sql.DemoDB(42, 20000, 500)
	q := `SELECT c.segment, SUM(s.price) AS total
	      FROM sales s JOIN customers c ON s.customer_id = c.customer_id
	      GROUP BY c.segment ORDER BY total DESC`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// SQL engine comparison: morsel-parallel batch engine vs volcano
// row-at-a-time, on a 1M-row fact table. The *Parallel* benchmarks use
// the batch engine (default options); the *Serial* counterparts disable
// it. The paper's Section IV argument is exactly this gap.

var sqlBenchDB = sync.OnceValue(func() *sql.DB {
	return sql.DemoDB(42, 1<<20, 2000)
})

func benchSQLEngine(b *testing.B, q string, parallel bool) {
	b.Helper()
	db := sqlBenchDB()
	db.Opt.Parallel = parallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

const (
	sqlScanQuery    = "SELECT order_id, price FROM sales WHERE year >= 2015 AND quantity <= 4"
	sqlJoinQuery    = "SELECT COUNT(*) AS n, SUM(s.price) AS total FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.year >= 2012"
	sqlGroupByQuery = "SELECT region, COUNT(*) AS n, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC"
)

func BenchmarkSQLParallelScan(b *testing.B)    { benchSQLEngine(b, sqlScanQuery, true) }
func BenchmarkSQLSerialScan(b *testing.B)      { benchSQLEngine(b, sqlScanQuery, false) }
func BenchmarkSQLParallelJoin(b *testing.B)    { benchSQLEngine(b, sqlJoinQuery, true) }
func BenchmarkSQLSerialJoin(b *testing.B)      { benchSQLEngine(b, sqlJoinQuery, false) }
func BenchmarkSQLParallelGroupBy(b *testing.B) { benchSQLEngine(b, sqlGroupByQuery, true) }
func BenchmarkSQLSerialGroupBy(b *testing.B)   { benchSQLEngine(b, sqlGroupByQuery, false) }

// ---------------------------------------------------------------------
// Distributed engine: the same queries shard-parallel over the simulated
// leaf–spine fabric (4 shards). Wall time is real compute; the custom
// metrics report what the fabric moved — the roadmap's thesis is that
// this, not the scan speed, bounds scale-out analytics.

var sqlDistBenchDB = sync.OnceValue(func() *sql.DB {
	db := sql.DemoDB(42, 1<<20, 2000)
	db.Opt.Distributed = true
	db.Opt.Shards = 4
	return db
})

func benchSQLDistributed(b *testing.B, q string) {
	b.Helper()
	db := sqlDistBenchDB()
	var bytes, sec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := db.Plan(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := relational.Collect(plan.Root, "result"); err != nil {
			b.Fatal(err)
		}
		s := plan.NetStats()
		bytes, sec = s.BytesShuffled, s.NetSeconds
	}
	b.ReportMetric(bytes, "bytes_shuffled")
	b.ReportMetric(sec*1e6, "net_µs")
}

func BenchmarkSQLDistributedScan(b *testing.B)    { benchSQLDistributed(b, sqlScanQuery) }
func BenchmarkSQLDistributedJoin(b *testing.B)    { benchSQLDistributed(b, sqlJoinQuery) }
func BenchmarkSQLDistributedGroupBy(b *testing.B) { benchSQLDistributed(b, sqlGroupByQuery) }

// ---------------------------------------------------------------------
// Concurrent sessions on one shared fabric: N sessions fire the same
// join query simultaneously at a 4-shard engine whose single network
// simulator admits all of their flows together. net_µs/query is the mean
// per-query simulated network time — watch it degrade as sessions are
// added, which is the multi-query fabric interference the Engine API
// exists to model. (Wall time additionally reflects real compute
// parallelism across the session goroutines.)

var sqlConcBenchEngine = sync.OnceValue(func() *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Topology = "single"
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	sql.RegisterDemo(eng, 42, 1<<18, 2000)
	return eng
})

func benchSQLConcurrent(b *testing.B, sessions int) {
	b.Helper()
	eng := sqlConcBenchEngine()
	ctx := context.Background()
	var netSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Fabric().Expect(sessions)
		secs := make([]float64, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				res, err := eng.Session().Query(ctx, sqlJoinQuery)
				if err != nil {
					errs[s] = err
					eng.Fabric().Withdraw() // keep siblings off a dead barrier
					return
				}
				secs[s] = res.Net.NetSeconds
			}(s)
		}
		wg.Wait()
		total := 0.0
		for s := 0; s < sessions; s++ {
			if errs[s] != nil {
				b.Fatal(errs[s])
			}
			total += secs[s]
		}
		netSec = total / float64(sessions)
	}
	b.ReportMetric(netSec*1e6, "net_µs/query")
	b.ReportMetric(float64(sessions), "sessions")
}

func BenchmarkSQLConcurrent1(b *testing.B)  { benchSQLConcurrent(b, 1) }
func BenchmarkSQLConcurrent4(b *testing.B)  { benchSQLConcurrent(b, 4) }
func BenchmarkSQLConcurrent16(b *testing.B) { benchSQLConcurrent(b, 16) }

// ---------------------------------------------------------------------
// Weighted QoS on the shared fabric: two sessions run the same join
// query simultaneously, one at the given weight and one best-effort.
// net_µs/weighted vs net_µs/peer is the bandwidth share the control
// plane moved: at 1:1 both degrade alike, at 3:1 the weighted session's
// phases complete ~3x faster on every shared bottleneck.

func benchSQLWeighted(b *testing.B, weight float64) {
	b.Helper()
	eng := sqlConcBenchEngine()
	ctx := context.Background()
	var wSec, peerSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Fabric().Expect(2)
		var wg sync.WaitGroup
		var resW, resP *sql.Result
		var errW, errP error
		run := func(res **sql.Result, errOut *error, w float64, class string) {
			defer wg.Done()
			sess := eng.Session()
			sess.Priority, sess.Weight = class, w
			*res, *errOut = sess.Query(ctx, sqlJoinQuery)
			if *errOut != nil {
				eng.Fabric().Withdraw()
			}
		}
		wg.Add(2)
		go run(&resW, &errW, weight, "interactive")
		go run(&resP, &errP, 0, "batch")
		wg.Wait()
		if errW != nil || errP != nil {
			b.Fatal(errW, errP)
		}
		wSec, peerSec = resW.Net.NetSeconds, resP.Net.NetSeconds
	}
	b.ReportMetric(wSec*1e6, "net_µs/weighted")
	b.ReportMetric(peerSec*1e6, "net_µs/peer")
	b.ReportMetric(weight, "weight")
}

func BenchmarkSQLWeightedUniform(b *testing.B) { benchSQLWeighted(b, 1) }
func BenchmarkSQLWeighted3to1(b *testing.B)    { benchSQLWeighted(b, 3) }

// ---------------------------------------------------------------------
// Fabric controller in the loop: 4 concurrent sessions on a leaf–spine
// fabric whose admission rounds pass through an sdn.NetController
// running reroute-hot-links + strict-priority. reroutes counts flows
// the controller moved off their default ECMP paths; ctl_µs is the
// accumulated simulated control-plane latency.

var sqlCtlBenchEngine = sync.OnceValue(func() *sql.Engine {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Topology = "leafspine"
	cfg.Controller = sdn.NewNetController(nil, sdn.Chain{sdn.RerouteHotLinks{}, sdn.StrictPriority{}}, 4096)
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	sql.RegisterDemo(eng, 42, 1<<18, 2000)
	return eng
})

func BenchmarkSQLControllerReroute(b *testing.B) {
	eng := sqlCtlBenchEngine()
	ctl := eng.Config().Controller.(*sdn.NetController)
	ctx := context.Background()
	const sessions = 4
	var netSec float64
	// The engine (and its controller) is shared across iterations and
	// calibration reruns: report per-iteration deltas of its cumulative
	// counters, not lifetime totals.
	overridesBefore := eng.Fabric().Stats().PathOverrides
	ctlBefore := ctl.ControlLatencyUS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Fabric().Expect(sessions)
		secs := make([]float64, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := eng.Session()
				if s == 0 {
					sess.Priority = "interactive"
				}
				res, err := sess.Query(ctx, sqlJoinQuery)
				if err != nil {
					errs[s] = err
					eng.Fabric().Withdraw()
					return
				}
				secs[s] = res.Net.NetSeconds
			}(s)
		}
		wg.Wait()
		total := 0.0
		for s := 0; s < sessions; s++ {
			if errs[s] != nil {
				b.Fatal(errs[s])
			}
			total += secs[s]
		}
		netSec = total / sessions
	}
	b.ReportMetric(netSec*1e6, "net_µs/query")
	b.ReportMetric(float64(eng.Fabric().Stats().PathOverrides-overridesBefore)/float64(b.N), "reroutes/op")
	b.ReportMetric((ctl.ControlLatencyUS-ctlBefore)/float64(b.N), "ctl_µs/op")
}

// ---------------------------------------------------------------------
// Heterogeneous execution: the scan query on the 1M-row fact table with
// the full CPU/GPU/FPGA device set. Wall time is real compute plus
// placement bookkeeping; modeled_µs is the device bill the placement
// policy signed. The PR 5 acceptance criterion — cost-based auto
// placement's modeled seconds never exceed forcing the CPU — is
// asserted inside BenchmarkSQLHeteroAutoPlace, not just reported.

var sqlHeteroBenchEngines = sync.OnceValue(func() map[string]*sql.Engine {
	out := map[string]*sql.Engine{}
	for _, placement := range []string{"", "cpu", "auto"} {
		cfg := sql.DefaultConfig()
		if placement != "" {
			cfg.Devices = []string{"cpu", "gpu", "fpga"}
			cfg.Placement = placement
		}
		eng, err := sql.NewEngine(cfg)
		if err != nil {
			panic(err)
		}
		sql.RegisterDemo(eng, 42, 1<<20, 2000)
		out[placement] = eng
	}
	return out
})

func benchSQLHetero(b *testing.B, placement string) float64 {
	b.Helper()
	sess := sqlHeteroBenchEngines()[placement].Session()
	ctx := context.Background()
	var modeled float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Query(ctx, sqlScanQuery)
		if err != nil {
			b.Fatal(err)
		}
		modeled = exec.ModeledSeconds(res.Devices)
	}
	b.ReportMetric(modeled*1e6, "modeled_µs")
	return modeled
}

func BenchmarkSQLHeteroCPUOnly(b *testing.B) { benchSQLHetero(b, "cpu") }

func BenchmarkSQLHeteroAutoPlace(b *testing.B) {
	auto := benchSQLHetero(b, "auto")
	b.StopTimer()
	sess := sqlHeteroBenchEngines()["cpu"].Session()
	res, err := sess.Query(context.Background(), sqlScanQuery)
	if err != nil {
		b.Fatal(err)
	}
	if cpu := exec.ModeledSeconds(res.Devices); auto > cpu {
		b.Fatalf("auto placement modeled %.6gs > cpu-only %.6gs", auto, cpu)
	}
}

// BenchmarkPlacementOverhead isolates the wall-clock cost of the
// placement seam itself: the same 1M-row scan with no device set
// (homogeneous fast path, zero dispatch wrapping) vs the full set under
// auto placement. The ns/op delta between the two sub-benchmarks is the
// per-query price of per-morsel cost-based dispatch.
func BenchmarkPlacementOverhead(b *testing.B) {
	for _, mode := range []struct{ name, placement string }{
		{"homogeneous", ""},
		{"autoplace", "auto"},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sess := sqlHeteroBenchEngines()[mode.placement].Session()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Query(ctx, sqlScanQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Out-of-core execution: a join, a high-cardinality group-by and a full
// sort on a 256k-row fact table with a 50k-row dimension, swept from
// unbudgeted down to 2% of the working set. Wall time is real compute
// plus grace partitioning; spill_ms is the modeled tier I/O the budget
// charged. The PR 6 acceptance criterion — spill seconds increase
// monotonically as the budget shrinks, i.e. the engine degrades
// gracefully instead of falling off a cliff — is asserted inside each
// benchmark, not just reported.

const (
	sqlSpillJoinQuery    = "SELECT c.segment, COUNT(*) AS n, SUM(s.quantity) AS qty FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY qty DESC"
	sqlSpillGroupByQuery = "SELECT customer_id, COUNT(*) AS n, SUM(quantity) AS qty FROM sales GROUP BY customer_id ORDER BY qty DESC, customer_id LIMIT 10"
	sqlSpillSortQuery    = "SELECT product, price, quantity FROM sales ORDER BY price DESC, quantity LIMIT 10"
)

// sqlSpillFracs sweeps the budget downward as fractions of the fact
// table's serialized working set; 0 means unbudgeted.
var sqlSpillFracs = []float64{0, 0.5, 0.1, 0.02}

var sqlSpillBenchEngines = sync.OnceValue(func() map[float64]*sql.Engine {
	out := map[float64]*sql.Engine{}
	var workingSet float64
	for _, f := range sqlSpillFracs {
		cfg := sql.DefaultConfig()
		if f > 0 {
			cfg.MemoryBudget = int64(workingSet * f)
			cfg.SpillTier = "ssd"
		}
		eng, err := sql.NewEngine(cfg)
		if err != nil {
			panic(err)
		}
		sql.RegisterDemo(eng, 42, 1<<18, 50000)
		if f == 0 {
			// The unbudgeted engine (built first) measures the working
			// set every budgeted engine's fraction is taken of.
			sales, _ := eng.Table("sales")
			workingSet = sales.EncodedBytes()
		}
		out[f] = eng
	}
	return out
})

func benchSQLSpill(b *testing.B, q string) {
	b.Helper()
	engines := sqlSpillBenchEngines()
	spillSec := make([]float64, len(sqlSpillFracs))
	for fi, f := range sqlSpillFracs {
		name := "unbudgeted"
		if f > 0 {
			name = fmt.Sprintf("budget=%g%%", f*100)
		}
		b.Run(name, func(b *testing.B) {
			sess := engines[f].Session()
			ctx := context.Background()
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sess.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Spill != nil {
					sec = res.Spill.WriteSeconds + res.Spill.ReadSeconds
				}
			}
			spillSec[fi] = sec
			b.ReportMetric(sec*1e3, "spill_ms")
		})
	}
	for i := 1; i < len(spillSec); i++ {
		if spillSec[i] < spillSec[i-1] {
			b.Fatalf("spill seconds not monotone as the budget shrinks: %v (fractions %v)", spillSec, sqlSpillFracs)
		}
	}
	if last := spillSec[len(spillSec)-1]; last <= 0 {
		b.Fatalf("tightest budget never spilled (spill seconds %v)", spillSec)
	}
}

func BenchmarkSQLSpillJoin(b *testing.B)    { benchSQLSpill(b, sqlSpillJoinQuery) }
func BenchmarkSQLSpillGroupBy(b *testing.B) { benchSQLSpill(b, sqlSpillGroupByQuery) }
func BenchmarkSQLSpillSort(b *testing.B)    { benchSQLSpill(b, sqlSpillSortQuery) }

// == Pipelined distributed movement ==
//
// The pipelined benchmarks sweep the movement chunk size on an 8-shard
// leaf-spine cluster. Chunking never changes rows; what it changes is
// the modeled critical path — WallSeconds() = net + chunk compute −
// measured overlap — which the sweep compares against the bulk
// engine's serial equivalent (bulk net plus the same chunk-invariant
// consumer compute, which bulk pays strictly after the movement). The
// headline acceptance — pipelining beats bulk by ≥1.2× at the best
// chunk size on the shuffle-heavy join, with overlap actually measured
// — is asserted inside BenchmarkSQLPipelinedJoin, not just reported.

const (
	sqlPipeJoinQuery    = "SELECT c.segment, COUNT(*) AS n, SUM(s.price) AS v FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY v DESC"
	sqlPipeGroupByQuery = "SELECT customer_id, COUNT(*) AS n, SUM(price) AS v FROM sales GROUP BY customer_id ORDER BY v DESC, customer_id LIMIT 10"
	sqlPipeGatherQuery  = "SELECT order_id, price FROM sales ORDER BY order_id"
)

// sqlPipeChunks sweeps the per-source chunk size; 0 is the bulk engine
// and 1<<30 is the degenerate one-chunk pipeline (bulk's bit-identical
// replay).
var sqlPipeChunks = []int{0, 1 << 30, 8192, 1024, 128}

var sqlPipeBenchEngines = sync.OnceValue(func() map[int]*sql.Engine {
	out := map[int]*sql.Engine{}
	for _, cr := range sqlPipeChunks {
		cfg := sql.DefaultConfig()
		cfg.Distributed = true
		cfg.Shards = 8
		cfg.Topology = "leafspine"
		cfg.DistJoin = "repartition"
		cfg.PipelineChunkRows = cr
		eng, err := sql.NewEngine(cfg)
		if err != nil {
			panic(err)
		}
		sql.RegisterDemo(eng, 42, 1<<17, 2000)
		out[cr] = eng
	}
	return out
})

func benchSQLPipelined(b *testing.B, q string, wantSpeedup float64) {
	b.Helper()
	engines := sqlPipeBenchEngines()
	var bulkNet float64
	bestWall, bestOverlap, bestCompute, bestChunk := 0.0, 0.0, 0.0, 0
	for _, cr := range sqlPipeChunks {
		name := "bulk"
		if cr > 0 {
			name = fmt.Sprintf("chunk=%d", cr)
		}
		b.Run(name, func(b *testing.B) {
			sess := engines[cr].Session()
			ctx := context.Background()
			var st *dist.QueryStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sess.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				st = res.Net
			}
			if st == nil {
				b.Fatal("distributed run reported no net stats")
			}
			if cr == 0 {
				bulkNet = st.NetSeconds
				b.ReportMetric(st.NetSeconds*1e6, "net_µs")
				return
			}
			b.ReportMetric(st.NetSeconds*1e6, "net_µs")
			b.ReportMetric(st.OverlapSeconds*1e6, "overlap_µs")
			b.ReportMetric(st.WallSeconds()*1e6, "wall_µs")
			if w := st.WallSeconds(); bestWall == 0 || w < bestWall {
				bestWall, bestOverlap, bestCompute, bestChunk = w, st.OverlapSeconds, st.ComputeSeconds, cr
			}
		})
	}
	if bestWall <= 0 || bulkNet <= 0 {
		b.Fatalf("sweep incomplete: bulk net %v, best wall %v", bulkNet, bestWall)
	}
	if bestOverlap <= 0 {
		b.Fatalf("best chunk size %d measured no overlap", bestChunk)
	}
	// Bulk pays the same chunk-invariant consumer compute, strictly after
	// its phases complete.
	speedup := (bulkNet + bestCompute) / bestWall
	b.Logf("best chunk %d: wall %.3fms vs bulk %.3fms (%.2fx), overlap %.3fms",
		bestChunk, bestWall*1e3, (bulkNet+bestCompute)*1e3, speedup, bestOverlap*1e3)
	if speedup < wantSpeedup {
		b.Fatalf("pipelined best (chunk %d) only %.3fx over bulk, want >= %.2fx", bestChunk, speedup, wantSpeedup)
	}
}

func BenchmarkSQLPipelinedJoin(b *testing.B)    { benchSQLPipelined(b, sqlPipeJoinQuery, 1.2) }
func BenchmarkSQLPipelinedGroupBy(b *testing.B) { benchSQLPipelined(b, sqlPipeGroupByQuery, 1.0) }
func BenchmarkSQLPipelinedGather(b *testing.B)  { benchSQLPipelined(b, sqlPipeGatherQuery, 1.0) }

func BenchmarkMapReduceWordCount(b *testing.B) {
	docs := workload.Corpus(5, 200, 200, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := mapreduce.Run(mapreduce.Config{MapTasks: 8, ReduceTasks: 4}, docs,
			func(d workload.Doc, emit func(string, int)) {
				for _, w := range d.Words {
					emit(w, 1)
				}
			},
			func(a, c int) int { return a + c },
			func(_ string, vs []int) int {
				t := 0
				for _, v := range vs {
					t += v
				}
				return t
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataflowPipeline(b *testing.B) {
	recs := workload.RecordStream(7, 50000, 256, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dataflow.FromSlice("recs", recs, 8)
		keyed := dataflow.Map(
			dataflow.KeyBy(d, func(r workload.Record) string { return r.Key }),
			func(p dataflow.Pair[string, workload.Record]) dataflow.Pair[string, float64] {
				return dataflow.Pair[string, float64]{Key: p.Key, Val: p.Val.Value}
			})
		sum := dataflow.ReduceByKey(keyed, func(a, c float64) float64 { return a + c })
		if _, err := dataflow.Collect(sum); err != nil {
			b.Fatal(err)
		}
	}
}
