package nfv

import (
	"math"
	"testing"
)

func TestVNFCapacityScalesWithCores(t *testing.T) {
	one := DefaultVNF(Firewall, 1)
	four := DefaultVNF(Firewall, 4)
	if r := four.CapacityPPS() / one.CapacityPPS(); math.Abs(r-4) > 1e-9 {
		t.Fatalf("4-core capacity ratio = %v, want 4", r)
	}
}

func TestVNFServiceTime(t *testing.T) {
	v := DefaultVNF(Firewall, 1) // 1200 cycles at 2.4 GHz = 500 ns
	if got := v.ServiceTimeS(); math.Abs(got-5e-7) > 1e-12 {
		t.Fatalf("service time = %v, want 500ns", got)
	}
}

func TestVNFLatencyGrowsWithLoad(t *testing.T) {
	v := DefaultVNF(DPI, 4)
	mu := v.CapacityPPS()
	lo, err := v.LatencyUS(0.2 * mu)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := v.LatencyUS(0.9 * mu)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("latency must grow with load: %v <= %v", hi, lo)
	}
}

func TestVNFOverloadIsError(t *testing.T) {
	v := DefaultVNF(NAT, 2)
	if _, err := v.LatencyUS(v.CapacityPPS() * 1.01); err == nil {
		t.Fatal("expected overload error")
	}
}

func TestOffloadCutsServiceTime(t *testing.T) {
	v := DefaultVNF(DPI, 2)
	o := Offload(v)
	if o.ServiceTimeS() >= v.ServiceTimeS() {
		t.Fatal("offload must cut service time")
	}
	if r := v.ServiceTimeS() / o.ServiceTimeS(); math.Abs(r-20) > 1e-9 {
		t.Fatalf("DPI offload factor = %v, want 20", r)
	}
}

func TestChainCapacityIsBottleneck(t *testing.T) {
	c := NewSoftwareChain("edge", 4, 10, Firewall, DPI, Router)
	// DPI is by far the most expensive → bottleneck.
	if got := c.Bottleneck(); got != 1 {
		t.Fatalf("bottleneck stage = %d, want 1 (dpi)", got)
	}
	if c.CapacityPPS() != c.Stages[1].CapacityPPS() {
		t.Fatal("chain capacity must equal bottleneck capacity")
	}
}

func TestChainLatencyIncludesHops(t *testing.T) {
	withHops := NewSoftwareChain("a", 4, 10, Firewall, NAT)
	coLocated := NewSoftwareChain("b", 4, 0, Firewall, NAT)
	lambda := withHops.CapacityPPS() * 0.3
	lw, err := withHops.LatencyUS(lambda)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := coLocated.LatencyUS(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((lw-lc)-10) > 1e-9 {
		t.Fatalf("hop latency delta = %v, want 10", lw-lc)
	}
}

func TestApplianceChainFasterButDearer(t *testing.T) {
	fns := []Function{Firewall, DPI, LoadBalancer}
	hwc := NewApplianceChain("hw", 5, fns...)
	swc := NewSoftwareChain("sw", 8, 5, fns...)
	lambda := 1e6 // 1 Mpps, within both capacities after scaling
	if _, err := swc.AutoScale(lambda, 0.7); err != nil {
		t.Fatal(err)
	}
	hl, err := hwc.LatencyUS(lambda)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := swc.LatencyUS(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if hl >= sl {
		t.Fatalf("appliance latency (%v) should beat software (%v)", hl, sl)
	}
	hp := hwc.PriceEUR(8000, 32, 2000)
	sp := swc.PriceEUR(8000, 32, 2000)
	if hp <= sp {
		t.Fatalf("appliance price (%v) should exceed software (%v)", hp, sp)
	}
	if hwc.DeployDays() <= swc.DeployDays() {
		t.Fatal("appliances must have longer lead time")
	}
}

func TestOffloadClosesLatencyGap(t *testing.T) {
	fns := []Function{Firewall, DPI}
	sw := NewSoftwareChain("sw", 8, 5, fns...)
	off := sw.OffloadAll()
	lambda := sw.CapacityPPS() * 0.6
	sl, err := sw.LatencyUS(lambda)
	if err != nil {
		t.Fatal(err)
	}
	ol, err := off.LatencyUS(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if ol >= sl {
		t.Fatalf("offloaded latency (%v) should beat software (%v)", ol, sl)
	}
	if off.CapacityPPS() <= sw.CapacityPPS() {
		t.Fatal("offload must raise chain capacity")
	}
}

func TestAutoScaleReachesTarget(t *testing.T) {
	c := NewSoftwareChain("scale", 4, 5, Firewall, DPI, Router)
	target := 5e6
	added, err := c.AutoScale(target, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("expected scale-out for 5 Mpps")
	}
	if c.CapacityPPS()*0.8 < target {
		t.Fatalf("scaled capacity %v insufficient for %v at rho 0.8", c.CapacityPPS(), target)
	}
	if _, err := c.LatencyUS(target); err != nil {
		t.Fatalf("chain overloaded after autoscale: %v", err)
	}
}

func TestAutoScaleApplianceBottleneckFails(t *testing.T) {
	c := NewApplianceChain("hw", 5, DPI)
	if _, err := c.AutoScale(100e6, 0.7); err == nil {
		t.Fatal("expected failure: appliance cannot scale out")
	}
}

func TestAutoScaleBadRho(t *testing.T) {
	c := NewSoftwareChain("x", 4, 0, Firewall)
	if _, err := c.AutoScale(1e6, 0); err == nil {
		t.Fatal("expected rho validation error")
	}
	if _, err := c.AutoScale(1e6, 1); err == nil {
		t.Fatal("expected rho validation error")
	}
}

func TestScaleStagePanicsOnAppliance(t *testing.T) {
	c := NewApplianceChain("hw", 0, Firewall)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ScaleStage(0, 2)
}

func TestFunctionString(t *testing.T) {
	names := map[Function]string{
		Firewall: "firewall", NAT: "nat", DPI: "dpi", LoadBalancer: "lb", Router: "router",
	}
	for f, want := range names {
		if f.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
}
