package nfv

import "fmt"

// Chain is an ordered service chain: every packet traverses all stages.
type Chain struct {
	Name   string
	Stages []*Stage
}

// Stage is one function in a chain, horizontally scaled across instances.
// Packets are sprayed across instances (per-flow ECMP), so stage capacity
// is the sum of instance capacities and stage latency is an instance's
// latency at its share of the load.
type Stage struct {
	Instances []*VNF
	// Appliance, when non-nil, implements this stage in hardware and the
	// Instances slice is ignored.
	Appliance *Appliance
	// HopToNextUS is the network latency to the next stage (0 when
	// co-located on the same server, ~10 µs across a rack).
	HopToNextUS float64
}

// NewSoftwareChain builds a chain of software VNFs with one instance per
// stage and interStageHopUS between consecutive stages.
func NewSoftwareChain(name string, cores int, interStageHopUS float64, fns ...Function) *Chain {
	c := &Chain{Name: name}
	for i, f := range fns {
		st := &Stage{Instances: []*VNF{DefaultVNF(f, cores)}}
		if i < len(fns)-1 {
			st.HopToNextUS = interStageHopUS
		}
		c.Stages = append(c.Stages, st)
	}
	return c
}

// NewApplianceChain builds the hardware-appliance baseline chain.
func NewApplianceChain(name string, interStageHopUS float64, fns ...Function) *Chain {
	c := &Chain{Name: name}
	for i, f := range fns {
		st := &Stage{Appliance: DefaultAppliance(f)}
		if i < len(fns)-1 {
			st.HopToNextUS = interStageHopUS
		}
		c.Stages = append(c.Stages, st)
	}
	return c
}

// OffloadAll returns a copy of the chain with every software stage
// offloaded to SmartNIC/FPGA.
func (c *Chain) OffloadAll() *Chain {
	out := &Chain{Name: c.Name + "+offload"}
	for _, st := range c.Stages {
		ns := &Stage{HopToNextUS: st.HopToNextUS, Appliance: st.Appliance}
		for _, v := range st.Instances {
			ns.Instances = append(ns.Instances, Offload(v))
		}
		out.Stages = append(out.Stages, ns)
	}
	return out
}

// ScaleStage adds clones of the stage's first instance until the stage has
// n instances. It panics on appliance stages or empty stages.
func (c *Chain) ScaleStage(i, n int) {
	st := c.Stages[i]
	if st.Appliance != nil {
		panic("nfv: cannot scale an appliance stage")
	}
	if len(st.Instances) == 0 {
		panic("nfv: stage has no instance to clone")
	}
	for len(st.Instances) < n {
		st.Instances = append(st.Instances, st.Instances[0].Clone())
	}
}

// CapacityPPS returns the stage saturation throughput.
func (s *Stage) CapacityPPS() float64 {
	if s.Appliance != nil {
		return s.Appliance.PPS
	}
	total := 0.0
	for _, v := range s.Instances {
		total += v.CapacityPPS()
	}
	return total
}

// LatencyUS returns the stage sojourn at offered load lambda.
func (s *Stage) LatencyUS(lambda float64) (float64, error) {
	if s.Appliance != nil {
		return s.Appliance.ApplianceLatencyUS(lambda)
	}
	if len(s.Instances) == 0 {
		return 0, fmt.Errorf("nfv: empty stage")
	}
	// Even spray across instances.
	share := lambda / float64(len(s.Instances))
	return s.Instances[0].LatencyUS(share)
}

// CapacityPPS returns the chain's saturation throughput: the minimum stage
// capacity (the chain bottleneck).
func (c *Chain) CapacityPPS() float64 {
	if len(c.Stages) == 0 {
		return 0
	}
	min := c.Stages[0].CapacityPPS()
	for _, s := range c.Stages[1:] {
		if x := s.CapacityPPS(); x < min {
			min = x
		}
	}
	return min
}

// Bottleneck returns the index of the stage with the least capacity.
func (c *Chain) Bottleneck() int {
	best, idx := -1.0, -1
	for i, s := range c.Stages {
		x := s.CapacityPPS()
		if idx == -1 || x < best {
			best, idx = x, i
		}
	}
	return idx
}

// LatencyUS returns end-to-end chain latency at offered load lambda,
// including inter-stage hops.
func (c *Chain) LatencyUS(lambda float64) (float64, error) {
	total := 0.0
	for i, s := range c.Stages {
		l, err := s.LatencyUS(lambda)
		if err != nil {
			return 0, fmt.Errorf("stage %d: %w", i, err)
		}
		total += l + s.HopToNextUS
	}
	return total, nil
}

// PriceEUR returns the chain acquisition cost. Software stages are priced
// as their core share of a serverPriceEUR machine with serverCores cores;
// offloaded stages add nicPriceEUR per instance.
func (c *Chain) PriceEUR(serverPriceEUR float64, serverCores int, nicPriceEUR float64) float64 {
	total := 0.0
	for _, s := range c.Stages {
		if s.Appliance != nil {
			total += s.Appliance.PriceEUR
			continue
		}
		for _, v := range s.Instances {
			total += serverPriceEUR * float64(v.Cores) / float64(serverCores)
			if v.Offloaded {
				total += nicPriceEUR
			}
		}
	}
	return total
}

// DeployDays returns the lead time to stand the chain up: appliances
// serialize procurement (the max of their lead times), software deploys in
// a fraction of a day.
func (c *Chain) DeployDays() float64 {
	worst := 0.1 // software rollout
	for _, s := range c.Stages {
		if s.Appliance != nil && s.Appliance.DeployDays > worst {
			worst = s.Appliance.DeployDays
		}
	}
	return worst
}

// AutoScale grows software stages until the chain supports targetPPS with
// per-stage utilization at most maxRho. It returns total instances added,
// or an error if an appliance stage is the bottleneck (hardware cannot
// scale out by software means).
func (c *Chain) AutoScale(targetPPS, maxRho float64) (int, error) {
	if maxRho <= 0 || maxRho >= 1 {
		return 0, fmt.Errorf("nfv: maxRho must be in (0,1)")
	}
	added := 0
	for i, s := range c.Stages {
		if s.Appliance != nil {
			if s.Appliance.PPS*maxRho < targetPPS {
				return added, fmt.Errorf("nfv: appliance stage %d cannot reach %.3g pps", i, targetPPS)
			}
			continue
		}
		per := s.Instances[0].CapacityPPS()
		need := 1
		for float64(need)*per*maxRho < targetPPS {
			need++
		}
		if need > len(s.Instances) {
			added += need - len(s.Instances)
			c.ScaleStage(i, need)
		}
	}
	return added, nil
}
