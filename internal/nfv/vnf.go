// Package nfv models network function virtualization (Section IV.A.2):
// packet-processing functions (firewall, NAT, DPI, load balancing, routing)
// implemented three ways — as fixed hardware appliances, as software VNFs
// on commodity servers, and as VNFs with SmartNIC/FPGA offload — chained
// into service chains whose throughput, latency and cost the E15 experiment
// compares. The model is per-packet cycle accounting with an M/M/1 queueing
// term per function, the standard first-order NFV performance model.
package nfv

import "fmt"

// Function identifies a packet-processing function.
type Function int

// The function families the roadmap's softwarization discussion names.
const (
	Firewall Function = iota
	NAT
	DPI
	LoadBalancer
	Router
)

// String implements fmt.Stringer.
func (f Function) String() string {
	switch f {
	case Firewall:
		return "firewall"
	case NAT:
		return "nat"
	case DPI:
		return "dpi"
	case LoadBalancer:
		return "lb"
	case Router:
		return "router"
	default:
		return fmt.Sprintf("function(%d)", int(f))
	}
}

// VNF is a software network function instance on general-purpose cores.
type VNF struct {
	Function Function
	// CyclesPerPacket is the per-packet processing cost on one core.
	CyclesPerPacket float64
	// Cores is the number of cores assigned to this instance.
	Cores int
	// CoreGHz is the clock of those cores.
	CoreGHz float64
	// VSwitchUS is the fixed per-packet datapath overhead to get the packet
	// into and out of the function: NIC → kernel/vswitch → VNF and back.
	// This is what made 2016-era NFV slower than appliances at equal load;
	// SR-IOV/SmartNIC datapaths cut it to ~1 µs.
	VSwitchUS float64
	// Offloaded marks that the hot loop runs on a SmartNIC/FPGA; the
	// effective per-packet cycles are divided by OffloadFactor and the
	// residual host work handles only control/exception traffic.
	Offloaded     bool
	OffloadFactor float64
}

// ServiceTimeS returns the per-packet service time in seconds on one core
// (after offload scaling).
func (v *VNF) ServiceTimeS() float64 {
	c := v.CyclesPerPacket
	if v.Offloaded && v.OffloadFactor > 1 {
		c /= v.OffloadFactor
	}
	return c / (v.CoreGHz * 1e9)
}

// CapacityPPS returns the instance's saturation throughput in packets/s:
// cores act as parallel servers on a shared queue.
func (v *VNF) CapacityPPS() float64 {
	s := v.ServiceTimeS()
	if s <= 0 {
		return 0
	}
	return float64(v.Cores) / s
}

// LatencyUS returns the expected per-packet sojourn time in microseconds at
// offered load lambda (packets/s), using the M/M/1 approximation on the
// aggregated capacity (exact for cores=1, a mild underestimate of pooling
// benefits otherwise — conservative for the NFV side of the comparison).
func (v *VNF) LatencyUS(lambda float64) (float64, error) {
	mu := v.CapacityPPS()
	if lambda >= mu {
		return 0, fmt.Errorf("nfv: %s overloaded: %.3g pps offered, %.3g pps capacity", v.Function, lambda, mu)
	}
	s := 1 / mu
	sojourn := s / (1 - lambda/mu)
	return sojourn*1e6 + v.VSwitchUS, nil
}

// Clone returns a copy of the VNF (used when scaling out instances).
func (v *VNF) Clone() *VNF {
	c := *v
	return &c
}

// DefaultVNF returns a software instance of the given function with
// representative per-packet costs on a 2.4 GHz core. Costs reflect the
// relative complexity ordering: stateless filtering is cheap, deep packet
// inspection is an order of magnitude dearer.
func DefaultVNF(f Function, cores int) *VNF {
	cycles := map[Function]float64{
		Firewall:     1200,
		NAT:          1800,
		DPI:          16000,
		LoadBalancer: 1500,
		Router:       2200,
	}[f]
	return &VNF{Function: f, CyclesPerPacket: cycles, Cores: cores, CoreGHz: 2.4, VSwitchUS: 8}
}

// Offload returns a copy of v with SmartNIC/FPGA offload applied. The
// factor models moving the match/action hot loop into hardware; DPI gains
// the most (regex engines), stateless functions less.
func Offload(v *VNF) *VNF {
	c := v.Clone()
	c.Offloaded = true
	c.VSwitchUS = 1 // SR-IOV / on-NIC datapath
	switch v.Function {
	case DPI:
		c.OffloadFactor = 20
	case Firewall, LoadBalancer:
		c.OffloadFactor = 8
	default:
		c.OffloadFactor = 5
	}
	return c
}

// Appliance is the fixed-function hardware baseline: a purpose-built box
// with line-rate throughput and constant latency, at appliance prices and
// appliance inflexibility (deploying a new function means a procurement
// cycle, not a software rollout).
type Appliance struct {
	Function  Function
	PPS       float64 // line-rate capacity, packets/s
	LatencyUS float64 // fixed cut-through latency
	PriceEUR  float64
	// DeployDays is the lead time to stand up a new unit.
	DeployDays float64
}

// DefaultAppliance returns a representative hardware appliance for f.
func DefaultAppliance(f Function) *Appliance {
	base := map[Function]Appliance{
		Firewall:     {PPS: 150e6, LatencyUS: 4, PriceEUR: 80000, DeployDays: 90},
		NAT:          {PPS: 120e6, LatencyUS: 5, PriceEUR: 70000, DeployDays: 90},
		DPI:          {PPS: 40e6, LatencyUS: 12, PriceEUR: 220000, DeployDays: 120},
		LoadBalancer: {PPS: 130e6, LatencyUS: 4, PriceEUR: 90000, DeployDays: 90},
		Router:       {PPS: 200e6, LatencyUS: 3, PriceEUR: 150000, DeployDays: 120},
	}[f]
	base.Function = f
	return &base
}

// ApplianceLatencyUS returns the appliance's sojourn at offered load: fixed
// latency until saturation, error beyond.
func (a *Appliance) ApplianceLatencyUS(lambda float64) (float64, error) {
	if lambda >= a.PPS {
		return 0, fmt.Errorf("nfv: appliance %s overloaded", a.Function)
	}
	return a.LatencyUS, nil
}
