package kernels

// FilterScan returns the indices of elements satisfying pred — the
// selection primitive of every analytics engine. It is branchy on a CPU
// and branch-free on wide hardware, which is why its offload descriptor
// carries a selectivity hint.
func FilterScan(col []int64, pred func(int64) bool) []int32 {
	out := make([]int32, 0, len(col)/4)
	for i, v := range col {
		if pred(v) {
			out = append(out, int32(i))
		}
	}
	return out
}

// FilterRange is the specialized, vectorizable range filter lo <= v < hi.
func FilterRange(col []int64, lo, hi int64) []int32 {
	out := make([]int32, 0, len(col)/4)
	for i, v := range col {
		if v >= lo && v < hi {
			out = append(out, int32(i))
		}
	}
	return out
}

// FilterRangeIncl is the closed-interval variant lo <= v <= hi, used when
// a bound comes from a ">=" / "<=" predicate and the half-open encoding
// cannot represent the extreme (hi = MaxInt64).
func FilterRangeIncl(col []int64, lo, hi int64) []int32 {
	out := make([]int32, 0, len(col)/4)
	for i, v := range col {
		if v >= lo && v <= hi {
			out = append(out, int32(i))
		}
	}
	return out
}

// RefineRangeIncl intersects an existing selection with lo <= col[i] <= hi,
// the building block for conjunctions of range predicates.
func RefineRangeIncl(col []int64, sel []int32, lo, hi int64) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if v := col[i]; v >= lo && v <= hi {
			out = append(out, i)
		}
	}
	return out
}

// Gather materializes col[idx] for each index — the companion primitive to
// a filter.
func Gather(col []int64, idx []int32) []int64 {
	out := make([]int64, len(idx))
	for i, j := range idx {
		out[i] = col[j]
	}
	return out
}

// GatherFloat64 is Gather for float64 columns.
func GatherFloat64(col []float64, idx []int32) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = col[j]
	}
	return out
}

// PrefixSum computes the inclusive prefix sum in place and returns the
// total — the core of stream compaction on parallel hardware.
func PrefixSum(xs []int64) int64 {
	var acc int64
	for i, x := range xs {
		acc += x
		xs[i] = acc
	}
	return acc
}

// SumInt64 reduces a column to its sum.
func SumInt64(col []int64) int64 {
	var acc int64
	for _, v := range col {
		acc += v
	}
	return acc
}

// MinMaxInt64 returns the extrema of a non-empty column.
func MinMaxInt64(col []int64) (min, max int64) {
	min, max = col[0], col[0]
	for _, v := range col[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Histogram counts values into buckets of equal width over [lo, hi);
// values outside the range are clamped into the edge buckets.
func Histogram(col []int64, lo, hi int64, buckets int) []int64 {
	if buckets <= 0 || hi <= lo {
		panic("kernels: invalid histogram spec")
	}
	out := make([]int64, buckets)
	width := float64(hi-lo) / float64(buckets)
	for _, v := range col {
		b := int(float64(v-lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		out[b]++
	}
	return out
}
