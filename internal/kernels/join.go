package kernels

// Pair is one (key, value) tuple of a join input.
type Pair struct {
	Key uint64
	Val int64
}

// JoinRow is one output tuple of a join: the key plus both sides' values.
type JoinRow struct {
	Key         uint64
	Left, Right int64
}

// HashJoin computes the inner equi-join of build and probe on Key using a
// chained hash table built over the smaller conventionally-left side.
// Output order follows the probe side (stable with respect to probe), with
// matches for one probe row emitted in build order.
func HashJoin(build, probe []Pair) []JoinRow {
	type slot struct {
		val  int64
		next int32
	}
	// Open chaining over a power-of-two bucket array.
	buckets := 1
	for buckets < len(build)*2 {
		buckets *= 2
	}
	if buckets == 0 {
		buckets = 1
	}
	head := make([]int32, buckets)
	for i := range head {
		head[i] = -1
	}
	keys := make([]uint64, len(build))
	slots := make([]slot, len(build))
	mask := uint64(buckets - 1)
	// Insert in reverse so chains read in build order.
	for i := len(build) - 1; i >= 0; i-- {
		p := build[i]
		h := mix64(p.Key) & mask
		keys[i] = p.Key
		slots[i] = slot{val: p.Val, next: head[h]}
		head[h] = int32(i)
	}
	var out []JoinRow
	for _, p := range probe {
		h := mix64(p.Key) & mask
		for j := head[h]; j >= 0; j = slots[j].next {
			if keys[j] == p.Key {
				out = append(out, JoinRow{Key: p.Key, Left: slots[j].val, Right: p.Val})
			}
		}
	}
	return out
}

// NestedLoopJoin is the quadratic reference implementation used to verify
// HashJoin and as the unaccelerated worst-case baseline.
func NestedLoopJoin(build, probe []Pair) []JoinRow {
	var out []JoinRow
	for _, p := range probe {
		for _, b := range build {
			if b.Key == p.Key {
				out = append(out, JoinRow{Key: p.Key, Left: b.Val, Right: p.Val})
			}
		}
	}
	return out
}

// mix64 is the SplitMix64 finalizer, a strong cheap hash for join keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// GroupSum aggregates vals by key, returning a map — the group-by
// building block.
func GroupSum(pairs []Pair) map[uint64]int64 {
	out := make(map[uint64]int64, len(pairs)/4+1)
	for _, p := range pairs {
		out[p.Key] += p.Val
	}
	return out
}

// GroupCount counts tuples per key.
func GroupCount(pairs []Pair) map[uint64]int64 {
	out := make(map[uint64]int64, len(pairs)/4+1)
	for _, p := range pairs {
		out[p.Key]++
	}
	return out
}
