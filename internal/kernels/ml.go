package kernels

import "math"

// KMeansResult holds the converged model.
type KMeansResult struct {
	Centroids  [][]float64
	Assign     []int
	Iterations int
	// Inertia is the within-cluster sum of squared distances.
	Inertia float64
}

// KMeans runs Lloyd's algorithm from the given initial centroids until
// assignments stabilize or maxIter is reached. It is deterministic for a
// fixed initialization. Initial centroids are copied, not mutated.
func KMeans(points [][]float64, init [][]float64, maxIter int) KMeansResult {
	k := len(init)
	if k == 0 || len(points) == 0 {
		return KMeansResult{}
	}
	dims := len(points[0])
	cents := make([][]float64, k)
	for i, c := range init {
		cents[i] = append([]float64(nil), c...)
	}
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c, cent := range cents {
				d := sqDist(p, cent)
				if d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; empty clusters keep their position.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dims)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, x := range p {
				sums[c][d] += x
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			for d := range cents[c] {
				cents[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	inertia := 0.0
	for i, p := range points {
		inertia += sqDist(p, cents[assign[i]])
	}
	return KMeansResult{Centroids: cents, Assign: assign, Iterations: iter, Inertia: inertia}
}

func sqDist(a, b []float64) float64 {
	t := 0.0
	for i := range a {
		d := a[i] - b[i]
		t += d * d
	}
	return t
}

// MatMul computes C = A×B for dense row-major matrices, with cache
// blocking. A is m×k, B is k×n, C is m×n; C must be zeroed by the caller
// or freshly allocated via MatMulNew.
func MatMul(a, b, c []float64, m, k, n int) {
	const bs = 64
	for ii := 0; ii < m; ii += bs {
		for kk := 0; kk < k; kk += bs {
			for jj := 0; jj < n; jj += bs {
				iMax := min(ii+bs, m)
				kMax := min(kk+bs, k)
				jMax := min(jj+bs, n)
				for i := ii; i < iMax; i++ {
					for l := kk; l < kMax; l++ {
						av := a[i*k+l]
						if av == 0 {
							continue
						}
						bRow := b[l*n : l*n+n]
						cRow := c[i*n : i*n+n]
						for j := jj; j < jMax; j++ {
							cRow[j] += av * bRow[j]
						}
					}
				}
			}
		}
	}
}

// MatMulNew allocates and returns C = A×B.
func MatMulNew(a, b []float64, m, k, n int) []float64 {
	c := make([]float64, m*n)
	MatMul(a, b, c, m, k, n)
	return c
}

// MatMulNaive is the unblocked reference used to verify MatMul.
func MatMulNaive(a, b []float64, m, k, n int) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t := 0.0
			for l := 0; l < k; l++ {
				t += a[i*k+l] * b[l*n+j]
			}
			c[i*n+j] = t
		}
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
