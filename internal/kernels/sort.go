// Package kernels implements the "often-required functional building
// blocks in existing processing frameworks" that Recommendation 10
// proposes to identify and accelerate: sort, scan/filter, hash join,
// aggregation, top-k, histogram, k-means, PageRank, dense matrix multiply
// and substring search. Every block has a real, tested Go implementation
// (the functional reference) and a roofline descriptor (ops/bytes) so the
// hw device models can price the same block on CPU, GPU, FPGA or ASIC —
// which is exactly how the E5/E11 experiments quantify the
// "10× throughput per node" target of Recommendation 4.
package kernels

import "sort"

// RadixSortUint64 sorts keys ascending with an 8-bit LSD radix sort —
// the hardware-friendly sort used as the accelerated shuffle primitive.
// It runs in O(8·n) time and O(n) extra space.
func RadixSortUint64(keys []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	buf := make([]uint64, n)
	src, dst := keys, buf
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		skip := true
		for _, k := range src {
			b := byte(k >> shift)
			if b != 0 {
				skip = false
			}
			count[b]++
		}
		if skip {
			continue
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// ComparisonSortUint64 is the general-purpose baseline (introsort via the
// standard library); the sort ablation compares it against radix.
func ComparisonSortUint64(keys []uint64) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// IsSortedUint64 reports whether keys is non-decreasing.
func IsSortedUint64(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

// SortPairsByKey sorts parallel key/value slices by key (radix on keys,
// permuting values alongside) — the shuffle building block frameworks use.
func SortPairsByKey(keys []uint64, vals []int64) {
	n := len(keys)
	if n != len(vals) {
		panic("kernels: key/value length mismatch")
	}
	if n < 2 {
		return
	}
	kbuf := make([]uint64, n)
	vbuf := make([]int64, n)
	ksrc, kdst := keys, kbuf
	vsrc, vdst := vals, vbuf
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		skip := true
		for _, k := range ksrc {
			b := byte(k >> shift)
			if b != 0 {
				skip = false
			}
			count[b]++
		}
		if skip {
			continue
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for i, k := range ksrc {
			b := byte(k >> shift)
			kdst[count[b]] = k
			vdst[count[b]] = vsrc[i]
			count[b]++
		}
		ksrc, kdst = kdst, ksrc
		vsrc, vdst = vdst, vsrc
	}
	if &ksrc[0] != &keys[0] {
		copy(keys, ksrc)
		copy(vals, vsrc)
	}
}
