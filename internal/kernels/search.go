package kernels

// SubstringScan returns the start offsets of every (possibly overlapping)
// occurrence of pattern in text using Boyer–Moore–Horspool — the
// regex-lite text-scan building block behind NLP pre-filters and log
// analytics. An empty pattern matches nowhere.
func SubstringScan(text, pattern []byte) []int {
	m := len(pattern)
	if m == 0 || m > len(text) {
		return nil
	}
	var shift [256]int
	for i := range shift {
		shift[i] = m
	}
	for i := 0; i < m-1; i++ {
		shift[pattern[i]] = m - 1 - i
	}
	var out []int
	pos := 0
	last := pattern[m-1]
	for pos+m <= len(text) {
		c := text[pos+m-1]
		if c == last && matchAt(text[pos:], pattern) {
			out = append(out, pos)
		}
		pos += shift[c]
	}
	return out
}

func matchAt(text, pattern []byte) bool {
	for i := 0; i < len(pattern); i++ {
		if text[i] != pattern[i] {
			return false
		}
	}
	return true
}

// NaiveScan is the quadratic reference used to verify SubstringScan.
func NaiveScan(text, pattern []byte) []int {
	m := len(pattern)
	if m == 0 || m > len(text) {
		return nil
	}
	var out []int
	for i := 0; i+m <= len(text); i++ {
		if matchAt(text[i:], pattern) {
			out = append(out, i)
		}
	}
	return out
}

// MultiScanCount counts total occurrences of each pattern across docs —
// the batched form used by the E11 building-block table.
func MultiScanCount(docs [][]byte, patterns [][]byte) []int64 {
	out := make([]int64, len(patterns))
	for _, d := range docs {
		for i, p := range patterns {
			out[i] += int64(len(SubstringScan(d, p)))
		}
	}
	return out
}
