package kernels

import (
	"math"

	"repro/internal/workload"
)

// PageRank runs power iteration with damping d until the L1 delta falls
// below eps or maxIter is reached. Dangling mass is redistributed
// uniformly, so ranks sum to 1 at every iteration.
func PageRank(g *workload.Graph, d float64, eps float64, maxIter int) ([]float64, int) {
	n := g.N
	if n == 0 {
		return nil, 0
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		base := (1 - d) / float64(n)
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			out := g.Adj[u]
			if len(out) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(out))
			for _, v := range out {
				next[v] += share
			}
		}
		spread := d * dangling / float64(n)
		delta := 0.0
		for i := range next {
			next[i] = base + d*next[i] + spread
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < eps {
			iter++
			break
		}
	}
	return rank, iter
}

// BFS returns hop distances from src (-1 when unreachable) — the graph
// traversal building block.
func BFS(g *workload.Graph, src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v32 := range g.Adj[u] {
			v := int(v32)
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TriangleCount counts directed triangles u→v→w→u, each reported once
// (the three rotations are deduplicated). On an undirected graph stored
// with both arcs, the result is twice the number of undirected triangles
// (each has two orientations).
func TriangleCount(g *workload.Graph) int64 {
	// Adjacency sets for O(1) membership.
	sets := make([]map[int32]struct{}, g.N)
	for u := 0; u < g.N; u++ {
		sets[u] = make(map[int32]struct{}, len(g.Adj[u]))
		for _, v := range g.Adj[u] {
			sets[u][v] = struct{}{}
		}
	}
	var count int64
	for u := 0; u < g.N; u++ {
		u32 := int32(u)
		for _, v := range g.Adj[u] {
			if v == u32 {
				continue
			}
			for _, w := range g.Adj[v] {
				if w == u32 || w == v {
					continue
				}
				if _, ok := sets[w][u32]; ok {
					count++
				}
			}
		}
	}
	return count / 3
}
