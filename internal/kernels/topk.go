package kernels

import "container/heap"

// TopK returns the k largest values in descending order using a bounded
// min-heap (O(n log k)); for k >= n it returns all values sorted
// descending.
func TopK(xs []int64, k int) []int64 {
	if k <= 0 {
		return nil
	}
	h := &minHeap{}
	for _, x := range xs {
		if h.Len() < k {
			heap.Push(h, x)
		} else if x > (*h)[0] {
			(*h)[0] = x
			heap.Fix(h, 0)
		}
	}
	out := make([]int64, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(int64)
	}
	return out
}

type minHeap []int64

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WeightedTopK returns the keys of the k largest weights, descending.
// Ties break toward the lower key for determinism.
type WeightedItem struct {
	Key    uint64
	Weight float64
}

// TopKWeighted selects the k heaviest items, descending by weight then
// ascending by key.
func TopKWeighted(items []WeightedItem, k int) []WeightedItem {
	if k <= 0 {
		return nil
	}
	h := &itemHeap{}
	for _, it := range items {
		if h.Len() < k {
			heap.Push(h, it)
		} else if itemLess((*h)[0], it) {
			(*h)[0] = it
			heap.Fix(h, 0)
		}
	}
	out := make([]WeightedItem, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(WeightedItem)
	}
	return out
}

// itemLess orders a strictly below b (a is "worse": lighter, or equal
// weight with a higher key).
func itemLess(a, b WeightedItem) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	return a.Key > b.Key
}

type itemHeap []WeightedItem

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return itemLess(h[i], h[j]) }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)        { *h = append(*h, x.(WeightedItem)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
