package kernels

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

// equalSlices compares element-wise, treating nil and empty as equal
// (reflect.DeepEqual does not).
func equalSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randKeys(seed uint64, n int) []uint64 {
	rng := sim.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func TestRadixSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 100, 4096} {
		a := randKeys(uint64(n)+1, n)
		b := append([]uint64(nil), a...)
		RadixSortUint64(a)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if !equalSlices(a, b) {
			t.Fatalf("n=%d: radix sort diverges from stdlib", n)
		}
	}
}

func TestRadixSortProperty(t *testing.T) {
	f := func(xs []uint64) bool {
		orig := append([]uint64(nil), xs...)
		RadixSortUint64(xs)
		if !IsSortedUint64(xs) {
			return false
		}
		// Multiset preserved.
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		return equalSlices(orig, xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadixSortSmallValues(t *testing.T) {
	// High bytes all zero: the skip-pass optimization must not break.
	a := []uint64{5, 3, 9, 1, 3, 0, 255}
	RadixSortUint64(a)
	if !IsSortedUint64(a) {
		t.Fatalf("got %v", a)
	}
}

func TestSortPairsByKeyKeepsPairs(t *testing.T) {
	rng := sim.NewRNG(7)
	n := 1000
	keys := make([]uint64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 64 // many duplicates
		vals[i] = int64(keys[i]) * 10
	}
	SortPairsByKey(keys, vals)
	if !IsSortedUint64(keys) {
		t.Fatal("keys not sorted")
	}
	for i := range keys {
		if vals[i] != int64(keys[i])*10 {
			t.Fatalf("pair broken at %d: key=%d val=%d", i, keys[i], vals[i])
		}
	}
}

func TestSortPairsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortPairsByKey(make([]uint64, 3), make([]int64, 2))
}

func TestFilterScanAndRangeAgree(t *testing.T) {
	rng := sim.NewRNG(3)
	col := make([]int64, 5000)
	for i := range col {
		col[i] = int64(rng.Intn(1000))
	}
	a := FilterScan(col, func(v int64) bool { return v >= 100 && v < 300 })
	b := FilterRange(col, 100, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("FilterScan and FilterRange disagree")
	}
	for _, i := range a {
		if col[i] < 100 || col[i] >= 300 {
			t.Fatalf("index %d value %d escapes predicate", i, col[i])
		}
	}
}

func TestGatherRoundTrip(t *testing.T) {
	col := []int64{10, 20, 30, 40}
	idx := FilterRange(col, 15, 45)
	got := Gather(col, idx)
	if !reflect.DeepEqual(got, []int64{20, 30, 40}) {
		t.Fatalf("gather = %v", got)
	}
}

func TestPrefixSumAndSum(t *testing.T) {
	xs := []int64{1, 2, 3, 4}
	if s := SumInt64(xs); s != 10 {
		t.Fatalf("sum = %d", s)
	}
	total := PrefixSum(xs)
	if total != 10 || !reflect.DeepEqual(xs, []int64{1, 3, 6, 10}) {
		t.Fatalf("prefix = %v total = %d", xs, total)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMaxInt64([]int64{5, -3, 9, 0})
	if mn != -3 || mx != 9 {
		t.Fatalf("min=%d max=%d", mn, mx)
	}
}

func TestFilterRangeInclBounds(t *testing.T) {
	col := []int64{-9223372036854775808, -5, 0, 5, 9223372036854775807}
	if got := FilterRangeIncl(col, -9223372036854775808, 9223372036854775807); len(got) != len(col) {
		t.Fatalf("unbounded inclusive range kept %d of %d", len(got), len(col))
	}
	got := FilterRangeIncl(col, -5, 5)
	if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Fatalf("inclusive range = %v", got)
	}
}

func TestRefineRangeIncl(t *testing.T) {
	col := []int64{10, 20, 30, 40, 50}
	sel := FilterRangeIncl(col, 20, 50)
	refined := RefineRangeIncl(col, sel, 20, 30)
	if !reflect.DeepEqual(refined, []int32{1, 2}) {
		t.Fatalf("refined = %v", refined)
	}
}

func TestGatherFloat64(t *testing.T) {
	col := []float64{1.5, 2.5, 3.5, 4.5}
	got := GatherFloat64(col, []int32{3, 0})
	if !reflect.DeepEqual(got, []float64{4.5, 1.5}) {
		t.Fatalf("gather = %v", got)
	}
}

func TestHistogramCountsEverything(t *testing.T) {
	rng := sim.NewRNG(9)
	col := make([]int64, 10000)
	for i := range col {
		col[i] = int64(rng.Intn(100)) - 20 // some out of [0,80) range
	}
	h := Histogram(col, 0, 80, 8)
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(len(col)) {
		t.Fatalf("histogram total = %d, want %d (clamping must not lose values)", total, len(col))
	}
}

func TestHistogramInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram([]int64{1}, 10, 10, 4)
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	rng := sim.NewRNG(11)
	build := make([]Pair, 300)
	probe := make([]Pair, 500)
	for i := range build {
		build[i] = Pair{Key: uint64(rng.Intn(100)), Val: int64(i)}
	}
	for i := range probe {
		probe[i] = Pair{Key: uint64(rng.Intn(150)), Val: int64(i + 1000)}
	}
	got := HashJoin(build, probe)
	want := NestedLoopJoin(build, probe)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hash join diverges: %d vs %d rows", len(got), len(want))
	}
}

func TestHashJoinEmptySides(t *testing.T) {
	if out := HashJoin(nil, []Pair{{1, 1}}); len(out) != 0 {
		t.Fatal("empty build must give empty join")
	}
	if out := HashJoin([]Pair{{1, 1}}, nil); len(out) != 0 {
		t.Fatal("empty probe must give empty join")
	}
}

func TestHashJoinProperty(t *testing.T) {
	f := func(bk, pk []uint8) bool {
		build := make([]Pair, len(bk))
		for i, k := range bk {
			build[i] = Pair{Key: uint64(k % 16), Val: int64(i)}
		}
		probe := make([]Pair, len(pk))
		for i, k := range pk {
			probe[i] = Pair{Key: uint64(k % 16), Val: int64(i)}
		}
		return equalSlices(HashJoin(build, probe), NestedLoopJoin(build, probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSumAndCount(t *testing.T) {
	pairs := []Pair{{1, 10}, {2, 20}, {1, 5}, {3, 7}, {2, -20}}
	sums := GroupSum(pairs)
	if sums[1] != 15 || sums[2] != 0 || sums[3] != 7 {
		t.Fatalf("sums = %v", sums)
	}
	counts := GroupCount(pairs)
	if counts[1] != 2 || counts[2] != 2 || counts[3] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTopKDescendingAndBounded(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 9, 2, 8}
	got := TopK(xs, 3)
	if !reflect.DeepEqual(got, []int64{9, 9, 8}) {
		t.Fatalf("top3 = %v", got)
	}
	if got := TopK(xs, 100); len(got) != len(xs) {
		t.Fatalf("k>n should return all, got %d", len(got))
	}
	if TopK(xs, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(xs []int64, k8 uint8) bool {
		k := int(k8%16) + 1
		got := TopK(xs, k)
		ref := append([]int64(nil), xs...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
		if k > len(ref) {
			k = len(ref)
		}
		return equalSlices(got, ref[:k])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKWeightedDeterministicTies(t *testing.T) {
	items := []WeightedItem{{Key: 5, Weight: 1}, {Key: 2, Weight: 1}, {Key: 9, Weight: 2}}
	got := TopKWeighted(items, 2)
	if got[0].Key != 9 || got[1].Key != 2 {
		t.Fatalf("got %v, want key 9 then key 2 (tie toward lower key)", got)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	pts, centers := workload.Points(42, 300, 2, 3)
	res := KMeans(pts, centers, 50)
	if res.Iterations == 0 {
		t.Fatal("expected at least one iteration")
	}
	// Every point should sit closer to its assigned centroid than to any
	// other (Lloyd invariant at convergence).
	for i, p := range pts {
		own := sqDist(p, res.Centroids[res.Assign[i]])
		for c := range res.Centroids {
			if sqDist(p, res.Centroids[c]) < own-1e-9 {
				t.Fatalf("point %d assigned to %d but closer to %d", i, res.Assign[i], c)
			}
		}
	}
}

func TestKMeansInertiaNonIncreasing(t *testing.T) {
	pts, centers := workload.Points(7, 200, 4, 4)
	prev := math.Inf(1)
	for iters := 1; iters <= 5; iters++ {
		res := KMeans(pts, centers, iters)
		if res.Inertia > prev+1e-6 {
			t.Fatalf("inertia rose from %v to %v at %d iters", prev, res.Inertia, iters)
		}
		prev = res.Inertia
	}
}

func TestKMeansEmptyInputs(t *testing.T) {
	if res := KMeans(nil, nil, 10); res.Assign != nil || res.Centroids != nil {
		t.Fatal("empty inputs must give empty result")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := sim.NewRNG(5)
	m, k, n := 33, 65, 29 // non-multiples of the block size
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	got := MatMulNew(a, b, m, k, n)
	want := MatMulNaive(a, b, m, k, n)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("C[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 16
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	rng := sim.NewRNG(1)
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
	}
	got := MatMulNew(a, id, n, n, n)
	for i := range got {
		if math.Abs(got[i]-a[i]) > 1e-12 {
			t.Fatal("A × I must equal A")
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := workload.RMAT(3, 500, 2500)
	rank, iters := PageRank(g, 0.85, 1e-9, 200)
	if iters == 0 {
		t.Fatal("no iterations ran")
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
}

func TestPageRankStarCenterWins(t *testing.T) {
	g := workload.Star(50) // spokes point at vertex 0
	rank, _ := PageRank(g, 0.85, 1e-12, 500)
	for v := 1; v < g.N; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("hub rank %v not above spoke %v", rank[0], rank[v])
		}
	}
}

func TestPageRankRingUniform(t *testing.T) {
	g := workload.Ring(20)
	rank, _ := PageRank(g, 0.85, 1e-12, 1000)
	for v := 1; v < g.N; v++ {
		if math.Abs(rank[v]-rank[0]) > 1e-9 {
			t.Fatalf("ring must be uniform: rank[%d]=%v rank[0]=%v", v, rank[v], rank[0])
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := workload.Ring(6)
	d := BFS(g, 0)
	// Directed ring: distance is the forward walk length.
	want := []int{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("bfs = %v, want %v", d, want)
	}
}

func TestTriangleCountDirected(t *testing.T) {
	g := &workload.Graph{N: 3, Adj: [][]int32{{1}, {2}, {0}}}
	if c := TriangleCount(g); c != 1 {
		t.Fatalf("directed 3-cycle count = %d, want 1", c)
	}
	// No triangle in a directed path.
	p := &workload.Graph{N: 3, Adj: [][]int32{{1}, {2}, nil}}
	if c := TriangleCount(p); c != 0 {
		t.Fatalf("path count = %d, want 0", c)
	}
}

func TestSubstringScanMatchesNaive(t *testing.T) {
	docs := workload.Corpus(13, 20, 200, 500)
	var text bytes.Buffer
	for _, d := range docs {
		for _, w := range d.Words {
			text.WriteString(w)
			text.WriteByte(' ')
		}
	}
	tb := text.Bytes()
	for _, pat := range []string{"a", "the", "zq", "w0 w1", ""} {
		got := SubstringScan(tb, []byte(pat))
		want := NaiveScan(tb, []byte(pat))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern %q: BMH diverges from naive (%d vs %d hits)", pat, len(got), len(want))
		}
	}
}

func TestSubstringScanOverlapping(t *testing.T) {
	got := SubstringScan([]byte("aaaa"), []byte("aa"))
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("overlapping = %v", got)
	}
}

func TestSubstringScanProperty(t *testing.T) {
	f := func(text []byte, pat []byte) bool {
		if len(pat) > 4 {
			pat = pat[:4]
		}
		return equalSlices(SubstringScan(text, pat), NaiveScan(text, pat))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiScanCount(t *testing.T) {
	docs := [][]byte{[]byte("the cat and the hat"), []byte("the end")}
	got := MultiScanCount(docs, [][]byte{[]byte("the"), []byte("cat"), []byte("zzz")})
	if got[0] != 3 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("counts = %v", got)
	}
}

func TestDescriptorsPositiveAndOrdered(t *testing.T) {
	for name, k := range Blocks() {
		if k.Ops <= 0 || k.Bytes <= 0 {
			t.Fatalf("%s: non-positive descriptor %+v", name, k)
		}
		if k.ParallelFraction <= 0 || k.ParallelFraction > 1 {
			t.Fatalf("%s: bad parallel fraction %v", name, k.ParallelFraction)
		}
	}
	// Matmul must be far more compute-intense than sort.
	if MatMulDescriptor(1024, 1024, 1024).Intensity() <= SortDescriptor(1<<22).Intensity() {
		t.Fatal("matmul must have higher operational intensity than sort")
	}
}

func TestDescriptorsDriveAcceleratorSpeedups(t *testing.T) {
	// Recommendation 4's 10× target: the compute-bound blocks should show
	// order-of-magnitude gains on the GPU model; bandwidth-bound scans
	// should not (they're capped by memory, not compute).
	cpu, gpu := hw.XeonCPU(), hw.GPGPU()
	mm := MatMulDescriptor(2048, 2048, 2048)
	if s := hw.Speedup(cpu, gpu, mm); s < 8 {
		t.Fatalf("matmul GPU speedup = %v, want >= 8", s)
	}
	scan := FilterDescriptor(1<<24, 0.1)
	if s := hw.Speedup(cpu, gpu, scan); s > 8 {
		t.Fatalf("bandwidth-bound filter speedup = %v, want < 8 (memory wall)", s)
	}
}
