package kernels

import "repro/internal/hw"

// Descriptors translate each building block at a given input size into the
// roofline terms (total ops, total memory traffic, parallel fraction) the
// hw device models price. Constants are first-order counts of the
// reference implementations: what matters downstream are the *ratios*
// between blocks (sort is memory-bound, k-means and matmul are
// compute-bound, scans are pure bandwidth), which these counts preserve.

// SortDescriptor describes an n-key radix sort: 8 passes over 8-byte keys,
// each pass a counting pass plus a scatter (≈4 ops/byte-touch), almost
// perfectly parallel.
func SortDescriptor(n int) hw.Kernel {
	fn := float64(n)
	return hw.Kernel{
		Name:             "sort",
		Ops:              8 * 4 * fn,
		Bytes:            8 * 2 * 8 * fn, // 8 passes × read+write × 8 bytes
		ParallelFraction: 0.99,
	}
}

// FilterDescriptor describes a selection scan over n 8-byte values with
// the given selectivity (fraction of rows kept): one compare per row plus
// output writes.
func FilterDescriptor(n int, selectivity float64) hw.Kernel {
	fn := float64(n)
	return hw.Kernel{
		Name:             "filter",
		Ops:              2 * fn,
		Bytes:            8*fn + 4*fn*selectivity,
		ParallelFraction: 1.0,
	}
}

// ProjectDescriptor describes computing exprs derived columns over n
// rows: a handful of ops per expression per row, streaming reads of the
// referenced inputs and writes of the outputs.
func ProjectDescriptor(n, exprs int) hw.Kernel {
	if exprs < 1 {
		exprs = 1
	}
	fn, fe := float64(n), float64(exprs)
	return hw.Kernel{
		Name:             "project",
		Ops:              4 * fe * fn,
		Bytes:            8 * (fe + 1) * fn, // read inputs + write outputs
		ParallelFraction: 1.0,
	}
}

// JoinDescriptor describes a hash join of build and probe rows: hash +
// insert per build row, hash + chain walk per probe row.
func JoinDescriptor(build, probe int) hw.Kernel {
	fb, fp := float64(build), float64(probe)
	return hw.Kernel{
		Name:             "hash-join",
		Ops:              12*fb + 16*fp,
		Bytes:            16*fb + 16*fp + 24*fp, // inputs + table traffic
		ParallelFraction: 0.95,
	}
}

// AggregateDescriptor describes a group-by sum of n rows into k groups.
func AggregateDescriptor(n, k int) hw.Kernel {
	fn := float64(n)
	return hw.Kernel{
		Name:             "aggregate",
		Ops:              8 * fn,
		Bytes:            16*fn + 16*float64(k),
		ParallelFraction: 0.97,
	}
}

// TopKDescriptor describes a bounded-heap top-k over n values.
func TopKDescriptor(n, k int) hw.Kernel {
	fn := float64(n)
	logk := 1.0
	for x := k; x > 1; x /= 2 {
		logk++
	}
	return hw.Kernel{
		Name:             "top-k",
		Ops:              fn * logk,
		Bytes:            8 * fn,
		ParallelFraction: 0.9,
	}
}

// HistogramDescriptor describes bucketing n values.
func HistogramDescriptor(n int) hw.Kernel {
	fn := float64(n)
	return hw.Kernel{
		Name:             "histogram",
		Ops:              4 * fn,
		Bytes:            8 * fn,
		ParallelFraction: 0.98,
	}
}

// KMeansDescriptor describes one Lloyd iteration over n points of dims
// dimensions against k centroids: a fused multiply-add per dimension per
// centroid per point.
func KMeansDescriptor(n, dims, k int) hw.Kernel {
	work := float64(n) * float64(dims) * float64(k)
	return hw.Kernel{
		Name:             "kmeans",
		Ops:              3 * work,
		Bytes:            8 * float64(n) * float64(dims),
		ParallelFraction: 0.995,
	}
}

// PageRankDescriptor describes one power iteration over a graph with n
// vertices and e edges: one FMA per edge plus vertex-side normalization,
// with irregular (gather/scatter) traffic.
func PageRankDescriptor(n, e int) hw.Kernel {
	return hw.Kernel{
		Name:             "pagerank",
		Ops:              2*float64(e) + 4*float64(n),
		Bytes:            12*float64(e) + 16*float64(n),
		ParallelFraction: 0.97,
	}
}

// MatMulDescriptor describes a dense m×k × k×n multiply: 2mkn flops over
// the classic blocked traffic approximation.
func MatMulDescriptor(m, k, n int) hw.Kernel {
	fm, fk, fn := float64(m), float64(k), float64(n)
	return hw.Kernel{
		Name:             "matmul",
		Ops:              2 * fm * fk * fn,
		Bytes:            8 * (fm*fk + fk*fn + fm*fn),
		ParallelFraction: 0.999,
	}
}

// ScanTextDescriptor describes substring scanning over bytes of text:
// about one compare per byte with streaming reads.
func ScanTextDescriptor(bytes int) hw.Kernel {
	fb := float64(bytes)
	return hw.Kernel{
		Name:             "text-scan",
		Ops:              2 * fb,
		Bytes:            fb,
		ParallelFraction: 0.99,
	}
}

// Blocks returns the named descriptor constructors at a standard "medium"
// size, for table-driven experiments over every building block.
func Blocks() map[string]hw.Kernel {
	const n = 1 << 22 // 4M rows
	return map[string]hw.Kernel{
		"sort":      SortDescriptor(n),
		"filter":    FilterDescriptor(n, 0.1),
		"hash-join": JoinDescriptor(n/4, n),
		"aggregate": AggregateDescriptor(n, 1024),
		"top-k":     TopKDescriptor(n, 100),
		"histogram": HistogramDescriptor(n),
		"kmeans":    KMeansDescriptor(1<<20, 32, 64),
		"pagerank":  PageRankDescriptor(1<<18, 1<<21),
		"matmul":    MatMulDescriptor(2048, 2048, 2048),
		"text-scan": ScanTextDescriptor(1 << 26),
	}
}
