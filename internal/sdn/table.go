// Package sdn models a software-defined networking control plane over an
// internal/topo fabric: per-switch match/action flow tables with TCAM
// capacity limits, a logically centralized controller operating in reactive
// or proactive mode, and a legacy per-box configuration baseline. It
// quantifies the roadmap's Section IV.A.2 claims — control/data plane
// separation, "a software control plane ... can make 10,000 switches look
// like one", and reconvergence after failures.
//
// NetController is the package's live control plane: the reference
// implementation of netsim.Controller that the shared SQL fabric
// consults between admission rounds. It routes through a
// capacity-bounded FlowTable (LRU rule eviction, soft timeouts,
// degrade-to-ECMP under exhaustion) and delegates route/weight choice to
// the Policy catalog in policies.go — Baseline (fixed ECMP, the retired
// LegacyFabric's role), RerouteHotLinks (load-aware multipath),
// StrictPriority (weighted class tiers) and Chain compositions.
package sdn

import "fmt"

// Match selects packets of one flow aggregate. Wildcard fields are -1.
type Match struct {
	Src int // source host ID, or -1 for any
	Dst int // destination host ID, or -1 for any
}

// Wildcard matches every packet.
var Wildcard = Match{Src: -1, Dst: -1}

// Covers reports whether m matches a concrete (src, dst) pair.
func (m Match) Covers(src, dst int) bool {
	return (m.Src == -1 || m.Src == src) && (m.Dst == -1 || m.Dst == dst)
}

// Specificity counts exact fields; higher wins at equal priority.
func (m Match) Specificity() int {
	n := 0
	if m.Src != -1 {
		n++
	}
	if m.Dst != -1 {
		n++
	}
	return n
}

// String implements fmt.Stringer.
func (m Match) String() string {
	f := func(v int) string {
		if v == -1 {
			return "*"
		}
		return fmt.Sprint(v)
	}
	return fmt.Sprintf("src=%s dst=%s", f(m.Src), f(m.Dst))
}

// Action says what a switch does with a matching packet.
type Action struct {
	// OutLink is the link ID to forward on, or -1 to drop.
	OutLink int
	// PuntToController sends the packet to the control plane instead
	// (table-miss behaviour is expressed as a low-priority punt rule).
	PuntToController bool
}

// Rule is one flow-table entry.
type Rule struct {
	Match    Match
	Action   Action
	Priority int // higher matches first

	lastUsed uint64
}

// FlowTable is a priority match/action table with bounded capacity,
// evicting the least recently used rule on overflow (the usual TCAM
// management policy for reactive SDN deployments).
type FlowTable struct {
	Capacity int
	rules    []*Rule
	clock    uint64

	// Evictions counts rules dropped due to capacity pressure.
	Evictions int
	// Hits and Misses count lookups.
	Hits, Misses int
	// OnEvict, when set, observes every rule dropped by LRU capacity
	// eviction (not explicit Remove/RemoveIf). Controllers that cache
	// state keyed by rule matches use it to stay in sync with the table.
	OnEvict func(Rule)
}

// NewFlowTable returns a table holding at most capacity rules.
// capacity <= 0 means unbounded.
func NewFlowTable(capacity int) *FlowTable {
	return &FlowTable{Capacity: capacity}
}

// Len returns the number of installed rules.
func (t *FlowTable) Len() int { return len(t.rules) }

// Install adds a rule, evicting the LRU rule if the table is full. An
// identical match at the same priority is replaced in place (rule update).
func (t *FlowTable) Install(r Rule) {
	t.clock++
	r.lastUsed = t.clock
	for i, ex := range t.rules {
		if ex.Match == r.Match && ex.Priority == r.Priority {
			t.rules[i] = &r
			return
		}
	}
	if t.Capacity > 0 && len(t.rules) >= t.Capacity {
		t.evictLRU()
	}
	t.rules = append(t.rules, &r)
}

func (t *FlowTable) evictLRU() {
	if len(t.rules) == 0 {
		return
	}
	victim := 0
	for i, r := range t.rules {
		if r.lastUsed < t.rules[victim].lastUsed {
			victim = i
		}
	}
	evicted := *t.rules[victim]
	t.rules = append(t.rules[:victim], t.rules[victim+1:]...)
	t.Evictions++
	if t.OnEvict != nil {
		t.OnEvict(evicted)
	}
}

// Lookup returns the action of the best matching rule. The best rule has
// the highest priority, breaking ties on match specificity. The second
// return is false on a table miss.
func (t *FlowTable) Lookup(src, dst int) (Action, bool) {
	t.clock++
	var best *Rule
	for _, r := range t.rules {
		if !r.Match.Covers(src, dst) {
			continue
		}
		if best == nil ||
			r.Priority > best.Priority ||
			(r.Priority == best.Priority && r.Match.Specificity() > best.Match.Specificity()) {
			best = r
		}
	}
	if best == nil {
		t.Misses++
		return Action{}, false
	}
	best.lastUsed = t.clock
	t.Hits++
	return best.Action, true
}

// Remove deletes every rule whose match equals m; it returns how many were
// removed.
func (t *FlowTable) Remove(m Match) int {
	kept := t.rules[:0]
	removed := 0
	for _, r := range t.rules {
		if r.Match == m {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.rules = kept
	return removed
}

// RemoveIf deletes every rule for which pred returns true and reports how
// many were removed. The controller uses it to flush rules through a failed
// link.
func (t *FlowTable) RemoveIf(pred func(Rule) bool) int {
	kept := t.rules[:0]
	removed := 0
	for _, r := range t.rules {
		if pred(*r) {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.rules = kept
	return removed
}
