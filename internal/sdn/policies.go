package sdn

import (
	"repro/internal/netsim"
	"repro/internal/topo"
)

// The control-plane policy catalog. Each policy plugs into NetController
// and decides two orthogonal things per flow: the route (cached in the
// flow table) and the scheduling weight (stateless, re-evaluated per
// flow). Compose orthogonal policies with Chain.

// Baseline is the fixed data plane as a policy: default seeded-ECMP
// routes, requested weights, no overrides. It retires LegacyFabric's
// role as the comparator — a NetController running Baseline charges
// control-plane bookkeeping (table rules, hit/miss accounting) while
// changing nothing about the traffic, which is exactly the
// pre-programmable fabric the roadmap argues against.
type Baseline struct{}

// Name implements Policy.
func (Baseline) Name() string { return "baseline" }

// PickPath implements Policy: keep the default ECMP route.
func (Baseline) PickPath(*PolicyContext) *topo.Path { return nil }

// Weight implements Policy: keep the requested weight.
func (Baseline) Weight(netsim.PendingFlow) float64 { return 0 }

// RerouteHotLinks steers new flows away from the fabric's hottest
// links: among a flow's ECMP candidates it picks the path whose
// most-loaded directed link is coolest, breaking ties on total path
// load — shared access hops contribute the same heat to every candidate
// and would otherwise mask different spine loads — and keeping the
// default route when candidates are fully tied. The link heat prefers
// the fabric's load-telemetry windows when present (the utilization
// EWMA of RoundState.UtilEWMA, plus this round's already placed flows),
// so the policy reacts to recent load and a link cools down once
// traffic moves off it; without telemetry it falls back to cumulative
// lifetime bytes. This is the roadmap's "SDN helps Big Data to optimize
// access to data" and FatPaths' load-aware multipath argument in one
// rule.
type RerouteHotLinks struct{}

// Name implements Policy.
func (RerouteHotLinks) Name() string { return "reroute-hot-links" }

// PickPath implements Policy.
func (RerouteHotLinks) PickPath(ctx *PolicyContext) *topo.Path {
	best := ctx.Flow.Path
	bestHot, bestSum := ctx.HottestLink(best), ctx.PathLoad(best)
	replaced := false
	for _, p := range ctx.Choices {
		hot, sum := ctx.HottestLink(p), ctx.PathLoad(p)
		if hot < bestHot || (hot == bestHot && sum < bestSum) {
			best, bestHot, bestSum, replaced = p, hot, sum, true
		}
	}
	if !replaced {
		return nil
	}
	out := best
	return &out
}

// Weight implements Policy: keep the requested weight.
func (RerouteHotLinks) Weight(netsim.PendingFlow) float64 { return 0 }

// StrictPriority approximates strict-priority scheduling with the
// weighted max-min allocator: each QoS class maps to a weight
// multiplier, and a flow's effective weight becomes requested weight ×
// multiplier. Large ratios (the default tiers are ×64 per level) make
// high classes consume bottleneck capacity almost exclusively while low
// classes keep a trickle — weighted max-min's work-conserving
// approximation of a strict scheduler, with no starvation.
type StrictPriority struct {
	// Multipliers maps class names to weight multipliers; classes absent
	// from the map (and the "" best-effort class) use 1. Nil selects
	// DefaultPriorityTiers.
	Multipliers map[string]float64
}

// DefaultPriorityTiers is the default class ladder: interactive beats
// batch beats best-effort by ×64 per tier.
var DefaultPriorityTiers = map[string]float64{
	"interactive": 64 * 64,
	"batch":       64,
}

// Name implements Policy.
func (StrictPriority) Name() string { return "strict-priority" }

// PickPath implements Policy: routing is untouched.
func (StrictPriority) PickPath(*PolicyContext) *topo.Path { return nil }

// Weight implements Policy.
func (p StrictPriority) Weight(f netsim.PendingFlow) float64 {
	tiers := p.Multipliers
	if tiers == nil {
		tiers = DefaultPriorityTiers
	}
	mult, ok := tiers[f.Class]
	if !ok || mult <= 0 {
		return 0 // keep the requested weight
	}
	w := f.Weight
	if w <= 0 {
		w = 1
	}
	return w * mult
}

// Chain composes policies: the first non-nil PickPath wins the route,
// and the first non-zero Weight wins the weight. Chain{RerouteHotLinks{},
// StrictPriority{}} reroutes hot links AND prioritizes classes.
type Chain []Policy

// Name implements Policy.
func (c Chain) Name() string {
	name := "chain("
	for i, p := range c {
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	return name + ")"
}

// PickPath implements Policy.
func (c Chain) PickPath(ctx *PolicyContext) *topo.Path {
	for _, p := range c {
		if picked := p.PickPath(ctx); picked != nil {
			return picked
		}
	}
	return nil
}

// Weight implements Policy.
func (c Chain) Weight(f netsim.PendingFlow) float64 {
	for _, p := range c {
		if w := p.Weight(f); w > 0 {
			return w
		}
	}
	return 0
}

// Policies names the catalog entries the CLI accepts.
var Policies = []string{"baseline", "reroute", "priority", "reroute+priority"}

// PolicyByName resolves a catalog name to a policy, or nil for an
// unknown name.
func PolicyByName(name string) Policy {
	switch name {
	case "baseline":
		return Baseline{}
	case "reroute":
		return RerouteHotLinks{}
	case "priority":
		return StrictPriority{}
	case "reroute+priority":
		return Chain{RerouteHotLinks{}, StrictPriority{}}
	default:
		return nil
	}
}
