package sdn

import (
	"testing"

	"repro/internal/topo"
)

func TestModeAndMatchStrings(t *testing.T) {
	if Reactive.String() != "reactive" || Proactive.String() != "proactive" {
		t.Fatal("mode strings")
	}
	m := Match{Src: 3, Dst: -1}
	if m.String() != "src=3 dst=*" {
		t.Fatalf("match string = %q", m.String())
	}
	if Wildcard.Specificity() != 0 || (Match{Src: 1, Dst: 2}).Specificity() != 2 {
		t.Fatal("specificity")
	}
}

func TestFailLinkOutOfRange(t *testing.T) {
	c := NewController(testNet(), Reactive, 0)
	if _, err := c.FailLink(-1); err == nil {
		t.Fatal("negative link must error")
	}
	if _, err := c.FailLink(1 << 20); err == nil {
		t.Fatal("huge link must error")
	}
}

func TestFailLinkFallsBackToRecompute(t *testing.T) {
	// Kill one entire spine: every path through it dies, and the
	// controller must repair every flow via the surviving spine.
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	// Cross-leaf flows through the fabric.
	pairs := [][2]int{{hosts[0], hosts[12]}, {hosts[1], hosts[9]}, {hosts[5], hosts[13]}}
	for _, p := range pairs {
		if _, err := c.FlowSetupUS(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	var deadSpine int = -1
	for _, nd := range net.Nodes {
		if nd.Kind == topo.Agg {
			deadSpine = nd.ID
			break
		}
	}
	if deadSpine == -1 {
		t.Fatal("no spine found")
	}
	for _, lid := range net.Incident(deadSpine) {
		if _, err := c.FailLink(lid); err != nil {
			t.Fatalf("fail %d: %v", lid, err)
		}
	}
	// Every flow must still forward, and never through the dead spine.
	for _, pr := range pairs {
		p, err := c.Forward(pr[0], pr[1])
		if err != nil {
			t.Fatalf("flow %v broken after spine failure: %v", pr, err)
		}
		for _, node := range p.NodeIDs {
			if node == deadSpine {
				t.Fatalf("flow %v still crosses the dead spine", pr)
			}
		}
	}
}

func TestTotalRulesAndSwitchAccessors(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	if c.Switches() != len(net.Switches()) {
		t.Fatal("switch count")
	}
	if c.Switch(net.Switches()[0]) == nil {
		t.Fatal("switch accessor")
	}
	if c.Switch(net.Hosts()[0]) != nil {
		t.Fatal("hosts must not have switch state")
	}
	if c.TotalRules() != 0 {
		t.Fatal("fresh fabric must be empty")
	}
}

func TestLegacyReconvergeScales(t *testing.T) {
	small := NewLegacyFabric(topo.FatTree(4, topo.Gen40))
	big := NewLegacyFabric(topo.FatTree(8, topo.Gen40))
	if small.Reconverge() >= big.Reconverge() {
		t.Fatal("reconvergence must scale with fabric size")
	}
}

func TestPuntActionAndDrop(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	sw := net.Switches()[0]
	c.Switch(sw).Table.Install(Rule{Match: Wildcard, Action: Action{PuntToController: true}})
	// Find a host on that leaf: forwarding through it must report punt.
	var src, dst int = -1, -1
	for _, h := range net.Hosts() {
		for _, lid := range net.Incident(h) {
			if net.Links[lid].Other(h) == sw {
				if src == -1 {
					src = h
				} else if dst == -1 {
					dst = h
				}
			}
		}
	}
	if src == -1 || dst == -1 {
		t.Skip("topology lacks two hosts on one leaf")
	}
	if _, err := c.Forward(src, dst); err == nil {
		t.Fatal("punt rule must block data-plane forwarding")
	}
}

func TestReactiveReinstallSamePairIsStable(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	if _, err := c.FlowSetupUS(hosts[0], hosts[9]); err != nil {
		t.Fatal(err)
	}
	before := c.TotalRules()
	if _, err := c.FlowSetupUS(hosts[0], hosts[9]); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalRules(); got != before {
		t.Fatalf("reinstalling the same pair changed rule count %d -> %d", before, got)
	}
}
