package sdn

import (
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func testNet() *topo.Network {
	return topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
}

func TestFlowTableExactMatchWins(t *testing.T) {
	ft := NewFlowTable(0)
	ft.Install(Rule{Match: Wildcard, Action: Action{OutLink: 1}, Priority: 0})
	ft.Install(Rule{Match: Match{Src: 3, Dst: 7}, Action: Action{OutLink: 2}, Priority: 0})
	act, ok := ft.Lookup(3, 7)
	if !ok || act.OutLink != 2 {
		t.Fatalf("got %+v ok=%v, want exact rule out=2", act, ok)
	}
	act, ok = ft.Lookup(1, 1)
	if !ok || act.OutLink != 1 {
		t.Fatalf("wildcard fallthrough failed: %+v ok=%v", act, ok)
	}
}

func TestFlowTablePriorityBeatsSpecificity(t *testing.T) {
	ft := NewFlowTable(0)
	ft.Install(Rule{Match: Match{Src: 1, Dst: 2}, Action: Action{OutLink: 5}, Priority: 1})
	ft.Install(Rule{Match: Match{Src: -1, Dst: 2}, Action: Action{OutLink: 9}, Priority: 7})
	act, _ := ft.Lookup(1, 2)
	if act.OutLink != 9 {
		t.Fatalf("priority 7 rule should win, got out=%d", act.OutLink)
	}
}

func TestFlowTableReplaceInPlace(t *testing.T) {
	ft := NewFlowTable(0)
	m := Match{Src: 1, Dst: 2}
	ft.Install(Rule{Match: m, Action: Action{OutLink: 1}, Priority: 3})
	ft.Install(Rule{Match: m, Action: Action{OutLink: 2}, Priority: 3})
	if ft.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replace)", ft.Len())
	}
	act, _ := ft.Lookup(1, 2)
	if act.OutLink != 2 {
		t.Fatalf("out = %d, want updated 2", act.OutLink)
	}
}

func TestFlowTableLRUEviction(t *testing.T) {
	ft := NewFlowTable(2)
	ft.Install(Rule{Match: Match{Src: 1, Dst: 1}, Action: Action{OutLink: 1}})
	ft.Install(Rule{Match: Match{Src: 2, Dst: 2}, Action: Action{OutLink: 2}})
	ft.Lookup(1, 1) // touch rule 1; rule 2 becomes LRU
	ft.Install(Rule{Match: Match{Src: 3, Dst: 3}, Action: Action{OutLink: 3}})
	if ft.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ft.Evictions)
	}
	if _, ok := ft.Lookup(2, 2); ok {
		t.Fatal("LRU rule (2,2) should have been evicted")
	}
	if _, ok := ft.Lookup(1, 1); !ok {
		t.Fatal("recently used rule (1,1) should survive")
	}
}

func TestFlowTableRemove(t *testing.T) {
	ft := NewFlowTable(0)
	ft.Install(Rule{Match: Match{Src: 1, Dst: 2}, Action: Action{OutLink: 1}})
	ft.Install(Rule{Match: Match{Src: 1, Dst: 3}, Action: Action{OutLink: 2}})
	if n := ft.Remove(Match{Src: 1, Dst: 2}); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if ft.Len() != 1 {
		t.Fatalf("len = %d, want 1", ft.Len())
	}
	if n := ft.RemoveIf(func(r Rule) bool { return r.Action.OutLink == 2 }); n != 1 {
		t.Fatalf("RemoveIf removed %d, want 1", n)
	}
}

func TestMatchCoversProperty(t *testing.T) {
	// Wildcard covers everything; exact match covers only itself.
	f := func(src, dst uint8) bool {
		s, d := int(src), int(dst)
		if !Wildcard.Covers(s, d) {
			return false
		}
		exact := Match{Src: s, Dst: d}
		return exact.Covers(s, d) && (s == s+1 || !exact.Covers(s+1, d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReactiveFlowSetupThenDataPlane(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	lat, err := c.FlowSetupUS(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("reactive setup latency = %v, want > 0", lat)
	}
	p, err := c.Forward(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeIDs[0] != src || p.NodeIDs[len(p.NodeIDs)-1] != dst {
		t.Fatalf("forwarded path %v does not go %d -> %d", p.NodeIDs, src, dst)
	}
	// cross-leaf: host -> leaf -> spine -> leaf -> host = 4 hops
	if p.Hops() != 4 {
		t.Fatalf("hops = %d, want 4", p.Hops())
	}
}

func TestDataPlaneMissWithoutSetup(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	if _, err := c.Forward(hosts[0], hosts[5]); err == nil {
		t.Fatal("expected table miss before flow setup")
	}
}

func TestProactiveZeroSetupLatency(t *testing.T) {
	net := testNet()
	c := NewController(net, Proactive, 0)
	hosts := net.Hosts()
	var pairs [][2]int
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				pairs = append(pairs, [2]int{s, d})
			}
		}
	}
	if _, err := c.Preinstall(pairs); err != nil {
		t.Fatal(err)
	}
	lat, err := c.FlowSetupUS(hosts[0], hosts[7])
	if err != nil {
		t.Fatal(err)
	}
	if lat != 0 {
		t.Fatalf("proactive setup latency = %v, want 0", lat)
	}
	for _, pr := range pairs {
		if _, err := c.Forward(pr[0], pr[1]); err != nil {
			t.Fatalf("forward %v: %v", pr, err)
		}
	}
}

func TestProactiveMissingRuleIsError(t *testing.T) {
	net := testNet()
	c := NewController(net, Proactive, 0)
	hosts := net.Hosts()
	if _, err := c.FlowSetupUS(hosts[0], hosts[1]); err == nil {
		t.Fatal("expected error for missing proactive rule")
	}
}

func TestFailLinkReroutesFlows(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	src, dst := hosts[0], hosts[12] // cross-leaf
	if _, err := c.FlowSetupUS(src, dst); err != nil {
		t.Fatal(err)
	}
	p0, err := c.Forward(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the second link on the path (leaf -> spine).
	failed := p0.LinkIDs[1]
	rerouted, err := c.FailLink(failed)
	if err != nil {
		t.Fatal(err)
	}
	if rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1", rerouted)
	}
	p1, err := c.Forward(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, lid := range p1.LinkIDs {
		if lid == failed {
			t.Fatal("rerouted path still crosses failed link")
		}
	}
}

func TestFailLinkUnaffectedFlowsUntouched(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	// Same-leaf flow never crosses the spine.
	if _, err := c.FlowSetupUS(hosts[0], hosts[1]); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Forward(hosts[0], hosts[1])
	// Fail a spine link not on this path.
	for _, l := range net.Links {
		onPath := false
		for _, lid := range p.LinkIDs {
			if lid == l.ID {
				onPath = true
			}
		}
		hostSide := net.Nodes[l.A].Kind == topo.Host || net.Nodes[l.B].Kind == topo.Host
		if !onPath && !hostSide {
			if n, err := c.FailLink(l.ID); err != nil || n != 0 {
				t.Fatalf("FailLink(%d) rerouted %d err %v, want 0, nil", l.ID, n, err)
			}
			break
		}
	}
	if _, err := c.Forward(hosts[0], hosts[1]); err != nil {
		t.Fatalf("unaffected flow broken: %v", err)
	}
}

func TestRestoreLinkAllowsOldPaths(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 0)
	hosts := net.Hosts()
	if _, err := c.FlowSetupUS(hosts[0], hosts[12]); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Forward(hosts[0], hosts[12])
	lid := p.LinkIDs[1]
	if _, err := c.FailLink(lid); err != nil {
		t.Fatal(err)
	}
	c.RestoreLink(lid)
	// New flows may again use the restored link; at minimum routing works.
	if _, err := c.FlowSetupUS(hosts[1], hosts[13]); err != nil {
		t.Fatal(err)
	}
}

func TestControlOpsScaleOneVsPerBox(t *testing.T) {
	// The headline comparison: a fabric-wide change is O(1) operator
	// actions with SDN and O(switches) with per-box management.
	net := topo.FatTree(8, topo.Gen40) // 80 switches
	c := NewController(net, Reactive, 0)
	legacy := NewLegacyFabric(net)

	hosts := net.Hosts()
	before := c.ControlOps
	if _, err := c.FlowSetupUS(hosts[0], hosts[len(hosts)-1]); err != nil {
		t.Fatal(err)
	}
	sdnOps := c.ControlOps - before

	legacy.ApplyPolicy(1)
	if legacy.ControlOps != len(net.Switches()) {
		t.Fatalf("legacy ops = %d, want %d", legacy.ControlOps, len(net.Switches()))
	}
	if sdnOps >= legacy.ControlOps {
		t.Fatalf("SDN ops (%d) should be far below per-box ops (%d)", sdnOps, legacy.ControlOps)
	}
}

func TestLegacyPolicyTimeScalesWithSwitches(t *testing.T) {
	small := NewLegacyFabric(topo.FatTree(4, topo.Gen40))
	big := NewLegacyFabric(topo.FatTree(8, topo.Gen40))
	if small.ApplyPolicy(1) >= big.ApplyPolicy(1) {
		t.Fatal("bigger fabric must take longer per-box")
	}
	// More operators cut wall-clock proportionally.
	l := NewLegacyFabric(topo.FatTree(8, topo.Gen40))
	one := l.ApplyPolicy(1)
	ten := l.ApplyPolicy(10)
	if ten >= one {
		t.Fatalf("10 operators (%v) should beat 1 (%v)", ten, one)
	}
}

func TestTCAMPressureEvictsButStillForwards(t *testing.T) {
	net := testNet()
	c := NewController(net, Reactive, 4) // tiny tables
	hosts := net.Hosts()
	for i := 0; i < 8; i++ {
		if _, err := c.FlowSetupUS(hosts[0], hosts[8+i]); err != nil {
			t.Fatal(err)
		}
	}
	evictions := 0
	for _, sw := range net.Switches() {
		evictions += c.Switch(sw).Table.Evictions
	}
	if evictions == 0 {
		t.Fatal("expected TCAM evictions under pressure")
	}
	// The most recent flow still forwards.
	if _, err := c.Forward(hosts[0], hosts[15]); err != nil {
		t.Fatalf("latest flow should still be installed: %v", err)
	}
}

func TestForwardLoopDetected(t *testing.T) {
	// Hand-build a 2-switch loop: rules point at each other.
	n := topo.New()
	a := n.AddNode(topo.Host, "h")
	s1 := n.AddNode(topo.ToR, "s1")
	s2 := n.AddNode(topo.ToR, "s2")
	b := n.AddNode(topo.Host, "h2")
	l0 := n.AddLink(a, s1, topo.Gen10, 0)
	l1 := n.AddLink(s1, s2, topo.Gen10, 0)
	n.AddLink(s2, b, topo.Gen10, 0)
	c := NewController(n, Reactive, 0)
	c.Switch(s1).Table.Install(Rule{Match: Wildcard, Action: Action{OutLink: l1}})
	c.Switch(s2).Table.Install(Rule{Match: Wildcard, Action: Action{OutLink: l1}}) // bounce back
	_ = l0
	if _, err := c.Forward(a, b); err == nil {
		t.Fatal("expected loop detection")
	}
}

func TestPreinstallLatencyBoundedBySlowestSwitch(t *testing.T) {
	net := testNet()
	c := NewController(net, Proactive, 0)
	hosts := net.Hosts()
	var pairs [][2]int
	for _, d := range hosts[1:] {
		pairs = append(pairs, [2]int{hosts[0], d})
	}
	lat, err := c.Preinstall(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// The ingress leaf holds one rule per pair: expect lat = pairs × install.
	want := float64(len(pairs)) * c.Timing.RuleInstallUS
	if lat != want {
		t.Fatalf("preinstall latency = %v, want %v", lat, want)
	}
}
