package sdn

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/topo"
)

// TestFlowTableInterleaved scripts Install/Lookup/RemoveIf interleavings
// against a capacity-3 table and checks the LRU clock decides every
// eviction: lookups refresh rules, removals free space without counting
// as evictions, and OnEvict observes exactly the capacity victims.
func TestFlowTableInterleaved(t *testing.T) {
	tab := NewFlowTable(3)
	var evicted []Match
	tab.OnEvict = func(r Rule) { evicted = append(evicted, r.Match) }
	m := func(i int) Match { return Match{Src: i, Dst: 100 + i} }
	ins := func(i int) { tab.Install(Rule{Match: m(i), Action: Action{OutLink: i}, Priority: 10}) }
	look := func(i int) bool { _, ok := tab.Lookup(i, 100+i); return ok }

	ins(1) // clock 1
	ins(2) // clock 2
	ins(3) // clock 3: table full [1,2,3]
	if !look(1) {
		t.Fatal("rule 1 must hit") // clock 4: rule 1 refreshed
	}
	ins(4) // full: LRU is rule 2 -> evicted
	if len(evicted) != 1 || evicted[0] != m(2) {
		t.Fatalf("evicted %v, want [%v]", evicted, m(2))
	}
	if look(2) {
		t.Fatal("evicted rule 2 must miss")
	}
	if removed := tab.RemoveIf(func(r Rule) bool { return r.Match == m(3) }); removed != 1 {
		t.Fatalf("RemoveIf removed %d, want 1", removed)
	}
	ins(5) // fits in the freed slot: no eviction
	ins(1) // in-place update of the existing rule 1: no eviction
	if len(evicted) != 1 {
		t.Fatalf("unexpected evictions: %v", evicted)
	}
	ins(6) // full [1,4,5]: LRU is now rule 4 (5 and 1 are fresher)
	if len(evicted) != 2 || evicted[1] != m(4) {
		t.Fatalf("evicted %v, want rule 4 second", evicted)
	}
	if tab.Len() != 3 {
		t.Fatalf("table len %d, want 3", tab.Len())
	}
	for _, want := range []int{1, 5, 6} {
		if !look(want) {
			t.Fatalf("rule %d missing from final table", want)
		}
	}
	if tab.Evictions != 2 {
		t.Fatalf("evictions %d, want 2", tab.Evictions)
	}
}

// TestNetControllerCachesRoutes: the first flow of a pair misses and
// installs a rule; subsequent flows of the same pair hit and pay no
// control latency; rules age out after SoftTimeoutRounds and re-install.
func TestNetControllerCachesRoutes(t *testing.T) {
	net := topo.SingleSwitch(4, topo.Gen10)
	c := NewNetController(net, Baseline{}, 0)
	c.SoftTimeoutRounds = 2
	a := netsim.NewAdmission(netsim.NewSimulator(net))
	a.SetController(c)
	p := a.Join(nil)
	defer p.Leave()
	submit := func() {
		t.Helper()
		if _, _, err := p.Submit([]netsim.FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}}); err != nil {
			t.Fatal(err)
		}
	}
	submit() // round 0: miss + install
	if c.Misses != 1 || c.Installs != 1 || c.Hits != 0 {
		t.Fatalf("after round 0: misses=%d installs=%d hits=%d", c.Misses, c.Installs, c.Hits)
	}
	lat := c.ControlLatencyUS
	if lat <= 0 {
		t.Fatal("install must charge control latency")
	}
	submit() // round 1: hit, no latency
	if c.Hits != 1 || c.ControlLatencyUS != lat {
		t.Fatalf("after round 1: hits=%d latency %v -> %v", c.Hits, lat, c.ControlLatencyUS)
	}
	submit() // round 2: rule aged out (installed round 0) -> miss again
	if c.Expired != 1 || c.Misses != 2 || c.Installs != 2 {
		t.Fatalf("after round 2: expired=%d misses=%d installs=%d", c.Expired, c.Misses, c.Installs)
	}
}

// TestNetControllerCapacityExhausted: a round with more distinct pairs
// than the table holds degrades the overflow to default ECMP — the
// round still completes (the admission barrier never waits on the
// control plane) and the fallback is counted.
func TestNetControllerCapacityExhausted(t *testing.T) {
	net := topo.SingleSwitch(8, topo.Gen10)
	c := NewNetController(net, Baseline{}, 2)
	a := netsim.NewAdmission(netsim.NewSimulator(net))
	a.SetController(c)
	p := a.Join(nil)
	defer p.Leave()
	var reqs []netsim.FlowReq
	for i := 0; i < 6; i++ {
		reqs = append(reqs, netsim.FlowReq{Src: i, Dst: 7, Bytes: 1e6})
	}
	sec, flows, err := p.Submit(reqs)
	if err != nil || sec <= 0 || len(flows) != 6 {
		t.Fatalf("sec=%v flows=%d err=%v", sec, len(flows), err)
	}
	if c.Installs != 2 || c.Fallbacks != 4 {
		t.Fatalf("installs=%d fallbacks=%d, want 2/4", c.Installs, c.Fallbacks)
	}
	if c.Table.Len() != 2 {
		t.Fatalf("table len %d, want 2", c.Table.Len())
	}
	// The fabric stays live for later rounds.
	if sec2, _, err := p.Submit(reqs[:1]); err != nil || sec2 <= 0 {
		t.Fatalf("fabric wedged after exhaustion: %v %v", sec2, err)
	}
}

// TestRerouteHotLinksPolicy: among ECMP candidates the policy picks the
// one whose hottest link is coolest, and stays on the default on ties.
func TestRerouteHotLinksPolicy(t *testing.T) {
	net := topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
	choices := net.ECMPPaths(0, 2, 8)
	if len(choices) != 2 {
		t.Fatalf("want 2 spine choices, got %d", len(choices))
	}
	shared := map[int]bool{}
	for _, lid := range choices[1].LinkIDs {
		shared[lid] = true
	}
	hot := map[int]float64{}
	for _, lid := range choices[0].LinkIDs {
		if !shared[lid] {
			hot[lid] = 5e6 // the default path's spine hop is hot
		}
	}
	ctx := &PolicyContext{
		Net:     net,
		Flow:    netsim.PendingFlow{Src: 0, Dst: 2, Bytes: 1e6, Path: choices[0], Weight: 1},
		Choices: choices,
		HottestLink: func(p topo.Path) float64 {
			max := 0.0
			for _, lid := range p.LinkIDs {
				if hot[lid] > max {
					max = hot[lid]
				}
			}
			return max
		},
		PathLoad: func(p topo.Path) float64 {
			sum := 0.0
			for _, lid := range p.LinkIDs {
				sum += hot[lid]
			}
			return sum
		},
	}
	picked := RerouteHotLinks{}.PickPath(ctx)
	if picked == nil {
		t.Fatal("policy must reroute off the hot path")
	}
	for i := range picked.LinkIDs {
		if picked.LinkIDs[i] != choices[1].LinkIDs[i] {
			t.Fatalf("picked %v, want the cold path %v", picked.LinkIDs, choices[1].LinkIDs)
		}
	}
	// Tie: no reroute (keep the default path's rule stable).
	for k := range hot {
		delete(hot, k)
	}
	if picked := (RerouteHotLinks{}).PickPath(ctx); picked != nil {
		t.Fatalf("tied paths must keep the default, got %v", picked.LinkIDs)
	}
}

// TestRerouteSpreadsLoad: end-to-end, a reroute controller with 1-round
// rule timeouts spreads repeated same-pair traffic across both spines,
// where the fixed data plane would keep hashing onto one.
func TestRerouteSpreadsLoad(t *testing.T) {
	net := topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
	c := NewNetController(net, RerouteHotLinks{}, 0)
	c.SoftTimeoutRounds = 1 // re-decide every round as load moves
	a := netsim.NewAdmission(netsim.NewSimulator(net))
	a.SetController(c)
	p := a.Join(nil)
	defer p.Leave()
	// One fixed cross-leaf flow per round: every round's decision sees
	// the previous rounds' cumulative load and balances away from it.
	const rounds = 4
	for i := 0; i < rounds; i++ {
		if _, _, err := p.Submit([]netsim.FlowReq{{Src: 0, Dst: 2, Bytes: 1e6}}); err != nil {
			t.Fatal(err)
		}
	}
	spine := map[int]float64{} // spine-tier link bytes by link ID
	for _, l := range a.LinkLoads() {
		if l.Bytes > 0 && net.Nodes[net.Links[l.LinkID].B].Kind == topo.Agg {
			spine[l.LinkID] += l.Bytes
		}
	}
	if len(spine) < 4 {
		t.Fatalf("traffic used %d spine links, want all 4 (2 spines x up/down): %v", len(spine), spine)
	}
	for lid, b := range spine {
		if b != 2e6 {
			t.Fatalf("spine link %d carried %.0f bytes, want an even 2e6 split: %v", lid, b, spine)
		}
	}
}

// TestNetControllerRebind: reattaching one controller to a different
// fabric flushes every cached rule (stale link IDs would corrupt load
// projection on the new topology) and rebinds the topology view.
func TestNetControllerRebind(t *testing.T) {
	c := NewNetController(nil, Baseline{}, 0)
	run := func(hosts int) {
		t.Helper()
		net := topo.SingleSwitch(hosts, topo.Gen10)
		a := netsim.NewAdmission(netsim.NewSimulator(net))
		a.SetController(c)
		p := a.Join(nil)
		defer p.Leave()
		var reqs []netsim.FlowReq
		for i := 1; i < hosts; i++ {
			reqs = append(reqs, netsim.FlowReq{Src: 0, Dst: i, Bytes: 1e6})
		}
		if _, _, err := p.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		if c.Net != net {
			t.Fatal("controller did not bind the fabric it serves")
		}
		if c.Table.Len() != hosts-1 {
			t.Fatalf("table len %d after rebind, want %d", c.Table.Len(), hosts-1)
		}
	}
	run(8) // installs 7 rules on the first fabric
	run(3) // new fabric: rules must flush, then reinstall 2
}

// TestStrictPriorityWeights: class tiers multiply the requested weight;
// unknown classes and best-effort stay untouched.
func TestStrictPriorityWeights(t *testing.T) {
	pol := StrictPriority{}
	if w := pol.Weight(netsim.PendingFlow{Class: "interactive", Weight: 2}); w != 2*64*64 {
		t.Fatalf("interactive weight %v", w)
	}
	if w := pol.Weight(netsim.PendingFlow{Class: "batch", Weight: 1}); w != 64 {
		t.Fatalf("batch weight %v", w)
	}
	if w := pol.Weight(netsim.PendingFlow{Class: "", Weight: 1}); w != 0 {
		t.Fatalf("best-effort must keep its weight, got %v", w)
	}
	custom := StrictPriority{Multipliers: map[string]float64{"gold": 10}}
	if w := custom.Weight(netsim.PendingFlow{Class: "gold", Weight: 3}); w != 30 {
		t.Fatalf("custom tier weight %v", w)
	}
}

// TestChainComposition: the first non-nil path and first non-zero
// weight win.
func TestChainComposition(t *testing.T) {
	ch := Chain{RerouteHotLinks{}, StrictPriority{}}
	if ch.Name() != "chain(reroute-hot-links+strict-priority)" {
		t.Fatalf("name %q", ch.Name())
	}
	if w := ch.Weight(netsim.PendingFlow{Class: "batch", Weight: 1}); w != 64 {
		t.Fatalf("chained weight %v", w)
	}
	if PolicyByName("reroute+priority") == nil || PolicyByName("nope") != nil {
		t.Fatal("PolicyByName catalog lookup broken")
	}
}
