package sdn

import "repro/internal/topo"

// LegacyFabric is the pre-SDN baseline: every switch is configured
// box-by-box through its own management session. There is no global view;
// a fabric-wide policy change costs one operator session per switch, and
// failure recovery relies on distributed reconvergence. This is the
// comparator for the roadmap's "10,000 switches look like one" claim.
//
// Deprecated: as the comparator for fabric control experiments, use a
// NetController running the Baseline policy — it models the same fixed
// data plane but plugs into the live execution path (netsim.Admission),
// so the comparison runs on real traffic instead of closed-form
// operator-cost arithmetic. LegacyFabric survives for the operator-cost
// experiments (E2) that have no traffic dimension.
type LegacyFabric struct {
	Net *topo.Network

	// SessionUS is the cost to open a management session and apply one
	// change on one box (CLI login + commit), in microseconds. Realistic
	// values are seconds — the default is 2e6 µs — which is the point of
	// the comparison.
	SessionUS float64
	// ConvergePerSwitchUS is the distributed-protocol reconvergence cost
	// contributed by each switch that must relearn state after a failure.
	ConvergePerSwitchUS float64

	// ControlOps counts box-level operations performed.
	ControlOps int
}

// NewLegacyFabric returns the baseline with representative constants:
// 2 s per box change, 50 ms per switch of reconvergence contribution.
func NewLegacyFabric(net *topo.Network) *LegacyFabric {
	return &LegacyFabric{Net: net, SessionUS: 2e6, ConvergePerSwitchUS: 5e4}
}

// ApplyPolicy models a fabric-wide policy change (e.g. a new tenant ACL):
// one session per switch, executed by a fixed-size operator team working in
// parallel. It returns wall-clock microseconds.
func (l *LegacyFabric) ApplyPolicy(operators int) float64 {
	if operators < 1 {
		operators = 1
	}
	n := len(l.Net.Switches())
	l.ControlOps += n
	rounds := (n + operators - 1) / operators
	return float64(rounds) * l.SessionUS
}

// Reconverge models distributed recovery after a link failure: every
// switch in the failure domain times out, floods, and recomputes. The
// domain is approximated as all switches (worst case for flat fabrics).
func (l *LegacyFabric) Reconverge() float64 {
	n := len(l.Net.Switches())
	l.ControlOps += n
	return float64(n) * l.ConvergePerSwitchUS
}
