package sdn

import (
	"repro/internal/netsim"
	"repro/internal/topo"
)

// NetController is the reference implementation of netsim.Controller:
// the programmable control plane of a shared SQL fabric. It observes
// each admission round's pending flows and link loads and answers with
// per-flow route and weight overrides, computed by a pluggable Policy
// and cached in a capacity-bounded FlowTable exactly like a reactive
// SDN deployment caches path decisions in switch TCAMs:
//
//   - The first flow of a (src, dst) pair misses in the table; the
//     policy computes a route, one rule is installed (evicting the LRU
//     rule at capacity), and control latency is charged.
//   - Later flows of the pair hit and pay no control-plane cost, until
//     the rule ages out (SoftTimeoutRounds) or is evicted. A hit pins
//     the flow to the installed route only when the policy chose that
//     route; pairs the policy left on their defaults keep per-seed ECMP
//     spreading, so a no-op policy (Baseline) really changes nothing.
//   - When the table thrashes — more distinct pairs in one round than
//     the table holds — the controller stops installing and degrades the
//     remaining flows to their default ECMP routes (counted in
//     Fallbacks) instead of churning rules that cannot survive the
//     round. Weight decisions don't occupy rules, so class priorities
//     survive table pressure.
//
// A NetController serves exactly one netsim.Admission: Admit calls are
// serialized by the admission lock, so no internal locking is needed.
// The topology view binds lazily from the first round when Net is nil,
// letting callers construct the controller before the fabric exists
// (sql.Config.Controller is wired that way).
type NetController struct {
	// Net is the controller's topology view (nil = bind from the first
	// observed round).
	Net *topo.Network
	// Policy decides routes and weights; nil behaves like Baseline.
	Policy Policy
	// Table caches routing decisions with LRU eviction at capacity.
	Table *FlowTable
	// Timing prices the control-plane operations (DefaultTiming() if
	// zero-valued fields are kept).
	Timing Timing
	// ECMPWidth bounds the candidate path set offered to the policy
	// (default 8, matching the simulator's data plane).
	ECMPWidth int
	// SoftTimeoutRounds ages rules out after this many rounds (0 = rules
	// live until evicted), so routing decisions re-form as load moves.
	SoftTimeoutRounds int

	// Rounds counts Admit calls; Hits/Misses count table consultations;
	// Installs counts rules written; Fallbacks counts flows degraded to
	// default ECMP under table exhaustion; Expired counts rules aged out.
	Rounds, Hits, Misses, Installs, Fallbacks, Expired int
	// ControlLatencyUS accumulates simulated control-plane time: one
	// path computation plus one rule install per miss.
	ControlLatencyUS float64

	paths       map[Match]topo.Path
	rerouted    map[Match]bool // cached path came from a policy PickPath
	installedAt map[Match]int
}

// NewNetController builds a controller with a tableCap-rule flow table
// (tableCap <= 0 = unbounded) over the given policy. net may be nil; the
// topology then binds from the first admission round observed.
func NewNetController(net *topo.Network, pol Policy, tableCap int) *NetController {
	c := &NetController{
		Net: net, Policy: pol, Table: NewFlowTable(tableCap),
		Timing: DefaultTiming(), ECMPWidth: 8,
		paths:       map[Match]topo.Path{},
		rerouted:    map[Match]bool{},
		installedAt: map[Match]int{},
	}
	c.Table.OnEvict = func(r Rule) { c.drop(r.Match) }
	return c
}

func (c *NetController) drop(m Match) {
	delete(c.paths, m)
	delete(c.rerouted, m)
	delete(c.installedAt, m)
}

// rebind points the controller at a (new) fabric topology and flushes
// every cached routing decision: installed rules reference the previous
// fabric's link IDs, which would misattribute load — or index out of
// range — on the new one. Reached on first contact and whenever the
// owning engine rebuilds its cluster around the same controller.
func (c *NetController) rebind(net *topo.Network) {
	c.Net = net
	c.Table.RemoveIf(func(Rule) bool { return true })
	c.paths = map[Match]topo.Path{}
	c.rerouted = map[Match]bool{}
	c.installedAt = map[Match]int{}
}

// PolicyContext is what a Policy sees when deciding one pending flow.
type PolicyContext struct {
	// Net is the fabric topology.
	Net *topo.Network
	// State is the whole round; Flow is State.Pending[Index].
	State *netsim.RoundState
	Index int
	Flow  netsim.PendingFlow
	// Choices is the flow's ECMP candidate path set (Flow.Path is one of
	// them).
	Choices []topo.Path
	// HottestLink returns the projected byte count of the most-loaded
	// directed link along p: cumulative fabric bytes plus the bytes of
	// flows already placed earlier in this round.
	HottestLink func(p topo.Path) float64
	// PathLoad returns the sum of projected bytes over p's directed
	// links — the tie-breaker when candidates share their hottest link
	// (e.g. a common access hop masking different spine loads).
	PathLoad func(p topo.Path) float64
}

// Policy is one entry of the control-plane policy catalog: it picks
// routes for new flows and scheduling weights for every flow. Path
// decisions are cached in the controller's flow table; weight decisions
// are stateless and re-evaluated per flow.
type Policy interface {
	Name() string
	// PickPath chooses a route for a table-miss flow; nil keeps the
	// default seeded-ECMP route.
	PickPath(ctx *PolicyContext) *topo.Path
	// Weight returns the flow's scheduling-weight override; 0 keeps the
	// requested weight.
	Weight(f netsim.PendingFlow) float64
}

// Admit implements netsim.Controller.
func (c *NetController) Admit(st *netsim.RoundState) []netsim.Decision {
	if c.Net != st.Net {
		c.rebind(st.Net)
	}
	round := c.Rounds
	c.Rounds++
	// Age out soft-timed rules so routing re-forms as load moves.
	if c.SoftTimeoutRounds > 0 {
		var expired []Match
		c.Table.RemoveIf(func(r Rule) bool {
			if at, ok := c.installedAt[r.Match]; ok && round-at >= c.SoftTimeoutRounds {
				expired = append(expired, r.Match)
				return true
			}
			return false
		})
		for _, m := range expired {
			c.drop(m)
			c.Expired++
		}
	}

	// Projected per-directed-link load, updated with each flow as it is
	// placed so later decisions see earlier ones. When the fabric exports
	// load-telemetry windows the seed is the *recent* load — the
	// utilization EWMA converted back to bytes over the last round's
	// horizon — so path policies chase where traffic is now; hot links
	// decay as load moves instead of staying "hot" forever on lifetime
	// totals. Fabrics without telemetry (first round, or a bare
	// simulator) fall back to cumulative bytes, the pre-window basis.
	load := make(map[int]float64, len(st.Loads))
	dirID := func(lid int, forward bool) int {
		if forward {
			return lid * 2
		}
		return lid*2 + 1
	}
	windowed := st.UtilEWMA != nil && st.LastRoundSeconds > 0
	for _, l := range st.Loads {
		d := dirID(l.LinkID, l.Forward)
		if windowed && d < len(st.UtilEWMA) {
			cap := c.Net.Links[l.LinkID].Speed.BytesPerSec()
			load[d] = st.UtilEWMA[d] * cap * st.LastRoundSeconds
		} else {
			load[d] = l.Bytes
		}
	}
	addLoad := func(p topo.Path, bytes float64) {
		for i, lid := range p.LinkIDs {
			load[dirID(lid, c.Net.Links[lid].A == p.NodeIDs[i])] += bytes
		}
	}
	hottest := func(p topo.Path) float64 {
		max := 0.0
		for i, lid := range p.LinkIDs {
			if b := load[dirID(lid, c.Net.Links[lid].A == p.NodeIDs[i])]; b > max {
				max = b
			}
		}
		return max
	}
	pathLoad := func(p topo.Path) float64 {
		sum := 0.0
		for i, lid := range p.LinkIDs {
			sum += load[dirID(lid, c.Net.Links[lid].A == p.NodeIDs[i])]
		}
		return sum
	}

	out := make([]netsim.Decision, len(st.Pending))
	installs := 0
	for i, pf := range st.Pending {
		if c.Policy != nil {
			out[i].Weight = c.Policy.Weight(pf)
		}
		path := pf.Path
		m := Match{Src: pf.Src, Dst: pf.Dst}
		if _, ok := c.Table.Lookup(pf.Src, pf.Dst); ok {
			// Rule hit (Lookup refreshes the rule's LRU stamp). The data
			// plane follows the installed route only when the policy chose
			// it: pinning default-routed pairs would collapse the ECMP
			// spread of later seeds and make even the Baseline policy
			// perturb traffic.
			c.Hits++
			if c.rerouted[m] {
				path = c.paths[m]
			}
		} else {
			c.Misses++
			if c.Table.Capacity > 0 && installs >= c.Table.Capacity {
				// The table cannot hold this round's working set: stop
				// churning rules and degrade the rest of the round to
				// default ECMP. The admission barrier never waits on the
				// control plane, so exhaustion costs path quality, not
				// liveness; weight overrides (already set above) need no
				// rules and survive.
				c.Fallbacks++
				addLoad(path, pf.Bytes)
				continue
			}
			pinned := false
			if c.Policy != nil {
				choices := c.Net.ECMPPaths(pf.Src, pf.Dst, c.ecmpWidth())
				ctx := &PolicyContext{Net: c.Net, State: st, Index: i, Flow: pf, Choices: choices, HottestLink: hottest, PathLoad: pathLoad}
				if picked := c.Policy.PickPath(ctx); picked != nil {
					path = *picked
					pinned = true
				}
			}
			c.Table.Install(Rule{Match: m, Action: Action{OutLink: firstLink(path)}, Priority: 10})
			c.paths[m] = path
			c.rerouted[m] = pinned
			c.installedAt[m] = round
			c.Installs++
			installs++
			c.ControlLatencyUS += c.Timing.ComputeUS + c.Timing.RuleInstallUS
		}
		addLoad(path, pf.Bytes)
		if !samePath(path, pf.Path) {
			// The policy's route differs from this flow's default ECMP
			// pick: pin it so the data plane follows the table.
			override := path
			out[i].Path = &override
		}
	}
	return out
}

func (c *NetController) ecmpWidth() int {
	if c.ECMPWidth > 0 {
		return c.ECMPWidth
	}
	return 8
}

func firstLink(p topo.Path) int {
	if len(p.LinkIDs) == 0 {
		return -1
	}
	return p.LinkIDs[0]
}

func samePath(a, b topo.Path) bool {
	if len(a.LinkIDs) != len(b.LinkIDs) {
		return false
	}
	for i := range a.LinkIDs {
		if a.LinkIDs[i] != b.LinkIDs[i] {
			return false
		}
	}
	return true
}
