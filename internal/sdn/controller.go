package sdn

import (
	"fmt"

	"repro/internal/topo"
)

// Mode selects when the controller installs rules.
type Mode int

const (
	// Reactive installs rules on demand: the first packet of a flow misses
	// in the ingress table, is punted to the controller, and the controller
	// installs path rules. Later packets hit in hardware.
	Reactive Mode = iota
	// Proactive precomputes and installs rules for all expected flows
	// before traffic starts; no packet ever pays the controller round trip.
	Proactive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Proactive {
		return "proactive"
	}
	return "reactive"
}

// Timing holds the control-plane latency constants, in microseconds. The
// defaults are datacenter-scale: tens of microseconds to reach the
// controller, a software path computation, and a per-rule TCAM write.
type Timing struct {
	PuntUS        float64 // switch -> controller one-way
	ComputeUS     float64 // controller path computation per flow
	RuleInstallUS float64 // per rule TCAM write
}

// DefaultTiming returns representative 2016-era control-plane constants.
func DefaultTiming() Timing {
	return Timing{PuntUS: 50, ComputeUS: 20, RuleInstallUS: 100}
}

// Switch is the data plane of one fabric element.
type Switch struct {
	Node  int // topo node ID
	Table *FlowTable
}

// Controller is the logically centralized SDN control plane: it holds the
// topology view, owns every switch's flow table, and serves path requests.
type Controller struct {
	Net    *topo.Network
	Mode   Mode
	Timing Timing
	// ECMPWidth bounds path choice (default 8).
	ECMPWidth int

	switches map[int]*Switch // topo node ID -> switch
	downLink map[int]bool    // failed link IDs

	// Counters for the "one logical switch" experiment: how many control
	// operations (API calls by an operator or application) versus how many
	// low-level rule writes the fabric absorbed.
	ControlOps   int
	RuleInstalls int
	Punts        int
	Recomputes   int

	// ControlLatencyUS accumulates the simulated control-plane time spent.
	ControlLatencyUS float64

	// flows records installed paths so failures can be repaired.
	flows map[Match]topo.Path
}

// NewController builds a controller over net, attaching a flow table of the
// given capacity to every switch node. capacity <= 0 means unbounded.
func NewController(net *topo.Network, mode Mode, tableCap int) *Controller {
	c := &Controller{
		Net:       net,
		Mode:      mode,
		Timing:    DefaultTiming(),
		ECMPWidth: 8,
		switches:  map[int]*Switch{},
		downLink:  map[int]bool{},
		flows:     map[Match]topo.Path{},
	}
	for _, sw := range net.Switches() {
		c.switches[sw] = &Switch{Node: sw, Table: NewFlowTable(tableCap)}
	}
	return c
}

// Switches returns the number of switches under control.
func (c *Controller) Switches() int { return len(c.switches) }

// Switch returns the data plane of a switch node, or nil.
func (c *Controller) Switch(node int) *Switch { return c.switches[node] }

// TotalRules sums installed rules across the fabric.
func (c *Controller) TotalRules() int {
	n := 0
	for _, sw := range c.switches {
		n += sw.Table.Len()
	}
	return n
}

// FailLink marks a link down, flushes rules crossing it, and — acting as
// the centralized repair loop — reinstalls every affected flow on a new
// path. It returns the number of flows rerouted and an error if any flow
// became unroutable.
func (c *Controller) FailLink(linkID int) (rerouted int, err error) {
	if linkID < 0 || linkID >= len(c.Net.Links) {
		return 0, fmt.Errorf("sdn: link %d out of range", linkID)
	}
	c.downLink[linkID] = true
	c.ControlOps++ // one operator/telemetry event
	var affected []Match
	for m, p := range c.flows {
		for _, lid := range p.LinkIDs {
			if lid == linkID {
				affected = append(affected, m)
				break
			}
		}
	}
	for _, m := range affected {
		p := c.flows[m]
		for _, node := range p.NodeIDs {
			if sw := c.switches[node]; sw != nil {
				sw.Table.Remove(m)
			}
		}
		delete(c.flows, m)
		if m.Src == -1 || m.Dst == -1 {
			continue
		}
		if _, e := c.InstallPath(m.Src, m.Dst); e != nil {
			err = e
			continue
		}
		rerouted++
	}
	return rerouted, err
}

// RestoreLink marks a link up again.
func (c *Controller) RestoreLink(linkID int) {
	delete(c.downLink, linkID)
	c.ControlOps++
}

// pickPath returns an ECMP path avoiding failed links. When the cached
// ECMP set is entirely dead it recomputes a shortest path on the live
// subgraph, as a real controller's repair loop would.
func (c *Controller) pickPath(src, dst, flowID int) (topo.Path, bool) {
	paths := c.Net.ECMPPaths(src, dst, c.ECMPWidth)
	var alive []topo.Path
outer:
	for _, p := range paths {
		for _, lid := range p.LinkIDs {
			if c.downLink[lid] {
				continue outer
			}
		}
		alive = append(alive, p)
	}
	if len(alive) == 0 {
		return c.Net.ShortestPathAvoiding(src, dst, func(lid int) bool { return c.downLink[lid] })
	}
	return alive[flowID%len(alive)], true
}

// InstallPath computes a path for (src, dst) and installs one exact-match
// rule on every switch along it, first flushing any rules a previous
// installation of the same pair left behind (re-installation is
// idempotent). It returns the simulated control latency in microseconds
// for this operation.
func (c *Controller) InstallPath(src, dst int) (float64, error) {
	c.ControlOps++
	c.Recomputes++
	m := Match{Src: src, Dst: dst}
	p, ok := c.pickPath(src, dst, len(c.flows))
	if !ok {
		return 0, fmt.Errorf("sdn: no live path %d -> %d", src, dst)
	}
	if old, exists := c.flows[m]; exists {
		for _, node := range old.NodeIDs {
			if sw := c.switches[node]; sw != nil {
				sw.Table.Remove(m)
			}
		}
	}
	lat := c.Timing.ComputeUS
	installed := 0
	// Each switch on the path forwards toward the next hop.
	for i := 0; i < len(p.NodeIDs)-1; i++ {
		node := p.NodeIDs[i]
		sw := c.switches[node]
		if sw == nil {
			continue // src host itself
		}
		sw.Table.Install(Rule{Match: m, Action: Action{OutLink: p.LinkIDs[i]}, Priority: 10})
		installed++
	}
	c.RuleInstalls += installed
	// Rule writes to distinct switches proceed in parallel from the
	// controller; the fabric-wide barrier is one install time (plus punt
	// RTT in reactive mode, charged by the caller).
	lat += c.Timing.RuleInstallUS
	c.ControlLatencyUS += lat
	c.flows[m] = p
	return lat, nil
}

// FlowSetupUS returns the first-packet latency contribution of the control
// plane for one new flow in the current mode: zero when proactive, punt
// round trip + compute + install when reactive.
func (c *Controller) FlowSetupUS(src, dst int) (float64, error) {
	if c.Mode == Proactive {
		if _, ok := c.flows[Match{Src: src, Dst: dst}]; !ok {
			return 0, fmt.Errorf("sdn: proactive fabric missing rule for %d->%d", src, dst)
		}
		return 0, nil
	}
	c.Punts++
	lat, err := c.InstallPath(src, dst)
	if err != nil {
		return 0, err
	}
	return 2*c.Timing.PuntUS + lat, nil
}

// Preinstall loads rules for every (src, dst) pair in pairs; proactive
// deployments call it before traffic starts. It returns total control
// latency in microseconds, modelling the controller as pipelining rule
// pushes fabric-wide (bounded by the slowest switch, i.e. rules per switch
// × install time).
func (c *Controller) Preinstall(pairs [][2]int) (float64, error) {
	before := map[int]int{}
	for node, sw := range c.switches {
		before[node] = sw.Table.Len()
	}
	for _, pr := range pairs {
		if _, err := c.InstallPath(pr[0], pr[1]); err != nil {
			return 0, err
		}
	}
	worst := 0
	for node, sw := range c.switches {
		if d := sw.Table.Len() - before[node]; d > worst {
			worst = d
		}
	}
	return float64(worst) * c.Timing.RuleInstallUS, nil
}

// Forward walks a packet from src to dst through the data plane using only
// installed rules, returning the traversed path. It fails on a table miss
// (reactive mode requires FlowSetupUS first) or a forwarding loop.
func (c *Controller) Forward(src, dst int) (topo.Path, error) {
	var path topo.Path
	path.NodeIDs = append(path.NodeIDs, src)
	cur := src
	for steps := 0; cur != dst; steps++ {
		if steps > len(c.Net.Nodes) {
			return path, fmt.Errorf("sdn: forwarding loop %d -> %d", src, dst)
		}
		var out int
		if sw := c.switches[cur]; sw != nil {
			act, ok := sw.Table.Lookup(src, dst)
			if !ok {
				return path, fmt.Errorf("sdn: table miss at switch %d for %d->%d", cur, src, dst)
			}
			if act.PuntToController || act.OutLink < 0 {
				return path, fmt.Errorf("sdn: packet punted/dropped at switch %d", cur)
			}
			out = act.OutLink
		} else {
			// Hosts forward on their single access link.
			inc := c.Net.Incident(cur)
			if len(inc) == 0 {
				return path, fmt.Errorf("sdn: host %d has no links", cur)
			}
			out = inc[0]
		}
		next := c.Net.Links[out].Other(cur)
		path.LinkIDs = append(path.LinkIDs, out)
		path.NodeIDs = append(path.NodeIDs, next)
		cur = next
	}
	return path, nil
}
