package relational

import (
	"sync"

	"repro/internal/kernels"
)

// BatchGroupAgg is the morsel-parallel grouped aggregation: it statically
// partitions its child across workers, aggregates each partition into a
// private hash table, and merges the partials in partition order. Static
// (contiguous-range) partitioning makes the merge order — and therefore
// the group emission order and float rounding — deterministic for a given
// worker count, and the emission order equals the serial engine's
// first-seen order.
type BatchGroupAgg struct {
	child     BatchOp
	groupCols []int
	aggs      []AggSpec
	schema    Schema
	workers   int

	out  []*Batch
	pos  int
	done bool
	stat *opCount
}

// NewBatchGroupAgg returns a grouped aggregation over child using up to
// workers goroutines (0 = NumCPU).
func NewBatchGroupAgg(child BatchOp, groupCols []int, aggs []AggSpec, workers int) (*BatchGroupAgg, error) {
	schema, err := groupAggSchema(child.Schema(), groupCols, aggs)
	if err != nil {
		return nil, err
	}
	return &BatchGroupAgg{
		child: child, groupCols: groupCols, aggs: aggs, schema: schema,
		workers: EffectiveWorkers(workers), stat: &opCount{},
	}, nil
}

// Schema implements BatchOp.
func (g *BatchGroupAgg) Schema() Schema { return g.schema }

// aggPartial is one partition's aggregation state: groups in first-seen
// order within the partition.
type aggPartial struct {
	groups map[string]*aggGroup
	order  []string
	err    error
}

type aggGroup struct {
	key    Row
	states []aggState
}

// globalAggFast updates a single global state column-at-a-time via the
// reduction kernels. Only Int columns qualify: their sums are exact, so
// kernel order cannot perturb results.
func (g *BatchGroupAgg) globalAggFast(st []aggState, b *Batch) bool {
	for _, a := range g.aggs {
		if a.Fn == CountAgg {
			continue
		}
		if a.Fn == AvgAgg || b.Cols[a.Col].T != Int {
			return false
		}
	}
	n := int64(b.Len())
	for i, a := range g.aggs {
		s := &st[i]
		s.count += n
		if a.Fn == CountAgg {
			continue
		}
		col := b.Cols[a.Col].Ints
		sum := kernels.SumInt64(col)
		s.sumI += sum
		s.sumF += float64(sum)
		lo, hi := kernels.MinMaxInt64(col)
		if !s.seen {
			s.minV, s.maxV, s.seen = IntV(lo), IntV(hi), true
		} else {
			if lo < s.minV.I {
				s.minV = IntV(lo)
			}
			if hi > s.maxV.I {
				s.maxV = IntV(hi)
			}
		}
	}
	return true
}

// aggregatePart drains one partition into a private partial.
func (g *BatchGroupAgg) aggregatePart(part BatchOp) *aggPartial {
	p := &aggPartial{groups: map[string]*aggGroup{}}
	var kb []byte
	global := len(g.groupCols) == 0
	for {
		b, err := part.NextBatch()
		if err != nil {
			p.err = err
			return p
		}
		if b == nil {
			return p
		}
		if global {
			gr := p.groups[""]
			if gr == nil {
				gr = &aggGroup{states: make([]aggState, len(g.aggs))}
				p.groups[""] = gr
				p.order = append(p.order, "")
			}
			if g.globalAggFast(gr.states, b) {
				continue
			}
			n := b.Len()
			var buf Row
			for r := 0; r < n; r++ {
				buf = b.Row(r, buf)
				if err := observeRow(gr, g.aggs, buf); err != nil {
					p.err = err
					return p
				}
			}
			continue
		}
		n := b.Len()
		var buf Row
		for r := 0; r < n; r++ {
			buf = b.Row(r, buf)
			kb = kb[:0]
			for _, c := range g.groupCols {
				kb = append(kb, buf[c].Key()...)
				kb = append(kb, 0)
			}
			gr, ok := p.groups[string(kb)]
			if !ok {
				key := make(Row, len(g.groupCols))
				for i, c := range g.groupCols {
					key[i] = buf[c]
				}
				gr = &aggGroup{key: key, states: make([]aggState, len(g.aggs))}
				k := string(kb)
				p.groups[k] = gr
				p.order = append(p.order, k)
			}
			if err := observeRow(gr, g.aggs, buf); err != nil {
				p.err = err
				return p
			}
		}
	}
}

func observeRow(gr *aggGroup, aggs []AggSpec, row Row) error {
	for i, a := range aggs {
		var v Value
		if a.Fn != CountAgg {
			v = row[a.Col]
		}
		if err := gr.states[i].observe(a.Fn, v); err != nil {
			return err
		}
	}
	return nil
}

func (g *BatchGroupAgg) materialize() error {
	parts := partitionOrSelf(g.child, g.workers, true)
	partials := make([]*aggPartial, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part BatchOp) {
			defer wg.Done()
			partials[i] = g.aggregatePart(part)
		}(i, part)
	}
	wg.Wait()
	// Merge in partition order: partition i's rows precede partition
	// i+1's, so appending unseen groups in that order reproduces the
	// serial first-seen order.
	merged := map[string]*aggGroup{}
	var order []string
	for _, p := range partials {
		if p.err != nil {
			return p.err
		}
		for _, k := range p.order {
			pg := p.groups[k]
			mg, ok := merged[k]
			if !ok {
				merged[k] = pg
				order = append(order, k)
				continue
			}
			for i := range mg.states {
				mg.states[i].mergeFrom(&pg.states[i])
			}
		}
	}
	// Global aggregate over empty input still yields one row of zeros.
	if len(g.groupCols) == 0 && len(order) == 0 {
		merged[""] = &aggGroup{states: make([]aggState, len(g.aggs))}
		order = append(order, "")
	}
	var cur *Batch
	var seq int64
	for _, k := range order {
		gr := merged[k]
		if cur == nil {
			cur = NewBatch(g.schema, BatchSize)
			cur.Seq = seq
			seq++
		}
		for i := range g.groupCols {
			cur.Cols[i].Append(gr.key[i])
		}
		for i, a := range g.aggs {
			cur.Cols[len(g.groupCols)+i].Append(gr.states[i].result(a.Fn, g.schema[len(g.groupCols)+i].Type))
		}
		cur.n++
		if cur.Len() >= BatchSize {
			g.out = append(g.out, cur)
			cur = nil
		}
	}
	if cur != nil && cur.Len() > 0 {
		g.out = append(g.out, cur)
	}
	g.done = true
	return nil
}

// NextBatch implements BatchOp.
func (g *BatchGroupAgg) NextBatch() (*Batch, error) {
	if !g.done {
		if err := g.materialize(); err != nil {
			return nil, err
		}
	}
	if g.pos >= len(g.out) {
		return nil, nil
	}
	b := g.out[g.pos]
	g.pos++
	g.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (g *BatchGroupAgg) Stats() OpStats { return g.stat.stats() }
