package relational

import (
	"sync"

	"repro/internal/exec"
)

// BatchGroupAgg is the morsel-parallel grouped aggregation: it statically
// partitions its child across workers, aggregates each partition into a
// private PartialAgg, and merges the partials in partition order. Static
// (contiguous-range) partitioning makes the merge order — and therefore
// the group emission order and float rounding — deterministic for a given
// worker count, and the emission order equals the serial engine's
// first-seen order. Partitions share a cancelGroup: one failing partition
// stops its siblings at their next batch boundary.
type BatchGroupAgg struct {
	child     BatchOp
	groupCols []int
	aggs      []AggSpec
	schema    Schema
	workers   int
	disp      *exec.Dispatcher
	budget    *MemoryBudget
	meter     *spillMeter

	out  []*Batch
	pos  int
	done bool
	stat *opCount
}

// NewBatchGroupAgg returns a grouped aggregation over child using up to
// workers goroutines (0 = NumCPU).
func NewBatchGroupAgg(child BatchOp, groupCols []int, aggs []AggSpec, workers int) (*BatchGroupAgg, error) {
	schema, err := groupAggSchema(child.Schema(), groupCols, aggs)
	if err != nil {
		return nil, err
	}
	return &BatchGroupAgg{
		child: child, groupCols: groupCols, aggs: aggs, schema: schema,
		workers: EffectiveWorkers(workers), stat: &opCount{},
	}, nil
}

// Schema implements BatchOp.
func (g *BatchGroupAgg) Schema() Schema { return g.schema }

// Place routes the partial-aggregation morsels through a heterogeneous
// device dispatcher (nil keeps the homogeneous engine). Each worker's
// per-batch partial update is one dispatched morsel; the dispatcher is
// shared across workers.
func (g *BatchGroupAgg) Place(d *exec.Dispatcher) { g.disp = d }

// SetBudget charges the per-worker group hash tables to a query memory
// budget; workers race for it and spill generations independently (nil
// keeps the unbudgeted engine, bit-identically).
func (g *BatchGroupAgg) SetBudget(b *MemoryBudget) {
	g.budget = b
	g.meter = newSpillMeter(b)
}

func observeRow(gr *partialGroup, aggs []AggSpec, row Row) error {
	for i, a := range aggs {
		var v Value
		if a.Fn != CountAgg {
			v = row[a.Col]
		}
		if err := gr.states[i].observe(a.Fn, v); err != nil {
			return err
		}
	}
	return nil
}

// aggregatePart drains one partition into a private partial, aborting at
// the next batch boundary once a sibling has failed.
func (g *BatchGroupAgg) aggregatePart(part BatchOp, cg *cancelGroup) *PartialAgg {
	sa := NewSpillableAgg(g.groupCols, g.aggs, g.budget, g.meter)
	for !cg.stop() {
		b, err := part.NextBatch()
		if err != nil {
			cg.abort(err)
			break
		}
		if b == nil {
			break
		}
		if err := g.disp.Run(b.Len(), func() error { return sa.ObserveBatch(b, -1) }); err != nil {
			cg.abort(err)
			break
		}
	}
	return sa.Finish()
}

func (g *BatchGroupAgg) materialize() error {
	parts := partitionOrSelf(g.child, g.workers, true)
	partials := make([]*PartialAgg, len(parts))
	cg := &cancelGroup{}
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part BatchOp) {
			defer wg.Done()
			partials[i] = g.aggregatePart(part, cg)
		}(i, part)
	}
	wg.Wait()
	if err := cg.Err(); err != nil {
		return err
	}
	// Merge in partition order: partition i's rows precede partition
	// i+1's, so appending unseen groups in that order reproduces the
	// serial first-seen order.
	merged := partials[0]
	for _, p := range partials[1:] {
		merged.MergeFrom(p)
	}
	var cur *Batch
	var seq int64
	for _, row := range merged.EmitRows(g.schema, false) {
		if cur == nil {
			cur = NewBatch(g.schema, BatchSize)
			cur.Seq = seq
			seq++
		}
		cur.AppendRow(row)
		if cur.Len() >= BatchSize {
			g.out = append(g.out, cur)
			cur = nil
		}
	}
	if cur != nil && cur.Len() > 0 {
		g.out = append(g.out, cur)
	}
	g.done = true
	return nil
}

// NextBatch implements BatchOp.
func (g *BatchGroupAgg) NextBatch() (*Batch, error) {
	if !g.done {
		if err := g.materialize(); err != nil {
			return nil, err
		}
	}
	if g.pos >= len(g.out) {
		return nil, nil
	}
	b := g.out[g.pos]
	g.pos++
	g.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (g *BatchGroupAgg) Stats() OpStats {
	st := heteroStats(g.stat, g.disp)
	st.Spill = g.meter.opSpill()
	return st
}
