package relational

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrCancelled is the error a CancelToken reports when it was cancelled
// without an explicit cause.
var ErrCancelled = errors.New("relational: execution cancelled")

// CancelToken is the external-cancellation handle of one query execution.
// It is the bridge between a caller-side signal (typically a
// context.Context) and the engine's internal cancelGroup machinery: the
// Guard/GuardBatch wrappers surface the token's error at the next row or
// batch boundary, and inside a parallel operator that error trips the
// partitions' shared cancelGroup, so every sibling worker stops at its
// own next batch boundary instead of draining its input.
//
// A token is single-use (one per execution) and safe for concurrent use.
type CancelToken struct {
	tripped atomic.Bool
	mu      sync.Mutex
	err     error
	subs    []func()
}

// NewCancelToken returns an untripped token.
func NewCancelToken() *CancelToken { return &CancelToken{} }

// Cancel trips the token with the given cause (nil records ErrCancelled)
// and fires any OnCancel subscribers. The first cause wins; later calls
// are no-ops.
func (t *CancelToken) Cancel(err error) {
	if err == nil {
		err = ErrCancelled
	}
	t.mu.Lock()
	if t.err != nil {
		t.mu.Unlock()
		return
	}
	t.err = err
	subs := t.subs
	t.subs = nil
	t.mu.Unlock()
	t.tripped.Store(true)
	for _, fn := range subs {
		fn()
	}
}

// Cancelled reports whether the token has tripped. It is the fast path
// the per-batch checks poll.
func (t *CancelToken) Cancelled() bool { return t != nil && t.tripped.Load() }

// Err returns the recorded cause, or nil while the token is live. A nil
// token reports nil, so optional tokens need no call-site guards.
func (t *CancelToken) Err() error {
	if t == nil || !t.tripped.Load() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// OnCancel registers fn to run when the token trips (immediately if it
// already has). Blocked waiters — e.g. a query parked at a fabric
// admission barrier — use it to get woken on cancellation.
func (t *CancelToken) OnCancel(fn func()) {
	t.mu.Lock()
	if t.err != nil {
		t.mu.Unlock()
		fn()
		return
	}
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
}

// Guard wraps a row operator so the token is checked on every Next. A
// nil token returns op unchanged.
func Guard(op Op, t *CancelToken) Op {
	if t == nil {
		return op
	}
	return &guardOp{child: op, t: t}
}

type guardOp struct {
	child Op
	t     *CancelToken
}

// Schema implements Op.
func (g *guardOp) Schema() Schema { return g.child.Schema() }

// Next implements Op.
func (g *guardOp) Next() (Row, bool, error) {
	if g.t.Cancelled() {
		return nil, false, g.t.Err()
	}
	return g.child.Next()
}

// Stats implements Op.
func (g *guardOp) Stats() OpStats { return g.child.Stats() }

// GuardBatch wraps a batch operator so the token is checked at every
// batch boundary. The wrapper partitions like its child, so a guarded
// leaf keeps the check on every Exchange worker's stream — the first
// partition to observe cancellation returns the token's error, which the
// worker's cancelGroup then propagates to its siblings. A nil token
// returns op unchanged.
func GuardBatch(op BatchOp, t *CancelToken) BatchOp {
	if t == nil {
		return op
	}
	return &guardBatchOp{child: op, t: t}
}

type guardBatchOp struct {
	child BatchOp
	t     *CancelToken
}

// Schema implements BatchOp.
func (g *guardBatchOp) Schema() Schema { return g.child.Schema() }

// NextBatch implements BatchOp.
func (g *guardBatchOp) NextBatch() (*Batch, error) {
	if g.t.Cancelled() {
		return nil, g.t.Err()
	}
	return g.child.NextBatch()
}

// Stats implements BatchOp.
func (g *guardBatchOp) Stats() OpStats { return g.child.Stats() }

// Partition implements Partitioner.
func (g *guardBatchOp) Partition(n int, static bool) []BatchOp {
	p, ok := g.child.(Partitioner)
	if !ok {
		return nil
	}
	parts := p.Partition(n, static)
	out := make([]BatchOp, len(parts))
	for i, cp := range parts {
		out[i] = &guardBatchOp{child: cp, t: g.t}
	}
	return out
}
