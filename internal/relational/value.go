// Package relational is a small in-memory relational engine: typed
// schemas, row relations, and volcano-style pull operators (scan, filter,
// project, hash join, group/aggregate, sort, limit). It is the execution
// substrate the SQL layer (internal/sql) lowers onto, standing in for the
// "query language" side of Section IV.C.1's query-languages-to-frameworks
// discussion.
package relational

import (
	"fmt"
	"strconv"
	"sync"
)

// Type is a column type.
type Type int

// Column types.
const (
	Int Type = iota
	Float
	String
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Value is one typed cell.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// IntV, FloatV and StringV construct cells.
func IntV(v int64) Value     { return Value{T: Int, I: v} }
func FloatV(v float64) Value { return Value{T: Float, F: v} }
func StringV(v string) Value { return Value{T: String, S: v} }

// AsFloat coerces numeric values to float64; it returns an error for
// strings.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case Int:
		return float64(v.I), nil
	case Float:
		return v.F, nil
	default:
		return 0, fmt.Errorf("relational: cannot treat %q as a number", v.S)
	}
}

// String renders the value.
func (v Value) String() string {
	switch v.T {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// Compare orders two values: -1, 0 or +1. Numerics compare numerically
// (int and float intermix); strings compare lexicographically. Comparing a
// string with a numeric is an error.
func Compare(a, b Value) (int, error) {
	if a.T == String || b.T == String {
		if a.T != String || b.T != String {
			return 0, fmt.Errorf("relational: cannot compare %v with %v", a.T, b.T)
		}
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

// Equal reports a == b under Compare semantics.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Key returns a map-key form of the value for hashing (group-by, join).
func (v Value) Key() string {
	switch v.T {
	case Int:
		return "i" + strconv.FormatInt(v.I, 10)
	case Float:
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	default:
		return "s" + v.S
	}
}

// Column describes one schema column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema []Column

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Concat returns the schema of a join output: s then t.
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Row is one tuple.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Relation is a materialized table. The row store is authoritative; the
// batch engine lazily builds (and caches) a columnar image of it, so
// scans hand out zero-copy column windows. Appending rows invalidates
// the cache automatically; mutating existing rows in place does not —
// call InvalidateColumnar after in-place edits, or treat Rows as
// immutable once queries have run.
type Relation struct {
	Name   string
	Schema Schema
	Rows   []Row

	colMu   sync.Mutex
	colRows int
	cols    []Vector
}

// NewRelation returns an empty relation.
func NewRelation(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a row after arity/type checking.
func (r *Relation) Append(row Row) error {
	if len(row) != len(r.Schema) {
		return fmt.Errorf("relational: %s: row arity %d != schema arity %d", r.Name, len(row), len(r.Schema))
	}
	for i, v := range row {
		if v.T != r.Schema[i].Type {
			return fmt.Errorf("relational: %s: column %s expects %v, got %v", r.Name, r.Schema[i].Name, r.Schema[i].Type, v.T)
		}
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend is Append, panicking on error (for table literals in tests
// and generators).
func (r *Relation) MustAppend(row Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the row count.
func (r *Relation) Len() int { return len(r.Rows) }

// InvalidateColumnar drops the cached columnar image so the next batch
// scan rebuilds it — required after mutating existing rows in place
// (appends are detected automatically).
func (r *Relation) InvalidateColumnar() {
	r.colMu.Lock()
	defer r.colMu.Unlock()
	r.cols = nil
	r.colRows = 0
}

// Columnar returns the cached columnar image of the relation, building
// it on first use (and rebuilding if rows were appended since). The
// returned vectors are shared and must be treated as immutable.
func (r *Relation) Columnar() []Vector {
	r.colMu.Lock()
	defer r.colMu.Unlock()
	if r.cols != nil && r.colRows == len(r.Rows) {
		return r.cols
	}
	cols := make([]Vector, len(r.Schema))
	for c, col := range r.Schema {
		v := NewVector(col.Type, len(r.Rows))
		switch col.Type {
		case Int:
			for _, row := range r.Rows {
				v.Ints = append(v.Ints, row[c].I)
			}
		case Float:
			for _, row := range r.Rows {
				v.Floats = append(v.Floats, row[c].F)
			}
		default:
			for _, row := range r.Rows {
				v.Strs = append(v.Strs, row[c].S)
			}
		}
		cols[c] = v
	}
	r.cols = cols
	r.colRows = len(r.Rows)
	return cols
}
