package relational

import (
	"fmt"
	"testing"
)

func TestValueStringRendering(t *testing.T) {
	if IntV(-5).String() != "-5" {
		t.Fatal("int render")
	}
	if FloatV(2.5).String() != "2.5" {
		t.Fatal("float render")
	}
	if StringV("x").String() != "x" {
		t.Fatal("string render")
	}
	if Int.String() != "int" || Float.String() != "float" || String.String() != "string" {
		t.Fatal("type names")
	}
}

func TestAsFloatErrors(t *testing.T) {
	if _, err := StringV("a").AsFloat(); err == nil {
		t.Fatal("string AsFloat must error")
	}
	if f, err := IntV(3).AsFloat(); err != nil || f != 3 {
		t.Fatal("int AsFloat")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{Name: "a", Type: Int}, {Name: "b", Type: Float}}
	if s.ColIndex("b") != 1 || s.ColIndex("zz") != -1 {
		t.Fatal("ColIndex")
	}
	c := s.Concat(Schema{{Name: "c", Type: String}})
	if len(c) != 3 || c[2].Name != "c" {
		t.Fatal("Concat")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{IntV(1), StringV("x")}
	c := r.Clone()
	c[0] = IntV(9)
	if r[0].I != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestErrorsPropagateThroughPipeline(t *testing.T) {
	rel := sample()
	boom := fmt.Errorf("boom")
	f := NewFilter(NewScan(rel), func(Row) (bool, error) { return false, boom })
	if _, err := Collect(f, "x"); err != boom {
		t.Fatalf("filter error not propagated: %v", err)
	}
	p, err := NewProject(NewScan(rel), Schema{{Name: "e", Type: Int}},
		[]Projector{func(Row) (Value, error) { return Value{}, boom }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(p, "x"); err != boom {
		t.Fatalf("project error not propagated: %v", err)
	}
	// Error inside a join's build side.
	j, err := NewHashJoin(NewFilter(NewScan(rel), func(Row) (bool, error) { return false, boom }), NewScan(rel), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Next(); err != boom {
		t.Fatalf("join build error not propagated: %v", err)
	}
	// Error under a sort.
	s, err := NewSort(NewFilter(NewScan(rel), func(Row) (bool, error) { return false, boom }), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Next(); err != boom {
		t.Fatalf("sort error not propagated: %v", err)
	}
	// Error under a group-agg.
	g, err := NewGroupAgg(NewFilter(NewScan(rel), func(Row) (bool, error) { return false, boom }), nil, []AggSpec{{Fn: CountAgg, Col: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Next(); err != boom {
		t.Fatalf("group error not propagated: %v", err)
	}
}

func TestGroupAggValidation(t *testing.T) {
	rel := sample()
	if _, err := NewGroupAgg(NewScan(rel), []int{99}, nil); err == nil {
		t.Fatal("bad group column must error")
	}
	if _, err := NewGroupAgg(NewScan(rel), nil, []AggSpec{{Fn: SumAgg, Col: 99}}); err == nil {
		t.Fatal("bad aggregate column must error")
	}
}

func TestSumOverStringColumnErrors(t *testing.T) {
	rel := sample()
	g, err := NewGroupAgg(NewScan(rel), nil, []AggSpec{{Fn: SumAgg, Col: 1}}) // region: string
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Next(); err == nil {
		t.Fatal("SUM(string) must fail at execution")
	}
}

func TestMinMaxOnStrings(t *testing.T) {
	rel := sample()
	g, err := NewGroupAgg(NewScan(rel), nil, []AggSpec{
		{Fn: MinAgg, Col: 1, Name: "lo"},
		{Fn: MaxAgg, Col: 1, Name: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(g, "x")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].S != "APAC" || out.Rows[0][1].S != "NA" {
		t.Fatalf("string min/max = %v", out.Rows[0])
	}
}

func TestAggFnStrings(t *testing.T) {
	for fn, want := range map[AggFn]string{
		CountAgg: "count", SumAgg: "sum", MinAgg: "min", MaxAgg: "max", AvgAgg: "avg",
	} {
		if fn.String() != want {
			t.Fatalf("%d.String() = %q", int(fn), fn.String())
		}
	}
}

func TestStatsCountRows(t *testing.T) {
	rel := sample()
	sc := NewScan(rel)
	if _, err := Collect(sc, "x"); err != nil {
		t.Fatal(err)
	}
	if sc.Stats().RowsOut != rel.Len() {
		t.Fatalf("scan stats = %+v", sc.Stats())
	}
}
