package relational

import (
	"sort"
	"sync"
)

// Grace partitioning parameters. Fanout 8 shrinks partitions fast (a
// budget overrun of 8x resolves in one pass); the depth cap bounds the
// recursion on degenerate key distributions (all rows one key) — a leaf
// at the cap is processed in memory regardless of size, so a skewed key
// degrades gracefully instead of recursing forever or failing.
const (
	graceFanout   = 8
	maxGraceDepth = 4
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// graceHash hashes a join key value. Int keys avoid the Key() allocation;
// the two paths never need to agree because Int build keys only ever
// match Int probe values (Key() encodes the type).
func graceHash(v Value) uint64 {
	if v.T == Int {
		h := uint64(v.I)
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		return h
	}
	return fnv64(v.Key())
}

// graceBucket assigns a key to one of the fanout buckets at the given
// recursion depth. The depth salts the hash so a bucket's keys spread
// across all children when re-partitioned, instead of collapsing into
// one child again.
func graceBucket(v Value, depth int) int {
	h := graceHash(v)
	h ^= uint64(depth+1) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return int(h % graceFanout)
}

// graceLeaf is one terminal build partition: either resident (its bytes
// fit the budget, first-fit at build time) or spilled to the tier. All
// build rows of one key land in one leaf with serial order preserved, so
// a leaf-local hash table reproduces the global table's per-key lists.
type graceLeaf struct {
	id      int
	idxs    []int32 // indices into joinCore.rows, ascending (serial order)
	bytes   int64
	spilled bool

	once sync.Once
	intT map[int64][]int32
	keyT map[string][]int32
}

// graceNode is one level of the recursive partitioning tree: each bucket
// is either a leaf or (when it overflowed the whole budget) a deeper node.
type graceNode struct {
	depth  int
	kids   [graceFanout]*graceNode
	leaves [graceFanout]*graceLeaf
}

// buildGrace partitions the build rows after the whole-table reservation
// failed. Called once from runBuild, before any probe runs.
func (c *joinCore) buildGrace() {
	idxs := make([]int32, len(c.rows))
	for i := range idxs {
		idxs[i] = int32(i)
	}
	c.grace = c.splitGrace(idxs, 0)
}

// splitGrace hash-partitions idxs into fanout buckets. Each bucket tries
// to reserve residence; a bucket that fails spills (one partition write),
// and a spilled bucket too big to ever fit re-partitions one level deeper
// (read back + re-write via the recursive call), up to the depth cap.
func (c *joinCore) splitGrace(idxs []int32, depth int) *graceNode {
	n := &graceNode{depth: depth}
	var buckets [graceFanout][]int32
	for _, i := range idxs {
		b := graceBucket(c.rows[i][c.buildCol], depth)
		buckets[b] = append(buckets[b], i)
	}
	for bi, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		var bytes int64
		for _, i := range bucket {
			bytes += int64(c.rows[i].EncodedBytes())
		}
		if c.budget.Reserve(bytes) {
			n.leaves[bi] = c.newGraceLeaf(bucket, bytes, false)
			continue
		}
		c.meter.notePartition(depth + 1)
		c.meter.chargeWrite(bytes)
		if bytes > c.budget.Limit() && depth+1 < maxGraceDepth {
			c.meter.chargeRead(bytes)
			n.kids[bi] = c.splitGrace(bucket, depth+1)
			continue
		}
		n.leaves[bi] = c.newGraceLeaf(bucket, bytes, true)
	}
	return n
}

func (c *joinCore) newGraceLeaf(idxs []int32, bytes int64, spilled bool) *graceLeaf {
	l := &graceLeaf{id: len(c.leaves), idxs: idxs, bytes: bytes, spilled: spilled}
	c.leaves = append(c.leaves, l)
	return l
}

// routeLeaf descends the partition tree for a probe key. A nil result
// means the key hashed to a bucket with no build rows: no match possible.
func (c *joinCore) routeLeaf(v Value) *graceLeaf {
	n := c.grace
	for {
		b := graceBucket(v, n.depth)
		if n.kids[b] != nil {
			n = n.kids[b]
			continue
		}
		return n.leaves[b]
	}
}

// tables lazily builds the leaf-local hash table (shared across
// concurrent probe partitions, hence the once).
func (l *graceLeaf) tables(c *joinCore) {
	l.once.Do(func() {
		if c.buildKeyInt {
			l.intT = make(map[int64][]int32, len(l.idxs))
			for _, i := range l.idxs {
				k := c.rows[i][c.buildCol].I
				l.intT[k] = append(l.intT[k], i)
			}
			return
		}
		l.keyT = make(map[string][]int32, len(l.idxs))
		for _, i := range l.idxs {
			k := c.rows[i][c.buildCol].Key()
			l.keyT[k] = append(l.keyT[k], i)
		}
	})
}

// matches mirrors joinCore.matches for one leaf.
func (l *graceLeaf) matches(v Value) []int32 {
	if l.intT != nil {
		if v.T != Int {
			return nil
		}
		return l.intT[v.I]
	}
	return l.keyT[v.Key()]
}

// graceProbeEnt is one buffered probe row awaiting its partition's pass.
type graceProbeEnt struct {
	row      Row
	seq, ord int64
}

// graceOutEnt is one output row tagged for order reconstruction.
type graceOutEnt struct {
	seq, ord int64
	bi       int32
	prow     Row
}

// graceProbe drains this stream's whole probe partition, routes each row
// through the partition tree, processes leaves one at a time (pricing the
// read-back of spilled build and probe partitions), and reassembles the
// output in (seq, ord) arrival order — row-for-row what the in-memory
// probe loop would have produced. The drain happens strictly below any
// Exchange above this operator (one synchronous pull per stream), so
// buffering the stream here cannot deadlock the batch pipeline.
func (j *BatchHashJoin) graceProbe() error {
	c := j.core
	bufs := make([][]graceProbeEnt, len(c.leaves))
	bufBytes := make([]int64, len(c.leaves))
	var ord int64
	for {
		b, err := j.probe.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			v := b.Cols[c.probeCol].Value(r)
			l := c.routeLeaf(v)
			if l == nil {
				ord++
				continue
			}
			row := b.Row(r, nil)
			bufs[l.id] = append(bufs[l.id], graceProbeEnt{row: row, seq: b.Seq, ord: ord})
			bufBytes[l.id] += int64(row.EncodedBytes())
			ord++
		}
	}
	var outs []graceOutEnt
	for li, l := range c.leaves {
		ents := bufs[li]
		if len(ents) == 0 {
			continue
		}
		if l.spilled {
			// Probe rows bound for a spilled partition are written out
			// beside it; the pass then reads both sides back.
			c.meter.chargeWrite(bufBytes[li])
			c.meter.chargeRead(bufBytes[li])
			c.meter.chargeRead(l.bytes)
		}
		l.tables(c)
		for _, e := range ents {
			for _, bi := range l.matches(e.row[c.probeCol]) {
				outs = append(outs, graceOutEnt{seq: e.seq, ord: e.ord, bi: bi, prow: e.row})
			}
		}
	}
	// (seq, ord) ascending restores probe arrival order; the stable sort
	// keeps a probe row's multiple matches in build serial order.
	sort.SliceStable(outs, func(i, j int) bool {
		if outs[i].seq != outs[j].seq {
			return outs[i].seq < outs[j].seq
		}
		return outs[i].ord < outs[j].ord
	})
	var cur *Batch
	for _, o := range outs {
		if cur != nil && cur.Seq != o.seq {
			j.graceOut = append(j.graceOut, cur)
			cur = nil
		}
		if cur == nil {
			cur = NewBatch(c.schema, BatchSize)
			cur.Seq = o.seq
		}
		brow := c.rows[o.bi]
		for col := 0; col < c.buildWidth; col++ {
			cur.Cols[col].Append(brow[col])
		}
		for col, v := range o.prow {
			cur.Cols[c.buildWidth+col].Append(v)
		}
		cur.n++
	}
	if cur != nil {
		j.graceOut = append(j.graceOut, cur)
	}
	return nil
}
