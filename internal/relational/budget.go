package relational

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// SpillDevice prices transfers to the modeled storage tier operators
// spill to when a MemoryBudget runs out. The relational layer only needs
// pricing, not the tier model itself, so this interface decouples it
// from the memtier package the same way Controller decouples dist from
// netsim: the sql layer injects a memtier.SpillDevice at plan time.
type SpillDevice interface {
	// Tier names the tier being priced ("nvm", "ssd", "disk").
	Tier() string
	// WriteSeconds prices spilling bytes out to the tier.
	WriteSeconds(bytes float64) float64
	// ReadSeconds prices reading spilled bytes back.
	ReadSeconds(bytes float64) float64
	// AccessJoules prices the energy of moving bytes either direction.
	AccessJoules(bytes float64) float64
}

// SpillStats aggregates the modeled out-of-core activity of one operator
// or one query: how many partitions were pushed below the budget line,
// how many bytes crossed the tier boundary, and what the crossing cost.
type SpillStats struct {
	// Tier is the storage tier spill traffic was priced against.
	Tier string
	// Partitions counts state partitions (grace buckets, agg
	// generations, sort runs) evicted to the tier.
	Partitions int
	// SpilledBytes is the total bytes written to the tier.
	SpilledBytes int64
	// WriteSeconds and ReadSeconds are the modeled transfer times of the
	// spill writes and the later read-back passes.
	WriteSeconds float64
	ReadSeconds  float64
	// EnergyJ is the modeled access energy of all spill traffic.
	EnergyJ float64
	// MaxDepth is the deepest recursive re-partitioning level reached
	// (0 = no spill, 1 = one grace pass, …).
	MaxDepth int
}

// Active reports whether any spill happened.
func (s SpillStats) Active() bool { return s.Partitions > 0 || s.SpilledBytes > 0 }

// add folds o into s (tier names agree by construction — one device per
// query).
func (s *SpillStats) add(o SpillStats) {
	if o.Tier != "" {
		s.Tier = o.Tier
	}
	s.Partitions += o.Partitions
	s.SpilledBytes += o.SpilledBytes
	s.WriteSeconds += o.WriteSeconds
	s.ReadSeconds += o.ReadSeconds
	s.EnergyJ += o.EnergyJ
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// String renders the stats on one line, mirroring DeviceStats.
func (s SpillStats) String() string {
	return fmt.Sprintf("spill[%s]: %d partitions, %.1f MB, write %.3f ms, read %.3f ms, %.3f mJ, depth %d",
		s.Tier, s.Partitions, float64(s.SpilledBytes)/(1<<20),
		s.WriteSeconds*1e3, s.ReadSeconds*1e3, s.EnergyJ*1e3, s.MaxDepth)
}

// spillAgg is the query-wide accumulator every operator's meter forwards
// to; shared across Fork()ed budgets so distributed shards and parallel
// partitions all land in one Result.Spill.
type spillAgg struct {
	mu sync.Mutex
	st SpillStats
}

func (a *spillAgg) add(o SpillStats) {
	a.mu.Lock()
	a.st.add(o)
	a.mu.Unlock()
}

func (a *spillAgg) snapshot() SpillStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// MemoryBudget is per-query arena accounting for operator state: build
// tables, partial-aggregate maps, and sort runs Reserve bytes before
// materializing them and spill when the reservation fails. Reserve and
// Release are safe for concurrent use, so morsel-parallel partitions
// race for one shared budget exactly like threads race for one DRAM
// arena. A nil *MemoryBudget means "unbudgeted": every operation is a
// no-op returning success, so unset budgets replay bit-identically.
type MemoryBudget struct {
	limit int64
	dev   SpillDevice
	used  atomic.Int64
	agg   *spillAgg
}

// NewMemoryBudget builds a budget of limit bytes spilling to dev.
func NewMemoryBudget(limit int64, dev SpillDevice) *MemoryBudget {
	return &MemoryBudget{limit: limit, dev: dev, agg: &spillAgg{st: SpillStats{Tier: dev.Tier()}}}
}

// Limit returns the budget size in bytes (0 for a nil budget).
func (b *MemoryBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Reserve atomically charges bytes against the budget, failing without
// side effects when the charge would exceed the limit.
func (b *MemoryBudget) Reserve(bytes int64) bool {
	if b == nil || bytes <= 0 {
		return true
	}
	for {
		cur := b.used.Load()
		if cur+bytes > b.limit {
			return false
		}
		if b.used.CompareAndSwap(cur, cur+bytes) {
			return true
		}
	}
}

// Release returns bytes to the budget.
func (b *MemoryBudget) Release(bytes int64) {
	if b == nil || bytes <= 0 {
		return
	}
	b.used.Add(-bytes)
}

// Used returns the bytes currently reserved.
func (b *MemoryBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Fork returns an independent budget of the same size pricing against
// the same tier, with spill stats still folding into the parent's
// aggregate — the distributed analogue of exec.Placer.Fork: each shard
// models its own host's memory, but the query reports one spill total.
func (b *MemoryBudget) Fork() *MemoryBudget {
	if b == nil {
		return nil
	}
	return &MemoryBudget{limit: b.limit, dev: b.dev, agg: b.agg}
}

// Stats snapshots the query-wide spill totals.
func (b *MemoryBudget) Stats() SpillStats {
	if b == nil {
		return SpillStats{}
	}
	return b.agg.snapshot()
}

// String describes the budget for plan steps.
func (b *MemoryBudget) String() string {
	if b == nil {
		return "unbudgeted"
	}
	return fmt.Sprintf("budget %d bytes, tier %s", b.limit, b.dev.Tier())
}

// spillMeter is one operator's view of the spill device: it prices and
// records this operator's traffic (for OpStats.Spill) and forwards every
// charge to the budget's query-wide aggregate. All methods are nil-safe
// so unbudgeted operators pay nothing, not even a branch in their stats.
type spillMeter struct {
	b  *MemoryBudget
	mu sync.Mutex
	st SpillStats
}

func newSpillMeter(b *MemoryBudget) *spillMeter {
	if b == nil {
		return nil
	}
	return &spillMeter{b: b, st: SpillStats{Tier: b.dev.Tier()}}
}

// chargeWrite prices writing bytes out to the tier.
func (m *spillMeter) chargeWrite(bytes int64) {
	if m == nil || bytes <= 0 {
		return
	}
	fb := float64(bytes)
	d := SpillStats{
		SpilledBytes: bytes,
		WriteSeconds: m.b.dev.WriteSeconds(fb),
		EnergyJ:      m.b.dev.AccessJoules(fb),
	}
	m.record(d)
}

// chargeRead prices reading spilled bytes back.
func (m *spillMeter) chargeRead(bytes int64) {
	if m == nil || bytes <= 0 {
		return
	}
	fb := float64(bytes)
	d := SpillStats{
		ReadSeconds: m.b.dev.ReadSeconds(fb),
		EnergyJ:     m.b.dev.AccessJoules(fb),
	}
	m.record(d)
}

// notePartition records one evicted partition at the given recursion
// depth (1 = first grace pass).
func (m *spillMeter) notePartition(depth int) {
	if m == nil {
		return
	}
	m.record(SpillStats{Partitions: 1, MaxDepth: depth})
}

func (m *spillMeter) record(d SpillStats) {
	m.mu.Lock()
	m.st.add(d)
	m.mu.Unlock()
	m.b.agg.add(d)
}

// opSpill returns the operator-local stats for OpStats.Spill, or nil
// when nothing spilled (so unbudgeted stats stay bit-identical).
func (m *spillMeter) opSpill() *SpillStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.st.Active() {
		return nil
	}
	st := m.st
	return &st
}
