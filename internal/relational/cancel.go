package relational

import (
	"sync"
	"sync/atomic"
)

// cancelGroup is the abort flag shared by the sibling partitions of one
// parallel operator (drainParallel, the streaming Exchange, BatchGroupAgg
// partials, joinCore build). The first partition to fail records its error
// and trips the flag; siblings poll it at batch boundaries and stop early
// instead of draining their full input.
type cancelGroup struct {
	tripped atomic.Bool
	mu      sync.Mutex
	err     error
}

// abort records the first error and trips the flag. A nil error trips the
// flag without recording (cooperative shutdown).
func (g *cancelGroup) abort(err error) {
	if err != nil {
		g.mu.Lock()
		if g.err == nil {
			g.err = err
		}
		g.mu.Unlock()
	}
	g.tripped.Store(true)
}

// stop reports whether siblings should cease at the next batch boundary.
func (g *cancelGroup) stop() bool { return g.tripped.Load() }

// Err returns the recorded error, if any.
func (g *cancelGroup) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
