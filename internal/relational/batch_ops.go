package relational

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/kernels"
)

// ColRange is a planner-recognized inclusive range predicate lo <= col <=
// hi over an Int column — the shape BatchFilter lowers onto the
// vectorizable kernels.FilterRangeIncl / RefineRangeIncl primitives
// instead of evaluating a compiled expression per row.
type ColRange struct {
	Col    int
	Lo, Hi int64
	HasLo  bool
	HasHi  bool
}

func (cr ColRange) bounds() (lo, hi int64) {
	lo, hi = int64(-1)<<63, int64(^uint64(0)>>1)
	if cr.HasLo {
		lo = cr.Lo
	}
	if cr.HasHi {
		hi = cr.Hi
	}
	return lo, hi
}

// BatchFilter passes rows satisfying every range (kernel fast path) and
// the residual predicate (generic path). Either may be empty/nil.
type BatchFilter struct {
	child  BatchOp
	ranges []ColRange
	pred   Predicate
	stat   *opCount
	disp   *exec.Dispatcher
}

// NewBatchFilter returns a filter over child. ranges are applied first
// via the scan kernels; pred (may be nil) handles whatever the planner
// could not lower to a range.
func NewBatchFilter(child BatchOp, ranges []ColRange, pred Predicate) *BatchFilter {
	return &BatchFilter{child: child, ranges: ranges, pred: pred, stat: &opCount{}}
}

// Schema implements BatchOp.
func (f *BatchFilter) Schema() Schema { return f.child.Schema() }

// Place routes the filter's morsels through a heterogeneous device
// dispatcher (nil keeps the homogeneous engine). The dispatcher is
// shared by every partition, so its selectivity feedback and modeled
// costs aggregate across the whole operator.
func (f *BatchFilter) Place(d *exec.Dispatcher) { f.disp = d }

// NextBatch implements BatchOp.
func (f *BatchFilter) NextBatch() (*Batch, error) {
	for {
		b, err := f.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		// The selection + gather is the filter kernel: one dispatched
		// morsel, whose observed keep fraction feeds the placement cost
		// model. The reference implementation always executes — devices
		// model cost, not semantics.
		var out *Batch
		work := func() (int, error) {
			sel, all, err := f.selection(b)
			if err != nil {
				return 0, err
			}
			if all {
				out = b
			} else if len(sel) > 0 {
				out = gatherBatch(b, sel)
			}
			if out == nil {
				return 0, nil
			}
			return out.Len(), nil
		}
		if err := f.disp.RunFilter(b.Len(), work); err != nil {
			return nil, err
		}
		if out == nil {
			continue
		}
		f.stat.add(out.Len())
		return out, nil
	}
}

// selection computes the passing row indices; all=true short-circuits the
// gather when every row passes.
func (f *BatchFilter) selection(b *Batch) (sel []int32, all bool, err error) {
	for i, cr := range f.ranges {
		lo, hi := cr.bounds()
		col := b.Cols[cr.Col].Ints
		if i == 0 {
			sel = kernels.FilterRangeIncl(col, lo, hi)
		} else {
			sel = kernels.RefineRangeIncl(col, sel, lo, hi)
		}
		if len(sel) == 0 {
			return nil, false, nil
		}
	}
	if f.pred == nil {
		// A range that every row passed is a zero-copy pass-through.
		return sel, len(f.ranges) == 0 || len(sel) == b.Len(), nil
	}
	var buf Row
	if sel == nil {
		n := b.Len()
		sel = make([]int32, 0, n)
		for r := 0; r < n; r++ {
			buf = b.Row(r, buf)
			ok, err := f.pred(buf)
			if err != nil {
				return nil, false, err
			}
			if ok {
				sel = append(sel, int32(r))
			}
		}
		return sel, len(sel) == b.Len(), nil
	}
	kept := sel[:0]
	for _, r := range sel {
		buf = b.Row(int(r), buf)
		ok, err := f.pred(buf)
		if err != nil {
			return nil, false, err
		}
		if ok {
			kept = append(kept, r)
		}
	}
	return kept, false, nil
}

// Stats implements BatchOp.
func (f *BatchFilter) Stats() OpStats { return heteroStats(f.stat, f.disp) }

// Partition implements Partitioner: the filter is stateless, so each
// child partition gets its own clone sharing the counter (and the
// device dispatcher, whose feedback loop spans all partitions).
func (f *BatchFilter) Partition(n int, static bool) []BatchOp {
	p, ok := f.child.(Partitioner)
	if !ok {
		return nil
	}
	parts := p.Partition(n, static)
	out := make([]BatchOp, len(parts))
	for i, cp := range parts {
		out[i] = &BatchFilter{child: cp, ranges: f.ranges, pred: f.pred, stat: f.stat, disp: f.disp}
	}
	return out
}

// heteroStats merges an operator's row counter with its dispatcher's
// modeled-cost snapshot.
func heteroStats(stat *opCount, disp *exec.Dispatcher) OpStats {
	st := stat.stats()
	if disp != nil {
		c := disp.Cost()
		st.Hetero = &c
	}
	return st
}

// gatherBatch materializes the selected rows of b, delegating Int and
// Float columns to the gather kernels.
func gatherBatch(b *Batch, sel []int32) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]Vector, len(b.Cols)), Seq: b.Seq, n: len(sel)}
	for c := range b.Cols {
		src := &b.Cols[c]
		v := Vector{T: src.T}
		switch src.T {
		case Int:
			v.Ints = kernels.Gather(src.Ints, sel)
		case Float:
			v.Floats = kernels.GatherFloat64(src.Floats, sel)
		default:
			v.Strs = make([]string, len(sel))
			for i, j := range sel {
				v.Strs[i] = src.Strs[j]
			}
		}
		out.Cols[c] = v
	}
	return out
}

// ProjExpr is one output column of a batch projection: either a
// pass-through of child column Col (vector shared, no per-row work) or a
// compiled row expression.
type ProjExpr struct {
	Col int // >= 0: pass child column through
	Fn  Projector
}

// Pick returns the pass-through projection of column idx.
func Pick(idx int) ProjExpr { return ProjExpr{Col: idx} }

// Expr returns a computed projection.
func Expr(fn Projector) ProjExpr { return ProjExpr{Col: -1, Fn: fn} }

// BatchProject computes derived columns batch-at-a-time.
type BatchProject struct {
	child  BatchOp
	schema Schema
	exprs  []ProjExpr
	stat   *opCount
	disp   *exec.Dispatcher
}

// NewBatchProject returns a projection producing schema via exprs.
func NewBatchProject(child BatchOp, schema Schema, exprs []ProjExpr) (*BatchProject, error) {
	if len(schema) != len(exprs) {
		return nil, fmt.Errorf("relational: batch project: %d columns but %d expressions", len(schema), len(exprs))
	}
	return &BatchProject{child: child, schema: schema, exprs: exprs, stat: &opCount{}}, nil
}

// Schema implements BatchOp.
func (p *BatchProject) Schema() Schema { return p.schema }

// Place routes the projection's computed-expression morsels through a
// heterogeneous device dispatcher (nil keeps the homogeneous engine).
// Pure pass-through projections do no per-row work and should not be
// placed.
func (p *BatchProject) Place(d *exec.Dispatcher) { p.disp = d }

// ExprCount returns the number of computed (non-pass-through) output
// columns — the width of the projection kernel a placer prices.
func (p *BatchProject) ExprCount() int {
	n := 0
	for _, e := range p.exprs {
		if e.Col < 0 {
			n++
		}
	}
	return n
}

// NextBatch implements BatchOp.
func (p *BatchProject) NextBatch() (*Batch, error) {
	b, err := p.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	n := b.Len()
	out := &Batch{Schema: p.schema, Cols: make([]Vector, len(p.exprs)), Seq: b.Seq, n: n}
	work := func() error {
		var buf Row
		for i, e := range p.exprs {
			if e.Col >= 0 {
				out.Cols[i] = b.Cols[e.Col]
				continue
			}
			v := NewVector(p.schema[i].Type, n)
			for r := 0; r < n; r++ {
				buf = b.Row(r, buf)
				val, err := e.Fn(buf)
				if err != nil {
					return err
				}
				v.Append(val)
			}
			out.Cols[i] = v
		}
		return nil
	}
	if err := p.disp.Run(n, work); err != nil {
		return nil, err
	}
	p.stat.add(n)
	return out, nil
}

// Stats implements BatchOp.
func (p *BatchProject) Stats() OpStats { return heteroStats(p.stat, p.disp) }

// Partition implements Partitioner.
func (p *BatchProject) Partition(n int, static bool) []BatchOp {
	pr, ok := p.child.(Partitioner)
	if !ok {
		return nil
	}
	parts := pr.Partition(n, static)
	out := make([]BatchOp, len(parts))
	for i, cp := range parts {
		out[i] = &BatchProject{child: cp, schema: p.schema, exprs: p.exprs, stat: p.stat, disp: p.disp}
	}
	return out
}

// BatchLimit passes at most n rows. It consumes its child serially —
// batch streams arrive in Seq (= serial) order — and stops pulling once
// the limit is reached, so LIMIT k touches only ~k rows of input.
type BatchLimit struct {
	child BatchOp
	n     int
	stat  *opCount
}

// NewBatchLimit returns a limit of n rows (n < 0 means unlimited).
func NewBatchLimit(child BatchOp, n int) *BatchLimit {
	return &BatchLimit{child: child, n: n, stat: &opCount{}}
}

// Schema implements BatchOp.
func (l *BatchLimit) Schema() Schema { return l.child.Schema() }

// NextBatch implements BatchOp.
func (l *BatchLimit) NextBatch() (*Batch, error) {
	if l.n >= 0 && l.stat.stats().RowsOut >= l.n {
		return nil, nil
	}
	b, err := l.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if l.n >= 0 {
		remaining := l.n - l.stat.stats().RowsOut
		if b.Len() > remaining {
			trimmed := &Batch{Schema: b.Schema, Cols: make([]Vector, len(b.Cols)), Seq: b.Seq, n: remaining}
			for c := range b.Cols {
				trimmed.Cols[c] = b.Cols[c].slice(0, remaining)
			}
			b = trimmed
		}
	}
	l.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (l *BatchLimit) Stats() OpStats { return l.stat.stats() }
