package relational

import (
	"testing"
)

// TestPrebuiltJoinParity: a join probing an incrementally appended
// HashBuild produces row-for-row what the streaming build produces, at
// several append granularities.
func TestPrebuiltJoinParity(t *testing.T) {
	dim := randRel(8, 900)
	fact := randRel(7, 3*BatchSize+57)
	want := collectRows(t, RowsOf(mustJoin(t, NewBatchScan(dim), NewBatchScan(fact), 0, 0, nil)))
	for _, chunk := range []int{1, 37, 256, 10000} {
		pre, err := NewHashBuild(dim.Schema, 0)
		if err != nil {
			t.Fatal(err)
		}
		for start := 0; start < len(dim.Rows); start += chunk {
			end := start + chunk
			if end > len(dim.Rows) {
				end = len(dim.Rows)
			}
			pre.Append(dim.Rows[start:end])
		}
		jn, err := NewBatchHashJoinPrebuilt(pre, NewBatchScan(fact), 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := collectRows(t, RowsOf(jn))
		requireSameRows(t, want, got)
	}
}

// TestPrebuiltJoinSharedAcrossProbes: one sealed build table probed by
// several joins concurrently via Exchange partitions — the pipelined
// broadcast case.
func TestPrebuiltJoinSharedAcrossProbes(t *testing.T) {
	dim := randRel(8, 400)
	fact := randRel(7, 2*BatchSize)
	pre, err := NewHashBuild(dim.Schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	pre.Append(dim.Rows)
	want := collectRows(t, RowsOf(mustJoin(t, NewBatchScan(dim), NewBatchScan(fact), 0, 0, nil)))
	done := make(chan []Row, 3)
	for i := 0; i < 3; i++ {
		go func() {
			jn, err := NewBatchHashJoinPrebuilt(pre, NewBatchScan(fact), 0, 4)
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			rel, err := Collect(RowsOf(NewExchange(jn, 4)), "out")
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			done <- rel.Rows
		}()
	}
	for i := 0; i < 3; i++ {
		if rows := <-done; rows != nil {
			requireSameRows(t, want, rows)
		}
	}
}

// TestPrebuiltJoinBudgetGrace: a prebuilt table that overflows the
// budget grace-partitions exactly like the streaming build, with
// identical rows and a recorded spill.
func TestPrebuiltJoinBudgetGrace(t *testing.T) {
	dim := randRel(8, 900)
	fact := randRel(7, 3*BatchSize)
	want := collectRows(t, RowsOf(mustJoin(t, NewBatchScan(dim), NewBatchScan(fact), 0, 0, nil)))
	pre, err := NewHashBuild(dim.Schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	pre.Append(dim.Rows)
	jn, err := NewBatchHashJoinPrebuilt(pre, NewBatchScan(fact), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	jn.SetBudget(tinyBudget(256))
	got := collectRows(t, RowsOf(jn))
	requireSameRows(t, want, got)
	if sp := jn.Stats().Spill; sp == nil || sp.SpilledBytes <= 0 {
		t.Fatalf("budgeted prebuilt join did not spill: %+v", sp)
	}
}

// TestPartialAggSplitChunks: splitting a partial and folding the chunks
// back in order reconstructs it exactly — same emission rows, same ord,
// and chunk encoded bytes summing to the whole.
func TestPartialAggSplitChunks(t *testing.T) {
	rel := randRel(5, 3*BatchSize+11)
	aggs := []AggSpec{{Fn: CountAgg, Col: 0}, {Fn: SumAgg, Col: 2}, {Fn: MinAgg, Col: 3}}
	build := func() *PartialAgg {
		p := NewPartialAgg([]int{1}, aggs)
		op := NewBatchScan(rel)
		for {
			b, err := op.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				return p
			}
			if err := p.ObserveBatch(b, -1); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref := build()
	schema := Schema{rel.Schema[1], {Name: "c", Type: Int}, {Name: "s", Type: Int}, {Name: "m", Type: Int}}
	want := ref.EmitRows(schema, true)
	for _, maxGroups := range []int{1, 3, 1000} {
		p := build()
		wantBytes := p.EncodedBytes()
		subs := p.SplitChunks(maxGroups)
		if maxGroups >= p.Groups() && len(subs) != 1 {
			t.Fatalf("maxGroups=%d: %d subs", maxGroups, len(subs))
		}
		gotBytes, gotOrd := 0.0, int64(0)
		for _, s := range subs {
			gotBytes += s.EncodedBytes()
			gotOrd += s.ord
		}
		if gotBytes != wantBytes {
			t.Fatalf("maxGroups=%d: chunk bytes %v want %v", maxGroups, gotBytes, wantBytes)
		}
		if gotOrd != ref.Rows() {
			t.Fatalf("maxGroups=%d: ord %d want %d", maxGroups, gotOrd, ref.Rows())
		}
		acc := NewPartialAgg([]int{1}, aggs)
		for _, s := range subs {
			acc.MergeFrom(s)
		}
		got := acc.EmitRows(schema, true)
		requireSameRows(t, want, got)
	}
}
