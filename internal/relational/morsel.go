package relational

import (
	"sort"
	"sync/atomic"
)

// morselBatch windows one morsel (rows [m*BatchSize, ...)) of the
// relation's columnar image, tagged with the morsel index. The vectors
// share the cached arrays — no copying.
func morselBatch(rel *Relation, cols []Vector, m int64) *Batch {
	lo := int(m) * BatchSize
	hi := lo + BatchSize
	if hi > len(rel.Rows) {
		hi = len(rel.Rows)
	}
	b := &Batch{Schema: rel.Schema, Cols: make([]Vector, len(cols)), Seq: m, n: hi - lo}
	for c := range cols {
		b.Cols[c] = cols[c].slice(lo, hi)
	}
	return b
}

func morselCount(rel *Relation) int64 {
	return int64((len(rel.Rows) + BatchSize - 1) / BatchSize)
}

// BatchScan streams a materialized relation as columnar batches, one per
// morsel. It is the leaf the morsel dispatcher fans out: Partition splits
// the morsel range across workers.
type BatchScan struct {
	rel  *Relation
	cols []Vector
	next int64
	stat *opCount
}

// NewBatchScan returns a batch scan over rel.
func NewBatchScan(rel *Relation) *BatchScan {
	return &BatchScan{rel: rel, cols: rel.Columnar(), stat: &opCount{}}
}

// Schema implements BatchOp.
func (s *BatchScan) Schema() Schema { return s.rel.Schema }

// NextBatch implements BatchOp.
func (s *BatchScan) NextBatch() (*Batch, error) {
	if s.next >= morselCount(s.rel) {
		return nil, nil
	}
	b := morselBatch(s.rel, s.cols, s.next)
	s.next++
	s.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (s *BatchScan) Stats() OpStats { return s.stat.stats() }

// Partition implements Partitioner.
func (s *BatchScan) Partition(n int, static bool) []BatchOp {
	total := morselCount(s.rel)
	if n > int(total) {
		n = int(total)
	}
	if n < 1 {
		n = 1
	}
	parts := make([]BatchOp, 0, n)
	if static {
		// Contiguous morsel ranges: part i's batches precede part i+1's.
		for i := 0; i < n; i++ {
			from := total * int64(i) / int64(n)
			to := total * int64(i+1) / int64(n)
			parts = append(parts, &scanPart{rel: s.rel, cols: s.cols, cur: from, end: to, stat: s.stat})
		}
		return parts
	}
	// Dynamic morsel queue: workers steal the next morsel as they finish,
	// balancing selective filters; Seq tags let Exchange restore order.
	queue := &atomic.Int64{}
	for i := 0; i < n; i++ {
		parts = append(parts, &scanPart{rel: s.rel, cols: s.cols, queue: queue, end: total, stat: s.stat})
	}
	return parts
}

// scanPart is one worker's share of a partitioned scan: either a static
// [cur, end) morsel range, or a dynamic shared queue.
type scanPart struct {
	rel   *Relation
	cols  []Vector
	cur   int64
	end   int64
	queue *atomic.Int64 // non-nil for dynamic dispatch
	stat  *opCount
}

// Schema implements BatchOp.
func (p *scanPart) Schema() Schema { return p.rel.Schema }

// NextBatch implements BatchOp.
func (p *scanPart) NextBatch() (*Batch, error) {
	var m int64
	if p.queue != nil {
		m = p.queue.Add(1) - 1
	} else {
		m = p.cur
		p.cur++
	}
	if m >= p.end {
		return nil, nil
	}
	b := morselBatch(p.rel, p.cols, m)
	p.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (p *scanPart) Stats() OpStats { return p.stat.stats() }

// Exchange is the morsel dispatcher's merge point: it partitions its
// child across workers (dynamic queue), drains them in parallel, and
// re-emits the batches sorted by Seq — so downstream consumers observe
// exactly the serial row order regardless of scheduling.
type Exchange struct {
	child   BatchOp
	workers int
	out     []*Batch
	pos     int
	started bool
}

// NewExchange parallelizes child across workers (0 = NumCPU). When child
// cannot partition, or a single worker is requested, child is returned
// unwrapped.
func NewExchange(child BatchOp, workers int) BatchOp {
	w := EffectiveWorkers(workers)
	if _, ok := child.(Partitioner); !ok || w <= 1 {
		return child
	}
	return &Exchange{child: child, workers: w}
}

// Schema implements BatchOp.
func (e *Exchange) Schema() Schema { return e.child.Schema() }

// NextBatch implements BatchOp.
func (e *Exchange) NextBatch() (*Batch, error) {
	if !e.started {
		e.started = true
		parts := partitionOrSelf(e.child, e.workers, false)
		outs, err := drainParallel(parts)
		if err != nil {
			return nil, err
		}
		for _, batches := range outs {
			e.out = append(e.out, batches...)
		}
		sort.Slice(e.out, func(i, j int) bool { return e.out[i].Seq < e.out[j].Seq })
	}
	if e.pos >= len(e.out) {
		e.out = nil
		return nil, nil
	}
	b := e.out[e.pos]
	e.out[e.pos] = nil // release consumed batches as the consumer advances
	e.pos++
	return b, nil
}

// Stats implements BatchOp.
func (e *Exchange) Stats() OpStats { return e.child.Stats() }
