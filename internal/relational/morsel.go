package relational

import "sync/atomic"

// morselBatch windows one morsel (rows [m*BatchSize, ...)) of the
// relation's columnar image, tagged with the morsel index. The vectors
// share the cached arrays — no copying.
func morselBatch(rel *Relation, cols []Vector, m int64) *Batch {
	lo := int(m) * BatchSize
	hi := lo + BatchSize
	if hi > len(rel.Rows) {
		hi = len(rel.Rows)
	}
	b := &Batch{Schema: rel.Schema, Cols: make([]Vector, len(cols)), Seq: m, n: hi - lo}
	for c := range cols {
		b.Cols[c] = cols[c].slice(lo, hi)
	}
	return b
}

func morselCount(rel *Relation) int64 {
	return int64((len(rel.Rows) + BatchSize - 1) / BatchSize)
}

// BatchScan streams a materialized relation as columnar batches, one per
// morsel. It is the leaf the morsel dispatcher fans out: Partition splits
// the morsel range across workers.
type BatchScan struct {
	rel  *Relation
	cols []Vector
	next int64
	stat *opCount
}

// NewBatchScan returns a batch scan over rel.
func NewBatchScan(rel *Relation) *BatchScan {
	return &BatchScan{rel: rel, cols: rel.Columnar(), stat: &opCount{}}
}

// Schema implements BatchOp.
func (s *BatchScan) Schema() Schema { return s.rel.Schema }

// NextBatch implements BatchOp.
func (s *BatchScan) NextBatch() (*Batch, error) {
	if s.next >= morselCount(s.rel) {
		return nil, nil
	}
	b := morselBatch(s.rel, s.cols, s.next)
	s.next++
	s.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (s *BatchScan) Stats() OpStats { return s.stat.stats() }

// Partition implements Partitioner.
func (s *BatchScan) Partition(n int, static bool) []BatchOp {
	total := morselCount(s.rel)
	if n > int(total) {
		n = int(total)
	}
	if n < 1 {
		n = 1
	}
	parts := make([]BatchOp, 0, n)
	if static {
		// Contiguous morsel ranges: part i's batches precede part i+1's.
		for i := 0; i < n; i++ {
			from := total * int64(i) / int64(n)
			to := total * int64(i+1) / int64(n)
			parts = append(parts, &scanPart{rel: s.rel, cols: s.cols, cur: from, end: to, stat: s.stat})
		}
		return parts
	}
	// Dynamic morsel queue: workers steal the next morsel as they finish,
	// balancing selective filters; Seq tags let Exchange restore order.
	queue := &atomic.Int64{}
	for i := 0; i < n; i++ {
		parts = append(parts, &scanPart{rel: s.rel, cols: s.cols, queue: queue, end: total, stat: s.stat})
	}
	return parts
}

// scanPart is one worker's share of a partitioned scan: either a static
// [cur, end) morsel range, or a dynamic shared queue.
type scanPart struct {
	rel   *Relation
	cols  []Vector
	cur   int64
	end   int64
	queue *atomic.Int64 // non-nil for dynamic dispatch
	stat  *opCount
}

// Schema implements BatchOp.
func (p *scanPart) Schema() Schema { return p.rel.Schema }

// NextBatch implements BatchOp.
func (p *scanPart) NextBatch() (*Batch, error) {
	var m int64
	if p.queue != nil {
		m = p.queue.Add(1) - 1
	} else {
		m = p.cur
		p.cur++
	}
	if m >= p.end {
		return nil, nil
	}
	b := morselBatch(p.rel, p.cols, m)
	p.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (p *scanPart) Stats() OpStats { return p.stat.stats() }

// exchangeDepth bounds the batches buffered per worker stream. Workers
// block once their channel fills, so peak buffered memory is
// workers × (exchangeDepth+1) batches instead of the full result set.
const exchangeDepth = 4

// Exchange is the morsel dispatcher's merge point: it partitions its
// child across workers (dynamic queue) and streams their outputs through
// a k-way merge on Seq tags — each worker's stream is Seq-ascending
// (morsels are claimed in increasing order and batch operators preserve
// tags), so emitting the smallest head reproduces exactly the serial row
// order regardless of scheduling, without materializing the result.
// Workers share a cancelGroup: one failing partition stops its siblings
// at their next batch boundary.
type Exchange struct {
	child   BatchOp
	workers int

	started bool
	chans   []chan *Batch
	heads   []*Batch
	cg      *cancelGroup
}

// NewExchange parallelizes child across workers (0 = NumCPU). When child
// cannot partition, or a single worker is requested, child is returned
// unwrapped. Once pulled, the returned operator must be drained to end
// of stream (or error): the merge is streaming, so abandoning it midway
// strands worker goroutines blocked on their bounded channels. Every
// in-tree consumer (Collect, the fragment runners, the LIMIT placement
// below the dispatcher) drains fully.
func NewExchange(child BatchOp, workers int) BatchOp {
	w := EffectiveWorkers(workers)
	if _, ok := child.(Partitioner); !ok || w <= 1 {
		return child
	}
	return &Exchange{child: child, workers: w}
}

// Schema implements BatchOp.
func (e *Exchange) Schema() Schema { return e.child.Schema() }

func (e *Exchange) start() {
	parts := partitionOrSelf(e.child, e.workers, false)
	e.cg = &cancelGroup{}
	e.chans = make([]chan *Batch, len(parts))
	for i, part := range parts {
		ch := make(chan *Batch, exchangeDepth)
		e.chans[i] = ch
		go func(part BatchOp, ch chan *Batch) {
			defer close(ch)
			for !e.cg.stop() {
				b, err := part.NextBatch()
				if err != nil {
					e.cg.abort(err)
					return
				}
				if b == nil {
					return
				}
				ch <- b
			}
		}(part, ch)
	}
	e.heads = make([]*Batch, len(parts))
	for i := range e.chans {
		e.heads[i] = <-e.chans[i] // nil once the worker closes
	}
}

// drain unblocks any workers still sending after an abort.
func (e *Exchange) drain() {
	for _, ch := range e.chans {
		for range ch { //nolint:revive // discard until closed
		}
	}
	e.heads = nil
}

// NextBatch implements BatchOp.
func (e *Exchange) NextBatch() (*Batch, error) {
	if !e.started {
		e.started = true
		e.start()
	}
	if e.cg.stop() {
		e.drain()
		return nil, e.cg.Err()
	}
	best := -1
	for i, h := range e.heads {
		if h == nil {
			continue
		}
		if best < 0 || h.Seq < e.heads[best].Seq {
			best = i
		}
	}
	if best < 0 {
		// Every worker stream closed; surface a late error if one raced in.
		return nil, e.cg.Err()
	}
	b := e.heads[best]
	e.heads[best] = <-e.chans[best]
	return b, nil
}

// Stats implements BatchOp.
func (e *Exchange) Stats() OpStats { return e.child.Stats() }
