package relational

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchSize is the number of rows per columnar chunk — small enough to
// stay cache-resident, large enough to amortize per-batch dispatch. It is
// also the morsel granularity of the parallel scan.
const BatchSize = 1024

// Vector is one typed column of a batch. Exactly one of the payload
// slices is populated, matching T. Vectors are immutable once a batch has
// been emitted, so downstream operators may share them without copying.
type Vector struct {
	T      Type
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewVector returns an empty vector of type t with the given capacity.
func NewVector(t Type, capacity int) Vector {
	v := Vector{T: t}
	switch t {
	case Int:
		v.Ints = make([]int64, 0, capacity)
	case Float:
		v.Floats = make([]float64, 0, capacity)
	default:
		v.Strs = make([]string, 0, capacity)
	}
	return v
}

// Len returns the number of values.
func (v *Vector) Len() int {
	switch v.T {
	case Int:
		return len(v.Ints)
	case Float:
		return len(v.Floats)
	default:
		return len(v.Strs)
	}
}

// Append adds one value, coercing Int into a Float vector (the only legal
// cross-type combination the SQL layer produces).
func (v *Vector) Append(val Value) {
	switch v.T {
	case Int:
		v.Ints = append(v.Ints, val.I)
	case Float:
		if val.T == Int {
			v.Floats = append(v.Floats, float64(val.I))
		} else {
			v.Floats = append(v.Floats, val.F)
		}
	default:
		v.Strs = append(v.Strs, val.S)
	}
}

// Value reads element i back as a Value.
func (v *Vector) Value(i int) Value {
	switch v.T {
	case Int:
		return IntV(v.Ints[i])
	case Float:
		return FloatV(v.Floats[i])
	default:
		return StringV(v.Strs[i])
	}
}

// slice returns the [from, to) window sharing the backing arrays.
func (v *Vector) slice(from, to int) Vector {
	out := Vector{T: v.T}
	switch v.T {
	case Int:
		out.Ints = v.Ints[from:to]
	case Float:
		out.Floats = v.Floats[from:to]
	default:
		out.Strs = v.Strs[from:to]
	}
	return out
}

// Batch is a columnar chunk of rows flowing through the batch engine.
// Seq is a global order tag: all rows of batch s precede all rows of
// batch s+1 in the equivalent serial (row-at-a-time) execution, which is
// what lets the morsel dispatcher reassemble deterministic output.
type Batch struct {
	Schema Schema
	Cols   []Vector
	Seq    int64
	// n is the explicit row count: column vectors must all have n
	// values, and a zero-column batch (e.g. the pre-aggregation
	// projection of a bare COUNT(*)) still carries its row count.
	n int
}

// NewBatch returns an empty batch with per-column capacity.
func NewBatch(schema Schema, capacity int) *Batch {
	b := &Batch{Schema: schema, Cols: make([]Vector, len(schema))}
	for i, c := range schema {
		b.Cols[i] = NewVector(c.Type, capacity)
	}
	return b
}

// Len returns the row count.
func (b *Batch) Len() int { return b.n }

// AppendRow adds one row across all columns.
func (b *Batch) AppendRow(r Row) {
	for i := range b.Cols {
		b.Cols[i].Append(r[i])
	}
	b.n++
}

// Row materializes row i into buf (grown as needed) and returns it.
func (b *Batch) Row(i int, buf Row) Row {
	if cap(buf) < len(b.Cols) {
		buf = make(Row, len(b.Cols))
	}
	buf = buf[:len(b.Cols)]
	for c := range b.Cols {
		buf[c] = b.Cols[c].Value(i)
	}
	return buf
}

// BatchOp is the batch-at-a-time dual of Op. NextBatch returns (nil, nil)
// at end of stream; emitted batches are never empty. Like Op, a BatchOp
// tree is single-use.
type BatchOp interface {
	// Schema describes the rows the batches carry.
	Schema() Schema
	// NextBatch returns the next non-empty batch, or (nil, nil) at end.
	NextBatch() (*Batch, error)
	// Stats reports rows produced so far (summed across partitions).
	Stats() OpStats
}

// Partitioner is implemented by batch operators that can split into
// independent streams for the morsel dispatcher. static requests
// contiguous morsel ranges (stream i's batches all precede stream i+1's,
// so merging in stream order reproduces serial order — required by the
// pipeline breakers); non-static streams share a dynamic morsel queue for
// load balance, relying on Seq tags for reassembly.
type Partitioner interface {
	BatchOp
	// Partition splits the operator into at most n streams covering the
	// same rows. The receiver must not be consumed afterwards.
	Partition(n int, static bool) []BatchOp
}

// opCount is a race-safe row counter shared by an operator's partitions.
type opCount struct{ n atomic.Int64 }

func (c *opCount) add(n int)      { c.n.Add(int64(n)) }
func (c *opCount) stats() OpStats { return OpStats{RowsOut: int(c.n.Load())} }

// EffectiveWorkers resolves a worker-count setting: n if positive, else
// runtime.NumCPU().
func EffectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// drainParallel runs every part to completion on its own goroutine and
// returns the batches per part, in the order each part emitted them. The
// parts share a cancelGroup: the first failing partition trips it and its
// siblings stop at their next batch boundary instead of draining the full
// table; that first error is returned.
func drainParallel(parts []BatchOp) ([][]*Batch, error) {
	outs := make([][]*Batch, len(parts))
	cg := &cancelGroup{}
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part BatchOp) {
			defer wg.Done()
			for !cg.stop() {
				b, err := part.NextBatch()
				if err != nil {
					cg.abort(err)
					return
				}
				if b == nil {
					return
				}
				outs[i] = append(outs[i], b)
			}
		}(i, part)
	}
	wg.Wait()
	if err := cg.Err(); err != nil {
		return nil, err
	}
	return outs, nil
}

// partitionOrSelf splits op into up to n streams when it supports it,
// falling back to the single serial stream.
func partitionOrSelf(op BatchOp, n int, static bool) []BatchOp {
	if p, ok := op.(Partitioner); ok && n > 1 {
		if parts := p.Partition(n, static); len(parts) > 0 {
			return parts
		}
	}
	return []BatchOp{op}
}

// RowsOf adapts a batch operator to the row-at-a-time Op interface so
// batch plans plug into Collect and the row-based tooling. Stats pass
// through to the underlying batch operator.
func RowsOf(op BatchOp) Op { return &rowsAdapter{op: op} }

type rowsAdapter struct {
	op  BatchOp
	b   *Batch
	pos int
}

// Schema implements Op.
func (a *rowsAdapter) Schema() Schema { return a.op.Schema() }

// Next implements Op.
func (a *rowsAdapter) Next() (Row, bool, error) {
	for a.b == nil || a.pos >= a.b.Len() {
		b, err := a.op.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		a.b, a.pos = b, 0
	}
	r := a.b.Row(a.pos, nil)
	a.pos++
	return r, true, nil
}

// Stats implements Op.
func (a *rowsAdapter) Stats() OpStats { return a.op.Stats() }
