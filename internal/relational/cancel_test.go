package relational

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// cancelProbe builds a Partitioner whose partition 0 fails — but only
// after every sibling has emitted at least one batch, so the error can
// never win the race before the siblings start. Siblings can emit up to
// limit batches each; with cancellation they must stop far earlier.
type cancelProbe struct {
	parts   atomic.Int64
	emitted atomic.Int64
	limit   int
}

func (p *cancelProbe) schema() Schema { return Schema{{Name: "x", Type: Int}} }

type cancelSource struct {
	probe *cancelProbe
}

func (s *cancelSource) Schema() Schema { return s.probe.schema() }
func (s *cancelSource) NextBatch() (*Batch, error) {
	return nil, errors.New("cancelSource must be partitioned")
}
func (s *cancelSource) Stats() OpStats { return OpStats{} }

// Partition implements Partitioner.
func (s *cancelSource) Partition(n int, static bool) []BatchOp {
	s.probe.parts.Store(int64(n))
	parts := make([]BatchOp, n)
	for i := range parts {
		parts[i] = &cancelPart{probe: s.probe, idx: i}
	}
	return parts
}

type cancelPart struct {
	probe *cancelProbe
	idx   int
	sent  int
}

func (c *cancelPart) Schema() Schema { return c.probe.schema() }
func (c *cancelPart) Stats() OpStats { return OpStats{} }
func (c *cancelPart) NextBatch() (*Batch, error) {
	if c.idx == 0 {
		for c.probe.emitted.Load() < c.probe.parts.Load()-1 {
			runtime.Gosched()
		}
		return nil, errors.New("partition zero failed")
	}
	if c.sent >= c.probe.limit {
		return nil, nil
	}
	c.sent++
	c.probe.emitted.Add(1)
	b := NewBatch(c.probe.schema(), 1)
	b.AppendRow(Row{IntV(int64(c.sent))})
	b.Seq = int64(c.idx)*int64(c.probe.limit) + int64(c.sent)
	return b, nil
}

// checkCancelled asserts the error surfaced and the siblings stopped well
// short of a full drain.
func checkCancelled(t *testing.T, probe *cancelProbe, err error) {
	t.Helper()
	if err == nil || !strings.Contains(err.Error(), "partition zero failed") {
		t.Fatalf("expected partition error, got %v", err)
	}
	full := int64(probe.limit) * (probe.parts.Load() - 1)
	if got := probe.emitted.Load(); got >= full/2 {
		t.Fatalf("siblings drained %d of %d batches — cancellation did not propagate", got, full)
	}
}

// TestDrainParallelCancels: one failing partition stops its siblings at
// a batch boundary instead of draining the full table.
func TestDrainParallelCancels(t *testing.T) {
	probe := &cancelProbe{limit: 1 << 17}
	src := &cancelSource{probe: probe}
	_, err := drainParallel(src.Partition(4, false))
	checkCancelled(t, probe, err)
}

// TestExchangeCancels: the streaming Exchange propagates a partition
// error and unblocks every worker.
func TestExchangeCancels(t *testing.T) {
	probe := &cancelProbe{limit: 1 << 17}
	ex := NewExchange(&cancelSource{probe: probe}, 4)
	var err error
	for {
		var b *Batch
		b, err = ex.NextBatch()
		if b == nil || err != nil {
			break
		}
	}
	checkCancelled(t, probe, err)
}

// TestGroupAggCancels: a failing aggregation partition stops siblings.
func TestGroupAggCancels(t *testing.T) {
	probe := &cancelProbe{limit: 1 << 17}
	agg, err := NewBatchGroupAgg(&cancelSource{probe: probe}, nil, []AggSpec{{Fn: CountAgg, Col: -1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = agg.NextBatch()
	checkCancelled(t, probe, err)
}

// TestJoinBuildCancels: a failing build partition stops its siblings.
func TestJoinBuildCancels(t *testing.T) {
	probe := &cancelProbe{limit: 1 << 17}
	empty := NewRelation("probe", probe.schema())
	jn, err := NewBatchHashJoin(&cancelSource{probe: probe}, NewBatchScan(empty), 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = jn.NextBatch()
	checkCancelled(t, probe, err)
}
