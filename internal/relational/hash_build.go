package relational

import "fmt"

// HashBuild is an incrementally constructed hash-join build table: the
// pipelined distributed path appends each repartition/broadcast chunk's
// rows as they land, so the probe-ready table exists the moment the last
// chunk drains instead of being built from scratch afterwards. Appending
// in landed order reproduces the bulk build's insertion order exactly
// (per-key row lists match the serial engine's), which is what keeps
// pipelined join output row-for-row identical to the bulk path.
//
// Append is not safe for concurrent use; once appending is done the
// table is read-only and may be shared by any number of concurrently
// probing joins (NewBatchHashJoinPrebuilt).
type HashBuild struct {
	schema Schema
	keyCol int
	useInt bool
	rows   []Row
	intT   map[int64][]int32
	keyT   map[string][]int32
	bytes  float64
}

// NewHashBuild returns an empty build table keyed on keyCol of schema.
func NewHashBuild(schema Schema, keyCol int) (*HashBuild, error) {
	if keyCol < 0 || keyCol >= len(schema) {
		return nil, fmt.Errorf("relational: hash build key column %d out of range", keyCol)
	}
	h := &HashBuild{schema: schema, keyCol: keyCol, useInt: schema[keyCol].Type == Int}
	if h.useInt {
		h.intT = map[int64][]int32{}
	} else {
		h.keyT = map[string][]int32{}
	}
	return h, nil
}

// Append inserts rows in order. Rows are referenced, not copied — the
// caller must not mutate them afterwards.
func (h *HashBuild) Append(rows []Row) {
	for _, row := range rows {
		idx := int32(len(h.rows))
		h.rows = append(h.rows, row)
		h.bytes += row.EncodedBytes()
		if h.useInt {
			k := row[h.keyCol].I
			h.intT[k] = append(h.intT[k], idx)
		} else {
			k := row[h.keyCol].Key()
			h.keyT[k] = append(h.keyT[k], idx)
		}
	}
}

// Len returns the number of rows inserted.
func (h *HashBuild) Len() int { return len(h.rows) }

// Schema returns the build-side schema.
func (h *HashBuild) Schema() Schema { return h.schema }
