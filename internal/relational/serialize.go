package relational

// Wire-format sizing for the distributed engine: how many bytes a value,
// row, batch or relation occupies when serialized for transfer between
// simulated hosts. The format is never materialized — the flow-level
// network simulator only needs sizes — but the accounting mirrors a
// conventional columnar wire layout: 8 bytes per numeric, length-prefixed
// strings, and a small per-row framing overhead.

// rowOverheadBytes is the per-row framing cost (row length + validity).
const rowOverheadBytes = 2

// EncodedBytes returns the serialized size of one value.
func (v Value) EncodedBytes() float64 {
	if v.T == String {
		return float64(4 + len(v.S))
	}
	return 8
}

// EncodedBytes returns the serialized size of one row.
func (r Row) EncodedBytes() float64 {
	total := float64(rowOverheadBytes)
	for _, v := range r {
		total += v.EncodedBytes()
	}
	return total
}

// EncodedBytes returns the serialized size of the batch, computed
// column-wise so numeric columns cost one multiply.
func (b *Batch) EncodedBytes() float64 {
	total := float64(rowOverheadBytes * b.Len())
	for c := range b.Cols {
		col := &b.Cols[c]
		switch col.T {
		case String:
			for _, s := range col.Strs {
				total += float64(4 + len(s))
			}
		default:
			total += 8 * float64(col.Len())
		}
	}
	return total
}

// EncodedBytes returns the serialized size of the whole relation.
func (r *Relation) EncodedBytes() float64 {
	total := float64(rowOverheadBytes * len(r.Rows))
	for c, col := range r.Schema {
		if col.Type == String {
			for _, row := range r.Rows {
				total += float64(4 + len(row[c].S))
			}
		} else {
			total += 8 * float64(len(r.Rows))
		}
	}
	return total
}
