package relational

import (
	"fmt"
	"sync"
)

// joinCore is the shared state of a batch hash join: the build-side table
// is constructed once (in parallel, from statically partitioned build
// streams merged in partition order, so per-key row lists match the
// serial engine's insertion order) and then probed concurrently by every
// probe partition.
type joinCore struct {
	build              BatchOp
	buildCol, probeCol int
	schema             Schema
	buildWidth         int
	workers            int
	// buildKeyInt records whether the build key column is Int (the fast
	// hash path); kept on the core because prebuilt joins have no build
	// operator to consult. pre, when non-nil, is an externally
	// constructed build table adopted instead of draining a build stream
	// — the pipelined distributed path fills it chunk by chunk.
	buildKeyInt bool
	pre         *HashBuild

	budget *MemoryBudget
	meter  *spillMeter

	once sync.Once
	err  error
	rows []Row              // build rows in serial order
	intT map[int64][]int32  // Int build key fast path
	keyT map[string][]int32 // generic Value.Key() path

	// grace is non-nil when the build table overflowed the budget and
	// was hash-partitioned instead (see grace_join.go).
	grace  *graceNode
	leaves []*graceLeaf
}

// buildPartial is one partition's share of the hash build.
type buildPartial struct {
	rows []Row
	err  error
}

func (c *joinCore) runBuild() {
	if c.pre != nil {
		// Prebuilt table: adopt its rows (serial order by construction)
		// and, when resident, its maps. The budget reservation and grace
		// fallback mirror the streaming path bit-for-bit, so a budgeted
		// pipelined join spills exactly where the bulk join would.
		c.rows = c.pre.rows
		if c.budget != nil && !c.budget.Reserve(int64(c.pre.bytes)) {
			c.buildGrace()
			return
		}
		c.intT, c.keyT = c.pre.intT, c.pre.keyT
		return
	}
	parts := partitionOrSelf(c.build, c.workers, true)
	partials := make([]*buildPartial, len(parts))
	cg := &cancelGroup{}
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part BatchOp) {
			defer wg.Done()
			p := &buildPartial{}
			partials[i] = p
			var buf Row
			// Partitions share the cancelGroup: a failing sibling stops
			// this one at its next batch boundary.
			for !cg.stop() {
				b, err := part.NextBatch()
				if err != nil {
					p.err = err
					cg.abort(err)
					return
				}
				if b == nil {
					return
				}
				n := b.Len()
				for r := 0; r < n; r++ {
					buf = b.Row(r, buf)
					p.rows = append(p.rows, buf.Clone())
				}
			}
		}(i, part)
	}
	wg.Wait()
	if err := cg.Err(); err != nil {
		c.err = err
		return
	}
	total := 0.0
	for _, p := range partials {
		if p.err != nil {
			c.err = p.err
			return
		}
		for _, row := range p.rows {
			c.rows = append(c.rows, row)
			total += row.EncodedBytes()
		}
	}
	// The whole build table reserves against the query budget; when the
	// reservation fails the join goes out of core via grace partitioning
	// instead of assuming the table fits.
	if c.budget != nil && !c.budget.Reserve(int64(total)) {
		c.buildGrace()
		return
	}
	useInt := c.buildKeyInt
	if useInt {
		c.intT = map[int64][]int32{}
	} else {
		c.keyT = map[string][]int32{}
	}
	for idx32, row := range c.rows {
		idx := int32(idx32)
		if useInt {
			k := row[c.buildCol].I
			c.intT[k] = append(c.intT[k], idx)
		} else {
			k := row[c.buildCol].Key()
			c.keyT[k] = append(c.keyT[k], idx)
		}
	}
}

func (c *joinCore) table() error {
	c.once.Do(c.runBuild)
	return c.err
}

// matches returns the build-row indices joining probe batch b's row r.
func (c *joinCore) matches(b *Batch, r int) []int32 {
	pc := &b.Cols[c.probeCol]
	if c.intT != nil {
		if pc.T != Int {
			// Key() encodes the type, so a non-Int probe value can never
			// equal an Int build key under the serial engine either.
			return nil
		}
		return c.intT[pc.Ints[r]]
	}
	return c.keyT[pc.Value(r).Key()]
}

// BatchHashJoin is an inner equi-join over batches. The probe side drives
// the output; Partition exposes the probe side's partitions, all sharing
// the one build table.
type BatchHashJoin struct {
	core  *joinCore
	probe BatchOp
	stat  *opCount

	// Grace-mode output of this probe stream (see graceProbe).
	graceOut  []*Batch
	gracePos  int
	graceDone bool
}

// NewBatchHashJoin joins build.buildCol == probe.probeCol using up to
// workers goroutines for the build phase (0 = NumCPU).
func NewBatchHashJoin(build, probe BatchOp, buildCol, probeCol, workers int) (*BatchHashJoin, error) {
	bs, ps := build.Schema(), probe.Schema()
	if buildCol < 0 || buildCol >= len(bs) {
		return nil, fmt.Errorf("relational: join build column %d out of range", buildCol)
	}
	if probeCol < 0 || probeCol >= len(ps) {
		return nil, fmt.Errorf("relational: join probe column %d out of range", probeCol)
	}
	core := &joinCore{
		build: build, buildCol: buildCol, probeCol: probeCol,
		schema: bs.Concat(ps), buildWidth: len(bs),
		workers:     EffectiveWorkers(workers),
		buildKeyInt: bs[buildCol].Type == Int,
	}
	return &BatchHashJoin{core: core, probe: probe, stat: &opCount{}}, nil
}

// NewBatchHashJoinPrebuilt joins an externally constructed build table
// (see HashBuild) against probe.probeCol. The table must be fully
// appended before the first NextBatch; it may be shared read-only by
// several concurrent joins — the pipelined distributed path probes one
// incrementally-landed table from every shard at once.
func NewBatchHashJoinPrebuilt(pre *HashBuild, probe BatchOp, probeCol, workers int) (*BatchHashJoin, error) {
	ps := probe.Schema()
	if probeCol < 0 || probeCol >= len(ps) {
		return nil, fmt.Errorf("relational: join probe column %d out of range", probeCol)
	}
	core := &joinCore{
		pre: pre, buildCol: pre.keyCol, probeCol: probeCol,
		schema: pre.schema.Concat(ps), buildWidth: len(pre.schema),
		workers:     EffectiveWorkers(workers),
		buildKeyInt: pre.useInt,
	}
	return &BatchHashJoin{core: core, probe: probe, stat: &opCount{}}, nil
}

// Schema implements BatchOp.
func (j *BatchHashJoin) Schema() Schema { return j.core.schema }

// SetBudget points the join's build table at a query memory budget (nil
// keeps the unbudgeted engine, bit-identically). Call before the first
// NextBatch; partitions created later share it through the core.
func (j *BatchHashJoin) SetBudget(b *MemoryBudget) {
	j.core.budget = b
	j.core.meter = newSpillMeter(b)
}

// NextBatch implements BatchOp.
func (j *BatchHashJoin) NextBatch() (*Batch, error) {
	if err := j.core.table(); err != nil {
		return nil, err
	}
	c := j.core
	if c.grace != nil {
		if !j.graceDone {
			if err := j.graceProbe(); err != nil {
				return nil, err
			}
			j.graceDone = true
		}
		if j.gracePos >= len(j.graceOut) {
			return nil, nil
		}
		b := j.graceOut[j.gracePos]
		j.gracePos++
		j.stat.add(b.Len())
		return b, nil
	}
	for {
		b, err := j.probe.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		out := NewBatch(c.schema, b.Len())
		out.Seq = b.Seq
		n := b.Len()
		for r := 0; r < n; r++ {
			for _, bi := range c.matches(b, r) {
				brow := c.rows[bi]
				for col := 0; col < c.buildWidth; col++ {
					out.Cols[col].Append(brow[col])
				}
				for col := range b.Cols {
					out.Cols[c.buildWidth+col].Append(b.Cols[col].Value(r))
				}
				out.n++
			}
		}
		if out.Len() == 0 {
			continue
		}
		j.stat.add(out.Len())
		return out, nil
	}
}

// Stats implements BatchOp.
func (j *BatchHashJoin) Stats() OpStats {
	st := j.stat.stats()
	st.Spill = j.core.meter.opSpill()
	return st
}

// Partition implements Partitioner: probe partitions share the build
// table; output batches keep their probe-side Seq tags.
func (j *BatchHashJoin) Partition(n int, static bool) []BatchOp {
	p, ok := j.probe.(Partitioner)
	if !ok {
		return nil
	}
	parts := p.Partition(n, static)
	out := make([]BatchOp, len(parts))
	for i, pp := range parts {
		out[i] = &BatchHashJoin{core: j.core, probe: pp, stat: j.stat}
	}
	return out
}
