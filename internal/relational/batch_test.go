package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// randRel builds a deterministic pseudo-random relation with Int, String
// and Float columns sized to cross morsel boundaries when n > BatchSize.
func randRel(seed int64, n int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := NewRelation("t", Schema{
		{Name: "id", Type: Int},
		{Name: "grp", Type: String},
		{Name: "val", Type: Float},
		{Name: "qty", Type: Int},
	})
	groups := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		rel.MustAppend(Row{
			IntV(int64(i)),
			StringV(groups[rng.Intn(len(groups))]),
			FloatV(rng.Float64() * 100),
			IntV(int64(rng.Intn(50))),
		})
	}
	return rel
}

func collectRows(t *testing.T, op Op) []Row {
	t.Helper()
	rel, err := Collect(op, "out")
	if err != nil {
		t.Fatal(err)
	}
	return rel.Rows
}

func requireSameRows(t *testing.T, want, got []Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row counts differ: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("row %d arity differs: want %d, got %d", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			w, g := want[i][j], got[i][j]
			if w.T != g.T || w.I != g.I || w.F != g.F || w.S != g.S {
				t.Fatalf("row %d col %d differs: want %v (%v), got %v (%v)", i, j, w, w.T, g, g.T)
			}
		}
	}
}

// Sizes chosen to cover empty, single-row, single-morsel, exact-boundary
// and multi-morsel relations.
var batchSizes = []int{0, 1, 7, BatchSize, BatchSize + 1, 3*BatchSize + 100}

func TestBatchScanRoundTrip(t *testing.T) {
	for _, n := range batchSizes {
		rel := randRel(int64(n)+1, n)
		want := collectRows(t, NewScan(rel))
		got := collectRows(t, RowsOf(NewBatchScan(rel)))
		requireSameRows(t, want, got)
	}
}

func TestBatchScanExchangeKeepsOrder(t *testing.T) {
	for _, n := range batchSizes {
		for _, workers := range []int{1, 2, 4, 7} {
			rel := randRel(int64(n)+2, n)
			want := collectRows(t, NewScan(rel))
			got := collectRows(t, RowsOf(NewExchange(NewBatchScan(rel), workers)))
			requireSameRows(t, want, got)
		}
	}
}

func TestBatchFilterRangesAndPredicate(t *testing.T) {
	pred := func(r Row) (bool, error) { return r[2].F < 60, nil }
	rng := []ColRange{{Col: 3, Lo: 10, HasLo: true, Hi: 40, HasHi: true}}
	for _, n := range batchSizes {
		rel := randRel(int64(n)+3, n)
		want := collectRows(t, NewFilter(NewScan(rel), func(r Row) (bool, error) {
			if r[3].I < 10 || r[3].I > 40 {
				return false, nil
			}
			return pred(r)
		}))
		got := collectRows(t, RowsOf(NewExchange(NewBatchFilter(NewBatchScan(rel), rng, pred), 4)))
		requireSameRows(t, want, got)
	}
}

func TestBatchFilterRangeOnly(t *testing.T) {
	rel := randRel(11, 2*BatchSize+5)
	// Unbounded-side ranges exercise the inclusive encoding.
	got := collectRows(t, RowsOf(NewBatchFilter(NewBatchScan(rel), []ColRange{{Col: 3, Lo: 25, HasLo: true}}, nil)))
	want := collectRows(t, NewFilter(NewScan(rel), func(r Row) (bool, error) { return r[3].I >= 25, nil }))
	requireSameRows(t, want, got)
}

func TestBatchProjectPicksAndExprs(t *testing.T) {
	schema := Schema{{Name: "id", Type: Int}, {Name: "double", Type: Float}}
	exprFn := func(r Row) (Value, error) { return FloatV(r[2].F * 2), nil }
	for _, n := range batchSizes {
		rel := randRel(int64(n)+4, n)
		wantOp, err := NewProject(NewScan(rel), schema, []Projector{
			func(r Row) (Value, error) { return r[0], nil }, exprFn,
		})
		if err != nil {
			t.Fatal(err)
		}
		gotOp, err := NewBatchProject(NewBatchScan(rel), schema, []ProjExpr{Pick(0), Expr(exprFn)})
		if err != nil {
			t.Fatal(err)
		}
		requireSameRows(t, collectRows(t, wantOp), collectRows(t, RowsOf(NewExchange(gotOp, 4))))
	}
}

func TestBatchHashJoinMatchesRowJoin(t *testing.T) {
	dim := NewRelation("dim", Schema{{Name: "qty", Type: Int}, {Name: "label", Type: String}})
	for q := 0; q < 50; q += 2 { // half the keys match, with one dup key
		dim.MustAppend(Row{IntV(int64(q)), StringV(fmt.Sprintf("label-%d", q))})
		if q == 10 {
			dim.MustAppend(Row{IntV(int64(q)), StringV("label-10-dup")})
		}
	}
	for _, n := range batchSizes {
		fact := randRel(int64(n)+5, n)
		wantOp, err := NewHashJoin(NewScan(dim), NewScan(fact), 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		gotOp, err := NewBatchHashJoin(NewBatchScan(dim), NewBatchScan(fact), 0, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRows(t, collectRows(t, wantOp), collectRows(t, RowsOf(NewExchange(gotOp, 4))))
	}
}

func TestBatchHashJoinStringKey(t *testing.T) {
	dim := NewRelation("dim", Schema{{Name: "grp", Type: String}, {Name: "rank", Type: Int}})
	for i, g := range []string{"a", "c", "e"} {
		dim.MustAppend(Row{StringV(g), IntV(int64(i))})
	}
	fact := randRel(6, 2*BatchSize+9)
	wantOp, err := NewHashJoin(NewScan(dim), NewScan(fact), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotOp, err := NewBatchHashJoin(NewBatchScan(dim), NewBatchScan(fact), 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, collectRows(t, wantOp), collectRows(t, RowsOf(NewExchange(gotOp, 3))))
}

func TestBatchGroupAggMatchesRowAgg(t *testing.T) {
	aggs := []AggSpec{
		{Fn: CountAgg, Col: -1, Name: "n"},
		{Fn: SumAgg, Col: 3, Name: "sq"},
		{Fn: MinAgg, Col: 3, Name: "lo"},
		{Fn: MaxAgg, Col: 3, Name: "hi"},
	}
	for _, n := range batchSizes {
		rel := randRel(int64(n)+7, n)
		wantOp, err := NewGroupAgg(NewScan(rel), []int{1}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		gotOp, err := NewBatchGroupAgg(NewBatchScan(rel), []int{1}, aggs, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRows(t, collectRows(t, wantOp), collectRows(t, RowsOf(gotOp)))
	}
}

func TestBatchGlobalAggFastPathAndEmpty(t *testing.T) {
	aggs := []AggSpec{
		{Fn: CountAgg, Col: -1, Name: "n"},
		{Fn: SumAgg, Col: 0, Name: "s"},
		{Fn: MinAgg, Col: 0, Name: "lo"},
		{Fn: MaxAgg, Col: 0, Name: "hi"},
	}
	for _, n := range []int{0, 1, 3 * BatchSize} {
		rel := randRel(int64(n)+8, n)
		wantOp, err := NewGroupAgg(NewScan(rel), nil, aggs)
		if err != nil {
			t.Fatal(err)
		}
		gotOp, err := NewBatchGroupAgg(NewBatchScan(rel), nil, aggs, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := collectRows(t, wantOp)
		got := collectRows(t, RowsOf(gotOp))
		requireSameRows(t, want, got)
		if len(got) != 1 {
			t.Fatalf("global aggregate must emit exactly one row, got %d", len(got))
		}
	}
}

func TestBatchGroupAggStringMinMax(t *testing.T) {
	rel := randRel(9, BatchSize+33)
	aggs := []AggSpec{{Fn: MinAgg, Col: 1, Name: "lo"}, {Fn: MaxAgg, Col: 1, Name: "hi"}}
	wantOp, err := NewGroupAgg(NewScan(rel), nil, aggs)
	if err != nil {
		t.Fatal(err)
	}
	gotOp, err := NewBatchGroupAgg(NewBatchScan(rel), nil, aggs, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, collectRows(t, wantOp), collectRows(t, RowsOf(gotOp)))
	if gotOp.Schema()[0].Type != String {
		t.Fatalf("min over string column must have String schema, got %v", gotOp.Schema()[0].Type)
	}
}

func TestBatchSortMatchesRowSort(t *testing.T) {
	cases := [][]SortKey{
		{{Col: 3}},                       // single Int key → radix path
		{{Col: 3, Desc: true}},           // descending radix
		{{Col: 2, Desc: true}},           // float key → comparison path
		{{Col: 1}, {Col: 3, Desc: true}}, // multi-key
	}
	for _, keys := range cases {
		for _, n := range batchSizes {
			rel := randRel(int64(n)+10, n)
			wantOp, err := NewSort(NewScan(rel), keys)
			if err != nil {
				t.Fatal(err)
			}
			gotOp, err := NewBatchSort(NewBatchScan(rel), keys, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Stability: id column (untouched by the keys) disambiguates;
			// requireSameRows checks every cell so stability mismatches
			// surface as reordered ids among equal keys.
			requireSameRows(t, collectRows(t, wantOp), collectRows(t, RowsOf(gotOp)))
		}
	}
}

func TestBatchLimitMatchesRowLimit(t *testing.T) {
	for _, limit := range []int{0, 1, BatchSize, BatchSize + 7, 1 << 20} {
		rel := randRel(int64(limit)+11, 2*BatchSize+77)
		want := collectRows(t, NewLimit(NewScan(rel), limit))
		got := collectRows(t, RowsOf(NewBatchLimit(NewExchange(NewBatchScan(rel), 4), limit)))
		requireSameRows(t, want, got)
	}
}

func TestBatchFilterPredicateErrorPropagates(t *testing.T) {
	rel := randRel(12, 2*BatchSize)
	boom := fmt.Errorf("boom")
	f := NewBatchFilter(NewBatchScan(rel), nil, func(Row) (bool, error) { return false, boom })
	if _, err := Collect(RowsOf(NewExchange(f, 4)), "x"); err != boom {
		t.Fatalf("expected predicate error, got %v", err)
	}
}

func TestBatchAggSumOverStringErrors(t *testing.T) {
	rel := randRel(13, 2*BatchSize)
	g, err := NewBatchGroupAgg(NewBatchScan(rel), nil, []AggSpec{{Fn: SumAgg, Col: 1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(RowsOf(g), "x"); err == nil {
		t.Fatal("SUM(string) must fail at execution")
	}
}

func TestBatchStatsCountRows(t *testing.T) {
	rel := randRel(14, 3*BatchSize)
	scan := NewBatchScan(rel)
	f := NewBatchFilter(scan, []ColRange{{Col: 3, Lo: 0, HasLo: true, Hi: 24, HasHi: true}}, nil)
	out := collectRows(t, RowsOf(NewExchange(f, 4)))
	if got := scan.Stats().RowsOut; got != rel.Len() {
		t.Fatalf("scan stats = %d, want %d", got, rel.Len())
	}
	if got := f.Stats().RowsOut; got != len(out) {
		t.Fatalf("filter stats = %d, want %d", got, len(out))
	}
}

func TestInvalidateColumnarRebuilds(t *testing.T) {
	rel := randRel(15, BatchSize+10)
	before := collectRows(t, RowsOf(NewBatchScan(rel)))
	rel.Rows[0][0] = IntV(-999) // in-place mutation: cache is stale
	rel.InvalidateColumnar()
	after := collectRows(t, RowsOf(NewBatchScan(rel)))
	if after[0][0].I != -999 {
		t.Fatalf("columnar cache not rebuilt: got %v", after[0][0])
	}
	if before[0][0].I == -999 {
		t.Fatal("test setup broken: mutation happened before first scan")
	}
}
