package relational

import (
	"testing"
	"testing/quick"
)

func sample() *Relation {
	r := NewRelation("t", Schema{
		{Name: "id", Type: Int},
		{Name: "region", Type: String},
		{Name: "amount", Type: Float},
	})
	rows := []struct {
		id     int64
		region string
		amount float64
	}{
		{1, "EU", 10.0},
		{2, "NA", 20.0},
		{3, "EU", 30.0},
		{4, "APAC", 5.0},
		{5, "EU", 7.5},
		{6, "NA", 2.5},
	}
	for _, x := range rows {
		r.MustAppend(Row{IntV(x.id), StringV(x.region), FloatV(x.amount)})
	}
	return r
}

func TestValueCompare(t *testing.T) {
	if c, _ := Compare(IntV(3), FloatV(3.0)); c != 0 {
		t.Fatal("int/float cross compare")
	}
	if c, _ := Compare(IntV(2), IntV(5)); c != -1 {
		t.Fatal("int ordering")
	}
	if c, _ := Compare(StringV("a"), StringV("b")); c != -1 {
		t.Fatal("string ordering")
	}
	if _, err := Compare(StringV("a"), IntV(1)); err == nil {
		t.Fatal("string vs int must error")
	}
}

func TestValueKeyDistinguishesTypes(t *testing.T) {
	if IntV(1).Key() == StringV("1").Key() {
		t.Fatal("int 1 and string \"1\" must hash differently")
	}
	if IntV(1).Key() == FloatV(1).Key() {
		t.Fatal("int 1 and float 1.0 must hash differently (typed keys)")
	}
}

func TestAppendValidation(t *testing.T) {
	r := NewRelation("t", Schema{{Name: "a", Type: Int}})
	if err := r.Append(Row{IntV(1), IntV(2)}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if err := r.Append(Row{StringV("x")}); err == nil {
		t.Fatal("type mismatch must error")
	}
	if err := r.Append(Row{IntV(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestScanStreamsAll(t *testing.T) {
	rel := sample()
	got, err := Collect(NewScan(rel), "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rel.Len() {
		t.Fatalf("scan produced %d rows, want %d", got.Len(), rel.Len())
	}
}

func TestFilterPredicate(t *testing.T) {
	rel := sample()
	f := NewFilter(NewScan(rel), func(r Row) (bool, error) {
		return r[1].S == "EU", nil
	})
	got, err := Collect(f, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("EU rows = %d, want 3", got.Len())
	}
	if f.Stats().RowsOut != 3 {
		t.Fatalf("stats = %+v", f.Stats())
	}
}

func TestFilterComposesLikeConjunction(t *testing.T) {
	f := func(seed int64) bool {
		rel := sample()
		p := func(r Row) (bool, error) { return r[0].I%2 == 0, nil }
		q := func(r Row) (bool, error) { return r[2].F > 3, nil }
		chained, err := Collect(NewFilter(NewFilter(NewScan(rel), p), q), "a")
		if err != nil {
			return false
		}
		both := NewFilter(NewScan(rel), func(r Row) (bool, error) {
			a, _ := p(r)
			b, _ := q(r)
			return a && b, nil
		})
		combined, err := Collect(both, "b")
		if err != nil {
			return false
		}
		if chained.Len() != combined.Len() {
			return false
		}
		for i := range chained.Rows {
			if chained.Rows[i][0].I != combined.Rows[i][0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectComputesColumns(t *testing.T) {
	rel := sample()
	p, err := NewProject(NewScan(rel),
		Schema{{Name: "id", Type: Int}, {Name: "double", Type: Float}},
		[]Projector{
			func(r Row) (Value, error) { return r[0], nil },
			func(r Row) (Value, error) { return FloatV(r[2].F * 2), nil },
		})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(p, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][1].F != 20.0 {
		t.Fatalf("projected value = %v", got.Rows[0][1])
	}
}

func TestProjectArityMismatch(t *testing.T) {
	if _, err := NewProject(NewScan(sample()), Schema{{Name: "a", Type: Int}}, nil); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestHashJoinInner(t *testing.T) {
	dims := NewRelation("dims", Schema{
		{Name: "region", Type: String},
		{Name: "continent", Type: String},
	})
	dims.MustAppend(Row{StringV("EU"), StringV("europe")})
	dims.MustAppend(Row{StringV("NA"), StringV("america")})

	j, err := NewHashJoin(NewScan(dims), NewScan(sample()), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j, "out")
	if err != nil {
		t.Fatal(err)
	}
	// APAC rows drop (no dimension); 5 survive.
	if got.Len() != 5 {
		t.Fatalf("join rows = %d, want 5", got.Len())
	}
	if len(got.Schema) != 5 {
		t.Fatalf("join schema arity = %d, want 5", len(got.Schema))
	}
	for _, r := range got.Rows {
		if r[0].S != r[3].S {
			t.Fatalf("join key mismatch in %v", r)
		}
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	l := NewRelation("l", Schema{{Name: "k", Type: Int}})
	r := NewRelation("r", Schema{{Name: "k", Type: Int}})
	for i := 0; i < 3; i++ {
		l.MustAppend(Row{IntV(1)})
	}
	for i := 0; i < 2; i++ {
		r.MustAppend(Row{IntV(1)})
	}
	j, err := NewHashJoin(NewScan(l), NewScan(r), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Fatalf("cartesian-on-key rows = %d, want 3×2=6", got.Len())
	}
}

func TestHashJoinColumnRangeErrors(t *testing.T) {
	if _, err := NewHashJoin(NewScan(sample()), NewScan(sample()), 9, 0); err == nil {
		t.Fatal("expected build column range error")
	}
	if _, err := NewHashJoin(NewScan(sample()), NewScan(sample()), 0, 9); err == nil {
		t.Fatal("expected probe column range error")
	}
}

func TestGroupAggSumCountAvgMinMax(t *testing.T) {
	g, err := NewGroupAgg(NewScan(sample()), []int{1}, []AggSpec{
		{Fn: CountAgg, Col: -1, Name: "n"},
		{Fn: SumAgg, Col: 2, Name: "total"},
		{Fn: AvgAgg, Col: 2, Name: "mean"},
		{Fn: MinAgg, Col: 2, Name: "lo"},
		{Fn: MaxAgg, Col: 2, Name: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(g, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("groups = %d, want 3", got.Len())
	}
	// First-seen order: EU, NA, APAC.
	eu := got.Rows[0]
	if eu[0].S != "EU" || eu[1].I != 3 || eu[2].F != 47.5 {
		t.Fatalf("EU row = %v", eu)
	}
	if eu[3].F != 47.5/3 {
		t.Fatalf("EU avg = %v", eu[3])
	}
	if eu[4].F != 7.5 || eu[5].F != 30.0 {
		t.Fatalf("EU min/max = %v/%v", eu[4], eu[5])
	}
}

func TestGroupAggGlobalOnEmptyInput(t *testing.T) {
	empty := NewRelation("e", Schema{{Name: "x", Type: Int}})
	g, err := NewGroupAgg(NewScan(empty), nil, []AggSpec{{Fn: CountAgg, Col: -1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(g, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Rows[0][0].I != 0 {
		t.Fatalf("global count over empty = %v", got.Rows)
	}
}

func TestGroupAggIntSumStaysInt(t *testing.T) {
	r := NewRelation("t", Schema{{Name: "k", Type: Int}, {Name: "v", Type: Int}})
	r.MustAppend(Row{IntV(1), IntV(10)})
	r.MustAppend(Row{IntV(1), IntV(20)})
	g, err := NewGroupAgg(NewScan(r), []int{0}, []AggSpec{{Fn: SumAgg, Col: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Collect(g, "out")
	if got.Rows[0][1].T != Int || got.Rows[0][1].I != 30 {
		t.Fatalf("int sum = %v", got.Rows[0][1])
	}
}

func TestSortAscDescStable(t *testing.T) {
	rel := sample()
	s, err := NewSort(NewScan(rel), []SortKey{{Col: 1, Desc: false}, {Col: 2, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(s, "out")
	if err != nil {
		t.Fatal(err)
	}
	// Regions ascending: APAC, EU, EU, EU, NA, NA; amounts desc within.
	if got.Rows[0][1].S != "APAC" || got.Rows[1][1].S != "EU" {
		t.Fatalf("order = %v", got.Rows)
	}
	if got.Rows[1][2].F != 30.0 || got.Rows[3][2].F != 7.5 {
		t.Fatal("descending amounts within region broken")
	}
}

func TestSortColumnRangeError(t *testing.T) {
	if _, err := NewSort(NewScan(sample()), []SortKey{{Col: 7}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestLimit(t *testing.T) {
	got, err := Collect(NewLimit(NewScan(sample()), 2), "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("limit rows = %d", got.Len())
	}
	// Unlimited.
	got, _ = Collect(NewLimit(NewScan(sample()), -1), "out")
	if got.Len() != 6 {
		t.Fatalf("unlimited rows = %d", got.Len())
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// SELECT region, SUM(amount) FROM t WHERE amount > 3 GROUP BY region
	// ORDER BY 2 DESC LIMIT 2 — hand-built.
	rel := sample()
	f := NewFilter(NewScan(rel), func(r Row) (bool, error) { return r[2].F > 3, nil })
	g, err := NewGroupAgg(f, []int{1}, []AggSpec{{Fn: SumAgg, Col: 2, Name: "total"}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSort(g, []SortKey{{Col: 1, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewLimit(s, 2), "out")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d", got.Len())
	}
	if got.Rows[0][0].S != "EU" || got.Rows[0][1].F != 47.5 {
		t.Fatalf("top group = %v", got.Rows[0])
	}
	if got.Rows[1][0].S != "NA" || got.Rows[1][1].F != 20.0 {
		t.Fatalf("second group = %v", got.Rows[1])
	}
}
