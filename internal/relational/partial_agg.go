package relational

import (
	"sort"

	"repro/internal/kernels"
)

// PartialAgg is one participant's share of a grouped aggregation: a hash
// table of per-group aggregate states plus the bookkeeping needed to merge
// partials deterministically. Both parallelism layers use it — the
// morsel-parallel BatchGroupAgg merges per-worker partials in partition
// order, and the distributed engine ships per-shard partials to the
// coordinator and merges them in global first-seen (seq) order, so the
// distributed group emission order is row-for-row identical to the
// single-node engine's.
type PartialAgg struct {
	groupCols []int
	aggs      []AggSpec

	groups map[string]*partialGroup
	order  []string // first-seen order within this partial
	ord    int64    // arrival counter (rows observed)
	bytes  float64  // incrementally tracked state size (see StateBytes)
}

// partialGroup is one group's state. firstSeq is the smallest seq tag the
// group was observed at (the arrival ordinal when no seq column is fed);
// firstOrd breaks firstSeq ties by arrival order, which is only needed
// when several output rows share a seq tag (join fan-out) — those rows
// always live in the same partial, so ordinals stay comparable.
type partialGroup struct {
	key      Row
	states   []aggState
	firstSeq int64
	firstOrd int64
}

// NewPartialAgg returns an empty partial for the given group columns and
// aggregate specs (column indexes refer to the rows fed to ObserveBatch).
func NewPartialAgg(groupCols []int, aggs []AggSpec) *PartialAgg {
	return &PartialAgg{groupCols: groupCols, aggs: aggs, groups: map[string]*partialGroup{}}
}

// Groups returns the number of distinct groups observed.
func (p *PartialAgg) Groups() int { return len(p.order) }

// Rows returns the number of input rows observed.
func (p *PartialAgg) Rows() int64 { return p.ord }

// StartOrdAt shifts the arrival counter so ordinals (and the first-seen
// tags of groups observed from here on) continue a predecessor's
// sequence. The out-of-core aggregation uses it when a spilled
// generation hands over to a fresh one: tags stay globally comparable
// across generations, which is what lets SortOrderBySeq restore the
// stream's true first-seen order after a partition-wise merge.
func (p *PartialAgg) StartOrdAt(n int64) { p.ord = n }

// SortOrderBySeq re-sorts the partial's first-seen order by the groups'
// (firstSeq, firstOrd) tags — a no-op on a partial built sequentially,
// and the order-restoring step after merging spilled generations whose
// groups arrived interleaved.
func (p *PartialAgg) SortOrderBySeq() {
	sort.SliceStable(p.order, func(i, j int) bool {
		a, b := p.groups[p.order[i]], p.groups[p.order[j]]
		if a.firstSeq != b.firstSeq {
			return a.firstSeq < b.firstSeq
		}
		return a.firstOrd < b.firstOrd
	})
}

// groupStateBytes is the modeled in-memory size of one group's aggregate
// state beyond its key: count, two sums, and min/max slots per aggregate.
// Sized at group creation (min/max growth for string aggregates is not
// re-measured — the budget models arena accounting, not malloc).
func groupStateBytes(key Row, naggs int) float64 {
	return key.EncodedBytes() + float64(naggs)*40
}

// StateBytes returns the modeled resident size of the partial's hash
// table, maintained incrementally so the out-of-core layer can charge
// the budget per batch without rescanning the table.
func (p *PartialAgg) StateBytes() float64 { return p.bytes }

// ObserveBatch folds one batch into the partial. seqCol >= 0 names an Int
// column carrying each row's global sequence tag (used for first-seen
// ordering across partials); seqCol < 0 falls back to the arrival ordinal,
// which reproduces first-seen order within this partial alone.
func (p *PartialAgg) ObserveBatch(b *Batch, seqCol int) error {
	if len(p.groupCols) == 0 {
		return p.observeGlobal(b, seqCol)
	}
	var kb []byte
	var buf Row
	n := b.Len()
	for r := 0; r < n; r++ {
		buf = b.Row(r, buf)
		seq := p.ord
		if seqCol >= 0 {
			seq = b.Cols[seqCol].Ints[r]
		}
		kb = kb[:0]
		for _, c := range p.groupCols {
			kb = append(kb, buf[c].Key()...)
			kb = append(kb, 0)
		}
		gr, ok := p.groups[string(kb)]
		if !ok {
			key := make(Row, len(p.groupCols))
			for i, c := range p.groupCols {
				key[i] = buf[c]
			}
			gr = &partialGroup{key: key, states: make([]aggState, len(p.aggs)), firstSeq: seq, firstOrd: p.ord}
			k := string(kb)
			p.groups[k] = gr
			p.order = append(p.order, k)
			p.bytes += groupStateBytes(key, len(p.aggs))
		}
		p.ord++
		if err := observeRow(gr, p.aggs, buf); err != nil {
			return err
		}
	}
	return nil
}

// observeGlobal handles the no-group-column case: a single group, updated
// column-at-a-time via the reduction kernels when every aggregate
// qualifies (Int sums are exact, so kernel order cannot perturb results).
func (p *PartialAgg) observeGlobal(b *Batch, seqCol int) error {
	gr := p.groups[""]
	if gr == nil {
		seq := p.ord
		if seqCol >= 0 && b.Len() > 0 {
			seq = b.Cols[seqCol].Ints[0]
		}
		gr = &partialGroup{states: make([]aggState, len(p.aggs)), firstSeq: seq, firstOrd: p.ord}
		p.groups[""] = gr
		p.order = append(p.order, "")
		p.bytes += groupStateBytes(nil, len(p.aggs))
	}
	n := b.Len()
	if p.globalFast(gr.states, b) {
		p.ord += int64(n)
		return nil
	}
	var buf Row
	for r := 0; r < n; r++ {
		buf = b.Row(r, buf)
		p.ord++
		if err := observeRow(gr, p.aggs, buf); err != nil {
			return err
		}
	}
	return nil
}

// globalFast updates the single global state column-at-a-time via the
// reduction kernels. Only Int columns qualify.
func (p *PartialAgg) globalFast(st []aggState, b *Batch) bool {
	for _, a := range p.aggs {
		if a.Fn == CountAgg {
			continue
		}
		if a.Fn == AvgAgg || b.Cols[a.Col].T != Int {
			return false
		}
	}
	n := int64(b.Len())
	for i, a := range p.aggs {
		s := &st[i]
		s.count += n
		if a.Fn == CountAgg {
			continue
		}
		col := b.Cols[a.Col].Ints
		sum := kernels.SumInt64(col)
		s.sumI += sum
		s.sumF += float64(sum)
		lo, hi := kernels.MinMaxInt64(col)
		if !s.seen {
			s.minV, s.maxV, s.seen = IntV(lo), IntV(hi), true
		} else {
			if lo < s.minV.I {
				s.minV = IntV(lo)
			}
			if hi > s.maxV.I {
				s.maxV = IntV(hi)
			}
		}
	}
	return true
}

// Clone deep-copies the partial's group states. MergeFrom inserts group
// POINTERS for unseen groups, so a partial that merges into several
// accumulators (a streaming pane folded into every sliding window that
// covers it) must hand each accumulator its own copy — merging the
// original would let a later MergeFrom mutate state other windows still
// need. Group keys are shared (Values are immutable); states are copied.
func (p *PartialAgg) Clone() *PartialAgg {
	q := NewPartialAgg(p.groupCols, p.aggs)
	q.ord = p.ord
	q.bytes = p.bytes
	q.order = append([]string(nil), p.order...)
	for k, gr := range p.groups {
		q.groups[k] = &partialGroup{
			key:      gr.key,
			states:   append([]aggState(nil), gr.states...),
			firstSeq: gr.firstSeq,
			firstOrd: gr.firstOrd,
		}
	}
	return q
}

// MergeFrom folds a later partial into p: shared groups merge their
// states (and keep the lexicographically smallest (firstSeq, firstOrd));
// unseen groups append in o's first-seen order. Folding partials in
// partition order therefore reproduces the serial first-seen order when
// partition i's rows precede partition i+1's.
func (p *PartialAgg) MergeFrom(o *PartialAgg) {
	for _, k := range o.order {
		og := o.groups[k]
		mg, ok := p.groups[k]
		if !ok {
			p.groups[k] = og
			p.order = append(p.order, k)
			p.bytes += groupStateBytes(og.key, len(p.aggs))
			continue
		}
		for i := range mg.states {
			mg.states[i].mergeFrom(&og.states[i])
		}
		if og.firstSeq < mg.firstSeq || (og.firstSeq == mg.firstSeq && og.firstOrd < mg.firstOrd) {
			mg.firstSeq, mg.firstOrd = og.firstSeq, og.firstOrd
		}
	}
	p.ord += o.ord
}

// MergeCopy folds o into p like MergeFrom but never aliases o's state:
// unseen groups insert as copies, so o can be merged into any number of
// accumulators — and mutated afterwards — without corrupting them. The
// streaming windower folds each pane's memoized snapshot into every
// sliding window covering it this way, paying one state copy per group
// instead of cloning the whole pane per window.
func (p *PartialAgg) MergeCopy(o *PartialAgg) {
	for _, k := range o.order {
		og := o.groups[k]
		mg, ok := p.groups[k]
		if !ok {
			p.groups[k] = &partialGroup{
				key:      og.key,
				states:   append([]aggState(nil), og.states...),
				firstSeq: og.firstSeq,
				firstOrd: og.firstOrd,
			}
			p.order = append(p.order, k)
			p.bytes += groupStateBytes(og.key, len(p.aggs))
			continue
		}
		for i := range mg.states {
			mg.states[i].mergeFrom(&og.states[i])
		}
		if og.firstSeq < mg.firstSeq || (og.firstSeq == mg.firstSeq && og.firstOrd < mg.firstOrd) {
			mg.firstSeq, mg.firstOrd = og.firstSeq, og.firstOrd
		}
	}
	p.ord += o.ord
}

// EmitRows renders the final aggregate rows. schema is the output schema
// (group columns then aggregates, as groupAggSchema derives). When bySeq
// is true groups emit in ascending (firstSeq, firstOrd) order — the global
// first-seen order when seq tags were fed — otherwise in this partial's
// first-seen order. A global aggregate over empty input still yields one
// row of zeros, matching both engines.
func (p *PartialAgg) EmitRows(schema Schema, bySeq bool) []Row {
	order := p.order
	if bySeq {
		order = append([]string(nil), p.order...)
		sort.SliceStable(order, func(i, j int) bool {
			a, b := p.groups[order[i]], p.groups[order[j]]
			if a.firstSeq != b.firstSeq {
				return a.firstSeq < b.firstSeq
			}
			return a.firstOrd < b.firstOrd
		})
	}
	if len(p.groupCols) == 0 && len(order) == 0 {
		p.groups[""] = &partialGroup{states: make([]aggState, len(p.aggs))}
		order = append(order, "")
	}
	rows := make([]Row, 0, len(order))
	for _, k := range order {
		gr := p.groups[k]
		row := make(Row, 0, len(p.groupCols)+len(p.aggs))
		row = append(row, gr.key...)
		for i, a := range p.aggs {
			row = append(row, gr.states[i].result(a.Fn, schema[len(p.groupCols)+i].Type))
		}
		rows = append(rows, row)
	}
	return rows
}

// SplitChunks slices the partial into sub-partials of at most maxGroups
// groups each, in this partial's first-seen order. The subs reference
// the original group states (no copying): merging them back in order
// via MergeFrom reconstructs this partial exactly — same group pointers,
// same order, same ord — which is what lets the pipelined distributed
// gather ship and fold a shard's partial generation by generation while
// keeping the coordinator's final merge bit-identical to the bulk one.
// The first sub carries the whole arrival count (ord is a partial-level
// counter, not a per-group one), so the counts sum correctly. maxGroups
// <= 0, or a partial that fits one chunk, returns []{p} itself.
func (p *PartialAgg) SplitChunks(maxGroups int) []*PartialAgg {
	if maxGroups <= 0 || len(p.order) <= maxGroups {
		return []*PartialAgg{p}
	}
	var subs []*PartialAgg
	for start := 0; start < len(p.order); start += maxGroups {
		end := start + maxGroups
		if end > len(p.order) {
			end = len(p.order)
		}
		sub := NewPartialAgg(p.groupCols, p.aggs)
		for _, k := range p.order[start:end] {
			gr := p.groups[k]
			sub.groups[k] = gr
			sub.order = append(sub.order, k)
			sub.bytes += groupStateBytes(gr.key, len(p.aggs))
		}
		if start == 0 {
			sub.ord = p.ord
		}
		subs = append(subs, sub)
	}
	return subs
}

// EncodedBytes returns the serialized size of the partial — what a shard
// ships to the coordinator in the distributed final-merge phase: each
// group's key plus the fixed aggregate state (count, two sums, min, max).
func (p *PartialAgg) EncodedBytes() float64 {
	total := 0.0
	for _, k := range p.order {
		gr := p.groups[k]
		total += gr.key.EncodedBytes()
		for i := range gr.states {
			total += 24 // count + sumI/sumF
			total += gr.states[i].minV.EncodedBytes() + gr.states[i].maxV.EncodedBytes()
		}
	}
	return total
}
