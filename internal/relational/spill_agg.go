package relational

// SpillableAgg wraps PartialAgg with generation-based external
// aggregation: rows fold into the current in-memory generation; when the
// generation's state no longer fits the budget, it is hash-split by
// group key into fanout sub-partials and spilled (modeled) to the tier,
// and a fresh generation continues with the arrival counter carried
// over. Finish reads the spilled partitions back partition-wise, folds
// them in generation order — a group's rows always hash to the same
// partition, so its states merge in arrival order and exact (integer)
// aggregates reproduce the unbudgeted results bit-for-bit — and restores
// the stream's first-seen group order from the (firstSeq, firstOrd)
// tags. A nil budget makes the wrapper a transparent passthrough, and a
// global aggregate (no group columns) never spills: its state is one
// group.
type SpillableAgg struct {
	groupCols []int
	aggs      []AggSpec
	budget    *MemoryBudget
	meter     *spillMeter

	cur      *PartialAgg
	reserved int64 // bytes of cur currently charged to the budget
	// spilled[j] holds partition j's sub-partials, one per spill event,
	// in generation order.
	spilled [graceFanout][]spilledPart
	spills  int
}

type spilledPart struct {
	pa    *PartialAgg
	bytes int64
}

// NewSpillableAgg returns a budgeted aggregation participant. meter may
// be nil (one is derived from the budget), letting callers without an
// operator-level stats surface — the distributed partial-agg workers —
// still charge the query aggregate.
func NewSpillableAgg(groupCols []int, aggs []AggSpec, budget *MemoryBudget, meter *spillMeter) *SpillableAgg {
	if meter == nil {
		meter = newSpillMeter(budget)
	}
	return &SpillableAgg{
		groupCols: groupCols, aggs: aggs, budget: budget, meter: meter,
		cur: NewPartialAgg(groupCols, aggs),
	}
}

// ObserveBatch folds one batch into the current generation, then settles
// the generation's growth against the budget; on overflow the generation
// spills and a fresh one continues.
func (s *SpillableAgg) ObserveBatch(b *Batch, seqCol int) error {
	if err := s.cur.ObserveBatch(b, seqCol); err != nil {
		return err
	}
	if s.budget == nil || len(s.groupCols) == 0 {
		return nil
	}
	bytes := int64(s.cur.StateBytes())
	delta := bytes - s.reserved
	if delta <= 0 {
		return nil
	}
	if s.budget.Reserve(delta) {
		s.reserved = bytes
		return nil
	}
	s.spill()
	return nil
}

// spill hash-splits the current generation into fanout partitions by
// group key, prices writing each out, releases the generation's budget,
// and starts a fresh generation whose ordinals continue the sequence.
func (s *SpillableAgg) spill() {
	nextOrd := s.cur.Rows()
	for j, sub := range splitPartial(s.cur, graceFanout) {
		if sub == nil {
			continue
		}
		bytes := int64(sub.StateBytes())
		s.meter.notePartition(1)
		s.meter.chargeWrite(bytes)
		s.spilled[j] = append(s.spilled[j], spilledPart{pa: sub, bytes: bytes})
	}
	s.spills++
	s.budget.Release(s.reserved)
	s.reserved = 0
	s.cur = NewPartialAgg(s.groupCols, s.aggs)
	s.cur.StartOrdAt(nextOrd)
}

// splitPartial partitions p's groups by key hash, moving each group (its
// state and tags intact, relative order preserved) into one of fanout
// sub-partials. Entries for empty partitions are nil.
func splitPartial(p *PartialAgg, fanout int) []*PartialAgg {
	subs := make([]*PartialAgg, fanout)
	for _, k := range p.order {
		j := int(fnv64(k) % uint64(fanout))
		sub := subs[j]
		if sub == nil {
			sub = NewPartialAgg(p.groupCols, p.aggs)
			subs[j] = sub
		}
		gr := p.groups[k]
		sub.groups[k] = gr
		sub.order = append(sub.order, k)
		sub.bytes += groupStateBytes(gr.key, len(p.aggs))
	}
	return subs
}

// Snapshot is a repeatable Finish: it merges clones of the spilled
// partitions and the resident generation, leaving every original intact
// so more batches may fold in afterwards. Streaming windows use it — a
// pane's aggregate is read once per window that covers it while the pane
// keeps accepting late events. Reads of spilled partitions are priced on
// every call, like the re-reads they model. The returned partial is
// owned by the caller (safe to MergeFrom into an accumulator).
func (s *SpillableAgg) Snapshot() *PartialAgg {
	if s.spills == 0 {
		return s.cur.Clone()
	}
	total := s.cur.Rows()
	out := NewPartialAgg(s.groupCols, s.aggs)
	for j := range s.spilled {
		for _, sp := range s.spilled[j] {
			s.meter.chargeRead(sp.bytes)
			out.MergeCopy(sp.pa)
		}
	}
	out.MergeCopy(s.cur)
	out.SortOrderBySeq()
	out.StartOrdAt(total)
	return out
}

// Discard releases the resident generation's budget reservation — the
// retirement path of a streaming pane that has been read into its last
// window. The aggregate must not observe further batches afterwards.
func (s *SpillableAgg) Discard() {
	if s.budget != nil && s.reserved > 0 {
		s.budget.Release(s.reserved)
		s.reserved = 0
	}
}

// Finish merges the spilled partitions back (pricing the reads), folds
// the resident generation in last, and restores the stream's true
// first-seen order. The returned partial is interchangeable with one
// built without a budget.
func (s *SpillableAgg) Finish() *PartialAgg {
	if s.spills == 0 {
		return s.cur
	}
	total := s.cur.Rows()
	out := NewPartialAgg(s.groupCols, s.aggs)
	for j := range s.spilled {
		for _, sp := range s.spilled[j] {
			s.meter.chargeRead(sp.bytes)
			out.MergeFrom(sp.pa)
		}
	}
	out.MergeFrom(s.cur)
	out.SortOrderBySeq()
	out.StartOrdAt(total)
	return out
}
