package relational

import (
	"fmt"
	"sort"

	"repro/internal/exec"
)

// Op is a volcano-style pull iterator. Construction validates; Next
// streams rows until ok is false. Errors during evaluation surface from
// Next. Operators are single-use: build a fresh tree per execution.
type Op interface {
	// Schema describes the rows Next produces.
	Schema() Schema
	// Next returns the next row. ok is false at end of stream.
	Next() (row Row, ok bool, err error)
	// Stats reports rows produced so far (for optimizer experiments).
	Stats() OpStats
}

// OpStats counts operator work.
type OpStats struct {
	RowsOut int
	// Hetero, when the operator dispatched its morsels through a device
	// placer, is the accumulated modeled heterogeneous execution cost
	// (per-device morsel counts, modeled seconds, offload overheads).
	// Nil on the homogeneous engine.
	Hetero *exec.OpCost
	// Spill, when the operator's state overflowed a memory budget, is
	// the modeled out-of-core activity (partitions evicted, bytes and
	// seconds across the tier boundary). Nil when nothing spilled.
	Spill *SpillStats
}

// accountingSpill models out-of-core cost for the serial volcano
// operators, which keep their materialize-in-memory row flow (rows and
// order never change — the budget is an accounting arena, not a real
// allocator): state that fits simply reserves; state that overflows is
// modeled as ceil(bytes/limit) partitions written out and read back once.
func accountingSpill(b *MemoryBudget, m *spillMeter, bytes int64) {
	if b == nil || bytes <= 0 || b.Reserve(bytes) {
		return
	}
	parts := int((bytes + b.Limit() - 1) / b.Limit())
	if parts < 2 {
		parts = 2
	}
	for i := 0; i < parts; i++ {
		m.notePartition(1)
	}
	m.chargeWrite(bytes)
	m.chargeRead(bytes)
}

// Predicate decides whether a row passes a filter.
type Predicate func(Row) (bool, error)

// Projector computes one output cell from an input row.
type Projector func(Row) (Value, error)

// Scan streams a materialized relation.
type Scan struct {
	rel  *Relation
	pos  int
	stat OpStats
}

// NewScan returns a scan over rel.
func NewScan(rel *Relation) *Scan { return &Scan{rel: rel} }

// Schema implements Op.
func (s *Scan) Schema() Schema { return s.rel.Schema }

// Next implements Op.
func (s *Scan) Next() (Row, bool, error) {
	if s.pos >= len(s.rel.Rows) {
		return nil, false, nil
	}
	r := s.rel.Rows[s.pos]
	s.pos++
	s.stat.RowsOut++
	return r, true, nil
}

// Stats implements Op.
func (s *Scan) Stats() OpStats { return s.stat }

// Filter passes rows satisfying the predicate.
type Filter struct {
	child Op
	pred  Predicate
	stat  OpStats
}

// NewFilter returns a filter over child.
func NewFilter(child Op, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Op.
func (f *Filter) Schema() Schema { return f.child.Schema() }

// Next implements Op.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := f.pred(row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			f.stat.RowsOut++
			return row, true, nil
		}
	}
}

// Stats implements Op.
func (f *Filter) Stats() OpStats { return f.stat }

// Project computes derived columns.
type Project struct {
	child  Op
	schema Schema
	exprs  []Projector
	stat   OpStats
}

// NewProject returns a projection producing the given schema via exprs
// (one per output column).
func NewProject(child Op, schema Schema, exprs []Projector) (*Project, error) {
	if len(schema) != len(exprs) {
		return nil, fmt.Errorf("relational: project: %d columns but %d expressions", len(schema), len(exprs))
	}
	return &Project{child: child, schema: schema, exprs: exprs}, nil
}

// Schema implements Op.
func (p *Project) Schema() Schema { return p.schema }

// Next implements Op.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	p.stat.RowsOut++
	return out, true, nil
}

// Stats implements Op.
func (p *Project) Stats() OpStats { return p.stat }

// HashJoin is an inner equi-join: build side materialized into a hash
// table, probe side streamed. Output rows are build-row ++ probe-row.
type HashJoin struct {
	build, probe       Op
	buildCol, probeCol int
	schema             Schema
	table              map[string][]Row
	built              bool
	pending            []Row // remaining matches for the current probe row
	budget             *MemoryBudget
	meter              *spillMeter
	stat               OpStats
}

// NewHashJoin joins build.col == probe.col.
func NewHashJoin(build, probe Op, buildCol, probeCol int) (*HashJoin, error) {
	bs, ps := build.Schema(), probe.Schema()
	if buildCol < 0 || buildCol >= len(bs) {
		return nil, fmt.Errorf("relational: join build column %d out of range", buildCol)
	}
	if probeCol < 0 || probeCol >= len(ps) {
		return nil, fmt.Errorf("relational: join probe column %d out of range", probeCol)
	}
	return &HashJoin{
		build: build, probe: probe,
		buildCol: buildCol, probeCol: probeCol,
		schema: bs.Concat(ps),
	}, nil
}

// Schema implements Op.
func (j *HashJoin) Schema() Schema { return j.schema }

// SetBudget charges the build table to a query memory budget (serial
// engine: accounting-only spill, rows unchanged).
func (j *HashJoin) SetBudget(b *MemoryBudget) {
	j.budget = b
	j.meter = newSpillMeter(b)
}

func (j *HashJoin) buildTable() error {
	j.table = map[string][]Row{}
	bytes := 0.0
	for {
		row, ok, err := j.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := row[j.buildCol].Key()
		j.table[k] = append(j.table[k], row)
		bytes += row.EncodedBytes()
	}
	accountingSpill(j.budget, j.meter, int64(bytes))
	j.built = true
	return nil
}

// Next implements Op.
func (j *HashJoin) Next() (Row, bool, error) {
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, false, err
		}
	}
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			j.stat.RowsOut++
			return out, true, nil
		}
		prow, ok, err := j.probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches := j.table[prow[j.probeCol].Key()]
		for _, b := range matches {
			out := make(Row, 0, len(b)+len(prow))
			out = append(out, b...)
			out = append(out, prow...)
			j.pending = append(j.pending, out)
		}
	}
}

// Stats implements Op.
func (j *HashJoin) Stats() OpStats {
	st := j.stat
	st.Spill = j.meter.opSpill()
	return st
}

// AggFn is an aggregate function kind.
type AggFn int

// Aggregate functions.
const (
	CountAgg AggFn = iota
	SumAgg
	MinAgg
	MaxAgg
	AvgAgg
)

// String implements fmt.Stringer.
func (f AggFn) String() string {
	switch f {
	case CountAgg:
		return "count"
	case SumAgg:
		return "sum"
	case MinAgg:
		return "min"
	case MaxAgg:
		return "max"
	case AvgAgg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", int(f))
	}
}

// AggSpec is one aggregate over a column (Col ignored for COUNT(*) = -1).
type AggSpec struct {
	Fn  AggFn
	Col int
	// Name labels the output column.
	Name string
}

// GroupAgg groups rows by key columns and computes aggregates. It
// materializes on first Next. Output schema: group columns then aggregate
// columns; groups are emitted in first-seen order (deterministic).
type GroupAgg struct {
	child     Op
	groupCols []int
	aggs      []AggSpec
	schema    Schema

	out    []Row
	pos    int
	done   bool
	budget *MemoryBudget
	meter  *spillMeter
	stat   OpStats
}

// NewGroupAgg returns a grouped aggregation. groupCols may be empty for a
// global aggregate (one output row).
func NewGroupAgg(child Op, groupCols []int, aggs []AggSpec) (*GroupAgg, error) {
	schema, err := groupAggSchema(child.Schema(), groupCols, aggs)
	if err != nil {
		return nil, err
	}
	return &GroupAgg{child: child, groupCols: groupCols, aggs: aggs, schema: schema}, nil
}

// AggOutputSchema validates and derives the output schema of a grouped
// aggregation (group columns then aggregates). It is the exported form of
// the rule the engines share, for the distributed planner: the aggregate
// splits into per-shard partials there, and the coordinator needs the
// merged schema without constructing an operator.
func AggOutputSchema(child Schema, groupCols []int, aggs []AggSpec) (Schema, error) {
	return groupAggSchema(child, groupCols, aggs)
}

// groupAggSchema validates and derives the output schema of a grouped
// aggregation (shared by the serial and batch engines).
func groupAggSchema(cs Schema, groupCols []int, aggs []AggSpec) (Schema, error) {
	var schema Schema
	for _, c := range groupCols {
		if c < 0 || c >= len(cs) {
			return nil, fmt.Errorf("relational: group column %d out of range", c)
		}
		schema = append(schema, cs[c])
	}
	for _, a := range aggs {
		if a.Fn != CountAgg && (a.Col < 0 || a.Col >= len(cs)) {
			return nil, fmt.Errorf("relational: aggregate column %d out of range", a.Col)
		}
		t := Float
		if a.Fn == CountAgg {
			t = Int
		} else if a.Fn != AvgAgg && a.Col >= 0 && cs[a.Col].Type == Int && (a.Fn == SumAgg || a.Fn == MinAgg || a.Fn == MaxAgg) {
			t = Int
		} else if (a.Fn == MinAgg || a.Fn == MaxAgg) && a.Col >= 0 && cs[a.Col].Type == String {
			t = String
		}
		name := a.Name
		if name == "" {
			name = a.Fn.String()
		}
		schema = append(schema, Column{Name: name, Type: t})
	}
	return schema, nil
}

// Schema implements Op.
func (g *GroupAgg) Schema() Schema { return g.schema }

// SetBudget charges the group hash table to a query memory budget
// (serial engine: accounting-only spill, rows unchanged).
func (g *GroupAgg) SetBudget(b *MemoryBudget) {
	g.budget = b
	g.meter = newSpillMeter(b)
}

type aggState struct {
	count int64
	sumF  float64
	sumI  int64
	minV  Value
	maxV  Value
	seen  bool
}

// observe folds one input value into the state. The serial and batch
// engines share it so their aggregate semantics match exactly.
func (st *aggState) observe(fn AggFn, v Value) error {
	st.count++
	if fn == CountAgg {
		return nil
	}
	f, err := v.AsFloat()
	if err != nil && (fn == SumAgg || fn == AvgAgg) {
		return fmt.Errorf("relational: %s over non-numeric column", fn)
	}
	if err == nil {
		st.sumF += f
		st.sumI += v.I
	}
	if !st.seen {
		st.minV, st.maxV = v, v
		st.seen = true
		return nil
	}
	if c, err := Compare(v, st.minV); err == nil && c < 0 {
		st.minV = v
	}
	if c, err := Compare(v, st.maxV); err == nil && c > 0 {
		st.maxV = v
	}
	return nil
}

// mergeFrom combines a later partition's state into st (st's rows precede
// other's in serial order).
func (st *aggState) mergeFrom(other *aggState) {
	st.count += other.count
	st.sumF += other.sumF
	st.sumI += other.sumI
	if !other.seen {
		return
	}
	if !st.seen {
		st.minV, st.maxV, st.seen = other.minV, other.maxV, true
		return
	}
	if c, err := Compare(other.minV, st.minV); err == nil && c < 0 {
		st.minV = other.minV
	}
	if c, err := Compare(other.maxV, st.maxV); err == nil && c > 0 {
		st.maxV = other.maxV
	}
}

// result renders the final aggregate value for the declared output type.
func (st *aggState) result(fn AggFn, outType Type) Value {
	switch fn {
	case CountAgg:
		return IntV(st.count)
	case SumAgg:
		if outType == Int {
			return IntV(st.sumI)
		}
		return FloatV(st.sumF)
	case AvgAgg:
		if st.count == 0 {
			return FloatV(0)
		}
		return FloatV(st.sumF / float64(st.count))
	case MinAgg:
		if !st.seen {
			return zeroValue(outType)
		}
		return st.minV
	case MaxAgg:
		if !st.seen {
			return zeroValue(outType)
		}
		return st.maxV
	default:
		return Value{}
	}
}

// zeroValue is the typed zero for aggregates over empty input.
func zeroValue(t Type) Value {
	switch t {
	case Float:
		return FloatV(0)
	case String:
		return StringV("")
	default:
		return IntV(0)
	}
}

func (g *GroupAgg) materialize() error {
	type group struct {
		key    Row
		states []aggState
	}
	groups := map[string]*group{}
	var order []string
	stateBytes := 0.0
	for {
		row, ok, err := g.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		kb := ""
		for _, c := range g.groupCols {
			kb += row[c].Key() + "\x00"
		}
		gr, ok := groups[kb]
		if !ok {
			key := make(Row, len(g.groupCols))
			for i, c := range g.groupCols {
				key[i] = row[c]
			}
			gr = &group{key: key, states: make([]aggState, len(g.aggs))}
			groups[kb] = gr
			order = append(order, kb)
			stateBytes += groupStateBytes(key, len(g.aggs))
		}
		for i, a := range g.aggs {
			var v Value
			if a.Fn != CountAgg {
				v = row[a.Col]
			}
			if err := gr.states[i].observe(a.Fn, v); err != nil {
				return err
			}
		}
	}
	// Global aggregate over empty input still yields one row of zeros.
	if len(g.groupCols) == 0 && len(order) == 0 {
		groups[""] = &group{states: make([]aggState, len(g.aggs))}
		order = append(order, "")
	}
	accountingSpill(g.budget, g.meter, int64(stateBytes))
	for _, kb := range order {
		gr := groups[kb]
		row := gr.key.Clone()
		for i, a := range g.aggs {
			row = append(row, gr.states[i].result(a.Fn, g.schema[len(g.groupCols)+i].Type))
		}
		g.out = append(g.out, row)
	}
	g.done = true
	return nil
}

// Next implements Op.
func (g *GroupAgg) Next() (Row, bool, error) {
	if !g.done {
		if err := g.materialize(); err != nil {
			return nil, false, err
		}
	}
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	r := g.out[g.pos]
	g.pos++
	g.stat.RowsOut++
	return r, true, nil
}

// Stats implements Op.
func (g *GroupAgg) Stats() OpStats {
	st := g.stat
	st.Spill = g.meter.opSpill()
	return st
}

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes and stably sorts the child's rows.
type Sort struct {
	child Op
	keys  []SortKey

	out    []Row
	pos    int
	done   bool
	err    error
	budget *MemoryBudget
	meter  *spillMeter
	stat   OpStats
}

// NewSort returns a sort over child.
func NewSort(child Op, keys []SortKey) (*Sort, error) {
	cs := child.Schema()
	for _, k := range keys {
		if k.Col < 0 || k.Col >= len(cs) {
			return nil, fmt.Errorf("relational: sort column %d out of range", k.Col)
		}
	}
	return &Sort{child: child, keys: keys}, nil
}

// Schema implements Op.
func (s *Sort) Schema() Schema { return s.child.Schema() }

// SetBudget charges the materialized rows to a query memory budget
// (serial engine: accounting-only spill, rows unchanged).
func (s *Sort) SetBudget(b *MemoryBudget) {
	s.budget = b
	s.meter = newSpillMeter(b)
}

func (s *Sort) materialize() error {
	bytes := 0.0
	for {
		row, ok, err := s.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.out = append(s.out, row)
		bytes += row.EncodedBytes()
	}
	accountingSpill(s.budget, s.meter, int64(bytes))
	var sortErr error
	sort.SliceStable(s.out, func(i, j int) bool {
		for _, k := range s.keys {
			c, err := Compare(s.out[i][k.Col], s.out[j][k.Col])
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.done = true
	return nil
}

// Next implements Op.
func (s *Sort) Next() (Row, bool, error) {
	if !s.done {
		if err := s.materialize(); err != nil {
			return nil, false, err
		}
	}
	if s.pos >= len(s.out) {
		return nil, false, nil
	}
	r := s.out[s.pos]
	s.pos++
	s.stat.RowsOut++
	return r, true, nil
}

// Stats implements Op.
func (s *Sort) Stats() OpStats {
	st := s.stat
	st.Spill = s.meter.opSpill()
	return st
}

// Limit passes at most n rows.
type Limit struct {
	child Op
	n     int
	stat  OpStats
}

// NewLimit returns a limit of n rows (n < 0 means unlimited).
func NewLimit(child Op, n int) *Limit { return &Limit{child: child, n: n} }

// Schema implements Op.
func (l *Limit) Schema() Schema { return l.child.Schema() }

// Next implements Op.
func (l *Limit) Next() (Row, bool, error) {
	if l.n >= 0 && l.stat.RowsOut >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.stat.RowsOut++
	return row, true, nil
}

// Stats implements Op.
func (l *Limit) Stats() OpStats { return l.stat }

// Collect drains an operator into a relation (for tests and result
// rendering).
func Collect(op Op, name string) (*Relation, error) {
	rel := NewRelation(name, op.Schema())
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rel, nil
		}
		rel.Rows = append(rel.Rows, row)
	}
}
