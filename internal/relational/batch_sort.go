package relational

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/kernels"
)

// BatchSort materializes its child (in parallel when the child can
// partition) and sorts. A single ascending or descending key over an Int
// column is delegated to the radix sort kernel (stable, O(8n)); anything
// else falls back to the comparison sort the serial engine uses.
type BatchSort struct {
	child   BatchOp
	keys    []SortKey
	workers int
	disp    *exec.Dispatcher
	budget  *MemoryBudget
	meter   *spillMeter

	out  []*Batch
	pos  int
	done bool
	stat *opCount
}

// NewBatchSort returns a sort over child using up to workers goroutines
// to drain it (0 = NumCPU).
func NewBatchSort(child BatchOp, keys []SortKey, workers int) (*BatchSort, error) {
	cs := child.Schema()
	for _, k := range keys {
		if k.Col < 0 || k.Col >= len(cs) {
			return nil, fmt.Errorf("relational: sort column %d out of range", k.Col)
		}
	}
	return &BatchSort{child: child, keys: keys, workers: EffectiveWorkers(workers), stat: &opCount{}}, nil
}

// Schema implements BatchOp.
func (s *BatchSort) Schema() Schema { return s.child.Schema() }

// Place routes the sort kernel through a heterogeneous device
// dispatcher (nil keeps the homogeneous engine). A sort is a pipeline
// breaker, so it dispatches once, as a single whole-input morsel.
func (s *BatchSort) Place(d *exec.Dispatcher) { s.disp = d }

// SetBudget charges the sort's materialized rows to a query memory
// budget: on overflow the accumulated chunk becomes a sorted run spilled
// to the tier, and the final pass k-way merges the runs (nil keeps the
// unbudgeted engine, bit-identically).
func (s *BatchSort) SetBudget(b *MemoryBudget) {
	s.budget = b
	s.meter = newSpillMeter(b)
}

func (s *BatchSort) materialize() error {
	// Drain in parallel; static partitions keep each part's batches in
	// Seq order, and part i precedes part i+1, so concatenation is the
	// serial order.
	parts := partitionOrSelf(s.child, s.workers, true)
	outs, err := drainParallel(parts)
	if err != nil {
		return err
	}
	var batches []*Batch
	total := 0
	for _, bs := range outs {
		for _, b := range bs {
			batches = append(batches, b)
			total += b.Len()
		}
	}
	rows := make([]Row, 0, total)
	for _, b := range batches {
		n := b.Len()
		for r := 0; r < n; r++ {
			rows = append(rows, b.Row(r, nil))
		}
	}
	if s.budget != nil {
		var err error
		if rows, err = s.externalSort(rows); err != nil {
			return err
		}
	} else if err := s.disp.Run(len(rows), func() error {
		var serr error
		rows, serr = sortRows(rows, s.child.Schema(), s.keys)
		return serr
	}); err != nil {
		return err
	}
	for lo := 0; lo < len(rows); lo += BatchSize {
		hi := lo + BatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		b := NewBatch(s.child.Schema(), hi-lo)
		b.Seq = int64(lo / BatchSize)
		for _, r := range rows[lo:hi] {
			b.AppendRow(r)
		}
		s.out = append(s.out, b)
	}
	s.done = true
	return nil
}

// sortRun is one sorted run of the external sort.
type sortRun struct {
	rows    []Row
	bytes   int64
	spilled bool
}

// externalSort is the budgeted path: rows accumulate into a chunk that
// reserves budget bytes; when a reservation fails the chunk is sorted,
// priced as a run written to the spill tier, and released. The final
// chunk stays resident (hybrid — no write for state that fit), and a
// k-way merge folds the runs back, pricing the spilled ones' read-back.
// With no overflow this is one chunk sorted once: exactly the in-memory
// sort, so a generous budget is row-for-row (and dispatch-for-dispatch)
// identical to the unbudgeted engine.
func (s *BatchSort) externalSort(rows []Row) ([]Row, error) {
	schema := s.child.Schema()
	var runs []sortRun
	var chunk []Row
	var chunkBytes, reserved int64
	flushRun := func(spill bool) error {
		if len(chunk) == 0 {
			return nil
		}
		ch := chunk
		if err := s.disp.Run(len(ch), func() error {
			var serr error
			ch, serr = sortRows(ch, schema, s.keys)
			return serr
		}); err != nil {
			return err
		}
		if spill {
			s.meter.notePartition(1)
			s.meter.chargeWrite(chunkBytes)
		}
		s.budget.Release(reserved)
		runs = append(runs, sortRun{rows: ch, bytes: chunkBytes, spilled: spill})
		chunk, chunkBytes, reserved = nil, 0, 0
		return nil
	}
	for _, row := range rows {
		rb := int64(row.EncodedBytes())
		if s.budget.Reserve(rb) {
			reserved += rb
		} else if len(chunk) > 0 {
			if err := flushRun(true); err != nil {
				return nil, err
			}
			if s.budget.Reserve(rb) {
				reserved += rb
			}
			// A row that alone exceeds the budget proceeds resident
			// anyway: degradation, not a cliff.
		}
		chunk = append(chunk, row)
		chunkBytes += rb
	}
	if err := flushRun(false); err != nil {
		return nil, err
	}
	if len(runs) <= 1 {
		if len(runs) == 0 {
			return nil, nil
		}
		return runs[0].rows, nil
	}
	return s.mergeRuns(runs)
}

// mergeRuns k-way merges sorted runs. Runs hold contiguous arrival
// ranges in order, so breaking key ties by run index reproduces the
// stable sort of the whole input.
func (s *BatchSort) mergeRuns(runs []sortRun) ([]Row, error) {
	total := 0
	for _, r := range runs {
		total += len(r.rows)
		if r.spilled {
			s.meter.chargeRead(r.bytes)
		}
	}
	out := make([]Row, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r.rows) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c, err := compareByKeys(runs[best].rows[heads[best]], r.rows[heads[i]], s.keys)
			if err != nil {
				return nil, err
			}
			if c > 0 {
				best = i
			}
		}
		out = append(out, runs[best].rows[heads[best]])
		heads[best]++
	}
	return out, nil
}

// compareByKeys orders two rows by the sort keys (0 on a full tie).
func compareByKeys(a, b Row, keys []SortKey) (int, error) {
	for _, k := range keys {
		c, err := Compare(a[k.Col], b[k.Col])
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c, nil
		}
		return c, nil
	}
	return 0, nil
}

// sortRows stably sorts rows by keys, using the radix kernel for a
// single Int key.
func sortRows(rows []Row, schema Schema, keys []SortKey) ([]Row, error) {
	if len(keys) == 1 && schema[keys[0].Col].Type == Int {
		col := keys[0].Col
		desc := keys[0].Desc
		sk := make([]uint64, len(rows))
		idx := make([]int64, len(rows))
		for i, r := range rows {
			// Flip the sign bit for an order-preserving uint64 encoding;
			// invert everything for descending (stability preserved:
			// equal keys stay equal).
			k := uint64(r[col].I) ^ (1 << 63)
			if desc {
				k = ^k
			}
			sk[i] = k
			idx[i] = int64(i)
		}
		kernels.SortPairsByKey(sk, idx)
		out := make([]Row, len(rows))
		for i, j := range idx {
			out[i] = rows[j]
		}
		return out, nil
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c, err := Compare(rows[i][k.Col], rows[j][k.Col])
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return rows, nil
}

// NextBatch implements BatchOp.
func (s *BatchSort) NextBatch() (*Batch, error) {
	if !s.done {
		if err := s.materialize(); err != nil {
			return nil, err
		}
	}
	if s.pos >= len(s.out) {
		return nil, nil
	}
	b := s.out[s.pos]
	s.pos++
	s.stat.add(b.Len())
	return b, nil
}

// Stats implements BatchOp.
func (s *BatchSort) Stats() OpStats {
	st := heteroStats(s.stat, s.disp)
	st.Spill = s.meter.opSpill()
	return st
}
