package relational

import (
	"testing"
)

// Out-of-core corner cases: budgets far below one batch, adversarial
// key distributions that defeat grace partitioning, and cancellation
// racing the spill machinery. In every case the contract holds — same
// rows, bounded recursion, clean shutdown — because the budget models
// cost, never semantics.

// flatDev prices spills linearly; the relational tests only need a
// SpillDevice with nonzero, deterministic coefficients.
type flatDev struct{}

func (flatDev) Tier() string                  { return "test" }
func (flatDev) WriteSeconds(b float64) float64 { return b * 2e-9 }
func (flatDev) ReadSeconds(b float64) float64  { return b * 1e-9 }
func (flatDev) AccessJoules(b float64) float64 { return b * 1e-10 }

func tinyBudget(limit int64) *MemoryBudget { return NewMemoryBudget(limit, flatDev{}) }

// TestSpillBudgetBelowOneBatch: a budget smaller than any single
// batch — even smaller than a single row — cannot hold anything
// resident, and every operator must still produce exactly the
// unbudgeted rows.
func TestSpillBudgetBelowOneBatch(t *testing.T) {
	rel := randRel(7, 3*BatchSize+57)
	dim := randRel(8, 900)
	aggs := []AggSpec{{Fn: CountAgg, Col: -1, Name: "n"}, {Fn: SumAgg, Col: 3, Name: "qty"}}
	keys := []SortKey{{Col: 3, Desc: true}, {Col: 0}}

	for _, limit := range []int64{16, 1 << 10} {
		// Hash join: the whole build side grace-partitions.
		want := collectRows(t, RowsOf(mustJoin(t, NewBatchScan(dim), NewBatchScan(rel), 0, 0, nil)))
		got := collectRows(t, RowsOf(mustJoin(t, NewBatchScan(dim), NewBatchScan(rel), 0, 0, tinyBudget(limit))))
		requireSameRows(t, want, got)

		// Group aggregate: every generation spills immediately.
		wantAgg, err := NewBatchGroupAgg(NewBatchScan(rel), []int{1}, aggs, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotAgg, err := NewBatchGroupAgg(NewBatchScan(rel), []int{1}, aggs, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotAgg.SetBudget(tinyBudget(limit))
		requireSameRows(t, collectRows(t, RowsOf(wantAgg)), collectRows(t, RowsOf(gotAgg)))
		if st := gotAgg.Stats(); st.Spill == nil || !st.Spill.Active() {
			t.Fatalf("limit %d: aggregate never spilled: %+v", limit, st.Spill)
		}

		// Sort: runs flush constantly; a row wider than the whole budget
		// must proceed (resident, uncharged) rather than wedge.
		wantSort, err := NewBatchSort(NewBatchScan(rel), keys, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotSort, err := NewBatchSort(NewBatchScan(rel), keys, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotSort.SetBudget(tinyBudget(limit))
		requireSameRows(t, collectRows(t, RowsOf(wantSort)), collectRows(t, RowsOf(gotSort)))
		if st := gotSort.Stats(); st.Spill == nil || !st.Spill.Active() {
			t.Fatalf("limit %d: sort never went external: %+v", limit, st.Spill)
		}
	}
}

func mustJoin(t *testing.T, build, probe BatchOp, bc, pc int, budget *MemoryBudget) *BatchHashJoin {
	t.Helper()
	jn, err := NewBatchHashJoin(build, probe, bc, pc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if budget != nil {
		jn.SetBudget(budget)
	}
	return jn
}

// TestSpillGraceDepthLimit: a build side where every row shares one key
// cannot be shrunk by re-partitioning — the recursion must stop at
// maxGraceDepth and keep the oversized leaf correct, not loop forever
// or error out.
func TestSpillGraceDepthLimit(t *testing.T) {
	build := NewRelation("b", Schema{{Name: "k", Type: Int}, {Name: "pay", Type: String}})
	for i := 0; i < 4000; i++ {
		build.MustAppend(Row{IntV(42), StringV("padding-padding-padding")})
	}
	probe := NewRelation("p", Schema{{Name: "k", Type: Int}, {Name: "v", Type: Int}})
	probe.MustAppend(Row{IntV(42), IntV(1)})
	probe.MustAppend(Row{IntV(7), IntV(2)}) // no match

	want := collectRows(t, RowsOf(mustJoin(t, NewBatchScan(build), NewBatchScan(probe), 0, 0, nil)))
	if len(want) != 4000 {
		t.Fatalf("reference join produced %d rows", len(want))
	}
	jn := mustJoin(t, NewBatchScan(build), NewBatchScan(probe), 0, 0, tinyBudget(256))
	got := collectRows(t, RowsOf(jn))
	requireSameRows(t, want, got)

	st := jn.Stats()
	if st.Spill == nil || !st.Spill.Active() {
		t.Fatalf("degenerate build never spilled: %+v", st.Spill)
	}
	if st.Spill.MaxDepth > maxGraceDepth {
		t.Fatalf("grace recursion ran past the depth limit: depth %d > %d", st.Spill.MaxDepth, maxGraceDepth)
	}
	if st.Spill.MaxDepth < 2 {
		t.Fatalf("single-key build should recurse at least once past the first pass: depth %d", st.Spill.MaxDepth)
	}
}

// TestSpillUnderCancel: a failing partition must cancel a budgeted
// aggregation exactly like an unbudgeted one — the spill machinery
// holds no locks and leaks no goroutines across the abort (the race
// detector patrols this test in CI).
func TestSpillUnderCancel(t *testing.T) {
	probe := &cancelProbe{limit: 1 << 17}
	agg, err := NewBatchGroupAgg(&cancelSource{probe: probe}, nil, []AggSpec{{Fn: CountAgg, Col: -1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg.SetBudget(tinyBudget(64))
	_, err = agg.NextBatch()
	checkCancelled(t, probe, err)

	probe = &cancelProbe{limit: 1 << 17}
	empty := NewRelation("probe", probe.schema())
	jn, err := NewBatchHashJoin(&cancelSource{probe: probe}, NewBatchScan(empty), 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	jn.SetBudget(tinyBudget(64))
	_, err = jn.NextBatch()
	checkCancelled(t, probe, err)
}

// TestSpillBudgetAccounting: Reserve/Release book-keeping is exact and
// Fork shares the aggregate but not the arena.
func TestSpillBudgetAccounting(t *testing.T) {
	b := tinyBudget(100)
	if !b.Reserve(60) || !b.Reserve(40) {
		t.Fatal("reservations within the limit must succeed")
	}
	if b.Reserve(1) {
		t.Fatal("over-reservation must fail")
	}
	b.Release(50)
	if !b.Reserve(50) || b.Used() != 100 {
		t.Fatalf("release did not return bytes: used %d", b.Used())
	}

	f := b.Fork()
	if !f.Reserve(100) {
		t.Fatal("forked budget must have its own arena")
	}
	if b.Reserve(1) {
		t.Fatal("fork must not free the parent's arena")
	}

	// A nil budget is the unbudgeted no-op everywhere.
	var nb *MemoryBudget
	if !nb.Reserve(1 << 40) || nb.Fork() != nil || nb.Used() != 0 || nb.Stats().Active() {
		t.Fatal("nil budget must be a universal no-op")
	}
}
