package relational

import (
	"testing"

	"repro/internal/exec"
)

// Device-placed batch operators must emit exactly what their unplaced
// twins emit — devices model cost, not semantics — while their stats
// carry the modeled costs, and the dispatcher survives partitioning
// (morsel-parallel workers share it).

func testPlacer(t *testing.T, placement string) *exec.Placer {
	t.Helper()
	p, err := exec.NewPlacer([]string{"cpu", "gpu", "fpga"}, placement)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlacedOperatorsParity: filter + project + sort + group-agg trees,
// placed and unplaced, across forced and auto policies, serial and
// through the Exchange.
func TestPlacedOperatorsParity(t *testing.T) {
	rel := randRel(5, 3*BatchSize+77)
	ranges := []ColRange{{Col: 3, Lo: 10, HasLo: true}}
	build := func(placer *exec.Placer, workers int) Op {
		f := NewBatchFilter(NewBatchScan(rel), ranges, nil)
		pr, err := NewBatchProject(f, Schema{rel.Schema[1], {Name: "v2", Type: Float}}, []ProjExpr{
			Pick(1),
			Expr(func(r Row) (Value, error) { return FloatV(r[2].F * 2), nil }),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewBatchSort(pr, []SortKey{{Col: 0}}, workers)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewBatchGroupAgg(s, []int{0}, []AggSpec{{Fn: SumAgg, Col: 1, Name: "sum"}}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if placer != nil {
			f.Place(placer.Dispatcher(exec.Dispatch{Kind: exec.FilterWork, ExpectedRows: rel.Len()}))
			pr.Place(placer.Dispatcher(exec.Dispatch{Kind: exec.ProjectWork, Width: pr.ExprCount()}))
			s.Place(placer.Dispatcher(exec.Dispatch{Kind: exec.SortWork}))
			g.Place(placer.Dispatcher(exec.Dispatch{Kind: exec.AggWork}))
		}
		return RowsOf(NewExchange(g, workers))
	}
	want := collectRows(t, build(nil, 1))
	for _, placement := range []string{"cpu", "gpu", "fpga", "auto"} {
		for _, workers := range []int{1, 4} {
			placer := testPlacer(t, placement)
			got := collectRows(t, build(placer, workers))
			requireSameRows(t, want, got)
			stats := placer.Stats()
			if len(stats) == 0 {
				t.Fatalf("%s/%d workers: no placements recorded", placement, workers)
			}
			total := 0.0
			for _, d := range stats {
				total += d.Seconds
			}
			if total <= 0 {
				t.Fatalf("%s/%d workers: no modeled time", placement, workers)
			}
		}
	}
}

// TestPlacedFilterStats: the operator's OpStats carry the dispatcher's
// cost, with all partitions charging the one shared dispatcher.
func TestPlacedFilterStats(t *testing.T) {
	rel := randRel(9, 4*BatchSize)
	placer := testPlacer(t, "gpu")
	f := NewBatchFilter(NewBatchScan(rel), []ColRange{{Col: 3, Hi: 25, HasHi: true}}, nil)
	f.Place(placer.Dispatcher(exec.Dispatch{Kind: exec.FilterWork, ExpectedRows: rel.Len()}))
	collectRows(t, RowsOf(NewExchange(f, 4)))
	st := f.Stats()
	if st.Hetero == nil {
		t.Fatal("placed filter must report hetero stats")
	}
	if st.Hetero.Morsels != 4 || st.Hetero.Devices["gpu"] != 4 {
		t.Fatalf("all 4 morsels on the forced device: %+v", st.Hetero)
	}
	if st.Hetero.TransferSeconds <= 0 || st.Hetero.LaunchSeconds <= 0 {
		t.Fatalf("gpu morsels must charge offload overheads: %+v", st.Hetero)
	}
	// Unplaced operators stay clean.
	f2 := NewBatchFilter(NewBatchScan(rel), nil, nil)
	collectRows(t, RowsOf(f2))
	if f2.Stats().Hetero != nil {
		t.Fatal("unplaced operator must not report hetero stats")
	}
}
