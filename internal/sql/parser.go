package sql

import (
	"fmt"
	"strconv"
)

// Parse turns a SQL string into a SelectStmt AST.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when
// non-empty).
func (p *parser) at(kind TokKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", int(kind))
	}
	return Token{}, p.errf("expected %s, found %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.accept(TokSymbol, "*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokKeyword, "from"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for p.accept(TokKeyword, "join") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}
	if p.accept(TokKeyword, "where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(TokKeyword, "group") {
		if _, err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.accept(TokKeyword, "order") {
		if _, err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.accept(TokKeyword, "desc") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "limit") {
		t, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.accept(TokKeyword, "as") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: t.Text}
	if p.accept(TokKeyword, "as") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.Text
	} else if p.at(TokIdent, "") {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

// Expression grammar, lowest precedence first.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "+", L: l, R: r}
		case p.accept(TokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "*", L: l, R: r}
		case p.accept(TokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "/", L: l, R: r}
		case p.accept(TokSymbol, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately.
		switch l := e.(type) {
		case *IntLit:
			return &IntLit{V: -l.V}, nil
		case *FloatLit:
			return &FloatLit{V: -l.V}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", t.Text)
		}
		return &IntLit{V: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("invalid float %q", t.Text)
		}
		return &FloatLit{V: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{V: t.Text}, nil
	case t.Kind == TokKeyword && aggFns[t.Text]:
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		agg := &AggExpr{Fn: t.Text}
		if p.accept(TokSymbol, "*") {
			if t.Text != "count" {
				return nil, p.errf("%s(*) is not valid; only COUNT(*)", t.Text)
			}
			agg.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			agg.Arg = arg
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return agg, nil
	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokSymbol, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.Text, Name: col.Text}, nil
		}
		return &ColRef{Name: t.Text}, nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}
