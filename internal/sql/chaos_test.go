package sql

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/lifecycle"
)

const chaosQuery = "SELECT c.segment, COUNT(*) AS n, SUM(s.price) AS v " +
	"FROM sales s JOIN customers c ON s.customer_id = c.customer_id " +
	"GROUP BY c.segment ORDER BY v DESC"

// chaosEngine builds a 4-shard repartition-join engine with the given
// replication factor and fault schedule ("" = none).
func chaosEngine(t *testing.T, replication int, chaos string) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Topology = "leafspine"
	cfg.DistJoin = "repartition"
	cfg.Replication = replication
	if chaos != "" {
		plan, err := lifecycle.ParsePlan(chaos, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 7, 8000, 200)
	return eng
}

func chaosRun(t *testing.T, eng *Engine) *Result {
	t.Helper()
	res, err := eng.Session().Query(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosKillMidShuffleParity is the headline: kill a worker halfway
// through the shuffle on a replication-2 cluster. The rows must be
// identical to the failure-free run, the stats must price the recovery
// (retried fragments, nonzero modeled recovery seconds), and no
// goroutine may outlive the query.
func TestChaosKillMidShuffleParity(t *testing.T) {
	baseline := runtime.NumGoroutine()
	clean := chaosRun(t, chaosEngine(t, 2, ""))
	killed := chaosRun(t, chaosEngine(t, 2, "kill:1@0:0.5"))
	if !reflect.DeepEqual(killed.Rows.Rows, clean.Rows.Rows) {
		t.Fatalf("kill changed the rows:\n%v\nvs\n%v", killed.Rows.Rows, clean.Rows.Rows)
	}
	if killed.Net.RetriedFragments == 0 {
		t.Fatal("kill run retried no fragments")
	}
	if killed.Net.RecoverySeconds <= 0 {
		t.Fatalf("kill run modeled no recovery cost: %v", killed.Net.RecoverySeconds)
	}
	if clean.Net.RetriedFragments != 0 || clean.Net.RecoverySeconds != 0 {
		t.Fatalf("clean run reported recovery: %+v", clean.Net)
	}
	// The faulted run re-ships lost data in a recover: phase.
	found := false
	for _, p := range killed.Net.Phases {
		if strings.HasPrefix(p.Name, "recover:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recover: phase in %+v", killed.Net.Phases)
	}
	settleGoroutines(t, "chaos-kill", baseline)
}

// TestChaosReplicationOneKillFails: the identical kill without replicas
// loses the shard and must fail loudly, naming the loss.
func TestChaosReplicationOneKillFails(t *testing.T) {
	eng := chaosEngine(t, 1, "kill:1@0:0.5")
	_, err := eng.Session().Query(context.Background(), chaosQuery)
	if err == nil || !strings.Contains(err.Error(), "lost every replica") {
		t.Fatalf("replication-1 kill: %v, want lost-replica error", err)
	}
	// The failure is contained: a fresh fault-free engine on the same
	// process serves the query.
	if res := chaosRun(t, chaosEngine(t, 1, "")); res.Rows.Len() == 0 {
		t.Fatal("fault-free engine returned no rows")
	}
}

// TestChaosSpeculation: a worker straggling past the speculation
// threshold gets a duplicate fragment; the duplicate wins, the rows are
// unchanged, and the win is measured.
func TestChaosSpeculation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	clean := chaosRun(t, chaosEngine(t, 2, ""))
	slow := chaosRun(t, chaosEngine(t, 2, "slow:2@0:4"))
	if !reflect.DeepEqual(slow.Rows.Rows, clean.Rows.Rows) {
		t.Fatalf("speculation changed the rows:\n%v\nvs\n%v", slow.Rows.Rows, clean.Rows.Rows)
	}
	if slow.Net.SpeculativeWins == 0 {
		t.Fatal("straggler produced no speculative wins")
	}
	if slow.Net.RecoverySeconds <= 0 {
		t.Fatal("speculative duplicate's compute was not priced")
	}
	settleGoroutines(t, "chaos-speculation", baseline)
}

// TestChaosBitIdenticalReplay: with faults off, the lifecycle layer
// must be invisible — replication 1 keeps the pre-lifecycle code paths,
// and replication 2 with every host live places shards exactly where
// the static cluster does. Rows and every network float must match the
// default engine bit for bit.
func TestChaosBitIdenticalReplay(t *testing.T) {
	ref := chaosRun(t, chaosEngine(t, 0, ""))
	for _, replication := range []int{1, 2} {
		res := chaosRun(t, chaosEngine(t, replication, ""))
		if !reflect.DeepEqual(res.Rows.Rows, ref.Rows.Rows) {
			t.Fatalf("replication %d changed the rows", replication)
		}
		a, b := res.Net, ref.Net
		if a.NetSeconds != b.NetSeconds || a.BytesShuffled != b.BytesShuffled || a.Flows != b.Flows {
			t.Fatalf("replication %d diverged from the default engine: {%v %v %d} vs {%v %v %d}",
				replication, a.NetSeconds, a.BytesShuffled, a.Flows, b.NetSeconds, b.BytesShuffled, b.Flows)
		}
	}
}

// TestChaosDegradeAndPartition: degraded links slow the query down
// without changing its rows; a partition slows it down much more.
func TestChaosDegradeAndPartition(t *testing.T) {
	clean := chaosRun(t, chaosEngine(t, 2, ""))
	degraded := chaosRun(t, chaosEngine(t, 2, "degrade:3@0:10"))
	parted := chaosRun(t, chaosEngine(t, 2, "partition:3@0"))
	for name, res := range map[string]*Result{"degrade": degraded, "partition": parted} {
		if !reflect.DeepEqual(res.Rows.Rows, clean.Rows.Rows) {
			t.Fatalf("%s changed the rows", name)
		}
		if res.Net.NetSeconds <= clean.Net.NetSeconds {
			t.Fatalf("%s did not slow the query: %v vs clean %v", name, res.Net.NetSeconds, clean.Net.NetSeconds)
		}
	}
	if parted.Net.NetSeconds <= degraded.Net.NetSeconds {
		t.Fatalf("partition (%v) should cost more than a 10x degrade (%v)",
			parted.Net.NetSeconds, degraded.Net.NetSeconds)
	}
}

// TestChaosDrainJoinRebalance: draining a worker through the engine
// moves its resident shard bytes over the fabric and leaves queries
// correct; joining annexes a spare host; restore brings the worker
// back. A lifecycle-less engine refuses all three.
func TestChaosDrainJoinRebalance(t *testing.T) {
	eng := chaosEngine(t, 2, "")
	clean := chaosRun(t, eng) // also shards the tables so a drain has bytes to move
	if err := eng.DrainHost(1); err != nil {
		t.Fatal(err)
	}
	h := eng.Lifecycle().Health()
	if h.Drained != 1 || h.RebalancedBytes <= 0 {
		t.Fatalf("drain health: %+v", h)
	}
	if res := chaosRun(t, eng); !reflect.DeepEqual(res.Rows.Rows, clean.Rows.Rows) {
		t.Fatal("drained cluster changed the rows")
	}
	if _, err := eng.JoinHost(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RestoreHost(1); err != nil {
		t.Fatal(err)
	}
	if res := chaosRun(t, eng); !reflect.DeepEqual(res.Rows.Rows, clean.Rows.Rows) {
		t.Fatal("grown-and-restored cluster changed the rows")
	}

	plain := chaosEngine(t, 0, "")
	if err := plain.DrainHost(1); err == nil {
		t.Fatal("lifecycle-less engine must refuse DrainHost")
	}
	if _, err := plain.JoinHost(); err == nil {
		t.Fatal("lifecycle-less engine must refuse JoinHost")
	}
}

// TestChaosConfigValidation: the lifecycle knobs reject nonsense.
func TestChaosConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replication = 2
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("replication without Distributed must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Replication = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("negative replication must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Faults = &lifecycle.FaultPlan{Events: []lifecycle.Event{{Kind: lifecycle.EventKill, Worker: 0}}}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("faults without Distributed must be rejected")
	}
}
