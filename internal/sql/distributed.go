package sql

// The distributed lowering path: queries plan as per-shard batch
// fragments over the sharded catalog, with filters and projections pushed
// below every shuffle; joins choose broadcast or hash-repartition
// movement by a cost rule priced against the fabric's path capacity;
// aggregates split into per-shard partials merged at the coordinator in
// global first-seen order. Every inter-host movement — build-side
// broadcasts, repartition shuffles, the final gather — is charged as
// flows in the network simulator, so a distributed plan reports rows AND
// simulated network time, bytes shuffled and per-link utilization.
//
// Determinism: every shard-local stream carries the hidden #seq column
// (the row's index in the original relation, or the probe-side lineage
// after joins) and stays seq-ascending through every operator, so the
// coordinator's k-way merge — and the partial-agg first-seen merge —
// reproduce the single-node engine's output row-for-row.

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/lifecycle"
	"repro/internal/relational"
)

// distRoot is the lazy root of a distributed plan: the whole distributed
// execution (fragments, shuffles, gather, coordinator finalization) runs
// on first Next, then the result streams row-at-a-time.
type distRoot struct {
	schema relational.Schema
	run    func() (*relational.Relation, *dist.QueryStats, error)

	started bool
	rel     *relational.Relation
	stats   *dist.QueryStats
	err     error
	pos     int
	stat    relational.OpStats
}

// Schema implements relational.Op.
func (d *distRoot) Schema() relational.Schema { return d.schema }

// Next implements relational.Op.
func (d *distRoot) Next() (relational.Row, bool, error) {
	if !d.started {
		d.started = true
		d.rel, d.stats, d.err = d.run()
	}
	if d.err != nil {
		return nil, false, d.err
	}
	if d.pos >= len(d.rel.Rows) {
		return nil, false, nil
	}
	r := d.rel.Rows[d.pos]
	d.pos++
	d.stat.RowsOut++
	return r, true, nil
}

// Stats implements relational.Op.
func (d *distRoot) Stats() relational.OpStats { return d.stat }

// seqColumn is the schema entry of the hidden sequence column.
func seqColumn() relational.Column {
	return relational.Column{Name: dist.SeqColName, Type: relational.Int}
}

// withSeq appends the hidden sequence column to a visible schema.
func withSeq(schema relational.Schema) relational.Schema {
	return append(append(relational.Schema{}, schema...), seqColumn())
}

// decorFn is one pending shard-local operator: it wraps the shard's
// current stream (whose schema is the visible columns plus trailing
// #seq). The shard index lets join decorators bind shard-specific build
// sides.
type decorFn func(shard int, op relational.BatchOp) (relational.BatchOp, error)

// distStream is the runtime state of the partitioned intermediate: the
// materialized per-shard relations plus pending decorators applied when
// the next stage builds its fragments. Every base relation and every
// decorated stream is #seq-ascending.
type distStream struct {
	base   []*relational.Relation
	decor  []decorFn
	schema relational.Schema // visible columns (excludes #seq)
	// cancel, when set, guards every built fragment so external
	// cancellation reaches each shard worker at its next batch boundary.
	cancel *relational.CancelToken
	// joined marks a stream that passed through a join: fan-out
	// duplicates its seq tags, so the stream must be re-sequenced before
	// it moves between shards again.
	joined bool
	// dx links back to the execution context so materialize can route
	// fragment rounds through the lifecycle guard (straggler speculation,
	// replica-aware dispatch) when one is active.
	dx *distExec
}

func (st *distStream) fragment(s int) (relational.BatchOp, error) {
	var op relational.BatchOp = relational.NewBatchScan(st.base[s])
	for _, d := range st.decor {
		var err error
		op, err = d(s, op)
		if err != nil {
			return nil, err
		}
	}
	return relational.GuardBatch(op, st.cancel), nil
}

func (st *distStream) fragments() ([]relational.BatchOp, error) {
	out := make([]relational.BatchOp, len(st.base))
	for s := range st.base {
		var err error
		if out[s], err = st.fragment(s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// materialize runs the pending decorators on every shard (in parallel,
// one simulated host each) and replaces the base relations. With an
// active lifecycle guard the round runs through it: a straggling shard
// gets a speculative duplicate (the guard rebuilds the fragment via
// st.fragment), and fragments follow live replicas.
func (st *distStream) materialize(workers int) error {
	if len(st.decor) == 0 {
		return nil
	}
	var rels []*relational.Relation
	var err error
	if st.dx != nil && st.dx.guard != nil {
		rels, err = st.dx.guard.RunFragments("frag", len(st.base), workers, st.fragment)
	} else {
		var frags []relational.BatchOp
		if frags, err = st.fragments(); err != nil {
			return err
		}
		rels, err = dist.RunFragments("frag", frags, workers)
	}
	if err != nil {
		return err
	}
	st.base, st.decor = rels, nil
	return nil
}

// reseq replaces the stream's seq tags with their global merge rank,
// restoring uniqueness after join fan-out duplicated them (duplicates
// are confined to one shard, so the k-way merge is still the exact
// serial order). It relabels tags in place without moving row data —
// the real-system analogue is a counts-only prefix exchange — so no
// flow is charged.
func (st *distStream) reseq(workers int) error {
	if err := st.materialize(workers); err != nil {
		return err
	}
	seqCol := len(st.schema)
	var rank int64
	dist.ForEachBySeq(st.base, seqCol, func(shard, row int) {
		st.base[shard].Rows[row][seqCol] = relational.IntV(rank)
		rank++
	})
	for _, rel := range st.base {
		rel.InvalidateColumnar()
	}
	st.joined = false
	return nil
}

// bytes returns the per-shard serialized sizes of the materialized base.
func (st *distStream) bytes() []float64 {
	out := make([]float64, len(st.base))
	for i, r := range st.base {
		out[i] = r.EncodedBytes()
	}
	return out
}

// pickDecor projects every shard stream to the given child columns.
func pickDecor(schema relational.Schema, picks []int) decorFn {
	return func(_ int, op relational.BatchOp) (relational.BatchOp, error) {
		return pickProject(op, schema, picks)
	}
}

func pickProject(op relational.BatchOp, schema relational.Schema, picks []int) (relational.BatchOp, error) {
	pe := make([]relational.ProjExpr, len(picks))
	for i, idx := range picks {
		pe[i] = relational.Pick(idx)
	}
	return relational.NewBatchProject(op, schema, pe)
}

// filterDecor applies kernel ranges plus a residual predicate. disps,
// when non-nil, routes shard s's filter morsels through disps[s] — the
// per-worker-host device dispatcher.
func filterDecor(ranges []relational.ColRange, pred relational.Predicate, disps []*exec.Dispatcher) decorFn {
	return func(s int, op relational.BatchOp) (relational.BatchOp, error) {
		bf := relational.NewBatchFilter(op, ranges, pred)
		if s < len(disps) && disps[s] != nil {
			bf.Place(disps[s])
		}
		return bf, nil
	}
}

// exprProjDecor projects to schema (which already carries the trailing
// #seq column): exprs/picks produce the visible columns, and the child's
// seq column (at childSeqIdx) passes through last. disps, when non-nil,
// places each shard's computed-expression morsels on its own devices
// (pure pass-through projections are never placed).
func exprProjDecor(schema relational.Schema, exprs []relational.Projector, picks []int, childSeqIdx int, disps []*exec.Dispatcher) decorFn {
	return func(s int, op relational.BatchOp) (relational.BatchOp, error) {
		pe := make([]relational.ProjExpr, 0, len(schema))
		for i := range exprs {
			if picks != nil && picks[i] >= 0 {
				pe = append(pe, relational.Pick(picks[i]))
			} else {
				pe = append(pe, relational.Expr(exprs[i]))
			}
		}
		pe = append(pe, relational.Pick(childSeqIdx))
		bp, err := relational.NewBatchProject(op, schema, pe)
		if err != nil {
			return nil, err
		}
		if s < len(disps) && disps[s] != nil && bp.ExprCount() > 0 {
			bp.Place(disps[s])
		}
		return bp, nil
	}
}

// limitDecor caps each shard's stream at n rows. Correct below a gather:
// the merged global prefix of length n draws at most the first n rows of
// any one shard stream.
func limitDecor(n int) decorFn {
	return func(_ int, op relational.BatchOp) (relational.BatchOp, error) {
		return relational.NewBatchLimit(op, n), nil
	}
}

// distLegPlan is one table leg's compiled shard-local fragment: prune
// picks, then the pushed-down filter.
type distLegPlan struct {
	table  *dist.ShardedTable
	prune  []int // original column indexes kept
	schema relational.Schema
	ranges []relational.ColRange
	pred   relational.Predicate
	// shardRows is the expected per-shard input cardinality, the setup
	// amortization hint for this leg's placed kernels.
	shardRows int
}

// stream builds the leg's distStream over its table shards.
func (lp *distLegPlan) stream(dx *distExec) *distStream {
	st := &distStream{base: lp.table.Shards, schema: lp.schema, cancel: dx.cancel, dx: dx}
	picks := append(append([]int{}, lp.prune...), lp.table.SeqCol())
	st.decor = append(st.decor, pickDecor(withSeq(lp.schema), picks))
	if lp.ranges != nil || lp.pred != nil {
		st.decor = append(st.decor, filterDecor(lp.ranges, lp.pred,
			dx.dispatchers(exec.Dispatch{Kind: exec.FilterWork, ExpectedRows: lp.shardRows})))
	}
	return st
}

// distJoinPlan is one compiled join stage. swapped mirrors the
// single-node build-side choice exactly, so the probe side — and with it
// the output row order — matches the single-node engine.
type distJoinPlan struct {
	rightIdx          int
	leftCol, rightCol int
	swapped           bool
	rightSchema       relational.Schema
	residualRanges    []relational.ColRange
	residualPred      relational.Predicate
}

// distExec carries the runtime context of one distributed execution:
// the placement, the engine's shared fabric the run registers with, the
// cancellation token guarding fragments and phase waits, and the
// session's QoS identity stamped onto every flow the run charges.
type distExec struct {
	cluster  *dist.Cluster
	fabric   *dist.Fabric
	cancel   *relational.CancelToken
	workers  int
	distJoin string // "", "auto", "broadcast", "repartition"
	class    string
	weight   float64
	// chunkRows > 0 pipelines every movement phase: payloads split into
	// seq-rank chunks admitted as eager fabric sub-rounds while the
	// receiving side digests the previous chunk (incremental hash builds,
	// generation-wise partial-agg folds, streaming seq merge). 0 is the
	// bulk engine, bit-identical with pre-pipeline code paths.
	chunkRows int
	// place holds one device placer per shard (nil on the homogeneous
	// engine): forks of the query placer, so every simulated worker
	// host decides morsel placement independently on its own device
	// state while charging one query-level aggregate. shardRowHint is
	// the planner's post-join per-shard cardinality estimate, the setup
	// amortization hint for kernels placed above the joins (mirroring
	// the single-node lowerer's hintRows).
	place        []*exec.Placer
	shardRowHint int
	// budget is the query-level memory budget (nil on the unbudgeted
	// engine); shardBudget holds its per-shard forks, so every simulated
	// worker host accounts its fragment state against its own host
	// memory while spill totals fold into the one query aggregate —
	// exactly the placer/fork relationship, for memory.
	budget      *relational.MemoryBudget
	shardBudget []*relational.MemoryBudget
	// lcm is the engine's elastic-membership manager (nil on static,
	// failure-free clusters — the common case, which keeps every phase on
	// the pre-lifecycle code paths bit-identically). guard is the
	// per-execution lifecycle guard attachGuard wires to the query run:
	// it resolves shards to live replicas and lands injected faults.
	lcm   *lifecycle.Manager
	guard *lifecycle.Guard
}

// attachGuard wires the execution into the elastic cluster view: the
// guard installs itself as qr's host resolver and every later phase and
// fragment round routes through it. A nil manager leaves the run on the
// static placement.
func (e *distExec) attachGuard(qr *dist.QueryRun) {
	if e.lcm != nil {
		e.guard = e.lcm.NewGuard(qr)
	}
}

// runPhase routes one bulk movement phase through the lifecycle guard
// when one is active (fault injection, replica-aware endpoints) and
// straight to the query run otherwise — the pre-lifecycle path,
// bit-identical.
func (e *distExec) runPhase(qr *dist.QueryRun, name string, transfers []dist.Transfer, class string, weightScale float64) error {
	if e.guard != nil {
		return e.guard.RunPhase(name, transfers, class, weightScale)
	}
	return qr.RunPhaseQoS(name, transfers, class, weightScale)
}

// runPipelined is runPhase for chunked movement phases.
func (e *distExec) runPipelined(qr *dist.QueryRun, name string, chunks []dist.Chunk, class string, weightScale float64, consume func(k int) error) error {
	if e.guard != nil {
		return e.guard.RunPipelined(name, chunks, class, weightScale, consume)
	}
	return qr.RunPipelined(name, chunks, class, weightScale, consume)
}

// dispatchers builds one per-shard dispatcher for a kernel, or nil on
// the homogeneous engine. Each distStream decorator that lowers a
// placeable operator calls it once, so a shard's partitions share one
// dispatcher exactly as on the single-node engine.
func (e *distExec) dispatchers(cfg exec.Dispatch) []*exec.Dispatcher {
	if e.place == nil {
		return nil
	}
	out := make([]*exec.Dispatcher, len(e.place))
	for i, p := range e.place {
		out[i] = p.Dispatcher(cfg)
	}
	return out
}

// finishStats finalizes a run's network stats and folds in the modeled
// out-of-core I/O time the shard budgets accumulated (zero-valued on the
// unbudgeted engine).
func (e *distExec) finishStats(qr *dist.QueryRun) *dist.QueryStats {
	qs := qr.Finish()
	if e.budget != nil {
		sp := e.budget.Stats()
		qs.SpillSeconds = sp.WriteSeconds + sp.ReadSeconds
	}
	return qs
}

// newQuery registers one execution with the shared fabric under the
// session's QoS identity. Callers must Close (or Finish) the returned
// run on every path: an abandoned registration would park concurrent
// queries at the admission barrier.
func (e *distExec) newQuery() *dist.QueryRun {
	return e.fabric.NewQueryQoS(e.cancel, e.class, e.weight)
}

// chooseMovement picks broadcast vs repartition for one join by pricing
// both movements' slowest sender against the fabric's path capacity.
func (e *distExec) chooseMovement(buildBytes, probeBytes []float64) string {
	if e.distJoin == "broadcast" || e.distJoin == "repartition" {
		return e.distJoin
	}
	s := float64(e.cluster.Shards())
	bcast := make([]float64, len(buildBytes))
	repart := make([]float64, len(buildBytes))
	for i := range buildBytes {
		bcast[i] = buildBytes[i] * (s - 1)
		repart[i] = (buildBytes[i] + probeBytes[i]) * (s - 1) / s
	}
	if e.cluster.EstimateFanoutSeconds(bcast) <= e.cluster.EstimateFanoutSeconds(repart) {
		return "broadcast"
	}
	return "repartition"
}

// joinStage runs one join's data movement and appends the join decorator:
// the probe side's stream (and seq lineage) becomes the new current
// stream, exactly as the single-node probe side drives its output order.
func (e *distExec) joinStage(qr *dist.QueryRun, st *distStream, right *distStream, jp *distJoinPlan, ji int) (*distStream, error) {
	if err := st.materialize(e.workers); err != nil {
		return nil, err
	}
	if st.joined {
		// The current stream is about to move (or serve as a merged
		// build side); restore unique seq tags first.
		if err := st.reseq(e.workers); err != nil {
			return nil, err
		}
	}
	if err := right.materialize(e.workers); err != nil {
		return nil, err
	}
	l, r := len(st.schema), len(jp.rightSchema)
	combined := append(append(relational.Schema{}, st.schema...), jp.rightSchema...)
	cancel := st.cancel

	// Normalize to build/probe roles, mirroring the single-node planner:
	// default build = current stream, probe = right leg; swapped flips
	// both. The probe side stays partitioned and its seq lineage defines
	// the output order.
	build, probe := st, right
	buildCol, probeCol := jp.leftCol, jp.rightCol
	if jp.swapped {
		build, probe = right, st
		buildCol, probeCol = jp.rightCol, jp.leftCol
	}
	buildWidth := len(build.schema)
	movement := e.chooseMovement(build.bytes(), probe.bytes())

	// buildFor lowers shard s's build stream (the bulk path); preFor,
	// when set instead, yields the incrementally appended hash table the
	// pipelined movement already filled (see RunPipelined below).
	var buildFor func(s int) (relational.BatchOp, error)
	var preFor func(s int) *relational.HashBuild
	out := &distStream{schema: combined, cancel: cancel, joined: true, dx: e}
	switch {
	case movement == "broadcast" && e.chunkRows > 0:
		// Pipelined replication: the merged build side streams out in
		// seq-rank chunks, and the shared hash table fills while the next
		// chunk's flows are in flight. Appending chunk prefixes of the
		// seq-merged relation reproduces the bulk build's insertion order
		// exactly.
		merged, chunks, bounds := dist.BroadcastChunks(build.base, buildWidth, true, e.chunkRows)
		pre, err := relational.NewHashBuild(merged.Schema, buildCol)
		if err != nil {
			return nil, err
		}
		prev := 0
		consume := func(k int) error {
			pre.Append(merged.Rows[prev:bounds[k]])
			prev = bounds[k]
			return nil
		}
		if err := e.runPipelined(qr, fmt.Sprintf("broadcast#%d", ji), chunks, "", 0, consume); err != nil {
			return nil, err
		}
		out.base = probe.base
		preFor = func(int) *relational.HashBuild { return pre }
	case movement == "broadcast":
		// Replicate the whole build side to every worker; the probe side
		// does not move.
		buildRel, transfers := dist.Broadcast(build.base, buildWidth, true)
		if err := e.runPhase(qr, fmt.Sprintf("broadcast#%d", ji), transfers, "", 0); err != nil {
			return nil, err
		}
		out.base = probe.base
		buildFor = func(int) (relational.BatchOp, error) {
			return relational.NewBatchScan(buildRel), nil
		}
	case e.chunkRows > 0:
		// Pipelined shuffle: both sides' buckets move in seq-rank chunks
		// (build transfers ahead of probe transfers within each chunk,
		// exactly the bulk phase's flow order), and every destination's
		// hash table inserts its landed build prefix while the next chunk
		// drains. Probe rows charge consumer compute too — they must be
		// received and staged into their buckets before the probe scan —
		// though only the build side feeds the incremental hash table.
		buildB, bChunks, bCum := dist.RepartitionChunks(build.base, buildCol, buildWidth, e.chunkRows)
		probeB, pChunks, _ := dist.RepartitionChunks(probe.base, probeCol, len(probe.schema), e.chunkRows)
		n := len(bChunks)
		if len(pChunks) > n {
			n = len(pChunks)
		}
		chunks := make([]dist.Chunk, n)
		for k := range chunks {
			var ts []dist.Transfer
			if k < len(bChunks) {
				ts = append(ts, bChunks[k].Transfers...)
				chunks[k].ComputeBytes += bChunks[k].ComputeBytes
			}
			if k < len(pChunks) {
				ts = append(ts, pChunks[k].Transfers...)
				chunks[k].ComputeBytes += pChunks[k].ComputeBytes
			}
			chunks[k].Transfers = ts
		}
		buildVisible := build.schema
		pres := make([]*relational.HashBuild, len(buildB))
		for i := range pres {
			var err error
			if pres[i], err = relational.NewHashBuild(buildVisible, buildCol); err != nil {
				return nil, err
			}
		}
		prev := make([]int, len(buildB))
		consume := func(k int) error {
			if k >= len(bCum) {
				return nil
			}
			for d := range buildB {
				rows := buildB[d].Rows[prev[d]:bCum[k][d]]
				if len(rows) == 0 {
					continue
				}
				stripped := make([]relational.Row, len(rows))
				for i, r := range rows {
					stripped[i] = r[:buildWidth]
				}
				pres[d].Append(stripped)
				prev[d] = bCum[k][d]
			}
			return nil
		}
		if err := e.runPipelined(qr, fmt.Sprintf("shuffle#%d", ji), chunks, "", 0, consume); err != nil {
			return nil, err
		}
		out.base = probeB
		preFor = func(s int) *relational.HashBuild { return pres[s] }
	default:
		// Hash-repartition both sides on the join key; bucket p's build
		// rows arrive seq-sorted, preserving the serial insertion order.
		buildB, tA := dist.Repartition(build.base, buildCol, buildWidth)
		probeB, tB := dist.Repartition(probe.base, probeCol, len(probe.schema))
		if err := e.runPhase(qr, fmt.Sprintf("shuffle#%d", ji), append(tA, tB...), "", 0); err != nil {
			return nil, err
		}
		out.base = probeB
		buildVisible := build.schema
		buildFor = func(s int) (relational.BatchOp, error) {
			return pickProject(relational.NewBatchScan(buildB[s]), buildVisible, identityPicks(buildWidth))
		}
	}
	workers, swapped := e.workers, jp.swapped
	out.decor = append(out.decor, func(s int, op relational.BatchOp) (relational.BatchOp, error) {
		var jn *relational.BatchHashJoin
		if preFor != nil {
			var err error
			jn, err = relational.NewBatchHashJoinPrebuilt(preFor(s), op, probeCol, workers)
			if err != nil {
				return nil, err
			}
		} else {
			bop, err := buildFor(s)
			if err != nil {
				return nil, err
			}
			jn, err = relational.NewBatchHashJoin(bop, op, buildCol, probeCol, workers)
			if err != nil {
				return nil, err
			}
		}
		if s < len(e.shardBudget) && e.shardBudget[s] != nil {
			jn.SetBudget(e.shardBudget[s])
		}
		if !swapped {
			// Output is left ++ (right ++ seq): already canonical.
			return jn, nil
		}
		// Restore canonical column order: right ++ left ++ seq becomes
		// left ++ right ++ seq.
		picks := make([]int, 0, l+r+1)
		for i := 0; i < l; i++ {
			picks = append(picks, r+i)
		}
		for i := 0; i < r; i++ {
			picks = append(picks, i)
		}
		picks = append(picks, r+l)
		return pickProject(jn, withSeq(combined), picks)
	})
	if jp.residualRanges != nil || jp.residualPred != nil {
		out.decor = append(out.decor, filterDecor(jp.residualRanges, jp.residualPred,
			e.dispatchers(exec.Dispatch{Kind: exec.FilterWork, ExpectedRows: e.shardRowHint})))
	}
	return out, nil
}

// countComputed reports how many projection outputs are computed
// expressions (not pass-through picks) — the placed kernel's width.
func countComputed(picks []int, n int) int {
	if picks == nil {
		return n
	}
	c := 0
	for _, p := range picks {
		if p < 0 {
			c++
		}
	}
	return c
}

func identityPicks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// planDistStmt is the distributed counterpart of planStmt. All analysis
// and compilation happens at plan time (so Plan surfaces errors and
// Explain describes the shape); data movement and fragment execution run
// lazily when the plan's root is first pulled.
func (pl *planner) planDistStmt(stmt *SelectStmt) (*Planned, error) {
	switch pl.cfg.DistJoin {
	case "", "auto", "broadcast", "repartition":
	default:
		return nil, fmt.Errorf("sql: unknown DistJoin strategy %q", pl.cfg.DistJoin)
	}
	cluster, fabric, err := pl.eng.clusterFor(pl.cfg)
	if err != nil {
		return nil, err
	}
	shards := cluster.Shards()
	workers := pl.cfg.Workers
	p := &Planned{TaggedOps: map[string]relational.Op{}}
	shardHow := "range"
	if pl.cfg.ShardHash {
		shardHow = "hash"
	}
	p.Steps = append(p.Steps, fmt.Sprintf("engine: distributed (%d shards, %s-sharded, %s fabric; batch fragments, %d workers/host)",
		shards, shardHow, cluster.Topology, relational.EffectiveWorkers(workers)))

	legs, err := pl.resolveLegs(stmt)
	if err != nil {
		return nil, err
	}
	if !stmt.Star {
		refs := collectQueryCols(stmt)
		for _, leg := range legs {
			pruneLeg(leg, refs)
		}
	}

	// Pushdown split and size estimates come from the same helpers the
	// single-node planner uses: the distributed plan must mirror its
	// build-side choice to keep probe-side output order identical.
	residual := pl.splitWhere(stmt, legs)

	legPlans := make([]*distLegPlan, len(legs))
	legSizes := make([]int, len(legs))
	for i, leg := range legs {
		lp := &distLegPlan{table: pl.eng.shardedTable(leg.rel, shards, pl.cfg.ShardHash), schema: leg.schema}
		if leg.prune != nil {
			lp.prune = leg.prune
			p.Steps = append(p.Steps, fmt.Sprintf("prune %s to %d/%d columns", leg.alias, len(leg.prune), len(leg.rel.Schema)))
		} else {
			lp.prune = identityPicks(len(leg.rel.Schema))
		}
		if len(leg.filter) > 0 {
			sc := &scope{}
			sc.addTable(leg.alias, leg.schema, 0)
			lp.ranges, lp.pred, err = lowerBatchFilter(sc, joinConjuncts(leg.filter))
			if err != nil {
				return nil, err
			}
			p.Steps = append(p.Steps, fmt.Sprintf("pushdown filter on %s below shuffle: %s", leg.alias, joinConjuncts(leg.filter).Render()))
		}
		lp.shardRows = (leg.rel.Len() + shards - 1) / shards
		legPlans[i] = lp
		legSizes[i] = legSizeEstimate(leg)
		p.Steps = append(p.Steps, fmt.Sprintf("scan %s as %s (%d rows over %d shards)", leg.rel.Name, leg.alias, leg.rel.Len(), shards))
	}

	// Left-deep joins, with the single-node build-side rule.
	curScope := &scope{}
	curScope.addTable(legs[0].alias, legs[0].schema, 0)
	curWidth := len(legs[0].schema)
	curSize := legSizes[0]
	joinPlans := make([]*distJoinPlan, 0, len(stmt.Joins))
	for ji, j := range stmt.Joins {
		leg := legs[ji+1]
		rightScope := &scope{}
		rightScope.addTable(leg.alias, leg.schema, 0)
		leftCol, rightCol, rest, err := pl.splitJoinOn(j.On, curScope, rightScope)
		if err != nil {
			return nil, err
		}
		jp := &distJoinPlan{
			rightIdx: ji + 1, leftCol: leftCol, rightCol: rightCol,
			swapped:     pl.buildOnRight(legSizes[ji+1], curSize),
			rightSchema: leg.schema,
		}
		curScope.addTable(leg.alias, leg.schema, curWidth)
		curWidth += len(leg.schema)
		if rest != nil {
			jp.residualRanges, jp.residualPred, err = lowerBatchFilter(curScope, rest)
			if err != nil {
				return nil, err
			}
			p.Steps = append(p.Steps, "post-join filter: "+rest.Render())
		}
		curSize = advanceJoinSize(curSize, legSizes[ji+1], leg.rel.Len())
		joinPlans = append(joinPlans, jp)
		movement := pl.cfg.DistJoin
		if movement == "" {
			movement = "auto"
		}
		p.Steps = append(p.Steps, fmt.Sprintf("hash join #%d on %s (build=%s, movement=%s)",
			ji, j.On.Render(), map[bool]string{true: leg.alias, false: "left"}[jp.swapped], movement))
	}

	var resRanges []relational.ColRange
	var resPred relational.Predicate
	if len(residual) > 0 {
		resRanges, resPred, err = lowerBatchFilter(curScope, joinConjuncts(residual))
		if err != nil {
			return nil, err
		}
		p.Steps = append(p.Steps, "filter: "+joinConjuncts(residual).Render())
	}

	var combined relational.Schema
	for _, leg := range legs {
		combined = append(combined, leg.schema...)
	}

	dx := &distExec{
		cluster: cluster, fabric: fabric, cancel: pl.cancel,
		workers: workers, distJoin: pl.cfg.DistJoin,
		class: pl.class, weight: pl.weight,
		chunkRows: pl.cfg.PipelineChunkRows,
		lcm:       pl.eng.Lifecycle(),
	}
	if dx.chunkRows > 0 {
		p.Steps = append(p.Steps, fmt.Sprintf("pipeline: chunked movement (%d rows/chunk, eager sub-rounds; gather weight x%d)",
			dx.chunkRows, dist.GatherWeightBoost))
	}
	// Heterogeneous placement: the query placer forks once per shard, so
	// each simulated worker host places its fragment morsels
	// independently (own FPGA configuration state) while charging the
	// one query-level Result.Devices aggregate.
	placer, err := pl.heteroPlacer()
	if err != nil {
		return nil, err
	}
	if placer != nil {
		p.placer = placer
		dx.place = make([]*exec.Placer, shards)
		for i := range dx.place {
			dx.place[i] = placer.Fork()
		}
		p.Steps = append(p.Steps, fmt.Sprintf("hetero: %s (independent per-shard placement)", placer))
	}
	// Out-of-core budgeting: the query budget forks once per shard, so
	// each simulated worker host spills against its own host memory
	// while the query reports one spill total (Result.Spill) and one
	// SpillSeconds line in its network stats.
	budget, err := pl.spillBudget()
	if err != nil {
		return nil, err
	}
	if budget != nil {
		p.budget, dx.budget = budget, budget
		dx.shardBudget = make([]*relational.MemoryBudget, shards)
		for i := range dx.shardBudget {
			dx.shardBudget[i] = budget.Fork()
		}
		p.Steps = append(p.Steps, fmt.Sprintf("spill: %s (independent per-shard budgets)", budget))
	}
	// runJoins executes the shared front of the query: leg fragments,
	// join movements, residual filter.
	runJoins := func(qr *dist.QueryRun) (*distStream, error) {
		st := legPlans[0].stream(dx)
		for ji, jp := range joinPlans {
			var err error
			st, err = dx.joinStage(qr, st, legPlans[jp.rightIdx].stream(dx), jp, ji)
			if err != nil {
				return nil, err
			}
		}
		if resRanges != nil || resPred != nil {
			st.decor = append(st.decor, filterDecor(resRanges, resPred,
				dx.dispatchers(exec.Dispatch{Kind: exec.FilterWork, ExpectedRows: dx.shardRowHint})))
		}
		return st, nil
	}

	if stmt.HasAggregates() {
		return pl.planDistAggregate(stmt, p, curScope, combined, dx, runJoins)
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("sql: HAVING requires aggregation")
	}
	return pl.planDistSimple(stmt, p, curScope, combined, dx, runJoins)
}

// planDistAggregate splits the aggregate: per-shard partials over the
// pre-projection (pushed below the gather), a partial-state gather, and
// the coordinator's first-seen merge feeding the single-node post-plan
// (HAVING / ORDER BY / projection / LIMIT).
func (pl *planner) planDistAggregate(stmt *SelectStmt, p *Planned, sc *scope, combined relational.Schema,
	dx *distExec, runJoins func(*dist.QueryRun) (*distStream, error)) (*Planned, error) {
	if stmt.Star {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
	}
	ap, err := buildAggPlan(stmt, sc, combined)
	if err != nil {
		return nil, err
	}
	aggOutSchema, err := relational.AggOutputSchema(ap.preSchema, ap.groupCols, ap.aggSpecs)
	if err != nil {
		return nil, err
	}
	p.Steps = append(p.Steps, fmt.Sprintf("partial aggregate per shard (%d group cols, %d aggregates)", len(ap.groupCols), len(ap.aggSpecs)))
	p.Steps = append(p.Steps, "gather partials to coordinator; merge in first-seen order")

	// Dry-run the coordinator plan: surfaces compile errors at plan time
	// and yields the output schema and the coordinator's step lines.
	dry := &Planned{TaggedOps: map[string]relational.Op{}}
	dryRel := relational.NewRelation("agg", aggOutSchema)
	dry, err = pl.finishAggregate(stmt, dry, &lowerer{}, execNode{row: relational.NewScan(dryRel)}, ap)
	if err != nil {
		return nil, err
	}
	for _, s := range dry.Steps {
		p.Steps = append(p.Steps, "coordinator "+s)
	}

	run := func() (*relational.Relation, *dist.QueryStats, error) {
		qr := dx.newQuery()
		// Close on every path: a run that errors out mid-phase must still
		// deregister from the shared fabric, or concurrent queries would
		// wait for it at the admission barrier forever.
		defer qr.Close()
		dx.attachGuard(qr)
		st, err := runJoins(qr)
		if err != nil {
			return nil, nil, err
		}
		st.decor = append(st.decor, exprProjDecor(withSeq(ap.preSchema), ap.preExprs, ap.prePicks, len(st.schema),
			dx.dispatchers(exec.Dispatch{Kind: exec.ProjectWork, ExpectedRows: dx.shardRowHint, Width: countComputed(ap.prePicks, len(ap.preExprs))})))
		frags, err := st.fragments()
		if err != nil {
			return nil, nil, err
		}
		partials, err := dist.RunPartialAggs(frags, ap.groupCols, ap.aggSpecs, len(ap.preSchema), dx.workers,
			dx.dispatchers(exec.Dispatch{Kind: exec.AggWork, ExpectedRows: dx.shardRowHint}), dx.shardBudget)
		if err != nil {
			return nil, nil, err
		}
		var merged *relational.PartialAgg
		if dx.chunkRows > 0 {
			// Pipelined gather: each shard's partial splits into
			// generations of at most chunkRows groups, shipped as chunks;
			// per-shard accumulators fold generation k while generation
			// k+1 is in flight, reconstructing each shard's partial
			// exactly (same group states, same first-seen order), so the
			// final shard-order fold is bit-identical to the bulk merge.
			subs := make([][]*relational.PartialAgg, len(partials))
			for i, pa := range partials {
				subs[i] = pa.SplitChunks(dx.chunkRows)
			}
			acc := make([]*relational.PartialAgg, len(partials))
			for i := range acc {
				acc[i] = relational.NewPartialAgg(ap.groupCols, ap.aggSpecs)
			}
			consume := func(k int) error {
				for i := range subs {
					if k < len(subs[i]) {
						acc[i].MergeFrom(subs[i][k])
					}
				}
				return nil
			}
			chunks := dist.PartialGatherChunks(subs)
			if err := dx.runPipelined(qr, "gather", chunks, dist.GatherClass, dist.GatherWeightBoost, consume); err != nil {
				return nil, nil, err
			}
			merged = acc[0]
			for _, pa := range acc[1:] {
				merged.MergeFrom(pa)
			}
		} else {
			bytes := make([]float64, len(partials))
			for i, pa := range partials {
				bytes[i] = pa.EncodedBytes()
			}
			if err := dx.runPhase(qr, "gather", dist.GatherTransfers(bytes), dist.GatherClass, dist.GatherWeightBoost); err != nil {
				return nil, nil, err
			}
			merged = partials[0]
			for _, pa := range partials[1:] {
				merged.MergeFrom(pa)
			}
		}
		aggRel := relational.NewRelation("agg", aggOutSchema)
		aggRel.Rows = merged.EmitRows(aggOutSchema, true)
		fin := &Planned{TaggedOps: map[string]relational.Op{}}
		// The coordinator's post-plan (HAVING/sort/project/limit) charges
		// the query-level budget: coordinator memory is host memory too.
		fin, err = pl.finishAggregate(stmt, fin, &lowerer{budget: dx.budget}, execNode{row: relational.NewScan(aggRel)}, ap)
		if err != nil {
			return nil, nil, err
		}
		res, err := relational.Collect(fin.Root, "result")
		if err != nil {
			return nil, nil, err
		}
		return res, dx.finishStats(qr), nil
	}
	root := &distRoot{schema: dry.Root.Schema(), run: run}
	p.dist, p.Root = root, root
	return p, nil
}

// planDistSimple handles non-aggregate queries: the final projection (and
// any ORDER BY key columns) computes per shard below the gather; the
// coordinator merges by seq — exactly the serial row order — then sorts,
// strips keys and applies LIMIT. Without ORDER BY each shard also caps
// its stream at LIMIT locally.
func (pl *planner) planDistSimple(stmt *SelectStmt, p *Planned, sc *scope, combined relational.Schema,
	dx *distExec, runJoins func(*dist.QueryRun) (*distStream, error)) (*Planned, error) {
	items := stmt.Items
	if stmt.Star {
		items = starItems(stmt, sc)
	}
	itemSchema, itemExprs, itemPicks, err := compileItems(items, sc, combined)
	if err != nil {
		return nil, err
	}
	keyCols, keyExprs, keyPicks, descs, err := compileOrderKeys(stmt.OrderBy, items, sc, combined)
	if err != nil {
		return nil, err
	}
	wideSchema := append(append(relational.Schema{}, itemSchema...), keyCols...)
	wideExprs := append(append([]relational.Projector{}, itemExprs...), keyExprs...)
	widePicks := append(append([]int{}, itemPicks...), keyPicks...)

	p.Steps = append(p.Steps, "project "+itemNames(items)+" per shard")
	if len(keyCols) > 0 {
		p.Steps = append(p.Steps, "gather to coordinator (seq-ordered merge); sort")
	} else {
		p.Steps = append(p.Steps, "gather to coordinator (seq-ordered merge)")
	}
	if stmt.Limit >= 0 {
		p.Steps = append(p.Steps, fmt.Sprintf("limit %d", stmt.Limit))
	}

	run := func() (*relational.Relation, *dist.QueryStats, error) {
		qr := dx.newQuery()
		defer qr.Close() // deregister from the shared fabric on error paths
		dx.attachGuard(qr)
		st, err := runJoins(qr)
		if err != nil {
			return nil, nil, err
		}
		st.decor = append(st.decor, exprProjDecor(withSeq(wideSchema), wideExprs, widePicks, len(st.schema),
			dx.dispatchers(exec.Dispatch{Kind: exec.ProjectWork, ExpectedRows: dx.shardRowHint, Width: countComputed(widePicks, len(wideExprs))})))
		st.schema = wideSchema
		if len(keyCols) == 0 && stmt.Limit >= 0 {
			st.decor = append(st.decor, limitDecor(stmt.Limit))
		}
		if err := st.materialize(dx.workers); err != nil {
			return nil, nil, err
		}
		seqCol := len(wideSchema)
		var merged *relational.Relation
		if dx.chunkRows > 0 {
			// Pipelined gather: the coordinator's seq merge advances to
			// each chunk's global row bound while the next chunk's flows
			// drain, reproducing MergeBySeq's row order incrementally.
			chunks, bounds := dist.GatherChunks(st.base, seqCol, dx.chunkRows)
			merged = relational.NewRelation("gathered", st.base[0].Schema[:seqCol])
			merger := dist.NewSeqMerger(st.base, seqCol)
			consume := func(k int) error {
				merger.Take(bounds[k], func(shard, row int) {
					merged.Rows = append(merged.Rows, st.base[shard].Rows[row][:seqCol])
				})
				return nil
			}
			if err := dx.runPipelined(qr, "gather", chunks, dist.GatherClass, dist.GatherWeightBoost, consume); err != nil {
				return nil, nil, err
			}
		} else {
			if err := dx.runPhase(qr, "gather", dist.GatherTransfers(st.bytes()), dist.GatherClass, dist.GatherWeightBoost); err != nil {
				return nil, nil, err
			}
			merged = dist.MergeBySeq("gathered", st.base, seqCol, true)
		}
		var op relational.Op = relational.NewScan(merged)
		if len(keyCols) > 0 {
			keys := make([]relational.SortKey, len(keyCols))
			for ki := range keyCols {
				keys[ki] = relational.SortKey{Col: len(itemSchema) + ki, Desc: descs[ki]}
			}
			srt, err := relational.NewSort(op, keys)
			if err != nil {
				return nil, nil, err
			}
			if dx.budget != nil {
				// The coordinator's sort charges the query-level budget:
				// coordinator memory is host memory too.
				srt.SetBudget(dx.budget)
			}
			op = srt
			exprs := make([]relational.Projector, len(itemSchema))
			for i := range exprs {
				exprs[i] = pickProjector(i)
			}
			op, err = relational.NewProject(op, itemSchema, exprs)
			if err != nil {
				return nil, nil, err
			}
		}
		if stmt.Limit >= 0 {
			op = relational.NewLimit(op, stmt.Limit)
		}
		res, err := relational.Collect(op, "result")
		if err != nil {
			return nil, nil, err
		}
		return res, dx.finishStats(qr), nil
	}
	root := &distRoot{schema: itemSchema, run: run}
	p.dist, p.Root = root, root
	return p, nil
}
