// Package sql implements a SQL subset — lexer, parser, semantic analysis,
// a rule-based optimizer (constant folding, predicate pushdown, join
// build-side selection) and execution on the internal/relational engine.
// It is the "query language" endpoint of Section IV.C.1's discussion: the
// E8 experiment expresses the same analytics in SQL, MapReduce and
// dataflow form and compares the abstraction costs.
//
// Supported grammar (single SELECT, no subqueries):
//
//	SELECT <expr [AS alias]>[, ...] | *
//	FROM table [alias] [JOIN table [alias] ON a.x = b.y [AND ...]]...
//	[WHERE expr] [GROUP BY expr[, ...]] [HAVING expr]
//	[ORDER BY expr|alias|position [ASC|DESC], ...] [LIMIT n]
//
// with arithmetic (+ - * / %), comparisons, AND/OR/NOT, and the aggregates
// COUNT(*)/COUNT/SUM/AVG/MIN/MAX.
package sql

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSymbol // operators and punctuation
)

// Token is one lexeme with its position (byte offset) for error messages.
type Token struct {
	Kind TokKind
	Text string // keywords lowercased; identifiers lowercased; symbols verbatim
	Pos  int
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "join": true, "on": true,
	"as": true, "and": true, "or": true, "not": true, "asc": true,
	"desc": true, "count": true, "sum": true, "avg": true, "min": true,
	"max": true,
}

// Lex tokenizes input. It returns an error with byte position for any
// character it cannot start a token with or an unterminated string.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			kind := TokInt
			for i < n && isDigit(input[i]) {
				i++
			}
			if i < n && input[i] == '.' {
				kind = TokFloat
				i++
				for i < n && isDigit(input[i]) {
					i++
				}
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := strings.ToLower(input[start:i])
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					// '' escapes a quote.
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>":
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
