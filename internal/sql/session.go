package sql

import (
	"context"
	"strings"

	"repro/internal/relational"
)

// Session is one query stream on an Engine: the unit of concurrency.
// Sessions share the engine's catalog, worker pool, and — in
// distributed mode — the one network simulator, so queries issued from
// different sessions at the same time contend for the same fabric.
//
// A Session is not safe for concurrent use; open one per goroutine
// (they are cheap). The exported fields are per-session overrides of the
// engine configuration; zero values inherit the engine's.
type Session struct {
	eng *Engine

	// DistJoin overrides the engine's distributed join movement strategy
	// for this session's queries ("auto", "broadcast" or "repartition").
	DistJoin string
	// Workers overrides the engine's per-host worker cap when positive.
	Workers int
	// Priority tags this session's fabric flows with a QoS class ("" =
	// best-effort). Classes drive per-class byte attribution in the
	// fabric aggregate and feed controller policies (e.g. the
	// strict-priority policy's class tiers: "interactive", "batch").
	Priority string
	// Weight, when positive, is the scheduling weight of this session's
	// flows under the fabric's weighted max-min allocator: on a shared
	// bottleneck a weight-3 session receives three times the bandwidth
	// of a weight-1 peer, so its phases — and queries — finish sooner
	// under contention. Zero inherits the uniform weight 1.
	Weight float64
	// Placement overrides the engine's morsel placement policy over
	// Config.Devices for this session's queries: "auto" (cost-based) or
	// a device name forcing every morsel there. "" inherits the
	// engine's. It has no effect when the engine has no device set.
	Placement string
	// MemoryBudget overrides the engine's operator-state byte cap for
	// this session's queries when positive (see Config.MemoryBudget);
	// zero inherits the engine's. A session on an unbudgeted engine can
	// turn out-of-core execution on, and vice versa cannot turn it off —
	// budgets model capacity, and a session asking for less memory than
	// the engine grants is the meaningful direction.
	MemoryBudget int64
	// SpillTier overrides the engine's spill tier ("nvm", "ssd",
	// "disk") for this session's queries; "" inherits the engine's. An
	// unknown tier surfaces as a planning error at Query/Prepare.
	SpillTier string
	// PipelineChunkRows overrides the engine's pipelined-movement chunk
	// size for this session's queries when positive (see
	// Config.PipelineChunkRows); zero inherits the engine's. There is no
	// per-session way to force the bulk path on a pipelined engine —
	// like MemoryBudget, asking for finer chunks than the engine default
	// is the meaningful direction, and results are identical either way.
	PipelineChunkRows int
}

// Engine returns the session's engine.
func (s *Session) Engine() *Engine { return s.eng }

// cfg merges the session overrides onto the engine configuration.
func (s *Session) cfg() Config {
	cfg := s.eng.Config()
	if s.DistJoin != "" {
		cfg.DistJoin = s.DistJoin
	}
	if s.Workers > 0 {
		cfg.Workers = s.Workers
	}
	if s.Placement != "" {
		cfg.Placement = s.Placement
	}
	if s.MemoryBudget > 0 {
		cfg.MemoryBudget = s.MemoryBudget
	}
	if s.SpillTier != "" {
		cfg.SpillTier = s.SpillTier
	}
	if s.PipelineChunkRows > 0 {
		cfg.PipelineChunkRows = s.PipelineChunkRows
	}
	return cfg
}

// Query parses, plans and executes q, honouring ctx: cancellation aborts
// the execution at the next batch boundary on every engine path (serial
// rows, morsel-parallel batches, distributed phases — including a phase
// parked at the shared fabric's admission barrier).
func (s *Session) Query(ctx context.Context, q string) (*Result, error) {
	stmt, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return s.execStmt(ctx, stmt)
}

// Explain plans q and returns the human-readable plan without executing.
func (s *Session) Explain(q string) (string, error) {
	pl := &planner{eng: s.eng, cfg: s.cfg()}
	p, err := pl.plan(q)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Prepare parses and validates q, returning a re-executable statement.
// Planning runs once here so resolution and type errors surface at
// Prepare; each Exec then lowers a fresh operator tree from the parsed
// form, which is what makes repeated execution correct — operator trees
// are single-use by design (see ErrPlanSpent).
func (s *Session) Prepare(q string) (*Stmt, error) {
	stmt, err := Parse(q)
	if err != nil {
		return nil, err
	}
	pl := &planner{eng: s.eng, cfg: s.cfg()}
	if _, err := pl.planStmt(stmt); err != nil {
		return nil, err
	}
	return &Stmt{sess: s, text: q, ast: stmt}, nil
}

// Stmt is a prepared statement: parse once, execute any number of times.
// Each Exec plans and runs a fresh operator tree, so every run returns
// complete results with fresh operator and network stats.
type Stmt struct {
	sess *Session
	text string
	ast  *SelectStmt
}

// Text returns the statement's SQL.
func (st *Stmt) Text() string { return st.text }

// Bind returns the statement re-bound to another session of the same
// engine: the parsed form is shared (planning never mutates it — every
// Exec lowers a fresh operator tree from it already), only the session
// whose configuration and QoS identity each Exec runs under changes.
// This is what lets a server cache one prepared statement per (tenant,
// statement, config) and execute it from any number of concurrent
// request handlers, each on its own cheap Session.
func (st *Stmt) Bind(s *Session) *Stmt {
	return &Stmt{sess: s, text: st.text, ast: st.ast}
}

// Exec runs the statement under ctx. See Session.Query for cancellation
// semantics.
func (st *Stmt) Exec(ctx context.Context) (*Result, error) {
	return st.sess.execStmt(ctx, st.ast)
}

// Explain plans the statement under the session's current configuration
// and returns the plan text.
func (st *Stmt) Explain() (string, error) {
	pl := &planner{eng: st.sess.eng, cfg: st.sess.cfg()}
	p, err := pl.planParsed(st.ast)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// execStmt plans a fresh tree with a fresh cancellation token, binds the
// token to ctx for the duration of the run, and materializes the result.
func (s *Session) execStmt(ctx context.Context, stmt *SelectStmt) (*Result, error) {
	token := relational.NewCancelToken()
	pl := &planner{eng: s.eng, cfg: s.cfg(), cancel: token, class: s.Priority, weight: s.Weight}
	p, err := pl.planParsed(stmt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() { token.Cancel(ctx.Err()) })
	defer stop()
	rel, err := relational.Collect(p.Root, "result")
	if err != nil {
		// The token's cause (the context error) may come back wrapped by
		// operator layers; report the context's own error for errors.Is.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	res := &Result{Rows: rel, Steps: p.Steps, Ops: map[string]relational.OpStats{}, Net: p.NetStats()}
	if res.Net != nil {
		res.Admission = &res.Net.Adm
	}
	if p.placer != nil {
		res.Devices = p.placer.Stats()
		res.Placement = p.placer.Policy()
	}
	if p.budget != nil {
		st := p.budget.Stats()
		res.Spill = &st
	}
	for tag, op := range p.TaggedOps {
		res.Ops[tag] = op.Stats()
	}
	return res, nil
}

// Columns returns the result's column names in order (a convenience for
// table rendering).
func (r *Result) Columns() []string {
	names := make([]string, len(r.Rows.Schema))
	for i, c := range r.Rows.Schema {
		names[i] = c.Name
	}
	return names
}

// Explain renders the executed plan, one line per step.
func (r *Result) Explain() string { return strings.Join(r.Steps, "\n") }
