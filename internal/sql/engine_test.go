package sql

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/relational"
)

func demoEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 11, 3000, 80)
	return eng
}

// TestNewEngineValidates: configuration errors surface at construction,
// not at the first query.
func TestNewEngineValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistJoin = "teleport"
	if _, err := NewEngine(cfg); err == nil || !strings.Contains(err.Error(), "DistJoin") {
		t.Fatalf("expected DistJoin error, got %v", err)
	}
	cfg = DefaultConfig()
	cfg.Distributed = true
	cfg.Topology = "moebius"
	if _, err := NewEngine(cfg); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("expected topology error, got %v", err)
	}
}

// TestSessionQueryResult: a Result bundles rows, plan text, operator
// stats and (distributed only) network stats.
func TestSessionQueryResult(t *testing.T) {
	eng := demoEngine(t, DefaultConfig())
	q := "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY n DESC"
	res, err := eng.Session().Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() == 0 || len(res.Steps) == 0 {
		t.Fatalf("incomplete result: %d rows, %d steps", res.Rows.Len(), len(res.Steps))
	}
	if !strings.Contains(res.Explain(), "aggregate") {
		t.Fatalf("plan text missing aggregate step:\n%s", res.Explain())
	}
	scan, ok := res.Ops["scan:sales"]
	if !ok || scan.RowsOut == 0 {
		t.Fatalf("missing scan stats: %+v", res.Ops)
	}
	if res.Net != nil {
		t.Fatal("single-node result must not carry net stats")
	}
	if got := res.Columns(); len(got) != 2 || got[0] != "region" {
		t.Fatalf("columns = %v", got)
	}

	dcfg := DefaultConfig()
	dcfg.Distributed = true
	dres, err := demoEngine(t, dcfg).Session().Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Net == nil || dres.Net.NetSeconds <= 0 {
		t.Fatalf("distributed result missing net stats: %+v", dres.Net)
	}
	expectRowsEqual(t, "distributed session vs single-node", res.Rows, dres.Rows)
}

// TestPreparedStmtReexecutes: the prepared-statement acceptance
// criterion — one Prepare, at least three Execs, correct rows and fresh
// (non-accumulating) stats every run.
func TestPreparedStmtReexecutes(t *testing.T) {
	for _, distributed := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Distributed = distributed
		cfg.Shards = 4
		eng := demoEngine(t, cfg)
		sess := eng.Session()
		q := "SELECT c.segment, SUM(s.price) AS total FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY total DESC"
		stmt, err := sess.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		if stmt.Text() != q {
			t.Fatalf("stmt text = %q", stmt.Text())
		}
		var first *Result
		for run := 0; run < 3; run++ {
			res, err := stmt.Exec(context.Background())
			if err != nil {
				t.Fatalf("dist=%v run %d: %v", distributed, run, err)
			}
			if run == 0 {
				first = res
				continue
			}
			expectRowsEqual(t, "prepared re-execution", first.Rows, res.Rows)
			// Stats must be fresh per run, not accumulated across runs.
			if res.Ops["scan:s"].RowsOut != first.Ops["scan:s"].RowsOut {
				t.Fatalf("dist=%v run %d: stale stats: %d vs %d rows scanned",
					distributed, run, res.Ops["scan:s"].RowsOut, first.Ops["scan:s"].RowsOut)
			}
			if distributed {
				if res.Net == nil || res.Net.NetSeconds != first.Net.NetSeconds ||
					res.Net.BytesShuffled != first.Net.BytesShuffled || len(res.Net.Phases) != len(first.Net.Phases) {
					t.Fatalf("dist run %d: net stats not fresh/reproducible: %+v vs %+v", run, res.Net, first.Net)
				}
			}
		}
	}
}

// TestPrepareValidatesEagerly: resolution errors surface at Prepare.
func TestPrepareValidatesEagerly(t *testing.T) {
	eng := demoEngine(t, DefaultConfig())
	if _, err := eng.Session().Prepare("SELECT x FROM missing"); err == nil ||
		!strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("expected unknown table at Prepare, got %v", err)
	}
}

// TestPlannedSpent: the satellite fix — pulling a Planned root after it
// ended must report ErrPlanSpent instead of silently re-draining spent
// operators (and, distributed, keeping stale NetStats).
func TestPlannedSpent(t *testing.T) {
	for _, distributed := range []bool{false, true} {
		db := DemoDB(11, 1000, 40)
		db.Opt.Distributed = distributed
		plan, err := db.Plan("SELECT region, COUNT(*) FROM sales GROUP BY region")
		if err != nil {
			t.Fatal(err)
		}
		first, err := relational.Collect(plan.Root, "first")
		if err != nil || first.Len() == 0 {
			t.Fatalf("dist=%v: first execution failed: %v", distributed, err)
		}
		if _, err := relational.Collect(plan.Root, "second"); !errors.Is(err, ErrPlanSpent) {
			t.Fatalf("dist=%v: expected ErrPlanSpent on re-execution, got %v", distributed, err)
		}
	}
}

// TestPlannedSpentAfterError: a plan whose execution failed mid-stream
// must stay failed — re-pulling it reports the original error instead of
// silently resuming the half-drained tree.
func TestPlannedSpentAfterError(t *testing.T) {
	db := DemoDB(11, 1000, 40)
	db.Opt.Parallel = false
	plan, err := db.Plan("SELECT price / (quantity - quantity) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relational.Collect(plan.Root, "first"); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division by zero, got %v", err)
	}
	rel, err := relational.Collect(plan.Root, "second")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("retry must report the original failure, got rows=%v err=%v", rel, err)
	}
}

// TestSessionOverrides: per-session knobs shape that session's plans
// without touching the engine config or sibling sessions.
func TestSessionOverrides(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	eng := demoEngine(t, cfg)
	q := "SELECT c.segment, COUNT(*) AS n FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment"
	phaseNames := func(distJoin string) string {
		s := eng.Session()
		s.DistJoin = distJoin
		res, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, ph := range res.Net.Phases {
			names = append(names, ph.Name)
		}
		return strings.Join(names, ",")
	}
	bcast, repart := phaseNames("broadcast"), phaseNames("repartition")
	if !strings.Contains(bcast, "broadcast") || !strings.Contains(repart, "shuffle") {
		t.Fatalf("session overrides ignored: broadcast session ran %q, repartition session ran %q", bcast, repart)
	}
	if got := eng.Config().DistJoin; got != "" {
		t.Fatalf("engine config mutated by session override: %q", got)
	}
}

// TestDBWrapperDelegates: the deprecated DB surface is a live view over
// an Engine — same catalog, same results — so the two APIs interoperate
// during migration.
func TestDBWrapperDelegates(t *testing.T) {
	db := DemoDB(11, 2000, 60)
	q := "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY n DESC"
	viaDB, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := db.Engine().Session().Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	expectRowsEqual(t, "DB vs Session", viaDB, viaSession.Rows)

	// Registration through either surface is visible to the other.
	db.Engine().Register(productsRelation())
	if _, ok := db.Table("products"); !ok {
		t.Fatal("engine-registered table invisible through DB")
	}
}
