package sql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/stream"
)

// StreamSource returns the append handle of a registered table: batches
// fed through it become morsel appends in the catalog (running queries
// keep their snapshot), fan out to the table's subscriptions in append
// order, and — on a distributed engine — bill their bytes to the shared
// fabric as ingest-class flows. Close ends the table's stream, flushing
// every subscription's remaining windows.
func (s *Session) StreamSource(table string) (*stream.Source, error) {
	name := strings.ToLower(table)
	eng := s.eng
	if _, ok := eng.Table(name); !ok {
		return nil, fmt.Errorf("sql: unknown table %q", table)
	}
	if eng.hub.TableClosed(name) {
		return nil, fmt.Errorf("sql: stream for table %q already closed", table)
	}
	return stream.NewSource(name,
		func(rows []relational.Row) (stream.Ingest, error) { return eng.AppendRows(name, rows) },
		func() { eng.hub.CloseTable(name) }), nil
}

// CloseStream ends table's stream: appends are refused from here on,
// every subscription flushes its remaining windows and completes, and
// later subscriptions complete immediately. Idempotent; unknown tables
// error. The table itself stays queryable — closing a stream only
// declares the relation done growing.
func (e *Engine) CloseStream(table string) error {
	name := strings.ToLower(table)
	if _, ok := e.Table(name); !ok {
		return fmt.Errorf("sql: unknown table %q", table)
	}
	e.hub.CloseTable(name)
	return nil
}

// StreamClosed reports whether table's stream has been closed.
func (e *Engine) StreamClosed(table string) bool {
	return e.hub.TableClosed(table)
}

// Subscribe registers q as a continuous query over its (single, growing)
// source table: the returned subscription emits the query's result over
// each event-time window of spec as the watermark passes it, maintained
// incrementally from per-pane partial aggregates under the session's
// memory budget. The subscription covers rows already in the table plus
// everything appended afterwards; it completes when the table's stream
// closes (final flush) or ctx is cancelled (no flush, Err reports why).
//
// Continuous queries are the aggregate subset of the dialect: one table,
// WHERE, GROUP BY and aggregate select items. Joins, HAVING, ORDER BY
// and LIMIT are planning errors — window emission order (ascending
// window start, groups in first-seen order) is the stream's ordering.
func (s *Session) Subscribe(ctx context.Context, q string, spec stream.WindowSpec) (*stream.Subscription, error) {
	stmt, err := Parse(q)
	if err != nil {
		return nil, err
	}
	cq, err := s.compileContinuous(stmt, spec)
	if err != nil {
		return nil, err
	}
	return s.eng.subscribe(ctx, cq, spec)
}

// compileContinuous lowers the aggregate subset of a SELECT into a
// stream.Query, reusing the batch planner's compile pieces (scope
// binding, aggregate plan, post-aggregation projection) so a window's
// result is computed by exactly the machinery the batch engine would
// use for the same query restricted to the window's time range.
func (s *Session) compileContinuous(stmt *SelectStmt, spec stream.WindowSpec) (*stream.Query, error) {
	switch {
	case len(stmt.Joins) > 0:
		return nil, fmt.Errorf("sql: continuous queries cannot join (streams window one growing table)")
	case stmt.Star:
		return nil, fmt.Errorf("sql: continuous queries cannot SELECT * (aggregate the window instead)")
	case !stmt.HasAggregates():
		return nil, fmt.Errorf("sql: continuous queries must aggregate (windows emit aggregate state)")
	case stmt.Having != nil:
		return nil, fmt.Errorf("sql: HAVING is not supported in continuous queries")
	case len(stmt.OrderBy) > 0:
		return nil, fmt.Errorf("sql: ORDER BY is not supported in continuous queries (windows emit in stream order)")
	case stmt.Limit >= 0:
		return nil, fmt.Errorf("sql: LIMIT is not supported in continuous queries")
	}
	pl := &planner{eng: s.eng, cfg: s.cfg()}
	legs, err := pl.resolveLegs(stmt)
	if err != nil {
		return nil, err
	}
	leg := legs[0]
	cq := &stream.Query{Table: strings.ToLower(stmt.From.Name)}

	cq.TimeCol = -1
	for i, c := range leg.rel.Schema {
		if strings.EqualFold(c.Name, spec.TimeCol) {
			cq.TimeCol = i
			break
		}
	}
	if cq.TimeCol < 0 {
		return nil, fmt.Errorf("sql: window time column %q not in table %q", spec.TimeCol, stmt.From.Name)
	}
	if leg.rel.Schema[cq.TimeCol].Type != relational.Int {
		return nil, fmt.Errorf("sql: window time column %q must be an Int (event-time ticks)", spec.TimeCol)
	}

	sc := &scope{}
	sc.addTable(leg.alias, leg.rel.Schema, 0)
	if stmt.Where != nil {
		where := stmt.Where
		if pl.cfg.ConstantFolding {
			where = foldConstants(where)
		}
		cq.Filter, err = compilePredicate(sc, where)
		if err != nil {
			return nil, err
		}
	}
	ap, err := buildAggPlan(stmt, sc, leg.rel.Schema)
	if err != nil {
		return nil, err
	}
	cq.PreExprs, cq.PreSchema = ap.preExprs, ap.preSchema
	cq.GroupCols, cq.AggSpecs = ap.groupCols, ap.aggSpecs
	cq.AggSchema, err = relational.AggOutputSchema(ap.preSchema, ap.groupCols, ap.aggSpecs)
	if err != nil {
		return nil, err
	}
	post := ap.postScope(stmt)
	cq.OutSchema, cq.OutExprs, _, err = compileItems(stmt.Items, post, cq.AggSchema)
	if err != nil {
		return nil, err
	}
	cq.Budget, err = pl.spillBudget()
	if err != nil {
		return nil, err
	}
	return cq, nil
}

// subscribe primes and registers a compiled continuous query under the
// catalog lock — the same lock AppendRows publishes under, so the primed
// snapshot and the published batches tile the table's rows exactly (no
// row delivered twice, none missed).
func (e *Engine) subscribe(ctx context.Context, cq *stream.Query, spec stream.WindowSpec) (*stream.Subscription, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rel, ok := e.tables[cq.Table]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", cq.Table)
	}
	return e.hub.Subscribe(ctx, cq, spec, rel.Rows)
}
