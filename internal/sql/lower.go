package sql

import (
	"math"

	"repro/internal/exec"
	"repro/internal/relational"
)

// lowerer builds the executable operator tree for a plan, targeting
// either the volcano row engine or the morsel-parallel batch engine.
// Every constructor mirrors one relational operator; execNode carries
// whichever representation is active.
type lowerer struct {
	parallel bool
	workers  int
	// cancel, when set, guards every leaf scan: each pulled row or batch
	// — on every Exchange worker, since the guard partitions through —
	// checks the token, so external cancellation aborts even queries deep
	// inside a pipeline breaker's drain within one batch boundary.
	cancel *relational.CancelToken
	// placer, when set, routes every batch operator's morsels through
	// the heterogeneous placement policy; hintRows is the planner's
	// running cardinality estimate, which amortizes one-off device setup
	// over the expected morsel count of each operator it lowers.
	placer   *exec.Placer
	hintRows int
	// budget, when set, charges every pipeline breaker's materialized
	// state (join build tables, aggregate hash maps, sort runs) against
	// the query memory budget; overflow goes out-of-core against the
	// budget's spill tier. Applies on both engines — the row operators
	// account their state against the same budget the batch operators
	// grace-partition under.
	budget *relational.MemoryBudget
}

// execNode is one lowered operator: exactly one side is set.
type execNode struct {
	row relational.Op
	bat relational.BatchOp
}

func (lw *lowerer) scan(rel *relational.Relation) execNode {
	if lw.parallel {
		return execNode{bat: relational.GuardBatch(relational.NewBatchScan(rel), lw.cancel)}
	}
	return execNode{row: relational.Guard(relational.NewScan(rel), lw.cancel)}
}

// filter lowers a boolean expression over sc. In batch mode, conjuncts of
// the form <Int column> <cmp> <int literal> peel off into ColRanges
// served by the filter kernels; the rest compiles to a row predicate.
func (lw *lowerer) filter(n execNode, sc *scope, e Expr) (execNode, error) {
	if n.bat == nil {
		pred, err := compilePredicate(sc, e)
		if err != nil {
			return execNode{}, err
		}
		return execNode{row: relational.NewFilter(n.row, pred)}, nil
	}
	ranges, pred, err := lowerBatchFilter(sc, e)
	if err != nil {
		return execNode{}, err
	}
	bf := relational.NewBatchFilter(n.bat, ranges, pred)
	if lw.placer != nil {
		bf.Place(lw.placer.Dispatcher(exec.Dispatch{Kind: exec.FilterWork, ExpectedRows: lw.hintRows}))
	}
	return execNode{bat: bf}, nil
}

// lowerBatchFilter splits a boolean expression into kernel-served column
// ranges and a residual compiled predicate. The single-node batch lowerer
// and the distributed fragment builder share it, so filters lower onto
// the scan kernels identically on both paths.
func lowerBatchFilter(sc *scope, e Expr) ([]relational.ColRange, relational.Predicate, error) {
	var ranges []relational.ColRange
	var rest []Expr
	for _, c := range splitConjuncts(e) {
		if r, ok := rangeFromConjunct(sc, c); ok {
			ranges = append(ranges, r)
		} else {
			rest = append(rest, c)
		}
	}
	var pred relational.Predicate
	if len(rest) > 0 {
		var err error
		pred, err = compilePredicate(sc, joinConjuncts(rest))
		if err != nil {
			return nil, nil, err
		}
	}
	return ranges, pred, nil
}

// project lowers a projection. exprs always carries the row closures;
// picks[i] >= 0 marks output i as a pass-through of that child column,
// which the batch engine serves by sharing the column vector.
func (lw *lowerer) project(n execNode, schema relational.Schema, exprs []relational.Projector, picks []int) (execNode, error) {
	if n.bat != nil {
		pe := make([]relational.ProjExpr, len(exprs))
		for i := range exprs {
			if picks != nil && picks[i] >= 0 {
				pe[i] = relational.Pick(picks[i])
			} else {
				pe[i] = relational.Expr(exprs[i])
			}
		}
		op, err := relational.NewBatchProject(n.bat, schema, pe)
		if err != nil {
			return execNode{}, err
		}
		// Pure pass-through projections share vectors for free; only
		// computed expressions are a placeable kernel.
		if lw.placer != nil && op.ExprCount() > 0 {
			op.Place(lw.placer.Dispatcher(exec.Dispatch{
				Kind: exec.ProjectWork, ExpectedRows: lw.hintRows, Width: op.ExprCount(),
			}))
		}
		return execNode{bat: op}, nil
	}
	op, err := relational.NewProject(n.row, schema, exprs)
	if err != nil {
		return execNode{}, err
	}
	return execNode{row: op}, nil
}

func (lw *lowerer) hashJoin(build, probe execNode, buildCol, probeCol int) (execNode, error) {
	if build.bat != nil {
		op, err := relational.NewBatchHashJoin(build.bat, probe.bat, buildCol, probeCol, lw.workers)
		if err != nil {
			return execNode{}, err
		}
		if lw.budget != nil {
			op.SetBudget(lw.budget)
		}
		return execNode{bat: op}, nil
	}
	op, err := relational.NewHashJoin(build.row, probe.row, buildCol, probeCol)
	if err != nil {
		return execNode{}, err
	}
	if lw.budget != nil {
		op.SetBudget(lw.budget)
	}
	return execNode{row: op}, nil
}

func (lw *lowerer) groupAgg(n execNode, groupCols []int, aggs []relational.AggSpec) (execNode, error) {
	if n.bat != nil {
		op, err := relational.NewBatchGroupAgg(n.bat, groupCols, aggs, lw.workers)
		if err != nil {
			return execNode{}, err
		}
		if lw.placer != nil {
			op.Place(lw.placer.Dispatcher(exec.Dispatch{Kind: exec.AggWork, ExpectedRows: lw.hintRows}))
		}
		if lw.budget != nil {
			op.SetBudget(lw.budget)
		}
		return execNode{bat: op}, nil
	}
	op, err := relational.NewGroupAgg(n.row, groupCols, aggs)
	if err != nil {
		return execNode{}, err
	}
	if lw.budget != nil {
		op.SetBudget(lw.budget)
	}
	return execNode{row: op}, nil
}

func (lw *lowerer) sort(n execNode, keys []relational.SortKey) (execNode, error) {
	if n.bat != nil {
		op, err := relational.NewBatchSort(n.bat, keys, lw.workers)
		if err != nil {
			return execNode{}, err
		}
		if lw.placer != nil {
			op.Place(lw.placer.Dispatcher(exec.Dispatch{
				Kind: exec.SortWork, ExpectedRows: lw.hintRows, Width: len(keys),
			}))
		}
		if lw.budget != nil {
			op.SetBudget(lw.budget)
		}
		return execNode{bat: op}, nil
	}
	op, err := relational.NewSort(n.row, keys)
	if err != nil {
		return execNode{}, err
	}
	if lw.budget != nil {
		op.SetBudget(lw.budget)
	}
	return execNode{row: op}, nil
}

func (lw *lowerer) limit(n execNode, k int) execNode {
	if n.bat != nil {
		// No Exchange here: a serial drain of the batch stream is already
		// in Seq (= serial) order, and consuming it directly preserves the
		// early exit — LIMIT k stops the scan after ~k rows instead of
		// materializing the whole input through the dispatcher.
		return execNode{bat: relational.NewBatchLimit(n.bat, k)}
	}
	return execNode{row: relational.NewLimit(n.row, k)}
}

// op exposes a node as a row Op for stats tagging without consuming it.
func (lw *lowerer) op(n execNode) relational.Op {
	if n.bat != nil {
		return relational.RowsOf(n.bat)
	}
	return n.row
}

// finish produces the plan root, fanning a partitionable batch tree out
// through the morsel dispatcher.
func (lw *lowerer) finish(n execNode) relational.Op {
	if n.bat != nil {
		return relational.RowsOf(relational.NewExchange(n.bat, lw.workers))
	}
	return n.row
}

// rangeFromConjunct recognizes <Int column> <cmp> <int literal> (either
// orientation) and converts it to an inclusive ColRange for the batch
// filter kernels. Anything else — including unresolved columns, which
// must surface their error through the generic compile path — reports
// false.
func rangeFromConjunct(sc *scope, e Expr) (relational.ColRange, bool) {
	b, ok := e.(*BinExpr)
	if !ok {
		return relational.ColRange{}, false
	}
	op := b.Op
	var cr *ColRef
	var lit *IntLit
	if c, ok := b.L.(*ColRef); ok {
		if l, ok2 := b.R.(*IntLit); ok2 {
			cr, lit = c, l
		}
	} else if c, ok := b.R.(*ColRef); ok {
		if l, ok2 := b.L.(*IntLit); ok2 {
			cr, lit = c, l
			// 5 < col  ≡  col > 5, etc.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
	}
	if cr == nil {
		return relational.ColRange{}, false
	}
	ent, err := sc.resolve(cr)
	if err != nil || ent.typ != tInt {
		return relational.ColRange{}, false
	}
	out := relational.ColRange{Col: ent.index}
	switch op {
	case "=":
		out.Lo, out.Hi, out.HasLo, out.HasHi = lit.V, lit.V, true, true
	case "<=":
		out.Hi, out.HasHi = lit.V, true
	case ">=":
		out.Lo, out.HasLo = lit.V, true
	case "<":
		if lit.V == math.MinInt64 {
			out.Lo, out.Hi, out.HasLo, out.HasHi = 1, 0, true, true // empty
		} else {
			out.Hi, out.HasHi = lit.V-1, true
		}
	case ">":
		if lit.V == math.MaxInt64 {
			out.Lo, out.Hi, out.HasLo, out.HasHi = 1, 0, true, true // empty
		} else {
			out.Lo, out.HasLo = lit.V+1, true
		}
	default:
		return relational.ColRange{}, false
	}
	return out, true
}

// passthroughIdx returns the child column index that expression e reads
// unchanged (a resolved column reference, or a bound pre-computed
// expression), or -1. The type must match so the batch engine can share
// the column vector.
func passthroughIdx(sc *scope, e Expr, child relational.Schema) int {
	if sc.exprBind != nil {
		if b, ok := sc.exprBind[e.Render()]; ok {
			if b.index < len(child) && child[b.index].Type == toRelType(b.typ) {
				return b.index
			}
			return -1
		}
	}
	if cr, ok := e.(*ColRef); ok {
		if ent, err := sc.resolve(cr); err == nil {
			if ent.index < len(child) && child[ent.index].Type == toRelType(ent.typ) {
				return ent.index
			}
		}
	}
	return -1
}
