package sql

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

// distDB returns a DemoDB configured for distributed execution.
func distDB(seed uint64, rows, customers, shards int, hash bool) *DB {
	db := DemoDB(seed, rows, customers)
	db.Opt.Distributed = true
	db.Opt.Shards = shards
	db.Opt.ShardHash = hash
	return db
}

// TestDistributedMatchesSingleNode is the determinism proof for the
// distributed engine: every parity query must produce row-for-row
// identical output to the serial row engine across shard counts 1/2/8
// under both range and hash table sharding.
func TestDistributedMatchesSingleNode(t *testing.T) {
	serialDB := DemoDB(7, 5000, 120)
	for _, hash := range []bool{false, true} {
		for _, shards := range []int{1, 2, 8} {
			db := distDB(7, 5000, 120, shards, hash)
			for _, q := range parityQueries {
				runBoth(t, serialDB, db, q)
			}
		}
	}
}

// TestDistributedJoinStrategies pins parity under both forced join
// movements — broadcast and hash repartition — for every join query.
func TestDistributedJoinStrategies(t *testing.T) {
	serialDB := DemoDB(7, 4000, 100)
	joinQueries := []string{
		"SELECT COUNT(*) AS n FROM sales s JOIN customers c ON s.customer_id = c.customer_id",
		"SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC",
		"SELECT s.order_id, c.name FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.year >= 2014 ORDER BY s.order_id LIMIT 25",
		"SELECT s.order_id, c.name FROM sales s JOIN customers c ON s.customer_id = c.customer_id LIMIT 40",
	}
	for _, strat := range []string{"broadcast", "repartition"} {
		for _, shards := range []int{2, 8} {
			db := distDB(7, 4000, 100, shards, false)
			db.Opt.DistJoin = strat
			for _, q := range joinQueries {
				runBoth(t, serialDB, db, q)
			}
		}
	}
}

// skewDB builds a catalog whose fact table concentrates ~half its rows
// on one join/group key, so hash repartitioning piles them on one shard.
func skewDB() *DB {
	facts := relational.NewRelation("facts", relational.Schema{
		{Name: "id", Type: relational.Int},
		{Name: "key", Type: relational.Int},
		{Name: "val", Type: relational.Float},
	})
	dims := relational.NewRelation("dims", relational.Schema{
		{Name: "key", Type: relational.Int},
		{Name: "label", Type: relational.String},
	})
	for i := 0; i < 2000; i++ {
		k := int64(0) // hot key
		if i%2 == 1 {
			k = int64(i % 37)
		}
		facts.MustAppend(relational.Row{
			relational.IntV(int64(i)), relational.IntV(k), relational.FloatV(float64(i%97) / 3),
		})
	}
	for k := 0; k < 37; k++ {
		dims.MustAppend(relational.Row{relational.IntV(int64(k)), relational.StringV(strings.Repeat("x", k%5+1))})
	}
	db := NewDB()
	db.Register(facts)
	db.Register(dims)
	return db
}

// TestDistributedSkewedKeys: a hot key must not perturb results under
// either sharding strategy or join movement.
func TestDistributedSkewedKeys(t *testing.T) {
	queries := []string{
		"SELECT key, COUNT(*) AS n, SUM(val) AS total FROM facts GROUP BY key ORDER BY n DESC, key",
		"SELECT d.label, COUNT(*) AS n FROM facts f JOIN dims d ON f.key = d.key GROUP BY d.label ORDER BY n DESC, d.label",
		"SELECT f.id FROM facts f JOIN dims d ON f.key = d.key WHERE f.val > 10.0 ORDER BY f.id LIMIT 50",
	}
	serial := skewDB()
	serial.Opt.Parallel = false
	for _, hash := range []bool{false, true} {
		for _, strat := range []string{"broadcast", "repartition"} {
			db := skewDB()
			db.Opt.Distributed = true
			db.Opt.Shards = 8
			db.Opt.ShardHash = hash
			db.Opt.DistJoin = strat
			for _, q := range queries {
				runBoth(t, serial, db, q)
			}
		}
	}
}

// TestDistributedEmptyShards: tables smaller than the shard count leave
// shards empty; results must not change.
func TestDistributedEmptyShards(t *testing.T) {
	serialDB := DemoDB(11, 5, 3)
	for _, hash := range []bool{false, true} {
		db := distDB(11, 5, 3, 8, hash)
		for _, q := range parityQueries {
			runBoth(t, serialDB, db, q)
		}
	}
}

// TestDistributedEmptyTables pins the zero-row edge case.
func TestDistributedEmptyTables(t *testing.T) {
	serialDB := emptyDemoDB()
	db := emptyDemoDB()
	db.Opt.Distributed = true
	db.Opt.Shards = 4
	for _, q := range parityQueries {
		runBoth(t, serialDB, db, q)
	}
}

// TestDistributedThreeTableJoin exercises the re-sequencing path: a
// second join moves a stream whose seq tags were duplicated by the
// first join's fan-out.
func TestDistributedThreeTableJoin(t *testing.T) {
	build := func() *DB {
		a := relational.NewRelation("a", relational.Schema{
			{Name: "ak", Type: relational.Int}, {Name: "av", Type: relational.Int},
		})
		b := relational.NewRelation("b", relational.Schema{
			{Name: "bk", Type: relational.Int}, {Name: "bv", Type: relational.Int},
		})
		c := relational.NewRelation("c", relational.Schema{
			{Name: "ck", Type: relational.Int}, {Name: "cv", Type: relational.Int},
		})
		for i := 0; i < 400; i++ {
			a.MustAppend(relational.Row{relational.IntV(int64(i % 23)), relational.IntV(int64(i))})
		}
		for i := 0; i < 120; i++ { // duplicate keys: join fan-out
			b.MustAppend(relational.Row{relational.IntV(int64(i % 23)), relational.IntV(int64(i % 7))})
		}
		for i := 0; i < 7; i++ {
			c.MustAppend(relational.Row{relational.IntV(int64(i)), relational.IntV(int64(i * 100))})
		}
		db := NewDB()
		db.Register(a)
		db.Register(b)
		db.Register(c)
		return db
	}
	queries := []string{
		"SELECT a.av, b.bv, c.cv FROM a JOIN b ON a.ak = b.bk JOIN c ON b.bv = c.ck",
		"SELECT c.ck, COUNT(*) AS n, SUM(a.av) AS tot FROM a JOIN b ON a.ak = b.bk JOIN c ON b.bv = c.ck GROUP BY c.ck ORDER BY n DESC, c.ck",
	}
	serial := build()
	serial.Opt.Parallel = false
	for _, strat := range []string{"auto", "broadcast", "repartition"} {
		for _, shards := range []int{2, 8} {
			db := build()
			db.Opt.Distributed = true
			db.Opt.Shards = shards
			db.Opt.DistJoin = strat
			for _, q := range queries {
				runBoth(t, serial, db, q)
			}
		}
	}
}

// TestDistributedTopologies: every fabric builder must route the query's
// flows and preserve parity.
func TestDistributedTopologies(t *testing.T) {
	serialDB := DemoDB(13, 2000, 60)
	q := "SELECT region, COUNT(*) AS n, SUM(price) AS total FROM sales GROUP BY region ORDER BY total DESC"
	for _, topoName := range []string{"leafspine", "single", "fattree", "torus"} {
		db := distDB(13, 2000, 60, 4, false)
		db.Opt.Topology = topoName
		runBoth(t, serialDB, db, q)
		plan, err := db.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := relational.Collect(plan.Root, "result"); err != nil {
			t.Fatal(err)
		}
		stats := plan.NetStats()
		if stats == nil || stats.Topology != topoName {
			t.Fatalf("%s: missing or mislabelled net stats: %+v", topoName, stats)
		}
		if stats.NetSeconds <= 0 || stats.BytesShuffled <= 0 || stats.Flows == 0 {
			t.Fatalf("%s: expected nonzero network cost, got %+v", topoName, stats)
		}
	}
}

// TestDistributedNetStats: every movement phase must be charged as real
// flows with link-level accounting.
func TestDistributedNetStats(t *testing.T) {
	db := distDB(17, 3000, 80, 4, false)
	db.Opt.DistJoin = "repartition"
	q := "SELECT c.segment, SUM(s.price) AS total FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY total DESC"
	plan, err := db.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NetStats() != nil {
		t.Fatal("net stats must be nil before execution")
	}
	if _, err := relational.Collect(plan.Root, "result"); err != nil {
		t.Fatal(err)
	}
	stats := plan.NetStats()
	if stats == nil {
		t.Fatal("net stats missing after execution")
	}
	var sawShuffle, sawGather bool
	for _, ph := range stats.Phases {
		if strings.HasPrefix(ph.Name, "shuffle") && ph.Flows > 0 {
			sawShuffle = true
		}
		if ph.Name == "gather" && ph.Flows > 0 {
			sawGather = true
		}
	}
	if !sawShuffle || !sawGather {
		t.Fatalf("expected shuffle and gather phases with flows, got %+v", stats.Phases)
	}
	if stats.NetSeconds <= 0 || stats.BytesShuffled <= 0 {
		t.Fatalf("expected positive network time and bytes, got %+v", stats)
	}
	if stats.MaxLinkUtil <= 0 || stats.MaxLinkUtil > 1+1e-9 {
		t.Fatalf("max link utilization out of range: %v", stats.MaxLinkUtil)
	}
	if len(stats.Links) == 0 {
		t.Fatal("expected per-link loads")
	}
	var linkBytes float64
	for _, l := range stats.Links {
		linkBytes += l.Bytes
	}
	if linkBytes < stats.BytesShuffled {
		t.Fatalf("links carried %v bytes < %v shuffled (flows must traverse links)", linkBytes, stats.BytesShuffled)
	}

	// Broadcast of the small dimension must be chosen by the auto cost
	// rule and show up as a broadcast phase.
	db2 := distDB(17, 3000, 80, 4, false)
	plan2, err := db2.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relational.Collect(plan2.Root, "result"); err != nil {
		t.Fatal(err)
	}
	var sawBroadcast bool
	for _, ph := range plan2.NetStats().Phases {
		if strings.HasPrefix(ph.Name, "broadcast") && ph.Flows > 0 {
			sawBroadcast = true
		}
	}
	if !sawBroadcast {
		t.Fatalf("auto movement should broadcast the small build side, phases: %+v", plan2.NetStats().Phases)
	}
}

// TestDistributedRepeatable: two runs of the same distributed query agree
// bit-for-bit, including their network accounting.
func TestDistributedRepeatable(t *testing.T) {
	db := distDB(19, 4000, 80, 8, true)
	for _, q := range parityQueries {
		a, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		b, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%q: run lengths differ: %d vs %d", q, a.Len(), b.Len())
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				x, y := a.Rows[i][j], b.Rows[i][j]
				if x.T != y.T || x.I != y.I || x.F != y.F || x.S != y.S {
					t.Fatalf("%q: run outputs differ at row %d col %d: %v vs %v", q, i, j, x, y)
				}
			}
		}
	}
	// Network accounting is deterministic too.
	q := "SELECT region, COUNT(*) FROM sales GROUP BY region"
	stats := func() (float64, float64) {
		plan, err := db.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := relational.Collect(plan.Root, "result"); err != nil {
			t.Fatal(err)
		}
		s := plan.NetStats()
		return s.NetSeconds, s.BytesShuffled
	}
	t1, b1 := stats()
	t2, b2 := stats()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("network accounting not reproducible: (%v,%v) vs (%v,%v)", t1, b1, t2, b2)
	}
}

// TestDistributedErrorsSurface: shard-local evaluation errors propagate
// out of worker goroutines and fragment stages.
func TestDistributedErrorsSurface(t *testing.T) {
	db := distDB(23, 2000, 50, 4, false)
	if _, err := db.Query("SELECT price / (quantity - quantity) FROM sales"); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division by zero from distributed engine, got %v", err)
	}
}

// TestDistributedExplain: distributed plans advertise the engine, the
// movement decisions and the coordinator stages without executing.
func TestDistributedExplain(t *testing.T) {
	db := distDB(29, 500, 20, 4, false)
	plan, err := db.Plan("SELECT c.segment, COUNT(*) AS n FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY n DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, want := range []string{"engine: distributed", "hash join #0", "partial aggregate per shard", "gather partials", "coordinator"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	if plan.NetStats() != nil {
		t.Fatal("explain must not execute the plan")
	}
	if got := db.Opt.DistJoin; got != "" {
		t.Fatalf("plan must not mutate options, DistJoin = %q", got)
	}
}

// TestDistributedSeesAppends: appending rows to a registered table must
// invalidate the cached shard placement, exactly as the single-node
// engine's columnar cache detects appends.
func TestDistributedSeesAppends(t *testing.T) {
	rel := relational.NewRelation("t", relational.Schema{{Name: "x", Type: relational.Int}})
	for i := 0; i < 10; i++ {
		rel.MustAppend(relational.Row{relational.IntV(int64(i))})
	}
	db := NewDB()
	db.Register(rel)
	db.Opt.Distributed = true
	db.Opt.Shards = 4
	count := func() int64 {
		res, err := db.Query("SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].I
	}
	if got := count(); got != 10 {
		t.Fatalf("initial count = %d", got)
	}
	rel.MustAppend(relational.Row{relational.IntV(99)})
	if got := count(); got != 11 {
		t.Fatalf("count after append = %d (stale shard cache)", got)
	}
}

// TestDistributedBadOptions: unknown topologies and join strategies error
// at plan time.
func TestDistributedBadOptions(t *testing.T) {
	db := distDB(31, 100, 10, 4, false)
	db.Opt.Topology = "moebius"
	if _, err := db.Query("SELECT COUNT(*) FROM sales"); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("expected topology error, got %v", err)
	}
	db = distDB(31, 100, 10, 4, false)
	db.Opt.DistJoin = "teleport"
	if _, err := db.Query("SELECT COUNT(*) FROM sales"); err == nil || !strings.Contains(err.Error(), "DistJoin") {
		t.Fatalf("expected DistJoin error, got %v", err)
	}
}
