package sql

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

func mustQuery(t *testing.T, db *DB, q string) *relational.Relation {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func tinyDB() *DB {
	db := NewDB()
	sales := relational.NewRelation("sales", relational.Schema{
		{Name: "id", Type: relational.Int},
		{Name: "region", Type: relational.String},
		{Name: "amount", Type: relational.Float},
		{Name: "qty", Type: relational.Int},
	})
	rows := []struct {
		id     int64
		region string
		amount float64
		qty    int64
	}{
		{1, "EU", 10, 2}, {2, "NA", 20, 1}, {3, "EU", 30, 5},
		{4, "APAC", 5, 1}, {5, "EU", 7.5, 3}, {6, "NA", 2.5, 2},
	}
	for _, r := range rows {
		sales.MustAppend(relational.Row{
			relational.IntV(r.id), relational.StringV(r.region),
			relational.FloatV(r.amount), relational.IntV(r.qty),
		})
	}
	regions := relational.NewRelation("regions", relational.Schema{
		{Name: "region", Type: relational.String},
		{Name: "continent", Type: relational.String},
	})
	regions.MustAppend(relational.Row{relational.StringV("EU"), relational.StringV("europe")})
	regions.MustAppend(relational.Row{relational.StringV("NA"), relational.StringV("america")})
	db.Register(sales)
	db.Register(regions)
	return db
}

// ---------- Lexer ----------

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 3.14, x<=5 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "select" || kinds[0] != TokKeyword {
		t.Fatalf("first token = %v %q", kinds[0], texts[0])
	}
	found := false
	for i, tx := range texts {
		if tx == "it's" && kinds[i] == TokString {
			found = true
		}
	}
	if !found {
		t.Fatal("escaped string not lexed")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select 'unterminated"); err == nil {
		t.Fatal("expected unterminated string error")
	}
	if _, err := Lex("select #"); err == nil {
		t.Fatal("expected bad character error")
	}
}

// ---------- Parser ----------

func TestParseFullQuery(t *testing.T) {
	stmt, err := Parse(`SELECT region, SUM(amount) AS total
	                    FROM sales s JOIN regions r ON s.region = r.region
	                    WHERE amount > 3 AND qty < 10
	                    GROUP BY region ORDER BY total DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || stmt.Items[1].Alias != "total" {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if len(stmt.Joins) != 1 || stmt.Joins[0].Table.Name != "regions" {
		t.Fatalf("joins = %+v", stmt.Joins)
	}
	if len(stmt.GroupBy) != 1 || stmt.Limit != 2 || len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Fatalf("clauses wrong: %+v", stmt)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a + b * 2 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Items[0].E.Render(); got != "(a + (b * 2))" {
		t.Fatalf("precedence render = %q", got)
	}
	stmt, err = Parse("SELECT (a + b) * 2 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Items[0].E.Render(); got != "((a + b) * 2)" {
		t.Fatalf("paren render = %q", got)
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter than OR.
	if got := stmt.Where.Render(); got != "((x = 1) or ((y = 2) and (z = 3)))" {
		t.Fatalf("where render = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t extra garbage (",
		"SELECT a b c FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("expected parse error for %q", q)
		}
	}
}

func TestParseNegativeLiteralFolds(t *testing.T) {
	stmt, err := Parse("SELECT -5, -2.5 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := stmt.Items[0].E.(*IntLit); !ok || l.V != -5 {
		t.Fatalf("item 0 = %#v", stmt.Items[0].E)
	}
	if l, ok := stmt.Items[1].E.(*FloatLit); !ok || l.V != -2.5 {
		t.Fatalf("item 1 = %#v", stmt.Items[1].E)
	}
}

// ---------- Execution ----------

func TestSelectStar(t *testing.T) {
	res := mustQuery(t, tinyDB(), "SELECT * FROM sales")
	if res.Len() != 6 || len(res.Schema) != 4 {
		t.Fatalf("star: %d rows × %d cols", res.Len(), len(res.Schema))
	}
}

func TestWhereFilter(t *testing.T) {
	res := mustQuery(t, tinyDB(), "SELECT id FROM sales WHERE region = 'EU' AND amount >= 7.5")
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Len())
	}
}

func TestArithmeticAndAlias(t *testing.T) {
	res := mustQuery(t, tinyDB(), "SELECT id, amount * qty AS value FROM sales WHERE id = 3")
	if res.Len() != 1 {
		t.Fatal("want one row")
	}
	if res.Schema[1].Name != "value" {
		t.Fatalf("alias = %q", res.Schema[1].Name)
	}
	if res.Rows[0][1].F != 150 {
		t.Fatalf("value = %v", res.Rows[0][1])
	}
}

func TestIntegerArithmeticStaysInt(t *testing.T) {
	res := mustQuery(t, tinyDB(), "SELECT qty + 1 FROM sales WHERE id = 1")
	if res.Rows[0][0].T != relational.Int || res.Rows[0][0].I != 3 {
		t.Fatalf("qty+1 = %v (type %v)", res.Rows[0][0], res.Rows[0][0].T)
	}
	res = mustQuery(t, tinyDB(), "SELECT qty / 2 FROM sales WHERE id = 1")
	if res.Rows[0][0].T != relational.Float || res.Rows[0][0].F != 1 {
		t.Fatalf("qty/2 = %v (division is float)", res.Rows[0][0])
	}
}

func TestGroupByAggregates(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean FROM sales GROUP BY region ORDER BY total DESC")
	if res.Len() != 3 {
		t.Fatalf("groups = %d", res.Len())
	}
	top := res.Rows[0]
	if top[0].S != "EU" || top[1].I != 3 || top[2].F != 47.5 {
		t.Fatalf("top group = %v", top)
	}
	if top[3].F != 47.5/3 {
		t.Fatalf("avg = %v", top[3])
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	res := mustQuery(t, tinyDB(), "SELECT COUNT(*), SUM(qty), MIN(amount), MAX(amount) FROM sales")
	if res.Len() != 1 {
		t.Fatal("global aggregate must yield one row")
	}
	r := res.Rows[0]
	if r[0].I != 6 || r[1].I != 14 || r[2].F != 2.5 || r[3].F != 30 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestOrderByPositionAndAlias(t *testing.T) {
	byPos := mustQuery(t, tinyDB(), "SELECT id, amount FROM sales ORDER BY 2 DESC LIMIT 1")
	if byPos.Rows[0][0].I != 3 {
		t.Fatalf("ORDER BY 2: top id = %v", byPos.Rows[0][0])
	}
	byAlias := mustQuery(t, tinyDB(), "SELECT id, amount AS a FROM sales ORDER BY a LIMIT 1")
	if byAlias.Rows[0][0].I != 6 {
		t.Fatalf("ORDER BY alias: top id = %v", byAlias.Rows[0][0])
	}
}

func TestOrderByUnselectedColumn(t *testing.T) {
	res := mustQuery(t, tinyDB(), "SELECT id FROM sales ORDER BY amount DESC LIMIT 2")
	if res.Rows[0][0].I != 3 || res.Rows[1][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinWithQualifiedColumns(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT s.id, r.continent FROM sales s JOIN regions r ON s.region = r.region ORDER BY s.id")
	if res.Len() != 5 {
		t.Fatalf("join rows = %d, want 5 (APAC drops)", res.Len())
	}
	if res.Rows[0][1].S != "europe" {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
}

func TestJoinThenGroup(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT r.continent, SUM(s.amount) AS total FROM sales s JOIN regions r ON s.region = r.region GROUP BY r.continent ORDER BY total DESC")
	if res.Len() != 2 {
		t.Fatalf("groups = %d", res.Len())
	}
	if res.Rows[0][0].S != "europe" || res.Rows[0][1].F != 47.5 {
		t.Fatalf("top = %v", res.Rows[0])
	}
}

func TestOrderByAggregateNotSelected(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT region FROM sales GROUP BY region ORDER BY SUM(amount) DESC LIMIT 1")
	if res.Rows[0][0].S != "EU" {
		t.Fatalf("top region = %v", res.Rows[0][0])
	}
}

func TestHavingLikeViaAggregateOrdering(t *testing.T) {
	// The subset has no HAVING; make sure aggregate exprs compose in
	// select items (sum(amount)/count(*)).
	res := mustQuery(t, tinyDB(),
		"SELECT region, SUM(amount) / COUNT(*) AS mean FROM sales GROUP BY region ORDER BY mean DESC LIMIT 1")
	if res.Rows[0][0].S != "EU" {
		t.Fatalf("top = %v", res.Rows[0])
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT region, SUM(amount) AS total FROM sales GROUP BY region HAVING SUM(amount) > 20 ORDER BY total DESC")
	// EU (47.5) and NA (22.5) pass; APAC (5) is filtered out.
	if res.Len() != 2 {
		t.Fatalf("groups after HAVING = %d, want 2", res.Len())
	}
	if res.Rows[0][0].S != "EU" || res.Rows[1][0].S != "NA" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestHavingOnCountWithoutSelectingIt(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT region FROM sales GROUP BY region HAVING COUNT(*) >= 2 ORDER BY region")
	if res.Len() != 2 {
		t.Fatalf("groups = %d, want 2 (EU, NA)", res.Len())
	}
}

func TestHavingOnGroupColumn(t *testing.T) {
	res := mustQuery(t, tinyDB(),
		"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING region != 'EU' ORDER BY region")
	if res.Len() != 2 {
		t.Fatalf("groups = %d, want 2", res.Len())
	}
	for _, row := range res.Rows {
		if row[0].S == "EU" {
			t.Fatal("EU not filtered by HAVING")
		}
	}
}

func TestHavingWithoutAggregationIsError(t *testing.T) {
	if _, err := tinyDB().Query("SELECT id FROM sales HAVING id > 2"); err == nil {
		t.Fatal("HAVING without aggregation must error")
	}
}

func TestHavingNonBooleanIsError(t *testing.T) {
	if _, err := tinyDB().Query("SELECT region, COUNT(*) FROM sales GROUP BY region HAVING SUM(amount)"); err == nil {
		t.Fatal("non-boolean HAVING must error")
	}
}

func TestSemanticErrors(t *testing.T) {
	db := tinyDB()
	bad := []string{
		"SELECT nosuch FROM sales",
		"SELECT id FROM nosuch",
		"SELECT region FROM sales GROUP BY qty",                // region not grouped
		"SELECT * FROM sales GROUP BY region",                  // star with grouping
		"SELECT id FROM sales WHERE region",                    // non-boolean where
		"SELECT id FROM sales WHERE amount = 'x'",              // type mismatch
		"SELECT SUM(region) FROM sales",                        // sum over string
		"SELECT id FROM sales s JOIN regions r ON s.id > 1",    // no equality
		"SELECT id FROM sales ORDER BY 9",                      // position out of range
		"SELECT s.id FROM sales s JOIN sales s ON s.id = s.id", // dup alias
		"SELECT id + region FROM sales",                        // arithmetic on string
		"SELECT NOT id FROM sales",                             // NOT on non-boolean
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	db := tinyDB()
	if _, err := db.Query("SELECT amount / (qty - qty) FROM sales"); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division by zero, got %v", err)
	}
	if _, err := db.Query("SELECT qty % (qty - qty) FROM sales"); err == nil ||
		!strings.Contains(err.Error(), "modulo by zero") {
		t.Fatalf("expected modulo by zero, got %v", err)
	}
}

func TestAmbiguousColumnDetected(t *testing.T) {
	db := tinyDB()
	// region exists in both tables.
	if _, err := db.Query("SELECT region FROM sales s JOIN regions r ON s.region = r.region"); err == nil {
		t.Fatal("expected ambiguity error")
	}
}

// ---------- Optimizer ----------

func TestPushdownReducesJoinInput(t *testing.T) {
	run := func(pushdown bool) int {
		db := DemoDB(42, 5000, 200)
		db.Opt.Pushdown = pushdown
		plan, err := db.Plan(
			"SELECT c.segment, SUM(s.price) AS total FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.year = 2015 GROUP BY c.segment")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := relational.Collect(plan.Root, "x"); err != nil {
			t.Fatal(err)
		}
		// Rows flowing out of the fact-table scan path into the join.
		for _, tag := range []string{"pushdown:s", "scan:s"} {
			if op, ok := plan.TaggedOps[tag]; ok {
				return op.Stats().RowsOut
			}
		}
		t.Fatal("no scan op tagged")
		return 0
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("pushdown should cut join input: %d vs %d", with, without)
	}
}

func TestPushdownSameResults(t *testing.T) {
	q := "SELECT c.segment, COUNT(*) AS n FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.price > 50 GROUP BY c.segment ORDER BY n DESC, 1"
	a := DemoDB(7, 3000, 100)
	b := DemoDB(7, 3000, 100)
	a.Opt.Pushdown = true
	b.Opt.Pushdown = false
	ra := mustQuery(t, a, q)
	rb := mustQuery(t, b, q)
	if ra.Len() != rb.Len() {
		t.Fatalf("row counts differ: %d vs %d", ra.Len(), rb.Len())
	}
	for i := range ra.Rows {
		for j := range ra.Rows[i] {
			if !relational.Equal(ra.Rows[i][j], rb.Rows[i][j]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra.Rows[i][j], rb.Rows[i][j])
			}
		}
	}
}

func TestBuildSideSwapSameResults(t *testing.T) {
	q := "SELECT s.id, r.continent FROM sales s JOIN regions r ON s.region = r.region ORDER BY s.id"
	a := tinyDB()
	b := tinyDB()
	a.Opt.BuildSideSwap = true
	b.Opt.BuildSideSwap = false
	ra := mustQuery(t, a, q)
	rb := mustQuery(t, b, q)
	if ra.Len() != rb.Len() {
		t.Fatalf("lens differ %d vs %d", ra.Len(), rb.Len())
	}
	for i := range ra.Rows {
		if ra.Rows[i][0].I != rb.Rows[i][0].I || ra.Rows[i][1].S != rb.Rows[i][1].S {
			t.Fatalf("row %d differs: %v vs %v", i, ra.Rows[i], rb.Rows[i])
		}
	}
}

func TestConstantFolding(t *testing.T) {
	folded := foldConstants(&BinExpr{Op: "+", L: &IntLit{V: 2}, R: &BinExpr{Op: "*", L: &IntLit{V: 3}, R: &IntLit{V: 4}}})
	if l, ok := folded.(*IntLit); !ok || l.V != 14 {
		t.Fatalf("folded = %#v", folded)
	}
	// Division by zero must NOT fold (runtime error preserved).
	kept := foldConstants(&BinExpr{Op: "/", L: &IntLit{V: 1}, R: &IntLit{V: 0}})
	if _, ok := kept.(*BinExpr); !ok {
		t.Fatalf("1/0 must not fold, got %#v", kept)
	}
}

func TestExplainListsSteps(t *testing.T) {
	db := tinyDB()
	plan, err := db.Plan("SELECT region, COUNT(*) FROM sales WHERE amount > 1 GROUP BY region ORDER BY 2 DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	ex := plan.Explain()
	for _, want := range []string{"scan", "aggregate", "sort", "project", "limit 1"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("explain missing %q:\n%s", want, ex)
		}
	}
}

func TestDemoDBEndToEnd(t *testing.T) {
	db := DemoDB(99, 2000, 150)
	res := mustQuery(t, db, `
		SELECT c.country, COUNT(*) AS orders, SUM(s.price * (1 - s.discount)) AS revenue
		FROM sales s JOIN customers c ON s.customer_id = c.customer_id
		WHERE s.year >= 2012 AND s.quantity > 2
		GROUP BY c.country ORDER BY revenue DESC LIMIT 5`)
	if res.Len() == 0 || res.Len() > 5 {
		t.Fatalf("rows = %d", res.Len())
	}
	// Revenue column descending.
	for i := 1; i < res.Len(); i++ {
		if res.Rows[i][2].F > res.Rows[i-1][2].F {
			t.Fatal("revenue not descending")
		}
	}
}
