package sql

import (
	"errors"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/netsim"
	"repro/internal/relational"
	"repro/internal/stream"
)

// Result is one executed query: the materialized rows plus everything a
// caller needs to understand how they were produced — the plan text, the
// per-operator row counts, and (for distributed runs) the simulated
// network cost of the query's data movements on the shared fabric.
type Result struct {
	// Rows is the materialized output relation.
	Rows *relational.Relation
	// Steps is the executed plan, one line per operator bottom-up.
	Steps []string
	// Ops maps plan tags ("scan:<alias>", "join:<n>", "where", "agg",
	// "sort", "limit") to their post-execution operator stats.
	Ops map[string]relational.OpStats
	// Net is the query's network-side report: nil for single-node runs.
	Net *dist.QueryStats
	// Admission is the query's view of the shared fabric's admission
	// layer — rounds its phases joined, wall-clock barrier wait
	// (queueing delay behind concurrent queries), and the QoS class and
	// weight its flows competed under. Nil for single-node runs.
	Admission *netsim.PartyStats
	// Devices is the heterogeneous-execution report: per device, the
	// morsels and rows the placement policy sent there and the modeled
	// seconds/energy they cost (offload transfer, launch and
	// reconfiguration overheads broken out). Nil when the engine has no
	// device set configured, or when the query ran on the serial row
	// engine. Rows are identical regardless — devices model cost, not
	// semantics.
	Devices []exec.DeviceStats
	// Placement names the policy that placed the morsels ("" on the
	// homogeneous engine).
	Placement string
	// Spill is the out-of-core report of a budgeted run: the query-wide
	// total of state partitions evicted below the memory budget line,
	// bytes moved across the spill tier boundary, and the modeled
	// write/read time and energy they cost. Nil when the query ran
	// without a memory budget; non-nil but inactive (zero partitions)
	// when a budget was set and everything fit. Rows are identical
	// regardless — the budget models cost, not semantics.
	Spill *relational.SpillStats
	// Stream is the streaming report when the serving layer assembled
	// this result from the streaming subsystem (an ingest acknowledgement
	// or a completed subscription's summary); nil for ordinary queries.
	Stream *stream.Stats
}

// ErrPlanSpent reports an attempt to pull a Planned root a second time.
// Operator trees are single-use: re-running one would silently re-drain
// exhausted operators (yielding an empty "result") while NetStats kept
// the previous run's flows. The spent guard turns that silent corruption
// into this explicit error; use Session.Prepare / Stmt.Exec for repeated
// execution — each Exec lowers a fresh tree.
var ErrPlanSpent = errors.New("sql: plan already executed (operator trees are single-use; Prepare a statement to re-execute)")

// spentOp guards a plan root against re-execution: after the stream
// terminates once — clean end OR error — every further pull reports the
// terminal outcome instead of resuming the partially drained tree. A
// failed execution stays failed (the original error is sticky); a
// completed one reports ErrPlanSpent.
type spentOp struct {
	child relational.Op
	spent bool
	err   error
}

// Schema implements relational.Op.
func (s *spentOp) Schema() relational.Schema { return s.child.Schema() }

// Next implements relational.Op.
func (s *spentOp) Next() (relational.Row, bool, error) {
	if s.spent {
		if s.err != nil {
			return nil, false, s.err
		}
		return nil, false, ErrPlanSpent
	}
	row, ok, err := s.child.Next()
	if err != nil {
		s.spent, s.err = true, err
	} else if !ok {
		s.spent = true
	}
	return row, ok, err
}

// Stats implements relational.Op.
func (s *spentOp) Stats() relational.OpStats { return s.child.Stats() }
