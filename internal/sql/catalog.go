package sql

import (
	"repro/internal/relational"
	"repro/internal/workload"
)

// SalesRelation converts the synthetic star-schema fact table into a
// relation named "sales".
func SalesRelation(seed uint64, n, customers int) *relational.Relation {
	rel := relational.NewRelation("sales", relational.Schema{
		{Name: "order_id", Type: relational.Int},
		{Name: "customer_id", Type: relational.Int},
		{Name: "region", Type: relational.String},
		{Name: "product", Type: relational.String},
		{Name: "quantity", Type: relational.Int},
		{Name: "price", Type: relational.Float},
		{Name: "discount", Type: relational.Float},
		{Name: "year", Type: relational.Int},
	})
	for _, r := range workload.Sales(seed, n, customers) {
		rel.MustAppend(relational.Row{
			relational.IntV(r.OrderID),
			relational.IntV(r.CustomerID),
			relational.StringV(r.Region),
			relational.StringV(r.Product),
			relational.IntV(r.Quantity),
			relational.FloatV(r.Price),
			relational.FloatV(r.Discount),
			relational.IntV(r.Year),
		})
	}
	return rel
}

// CustomersRelation converts the customer dimension into a relation named
// "customers".
func CustomersRelation(seed uint64, n int) *relational.Relation {
	rel := relational.NewRelation("customers", relational.Schema{
		{Name: "customer_id", Type: relational.Int},
		{Name: "name", Type: relational.String},
		{Name: "segment", Type: relational.String},
		{Name: "country", Type: relational.String},
	})
	for _, r := range workload.Customers(seed, n) {
		rel.MustAppend(relational.Row{
			relational.IntV(r.CustomerID),
			relational.StringV(r.Name),
			relational.StringV(r.Segment),
			relational.StringV(r.Country),
		})
	}
	return rel
}

// RegisterDemo loads the sales fact table and customers dimension into
// an engine — the standard playground for the SQL examples, benchmarks
// and experiments.
func RegisterDemo(e *Engine, seed uint64, salesRows, customers int) {
	e.Register(SalesRelation(seed, salesRows, customers))
	e.Register(CustomersRelation(seed+1, customers))
}

// DemoDB returns a catalog with sales and customers loaded.
//
// Deprecated: use NewEngine + RegisterDemo; DemoDB serves the legacy DB
// call sites.
func DemoDB(seed uint64, salesRows, customers int) *DB {
	db := NewDB()
	db.Register(SalesRelation(seed, salesRows, customers))
	db.Register(CustomersRelation(seed+1, customers))
	return db
}
