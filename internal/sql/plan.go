package sql

import (
	"fmt"
	"strings"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/relational"
)

// Planned is an executable query plan. Its operator tree is single-use:
// pulling the root after it has ended reports ErrPlanSpent (prepared
// statements re-plan per execution instead).
type Planned struct {
	Root relational.Op
	// Steps is the human-readable plan, one line per operator bottom-up.
	Steps []string
	// TaggedOps exposes operators by tag for stats inspection
	// ("scan:<alias>", "join:<n>", "where", "agg", "sort", "limit").
	TaggedOps map[string]relational.Op

	dist *distRoot
	// placer is the execution's heterogeneous device placer (nil on the
	// homogeneous engine); its aggregate becomes Result.Devices.
	placer *exec.Placer
	// budget is the execution's memory budget (nil on the unbudgeted
	// engine); its query-wide spill aggregate becomes Result.Spill.
	budget *relational.MemoryBudget
}

// Explain renders the plan.
func (p *Planned) Explain() string { return strings.Join(p.Steps, "\n") }

// NetStats reports the simulated-network execution stats of a
// distributed plan: nil for single-node plans, and nil until the plan has
// executed (stats are sourced from the flows the execution charges).
func (p *Planned) NetStats() *dist.QueryStats {
	if p.dist == nil {
		return nil
	}
	return p.dist.stats
}

// tableLeg is one FROM/JOIN input during planning.
type tableLeg struct {
	alias  string
	rel    *relational.Relation
	schema relational.Schema // visible columns (pruned in batch mode)
	prune  []int             // kept original column indices; nil = all
	filter []Expr            // pushed-down conjuncts
}

// collectQueryCols gathers every column reference in the statement, for
// per-leg column pruning.
func collectQueryCols(stmt *SelectStmt) []*ColRef {
	var cols []*ColRef
	for _, it := range stmt.Items {
		collectCols(it.E, &cols)
	}
	if stmt.Where != nil {
		collectCols(stmt.Where, &cols)
	}
	for _, j := range stmt.Joins {
		collectCols(j.On, &cols)
	}
	for _, g := range stmt.GroupBy {
		collectCols(g, &cols)
	}
	if stmt.Having != nil {
		collectCols(stmt.Having, &cols)
	}
	for _, o := range stmt.OrderBy {
		collectCols(o.E, &cols)
	}
	return cols
}

// pruneLeg restricts a leg to the columns the query might reference.
// Bare names that could resolve into several legs are kept in each (a
// safe over-approximation; ambiguity still errors at compile time).
func pruneLeg(leg *tableLeg, refs []*ColRef) {
	used := map[int]bool{}
	for _, cr := range refs {
		if cr.Table != "" && cr.Table != leg.alias {
			continue
		}
		if idx := leg.rel.Schema.ColIndex(cr.Name); idx >= 0 {
			used[idx] = true
		}
	}
	if len(used) == 0 {
		// COUNT(*)-style legs still need one column to carry row counts.
		used[0] = true
	}
	if len(used) >= len(leg.rel.Schema) {
		return
	}
	var keep []int
	var pruned relational.Schema
	for idx := range leg.rel.Schema {
		if used[idx] {
			keep = append(keep, idx)
			pruned = append(pruned, leg.rel.Schema[idx])
		}
	}
	leg.prune = keep
	leg.schema = pruned
}

// resolveLegs binds the FROM and JOIN table references, shared by the
// single-node and distributed planners.
func (pl *planner) resolveLegs(stmt *SelectStmt) ([]*tableLeg, error) {
	legs := []*tableLeg{}
	seen := map[string]bool{}
	addLeg := func(tr TableRef) error {
		rel, ok := pl.eng.Table(tr.Name)
		if !ok {
			return fmt.Errorf("sql: unknown table %q", tr.Name)
		}
		alias := tr.EffectiveAlias()
		if seen[alias] {
			return fmt.Errorf("sql: duplicate table alias %q", alias)
		}
		seen[alias] = true
		legs = append(legs, &tableLeg{alias: alias, rel: rel, schema: rel.Schema})
		return nil
	}
	if err := addLeg(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := addLeg(j.Table); err != nil {
			return nil, err
		}
	}
	return legs, nil
}

// splitWhere folds constants (per options) and attaches single-leg WHERE
// conjuncts to their legs, returning the residual conjuncts. Both
// planners share it so pushdown decisions — and the sizing estimates
// they feed — stay identical.
func (pl *planner) splitWhere(stmt *SelectStmt, legs []*tableLeg) []Expr {
	where := stmt.Where
	if where == nil {
		return nil
	}
	if pl.cfg.ConstantFolding {
		where = foldConstants(where)
	}
	var residual []Expr
	for _, c := range splitConjuncts(where) {
		leg := pl.soleLeg(c, legs)
		if pl.cfg.Pushdown && leg != nil {
			leg.filter = append(leg.filter, c)
		} else {
			residual = append(residual, c)
		}
	}
	return residual
}

// legSizeEstimate is the optimizer's crude post-pushdown cardinality
// guess for a leg. The distributed planner must use the same estimate as
// the single-node one: the build-side choice it feeds determines the
// probe side, and with it the output row order both engines must share.
func legSizeEstimate(leg *tableLeg) int {
	size := leg.rel.Len()
	if len(leg.filter) > 0 {
		size = size / (2 * len(leg.filter))
	}
	return size
}

// buildOnRight reports whether a hash join builds on the (smaller) right
// leg — the swap decision both planners must agree on.
func (pl *planner) buildOnRight(rightSize, curSize int) bool {
	return pl.cfg.BuildSideSwap && rightSize < curSize
}

// advanceJoinSize updates the running cardinality estimate after joining
// the current stream with a leg.
func advanceJoinSize(curSize, rightSize, rightLen int) int {
	curSize = curSize * max(1, rightSize) / max(1, rightLen)
	if curSize < 1 {
		return 1
	}
	return curSize
}

func (pl *planner) planStmt(stmt *SelectStmt) (*Planned, error) {
	if pl.cfg.Distributed {
		return pl.planDistStmt(stmt)
	}
	p := &Planned{TaggedOps: map[string]relational.Op{}}
	lw := &lowerer{parallel: pl.cfg.Parallel, workers: pl.cfg.Workers, cancel: pl.cancel}
	if lw.parallel {
		p.Steps = append(p.Steps, fmt.Sprintf("engine: morsel-parallel batch (%d workers, %d-row batches)",
			relational.EffectiveWorkers(lw.workers), relational.BatchSize))
		// Heterogeneous placement rides the batch operators; the serial
		// row engine has no morsels to place.
		placer, err := pl.heteroPlacer()
		if err != nil {
			return nil, err
		}
		if placer != nil {
			lw.placer, p.placer = placer, placer
			p.Steps = append(p.Steps, "hetero: "+placer.String())
		}
	}
	// Out-of-core budgeting applies on both engines: the serial row
	// operators account their materialized state against the same budget
	// the batch operators grace-partition under.
	budget, err := pl.spillBudget()
	if err != nil {
		return nil, err
	}
	if budget != nil {
		lw.budget, p.budget = budget, budget
		p.Steps = append(p.Steps, "spill: "+budget.String())
	}

	legs, err := pl.resolveLegs(stmt)
	if err != nil {
		return nil, err
	}

	// Column pruning (batch mode only): a pick-projection over the scan
	// shares column vectors for free, and every later gather then touches
	// only referenced columns. The row engine reads rows in place, where
	// pruning would cost a copy per row instead of saving one.
	if lw.parallel && !stmt.Star {
		refs := collectQueryCols(stmt)
		for _, leg := range legs {
			pruneLeg(leg, refs)
		}
	}

	// Predicate pushdown: single-table conjuncts attach to their leg.
	residual := pl.splitWhere(stmt, legs)

	// Build scans (with pushed filters) per leg.
	legOps := make([]execNode, len(legs))
	legSizes := make([]int, len(legs))
	for i, leg := range legs {
		lw.hintRows = leg.rel.Len()
		n := lw.scan(leg.rel)
		p.TaggedOps["scan:"+leg.alias] = lw.op(n)
		if leg.prune != nil {
			exprs := make([]relational.Projector, len(leg.prune))
			picks := make([]int, len(leg.prune))
			for pi, idx := range leg.prune {
				exprs[pi] = pickProjector(idx)
				picks[pi] = idx
			}
			var err error
			n, err = lw.project(n, leg.schema, exprs, picks)
			if err != nil {
				return nil, err
			}
			p.Steps = append(p.Steps, fmt.Sprintf("prune %s to %d/%d columns", leg.alias, len(leg.prune), len(leg.rel.Schema)))
		}
		if len(leg.filter) > 0 {
			sc := &scope{}
			sc.addTable(leg.alias, leg.schema, 0)
			filtered, err := lw.filter(n, sc, joinConjuncts(leg.filter))
			if err != nil {
				return nil, err
			}
			n = filtered
			p.TaggedOps["pushdown:"+leg.alias] = lw.op(n)
			p.Steps = append(p.Steps, fmt.Sprintf("pushdown filter on %s: %s", leg.alias, joinConjuncts(leg.filter).Render()))
		}
		legOps[i] = n
		legSizes[i] = legSizeEstimate(leg)
		p.Steps = append(p.Steps, fmt.Sprintf("scan %s as %s (%d rows)", leg.rel.Name, leg.alias, leg.rel.Len()))
	}

	// Left-deep joins. The combined scope always reads
	// legs[0] ++ legs[1] ++ ... in declaration order.
	cur := legOps[0]
	curSize := legSizes[0]
	curScope := &scope{}
	curScope.addTable(legs[0].alias, legs[0].schema, 0)
	curWidth := len(legs[0].schema)

	for ji, j := range stmt.Joins {
		leg := legs[ji+1]
		rightScope := &scope{}
		rightScope.addTable(leg.alias, leg.schema, 0)

		leftCol, rightCol, rest, err := pl.splitJoinOn(j.On, curScope, rightScope)
		if err != nil {
			return nil, err
		}
		build, probe := cur, legOps[ji+1]
		buildCol, probeCol := leftCol, rightCol
		swapped := pl.buildOnRight(legSizes[ji+1], curSize)
		if swapped {
			build, probe = legOps[ji+1], cur
			buildCol, probeCol = rightCol, leftCol
		}
		joined, err := lw.hashJoin(build, probe, buildCol, probeCol)
		if err != nil {
			return nil, err
		}
		rightWidth := len(leg.schema)
		if swapped {
			// Restore canonical column order: left columns then right.
			joined, err = reorderColumns(lw, joined, rightWidth, curWidth)
			if err != nil {
				return nil, err
			}
		}
		p.TaggedOps[fmt.Sprintf("join:%d", ji)] = lw.op(joined)
		p.Steps = append(p.Steps, fmt.Sprintf("hash join #%d on %s (build=%s)",
			ji, j.On.Render(), map[bool]string{true: leg.alias, false: "left"}[swapped]))

		// Extend the scope.
		curScope.addTable(leg.alias, leg.schema, curWidth)
		curWidth += rightWidth
		cur = joined
		curSize = advanceJoinSize(curSize, legSizes[ji+1], leg.rel.Len())
		lw.hintRows = curSize

		// Non-equi residue of the ON clause.
		if rest != nil {
			cur, err = lw.filter(cur, curScope, rest)
			if err != nil {
				return nil, err
			}
			p.Steps = append(p.Steps, "post-join filter: "+rest.Render())
		}
	}

	// Residual WHERE.
	if len(residual) > 0 {
		var err error
		cur, err = lw.filter(cur, curScope, joinConjuncts(residual))
		if err != nil {
			return nil, err
		}
		p.TaggedOps["where"] = lw.op(cur)
		p.Steps = append(p.Steps, "filter: "+joinConjuncts(residual).Render())
	}

	if stmt.HasAggregates() {
		return pl.planAggregate(stmt, p, lw, cur, curScope)
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("sql: HAVING requires aggregation")
	}
	return pl.planSimple(stmt, p, lw, cur, curScope)
}

// starItems expands SELECT * into one item per visible column (appended
// to any explicit items).
func starItems(stmt *SelectStmt, sc *scope) []SelectItem {
	items := stmt.Items
	for _, e := range sc.entries {
		items = append(items, SelectItem{E: &ColRef{Table: e.qualifier, Name: e.name}})
	}
	return items
}

// planSimple handles queries without aggregation: sort (over input
// expressions), project, limit.
func (pl *planner) planSimple(stmt *SelectStmt, p *Planned, lw *lowerer, cur execNode, sc *scope) (*Planned, error) {
	items := stmt.Items
	if stmt.Star {
		items = starItems(stmt, sc)
	}

	// ORDER BY before projection: keys evaluate over the input scope.
	if len(stmt.OrderBy) > 0 {
		sorted, err := pl.sortOver(lw, stmt.OrderBy, items, cur, sc)
		if err != nil {
			return nil, err
		}
		cur = sorted
		p.TaggedOps["sort"] = lw.op(cur)
		p.Steps = append(p.Steps, "sort")
	}

	proj, err := projectItems(lw, items, sc, cur)
	if err != nil {
		return nil, err
	}
	cur = proj
	p.Steps = append(p.Steps, "project "+itemNames(items))

	if stmt.Limit >= 0 {
		cur = lw.limit(cur, stmt.Limit)
		p.TaggedOps["limit"] = lw.op(cur)
		p.Steps = append(p.Steps, fmt.Sprintf("limit %d", stmt.Limit))
	}
	p.Root = lw.finish(cur)
	return p, nil
}

// aggPlan is the compiled shape of an aggregation: the pre-projection
// feeding the aggregate (group expressions then aggregate arguments) and
// the aggregate specs plus the result types the post-aggregation scope
// binds. Both planners build it once and lower it differently — the
// single-node path into one BatchGroupAgg, the distributed path into
// per-shard partials with a coordinator merge.
type aggPlan struct {
	aggs       []*AggExpr
	preSchema  relational.Schema
	preExprs   []relational.Projector
	prePicks   []int
	groupCols  []int
	groupTypes []valType
	aggSpecs   []relational.AggSpec
	aggTypes   []valType
}

// buildAggPlan gathers the statement's distinct aggregates and compiles
// the pre-projection against sc.
func buildAggPlan(stmt *SelectStmt, sc *scope, childSchema relational.Schema) (*aggPlan, error) {
	ap := &aggPlan{}
	aggSeen := map[string]*AggExpr{}
	for _, it := range stmt.Items {
		collectAggs(it.E, aggSeen, &ap.aggs)
	}
	if stmt.Having != nil {
		collectAggs(stmt.Having, aggSeen, &ap.aggs)
	}
	for _, o := range stmt.OrderBy {
		collectAggs(o.E, aggSeen, &ap.aggs)
	}

	ap.groupCols = make([]int, len(stmt.GroupBy))
	ap.groupTypes = make([]valType, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		c, err := sc.compile(g)
		if err != nil {
			return nil, err
		}
		ap.groupCols[i] = i
		ap.groupTypes[i] = c.typ
		ap.preSchema = append(ap.preSchema, relational.Column{Name: fmt.Sprintf("g%d", i), Type: toRelType(c.typ)})
		ap.preExprs = append(ap.preExprs, c.eval)
		ap.prePicks = append(ap.prePicks, passthroughIdx(sc, g, childSchema))
	}
	ap.aggTypes = make([]valType, len(ap.aggs))
	for i, a := range ap.aggs {
		col := -1
		argT := tInt
		if !a.Star {
			c, err := sc.compile(a.Arg)
			if err != nil {
				return nil, err
			}
			if c.typ == tBool {
				return nil, fmt.Errorf("sql: aggregate over boolean expression %s", a.Render())
			}
			if (a.Fn == "sum" || a.Fn == "avg") && c.typ == tString {
				return nil, fmt.Errorf("sql: %s over string expression", a.Fn)
			}
			col = len(ap.preSchema)
			argT = c.typ
			ap.preSchema = append(ap.preSchema, relational.Column{Name: fmt.Sprintf("a%d", i), Type: toRelType(c.typ)})
			ap.preExprs = append(ap.preExprs, c.eval)
			ap.prePicks = append(ap.prePicks, passthroughIdx(sc, a.Arg, childSchema))
		}
		fn := map[string]relational.AggFn{
			"count": relational.CountAgg, "sum": relational.SumAgg,
			"avg": relational.AvgAgg, "min": relational.MinAgg, "max": relational.MaxAgg,
		}[a.Fn]
		ap.aggSpecs = append(ap.aggSpecs, relational.AggSpec{Fn: fn, Col: col, Name: a.Render()})
		switch a.Fn {
		case "count":
			ap.aggTypes[i] = tInt
		case "avg":
			ap.aggTypes[i] = tFloat
		default:
			ap.aggTypes[i] = argT
		}
	}
	return ap, nil
}

// postScope binds group expressions and aggregates (by rendering) to the
// aggregate output columns.
func (ap *aggPlan) postScope(stmt *SelectStmt) *scope {
	post := &scope{exprBind: map[string]boundExpr{}}
	for i, g := range stmt.GroupBy {
		post.exprBind[g.Render()] = boundExpr{index: i, typ: ap.groupTypes[i]}
		// A bare group-by column is also addressable unqualified.
		if cr, ok := g.(*ColRef); ok && cr.Table != "" {
			post.exprBind[(&ColRef{Name: cr.Name}).Render()] = boundExpr{index: i, typ: ap.groupTypes[i]}
		}
	}
	aggOutBase := len(stmt.GroupBy)
	for i, a := range ap.aggs {
		post.exprBind[a.Render()] = boundExpr{index: aggOutBase + i, typ: ap.aggTypes[i]}
	}
	return post
}

// planAggregate handles GROUP BY / aggregate queries: pre-project group
// keys and aggregate arguments, aggregate, then sort/project/limit over
// the aggregated scope.
func (pl *planner) planAggregate(stmt *SelectStmt, p *Planned, lw *lowerer, cur execNode, sc *scope) (*Planned, error) {
	if stmt.Star {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
	}
	ap, err := buildAggPlan(stmt, sc, schemaOf(cur))
	if err != nil {
		return nil, err
	}
	pre, err := lw.project(cur, ap.preSchema, ap.preExprs, ap.prePicks)
	if err != nil {
		return nil, err
	}
	agg, err := lw.groupAgg(pre, ap.groupCols, ap.aggSpecs)
	if err != nil {
		return nil, err
	}
	p.TaggedOps["agg"] = lw.op(agg)
	p.Steps = append(p.Steps, fmt.Sprintf("aggregate (%d group cols, %d aggregates)", len(ap.groupCols), len(ap.aggSpecs)))
	return pl.finishAggregate(stmt, p, lw, agg, ap)
}

// finishAggregate plans everything above the aggregate: HAVING, ORDER BY,
// projection and LIMIT over the post-aggregation scope. The distributed
// planner reuses it at the coordinator, over the merged partials.
func (pl *planner) finishAggregate(stmt *SelectStmt, p *Planned, lw *lowerer, cur2 execNode, ap *aggPlan) (*Planned, error) {
	post := ap.postScope(stmt)
	lw.hintRows = 0 // post-aggregation cardinality (group count) is unknown
	var err error
	if stmt.Having != nil {
		cur2, err = lw.filter(cur2, post, stmt.Having)
		if err != nil {
			return nil, err
		}
		p.TaggedOps["having"] = lw.op(cur2)
		p.Steps = append(p.Steps, "having: "+stmt.Having.Render())
	}
	if len(stmt.OrderBy) > 0 {
		sorted, err := pl.sortOver(lw, stmt.OrderBy, stmt.Items, cur2, post)
		if err != nil {
			return nil, err
		}
		cur2 = sorted
		p.TaggedOps["sort"] = lw.op(cur2)
		p.Steps = append(p.Steps, "sort")
	}
	proj, err := projectItems(lw, stmt.Items, post, cur2)
	if err != nil {
		return nil, err
	}
	cur2 = proj
	p.Steps = append(p.Steps, "project "+itemNames(stmt.Items))
	if stmt.Limit >= 0 {
		cur2 = lw.limit(cur2, stmt.Limit)
		p.TaggedOps["limit"] = lw.op(cur2)
		p.Steps = append(p.Steps, fmt.Sprintf("limit %d", stmt.Limit))
	}
	p.Root = lw.finish(cur2)
	return p, nil
}

// schemaOf reads a node's schema without consuming it.
func schemaOf(n execNode) relational.Schema {
	if n.bat != nil {
		return n.bat.Schema()
	}
	return n.row.Schema()
}

// pickProjector reads column idx through.
func pickProjector(idx int) relational.Projector {
	return func(r relational.Row) (relational.Value, error) { return r[idx], nil }
}

// compileOrderKeys resolves and compiles ORDER BY items against sc, with
// aliases and 1-based positions resolving through the select items. It
// returns the key columns to materialize (types named sortkey<i>), their
// projectors and pass-through picks, and each key's direction — the
// single-node sort and the distributed pre-shuffle widening share it.
func compileOrderKeys(order []OrderItem, items []SelectItem, sc *scope, childSchema relational.Schema) ([]relational.Column, []relational.Projector, []int, []bool, error) {
	var cols []relational.Column
	var exprs []relational.Projector
	var picks []int
	var descs []bool
	for ki, o := range order {
		e := o.E
		// Position (ORDER BY 2) and alias resolution.
		if lit, ok := e.(*IntLit); ok {
			if lit.V < 1 || int(lit.V) > len(items) {
				return nil, nil, nil, nil, fmt.Errorf("sql: ORDER BY position %d out of range", lit.V)
			}
			e = items[lit.V-1].E
		} else if cr, ok := e.(*ColRef); ok && cr.Table == "" {
			for _, it := range items {
				if it.Alias == cr.Name {
					e = it.E
					break
				}
			}
		}
		c, err := sc.compile(e)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cols = append(cols, relational.Column{Name: fmt.Sprintf("sortkey%d", ki), Type: toRelType(c.typ)})
		exprs = append(exprs, c.eval)
		picks = append(picks, passthroughIdx(sc, e, childSchema))
		descs = append(descs, o.Desc)
	}
	return cols, exprs, picks, descs, nil
}

// sortOver plans a sort whose keys are ORDER BY items resolved against
// sc, with aliases and 1-based positions resolving through the select
// items.
func (pl *planner) sortOver(lw *lowerer, order []OrderItem, items []SelectItem, child execNode, sc *scope) (execNode, error) {
	// The sort operator orders by concrete columns, so materialize the
	// key expressions as extra columns, sort, then strip them.
	childSchema := schemaOf(child)
	width := len(childSchema)
	schema := append(relational.Schema{}, childSchema...)
	exprs := make([]relational.Projector, width)
	picks := make([]int, width)
	for i := 0; i < width; i++ {
		exprs[i] = pickProjector(i)
		picks[i] = i
	}
	keyCols, keyExprs, keyPicks, descs, err := compileOrderKeys(order, items, sc, childSchema)
	if err != nil {
		return execNode{}, err
	}
	var keys []relational.SortKey
	for ki := range keyCols {
		schema = append(schema, keyCols[ki])
		exprs = append(exprs, keyExprs[ki])
		picks = append(picks, keyPicks[ki])
		keys = append(keys, relational.SortKey{Col: width + ki, Desc: descs[ki]})
	}
	widened, err := lw.project(child, schema, exprs, picks)
	if err != nil {
		return execNode{}, err
	}
	sorted, err := lw.sort(widened, keys)
	if err != nil {
		return execNode{}, err
	}
	// Strip the key columns again.
	stripSchema := append(relational.Schema{}, childSchema...)
	stripExprs := make([]relational.Projector, width)
	stripPicks := make([]int, width)
	for i := 0; i < width; i++ {
		stripExprs[i] = pickProjector(i)
		stripPicks[i] = i
	}
	return lw.project(sorted, stripSchema, stripExprs, stripPicks)
}

// compileItems compiles the select items against sc into the output
// schema, projectors and pass-through picks.
func compileItems(items []SelectItem, sc *scope, childSchema relational.Schema) (relational.Schema, []relational.Projector, []int, error) {
	var schema relational.Schema
	var exprs []relational.Projector
	var picks []int
	for _, it := range items {
		c, err := sc.compile(it.E)
		if err != nil {
			return nil, nil, nil, err
		}
		schema = append(schema, relational.Column{Name: it.OutputName(), Type: toRelType(c.typ)})
		exprs = append(exprs, c.eval)
		picks = append(picks, passthroughIdx(sc, it.E, childSchema))
	}
	return schema, exprs, picks, nil
}

// projectItems builds the final projection.
func projectItems(lw *lowerer, items []SelectItem, sc *scope, child execNode) (execNode, error) {
	childSchema := schemaOf(child)
	schema, exprs, picks, err := compileItems(items, sc, childSchema)
	if err != nil {
		return execNode{}, err
	}
	return lw.project(child, schema, exprs, picks)
}

func itemNames(items []SelectItem) string {
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.OutputName()
	}
	return strings.Join(names, ", ")
}

// compilePredicate compiles a boolean expression into a relational
// Predicate.
func compilePredicate(sc *scope, e Expr) (relational.Predicate, error) {
	c, err := sc.compile(e)
	if err != nil {
		return nil, err
	}
	if c.typ != tBool {
		return nil, fmt.Errorf("sql: filter requires a boolean, got %s (%s)", c.typ, e.Render())
	}
	return func(r relational.Row) (bool, error) {
		v, err := c.eval(r)
		if err != nil {
			return false, err
		}
		return v.I != 0, nil
	}, nil
}

// soleLeg returns the single leg all of e's columns resolve into, or nil.
func (pl *planner) soleLeg(e Expr, legs []*tableLeg) *tableLeg {
	var cols []*ColRef
	collectCols(e, &cols)
	if len(cols) == 0 {
		return nil
	}
	var owner *tableLeg
	for _, c := range cols {
		var match *tableLeg
		for _, leg := range legs {
			if c.Table != "" && c.Table != leg.alias {
				continue
			}
			if leg.rel.Schema.ColIndex(c.Name) >= 0 {
				if match != nil {
					return nil // ambiguous bare column: leave in residual
				}
				match = leg
			}
		}
		if match == nil {
			return nil
		}
		if owner == nil {
			owner = match
		} else if owner != match {
			return nil
		}
	}
	return owner
}

// splitJoinOn extracts one left.col = right.col equality from an ON
// expression; remaining conjuncts are returned as a residual filter over
// the combined scope.
func (pl *planner) splitJoinOn(on Expr, left, right *scope) (leftCol, rightCol int, residual Expr, err error) {
	conjuncts := splitConjuncts(on)
	eqIdx := -1
	for i, c := range conjuncts {
		b, ok := c.(*BinExpr)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		// Try L in left scope, R in right scope; then swapped.
		if le, lerr := left.resolve(lc); lerr == nil {
			if re, rerr := right.resolve(rc); rerr == nil {
				leftCol, rightCol, eqIdx = le.index, re.index, i
				break
			}
		}
		if le, lerr := left.resolve(rc); lerr == nil {
			if re, rerr := right.resolve(lc); rerr == nil {
				leftCol, rightCol, eqIdx = le.index, re.index, i
				break
			}
		}
	}
	if eqIdx < 0 {
		return 0, 0, nil, fmt.Errorf("sql: JOIN ON must contain an equality between the two tables: %s", on.Render())
	}
	rest := append(append([]Expr{}, conjuncts[:eqIdx]...), conjuncts[eqIdx+1:]...)
	return leftCol, rightCol, joinConjuncts(rest), nil
}

// reorderColumns re-projects a swapped join output (right ++ left) back to
// canonical (left ++ right).
func reorderColumns(lw *lowerer, n execNode, rightWidth, leftWidth int) (execNode, error) {
	in := schemaOf(n)
	if len(in) != rightWidth+leftWidth {
		return execNode{}, fmt.Errorf("sql: reorder width mismatch: %d != %d+%d", len(in), rightWidth, leftWidth)
	}
	var schema relational.Schema
	var exprs []relational.Projector
	var picks []int
	for i := 0; i < leftWidth; i++ {
		schema = append(schema, in[rightWidth+i])
		exprs = append(exprs, pickProjector(rightWidth+i))
		picks = append(picks, rightWidth+i)
	}
	for i := 0; i < rightWidth; i++ {
		schema = append(schema, in[i])
		exprs = append(exprs, pickProjector(i))
		picks = append(picks, i)
	}
	return lw.project(n, schema, exprs, picks)
}
