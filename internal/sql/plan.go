package sql

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// Options toggles optimizer rules (the ablation experiments switch these).
type Options struct {
	// Pushdown moves single-table WHERE conjuncts below joins.
	Pushdown bool
	// BuildSideSwap builds the hash join on the smaller estimated input.
	BuildSideSwap bool
	// ConstantFolding evaluates literal subtrees at plan time.
	ConstantFolding bool
}

// DefaultOptions enables every rule.
func DefaultOptions() Options {
	return Options{Pushdown: true, BuildSideSwap: true, ConstantFolding: true}
}

// DB is a catalog of named relations plus optimizer settings.
type DB struct {
	Opt    Options
	tables map[string]*relational.Relation
}

// NewDB returns an empty catalog with default optimizer options.
func NewDB() *DB { return &DB{Opt: DefaultOptions(), tables: map[string]*relational.Relation{}} }

// Register adds (or replaces) a table under its lowercased name.
func (db *DB) Register(rel *relational.Relation) {
	db.tables[strings.ToLower(rel.Name)] = rel
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*relational.Relation, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Planned is an executable query plan.
type Planned struct {
	Root relational.Op
	// Steps is the human-readable plan, one line per operator bottom-up.
	Steps []string
	// TaggedOps exposes operators by tag for stats inspection
	// ("scan:<alias>", "join:<n>", "where", "agg", "sort", "limit").
	TaggedOps map[string]relational.Op
}

// Explain renders the plan.
func (p *Planned) Explain() string { return strings.Join(p.Steps, "\n") }

// Query parses, plans and executes, returning a materialized result.
func (db *DB) Query(q string) (*relational.Relation, error) {
	plan, err := db.Plan(q)
	if err != nil {
		return nil, err
	}
	return relational.Collect(plan.Root, "result")
}

// Plan parses and plans without executing.
func (db *DB) Plan(q string) (*Planned, error) {
	stmt, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return db.planStmt(stmt)
}

// tableLeg is one FROM/JOIN input during planning.
type tableLeg struct {
	alias  string
	rel    *relational.Relation
	filter []Expr // pushed-down conjuncts
}

func (db *DB) planStmt(stmt *SelectStmt) (*Planned, error) {
	p := &Planned{TaggedOps: map[string]relational.Op{}}

	// Resolve tables.
	legs := []*tableLeg{}
	seen := map[string]bool{}
	addLeg := func(tr TableRef) error {
		rel, ok := db.Table(tr.Name)
		if !ok {
			return fmt.Errorf("sql: unknown table %q", tr.Name)
		}
		alias := tr.EffectiveAlias()
		if seen[alias] {
			return fmt.Errorf("sql: duplicate table alias %q", alias)
		}
		seen[alias] = true
		legs = append(legs, &tableLeg{alias: alias, rel: rel})
		return nil
	}
	if err := addLeg(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := addLeg(j.Table); err != nil {
			return nil, err
		}
	}

	where := stmt.Where
	if where != nil && db.Opt.ConstantFolding {
		where = foldConstants(where)
	}

	// Predicate pushdown: single-table conjuncts attach to their leg.
	var residual []Expr
	if where != nil {
		for _, c := range splitConjuncts(where) {
			leg := db.soleLeg(c, legs)
			if db.Opt.Pushdown && leg != nil {
				leg.filter = append(leg.filter, c)
			} else {
				residual = append(residual, c)
			}
		}
	}

	// Build scans (with pushed filters) per leg.
	legOps := make([]relational.Op, len(legs))
	legSizes := make([]int, len(legs))
	for i, leg := range legs {
		var op relational.Op = relational.NewScan(leg.rel)
		p.TaggedOps["scan:"+leg.alias] = op
		size := leg.rel.Len()
		if len(leg.filter) > 0 {
			sc := &scope{}
			sc.addTable(leg.alias, leg.rel.Schema, 0)
			pred, err := compilePredicate(sc, joinConjuncts(leg.filter))
			if err != nil {
				return nil, err
			}
			op = relational.NewFilter(op, pred)
			p.TaggedOps["pushdown:"+leg.alias] = op
			// Crude selectivity estimate for build-side choice.
			size = size / (2 * len(leg.filter))
			p.Steps = append(p.Steps, fmt.Sprintf("pushdown filter on %s: %s", leg.alias, joinConjuncts(leg.filter).Render()))
		}
		legOps[i] = op
		legSizes[i] = size
		p.Steps = append(p.Steps, fmt.Sprintf("scan %s as %s (%d rows)", leg.rel.Name, leg.alias, leg.rel.Len()))
	}

	// Left-deep joins. The combined scope always reads
	// legs[0] ++ legs[1] ++ ... in declaration order.
	cur := legOps[0]
	curSize := legSizes[0]
	curScope := &scope{}
	curScope.addTable(legs[0].alias, legs[0].rel.Schema, 0)
	curWidth := len(legs[0].rel.Schema)

	for ji, j := range stmt.Joins {
		leg := legs[ji+1]
		rightScope := &scope{}
		rightScope.addTable(leg.alias, leg.rel.Schema, 0)

		leftCol, rightCol, rest, err := db.splitJoinOn(j.On, curScope, rightScope)
		if err != nil {
			return nil, err
		}
		build, probe := cur, legOps[ji+1]
		buildCol, probeCol := leftCol, rightCol
		swapped := false
		if db.Opt.BuildSideSwap && legSizes[ji+1] < curSize {
			build, probe = legOps[ji+1], cur
			buildCol, probeCol = rightCol, leftCol
			swapped = true
		}
		join, err := relational.NewHashJoin(build, probe, buildCol, probeCol)
		if err != nil {
			return nil, err
		}
		var joined relational.Op = join
		rightWidth := len(leg.rel.Schema)
		if swapped {
			// Restore canonical column order: left columns then right.
			restored, err := reorderColumns(join, rightWidth, curWidth)
			if err != nil {
				return nil, err
			}
			joined = restored
		}
		p.TaggedOps[fmt.Sprintf("join:%d", ji)] = joined
		p.Steps = append(p.Steps, fmt.Sprintf("hash join #%d on %s (build=%s)",
			ji, j.On.Render(), map[bool]string{true: leg.alias, false: "left"}[swapped]))

		// Extend the scope.
		curScope.addTable(leg.alias, leg.rel.Schema, curWidth)
		curWidth += rightWidth
		cur = joined
		curSize = curSize * max(1, legSizes[ji+1]) / max(1, leg.rel.Len())
		if curSize < 1 {
			curSize = 1
		}

		// Non-equi residue of the ON clause.
		if rest != nil {
			pred, err := compilePredicate(curScope, rest)
			if err != nil {
				return nil, err
			}
			cur = relational.NewFilter(cur, pred)
			p.Steps = append(p.Steps, "post-join filter: "+rest.Render())
		}
	}

	// Residual WHERE.
	if len(residual) > 0 {
		pred, err := compilePredicate(curScope, joinConjuncts(residual))
		if err != nil {
			return nil, err
		}
		cur = relational.NewFilter(cur, pred)
		p.TaggedOps["where"] = cur
		p.Steps = append(p.Steps, "filter: "+joinConjuncts(residual).Render())
	}

	if stmt.HasAggregates() {
		return db.planAggregate(stmt, p, cur, curScope)
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("sql: HAVING requires aggregation")
	}
	return db.planSimple(stmt, p, cur, curScope)
}

// planSimple handles queries without aggregation: sort (over input
// expressions), project, limit.
func (db *DB) planSimple(stmt *SelectStmt, p *Planned, cur relational.Op, sc *scope) (*Planned, error) {
	items := stmt.Items
	if stmt.Star {
		for _, e := range sc.entries {
			items = append(items, SelectItem{E: &ColRef{Table: e.qualifier, Name: e.name}})
		}
	}

	// ORDER BY before projection: keys evaluate over the input scope.
	if len(stmt.OrderBy) > 0 {
		sorted, err := db.sortOver(stmt.OrderBy, items, cur, sc)
		if err != nil {
			return nil, err
		}
		cur = sorted
		p.TaggedOps["sort"] = cur
		p.Steps = append(p.Steps, "sort")
	}

	proj, err := projectItems(items, sc, cur)
	if err != nil {
		return nil, err
	}
	cur = proj
	p.Steps = append(p.Steps, "project "+itemNames(items))

	if stmt.Limit >= 0 {
		cur = relational.NewLimit(cur, stmt.Limit)
		p.TaggedOps["limit"] = cur
		p.Steps = append(p.Steps, fmt.Sprintf("limit %d", stmt.Limit))
	}
	p.Root = cur
	return p, nil
}

// planAggregate handles GROUP BY / aggregate queries: pre-project group
// keys and aggregate arguments, aggregate, then sort/project/limit over
// the aggregated scope.
func (db *DB) planAggregate(stmt *SelectStmt, p *Planned, cur relational.Op, sc *scope) (*Planned, error) {
	if stmt.Star {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
	}
	// Gather distinct aggregates across select items, HAVING and ORDER BY.
	aggSeen := map[string]*AggExpr{}
	var aggs []*AggExpr
	for _, it := range stmt.Items {
		collectAggs(it.E, aggSeen, &aggs)
	}
	if stmt.Having != nil {
		collectAggs(stmt.Having, aggSeen, &aggs)
	}
	for _, o := range stmt.OrderBy {
		collectAggs(o.E, aggSeen, &aggs)
	}

	// Pre-projection: group exprs then aggregate arguments.
	var preSchema relational.Schema
	var preExprs []relational.Projector
	groupCols := make([]int, len(stmt.GroupBy))
	groupTypes := make([]valType, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		c, err := sc.compile(g)
		if err != nil {
			return nil, err
		}
		groupCols[i] = i
		groupTypes[i] = c.typ
		preSchema = append(preSchema, relational.Column{Name: fmt.Sprintf("g%d", i), Type: toRelType(c.typ)})
		preExprs = append(preExprs, c.eval)
	}
	var aggSpecs []relational.AggSpec
	aggTypes := make([]valType, len(aggs))
	for i, a := range aggs {
		col := -1
		argT := tInt
		if !a.Star {
			c, err := sc.compile(a.Arg)
			if err != nil {
				return nil, err
			}
			if c.typ == tBool {
				return nil, fmt.Errorf("sql: aggregate over boolean expression %s", a.Render())
			}
			if (a.Fn == "sum" || a.Fn == "avg") && c.typ == tString {
				return nil, fmt.Errorf("sql: %s over string expression", a.Fn)
			}
			col = len(preSchema)
			argT = c.typ
			preSchema = append(preSchema, relational.Column{Name: fmt.Sprintf("a%d", i), Type: toRelType(c.typ)})
			preExprs = append(preExprs, c.eval)
		}
		fn := map[string]relational.AggFn{
			"count": relational.CountAgg, "sum": relational.SumAgg,
			"avg": relational.AvgAgg, "min": relational.MinAgg, "max": relational.MaxAgg,
		}[a.Fn]
		aggSpecs = append(aggSpecs, relational.AggSpec{Fn: fn, Col: col, Name: a.Render()})
		switch a.Fn {
		case "count":
			aggTypes[i] = tInt
		case "avg":
			aggTypes[i] = tFloat
		default:
			aggTypes[i] = argT
		}
	}
	pre, err := relational.NewProject(cur, preSchema, preExprs)
	if err != nil {
		return nil, err
	}
	agg, err := relational.NewGroupAgg(pre, groupCols, aggSpecs)
	if err != nil {
		return nil, err
	}
	p.TaggedOps["agg"] = agg
	p.Steps = append(p.Steps, fmt.Sprintf("aggregate (%d group cols, %d aggregates)", len(groupCols), len(aggSpecs)))

	// Post-aggregation scope: group exprs and aggregates bound by
	// rendering.
	post := &scope{exprBind: map[string]boundExpr{}}
	for i, g := range stmt.GroupBy {
		post.exprBind[g.Render()] = boundExpr{index: i, typ: groupTypes[i]}
		// A bare group-by column is also addressable unqualified.
		if cr, ok := g.(*ColRef); ok && cr.Table != "" {
			post.exprBind[(&ColRef{Name: cr.Name}).Render()] = boundExpr{index: i, typ: groupTypes[i]}
		}
	}
	aggOutBase := len(stmt.GroupBy)
	for i, a := range aggs {
		post.exprBind[a.Render()] = boundExpr{index: aggOutBase + i, typ: aggTypes[i]}
	}
	// Aggregate output schema uses relational types; fix avg (stored as
	// float) and count (int) — handled via aggTypes above.

	var cur2 relational.Op = agg
	if stmt.Having != nil {
		pred, err := compilePredicate(post, stmt.Having)
		if err != nil {
			return nil, err
		}
		cur2 = relational.NewFilter(cur2, pred)
		p.TaggedOps["having"] = cur2
		p.Steps = append(p.Steps, "having: "+stmt.Having.Render())
	}
	if len(stmt.OrderBy) > 0 {
		sorted, err := db.sortOver(stmt.OrderBy, stmt.Items, cur2, post)
		if err != nil {
			return nil, err
		}
		cur2 = sorted
		p.TaggedOps["sort"] = cur2
		p.Steps = append(p.Steps, "sort")
	}
	proj, err := projectItems(stmt.Items, post, cur2)
	if err != nil {
		return nil, err
	}
	cur2 = proj
	p.Steps = append(p.Steps, "project "+itemNames(stmt.Items))
	if stmt.Limit >= 0 {
		cur2 = relational.NewLimit(cur2, stmt.Limit)
		p.TaggedOps["limit"] = cur2
		p.Steps = append(p.Steps, fmt.Sprintf("limit %d", stmt.Limit))
	}
	p.Root = cur2
	return p, nil
}

// sortOver plans a sort whose keys are ORDER BY items resolved against
// sc, with aliases and 1-based positions resolving through the select
// items.
func (db *DB) sortOver(order []OrderItem, items []SelectItem, child relational.Op, sc *scope) (relational.Op, error) {
	// The sort operator orders by concrete columns, so materialize the
	// key expressions as extra columns, sort, then strip them.
	childSchema := child.Schema()
	width := len(childSchema)
	schema := append(relational.Schema{}, childSchema...)
	exprs := make([]relational.Projector, width)
	for i := 0; i < width; i++ {
		idx := i
		exprs[i] = func(r relational.Row) (relational.Value, error) { return r[idx], nil }
	}
	var keys []relational.SortKey
	for ki, o := range order {
		e := o.E
		// Position (ORDER BY 2) and alias resolution.
		if lit, ok := e.(*IntLit); ok {
			if lit.V < 1 || int(lit.V) > len(items) {
				return nil, fmt.Errorf("sql: ORDER BY position %d out of range", lit.V)
			}
			e = items[lit.V-1].E
		} else if cr, ok := e.(*ColRef); ok && cr.Table == "" {
			for _, it := range items {
				if it.Alias == cr.Name {
					e = it.E
					break
				}
			}
		}
		c, err := sc.compile(e)
		if err != nil {
			return nil, err
		}
		schema = append(schema, relational.Column{Name: fmt.Sprintf("sortkey%d", ki), Type: toRelType(c.typ)})
		exprs = append(exprs, c.eval)
		keys = append(keys, relational.SortKey{Col: width + ki, Desc: o.Desc})
	}
	widened, err := relational.NewProject(child, schema, exprs)
	if err != nil {
		return nil, err
	}
	sorted, err := relational.NewSort(widened, keys)
	if err != nil {
		return nil, err
	}
	// Strip the key columns again.
	stripSchema := append(relational.Schema{}, childSchema...)
	stripExprs := make([]relational.Projector, width)
	for i := 0; i < width; i++ {
		idx := i
		stripExprs[i] = func(r relational.Row) (relational.Value, error) { return r[idx], nil }
	}
	return relational.NewProject(sorted, stripSchema, stripExprs)
}

// projectItems builds the final projection.
func projectItems(items []SelectItem, sc *scope, child relational.Op) (relational.Op, error) {
	var schema relational.Schema
	var exprs []relational.Projector
	for _, it := range items {
		c, err := sc.compile(it.E)
		if err != nil {
			return nil, err
		}
		schema = append(schema, relational.Column{Name: it.OutputName(), Type: toRelType(c.typ)})
		exprs = append(exprs, c.eval)
	}
	return relational.NewProject(child, schema, exprs)
}

func itemNames(items []SelectItem) string {
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.OutputName()
	}
	return strings.Join(names, ", ")
}

// compilePredicate compiles a boolean expression into a relational
// Predicate.
func compilePredicate(sc *scope, e Expr) (relational.Predicate, error) {
	c, err := sc.compile(e)
	if err != nil {
		return nil, err
	}
	if c.typ != tBool {
		return nil, fmt.Errorf("sql: filter requires a boolean, got %s (%s)", c.typ, e.Render())
	}
	return func(r relational.Row) (bool, error) {
		v, err := c.eval(r)
		if err != nil {
			return false, err
		}
		return v.I != 0, nil
	}, nil
}

// soleLeg returns the single leg all of e's columns resolve into, or nil.
func (db *DB) soleLeg(e Expr, legs []*tableLeg) *tableLeg {
	var cols []*ColRef
	collectCols(e, &cols)
	if len(cols) == 0 {
		return nil
	}
	var owner *tableLeg
	for _, c := range cols {
		var match *tableLeg
		for _, leg := range legs {
			if c.Table != "" && c.Table != leg.alias {
				continue
			}
			if leg.rel.Schema.ColIndex(c.Name) >= 0 {
				if match != nil {
					return nil // ambiguous bare column: leave in residual
				}
				match = leg
			}
		}
		if match == nil {
			return nil
		}
		if owner == nil {
			owner = match
		} else if owner != match {
			return nil
		}
	}
	return owner
}

// splitJoinOn extracts one left.col = right.col equality from an ON
// expression; remaining conjuncts are returned as a residual filter over
// the combined scope.
func (db *DB) splitJoinOn(on Expr, left, right *scope) (leftCol, rightCol int, residual Expr, err error) {
	conjuncts := splitConjuncts(on)
	eqIdx := -1
	for i, c := range conjuncts {
		b, ok := c.(*BinExpr)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		// Try L in left scope, R in right scope; then swapped.
		if le, lerr := left.resolve(lc); lerr == nil {
			if re, rerr := right.resolve(rc); rerr == nil {
				leftCol, rightCol, eqIdx = le.index, re.index, i
				break
			}
		}
		if le, lerr := left.resolve(rc); lerr == nil {
			if re, rerr := right.resolve(lc); rerr == nil {
				leftCol, rightCol, eqIdx = le.index, re.index, i
				break
			}
		}
	}
	if eqIdx < 0 {
		return 0, 0, nil, fmt.Errorf("sql: JOIN ON must contain an equality between the two tables: %s", on.Render())
	}
	rest := append(append([]Expr{}, conjuncts[:eqIdx]...), conjuncts[eqIdx+1:]...)
	return leftCol, rightCol, joinConjuncts(rest), nil
}

// reorderColumns re-projects a swapped join output (right ++ left) back to
// canonical (left ++ right).
func reorderColumns(op relational.Op, rightWidth, leftWidth int) (relational.Op, error) {
	in := op.Schema()
	if len(in) != rightWidth+leftWidth {
		return nil, fmt.Errorf("sql: reorder width mismatch: %d != %d+%d", len(in), rightWidth, leftWidth)
	}
	var schema relational.Schema
	var exprs []relational.Projector
	pick := func(idx int) relational.Projector {
		return func(r relational.Row) (relational.Value, error) { return r[idx], nil }
	}
	for i := 0; i < leftWidth; i++ {
		schema = append(schema, in[rightWidth+i])
		exprs = append(exprs, pick(rightWidth+i))
	}
	for i := 0; i < rightWidth; i++ {
		schema = append(schema, in[i])
		exprs = append(exprs, pick(i))
	}
	return relational.NewProject(op, schema, exprs)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
