package sql

import (
	"math"
	"strings"
	"testing"

	"repro/internal/relational"
)

// parityQueries cover every construct both engines support: filters
// (range and generic), projections, joins (both build sides), grouped and
// global aggregates, HAVING, ORDER BY (radix and comparison paths) and
// LIMIT.
var parityQueries = []string{
	"SELECT * FROM sales",
	"SELECT order_id, price FROM sales WHERE year >= 2013 AND quantity > 2",
	"SELECT order_id FROM sales WHERE region = 'EU' ORDER BY order_id",
	"SELECT order_id, price * quantity AS value FROM sales WHERE year = 2014 ORDER BY value DESC, order_id LIMIT 10",
	"SELECT region, COUNT(*) AS n, SUM(price) AS total, AVG(discount) AS d FROM sales GROUP BY region ORDER BY total DESC",
	"SELECT COUNT(*), SUM(quantity), MIN(quantity), MAX(quantity) FROM sales",
	"SELECT COUNT(*) FROM sales", // bare star count: zero-width pre-projection
	"SELECT COUNT(*) AS n FROM sales s JOIN customers c ON s.customer_id = c.customer_id",
	"SELECT MIN(region), MAX(product) FROM sales",
	"SELECT year, MIN(price) AS lo, MAX(price) AS hi FROM sales GROUP BY year ORDER BY year",
	"SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC",
	"SELECT s.order_id, c.name FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.year >= 2014 ORDER BY s.order_id LIMIT 25",
	"SELECT c.country, COUNT(*) AS n FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.country HAVING COUNT(*) >= 2 ORDER BY n DESC, 1",
	"SELECT product, SUM(quantity) AS units FROM sales WHERE year >= 2012 AND year <= 2015 GROUP BY product ORDER BY units DESC LIMIT 3",
	"SELECT order_id FROM sales ORDER BY quantity DESC, order_id LIMIT 7",
	"SELECT region, COUNT(*) FROM sales WHERE quantity > 100 GROUP BY region", // empty result
}

// sameRelation compares results row-for-row. Int and String cells must be
// identical; Float cells (aggregate sums merge per-partition partials,
// which can differ from the serial left-fold in the last ulp) compare
// within 1e-9 relative tolerance.
func sameRelation(t *testing.T, q string, want, got *relational.Relation) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s\nrow counts differ: serial %d vs parallel %d", q, want.Len(), got.Len())
	}
	if len(want.Schema) != len(got.Schema) {
		t.Fatalf("%s\nschema widths differ: %d vs %d", q, len(want.Schema), len(got.Schema))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			w, g := want.Rows[i][j], got.Rows[i][j]
			if w.T != g.T {
				t.Fatalf("%s\nrow %d col %d type differs: %v vs %v", q, i, j, w.T, g.T)
			}
			switch w.T {
			case relational.Float:
				if diff := math.Abs(w.F - g.F); diff > 1e-9*math.Max(1, math.Abs(w.F)) {
					t.Fatalf("%s\nrow %d col %d float differs: %v vs %v", q, i, j, w.F, g.F)
				}
			default:
				if w.I != g.I || w.S != g.S {
					t.Fatalf("%s\nrow %d col %d differs: %v vs %v", q, i, j, w, g)
				}
			}
		}
	}
}

func runBoth(t *testing.T, serialDB, parDB *DB, q string) {
	t.Helper()
	serialDB.Opt.Parallel = false
	want, err := serialDB.Query(q)
	if err != nil {
		t.Fatalf("serial %q: %v", q, err)
	}
	got, err := parDB.Query(q)
	if err != nil {
		t.Fatalf("parallel %q: %v", q, err)
	}
	sameRelation(t, q, want, got)
}

// TestParallelMatchesSerial is the determinism proof for the morsel
// dispatcher: every query must produce row-for-row identical output on
// the batch engine (several worker counts) and the serial row engine,
// over a multi-morsel table.
func TestParallelMatchesSerial(t *testing.T) {
	serialDB := DemoDB(7, 5000, 120)
	for _, workers := range []int{1, 2, 4, 7} {
		parDB := DemoDB(7, 5000, 120)
		parDB.Opt.Parallel = true
		parDB.Opt.Workers = workers
		for _, q := range parityQueries {
			runBoth(t, serialDB, parDB, q)
		}
	}
}

// TestParallelMatchesSerialSingleMorsel pins the sub-batch edge case: the
// whole table fits one morsel.
func TestParallelMatchesSerialSingleMorsel(t *testing.T) {
	serialDB := DemoDB(11, 37, 9)
	parDB := DemoDB(11, 37, 9)
	parDB.Opt.Workers = 4
	for _, q := range parityQueries {
		runBoth(t, serialDB, parDB, q)
	}
}

// emptyDemoDB has the DemoDB schemas with zero rows (the generator
// cannot produce empty tables).
func emptyDemoDB() *DB {
	full := DemoDB(13, 1, 1)
	db := NewDB()
	for _, name := range []string{"sales", "customers"} {
		rel, _ := full.Table(name)
		db.Register(relational.NewRelation(rel.Name, rel.Schema))
	}
	return db
}

// TestParallelMatchesSerialEmptyTables pins the zero-row edge case.
func TestParallelMatchesSerialEmptyTables(t *testing.T) {
	serialDB := emptyDemoDB()
	parDB := emptyDemoDB()
	parDB.Opt.Workers = 4
	for _, q := range parityQueries {
		runBoth(t, serialDB, parDB, q)
	}
}

// TestParallelRepeatable: two parallel runs of the same query must agree
// exactly (bit-for-bit), regardless of dynamic morsel scheduling.
func TestParallelRepeatable(t *testing.T) {
	db := DemoDB(17, 4000, 80)
	db.Opt.Workers = 4
	for _, q := range parityQueries {
		a, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		b, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%q: run lengths differ: %d vs %d", q, a.Len(), b.Len())
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				x, y := a.Rows[i][j], b.Rows[i][j]
				if x.T != y.T || x.I != y.I || x.F != y.F || x.S != y.S {
					t.Fatalf("%q: run outputs differ at row %d col %d: %v vs %v", q, i, j, x, y)
				}
			}
		}
	}
}

// TestParallelRuntimeErrorsSurface: evaluation errors must propagate out
// of worker goroutines.
func TestParallelRuntimeErrorsSurface(t *testing.T) {
	db := DemoDB(19, 3000, 50)
	db.Opt.Workers = 4
	if _, err := db.Query("SELECT price / (quantity - quantity) FROM sales"); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division by zero from parallel engine, got %v", err)
	}
}

// TestExplainNamesEngine: plans advertise the batch engine when enabled.
func TestExplainNamesEngine(t *testing.T) {
	db := DemoDB(23, 100, 10)
	plan, err := db.Plan("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "morsel-parallel batch") {
		t.Fatalf("explain missing engine line:\n%s", plan.Explain())
	}
	db.Opt.Parallel = false
	plan, err = db.Plan("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "morsel-parallel batch") {
		t.Fatalf("serial explain must not claim the batch engine:\n%s", plan.Explain())
	}
}

// TestRangeExtraction covers the ColRange lowering of comparison shapes.
func TestRangeExtraction(t *testing.T) {
	db := DemoDB(29, 3000, 60)
	serialDB := DemoDB(29, 3000, 60)
	db.Opt.Workers = 3
	for _, q := range []string{
		"SELECT order_id FROM sales WHERE year = 2014",
		"SELECT order_id FROM sales WHERE year > 2013",
		"SELECT order_id FROM sales WHERE year < 2013",
		"SELECT order_id FROM sales WHERE 2013 <= year",
		"SELECT order_id FROM sales WHERE 2015 > year AND year >= 2011 AND quantity = 3",
		"SELECT order_id FROM sales WHERE year >= 2013 AND price > 50.0",
	} {
		runBoth(t, serialDB, db, q)
	}
}
