package sql

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
)

// Pipelined-execution acceptance suite: chunked movement must never
// change answers — any chunk size, any phase shape, any shard count —
// while measuring real compute/network overlap, keeping the bulk path
// bit-identical, and cancelling cleanly mid-chunk.

const pipelineRows = 1200

func pipelineConfig(shards, chunkRows int, distJoin string) Config {
	cfg := DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = shards
	cfg.Topology = "single"
	cfg.DistJoin = distJoin
	cfg.PipelineChunkRows = chunkRows
	return cfg
}

func pipelineEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 31, pipelineRows, 60)
	eng.Register(productsRelation())
	return eng
}

// TestPipelineParity sweeps chunk sizes (0 = the bulk "infinite chunk"
// engine) against every distributed phase shape — broadcast join,
// repartition join, grouped aggregation, sort+gather — on 2 and 8
// shards, asserting row-for-row identity with single-node execution.
// Run it under -race: chunk consumers overlap fabric admission by
// design.
func TestPipelineParity(t *testing.T) {
	cases := []struct {
		name     string
		query    string
		distJoin string
	}{
		{"join-repartition", "SELECT s.order_id, s.price, c.segment FROM sales s JOIN customers c ON s.customer_id = c.customer_id", "repartition"},
		{"join-broadcast", "SELECT s.order_id, s.price, c.segment FROM sales s JOIN customers c ON s.customer_id = c.customer_id", "broadcast"},
		{"group-by", "SELECT customer_id, COUNT(*) AS n, SUM(price) AS v FROM sales GROUP BY customer_id", "auto"},
		{"sort-gather", "SELECT order_id, price FROM sales ORDER BY price DESC, order_id LIMIT 400", "auto"},
	}
	ref, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(ref, 31, pipelineRows, 60)
	ref.Register(productsRelation())
	for _, tc := range cases {
		want, err := ref.Session().Query(context.Background(), tc.query)
		if err != nil {
			t.Fatalf("%s: single-node reference: %v", tc.name, err)
		}
		for _, shards := range []int{2, 8} {
			for _, chunk := range []int{0, 4096, 256, 1} {
				label := fmt.Sprintf("%s/%d-shards/chunk-%d", tc.name, shards, chunk)
				eng := pipelineEngine(t, pipelineConfig(shards, chunk, tc.distJoin))
				res, err := eng.Session().Query(context.Background(), tc.query)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				expectRowsEqual(t, label, want.Rows, res.Rows)
				if res.Net == nil {
					t.Fatalf("%s: missing net stats", label)
				}
				if chunk > 0 {
					if res.Net.ComputeSeconds <= 0 {
						t.Fatalf("%s: pipelined run recorded no chunk compute", label)
					}
					if res.Net.OverlapSeconds < 0 || res.Net.OverlapSeconds > res.Net.NetSeconds+res.Net.ComputeSeconds {
						t.Fatalf("%s: implausible overlap %v", label, res.Net.OverlapSeconds)
					}
					if w := res.Net.WallSeconds(); w <= 0 || w > res.Net.NetSeconds+res.Net.ComputeSeconds {
						t.Fatalf("%s: implausible wall %v", label, w)
					}
				} else if res.Net.ComputeSeconds != 0 || res.Net.OverlapSeconds != 0 {
					t.Fatalf("%s: bulk run charged pipeline stats: %+v", label, res.Net)
				}
			}
		}
	}
}

// TestPipelineSingleChunkBitIdentical: a chunk size larger than every
// payload degenerates to one chunk per phase, whose flows replay the
// bulk phase's bit-for-bit — same rows, same network floats, no
// overlap (there is nothing to overlap with).
func TestPipelineSingleChunkBitIdentical(t *testing.T) {
	const q = "SELECT s.order_id, s.price, c.segment FROM sales s JOIN customers c ON s.customer_id = c.customer_id"
	for _, distJoin := range []string{"repartition", "broadcast"} {
		bulk := pipelineEngine(t, pipelineConfig(4, 0, distJoin))
		one := pipelineEngine(t, pipelineConfig(4, 1<<30, distJoin))
		resBulk, err := bulk.Session().Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		resOne, err := one.Session().Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resBulk.Rows.Rows, resOne.Rows.Rows) {
			t.Fatalf("%s: single-chunk rows diverged from bulk", distJoin)
		}
		nb, no := resBulk.Net, resOne.Net
		if nb.NetSeconds != no.NetSeconds || nb.BytesShuffled != no.BytesShuffled || nb.Flows != no.Flows {
			t.Fatalf("%s: single-chunk net accounting diverged: bulk {%v %v %d} vs one-chunk {%v %v %d}",
				distJoin, nb.NetSeconds, nb.BytesShuffled, nb.Flows, no.NetSeconds, no.BytesShuffled, no.Flows)
		}
		if no.OverlapSeconds != 0 {
			t.Fatalf("%s: one chunk cannot overlap, got %v", distJoin, no.OverlapSeconds)
		}
		if no.ComputeSeconds <= 0 {
			t.Fatalf("%s: single-chunk run must still price consumer compute", distJoin)
		}
	}
}

// TestPipelineCancelMidChunk cancels a pipelined distributed query
// between chunks: the error must surface as the context's, the
// in-flight chunk consumer and every shard worker must wind down (no
// goroutine leaks), and the fabric slot must be withdrawn so a
// follow-up query on the same engine runs to completion.
func TestPipelineCancelMidChunk(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rows := 100_000
	for attempt := 0; attempt < 5; attempt++ {
		cfg := pipelineConfig(4, 32, "auto")
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RegisterDemo(eng, 7, rows, 100)
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(2*time.Millisecond, cancel)
		_, qerr := eng.Session().Query(ctx, cancelQuery)
		timer.Stop()
		cancel()
		if qerr == nil {
			rows *= 2 // completed before the cancel landed: grow and retry
			continue
		}
		if !errors.Is(qerr, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", qerr)
		}
		settleGoroutines(t, "pipeline-cancel", baseline)
		res, err := eng.Session().Query(context.Background(), cancelQuery)
		if err != nil || res.Rows.Len() == 0 {
			t.Fatalf("fabric wedged after cancelled pipelined query: %v", err)
		}
		return
	}
	t.Fatalf("query kept completing before cancellation up to %d rows", rows)
}

// flowRecorder is a pass-through netsim controller that records every
// pending flow it observes (Admit runs under the admission lock, so no
// further synchronization is needed).
type flowRecorder struct {
	flows []netsim.PendingFlow
}

func (r *flowRecorder) Admit(st *netsim.RoundState) []netsim.Decision {
	r.flows = append(r.flows, st.Pending...)
	return nil
}

// TestPipelineGatherWeightBoost: the final gather competes hotter than
// the bulk shuffles — its flows carry the "gather" class at
// GatherWeightBoost times the session weight, on the bulk and the
// pipelined path alike — while a session that declared its own QoS
// class keeps it (session identity wins over the phase tag).
func TestPipelineGatherWeightBoost(t *testing.T) {
	const q = "SELECT c.segment, COUNT(*) AS n, SUM(s.price) AS v FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment"
	for _, chunk := range []int{0, 256} {
		rec := &flowRecorder{}
		cfg := pipelineConfig(4, chunk, "repartition")
		cfg.Controller = rec
		eng := pipelineEngine(t, cfg)
		if _, err := eng.Session().Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		gather, shuffle := 0, 0
		for _, f := range rec.flows {
			switch f.Class {
			case "gather":
				gather++
				if f.Weight != 4 {
					t.Fatalf("chunk=%d: gather flow weight %v, want 4", chunk, f.Weight)
				}
			case "":
				shuffle++
				if f.Weight != 1 {
					t.Fatalf("chunk=%d: shuffle flow weight %v, want 1", chunk, f.Weight)
				}
			default:
				t.Fatalf("chunk=%d: unexpected class %q", chunk, f.Class)
			}
		}
		if gather == 0 || shuffle == 0 {
			t.Fatalf("chunk=%d: saw %d gather / %d shuffle flows", chunk, gather, shuffle)
		}
	}

	// A classed session keeps its own class on every phase.
	rec := &flowRecorder{}
	cfg := pipelineConfig(4, 256, "repartition")
	cfg.Controller = rec
	eng := pipelineEngine(t, cfg)
	sess := eng.Session()
	sess.Priority = "interactive"
	if _, err := sess.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	for _, f := range rec.flows {
		if f.Class != "interactive" {
			t.Fatalf("classed session leaked phase class %q", f.Class)
		}
	}
}
