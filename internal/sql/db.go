package sql

import (
	"repro/internal/relational"
)

// DB is the pre-engine entry point: a catalog plus a mutable options
// struct, planning and executing one query at a time.
//
// Deprecated: use NewEngine and Session. DB survives as a thin wrapper
// over a private Engine so existing callers keep working: Opt mutations
// still take effect per query (the engine re-derives its cluster when
// the topology or shard count changes), but DB offers no context
// cancellation, no prepared statements, and serializes naturally — the
// shared-fabric contention the Engine API models never shows up here.
// See the migration table in README.md.
type DB struct {
	// Opt is re-read on every Plan/Query call.
	Opt Options

	eng *Engine
}

// NewDB returns an empty catalog with default optimizer options.
//
// Deprecated: use NewEngine.
func NewDB() *DB {
	return &DB{Opt: DefaultOptions(), eng: newEngine(DefaultConfig())}
}

// Engine exposes the wrapper's backing engine — the escape hatch for
// incremental migration (e.g. opening a Session over a catalog that was
// populated through DB). The engine's own Config is the construction
// default; DB queries run under Opt instead.
func (db *DB) Engine() *Engine { return db.eng }

// Register adds (or replaces) a table under its lowercased name.
func (db *DB) Register(rel *relational.Relation) { db.eng.Register(rel) }

// Table looks a table up by name.
func (db *DB) Table(name string) (*relational.Relation, bool) { return db.eng.Table(name) }

// Query parses, plans and executes, returning a materialized result.
//
// Deprecated: use Session.Query, which adds context cancellation and
// returns plan, operator and network stats alongside the rows.
func (db *DB) Query(q string) (*relational.Relation, error) {
	plan, err := db.Plan(q)
	if err != nil {
		return nil, err
	}
	return relational.Collect(plan.Root, "result")
}

// Plan parses and plans without executing. The returned plan is
// single-use: executing it twice reports ErrPlanSpent.
//
// Deprecated: use Session.Prepare for re-executable statements, or
// Session.Query to plan and run in one call.
func (db *DB) Plan(q string) (*Planned, error) {
	pl := &planner{eng: db.eng, cfg: db.Opt}
	return pl.plan(q)
}
