package sql

import (
	"context"
	"sync"
	"testing"

	"repro/internal/sdn"
)

// QoS acceptance suite for the control-plane API: session weights must
// shape per-query network time under contention without perturbing
// results, and the nil-controller/uniform-weight path must replay the
// pre-control-plane engine bit-identically.

// TestWeightedSessionDegradesLess is the headline acceptance criterion:
// two concurrent sessions running the same query at weights 3:1 on a
// congested single-switch fabric. The weighted session's flows receive
// three times the bandwidth on every shared bottleneck, so its
// per-query net time is measurably lower than its best-effort peer's —
// and both row sets stay row-for-row identical to single-node
// execution.
func TestWeightedSessionDegradesLess(t *testing.T) {
	refEng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(refEng, 31, 6000, 150)
	refEng.Register(productsRelation())
	ref, err := refEng.Session().Query(context.Background(), concQueryB)
	if err != nil {
		t.Fatal(err)
	}

	eng := concEngine(t)
	eng.Fabric().Expect(2)
	gold := eng.Session()
	gold.Priority = "interactive"
	gold.Weight = 3
	be := eng.Session()
	be.Priority = "batch"
	be.Weight = 1
	var wg sync.WaitGroup
	var resGold, resBE *Result
	var errGold, errBE error
	wg.Add(2)
	go func() { defer wg.Done(); resGold, errGold = gold.Query(context.Background(), concQueryB) }()
	go func() { defer wg.Done(); resBE, errBE = be.Query(context.Background(), concQueryB) }()
	wg.Wait()
	if errGold != nil || errBE != nil {
		t.Fatalf("weighted queries failed: %v / %v", errGold, errBE)
	}

	expectRowsEqual(t, "weighted session vs single-node", ref.Rows, resGold.Rows)
	expectRowsEqual(t, "best-effort session vs single-node", ref.Rows, resBE.Rows)

	// Identical queries, identical data, one shared fabric: only the
	// weights differ, so the 3x session must finish its network phases
	// measurably sooner. (With weights 3:1 on every shared bottleneck
	// the gold session's phase rates are 3x, so its net time is well
	// under 2/3 of the peer's; assert a conservative margin.)
	if resGold.Net.NetSeconds >= resBE.Net.NetSeconds*0.75 {
		t.Fatalf("weight-3 session must degrade measurably less: %.6fs vs peer %.6fs",
			resGold.Net.NetSeconds, resBE.Net.NetSeconds)
	}

	// The per-query admission report carries the QoS identity.
	if resGold.Admission == nil || resGold.Admission.Weight != 3 || resGold.Admission.Class != "interactive" {
		t.Fatalf("gold admission stats: %+v", resGold.Admission)
	}
	if resGold.Admission.RoundsJoined == 0 || resBE.Admission.RoundsJoined == 0 {
		t.Fatalf("rounds joined: %d / %d", resGold.Admission.RoundsJoined, resBE.Admission.RoundsJoined)
	}

	// The fabric aggregate attributes bytes per class.
	fab := eng.Fabric().Stats()
	if fab.ClassBytes["interactive"] != resGold.Net.BytesShuffled {
		t.Fatalf("interactive class bytes %.0f, want %.0f", fab.ClassBytes["interactive"], resGold.Net.BytesShuffled)
	}
	if fab.ClassBytes["batch"] != resBE.Net.BytesShuffled {
		t.Fatalf("batch class bytes %.0f, want %.0f", fab.ClassBytes["batch"], resBE.Net.BytesShuffled)
	}
	if fab.PeakQueries < 2 {
		t.Fatalf("sessions did not contend: peak queries %d", fab.PeakQueries)
	}
}

// TestStrictPriorityControllerProtectsInteractive: the same two-session
// contention with uniform requested weights, but a strict-priority
// NetController assigns class-tier weights — the controller, not the
// session, shapes the rates.
func TestStrictPriorityControllerProtectsInteractive(t *testing.T) {
	cfg := concTestConfig()
	cfg.Controller = sdn.NewNetController(nil, sdn.StrictPriority{}, 0)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 31, 6000, 150)
	eng.Register(productsRelation())
	eng.Fabric().Expect(2)
	inter := eng.Session()
	inter.Priority = "interactive"
	batch := eng.Session()
	batch.Priority = "batch"
	var wg sync.WaitGroup
	var resI, resB *Result
	var errI, errB error
	wg.Add(2)
	go func() { defer wg.Done(); resI, errI = inter.Query(context.Background(), concQueryB) }()
	go func() { defer wg.Done(); resB, errB = batch.Query(context.Background(), concQueryB) }()
	wg.Wait()
	if errI != nil || errB != nil {
		t.Fatalf("queries failed: %v / %v", errI, errB)
	}
	if resI.Rows.Len() != resB.Rows.Len() {
		t.Fatalf("row counts diverged: %d vs %d", resI.Rows.Len(), resB.Rows.Len())
	}
	// interactive outranks batch by x64: its phases should complete in
	// nearly isolated time while batch absorbs the contention.
	if resI.Net.NetSeconds >= resB.Net.NetSeconds*0.75 {
		t.Fatalf("interactive must be protected: %.6fs vs batch %.6fs",
			resI.Net.NetSeconds, resB.Net.NetSeconds)
	}
}

// TestNilControllerUniformWeightsReplay guards the acceptance
// criterion that the control-plane redesign is invisible when unused:
// a nil-controller engine with default (uniform) weights, one with
// explicitly uniform weights, and one running the Baseline policy
// through the full controller hook must all produce bit-identical
// network accounting — same floats, not just close — and identical
// rows, across repeated executions on the same fabric (the
// ResetClock + per-query-seeded-ECMP replay path through the new
// round hook).
func TestNilControllerUniformWeightsReplay(t *testing.T) {
	type outcome struct {
		netSec, bytes float64
		rounds        int
	}
	run := func(label, topology string, mutate func(*Config, *Session)) []outcome {
		t.Helper()
		cfg := concTestConfig()
		cfg.Topology = topology
		proto := &Session{}
		if mutate != nil {
			mutate(&cfg, proto)
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RegisterDemo(eng, 31, 6000, 150)
		eng.Register(productsRelation())
		var outs []outcome
		for i := 0; i < 3; i++ {
			sess := eng.Session()
			sess.Priority, sess.Weight = proto.Priority, proto.Weight
			res, err := sess.Query(context.Background(), concQueryB)
			if err != nil {
				t.Fatalf("%s run %d: %v", label, i, err)
			}
			outs = append(outs, outcome{res.Net.NetSeconds, res.Net.BytesShuffled, res.Admission.RoundsJoined})
		}
		return outs
	}

	// leafspine has real ECMP spread, so a controller that pinned
	// default-routed pairs to cached rules (instead of leaving them on
	// their per-seed picks) would diverge there even as a "no-op".
	for _, topology := range []string{"single", "leafspine"} {
		base := run("nil-controller", topology, nil)
		explicit := run("explicit-uniform", topology, func(cfg *Config, s *Session) { s.Weight = 1 })
		baseline := run("baseline-controller", topology, func(cfg *Config, s *Session) {
			cfg.Controller = sdn.NewNetController(nil, sdn.Baseline{}, 0)
		})

		for i := 1; i < len(base); i++ {
			if base[i] != base[0] {
				t.Fatalf("%s: sequential replay diverged: run %d %+v vs %+v", topology, i, base[i], base[0])
			}
		}
		for i := range base {
			if explicit[i] != base[i] {
				t.Fatalf("%s: explicit uniform weights diverged from nil controller: %+v vs %+v", topology, explicit[i], base[i])
			}
			if baseline[i] != base[i] {
				t.Fatalf("%s: baseline controller diverged from nil controller: %+v vs %+v", topology, baseline[i], base[i])
			}
		}
		if base[0].netSec <= 0 || base[0].bytes <= 0 || base[0].rounds == 0 {
			t.Fatalf("%s: degenerate outcome: %+v", topology, base[0])
		}
	}
}
