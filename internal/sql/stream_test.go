package sql

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/relational"
	"repro/internal/stream"
)

var streamSchema = relational.Schema{
	{Name: "k", Type: relational.String},
	{Name: "t", Type: relational.Int},
	{Name: "v", Type: relational.Int},
}

func streamEngine(t *testing.T, mut func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(relational.NewRelation("events", streamSchema))
	return eng
}

func sev(k string, tm, v int64) relational.Row {
	return relational.Row{relational.StringV(k), relational.IntV(tm), relational.IntV(v)}
}

// streamBatches builds n events in batches of batch rows: event times
// mostly advance (two per tick) with deterministic disorder bounded well
// inside the lateness allowance, so nothing can be dropped.
func streamBatches(n, batch int) [][]relational.Row {
	var out [][]relational.Row
	cur := make([]relational.Row, 0, batch)
	seed := int64(424243)
	for i := 0; i < n; i++ {
		seed = (seed*1103515245 + 12347) % (1 << 31)
		tm := int64(i/2) - seed%3
		if tm < 0 {
			tm = 0
		}
		cur = append(cur, sev(fmt.Sprintf("k%d", seed%20), tm, seed%101))
		if len(cur) == batch {
			out = append(out, cur)
			cur = make([]relational.Row, 0, batch)
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

const contQuery = "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM events GROUP BY k"

// runStream feeds batches through a Source while collecting every window
// a subscription to contQuery emits.
func runStream(t *testing.T, sess *Session, batches [][]relational.Row, spec stream.WindowSpec) ([]stream.Window, stream.Stats) {
	t.Helper()
	src, err := sess.StreamSource("events")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess.Subscribe(context.Background(), contQuery, spec)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, b := range batches {
			if err := src.Append(b...); err != nil {
				t.Error(err)
				break
			}
		}
		src.Close()
	}()
	var wins []stream.Window
	for w := range sub.Out() {
		wins = append(wins, w)
	}
	<-sub.Done()
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	return wins, sub.Stats()
}

// TestStreamBatchParity is the subsystem's acceptance contract: after the
// stream closes, every emitted window is row-for-row identical to the
// batch engine's answer to the same query restricted to the window's
// time range over the fully materialized relation — on the serial,
// morsel-parallel and distributed paths, budgeted and not.
func TestStreamBatchParity(t *testing.T) {
	paths := []struct {
		name string
		mut  func(*Config)
	}{
		{"serial", nil},
		{"parallel", func(c *Config) { c.Parallel = true; c.Workers = 4 }},
		{"distributed", func(c *Config) {
			c.Distributed = true
			c.Shards = 4
			c.Topology = "leafspine"
		}},
	}
	for _, p := range paths {
		for _, budget := range []int64{0, 2 << 10} {
			t.Run(fmt.Sprintf("%s/budget=%d", p.name, budget), func(t *testing.T) {
				eng := streamEngine(t, p.mut)
				sess := eng.Session()
				sess.MemoryBudget = budget
				spec := stream.WindowSpec{TimeCol: "t", Size: 16, Slide: 4, Lateness: 3}
				wins, st := runStream(t, sess, streamBatches(2000, 100), spec)
				if len(wins) < 10 {
					t.Fatalf("only %d windows emitted", len(wins))
				}
				if st.Dropped != 0 {
					t.Fatalf("disorder within lateness dropped %d events", st.Dropped)
				}
				if st.Events != 2000 {
					t.Fatalf("accepted %d of 2000 events", st.Events)
				}
				if budget > 0 && (st.Spill == nil || st.Spill.Partitions == 0) {
					t.Fatalf("budgeted subscription never spilled: %+v", st.Spill)
				}
				if budget == 0 && st.Spill != nil {
					t.Fatalf("unbudgeted subscription reported spill: %+v", st.Spill)
				}
				batch := eng.Session()
				for _, w := range wins {
					q := fmt.Sprintf("SELECT k, SUM(v) AS s, COUNT(*) AS n FROM events WHERE t >= %d AND t < %d GROUP BY k", w.Start, w.End)
					res, err := batch.Query(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(w.Rows.Rows, res.Rows.Rows) {
						t.Fatalf("window [%d,%d) diverges from batch rerun:\n stream %v\n batch  %v",
							w.Start, w.End, w.Rows.Rows, res.Rows.Rows)
					}
				}
			})
		}
	}
}

// TestPlanCacheSurvivesAppends is the epoch-semantics regression: an
// append bumps the table's data epoch but NOT the catalog epoch, so a
// prepared statement (and any plan cache keyed on the catalog epoch)
// stays valid and sees the new rows; replacing the table via Register
// still invalidates.
func TestPlanCacheSurvivesAppends(t *testing.T) {
	eng := streamEngine(t, nil)
	sess := eng.Session()
	if _, err := eng.AppendRows("events", []relational.Row{sev("a", 1, 10)}); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Prepare("SELECT k, SUM(v) AS s FROM events GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	cat, data := eng.CatalogEpoch(), eng.DataEpoch("events")
	if _, err := eng.AppendRows("events", []relational.Row{sev("a", 2, 5), sev("b", 3, 7)}); err != nil {
		t.Fatal(err)
	}
	if got := eng.CatalogEpoch(); got != cat {
		t.Fatalf("append bumped the catalog epoch %d -> %d: cached plans would invalidate", cat, got)
	}
	if got := eng.DataEpoch("events"); got != data+1 {
		t.Fatalf("append did not bump the data epoch: %d -> %d", data, got)
	}
	res, err := st.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []relational.Row{
		{relational.StringV("a"), relational.IntV(15)},
		{relational.StringV("b"), relational.IntV(7)},
	}
	if !reflect.DeepEqual(res.Rows.Rows, want) {
		t.Fatalf("prepared statement missed appended rows: %v", res.Rows.Rows)
	}
	eng.Register(relational.NewRelation("events", streamSchema))
	if got := eng.CatalogEpoch(); got != cat+1 {
		t.Fatalf("Register replace must bump the catalog epoch: %d -> %d", cat, got)
	}
	if eng.DataEpoch("events") != data+2 {
		t.Fatalf("Register replace must bump the data epoch too")
	}
}

// TestAppendVisibleToDistributedQueries: the sharded placement cache
// must refresh after appends (stale shard sets would silently drop the
// new rows).
func TestAppendVisibleToDistributedQueries(t *testing.T) {
	eng := streamEngine(t, func(c *Config) {
		c.Distributed = true
		c.Shards = 4
		c.Topology = "leafspine"
	})
	sess := eng.Session()
	count := func() int64 {
		res, err := sess.Query(context.Background(), "SELECT COUNT(*) AS n FROM events")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows.Rows[0][0].I
	}
	for _, b := range streamBatches(600, 200) {
		if _, err := eng.AppendRows("events", b); err != nil {
			t.Fatal(err)
		}
	}
	if n := count(); n != 600 {
		t.Fatalf("count after appends: %d", n)
	}
	if _, err := eng.AppendRows("events", []relational.Row{sev("z", 999, 1)}); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 601 {
		t.Fatalf("append after a query is invisible: count %d", n)
	}
}

// TestIngestBilledToIngestClass: distributed appends move bytes on the
// shared fabric under the "ingest" QoS class, visible in the fabric's
// per-class attribution and in the source's acknowledgements.
func TestIngestBilledToIngestClass(t *testing.T) {
	eng := streamEngine(t, func(c *Config) {
		c.Distributed = true
		c.Shards = 4
		c.Topology = "leafspine"
	})
	sess := eng.Session()
	src, err := sess.StreamSource("events")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range streamBatches(400, 100) {
		if err := src.Append(b...); err != nil {
			t.Fatal(err)
		}
	}
	st := src.Stats()
	if st.Batches != 4 || st.Rows != 400 || st.Bytes <= 0 {
		t.Fatalf("ingest stats: %+v", st)
	}
	if st.NetSeconds <= 0 {
		t.Fatalf("distributed ingest modeled no fabric time: %+v", st)
	}
	fab := eng.Fabric().Stats()
	got := fab.ClassBytes[IngestClass]
	if got <= 0 {
		t.Fatalf("no ingest-class bytes on the fabric: %v", fab.ClassBytes)
	}
	if got > st.Bytes {
		t.Fatalf("ingest class billed %.0f bytes, appended only %.0f", got, st.Bytes)
	}
	// Single-node engines bill nothing.
	eng1 := streamEngine(t, nil)
	ing, err := eng1.AppendRows("events", []relational.Row{sev("a", 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if ing.NetSeconds != 0 {
		t.Fatalf("single-node append billed fabric time: %+v", ing)
	}
}

// TestChaosKillMidIngest: killing a worker on a replication-2 cluster
// while a stream is being ingested loses no acknowledged event — the
// count and the windowed results still match a batch rerun.
func TestChaosKillMidIngest(t *testing.T) {
	plan, err := lifecycle.ParsePlan("kill:1@0:0.5", 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := streamEngine(t, func(c *Config) {
		c.Distributed = true
		c.Shards = 4
		c.Topology = "leafspine"
		c.Replication = 2
		c.Faults = plan
	})
	sess := eng.Session()
	spec := stream.WindowSpec{TimeCol: "t", Size: 16, Slide: 8, Lateness: 3}
	wins, st := runStream(t, sess, streamBatches(1000, 50), spec)
	if st.Dropped != 0 || st.Events != 1000 {
		t.Fatalf("stream stats under chaos: %+v", st)
	}
	res, err := sess.Query(context.Background(), "SELECT COUNT(*) AS n FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Rows[0][0].I; n != 1000 {
		t.Fatalf("acknowledged events lost: count %d of 1000", n)
	}
	for _, w := range wins {
		q := fmt.Sprintf("SELECT k, SUM(v) AS s, COUNT(*) AS n FROM events WHERE t >= %d AND t < %d GROUP BY k", w.Start, w.End)
		res, err := sess.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w.Rows.Rows, res.Rows.Rows) {
			t.Fatalf("window [%d,%d) diverges under chaos", w.Start, w.End)
		}
	}
}

// TestSubscribeCancelNoLeak: cancelling a subscription mid-stream stops
// its delivery goroutine and detaches it from the hub.
func TestSubscribeCancelNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	eng := streamEngine(t, nil)
	sess := eng.Session()
	src, err := sess.StreamSource("events")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := sess.Subscribe(ctx, contQuery, stream.WindowSpec{TimeCol: "t", Size: 4, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Never read sub.Out(): emission must still unblock on cancel.
	for _, b := range streamBatches(500, 50) {
		if err := src.Append(b...); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled subscription did not stop")
	}
	if err := sub.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v", err)
	}
	// Appends after the cancel go nowhere but must not block or error.
	if err := src.Append(sev("a", 10_000, 1)); err != nil {
		t.Fatal(err)
	}
	for range 100 {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
}

// TestSubscribeRejectsNonStreamable: the continuous dialect is the
// aggregate subset — everything else fails at compile with a clear error.
func TestSubscribeRejectsNonStreamable(t *testing.T) {
	eng := streamEngine(t, nil)
	eng.Register(relational.NewRelation("dims", relational.Schema{{Name: "k", Type: relational.String}}))
	sess := eng.Session()
	spec := stream.WindowSpec{TimeCol: "t", Size: 10}
	cases := []struct{ q, want string }{
		{"SELECT k FROM events", "must aggregate"},
		{"SELECT * FROM events", "SELECT *"},
		{"SELECT e.k, COUNT(*) AS n FROM events e JOIN dims d ON e.k = d.k GROUP BY e.k", "join"},
		{"SELECT k, COUNT(*) AS n FROM events GROUP BY k ORDER BY n", "ORDER BY"},
		{"SELECT k, COUNT(*) AS n FROM events GROUP BY k LIMIT 3", "LIMIT"},
		{"SELECT k, COUNT(*) AS n FROM events GROUP BY k HAVING COUNT(*) > 1", "HAVING"},
		{"SELECT k, COUNT(*) AS n FROM missing GROUP BY k", "unknown table"},
	}
	for _, c := range cases {
		if _, err := sess.Subscribe(context.Background(), c.q, spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err %v, want %q", c.q, err, c.want)
		}
	}
	if _, err := sess.Subscribe(context.Background(), contQuery, stream.WindowSpec{TimeCol: "nope", Size: 10}); err == nil || !strings.Contains(err.Error(), "time column") {
		t.Fatalf("bad time column: %v", err)
	}
	if _, err := sess.Subscribe(context.Background(), contQuery, stream.WindowSpec{TimeCol: "k", Size: 10}); err == nil || !strings.Contains(err.Error(), "Int") {
		t.Fatalf("non-Int time column: %v", err)
	}
	if _, err := sess.StreamSource("missing"); err == nil {
		t.Fatal("StreamSource on unknown table must error")
	}
}

// TestAppendValidation: appends type-check against the schema and fail
// atomically (the catalog keeps the pre-append relation).
func TestAppendValidation(t *testing.T) {
	eng := streamEngine(t, nil)
	if _, err := eng.AppendRows("events", []relational.Row{sev("a", 1, 1)}); err != nil {
		t.Fatal(err)
	}
	bad := relational.Row{relational.IntV(1), relational.IntV(2)}
	if _, err := eng.AppendRows("events", []relational.Row{sev("b", 2, 2), bad}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	rel, _ := eng.Table("events")
	if rel.Len() != 1 {
		t.Fatalf("failed append leaked rows: len %d", rel.Len())
	}
	if _, err := eng.AppendRows("missing", []relational.Row{sev("a", 1, 1)}); err == nil {
		t.Fatal("append to unknown table must error")
	}
}

// TestStreamSnapshotIsolation: a query running while appends land sees a
// consistent snapshot — its row count is one of the acknowledged sizes,
// never a torn intermediate.
func TestStreamSnapshotIsolation(t *testing.T) {
	eng := streamEngine(t, nil)
	sess := eng.Session()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.AppendRows("events", []relational.Row{sev("a", i, 1), sev("b", i, 2), sev("c", i, 3)}); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for i := 0; i < 50; i++ {
		res, err := sess.Query(context.Background(), "SELECT COUNT(*) AS n FROM events")
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Rows.Rows[0][0].I; n%3 != 0 {
			t.Fatalf("torn read: count %d is not a batch boundary", n)
		}
	}
	close(stop)
	<-done
}

// TestAppendBufferReuse: a caller may reuse its batch buffer the moment
// AppendRows returns — the hub must publish the catalog's stable copy,
// not the caller's slice, or subscriptions read overwritten events.
// (Regression: the rethink-sql -stream demo fed a recycled buffer and
// every queued batch mutated into the final one.)
func TestAppendBufferReuse(t *testing.T) {
	eng := streamEngine(t, nil)
	sess := eng.Session()
	sub, err := sess.Subscribe(context.Background(), contQuery,
		stream.WindowSpec{TimeCol: "t", Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]relational.Row, 0, 8)
	var i int64
	for batch := 0; batch < 16; batch++ {
		buf = buf[:0] // the hazard: same backing array every batch
		for j := 0; j < 8; j++ {
			buf = append(buf, sev(fmt.Sprintf("k%d", i%4), i/4, i))
			i++
		}
		if _, err := eng.AppendRows("events", buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.CloseStream("events"); err != nil {
		t.Fatal(err)
	}
	var total int64
	for w := range sub.Out() {
		for _, row := range w.Rows.Rows {
			total += row[2].I // COUNT(*) per group
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.Events != 128 || total != 128 {
		t.Fatalf("subscription saw %d events, windows carry %d rows-worth; buffer reuse corrupted the queue", st.Events, total)
	}
	// Every event lands in its own tick-window slot: 128 events over
	// t=0..31 in windows of 4 ticks -> 8 windows, 16 events each.
	if st.Windows != 8 {
		t.Fatalf("windows = %d, want 8", st.Windows)
	}
}
