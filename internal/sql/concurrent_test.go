package sql

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/relational"
	"repro/internal/workload"
)

// Concurrency acceptance suite: N sessions executing at the same time on
// one Engine must charge their movements as coexisting flows on the one
// shared network simulator, so per-query simulated network time degrades
// under contention while results stay row-for-row identical to
// single-node execution.

// concTestConfig is the distributed config the contention tests share:
// the single-switch fabric has exactly one path per host pair, so round
// outcomes do not depend on which goroutine registered first.
func concTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Topology = "single"
	return cfg
}

// productsRelation is a third demo table so one test query can carry two
// join (shuffle) phases while the other carries one — anti-aligned
// phases are what let contention overlap a worker-link phase with a
// coordinator-link phase.
func productsRelation() *relational.Relation {
	rel := relational.NewRelation("products", relational.Schema{
		{Name: "product", Type: relational.String},
		{Name: "margin", Type: relational.Float},
	})
	for i, p := range workload.Products {
		rel.MustAppend(relational.Row{relational.StringV(p), relational.FloatV(0.1 + 0.05*float64(i))})
	}
	return rel
}

func concEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(concTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 31, 6000, 150)
	eng.Register(productsRelation())
	return eng
}

const (
	// concQueryA: two repartition shuffles then a wide gather.
	concQueryA = "SELECT s.order_id, s.price, c.segment, p.margin FROM sales s JOIN customers c ON s.customer_id = c.customer_id JOIN products p ON s.product = p.product"
	// concQueryB: one repartition shuffle then a narrow gather. The
	// narrow output keeps B's coordinator-link duty cycle moderate in
	// isolation, so the contended busiest link (the worker uplinks, kept
	// busy by A's extra shuffle while B gathers) clearly exceeds it.
	concQueryB = "SELECT s.order_id FROM sales s JOIN customers c ON s.customer_id = c.customer_id"
)

// sessionFor opens a session with the movement strategy override the
// query relies on.
func sessionFor(eng *Engine, distJoin string) *Session {
	s := eng.Session()
	s.DistJoin = distJoin
	return s
}

// runIsolated executes one query alone on a fresh engine and returns its
// per-query and fabric-aggregate stats.
func runIsolated(t *testing.T, q, distJoin string) (*Result, *dist.FabricStats) {
	t.Helper()
	eng := concEngine(t)
	res, err := sessionFor(eng, distJoin).Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Net == nil {
		t.Fatal("distributed result missing net stats")
	}
	return res, eng.Fabric().Stats()
}

// expectRowsEqual compares two relations row-for-row with the same
// relative float tolerance as the parity suite (partial sums merge in
// different orders across engines).
func expectRowsEqual(t *testing.T, label string, want, got *relational.Relation) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d rows vs %d", label, want.Len(), got.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			diff := a.F - b.F
			if diff < 0 {
				diff = -diff
			}
			tol := 1e-9
			if mag := a.F; mag > 1 || mag < -1 {
				if mag < 0 {
					mag = -mag
				}
				tol *= mag
			}
			if a.I != b.I || a.S != b.S || diff > tol {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

// TestConcurrentSessionsShareFabric is the core contention acceptance
// test: two sessions running simultaneously on one engine share a single
// netsim, their flows coexist (the fabric aggregate shows both queries
// in one admission round and a max link utilization above either
// isolated run), per-query net time is strictly higher than isolated,
// and results stay identical to single-node execution.
func TestConcurrentSessionsShareFabric(t *testing.T) {
	// Single-node reference results.
	refEng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(refEng, 31, 6000, 150)
	refEng.Register(productsRelation())
	refA, err := refEng.Session().Query(context.Background(), concQueryA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := refEng.Session().Query(context.Background(), concQueryB)
	if err != nil {
		t.Fatal(err)
	}

	// Isolated distributed runs, each on its own fresh engine/fabric.
	isoA, fabA := runIsolated(t, concQueryA, "repartition")
	isoB, fabB := runIsolated(t, concQueryB, "repartition")
	expectRowsEqual(t, "isolated A vs single-node", refA.Rows, isoA.Rows)
	expectRowsEqual(t, "isolated B vs single-node", refB.Rows, isoB.Rows)
	if fabA.PeakQueries != 1 || fabB.PeakQueries != 1 {
		t.Fatalf("isolated runs must not contend: peaks %d, %d", fabA.PeakQueries, fabB.PeakQueries)
	}

	// Concurrent run: both sessions on ONE engine, with an admission
	// barrier guaranteeing their first phases share a round regardless of
	// goroutine interleaving.
	eng := concEngine(t)
	eng.Fabric().Expect(2)
	var wg sync.WaitGroup
	var conA, conB *Result
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		conA, errA = sessionFor(eng, "repartition").Query(context.Background(), concQueryA)
	}()
	go func() {
		defer wg.Done()
		conB, errB = sessionFor(eng, "repartition").Query(context.Background(), concQueryB)
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("concurrent queries failed: %v / %v", errA, errB)
	}

	// Results remain identical to single-node execution under contention.
	expectRowsEqual(t, "contended A vs single-node", refA.Rows, conA.Rows)
	expectRowsEqual(t, "contended B vs single-node", refB.Rows, conB.Rows)

	// Flows coexisted: at least one admission round carried both queries,
	// and more flows than either query ever fields alone.
	fab := eng.Fabric().Stats()
	if fab.PeakQueries < 2 {
		t.Fatalf("expected a round with both queries, got peak %d (rounds %d)", fab.PeakQueries, fab.Rounds)
	}
	if fab.PeakFlows <= fabA.PeakFlows || fab.PeakFlows <= fabB.PeakFlows {
		t.Fatalf("expected coexisting flows: contended peak %d vs isolated %d / %d",
			fab.PeakFlows, fabA.PeakFlows, fabB.PeakFlows)
	}

	// Aggregate hot-spot utilization exceeds either isolated run: shared
	// rounds keep the busiest link busy during windows it would idle
	// through in isolation.
	if fab.MaxLinkUtil <= fabA.MaxLinkUtil || fab.MaxLinkUtil <= fabB.MaxLinkUtil {
		t.Fatalf("contended max link util %.4f must exceed isolated %.4f / %.4f",
			fab.MaxLinkUtil, fabA.MaxLinkUtil, fabB.MaxLinkUtil)
	}

	// Per-query simulated net time strictly degrades under contention.
	if conA.Net.NetSeconds <= isoA.Net.NetSeconds {
		t.Fatalf("query A net time must degrade under contention: %.6fs vs isolated %.6fs",
			conA.Net.NetSeconds, isoA.Net.NetSeconds)
	}
	if conB.Net.NetSeconds <= isoB.Net.NetSeconds {
		t.Fatalf("query B net time must degrade under contention: %.6fs vs isolated %.6fs",
			conB.Net.NetSeconds, isoB.Net.NetSeconds)
	}
}

// TestConcurrentManySessions floods one engine with more sessions than
// shards: all results must stay correct and the fabric must report
// multi-query rounds. This is the race-detector workout for the shared
// planner caches, catalog and admission layer.
func TestConcurrentManySessions(t *testing.T) {
	eng := concEngine(t)
	ref, err := sessionFor(concEngine(t), "").Query(context.Background(), concQueryB)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	eng.Fabric().Expect(n)
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Session().Query(context.Background(), concQueryB)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		expectRowsEqual(t, "flood session", ref.Rows, results[i].Rows)
	}
	fab := eng.Fabric().Stats()
	if fab.PeakQueries < 2 {
		t.Fatalf("expected contending rounds, peak queries %d", fab.PeakQueries)
	}
}

// TestSequentialSharedFabricStaysRepeatable: reusing one engine's fabric
// across back-to-back queries must not perturb their accounting — the
// per-round clock reset and per-query ECMP seeds make run k identical to
// run 1.
func TestSequentialSharedFabricStaysRepeatable(t *testing.T) {
	eng := concEngine(t)
	sess := eng.Session()
	var first *dist.QueryStats
	for i := 0; i < 3; i++ {
		res, err := sess.Query(context.Background(), concQueryB)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Net
			continue
		}
		if res.Net.NetSeconds != first.NetSeconds || res.Net.BytesShuffled != first.BytesShuffled {
			t.Fatalf("run %d diverged: (%v, %v) vs (%v, %v)", i,
				res.Net.NetSeconds, res.Net.BytesShuffled, first.NetSeconds, first.BytesShuffled)
		}
	}
}
