package sql

import (
	"fmt"
	"strings"
)

// Expr is a SQL expression AST node. Render gives a canonical text form
// used for GROUP BY / select-item matching.
type Expr interface {
	Render() string
}

// ColRef references a column, optionally qualified by table alias.
type ColRef struct {
	Table string // "" when unqualified
	Name  string
}

// Render implements Expr.
func (c *ColRef) Render() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// Render implements Expr.
func (l *IntLit) Render() string { return fmt.Sprintf("%d", l.V) }

// FloatLit is a float literal.
type FloatLit struct{ V float64 }

// Render implements Expr.
func (l *FloatLit) Render() string { return fmt.Sprintf("%g", l.V) }

// StringLit is a string literal.
type StringLit struct{ V string }

// Render implements Expr.
func (l *StringLit) Render() string { return "'" + strings.ReplaceAll(l.V, "'", "''") + "'" }

// BinExpr is a binary operation; Op is the source symbol or keyword
// (lowercased): + - * / % = != <> < <= > >= and or.
type BinExpr struct {
	Op   string
	L, R Expr
}

// Render implements Expr.
func (b *BinExpr) Render() string {
	return "(" + b.L.Render() + " " + b.Op + " " + b.R.Render() + ")"
}

// UnaryExpr is negation or NOT.
type UnaryExpr struct {
	Op string // "-" or "not"
	E  Expr
}

// Render implements Expr.
func (u *UnaryExpr) Render() string { return u.Op + "(" + u.E.Render() + ")" }

// AggExpr is an aggregate call. Star marks COUNT(*).
type AggExpr struct {
	Fn   string // count, sum, avg, min, max
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

// Render implements Expr.
func (a *AggExpr) Render() string {
	if a.Star {
		return a.Fn + "(*)"
	}
	return a.Fn + "(" + a.Arg.Render() + ")"
}

// SelectItem is one output column: an expression with an optional alias.
type SelectItem struct {
	E     Expr
	Alias string // "" when none
}

// OutputName returns the column name the item produces.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.E.(*ColRef); ok {
		return c.Name
	}
	return s.E.Render()
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// EffectiveAlias returns the alias or the table name.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one INNER JOIN.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    Expr
	Desc bool
}

// SelectStmt is the root AST node.
type SelectStmt struct {
	Star    bool
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	// Having filters groups after aggregation (nil when absent).
	Having  Expr
	OrderBy []OrderItem
	// Limit is -1 when absent.
	Limit int
}

// HasAggregates reports whether any select item or ORDER BY key contains
// an aggregate call.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if containsAgg(it.E) {
			return true
		}
	}
	for _, o := range s.OrderBy {
		if containsAgg(o.E) {
			return true
		}
	}
	if s.Having != nil && containsAgg(s.Having) {
		return true
	}
	return len(s.GroupBy) > 0
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	case *UnaryExpr:
		return containsAgg(x.E)
	default:
		return false
	}
}
