package sql

import (
	"context"
	"strings"
	"testing"
)

// Out-of-core acceptance suite: a memory budget models cost, never
// semantics. Every query must return row-for-row the unbudgeted
// engine's answer at every budget, on the serial, morsel-parallel and
// distributed paths, while the spill report prices what crossed the
// tier boundary.

// spillQueries hit each spilling operator with exact Int aggregates:
// integer sums re-associate exactly, so grace partitioning and
// generation merges can reorder the arithmetic without a float fuzz
// tolerance hiding a real row mismatch.
var spillQueries = []string{
	// hash join: the customers build table is what overflows.
	"SELECT c.segment, COUNT(*) AS n, SUM(s.quantity) AS qty " +
		"FROM sales s JOIN customers c ON s.customer_id = c.customer_id " +
		"WHERE s.year >= 2012 GROUP BY c.segment ORDER BY qty DESC",
	// group-by: high-cardinality group state spills in generations.
	"SELECT customer_id, COUNT(*) AS n, SUM(quantity) AS qty " +
		"FROM sales GROUP BY customer_id ORDER BY qty DESC, customer_id LIMIT 10",
	// sort: materialized runs go external.
	"SELECT order_id, product, quantity FROM sales ORDER BY quantity DESC, order_id LIMIT 25",
}

const (
	spillSeed      = 31
	spillRows      = 20000
	spillCustomers = 10000
)

func spillEngine(t *testing.T, budget int64, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MemoryBudget = budget
	if budget > 0 {
		cfg.SpillTier = "ssd"
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, spillSeed, spillRows, spillCustomers)
	return eng
}

func querySpill(t *testing.T, eng *Engine, q string) *Result {
	t.Helper()
	res, err := eng.Session().Query(context.Background(), q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

// TestSpillParity is the headline acceptance criterion: budgets of
// infinity, half the working set, a tenth of it, and barely one batch
// all reproduce the unbudgeted rows exactly on every execution path,
// and the tightest budget actually spills (otherwise the sweep proved
// nothing).
func TestSpillParity(t *testing.T) {
	ref := map[string]*Result{}
	refEng := spillEngine(t, 0, nil)
	for _, q := range spillQueries {
		ref[q] = querySpill(t, refEng, q)
	}
	sales, ok := refEng.Table("sales")
	if !ok {
		t.Fatal("demo sales table missing")
	}
	workingSet := int64(sales.EncodedBytes())

	paths := []struct {
		name   string
		mutate func(*Config)
	}{
		{"serial", func(cfg *Config) { cfg.Parallel = false }},
		{"parallel", func(cfg *Config) {}},
		{"distributed", func(cfg *Config) {
			cfg.Distributed = true
			cfg.Shards = 4
			cfg.Topology = "single"
		}},
	}
	budgets := []struct {
		name  string
		bytes int64
	}{
		{"unbudgeted", 0},
		{"half", workingSet / 2},
		{"tenth", workingSet / 10},
		{"one-batch", 32 << 10}, // roughly one morsel of state
	}
	for _, path := range paths {
		for _, budget := range budgets {
			eng := spillEngine(t, budget.bytes, path.mutate)
			for _, q := range spillQueries {
				res := querySpill(t, eng, q)
				expectRowsEqual(t, path.name+"/"+budget.name, ref[q].Rows, res.Rows)
				if budget.bytes == 0 {
					if res.Spill != nil {
						t.Fatalf("%s/%s: unbudgeted query reported spill %+v", path.name, budget.name, res.Spill)
					}
					continue
				}
				if res.Spill == nil {
					t.Fatalf("%s/%s: budgeted query missing spill report", path.name, budget.name)
				}
				if res.Spill.Active() && res.Spill.Tier != "ssd" {
					t.Fatalf("%s/%s: spill priced against %q, want ssd", path.name, budget.name, res.Spill.Tier)
				}
			}
			// The tightest budget must actually exercise the out-of-core
			// machinery on every path — check with the group-by, whose
			// per-customer state dwarfs one batch.
			if budget.name == "one-batch" {
				res := querySpill(t, eng, spillQueries[1])
				if !res.Spill.Active() {
					t.Fatalf("%s: one-batch budget never spilled: %+v", path.name, res.Spill)
				}
				if res.Spill.SpilledBytes <= 0 || res.Spill.WriteSeconds <= 0 || res.Spill.EnergyJ <= 0 {
					t.Fatalf("%s: degenerate spill pricing: %+v", path.name, res.Spill)
				}
			}
		}
	}
}

// TestSpillDistributedStats: the distributed path folds modeled tier
// I/O into QueryStats.SpillSeconds so storage time reads beside network
// time, and per-shard budgets fork from one query budget (shards spill
// independently but report one total).
func TestSpillDistributedStats(t *testing.T) {
	eng := spillEngine(t, 32<<10, func(cfg *Config) {
		cfg.Distributed = true
		cfg.Shards = 4
		cfg.Topology = "leafspine"
	})
	res := querySpill(t, eng, spillQueries[1])
	if res.Spill == nil || !res.Spill.Active() {
		t.Fatalf("expected active spill, got %+v", res.Spill)
	}
	if res.Net == nil {
		t.Fatal("distributed query missing network stats")
	}
	if want := res.Spill.WriteSeconds + res.Spill.ReadSeconds; res.Net.SpillSeconds != want {
		t.Fatalf("QueryStats.SpillSeconds = %v, want %v", res.Net.SpillSeconds, want)
	}
	if !strings.Contains(res.Net.Summary(), "spill") {
		t.Fatalf("summary omits spill line:\n%s", res.Net.Summary())
	}
}

// TestSpillSessionOverride: a session can turn out-of-core execution on
// (or tighten it) against an engine whose config left it off, and pick
// its own tier; the rows still match the engine default.
func TestSpillSessionOverride(t *testing.T) {
	eng := spillEngine(t, 0, nil)
	ref := querySpill(t, eng, spillQueries[1])

	sess := eng.Session()
	sess.MemoryBudget = 32 << 10
	sess.SpillTier = "disk"
	res, err := sess.Query(context.Background(), spillQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	expectRowsEqual(t, "session budget override", ref.Rows, res.Rows)
	if res.Spill == nil || !res.Spill.Active() {
		t.Fatalf("session budget never spilled: %+v", res.Spill)
	}
	if res.Spill.Tier != "disk" {
		t.Fatalf("session tier override ignored: spilled to %q", res.Spill.Tier)
	}

	// A bare session on the same engine stays unbudgeted.
	res2 := querySpill(t, eng, spillQueries[1])
	if res2.Spill != nil {
		t.Fatalf("session budget leaked into a fresh session: %+v", res2.Spill)
	}
}

// TestSpillConfigValidation: budgets are validated at NewEngine, not
// discovered mid-query.
func TestSpillConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBudget = -1
	if _, err := NewEngine(cfg); err == nil || !strings.Contains(err.Error(), "MemoryBudget") {
		t.Fatalf("expected MemoryBudget error, got %v", err)
	}
	cfg = DefaultConfig()
	cfg.MemoryBudget = 1 << 20
	cfg.SpillTier = "tape"
	if _, err := NewEngine(cfg); err == nil || !strings.Contains(err.Error(), "tape") {
		t.Fatalf("expected unknown-tier error, got %v", err)
	}
	// DRAM is a residence tier, not a spill tier: spilling to the tier
	// you just ran out of is a config error.
	cfg.SpillTier = "dram"
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected dram rejection")
	}
	// A tier without a budget is harmless configuration, not an error.
	cfg = DefaultConfig()
	cfg.SpillTier = "nvm"
	if _, err := NewEngine(cfg); err != nil {
		t.Fatal(err)
	}
}
