package sql

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/lifecycle"
	"repro/internal/memtier"
	"repro/internal/netsim"
	"repro/internal/relational"
	"repro/internal/stream"
)

// Config selects the execution engine and the optimizer rules (the
// ablation experiments switch the latter). It is the construction-time
// configuration of an Engine; sessions may override the per-session
// knobs (see Session).
type Config struct {
	// Pushdown moves single-table WHERE conjuncts below joins.
	Pushdown bool
	// BuildSideSwap builds the hash join on the smaller estimated input.
	BuildSideSwap bool
	// ConstantFolding evaluates literal subtrees at plan time.
	ConstantFolding bool
	// Parallel lowers plans onto the morsel-parallel batch engine
	// (columnar chunks, kernel inner loops, multi-core leaf scans). When
	// false, plans run on the volcano row-at-a-time engine.
	Parallel bool
	// Workers caps batch-engine parallelism; 0 means runtime.NumCPU().
	// In distributed mode this is the per-host core count.
	Workers int
	// Distributed shards tables across the hosts of a simulated
	// datacenter fabric and executes queries shard-parallel, charging
	// every broadcast, shuffle and gather as flows in the network
	// simulator. All of an engine's queries share one simulator, so
	// concurrent sessions contend for the fabric. Shard-local fragments
	// always run on the batch engine.
	Distributed bool
	// Shards is the worker-host count in distributed mode (default 4).
	Shards int
	// Topology names the distributed fabric: "leafspine" (default),
	// "single", "fattree" or "torus".
	Topology string
	// DistJoin forces the distributed join movement strategy:
	// "auto" (cost-based, default), "broadcast" or "repartition".
	DistJoin string
	// ShardHash hash-partitions tables on their first Int column instead
	// of the default contiguous range partitioning.
	ShardHash bool
	// Controller plugs a programmable control plane into the engine's
	// shared fabric: between admission rounds it observes every pending
	// flow (with class/weight tags from the submitting sessions) and the
	// per-link load, and may reroute or reweight flows before they enter
	// the simulator. Use sdn.NewNetController(nil, policy, tableCap) —
	// the controller binds its topology view from the fabric's first
	// round — or any custom netsim.Controller. Nil (the default) is the
	// fixed data plane: default seeded-ECMP routes, session weights
	// honoured as requested, bit-identical with pre-controller engines.
	// Construction-time only: it is wired when the cluster is built and
	// is not a per-session override. A controller instance serves
	// exactly ONE engine: Admit calls are serialized by that engine's
	// fabric lock, so sharing an instance across engines would race on
	// the controller's internal state — give each engine its own.
	Controller netsim.Controller
	// Devices is the heterogeneous device catalog morsels may be placed
	// on: a subset of {"cpu", "gpu", "fpga"}. Devices are cost models,
	// not alternative implementations — every morsel still executes the
	// reference CPU kernels, so results are row-for-row identical across
	// any device set — and each batch operator charges the modeled
	// seconds/energy (plus transfer, launch and reconfiguration
	// overheads) of whichever device the placement policy picked into
	// its stats and the query's Result.Devices report. Empty (the
	// default) is the homogeneous CPU engine: no dispatch wrapping at
	// all, bit-identical with pre-device engines. Placement applies to
	// the batch operators, so it is active under Parallel and inside
	// distributed shard fragments (each simulated worker host places
	// independently on its own device state); the serial row engine
	// ignores it.
	Devices []string
	// Placement selects the morsel placement policy over Devices:
	// "auto" (cost-based per morsel, the default) or a device name
	// ("cpu", "gpu", "fpga") forcing every morsel onto that device.
	// Sessions may override it per query stream (Session.Placement).
	Placement string
	// MemoryBudget caps the bytes of operator state (hash-join build
	// tables, partial-aggregate maps, sort runs) a query may hold
	// resident at once. When an operator's reservation would exceed it,
	// the operator goes out-of-core: state partitions to the SpillTier
	// (grace hash partitioning for joins and aggregates, external run
	// merging for sorts) and the modeled tier I/O is charged into
	// OpStats.Spill and Result.Spill. Like Devices, the budget models
	// cost without changing semantics: results are row-for-row identical
	// at every budget, and 0 (the default) is the unbudgeted engine,
	// bit-identical with pre-budget code paths. Sessions may override it
	// (Session.MemoryBudget). Negative values are rejected at NewEngine.
	MemoryBudget int64
	// SpillTier names the memtier catalog tier budget overflow spills
	// to: "nvm", "ssd" (the default when a budget is set) or "disk".
	// DRAM is deliberately not a spill target — spilling to the tier the
	// budget models is a no-op, not an out-of-core strategy. Sessions
	// may override it (Session.SpillTier).
	SpillTier string
	// PipelineChunkRows turns on pipelined distributed movement: every
	// bulk phase (broadcast, shuffle, gather) splits into chunks of at
	// most this many rows, admitted on the shared fabric as eager
	// sub-rounds while receivers consume the previous chunk — hash-join
	// build tables fill as repartitioned rows land, partial-aggregate
	// merges fold generation by generation, the final gather streams
	// into the seq merge. Overlap is measured, not assumed: the modeled
	// compute/network overlap lands in Result.Net.OverlapSeconds.
	// Chunking never changes answers — chunk boundaries derive from the
	// deterministic seq tags, so results are row-for-row identical at
	// every chunk size — and 0 (the default, "chunk size infinity") is
	// the bulk engine, bit-identical with pre-pipeline code paths.
	// Negative values are rejected at NewEngine. Sessions may override
	// it (Session.PipelineChunkRows).
	PipelineChunkRows int
	// Replication places each shard's data on this many distinct live
	// hosts (distributed mode only). Reads follow the primary replica —
	// with every host live that is the static placement, so any
	// replication factor replays the unreplicated engine bit-identically
	// until membership changes — and failover re-dispatches a dead
	// primary's fragments to a surviving replica. 0 and 1 both mean one
	// copy; values above Shards are rejected at NewEngine. Replication is
	// construction-time only (the cluster's placement is shared state, not
	// a per-session knob).
	Replication int
	// Faults installs a deterministic fault-injection schedule on the
	// engine's cluster (distributed mode only): host deaths mid-phase,
	// stragglers with speculative re-execution, link degradation and
	// partitions, each firing once when the first query reaches the
	// event's ordinal. Recovery work is measured into Result.Net
	// (RecoverySeconds, RetriedFragments, SpeculativeWins). Nil (the
	// default) injects nothing and — together with Replication ≤ 1 —
	// keeps the engine on the pre-lifecycle code paths, bit-identically.
	// Construction-time only. Build plans with lifecycle.ParsePlan or
	// lifecycle.Seeded.
	Faults *lifecycle.FaultPlan
}

// Options is the former name of Config.
//
// Deprecated: use Config with NewEngine; Options survives for the
// deprecated DB wrapper.
type Options = Config

// DefaultConfig enables every optimizer rule and the batch engine.
func DefaultConfig() Config {
	return Config{Pushdown: true, BuildSideSwap: true, ConstantFolding: true, Parallel: true}
}

// DefaultOptions is the former name of DefaultConfig.
//
// Deprecated: use DefaultConfig.
func DefaultOptions() Options { return DefaultConfig() }

// Engine owns everything queries share: the catalog of registered
// relations, the planner configuration, and — in distributed mode — one
// long-lived cluster placement with a single shared network simulator.
// Queries from any number of concurrent sessions charge their data
// movements into that one simulator, so their flows coexist and contend:
// per-query simulated network time degrades under load, which is the
// fabric-interference effect the roadmap argues engines must be designed
// around.
//
// An Engine is safe for concurrent use; create Sessions to run queries.
type Engine struct {
	cfg Config

	mu      sync.RWMutex
	tables  map[string]*relational.Relation
	sharded map[string]*dist.ShardedTable
	cluster *dist.Cluster
	fabric  *dist.Fabric
	// lcm is the elastic-membership manager, non-nil only when
	// Replication > 1 or a fault plan is installed — the nil case keeps
	// every query on the pre-lifecycle code paths.
	lcm *lifecycle.Manager
	// clusterKey caches which (topology, shards, replication) triple
	// cluster serves.
	clusterKey string
	// epoch counts catalog mutations (see CatalogEpoch).
	epoch uint64
	// dataEpochs counts per-table data mutations — appends bump them
	// WITHOUT touching epoch, so cached plans survive growth (schema
	// unchanged) while result caches and subscriptions can still detect
	// it (see DataEpoch).
	dataEpochs map[string]uint64
	// hub fans appended batches out to streaming subscriptions. Inert
	// (no goroutines, no cost) until the first Subscribe.
	hub *stream.Hub
}

// NewEngine validates cfg and returns an empty engine. In distributed
// mode the cluster and its shared fabric are built eagerly, so topology
// errors surface here rather than at the first query.
func NewEngine(cfg Config) (*Engine, error) {
	switch cfg.DistJoin {
	case "", "auto", "broadcast", "repartition":
	default:
		return nil, fmt.Errorf("sql: unknown DistJoin strategy %q", cfg.DistJoin)
	}
	if err := exec.ValidateConfig(cfg.Devices, cfg.Placement); err != nil {
		return nil, err
	}
	if err := validateSpill(cfg.MemoryBudget, cfg.SpillTier); err != nil {
		return nil, err
	}
	if cfg.PipelineChunkRows < 0 {
		return nil, fmt.Errorf("sql: negative PipelineChunkRows %d", cfg.PipelineChunkRows)
	}
	if cfg.Replication < 0 {
		return nil, fmt.Errorf("sql: negative Replication %d", cfg.Replication)
	}
	if (cfg.Replication > 1 || cfg.Faults != nil) && !cfg.Distributed {
		return nil, fmt.Errorf("sql: Replication/Faults require Distributed mode")
	}
	e := newEngine(cfg)
	if cfg.Distributed {
		if _, _, err := e.clusterFor(cfg); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// newEngine builds the engine without validation (the deprecated DB
// wrapper surfaces config errors at plan time, as it always did).
func newEngine(cfg Config) *Engine {
	return &Engine{
		cfg:        cfg,
		tables:     map[string]*relational.Relation{},
		sharded:    map[string]*dist.ShardedTable{},
		dataEpochs: map[string]uint64{},
		hub:        stream.NewHub(),
	}
}

// Config returns the engine's construction-time configuration.
func (e *Engine) Config() Config { return e.cfg }

// Session opens a new session on the engine. Sessions are cheap; open
// one per concurrent query stream.
func (e *Engine) Session() *Session { return &Session{eng: e} }

// Register adds (or replaces) a table under its lowercased name,
// invalidating any cached shard placements of the previous version and
// bumping the catalog epoch (see CatalogEpoch).
func (e *Engine) Register(rel *relational.Relation) {
	name := strings.ToLower(rel.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[name] = rel
	e.epoch++
	e.dataEpochs[name]++
	for k := range e.sharded {
		if strings.HasPrefix(k, name+"|") {
			delete(e.sharded, k)
		}
	}
	// Replacing the relation starts a fresh stream: a name whose previous
	// incarnation was closed accepts appends again.
	e.hub.Reopen(name)
}

// IngestClass is the QoS class distributed stream appends bill their
// fabric flows under: ingest bytes show up per class in the fabric
// aggregate (FabricStats.ClassBytes) and contend with query flows in
// the same admission rounds.
const IngestClass = "ingest"

// AppendRows appends rows to a registered table as one morsel: the
// catalog swaps to a fresh relation header sharing the old backing
// array, so running queries keep scanning their snapshot while new
// queries (and the sharded-placement freshness check) see the growth.
// The table's data epoch bumps; the catalog epoch does NOT — the schema
// is unchanged, so cached plans stay valid. Streaming subscriptions on
// the table observe the batch in append order. On a distributed engine
// the appended bytes are billed to the shared fabric as ingest-class
// flows from the coordinator to each row's destination shard. The
// returned acknowledgement covers rows durable in the catalog.
func (e *Engine) AppendRows(table string, rows []relational.Row) (stream.Ingest, error) {
	if len(rows) == 0 {
		return stream.Ingest{}, nil
	}
	name := strings.ToLower(table)
	e.mu.Lock()
	old, ok := e.tables[name]
	if !ok {
		e.mu.Unlock()
		return stream.Ingest{}, fmt.Errorf("sql: unknown table %q", table)
	}
	if e.hub.TableClosed(name) {
		e.mu.Unlock()
		return stream.Ingest{}, fmt.Errorf("sql: stream for table %q is closed", table)
	}
	nrel := &relational.Relation{Name: old.Name, Schema: old.Schema, Rows: old.Rows}
	start := int64(old.Len())
	for _, row := range rows {
		if err := nrel.Append(row); err != nil {
			e.mu.Unlock()
			return stream.Ingest{}, err
		}
	}
	e.tables[name] = nrel
	e.dataEpochs[name]++
	for k := range e.sharded {
		if strings.HasPrefix(k, name+"|") {
			delete(e.sharded, k)
		}
	}
	// Publish under the catalog lock: subscription arrival order must
	// equal append order (the hub only enqueues — no blocking, no
	// reentry into the engine). The published slice is the catalog's own
	// copy, not the caller's — callers may reuse their batch buffer the
	// moment Append returns, while subscriptions drain asynchronously.
	e.hub.Publish(name, nrel.Rows[start:])
	e.mu.Unlock()

	ing := stream.Ingest{Start: start, Rows: len(rows)}
	for _, row := range rows {
		ing.Bytes += row.EncodedBytes()
	}
	ing.NetSeconds = e.billIngest(nrel, rows, int(start))
	return ing, nil
}

// billIngest charges one appended batch's movement to the shared fabric
// as ingest-class flows (coordinator → destination shard, per the
// table's sharding strategy). The party is short-lived — join, one
// phase, leave — so it contends in admission rounds with whatever
// queries are in flight without ever holding the round barrier open.
// Returns the modeled fabric seconds (0 on single-node engines).
func (e *Engine) billIngest(rel *relational.Relation, rows []relational.Row, start int) float64 {
	fab := e.Fabric()
	if fab == nil {
		return 0
	}
	shards := e.cfg.Shards
	if shards <= 0 {
		shards = distDefaultShards
	}
	strategy, keyCol := dist.RangeShard, -1
	if e.cfg.ShardHash {
		strategy, keyCol = dist.HashShard, 0
		for i, c := range rel.Schema {
			if c.Type == relational.Int {
				keyCol = i
				break
			}
		}
	}
	total := rel.Len()
	bytes := make([]float64, shards)
	for i, row := range rows {
		sh := dist.ShardFor(strategy, keyCol, shards, row, start+i, total)
		bytes[sh] += row.EncodedBytes()
	}
	transfers := make([]dist.Transfer, 0, shards)
	for sh, b := range bytes {
		if b > 0 {
			transfers = append(transfers, dist.Transfer{Src: dist.Coordinator, Dst: sh, Bytes: b})
		}
	}
	qr := fab.NewQueryQoS(nil, IngestClass, 0)
	if err := qr.RunPhase("ingest", transfers); err != nil {
		qr.Close()
		return 0
	}
	return qr.Finish().NetSeconds
}

// DataEpoch returns how many data mutations (appends or Register
// replacements) the named table has seen. Unlike CatalogEpoch it is
// per-table and appends bump it — the freshness signal for anything
// caching results rather than plans.
func (e *Engine) DataEpoch(table string) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.dataEpochs[strings.ToLower(table)]
}

// CatalogEpoch returns the number of catalog mutations the engine has
// seen: every Register — including one that replaces an existing
// relation — increments it. Anything derived from the catalog (a
// server-side prepared-statement cache, most prominently) records the
// epoch it was built under and treats a mismatch as staleness, so a
// cached plan can never survive a Register by construction.
func (e *Engine) CatalogEpoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// Table looks a table up by name.
func (e *Engine) Table(name string) (*relational.Relation, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// Fabric exposes the shared network fabric for contention inspection
// (aggregate stats, Expect barriers). It is nil until a distributed
// cluster exists — NewEngine builds it eagerly for distributed configs.
func (e *Engine) Fabric() *dist.Fabric {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.fabric
}

// distDefaultShards is the worker count when Config.Shards is unset.
const distDefaultShards = 4

// clusterFor returns the engine's cluster and shared fabric, rebuilding
// both when the topology or shard count in cfg changed (only the
// deprecated mutable-Options DB wrapper ever changes them mid-life).
func (e *Engine) clusterFor(cfg Config) (*dist.Cluster, *dist.Fabric, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = distDefaultShards
	}
	key := fmt.Sprintf("%s|%d|r%d", cfg.Topology, shards, cfg.Replication)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cluster != nil && e.clusterKey == key {
		return e.cluster, e.fabric, nil
	}
	c, err := dist.NewCluster(cfg.Topology, shards)
	if err != nil {
		return nil, nil, err
	}
	// cfg.Controller equals the engine's own (sessions never override
	// it); taking it from cfg additionally lets the deprecated DB
	// wrapper's Opt.Controller apply when its first query builds the
	// cluster. A controller change alone does not rebuild an existing
	// cluster — fabric control is construction-time state.
	e.cluster, e.fabric, e.clusterKey = c, dist.NewFabricController(c, cfg.Controller), key
	e.lcm = nil
	if cfg.Replication > 1 || cfg.Faults != nil {
		lcm, err := lifecycle.NewManager(e.fabric, cfg.Replication, cfg.Faults, e.shardBytes(shards))
		if err != nil {
			e.cluster, e.fabric, e.clusterKey = nil, nil, ""
			return nil, nil, err
		}
		e.lcm = lcm
	}
	return e.cluster, e.fabric, nil
}

// shardBytes builds the lifecycle manager's per-shard resident-bytes
// provider: the sum, over every cached shard placement, of the encoded
// bytes living on each shard — what a rebalance or repair must actually
// move. Tables not yet sharded (never queried distributed) weigh
// nothing until they are.
func (e *Engine) shardBytes(shards int) func() []float64 {
	return func() []float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		out := make([]float64, shards)
		for _, t := range e.sharded {
			for i, sh := range t.Shards {
				if i < shards {
					out[i] += sh.EncodedBytes()
				}
			}
		}
		return out
	}
}

// Lifecycle exposes the elastic-membership manager, or nil on engines
// without replication or a fault plan (the static, failure-free
// cluster).
func (e *Engine) Lifecycle() *lifecycle.Manager {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lcm
}

// errNoLifecycle reports membership operations on a static cluster.
var errNoLifecycle = fmt.Errorf("sql: cluster lifecycle inactive (set Config.Replication > 1 or Config.Faults)")

// DrainHost evacuates a worker host: its replicas copy to other live
// hosts (movement charged to the shared fabric) and no fragments land
// on it until RestoreHost.
func (e *Engine) DrainHost(worker int) error {
	lcm := e.Lifecycle()
	if lcm == nil {
		return errNoLifecycle
	}
	return lcm.DrainWorker(worker)
}

// RestoreHost returns a drained worker host to service.
func (e *Engine) RestoreHost(worker int) error {
	lcm := e.Lifecycle()
	if lcm == nil {
		return errNoLifecycle
	}
	return lcm.RestoreWorker(worker)
}

// JoinHost annexes a spare topology host as a new worker, returning its
// worker index.
func (e *Engine) JoinHost() (int, error) {
	lcm := e.Lifecycle()
	if lcm == nil {
		return -1, errNoLifecycle
	}
	return lcm.JoinHost()
}

// shardedTable returns the cached shard placement of rel: contiguous row
// ranges by default, or hash of the first Int column under hashShard.
func (e *Engine) shardedTable(rel *relational.Relation, shards int, hashShard bool) *dist.ShardedTable {
	strategy, keyCol := dist.RangeShard, -1
	if hashShard {
		strategy, keyCol = dist.HashShard, 0
		for i, c := range rel.Schema {
			if c.Type == relational.Int {
				keyCol = i
				break
			}
		}
	}
	key := fmt.Sprintf("%s|%d|%s|%d", strings.ToLower(rel.Name), shards, strategy, keyCol)
	fresh := func(t *dist.ShardedTable) bool {
		return t != nil && t.Rel == rel && t.SourceRows() == rel.Len()
	}
	// Read-locked fast path: concurrent sessions planning over an
	// already-sharded table must not serialize on the engine mutex.
	e.mu.RLock()
	t := e.sharded[key]
	e.mu.RUnlock()
	if fresh(t) {
		return t
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if t := e.sharded[key]; fresh(t) {
		return t
	}
	t = dist.ShardRelation(rel, shards, strategy, keyCol)
	e.sharded[key] = t
	return t
}

// planner compiles one statement against an engine's catalog under an
// effective configuration. cancel, when set, is woven into the lowered
// operator tree (leaf guards checked at every batch boundary) and into
// the distributed runtime (fabric-barrier waits, phase boundaries), so
// tripping it aborts the execution promptly on every path.
type planner struct {
	eng    *Engine
	cfg    Config
	cancel *relational.CancelToken
	// class and weight are the session's QoS identity: every flow the
	// compiled plan charges on the shared fabric carries them.
	class  string
	weight float64
}

// plan parses, plans and wraps the root so a spent plan re-executes as
// an explicit error instead of silently re-draining exhausted operators.
func (pl *planner) plan(q string) (*Planned, error) {
	stmt, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return pl.planParsed(stmt)
}

// defaultSpillTier is where budget overflow goes when SpillTier is
// unset: flash is the tier a 2016-era datacenter node actually has
// behind DRAM.
const defaultSpillTier = "ssd"

// validateSpill checks an out-of-core configuration. A SpillTier
// without a budget is allowed — the engine sets the tier, a session
// turns the budget on — but must still name a real tier so typos
// surface at construction.
func validateSpill(budget int64, tier string) error {
	if budget < 0 {
		return fmt.Errorf("sql: negative MemoryBudget %d", budget)
	}
	if tier != "" {
		if _, err := memtier.NewSpillDevice(tier); err != nil {
			return err
		}
	}
	return nil
}

// spillBudget builds one execution's memory budget, or nil on the
// unbudgeted engine (no MemoryBudget configured). Budgets are
// per-execution, like placers and cancellation tokens: the spill
// aggregate a budget carries belongs to exactly one run.
func (pl *planner) spillBudget() (*relational.MemoryBudget, error) {
	if pl.cfg.MemoryBudget <= 0 {
		return nil, nil
	}
	tier := pl.cfg.SpillTier
	if tier == "" {
		tier = defaultSpillTier
	}
	dev, err := memtier.NewSpillDevice(tier)
	if err != nil {
		return nil, err
	}
	return relational.NewMemoryBudget(pl.cfg.MemoryBudget, dev), nil
}

// heteroPlacer builds one execution's device placer, or nil on the
// homogeneous engine (no Devices configured). Placers are
// per-execution, like cancellation tokens: the Result.Devices report
// and the FPGA configuration state they carry belong to exactly one
// run.
func (pl *planner) heteroPlacer() (*exec.Placer, error) {
	if len(pl.cfg.Devices) == 0 {
		return nil, nil
	}
	return exec.NewPlacer(pl.cfg.Devices, pl.cfg.Placement)
}

// planParsed is plan over an already-parsed statement (prepared
// statements re-plan their AST per execution).
func (pl *planner) planParsed(stmt *SelectStmt) (*Planned, error) {
	p, err := pl.planStmt(stmt)
	if err != nil {
		return nil, err
	}
	p.Root = &spentOp{child: p.Root}
	if pl.cancel != nil {
		p.Root = relational.Guard(p.Root, pl.cancel)
	}
	return p, nil
}
