package sql

import (
	"context"
	"testing"

	"repro/internal/exec"
)

// Heterogeneous-execution acceptance suite: morsel placement across
// CPU/GPU/FPGA device models must never change query output — on the
// serial, morsel-parallel and distributed paths — while the modeled
// device report tracks where morsels went and what they cost, and the
// nil-device configuration replays the homogeneous engine exactly.

// heteroQueries exercises every placed kernel: range+predicate filters,
// computed projections, sort, and grouped aggregation, plus a join.
var heteroQueries = []string{
	"SELECT order_id, price FROM sales WHERE year >= 2014 AND quantity <= 3",
	"SELECT order_id, price * (1 - discount) AS net FROM sales WHERE region = 'emea' ORDER BY net DESC LIMIT 25",
	"SELECT region, COUNT(*) AS n, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC",
	"SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.year >= 2013 GROUP BY c.segment ORDER BY net DESC",
}

func heteroRef(t *testing.T) map[string]*Result {
	t.Helper()
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 23, 8000, 200)
	out := map[string]*Result{}
	for _, q := range heteroQueries {
		res, err := eng.Session().Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		out[q] = res
	}
	return out
}

// TestHeteroPlacementParity is the headline acceptance criterion: rows
// are identical across CPU-only, forced-GPU, forced-FPGA and auto
// placement, on the morsel-parallel and distributed paths (the serial
// row engine ignores devices but must also agree).
func TestHeteroPlacementParity(t *testing.T) {
	ref := heteroRef(t)
	paths := []struct {
		name   string
		mutate func(*Config)
	}{
		{"serial", func(cfg *Config) { cfg.Parallel = false }},
		{"parallel", func(cfg *Config) {}},
		{"distributed", func(cfg *Config) {
			cfg.Distributed = true
			cfg.Shards = 4
			cfg.Topology = "single"
		}},
	}
	for _, path := range paths {
		for _, placement := range []string{"cpu", "gpu", "fpga", "auto"} {
			cfg := DefaultConfig()
			cfg.Devices = []string{"cpu", "gpu", "fpga"}
			cfg.Placement = placement
			path.mutate(&cfg)
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			RegisterDemo(eng, 23, 8000, 200)
			sess := eng.Session()
			for _, q := range heteroQueries {
				res, err := sess.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("%s/%s %s: %v", path.name, placement, q, err)
				}
				expectRowsEqual(t, path.name+"/"+placement+" vs reference", ref[q].Rows, res.Rows)
				if path.name == "serial" {
					if res.Devices != nil {
						t.Fatalf("serial row engine must not report devices: %+v", res.Devices)
					}
					continue
				}
				if len(res.Devices) == 0 || res.Placement != placement {
					t.Fatalf("%s/%s: device report missing: placement %q devices %+v", path.name, placement, res.Placement, res.Devices)
				}
				total := 0
				for _, d := range res.Devices {
					total += d.Morsels
					if d.Seconds <= 0 || d.EnergyJ <= 0 {
						t.Fatalf("%s/%s: degenerate device stats %+v", path.name, placement, d)
					}
					if placement != "auto" && d.Device != placement {
						t.Fatalf("forced %s sent morsels to %s: %+v", placement, d.Device, res.Devices)
					}
				}
				if total == 0 {
					t.Fatalf("%s/%s: no morsels placed", path.name, placement)
				}
			}
		}
	}
}

// TestHeteroOverheadAccounting: forced offload placements charge their
// style's overheads into the per-operator and per-device stats — PCIe
// transfer + launches on the GPU, reconfiguration on the FPGA (once per
// kernel per worker host, not per morsel).
func TestHeteroOverheadAccounting(t *testing.T) {
	run := func(placement string) *Result {
		cfg := DefaultConfig()
		cfg.Devices = []string{"cpu", "gpu", "fpga"}
		cfg.Placement = placement
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RegisterDemo(eng, 23, 8000, 200)
		res, err := eng.Session().Query(context.Background(), heteroQueries[0])
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	gpu := run("gpu")
	if gpu.Devices[0].TransferSeconds <= 0 || gpu.Devices[0].LaunchSeconds <= 0 {
		t.Fatalf("forced gpu must charge transfer and launches: %+v", gpu.Devices[0])
	}
	st, ok := gpu.Ops["pushdown:sales"]
	if !ok || st.Hetero == nil {
		t.Fatalf("filter operator must carry hetero stats: %+v", gpu.Ops)
	}
	if st.Hetero.Morsels == 0 || st.Hetero.TransferSeconds <= 0 || st.Hetero.Devices["gpu"] != st.Hetero.Morsels {
		t.Fatalf("filter hetero stats: %+v", st.Hetero)
	}

	fpga := run("fpga")
	d := fpga.Devices[0]
	if d.Device != "fpga" || d.SetupSeconds <= 0 {
		t.Fatalf("forced fpga must charge reconfiguration: %+v", d)
	}
	// One bitstream load for the filter kernel, not one per morsel.
	perKernel := d.SetupSeconds / 0.1 // fpgaReconfigS
	if d.Morsels < 2 || int(perKernel+0.5) >= d.Morsels {
		t.Fatalf("reconfiguration must amortize across morsels: %d loads over %d morsels", int(perKernel+0.5), d.Morsels)
	}

	cpu := run("cpu")
	if c := cpu.Devices[0]; c.TransferSeconds != 0 || c.LaunchSeconds != 0 || c.SetupSeconds != 0 {
		t.Fatalf("cpu placement has no offload overheads: %+v", c)
	}
}

// TestHeteroAutoNotWorseThanCPU: per-morsel cost-based placement's
// modeled total is never above forcing the CPU, on a scan-heavy
// workload (the BenchmarkSQLHeteroAutoPlace acceptance in test form).
func TestHeteroAutoNotWorseThanCPU(t *testing.T) {
	run := func(placement string) float64 {
		cfg := DefaultConfig()
		cfg.Devices = []string{"cpu", "gpu", "fpga"}
		cfg.Placement = placement
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RegisterDemo(eng, 23, 60000, 200)
		res, err := eng.Session().Query(context.Background(), heteroQueries[0])
		if err != nil {
			t.Fatal(err)
		}
		sec := exec.ModeledSeconds(res.Devices)
		if sec <= 0 {
			t.Fatalf("%s: no modeled time", placement)
		}
		return sec
	}
	auto, cpu := run("auto"), run("cpu")
	if auto > cpu {
		t.Fatalf("auto placement modeled %.6gs > cpu-only %.6gs", auto, cpu)
	}
}

// TestNilDevicesReplay guards the replay acceptance criterion the same
// way TestNilControllerUniformWeightsReplay does for the control plane:
// an engine with no device set must behave bit-identically with and
// without the heterogeneous seam in the build — and identically to a
// device-carrying engine in everything except the modeled report, since
// devices model cost, not semantics. Distributed network accounting
// (floats, not approximations) must match across all three.
func TestNilDevicesReplay(t *testing.T) {
	type outcome struct {
		netSec, bytes float64
		rounds        int
	}
	// concQueryB plus a pushed-down filter, so the shard fragments carry
	// a placeable kernel while the shuffle/gather accounting stays the
	// comparison target.
	query := "SELECT s.order_id FROM sales s JOIN customers c ON s.customer_id = c.customer_id WHERE s.year >= 2012"
	run := func(devices []string, placement string) ([]outcome, []*Result) {
		t.Helper()
		cfg := concTestConfig()
		cfg.Devices = devices
		cfg.Placement = placement
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RegisterDemo(eng, 31, 6000, 150)
		var outs []outcome
		var results []*Result
		for i := 0; i < 3; i++ {
			res, err := eng.Session().Query(context.Background(), query)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, outcome{res.Net.NetSeconds, res.Net.BytesShuffled, res.Admission.RoundsJoined})
			results = append(results, res)
		}
		return outs, results
	}

	base, baseRes := run(nil, "")
	for i := 1; i < len(base); i++ {
		if base[i] != base[0] {
			t.Fatalf("nil-device replay diverged: run %d %+v vs %+v", i, base[i], base[0])
		}
	}
	for _, res := range baseRes {
		if res.Devices != nil || res.Placement != "" {
			t.Fatalf("nil devices must not report placement: %q %+v", res.Placement, res.Devices)
		}
	}

	hetero, hetRes := run([]string{"cpu", "gpu", "fpga"}, "auto")
	for i := range base {
		if hetero[i] != base[i] {
			t.Fatalf("device set perturbed the network accounting: %+v vs %+v", hetero[i], base[i])
		}
		expectRowsEqual(t, "hetero vs nil-device rows", baseRes[i].Rows, hetRes[i].Rows)
		if len(hetRes[i].Devices) == 0 {
			t.Fatal("device engine must report placements")
		}
	}
}

// TestSessionPlacementOverride: Session.Placement overrides the engine
// default per query stream; invalid values surface at query time.
func TestSessionPlacementOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Devices = []string{"cpu", "gpu"}
	cfg.Placement = "cpu"
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 23, 4000, 100)

	sess := eng.Session()
	sess.Placement = "gpu"
	res, err := sess.Query(context.Background(), heteroQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != "gpu" || res.Devices[len(res.Devices)-1].Device != "gpu" {
		t.Fatalf("session override ignored: %q %+v", res.Placement, res.Devices)
	}

	def, err := eng.Session().Query(context.Background(), heteroQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if def.Placement != "cpu" {
		t.Fatalf("engine default placement: %q", def.Placement)
	}

	bad := eng.Session()
	bad.Placement = "fpga" // not in this engine's device set
	if _, err := bad.Query(context.Background(), heteroQueries[0]); err == nil {
		t.Fatal("placement outside the device set must error")
	}
}

// TestHeteroConfigValidation: bad device sets and placements surface at
// NewEngine, not at the first query.
func TestHeteroConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Devices = []string{"cpu", "tpu"}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("unknown device must fail NewEngine")
	}
	cfg = DefaultConfig()
	cfg.Devices = []string{"cpu"}
	cfg.Placement = "sideways"
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("unknown placement must fail NewEngine")
	}
	cfg = DefaultConfig()
	cfg.Devices = []string{"gpu"}
	cfg.Placement = "fpga"
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("forced placement outside the device set must fail NewEngine")
	}
}
