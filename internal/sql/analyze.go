package sql

import (
	"fmt"

	"repro/internal/relational"
)

// valType is the SQL-level expression type. Booleans exist only during
// analysis; at runtime they are Int 0/1.
type valType int

const (
	tInt valType = iota
	tFloat
	tString
	tBool
)

func (t valType) String() string {
	switch t {
	case tInt:
		return "int"
	case tFloat:
		return "float"
	case tString:
		return "string"
	case tBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

func fromRelType(t relational.Type) valType {
	switch t {
	case relational.Int:
		return tInt
	case relational.Float:
		return tFloat
	default:
		return tString
	}
}

func toRelType(t valType) relational.Type {
	switch t {
	case tInt, tBool:
		return relational.Int
	case tFloat:
		return relational.Float
	default:
		return relational.String
	}
}

// scopeEntry binds one visible column.
type scopeEntry struct {
	qualifier string // table alias; "" for synthetic columns
	name      string
	typ       valType
	index     int
}

// scope is the set of columns visible to an expression, plus optional
// expression bindings (post-aggregation: group exprs and aggregates bound
// by their canonical rendering).
type scope struct {
	entries []scopeEntry
	// exprBind maps Expr.Render() of pre-computed expressions to the
	// column index holding their value, with its type.
	exprBind map[string]boundExpr
}

type boundExpr struct {
	index int
	typ   valType
}

// addTable appends a table's columns under its alias.
func (s *scope) addTable(alias string, schema relational.Schema, offset int) {
	for i, c := range schema {
		s.entries = append(s.entries, scopeEntry{
			qualifier: alias, name: c.Name, typ: fromRelType(c.Type), index: offset + i,
		})
	}
}

// resolve finds a column reference, enforcing unambiguity for bare names.
func (s *scope) resolve(c *ColRef) (scopeEntry, error) {
	var found []scopeEntry
	for _, e := range s.entries {
		if e.name != c.Name {
			continue
		}
		if c.Table != "" && e.qualifier != c.Table {
			continue
		}
		found = append(found, e)
	}
	switch len(found) {
	case 0:
		return scopeEntry{}, fmt.Errorf("sql: unknown column %q", c.Render())
	case 1:
		return found[0], nil
	default:
		return scopeEntry{}, fmt.Errorf("sql: ambiguous column %q (qualify it)", c.Render())
	}
}

// compiled is an executable expression.
type compiled struct {
	eval relational.Projector
	typ  valType
}

// compile type-checks and compiles an expression against the scope.
// Aggregates are only legal when bound in the scope (post-aggregation);
// elsewhere they are an error.
func (s *scope) compile(e Expr) (compiled, error) {
	// Expression bindings take precedence: a bound subtree (group expr or
	// aggregate) reads its precomputed column.
	if s.exprBind != nil {
		if b, ok := s.exprBind[e.Render()]; ok {
			idx := b.index
			return compiled{
				eval: func(r relational.Row) (relational.Value, error) { return r[idx], nil },
				typ:  b.typ,
			}, nil
		}
	}
	switch x := e.(type) {
	case *IntLit:
		v := relational.IntV(x.V)
		return compiled{eval: func(relational.Row) (relational.Value, error) { return v, nil }, typ: tInt}, nil
	case *FloatLit:
		v := relational.FloatV(x.V)
		return compiled{eval: func(relational.Row) (relational.Value, error) { return v, nil }, typ: tFloat}, nil
	case *StringLit:
		v := relational.StringV(x.V)
		return compiled{eval: func(relational.Row) (relational.Value, error) { return v, nil }, typ: tString}, nil
	case *ColRef:
		ent, err := s.resolve(x)
		if err != nil {
			return compiled{}, err
		}
		idx := ent.index
		return compiled{
			eval: func(r relational.Row) (relational.Value, error) { return r[idx], nil },
			typ:  ent.typ,
		}, nil
	case *UnaryExpr:
		inner, err := s.compile(x.E)
		if err != nil {
			return compiled{}, err
		}
		switch x.Op {
		case "-":
			if inner.typ != tInt && inner.typ != tFloat {
				return compiled{}, fmt.Errorf("sql: cannot negate %s", inner.typ)
			}
			t := inner.typ
			return compiled{typ: t, eval: func(r relational.Row) (relational.Value, error) {
				v, err := inner.eval(r)
				if err != nil {
					return relational.Value{}, err
				}
				if v.T == relational.Int {
					return relational.IntV(-v.I), nil
				}
				return relational.FloatV(-v.F), nil
			}}, nil
		case "not":
			if inner.typ != tBool {
				return compiled{}, fmt.Errorf("sql: NOT requires a boolean, got %s", inner.typ)
			}
			return compiled{typ: tBool, eval: func(r relational.Row) (relational.Value, error) {
				v, err := inner.eval(r)
				if err != nil {
					return relational.Value{}, err
				}
				if v.I == 0 {
					return relational.IntV(1), nil
				}
				return relational.IntV(0), nil
			}}, nil
		default:
			return compiled{}, fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}
	case *BinExpr:
		return s.compileBin(x)
	case *AggExpr:
		return compiled{}, fmt.Errorf("sql: aggregate %s not allowed here", x.Render())
	default:
		return compiled{}, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func (s *scope) compileBin(x *BinExpr) (compiled, error) {
	l, err := s.compile(x.L)
	if err != nil {
		return compiled{}, err
	}
	r, err := s.compile(x.R)
	if err != nil {
		return compiled{}, err
	}
	numeric := func(t valType) bool { return t == tInt || t == tFloat }
	switch x.Op {
	case "and", "or":
		if l.typ != tBool || r.typ != tBool {
			return compiled{}, fmt.Errorf("sql: %s requires booleans, got %s and %s", x.Op, l.typ, r.typ)
		}
		isAnd := x.Op == "and"
		return compiled{typ: tBool, eval: func(row relational.Row) (relational.Value, error) {
			lv, err := l.eval(row)
			if err != nil {
				return relational.Value{}, err
			}
			// Short-circuit.
			if isAnd && lv.I == 0 {
				return relational.IntV(0), nil
			}
			if !isAnd && lv.I != 0 {
				return relational.IntV(1), nil
			}
			rv, err := r.eval(row)
			if err != nil {
				return relational.Value{}, err
			}
			if rv.I != 0 {
				return relational.IntV(1), nil
			}
			return relational.IntV(0), nil
		}}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		if (l.typ == tString) != (r.typ == tString) || l.typ == tBool || r.typ == tBool {
			return compiled{}, fmt.Errorf("sql: cannot compare %s with %s", l.typ, r.typ)
		}
		op := x.Op
		return compiled{typ: tBool, eval: func(row relational.Row) (relational.Value, error) {
			lv, err := l.eval(row)
			if err != nil {
				return relational.Value{}, err
			}
			rv, err := r.eval(row)
			if err != nil {
				return relational.Value{}, err
			}
			c, err := relational.Compare(lv, rv)
			if err != nil {
				return relational.Value{}, err
			}
			ok := false
			switch op {
			case "=":
				ok = c == 0
			case "!=":
				ok = c != 0
			case "<":
				ok = c < 0
			case "<=":
				ok = c <= 0
			case ">":
				ok = c > 0
			case ">=":
				ok = c >= 0
			}
			if ok {
				return relational.IntV(1), nil
			}
			return relational.IntV(0), nil
		}}, nil
	case "+", "-", "*", "/", "%":
		if !numeric(l.typ) || !numeric(r.typ) {
			return compiled{}, fmt.Errorf("sql: arithmetic %q requires numbers, got %s and %s", x.Op, l.typ, r.typ)
		}
		if x.Op == "%" && (l.typ != tInt || r.typ != tInt) {
			return compiled{}, fmt.Errorf("sql: %% requires integers")
		}
		outT := tFloat
		if x.Op != "/" && l.typ == tInt && r.typ == tInt {
			outT = tInt
		}
		op := x.Op
		return compiled{typ: outT, eval: func(row relational.Row) (relational.Value, error) {
			lv, err := l.eval(row)
			if err != nil {
				return relational.Value{}, err
			}
			rv, err := r.eval(row)
			if err != nil {
				return relational.Value{}, err
			}
			if outT == tInt {
				switch op {
				case "+":
					return relational.IntV(lv.I + rv.I), nil
				case "-":
					return relational.IntV(lv.I - rv.I), nil
				case "*":
					return relational.IntV(lv.I * rv.I), nil
				case "%":
					if rv.I == 0 {
						return relational.Value{}, fmt.Errorf("sql: modulo by zero")
					}
					return relational.IntV(lv.I % rv.I), nil
				}
			}
			lf, err := lv.AsFloat()
			if err != nil {
				return relational.Value{}, err
			}
			rf, err := rv.AsFloat()
			if err != nil {
				return relational.Value{}, err
			}
			switch op {
			case "+":
				return relational.FloatV(lf + rf), nil
			case "-":
				return relational.FloatV(lf - rf), nil
			case "*":
				return relational.FloatV(lf * rf), nil
			case "/":
				if rf == 0 {
					return relational.Value{}, fmt.Errorf("sql: division by zero")
				}
				return relational.FloatV(lf / rf), nil
			}
			return relational.Value{}, fmt.Errorf("sql: unreachable arithmetic op %q", op)
		}}, nil
	default:
		return compiled{}, fmt.Errorf("sql: unknown operator %q", x.Op)
	}
}

// collectAggs gathers distinct aggregate calls (by rendering) in
// depth-first order.
func collectAggs(e Expr, seen map[string]*AggExpr, order *[]*AggExpr) {
	switch x := e.(type) {
	case *AggExpr:
		key := x.Render()
		if _, ok := seen[key]; !ok {
			seen[key] = x
			*order = append(*order, x)
		}
	case *BinExpr:
		collectAggs(x.L, seen, order)
		collectAggs(x.R, seen, order)
	case *UnaryExpr:
		collectAggs(x.E, seen, order)
	}
}

// collectCols gathers every column reference in an expression.
func collectCols(e Expr, out *[]*ColRef) {
	switch x := e.(type) {
	case *ColRef:
		*out = append(*out, x)
	case *BinExpr:
		collectCols(x.L, out)
		collectCols(x.R, out)
	case *UnaryExpr:
		collectCols(x.E, out)
	case *AggExpr:
		if x.Arg != nil {
			collectCols(x.Arg, out)
		}
	}
}

// splitConjuncts flattens a chain of ANDs.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "and" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// joinConjuncts rebuilds an AND chain (nil for empty input).
func joinConjuncts(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinExpr{Op: "and", L: out, R: e}
	}
	return out
}

// foldConstants evaluates literal-only subtrees at plan time.
func foldConstants(e Expr) Expr {
	switch x := e.(type) {
	case *BinExpr:
		l := foldConstants(x.L)
		r := foldConstants(x.R)
		if li, ok := l.(*IntLit); ok {
			if ri, ok2 := r.(*IntLit); ok2 {
				switch x.Op {
				case "+":
					return &IntLit{V: li.V + ri.V}
				case "-":
					return &IntLit{V: li.V - ri.V}
				case "*":
					return &IntLit{V: li.V * ri.V}
				case "%":
					if ri.V != 0 {
						return &IntLit{V: li.V % ri.V}
					}
				case "/":
					if ri.V != 0 {
						return &FloatLit{V: float64(li.V) / float64(ri.V)}
					}
				}
			}
		}
		if lf, ok := litFloat(l); ok {
			if rf, ok2 := litFloat(r); ok2 {
				switch x.Op {
				case "+":
					return &FloatLit{V: lf + rf}
				case "-":
					return &FloatLit{V: lf - rf}
				case "*":
					return &FloatLit{V: lf * rf}
				case "/":
					if rf != 0 {
						return &FloatLit{V: lf / rf}
					}
				}
			}
		}
		return &BinExpr{Op: x.Op, L: l, R: r}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, E: foldConstants(x.E)}
	default:
		return e
	}
}

// litFloat extracts a numeric literal as float, excluding int+int pairs
// already handled.
func litFloat(e Expr) (float64, bool) {
	switch x := e.(type) {
	case *FloatLit:
		return x.V, true
	case *IntLit:
		return float64(x.V), true
	default:
		return 0, false
	}
}
