package sql

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// Cancellation acceptance suite: a context cancelled mid-query must
// abort execution within one batch boundary on all three paths — the
// serial row engine, the morsel-parallel batch engine, and the
// distributed engine (including a phase parked at the shared fabric's
// admission barrier) — without stranding worker goroutines.

// cancelConfigs enumerates the three execution paths.
func cancelConfigs() map[string]Config {
	serial := DefaultConfig()
	serial.Parallel = false
	parallel := DefaultConfig()
	parallel.Workers = 4
	distributed := DefaultConfig()
	distributed.Distributed = true
	distributed.Shards = 4
	distributed.Topology = "single"
	return map[string]Config{"serial": serial, "parallel": parallel, "distributed": distributed}
}

// cancelQuery is compute-heavy per row (residual predicate plus float
// expressions) so mid-flight cancellation has a window to land in.
const cancelQuery = "SELECT region, SUM(price * (1 - discount) * quantity) AS v FROM sales WHERE quantity * 3 > 2 GROUP BY region"

// TestCancelBeforeExecution: an already-cancelled context aborts before
// any operator pulls, on every path.
func TestCancelBeforeExecution(t *testing.T) {
	for name, cfg := range cancelConfigs() {
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RegisterDemo(eng, 7, 2000, 50)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.Session().Query(ctx, cancelQuery); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: expected context.Canceled, got %v", name, err)
		}
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (small slack for runtime helpers) and fails if it does not —
// the leak detector for stranded Exchange workers and shard fragments.
func settleGoroutines(t *testing.T, name string, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: %d running, baseline %d", name, n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidQuery cancels shortly after execution starts on each
// path, asserting the query reports the context error promptly and no
// worker goroutines are stranded. If a run completes before the cancel
// lands (fast machine), the table grows and the run retries.
func TestCancelMidQuery(t *testing.T) {
	for name, cfg := range cancelConfigs() {
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			rows := 200_000
			for attempt := 0; attempt < 5; attempt++ {
				eng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				RegisterDemo(eng, 7, rows, 100)
				ctx, cancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(2*time.Millisecond, cancel)
				start := time.Now()
				_, qerr := eng.Session().Query(ctx, cancelQuery)
				elapsed := time.Since(start)
				timer.Stop()
				cancel()
				if qerr == nil {
					// Completed before the cancel fired: grow and retry.
					rows *= 2
					continue
				}
				if !errors.Is(qerr, context.Canceled) {
					t.Fatalf("expected context.Canceled, got %v", qerr)
				}
				// Prompt abort: nowhere near a full-table run. The bound is
				// generous (batch boundaries, not instants) but catches
				// drain-the-world regressions.
				if elapsed > 2*time.Second {
					t.Fatalf("cancellation took %v", elapsed)
				}
				settleGoroutines(t, name, baseline)
				return
			}
			t.Fatalf("query kept completing before cancellation up to %d rows", rows)
		})
	}
}

// TestCancelAtFabricBarrier: a distributed query whose phase is parked
// at the shared fabric's admission barrier (waiting for an expected
// second query that never arrives) must abort on cancellation — the
// deterministic test for the barrier-withdrawal path.
func TestCancelAtFabricBarrier(t *testing.T) {
	cfg := cancelConfigs()["distributed"]
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterDemo(eng, 7, 2000, 50)
	baseline := runtime.NumGoroutine()
	eng.Fabric().Expect(2) // the second query never comes
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Session().Query(ctx, cancelQuery)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("query finished despite barrier: %v", err)
	case <-time.After(200 * time.Millisecond):
		// Parked at the barrier, as intended.
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unpark the barrier wait")
	}
	settleGoroutines(t, "barrier", baseline)

	// The cancelled query must have deregistered: a follow-up query on the
	// same fabric runs to completion instead of waiting forever.
	res, err := eng.Session().Query(context.Background(), cancelQuery)
	if err != nil || res.Rows.Len() == 0 {
		t.Fatalf("fabric wedged after cancelled query: %v", err)
	}
}
