package topo

import (
	"testing"
	"testing/quick"
)

func TestSingleSwitch(t *testing.T) {
	n := SingleSwitch(8, Gen10)
	if got := n.CountKind(Host); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	if got := n.CountKind(ToR); got != 1 {
		t.Fatalf("switches = %d", got)
	}
	if len(n.Links) != 8 {
		t.Fatalf("links = %d", len(n.Links))
	}
	if !n.Connected() {
		t.Fatal("not connected")
	}
	p, ok := n.ShortestPath(0, 1)
	if !ok || p.Hops() != 2 {
		t.Fatalf("host-to-host path hops = %d, ok=%v", p.Hops(), ok)
	}
}

func TestLeafSpineStructure(t *testing.T) {
	n := LeafSpine(LeafSpineSpec{Leaves: 4, Spines: 2, HostsPerLeaf: 8, HostSpeed: Gen10, FabricSpeed: Gen40})
	if got := n.CountKind(Host); got != 32 {
		t.Fatalf("hosts = %d", got)
	}
	if got := n.CountKind(ToR); got != 4 {
		t.Fatalf("leaves = %d", got)
	}
	if got := n.CountKind(Agg); got != 2 {
		t.Fatalf("spines = %d", got)
	}
	// 32 host links + 4*2 fabric links
	if len(n.Links) != 40 {
		t.Fatalf("links = %d", len(n.Links))
	}
	if !n.Connected() {
		t.Fatal("not connected")
	}
}

func TestLeafSpinePaths(t *testing.T) {
	n := LeafSpine(LeafSpineSpec{Leaves: 4, Spines: 4, HostsPerLeaf: 4, HostSpeed: Gen10, FabricSpeed: Gen40})
	// same leaf: 2 hops via the shared leaf
	p, ok := n.ShortestPath(0, 1)
	if !ok || p.Hops() != 2 {
		t.Fatalf("intra-leaf hops = %d", p.Hops())
	}
	// cross leaf: host->leaf->spine->leaf->host = 4 hops
	p, ok = n.ShortestPath(0, 4)
	if !ok || p.Hops() != 4 {
		t.Fatalf("cross-leaf hops = %d", p.Hops())
	}
	// ECMP should expose one path per spine
	paths := n.ECMPPaths(0, 4, 16)
	if len(paths) != 4 {
		t.Fatalf("ECMP paths = %d, want 4", len(paths))
	}
	for _, q := range paths {
		if q.Hops() != 4 {
			t.Fatalf("non-shortest ECMP path with %d hops", q.Hops())
		}
	}
}

func TestFatTreeCounts(t *testing.T) {
	k := 4
	n := FatTree(k, Gen10)
	if got := n.CountKind(Host); got != k*k*k/4 {
		t.Fatalf("hosts = %d, want %d", got, k*k*k/4)
	}
	if got := n.CountKind(ToR); got != k*k/2 {
		t.Fatalf("edge switches = %d, want %d", got, k*k/2)
	}
	if got := n.CountKind(Agg); got != k*k/2 {
		t.Fatalf("agg switches = %d, want %d", got, k*k/2)
	}
	if got := n.CountKind(Core); got != k*k/4 {
		t.Fatalf("core switches = %d, want %d", got, k*k/4)
	}
	if !n.Connected() {
		t.Fatal("not connected")
	}
}

func TestFatTreePathLengths(t *testing.T) {
	n := FatTree(4, Gen10)
	// same edge switch: 2 hops
	if p, _ := n.ShortestPath(0, 1); p.Hops() != 2 {
		t.Fatalf("same-edge hops = %d", p.Hops())
	}
	// same pod, different edge: 4 hops
	if p, _ := n.ShortestPath(0, 2); p.Hops() != 4 {
		t.Fatalf("same-pod hops = %d", p.Hops())
	}
	// different pod: 6 hops
	if p, _ := n.ShortestPath(0, 15); p.Hops() != 6 {
		t.Fatalf("cross-pod hops = %d", p.Hops())
	}
}

func TestFatTreeECMPCrossPod(t *testing.T) {
	n := FatTree(4, Gen10)
	paths := n.ECMPPaths(0, 15, 32)
	// k=4 fat-tree offers (k/2)^2 = 4 shortest cross-pod paths
	if len(paths) != 4 {
		t.Fatalf("cross-pod ECMP paths = %d, want 4", len(paths))
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd k")
		}
	}()
	FatTree(3, Gen10)
}

func TestTorus2D(t *testing.T) {
	n := Torus2D(4, 4, Gen10)
	if got := n.CountKind(Host); got != 16 {
		t.Fatalf("hosts = %d", got)
	}
	if got := n.CountKind(ToR); got != 16 {
		t.Fatalf("switches = %d", got)
	}
	// 16 host links + 16*2 torus links
	if len(n.Links) != 48 {
		t.Fatalf("links = %d", len(n.Links))
	}
	if !n.Connected() {
		t.Fatal("not connected")
	}
	// Opposite corners: 2 host hops + wraparound distance 2+2 = 4 switch hops... but
	// on a 4x4 torus max switch distance is 2+2=4, so host-to-host <= 6.
	p, ok := n.ShortestPath(0, 10)
	if !ok || p.Hops() > 6 {
		t.Fatalf("torus path hops = %d", p.Hops())
	}
}

func TestPickECMPDeterministic(t *testing.T) {
	n := FatTree(4, Gen10)
	a, ok1 := n.PickECMP(0, 15, 7, 16)
	b, ok2 := n.PickECMP(0, 15, 7, 16)
	if !ok1 || !ok2 {
		t.Fatal("PickECMP failed")
	}
	if len(a.LinkIDs) != len(b.LinkIDs) {
		t.Fatal("nondeterministic ECMP pick")
	}
	for i := range a.LinkIDs {
		if a.LinkIDs[i] != b.LinkIDs[i] {
			t.Fatal("nondeterministic ECMP pick")
		}
	}
}

func TestPickECMPSpreadsFlows(t *testing.T) {
	n := FatTree(4, Gen10)
	seen := map[int]bool{}
	for f := 0; f < 64; f++ {
		p, _ := n.PickECMP(0, 15, f, 16)
		seen[p.LinkIDs[2]] = true // the core uplink distinguishes paths
	}
	if len(seen) < 2 {
		t.Fatalf("ECMP hashing used only %d distinct paths", len(seen))
	}
}

func TestPathHelpers(t *testing.T) {
	n := LeafSpine(LeafSpineSpec{Leaves: 2, Spines: 1, HostsPerLeaf: 1, HostSpeed: Gen10, FabricSpeed: Gen100})
	p, ok := n.ShortestPath(0, 1)
	if !ok {
		t.Fatal("no path")
	}
	if p.MinSpeed(n) != Gen10 {
		t.Fatalf("bottleneck = %v, want 10", p.MinSpeed(n))
	}
	if d := p.DelayNS(n); d != float64(p.Hops())*DefaultHopDelayNS {
		t.Fatalf("delay = %v", d)
	}
}

func TestGbEBytesPerSec(t *testing.T) {
	if Gen10.BytesPerSec() != 1.25e9 {
		t.Fatalf("10GbE = %v B/s", Gen10.BytesPerSec())
	}
	if Gen400.BytesPerSec() != 5e10 {
		t.Fatalf("400GbE = %v B/s", Gen400.BytesPerSec())
	}
}

func TestFabricCapacityScalesWithGeneration(t *testing.T) {
	lo := LeafSpine(LeafSpineSpec{Leaves: 4, Spines: 4, HostsPerLeaf: 4, HostSpeed: Gen10, FabricSpeed: Gen40})
	hi := LeafSpine(LeafSpineSpec{Leaves: 4, Spines: 4, HostsPerLeaf: 4, HostSpeed: Gen10, FabricSpeed: Gen400})
	if lo.FabricCapacity() != 16*40 {
		t.Fatalf("lo fabric = %v, want 640", lo.FabricCapacity())
	}
	if hi.FabricCapacity() != 16*400 {
		t.Fatalf("hi fabric = %v, want 6400", hi.FabricCapacity())
	}
	if lo.AccessCapacity() != 16*10 {
		t.Fatalf("access = %v, want 160", lo.AccessCapacity())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New()
	a := n.AddNode(Host, "a")
	n.AddLink(a, a, Gen10, 0)
}

func TestDistancesUnreachable(t *testing.T) {
	n := New()
	n.AddNode(Host, "a")
	n.AddNode(Host, "b")
	d := n.Distances(0)
	if d[1] != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d[1])
	}
	if n.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if _, ok := n.ShortestPath(0, 1); ok {
		t.Fatal("path found in disconnected graph")
	}
}

func TestShortestPathProperty(t *testing.T) {
	n := FatTree(4, Gen10)
	hosts := n.Hosts()
	err := quick.Check(func(aRaw, bRaw uint8) bool {
		a := hosts[int(aRaw)%len(hosts)]
		b := hosts[int(bRaw)%len(hosts)]
		p, ok := n.ShortestPath(a, b)
		if !ok {
			return false
		}
		// Path is well-formed: consecutive nodes joined by the listed links.
		for i, lid := range p.LinkIDs {
			l := n.Links[lid]
			if !(l.A == p.NodeIDs[i] && l.B == p.NodeIDs[i+1]) &&
				!(l.B == p.NodeIDs[i] && l.A == p.NodeIDs[i+1]) {
				return false
			}
		}
		// Hop count matches the BFS distance oracle.
		return p.Hops() == n.Distances(a)[b]
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
