package topo

import "fmt"

// DefaultHopDelayNS is the per-hop delay used by the builders: cut-through
// switching latency plus short intra-DC propagation (~500 ns), a
// conventional figure for modern fabrics.
const DefaultHopDelayNS = 500

// SingleSwitch builds hosts connected to one switch — the degenerate
// "appliance" topology used as a baseline.
func SingleSwitch(hosts int, hostSpeed GbE) *Network {
	n := New()
	for i := 0; i < hosts; i++ {
		n.AddNode(Host, fmt.Sprintf("h%d", i))
	}
	sw := n.AddNode(ToR, "sw0")
	for i := 0; i < hosts; i++ {
		n.AddLink(i, sw, hostSpeed, DefaultHopDelayNS)
	}
	return n
}

// LeafSpineSpec configures a two-tier Clos (leaf–spine) fabric.
type LeafSpineSpec struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
	HostSpeed    GbE // host-to-leaf links
	FabricSpeed  GbE // leaf-to-spine links
}

// LeafSpine builds the fabric: every leaf connects to every spine. Node IDs
// are assigned hosts first, then leaves, then spines.
func LeafSpine(spec LeafSpineSpec) *Network {
	if spec.Leaves <= 0 || spec.Spines <= 0 || spec.HostsPerLeaf <= 0 {
		panic("topo: LeafSpine requires positive dimensions")
	}
	n := New()
	hosts := make([][]int, spec.Leaves)
	for l := 0; l < spec.Leaves; l++ {
		hosts[l] = make([]int, spec.HostsPerLeaf)
		for h := 0; h < spec.HostsPerLeaf; h++ {
			hosts[l][h] = n.AddNode(Host, fmt.Sprintf("h%d-%d", l, h))
		}
	}
	leaves := make([]int, spec.Leaves)
	for l := range leaves {
		leaves[l] = n.AddNode(ToR, fmt.Sprintf("leaf%d", l))
	}
	spines := make([]int, spec.Spines)
	for s := range spines {
		spines[s] = n.AddNode(Agg, fmt.Sprintf("spine%d", s))
	}
	for l := 0; l < spec.Leaves; l++ {
		for h := 0; h < spec.HostsPerLeaf; h++ {
			n.AddLink(hosts[l][h], leaves[l], spec.HostSpeed, DefaultHopDelayNS)
		}
		for s := 0; s < spec.Spines; s++ {
			n.AddLink(leaves[l], spines[s], spec.FabricSpeed, DefaultHopDelayNS)
		}
	}
	return n
}

// FatTree builds the canonical k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)^2 core switches,
// and k^3/4 hosts, with uniform link speed. k must be even and >= 2.
func FatTree(k int, speed GbE) *Network {
	if k < 2 || k%2 != 0 {
		panic("topo: FatTree requires even k >= 2")
	}
	n := New()
	half := k / 2
	// hosts first (IDs 0 .. k^3/4-1)
	hostID := func(pod, edge, h int) int { return pod*half*half + edge*half + h }
	numHosts := k * half * half
	for i := 0; i < numHosts; i++ {
		n.AddNode(Host, fmt.Sprintf("h%d", i))
	}
	edgeIDs := make([][]int, k)
	aggIDs := make([][]int, k)
	for pod := 0; pod < k; pod++ {
		edgeIDs[pod] = make([]int, half)
		for e := 0; e < half; e++ {
			edgeIDs[pod][e] = n.AddNode(ToR, fmt.Sprintf("edge%d-%d", pod, e))
		}
		aggIDs[pod] = make([]int, half)
		for a := 0; a < half; a++ {
			aggIDs[pod][a] = n.AddNode(Agg, fmt.Sprintf("agg%d-%d", pod, a))
		}
	}
	coreIDs := make([]int, half*half)
	for c := range coreIDs {
		coreIDs[c] = n.AddNode(Core, fmt.Sprintf("core%d", c))
	}
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				n.AddLink(hostID(pod, e, h), edgeIDs[pod][e], speed, DefaultHopDelayNS)
			}
			for a := 0; a < half; a++ {
				n.AddLink(edgeIDs[pod][e], aggIDs[pod][a], speed, DefaultHopDelayNS)
			}
		}
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				n.AddLink(aggIDs[pod][a], coreIDs[a*half+c], speed, DefaultHopDelayNS)
			}
		}
	}
	return n
}

// Torus2D builds a w×h 2-D torus of switches, each with one attached host —
// the HPC-style direct topology referenced by the HPC/Big Data convergence
// discussion. Host IDs come first.
func Torus2D(w, h int, speed GbE) *Network {
	if w <= 0 || h <= 0 {
		panic("topo: Torus2D requires positive dimensions")
	}
	n := New()
	numSW := w * h
	for i := 0; i < numSW; i++ {
		n.AddNode(Host, fmt.Sprintf("h%d", i))
	}
	sw := make([]int, numSW)
	for i := range sw {
		sw[i] = n.AddNode(ToR, fmt.Sprintf("sw%d", i))
	}
	at := func(x, y int) int { return sw[((y+h)%h)*w+(x+w)%w] }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			n.AddLink(y*w+x, at(x, y), speed, DefaultHopDelayNS) // host uplink
			if w > 1 {
				n.AddLink(at(x, y), at(x+1, y), speed, DefaultHopDelayNS)
			}
			if h > 1 {
				n.AddLink(at(x, y), at(x, y+1), speed, DefaultHopDelayNS)
			}
		}
	}
	return n
}
