package topo

import "container/list"

// ShortestPath returns one shortest path (by hop count) from src to dst
// using BFS, or an empty path and false if dst is unreachable. Among equal-
// length paths it deterministically prefers the lowest link IDs.
func (n *Network) ShortestPath(src, dst int) (Path, bool) {
	if src == dst {
		return Path{NodeIDs: []int{src}}, true
	}
	prevLink := make([]int, len(n.Nodes))
	for i := range prevLink {
		prevLink[i] = -1
	}
	visited := make([]bool, len(n.Nodes))
	visited[src] = true
	q := list.New()
	q.PushBack(src)
	for q.Len() > 0 {
		v := q.Remove(q.Front()).(int)
		for _, lid := range n.adj[v] {
			u := n.Links[lid].Other(v)
			if !visited[u] {
				visited[u] = true
				prevLink[u] = lid
				if u == dst {
					return n.tracePath(src, dst, prevLink), true
				}
				q.PushBack(u)
			}
		}
	}
	return Path{}, false
}

// ShortestPathAvoiding is ShortestPath over the subgraph without the
// blocked links. The SDN controller's repair loop uses it when every
// cached ECMP alternative crosses a failed link.
func (n *Network) ShortestPathAvoiding(src, dst int, blocked func(linkID int) bool) (Path, bool) {
	if src == dst {
		return Path{NodeIDs: []int{src}}, true
	}
	prevLink := make([]int, len(n.Nodes))
	for i := range prevLink {
		prevLink[i] = -1
	}
	visited := make([]bool, len(n.Nodes))
	visited[src] = true
	q := list.New()
	q.PushBack(src)
	for q.Len() > 0 {
		v := q.Remove(q.Front()).(int)
		for _, lid := range n.adj[v] {
			if blocked != nil && blocked(lid) {
				continue
			}
			u := n.Links[lid].Other(v)
			if !visited[u] {
				visited[u] = true
				prevLink[u] = lid
				if u == dst {
					return n.tracePath(src, dst, prevLink), true
				}
				q.PushBack(u)
			}
		}
	}
	return Path{}, false
}

func (n *Network) tracePath(src, dst int, prevLink []int) Path {
	var nodes, links []int
	v := dst
	for v != src {
		lid := prevLink[v]
		nodes = append(nodes, v)
		links = append(links, lid)
		v = n.Links[lid].Other(v)
	}
	nodes = append(nodes, src)
	// reverse into forward order
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return Path{NodeIDs: nodes, LinkIDs: links}
}

// Distances returns hop distances from src to every node (-1 when
// unreachable).
func (n *Network) Distances(src int) []int {
	dist := make([]int, len(n.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := list.New()
	q.PushBack(src)
	for q.Len() > 0 {
		v := q.Remove(q.Front()).(int)
		for _, lid := range n.adj[v] {
			u := n.Links[lid].Other(v)
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				q.PushBack(u)
			}
		}
	}
	return dist
}

// ECMPPaths enumerates up to maxPaths distinct shortest paths from src to
// dst, in deterministic order. This is the path set an ECMP fabric hashes
// flows across.
func (n *Network) ECMPPaths(src, dst, maxPaths int) []Path {
	if src == dst {
		return []Path{{NodeIDs: []int{src}}}
	}
	distTo := n.distancesTo(dst)
	if distTo[src] < 0 {
		return nil
	}
	var out []Path
	var nodes []int
	var links []int
	var walk func(v int)
	walk = func(v int) {
		if len(out) >= maxPaths {
			return
		}
		if v == dst {
			p := Path{NodeIDs: append([]int(nil), append(nodes, dst)...), LinkIDs: append([]int(nil), links...)}
			out = append(out, p)
			return
		}
		for _, lid := range n.adj[v] {
			u := n.Links[lid].Other(v)
			if distTo[u] == distTo[v]-1 {
				nodes = append(nodes, v)
				links = append(links, lid)
				walk(u)
				nodes = nodes[:len(nodes)-1]
				links = links[:len(links)-1]
			}
		}
	}
	walk(src)
	return out
}

func (n *Network) distancesTo(dst int) []int {
	// BFS from dst over the undirected graph gives distance-to-dst.
	return n.Distances(dst)
}

// PickECMP selects one of the ECMP paths for a flow using a deterministic
// hash of the flow 5-tuple surrogate (src, dst, flowID).
func (n *Network) PickECMP(src, dst, flowID, maxPaths int) (Path, bool) {
	paths := n.ECMPPaths(src, dst, maxPaths)
	if len(paths) == 0 {
		return Path{}, false
	}
	h := uint64(src)*1000003 ^ uint64(dst)*8191 ^ uint64(flowID)*2654435761
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return paths[h%uint64(len(paths))], true
}

// Connected reports whether every node is reachable from node 0.
func (n *Network) Connected() bool {
	if len(n.Nodes) == 0 {
		return true
	}
	for _, d := range n.Distances(0) {
		if d < 0 {
			return false
		}
	}
	return true
}
