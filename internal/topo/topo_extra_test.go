package topo

import (
	"testing"
	"testing/quick"
)

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{4, 8} {
		net := FatTree(k, Gen40)
		wantHosts := k * k * k / 4
		wantSwitches := 5 * k * k / 4 // k²/4 core + k²/2 agg + k²/2 edge
		if got := len(net.Hosts()); got != wantHosts {
			t.Fatalf("k=%d: hosts = %d, want %d", k, got, wantHosts)
		}
		if got := len(net.Switches()); got != wantSwitches {
			t.Fatalf("k=%d: switches = %d, want %d", k, got, wantSwitches)
		}
		if !net.Connected() {
			t.Fatalf("k=%d: fat-tree not connected", k)
		}
	}
}

func TestFatTreeFullBisection(t *testing.T) {
	// A fat-tree's defining property: as many core uplinks as edge
	// downlinks — fabric capacity at least matches access capacity.
	net := FatTree(4, Gen40)
	if net.FabricCapacity() < net.AccessCapacity() {
		t.Fatalf("fabric %v < access %v", net.FabricCapacity(), net.AccessCapacity())
	}
}

func TestTorusStructure(t *testing.T) {
	net := Torus2D(4, 3, Gen10)
	// 12 switches, each with an attached host, 2×12 torus links.
	if got := len(net.Switches()); got != 12 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(net.Hosts()); got != 12 {
		t.Fatalf("hosts = %d", got)
	}
	if !net.Connected() {
		t.Fatal("torus not connected")
	}
	// Every switch has degree 4 (torus) + 1 (host).
	for _, sw := range net.Switches() {
		if d := len(net.Incident(sw)); d != 5 {
			t.Fatalf("switch %d degree = %d, want 5", sw, d)
		}
	}
}

func TestShortestPathAvoidingReroutes(t *testing.T) {
	// Triangle a-b, b-c, a-c: blocking the direct link forces the detour.
	n := New()
	a := n.AddNode(Host, "a")
	b := n.AddNode(ToR, "b")
	c := n.AddNode(Host, "c")
	direct := n.AddLink(a, c, Gen10, 0)
	n.AddLink(a, b, Gen10, 0)
	n.AddLink(b, c, Gen10, 0)

	p, ok := n.ShortestPath(a, c)
	if !ok || p.Hops() != 1 {
		t.Fatalf("direct path hops = %d", p.Hops())
	}
	p, ok = n.ShortestPathAvoiding(a, c, func(lid int) bool { return lid == direct })
	if !ok || p.Hops() != 2 {
		t.Fatalf("detour hops = %d ok=%v", p.Hops(), ok)
	}
	// Blocking everything disconnects.
	if _, ok := n.ShortestPathAvoiding(a, c, func(int) bool { return true }); ok {
		t.Fatal("fully blocked graph must be unreachable")
	}
	// Self path.
	if p, ok := n.ShortestPathAvoiding(a, a, nil); !ok || p.Hops() != 0 {
		t.Fatal("self path must be trivial")
	}
}

func TestECMPPathsAreShortestAndDistinct(t *testing.T) {
	net := LeafSpine(LeafSpineSpec{Leaves: 4, Spines: 4, HostsPerLeaf: 2, HostSpeed: Gen10, FabricSpeed: Gen40})
	hosts := net.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	paths := net.ECMPPaths(src, dst, 8)
	if len(paths) < 2 {
		t.Fatalf("expected multiple ECMP paths, got %d", len(paths))
	}
	want := paths[0].Hops()
	seen := map[string]bool{}
	for _, p := range paths {
		if p.Hops() != want {
			t.Fatalf("ECMP path lengths differ: %d vs %d", p.Hops(), want)
		}
		key := ""
		for _, l := range p.LinkIDs {
			key += string(rune(l)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate ECMP path")
		}
		seen[key] = true
		if p.NodeIDs[0] != src || p.NodeIDs[len(p.NodeIDs)-1] != dst {
			t.Fatal("path endpoints wrong")
		}
	}
}

func TestPickECMPDeterministicPerFlow(t *testing.T) {
	net := LeafSpine(LeafSpineSpec{Leaves: 2, Spines: 4, HostsPerLeaf: 2, HostSpeed: Gen10, FabricSpeed: Gen40})
	hosts := net.Hosts()
	a1, ok1 := net.PickECMP(hosts[0], hosts[3], 7, 8)
	a2, ok2 := net.PickECMP(hosts[0], hosts[3], 7, 8)
	if !ok1 || !ok2 {
		t.Fatal("no path")
	}
	if len(a1.LinkIDs) != len(a2.LinkIDs) {
		t.Fatal("same flow ID must give same path")
	}
	for i := range a1.LinkIDs {
		if a1.LinkIDs[i] != a2.LinkIDs[i] {
			t.Fatal("same flow ID must give same path")
		}
	}
}

func TestAddLinkValidation(t *testing.T) {
	n := New()
	a := n.AddNode(Host, "a")
	for _, fn := range []func(){
		func() { n.AddLink(a, a, Gen10, 0) },  // self loop
		func() { n.AddLink(a, 99, Gen10, 0) }, // out of range
		func() { n.AddLink(-1, a, Gen10, 0) }, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPathDelayAndBottleneck(t *testing.T) {
	n := New()
	a := n.AddNode(Host, "a")
	b := n.AddNode(ToR, "b")
	c := n.AddNode(Host, "c")
	l0 := n.AddLink(a, b, Gen10, 100)
	l1 := n.AddLink(b, c, Gen40, 200)
	p := Path{NodeIDs: []int{a, b, c}, LinkIDs: []int{l0, l1}}
	if p.DelayNS(n) != 300 {
		t.Fatalf("delay = %v", p.DelayNS(n))
	}
	if p.MinSpeed(n) != Gen10 {
		t.Fatalf("min speed = %v", p.MinSpeed(n))
	}
	if (Path{}).MinSpeed(n) != 0 {
		t.Fatal("empty path min speed must be 0")
	}
}

func TestDistancesSymmetryProperty(t *testing.T) {
	// On undirected topologies dist(a→b) == dist(b→a).
	f := func(seed uint8) bool {
		net := LeafSpine(LeafSpineSpec{
			Leaves: 2 + int(seed%3), Spines: 2, HostsPerLeaf: 2,
			HostSpeed: Gen10, FabricSpeed: Gen40,
		})
		hosts := net.Hosts()
		a, b := hosts[0], hosts[len(hosts)-1]
		da := net.Distances(a)
		db := net.Distances(b)
		return da[b] == db[a] && da[b] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{Host: "host", ToR: "tor", Agg: "agg", Core: "core"} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
}
