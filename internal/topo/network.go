// Package topo builds and queries datacenter network topologies: single
// switches, leaf–spine fabrics, k-ary fat-trees and 2-D tori. It provides
// the graph substrate (nodes, full-duplex links, shortest-path and ECMP
// routing) on which the flow-level simulator (internal/netsim) and the SDN
// control plane (internal/sdn) operate. Link speeds are expressed as the
// Ethernet generations the roadmap discusses (10/40/100/400 GbE).
package topo

import "fmt"

// NodeKind classifies a network node.
type NodeKind int

// Node kinds, from the server up through the fabric tiers.
const (
	Host NodeKind = iota
	ToR           // top-of-rack / leaf switch
	Agg           // aggregation / spine switch
	Core          // core switch
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case ToR:
		return "tor"
	case Agg:
		return "agg"
	case Core:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// GbE is a link speed in gigabits per second. The named constants are the
// Ethernet generations discussed in the roadmap's network section.
type GbE float64

// Ethernet generations (Section IV.A and Recommendations 1 and 3).
const (
	Gen10  GbE = 10
	Gen40  GbE = 40
	Gen100 GbE = 100
	Gen400 GbE = 400
)

// BytesPerSec converts the link speed to bytes per second.
func (g GbE) BytesPerSec() float64 { return float64(g) * 1e9 / 8 }

// Node is a vertex in the topology.
type Node struct {
	ID   int
	Kind NodeKind
	Name string
}

// Link is a full-duplex cable between two nodes. Each direction has the
// full Speed capacity; the simulator treats the two directions as
// independent directed channels identified by (LinkID, dir).
type Link struct {
	ID      int
	A, B    int
	Speed   GbE
	DelayNS float64 // propagation + per-hop processing delay, nanoseconds
}

// Other returns the endpoint opposite n, or -1 if n is not an endpoint.
func (l Link) Other(n int) int {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		return -1
	}
}

// Network is an undirected multigraph of nodes and full-duplex links.
type Network struct {
	Nodes []Node
	Links []Link

	adj [][]int // node -> incident link IDs
}

// New returns an empty network.
func New() *Network { return &Network{} }

// AddNode appends a node and returns its ID.
func (n *Network) AddNode(kind NodeKind, name string) int {
	id := len(n.Nodes)
	n.Nodes = append(n.Nodes, Node{ID: id, Kind: kind, Name: name})
	n.adj = append(n.adj, nil)
	return id
}

// AddLink connects a and b with the given speed and per-hop delay and
// returns the link ID. It panics on out-of-range endpoints or self-loops.
func (n *Network) AddLink(a, b int, speed GbE, delayNS float64) int {
	if a < 0 || a >= len(n.Nodes) || b < 0 || b >= len(n.Nodes) {
		panic(fmt.Sprintf("topo: link endpoint out of range (%d, %d)", a, b))
	}
	if a == b {
		panic("topo: self-loop")
	}
	id := len(n.Links)
	n.Links = append(n.Links, Link{ID: id, A: a, B: b, Speed: speed, DelayNS: delayNS})
	n.adj[a] = append(n.adj[a], id)
	n.adj[b] = append(n.adj[b], id)
	return id
}

// Incident returns the IDs of links touching node v.
func (n *Network) Incident(v int) []int { return n.adj[v] }

// Hosts returns the IDs of all host nodes in ID order.
func (n *Network) Hosts() []int {
	var out []int
	for _, nd := range n.Nodes {
		if nd.Kind == Host {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Switches returns the IDs of all non-host nodes in ID order.
func (n *Network) Switches() []int {
	var out []int
	for _, nd := range n.Nodes {
		if nd.Kind != Host {
			out = append(out, nd.ID)
		}
	}
	return out
}

// CountKind returns how many nodes have the given kind.
func (n *Network) CountKind(k NodeKind) int {
	c := 0
	for _, nd := range n.Nodes {
		if nd.Kind == k {
			c++
		}
	}
	return c
}

// FabricCapacity returns the total capacity in Gbps of switch-to-switch
// links — the fabric tier whose speed the Ethernet-generation experiments
// sweep. Host access links are excluded.
func (n *Network) FabricCapacity() float64 {
	total := 0.0
	for _, l := range n.Links {
		if n.Nodes[l.A].Kind != Host && n.Nodes[l.B].Kind != Host {
			total += float64(l.Speed)
		}
	}
	return total
}

// AccessCapacity returns the total capacity in Gbps of host access links.
func (n *Network) AccessCapacity() float64 {
	total := 0.0
	for _, l := range n.Links {
		if n.Nodes[l.A].Kind == Host || n.Nodes[l.B].Kind == Host {
			total += float64(l.Speed)
		}
	}
	return total
}

// Path is a route through the network: the node sequence and the link IDs
// connecting consecutive nodes (len(LinkIDs) == len(NodeIDs)-1).
type Path struct {
	NodeIDs []int
	LinkIDs []int
}

// Hops returns the number of links on the path.
func (p Path) Hops() int { return len(p.LinkIDs) }

// DelayNS returns the sum of per-hop delays along the path.
func (p Path) DelayNS(n *Network) float64 {
	d := 0.0
	for _, id := range p.LinkIDs {
		d += n.Links[id].DelayNS
	}
	return d
}

// MinSpeed returns the bottleneck link speed along the path (0 for an
// empty path).
func (p Path) MinSpeed(n *Network) GbE {
	if len(p.LinkIDs) == 0 {
		return 0
	}
	min := n.Links[p.LinkIDs[0]].Speed
	for _, id := range p.LinkIDs[1:] {
		if s := n.Links[id].Speed; s < min {
			min = s
		}
	}
	return min
}

// TransferSeconds prices a bulk transfer of the given size along the path
// assuming sole use of the bottleneck link: serialization at the minimum
// link speed plus the summed per-hop delay. Planners use it as the
// contention-free lower bound when choosing between data-movement plans
// (e.g. broadcast vs repartition joins); the flow simulator then charges
// the real, contended cost.
func (p Path) TransferSeconds(n *Network, bytes float64) float64 {
	t := p.DelayNS(n) * 1e-9
	if bytes <= 0 || len(p.LinkIDs) == 0 {
		return t
	}
	return t + bytes/p.MinSpeed(n).BytesPerSec()
}
