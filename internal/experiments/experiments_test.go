package experiments

import (
	"strings"
	"testing"
)

// These tests are the integration layer of the reproduction: each runs a
// full experiment across its modules and asserts the *directional* claim
// the paper makes (who wins, roughly by how much) — not absolute numbers.

func TestT1ConsortiumTable(t *testing.T) {
	r := T1()
	if r.Key["partners"] != 9 {
		t.Fatalf("partners = %v", r.Key["partners"])
	}
	if !strings.Contains(r.Render(), "ARM") {
		t.Fatal("missing ARM in Table 1")
	}
}

func TestF1LandscapeCoverage(t *testing.T) {
	r := F1()
	if r.Key["initiatives"] != 6 || r.Key["topics_covered"] != 7 {
		t.Fatalf("landscape keys = %v", r.Key)
	}
}

func TestE1TailCutInCatapultBand(t *testing.T) {
	r := E1()
	cut := r.Key["p99_cut_fraction"]
	// The paper cites a 29% tail-latency reduction; the simulated system
	// must land in a credible band around it.
	if cut < 0.15 || cut > 0.60 {
		t.Fatalf("p99 cut = %.2f, want within [0.15, 0.60] around the 29%% claim", cut)
	}
	if r.Key["p99_fpga"] >= r.Key["p99_software"] {
		t.Fatal("FPGA system must have lower P99")
	}
}

func TestE2SDNOpsCollapse(t *testing.T) {
	r := E2()
	if r.Key["ops_ratio"] < 10 {
		t.Fatalf("SDN should cut operator actions by >=10x, got %.1fx", r.Key["ops_ratio"])
	}
}

func TestE3FasterFabricsMonotone(t *testing.T) {
	r := E3()
	if !(r.Key["maxfct_10"] > r.Key["maxfct_40"] &&
		r.Key["maxfct_40"] > r.Key["maxfct_100"] &&
		r.Key["maxfct_100"] >= r.Key["maxfct_400"]) {
		t.Fatalf("shuffle FCT not monotone in fabric speed: %v", r.Key)
	}
	if r.Key["speedup_400_vs_10"] < 2 {
		t.Fatalf("400GbE speedup vs 10GbE = %.2f, want >= 2", r.Key["speedup_400_vs_10"])
	}
}

func TestE4DisaggregationWins(t *testing.T) {
	r := E4()
	if r.Key["granted_composable"] <= r.Key["granted_monolithic"] {
		t.Fatalf("composable granted %v <= monolithic %v", r.Key["granted_composable"], r.Key["granted_monolithic"])
	}
	if r.Key["stranded_cpu_fraction"] < 0.5 {
		t.Fatalf("monolithic stranded cpu = %v, want >= 0.5 under memory pressure", r.Key["stranded_cpu_fraction"])
	}
	if r.Key["upgrade_savings_eur"] <= 0 {
		t.Fatalf("6-year upgrade savings = %v, want positive", r.Key["upgrade_savings_eur"])
	}
}

func TestE5TenXReached(t *testing.T) {
	r := E5()
	if r.Key["max_speedup"] < 10 {
		t.Fatalf("max accelerator speedup = %.1f, want >= 10 (Recommendation 4)", r.Key["max_speedup"])
	}
	// The honest roofline finding: only compute-intense blocks clear 10×;
	// bandwidth-bound blocks hit the memory wall well below it.
	if r.Key["cells_at_10x"] < 2 {
		t.Fatalf("only %v block/device cells reach 10x", r.Key["cells_at_10x"])
	}
}

func TestE6ROISignFlipsWithScale(t *testing.T) {
	r := E6()
	if r.Key["savings_at_10"] >= 0 {
		t.Fatalf("small operator (10 kernels/s) should lose on GPUs: %v", r.Key["savings_at_10"])
	}
	if r.Key["savings_at_100000"] <= 0 {
		t.Fatalf("hyperscale (100k kernels/s) should win on GPUs: %v", r.Key["savings_at_100000"])
	}
	if r.Key["breakeven_workrate_kernels_per_s"] <= 0 {
		t.Fatal("no break-even work rate found")
	}
}

func TestE7SiPStoryHolds(t *testing.T) {
	r := E7()
	if r.Key["soc_wins_at_scale"] != 1 {
		t.Fatal("SoC must win at extreme volume (NRE amortized)")
	}
	if v := r.Key["crossover_volume"]; v < 1e4 || v > 1e8 {
		t.Fatalf("crossover volume = %g, want interior to [1e4, 1e8]", v)
	}
	if r.Key["retrofit_nre_ratio"] < 2 {
		t.Fatalf("SoC retrofit should cost >=2x the SiP I/O respin, got %.1fx", r.Key["retrofit_nre_ratio"])
	}
}

func TestE8AbstractionsAgree(t *testing.T) {
	r := E8()
	if r.Key["results_agree"] != 1 {
		t.Fatal("SQL, MapReduce and dataflow must compute identical revenue")
	}
	if r.Key["segments"] != 5 {
		t.Fatalf("segments = %v, want 5", r.Key["segments"])
	}
	// The MapReduce contortion (reduce-side join) shuffles more than the
	// dataflow pipeline, which combines map-side per partition.
	if r.Key["mr_shuffled"] <= 0 || r.Key["df_shuffled"] <= 0 {
		t.Fatal("shuffle accounting missing")
	}
}

func TestE9PerformanceNotPortable(t *testing.T) {
	r := E9()
	pp := r.Key["performance_portability"]
	if pp <= 0 || pp >= 0.95 {
		t.Fatalf("performance portability = %.2f, want a real gap (< 0.95)", pp)
	}
	if r.Key["spread_worst_over_best"] < 1.5 {
		t.Fatalf("backend spread = %.2fx, want >= 1.5x", r.Key["spread_worst_over_best"])
	}
}

func TestE10SuiteRanksAcceleratedFirst(t *testing.T) {
	r := E10()
	if r.Key["winner_is_hetero"] != 1 {
		t.Fatal("hetero box should win the suite")
	}
	if r.Key["overall_gpu"] <= 1 {
		t.Fatalf("gpu overall = %v", r.Key["overall_gpu"])
	}
	if r.Key["energy_fpga"] <= 1 {
		t.Fatalf("fpga energy score = %v", r.Key["energy_fpga"])
	}
}

func TestE12HEFTWins(t *testing.T) {
	r := E12()
	if r.Key["heft_vs_rr_speedup"] < 1 {
		t.Fatalf("HEFT should not lose to round-robin: %.2f", r.Key["heft_vs_rr_speedup"])
	}
	if r.Key["energy_power-aware"] > r.Key["energy_fifo"] {
		t.Fatal("power-aware policy should not burn more energy than FIFO")
	}
}

func TestE13CorpusAndFindings(t *testing.T) {
	r := E13()
	if r.Key["interviews"] != 89 || r.Key["companies"] != 70 {
		t.Fatalf("corpus = %v interviews / %v companies", r.Key["interviews"], r.Key["companies"])
	}
	if r.Key["findings_holding"] != 4 {
		t.Fatalf("findings holding = %v, want 4", r.Key["findings_holding"])
	}
}

func TestE14RoadmapComplete(t *testing.T) {
	r := E14()
	if r.Key["recommendations"] != 12 {
		t.Fatalf("recommendations = %v", r.Key["recommendations"])
	}
	if r.Key["near_term_actions"] < 1 {
		t.Fatal("no near-term actions")
	}
}

func TestE15NFVTradeoffs(t *testing.T) {
	r := E15()
	// Appliances are fastest but dearest; offload closes the latency gap.
	if r.Key["latency_appliance"] >= r.Key["latency_nfv"] {
		t.Fatalf("appliance latency (%v) should beat software NFV (%v)",
			r.Key["latency_appliance"], r.Key["latency_nfv"])
	}
	if r.Key["latency_nfv+offload"] >= r.Key["latency_nfv"] {
		t.Fatal("offload must cut NFV latency")
	}
	if r.Key["price_ratio_hw_vs_sw"] < 3 {
		t.Fatalf("appliance chain should cost >=3x software, got %.1fx", r.Key["price_ratio_hw_vs_sw"])
	}
}

func TestE16ConvergenceNeedsFabric(t *testing.T) {
	r := E16()
	// At 50 GB/s sharing wins; at 1.25 GB/s it need not.
	if r.Key["shared_minus_seg_at_50"] > 1e-9 {
		t.Fatalf("at 50 GB/s shared should not lose: delta = %v", r.Key["shared_minus_seg_at_50"])
	}
}

func TestE17NeuromorphicNiche(t *testing.T) {
	r := E17()
	// At 1 event/s idle power dominates: the 0.2 W NPU must crush the
	// 30 W-idle GPU by an order of magnitude or more.
	if r.Key["npu_advantage_at_1eps"] < 10 {
		t.Fatalf("NPU advantage at 1 ev/s = %.1fx, want >= 10x", r.Key["npu_advantage_at_1eps"])
	}
	// The advantage shrinks as rates rise (the GPU amortizes its idle
	// floor) but the NPU stays ahead on this sparse workload.
	if r.Key["npu_advantage_at_10keps"] >= r.Key["npu_advantage_at_1eps"] {
		t.Fatal("NPU advantage should shrink with event rate")
	}
	if r.Key["npu_advantage_at_10keps"] < 1 {
		t.Fatalf("NPU should stay ahead at 10k ev/s: %.2fx", r.Key["npu_advantage_at_10keps"])
	}
	if r.Key["adoption_gap_years"] < 4 {
		t.Fatalf("ecosystem gap = %v years, want >= 4 (the Rec-7 problem)", r.Key["adoption_gap_years"])
	}
}

func TestE18PoolingPaysAndLevels(t *testing.T) {
	r := E18()
	if r.Key["mean_err_pooled"] >= r.Key["mean_err_siloed"] {
		t.Fatal("pooling must cut mean error")
	}
	if r.Key["viable_pooled"] <= r.Key["viable_solo"] {
		t.Fatalf("pooling should expand viability: %v vs %v",
			r.Key["viable_pooled"], r.Key["viable_solo"])
	}
	if r.Key["small_member_gain"] <= 0 {
		t.Fatal("data-poor members must gain")
	}
}

func TestE19BottleneckAwarenessInverts(t *testing.T) {
	r := E19()
	y := r.Key["finding1_inversion_year"]
	if y < 2018 || y > 2026 {
		t.Fatalf("Finding-1 inversion year = %v, want within [2018, 2026]", y)
	}
	if r.Key["bottleneck_awareness_2026"] <= r.Key["bottleneck_awareness_2016"] {
		t.Fatal("bottleneck awareness must rise over the decade")
	}
}

func TestE20NVMCutsCostAtTightTargets(t *testing.T) {
	r := E20()
	// At microsecond-class targets the NVM tier substitutes for expensive
	// DRAM; savings must be substantial.
	if r.Key["saving_at_2us"] < 0.2 {
		t.Fatalf("NVM saving at 2µs = %v, want >= 20%%", r.Key["saving_at_2us"])
	}
	// At loose targets cheap flash suffices and the advantage shrinks.
	if r.Key["saving_at_20us"] > r.Key["saving_at_2us"] {
		t.Fatal("NVM advantage should shrink as the target relaxes")
	}
}

func TestE21HybridDominates(t *testing.T) {
	r := E21()
	if r.Key["misses_hybrid"] != 0 || r.Key["misses_edge"] != 0 {
		t.Fatalf("edge compute present must meet deadlines: hybrid=%v edge=%v",
			r.Key["misses_hybrid"], r.Key["misses_edge"])
	}
	if r.Key["misses_cloud"] == 0 {
		t.Fatal("cloud-only should miss edge deadlines (WAN fetch)")
	}
	if r.Key["makespan_hybrid"] >= r.Key["makespan_edge"] {
		t.Fatalf("hybrid (%v) should beat edge-only (%v) on makespan",
			r.Key["makespan_hybrid"], r.Key["makespan_edge"])
	}
}

func TestAblationFusionHelpsStagedBackends(t *testing.T) {
	r := AblationFusion()
	if r.Key["fusion_speedup_xeon-2s/simd"] < 2 {
		t.Fatalf("CPU fusion speedup = %v, want >= 2 on a 10-map pipeline",
			r.Key["fusion_speedup_xeon-2s/simd"])
	}
	// The GPU's gain is capped by the host↔device transfer floor (the
	// data crosses PCIe once regardless of stage count) — fusion only
	// removes inter-stage HBM traffic and launches.
	if g := r.Key["fusion_speedup_gpgpu/simt"]; g < 1.1 {
		t.Fatalf("GPU fusion speedup = %v, want >= 1.1", g)
	}
	fpga := r.Key["fusion_speedup_fpga/pipeline"]
	if fpga < 0.9 || fpga > 1.1 {
		t.Fatalf("FPGA must be fusion-invariant: %v", fpga)
	}
}

func TestAblationFairness(t *testing.T) {
	r := AblationFairness()
	if r.Key["maxmin_fct"] >= r.Key["proportional_fct"] {
		t.Fatalf("max-min (%v) should strictly beat proportional (%v) when a flow is throttled elsewhere",
			r.Key["maxmin_fct"], r.Key["proportional_fct"])
	}
	if r.Key["stranding_penalty"] <= 0 {
		t.Fatalf("proportional must strand capacity: penalty = %v", r.Key["stranding_penalty"])
	}
}

func TestAblationSDNMode(t *testing.T) {
	r := AblationSDNMode()
	if r.Key["proactive_first_packet_us"] != 0 {
		t.Fatal("proactive first packet must pay zero control latency")
	}
	if r.Key["reactive_first_packet_us"] <= 0 {
		t.Fatal("reactive first packet must pay the punt")
	}
}

func TestAblationSortRadixWins(t *testing.T) {
	r := AblationSort()
	if r.Key["radix_speedup_at_1M"] < 1 {
		t.Fatalf("radix should beat stdlib at 1M keys: %.2fx", r.Key["radix_speedup_at_1M"])
	}
}

func TestAblationPackingBestFitProtectsLargeRequests(t *testing.T) {
	r := AblationPacking()
	// Best-fit's defining property under churn: it preserves large holes,
	// so fewer large requests bounce. (Total grants can tip either way —
	// each admitted large machine displaces several small ones.)
	if r.Key["best_fit_big_rejects"] > r.Key["first_fit_big_rejects"] {
		t.Fatalf("best-fit rejected more large requests (%v) than first-fit (%v)",
			r.Key["best_fit_big_rejects"], r.Key["first_fit_big_rejects"])
	}
}

func TestAllReportsRender(t *testing.T) {
	for _, r := range All() {
		text := r.Render()
		if !strings.Contains(text, r.ID) {
			t.Fatalf("report %s: render missing ID", r.ID)
		}
		if len(r.Tables) == 0 && len(r.Figures) == 0 {
			t.Fatalf("report %s has no exhibits", r.ID)
		}
	}
}
