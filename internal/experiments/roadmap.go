package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/survey"
)

// corpusSeed fixes the evidence base across experiments.
const corpusSeed = 2016

func corpus() *survey.Corpus {
	c, err := survey.Synthesize(survey.DefaultSpec(corpusSeed))
	if err != nil {
		panic(err) // DefaultSpec is statically valid
	}
	return c
}

// T1 regenerates Table 1 (the project consortium).
func T1() *Report {
	r := newReport("T1", "Project consortium", "Table 1: RETHINK big Project Consortium")
	r.Tables = append(r.Tables, core.Table1())
	r.Key["partners"] = float64(len(core.Consortium()))
	return r
}

// F1 regenerates Figure 1 (the ETP/PPP roadmap landscape) and checks
// scope separation.
func F1() *Report {
	r := newReport("F1", "ETP/PPP collaboration landscape",
		"Figure 1: the RETHINK big roadmap is one piece of the framework of roadmaps; "+
			"HPC is covered by ETP4HPC, applications by BDVA, IoT by AIOTI, telecom by 5G-PPP")
	r.Tables = append(r.Tables, core.Figure1())
	owned := 0
	for _, ini := range core.Landscape() {
		owned += len(ini.Covers)
	}
	r.Key["initiatives"] = float64(len(core.Landscape()))
	r.Key["topics_covered"] = float64(owned)
	return r
}

// E13 re-derives the four key findings from the synthesized corpus.
func E13() *Report {
	r := newReport("E13", "Industry key findings",
		"Section V.A: findings from 89 in-depth interviews with 70 distinct European companies")
	c := corpus()
	r.Key["interviews"] = float64(len(c.Interviews))
	r.Key["companies"] = float64(c.DistinctCompanies())

	tab := metrics.NewTable("Key findings re-derived from the corpus",
		"finding", "support", "holds", "evidence")
	holds := 0
	for _, f := range survey.DeriveFindings(c) {
		h := "no"
		if f.Holds {
			h = "yes"
			holds++
		}
		tab.AddRowf(f.ID, f.Support, h, f.Detail)
	}
	r.Tables = append(r.Tables, tab)

	sectors := metrics.NewTable("Interviews by sector", "sector", "interviews")
	counts := c.SectorCounts()
	for _, s := range survey.Sectors() {
		sectors.AddRowf(s.String(), counts[s])
	}
	r.Tables = append(r.Tables, sectors)
	r.Key["findings_holding"] = float64(holds)
	return r
}

// E14 scores and prioritizes the twelve recommendations.
func E14() *Report {
	r := newReport("E14", "Recommendation prioritization and timeline",
		"Section V.B: twelve concrete recommendations; roadmap maximizes competitiveness over the next 10 years")
	roadmap, err := core.BuildRoadmap(corpus(), 2016)
	if err != nil {
		panic(err)
	}
	r.Tables = append(r.Tables, roadmap.Table())
	r.Figures = append(r.Figures, core.AdoptionTimeline(2015, 2025))
	r.Key["recommendations"] = float64(len(roadmap.Recommendations))
	r.Key["top_priority_id"] = float64(roadmap.Recommendations[0].ID)
	near := 0
	for _, rec := range roadmap.Recommendations {
		if rec.Horizon == core.NearTerm {
			near++
		}
	}
	r.Key["near_term_actions"] = float64(near)
	return r
}
