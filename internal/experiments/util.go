package experiments

import (
	"math"

	"repro/internal/hw"
	"repro/internal/kernels"
)

// mathLog is math.Log, aliased so experiment files keep their imports
// minimal.
func mathLog(x float64) float64 { return math.Log(x) }

// kernelBlocks returns the Recommendation-10 block descriptors.
func kernelBlocks() map[string]hw.Kernel { return kernels.Blocks() }

// kernelsRadix and kernelsComparison re-export the sort building blocks
// for the measured sort ablation.
func kernelsRadix(xs []uint64)      { kernels.RadixSortUint64(xs) }
func kernelsComparison(xs []uint64) { kernels.ComparisonSortUint64(xs) }
