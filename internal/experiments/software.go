package experiments

import (
	"math"
	"time"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/sql"
	"repro/internal/workload"
)

// E8 runs the same analytics — revenue by customer segment over the
// sales/customers star schema — through the three abstraction layers of
// Section IV.C: a SQL query, a hand-written MapReduce job, and a dataflow
// pipeline. All three must produce identical numbers; the table records
// what each abstraction costs (execution steps, shuffled records, wall
// time) and hides (the SQL user never sees a partition).
func E8() *Report {
	r := newReport("E8", "Query language vs framework abstractions",
		"Section IV.C.1: a shift away from query languages towards distributed frameworks; IV.C.3: no common abstraction works for everything")
	const (
		seed      = 42
		salesRows = 20000
		customers = 500
	)
	type segRev struct {
		seg string
		rev float64
	}

	// ---- SQL.
	db := sql.DemoDB(seed, salesRows, customers)
	t0 := time.Now()
	res, err := db.Query(`SELECT c.segment, SUM(s.price * (1 - s.discount) * s.quantity) AS revenue
		FROM sales s JOIN customers c ON s.customer_id = c.customer_id
		GROUP BY c.segment ORDER BY c.segment`)
	if err != nil {
		panic(err)
	}
	sqlWall := time.Since(t0)
	var sqlOut []segRev
	for _, row := range res.Rows {
		sqlOut = append(sqlOut, segRev{seg: row[0].S, rev: row[1].F})
	}
	plan, err := db.Plan(`SELECT c.segment, SUM(s.price) FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment`)
	if err != nil {
		panic(err)
	}
	sqlSteps := len(plan.Steps)

	// ---- MapReduce: two chained jobs (join via tagged union, then
	// aggregate) — the classic relational-on-MapReduce contortion.
	sales := workload.Sales(seed, salesRows, customers)
	custs := workload.Customers(seed+1, customers)
	type tagged struct {
		isCust  bool
		segment string
		revenue float64
	}
	t0 = time.Now()
	joinIn := make([]tagged, 0, len(sales)+len(custs))
	keyOf := make([]int64, 0, len(sales)+len(custs))
	for _, c := range custs {
		joinIn = append(joinIn, tagged{isCust: true, segment: c.Segment})
		keyOf = append(keyOf, c.CustomerID)
	}
	for _, s := range sales {
		joinIn = append(joinIn, tagged{revenue: s.Price * (1 - s.Discount) * float64(s.Quantity)})
		keyOf = append(keyOf, s.CustomerID)
	}
	type idxRec struct {
		key int64
		val tagged
	}
	recs := make([]idxRec, len(joinIn))
	for i := range joinIn {
		recs[i] = idxRec{key: keyOf[i], val: joinIn[i]}
	}
	joined, ctr1, err := mapreduce.Run(mapreduce.Config{MapTasks: 4, ReduceTasks: 4}, recs,
		func(rec idxRec, emit func(int64, tagged)) { emit(rec.key, rec.val) },
		nil,
		func(_ int64, vals []tagged) tagged {
			// Reduce-side join: one customer record + n sales records.
			out := tagged{}
			for _, v := range vals {
				if v.isCust {
					out.segment = v.segment
				} else {
					out.revenue += v.revenue
				}
			}
			return out
		})
	if err != nil {
		panic(err)
	}
	perCust := make([]tagged, 0, len(joined))
	for _, v := range joined {
		perCust = append(perCust, v)
	}
	bySeg, ctr2, err := mapreduce.Run(mapreduce.Config{MapTasks: 4, ReduceTasks: 4}, perCust,
		func(t tagged, emit func(string, float64)) {
			if t.segment != "" {
				emit(t.segment, t.revenue)
			}
		},
		func(a, b float64) float64 { return a + b },
		func(_ string, vs []float64) float64 {
			t := 0.0
			for _, v := range vs {
				t += v
			}
			return t
		})
	if err != nil {
		panic(err)
	}
	mrWall := time.Since(t0)
	mrShuffle := ctr1.ShuffleRecords + ctr2.ShuffleRecords

	// ---- Dataflow.
	t0 = time.Now()
	salesDS := dataflow.FromSlice("sales", sales, 8)
	custDS := dataflow.FromSlice("customers", custs, 8)
	keyedSales := dataflow.Map(dataflow.KeyBy(salesDS, func(s workload.SalesRow) int64 { return s.CustomerID }),
		func(p dataflow.Pair[int64, workload.SalesRow]) dataflow.Pair[int64, float64] {
			s := p.Val
			return dataflow.Pair[int64, float64]{Key: p.Key, Val: s.Price * (1 - s.Discount) * float64(s.Quantity)}
		})
	keyedCust := dataflow.KeyBy(custDS, func(c workload.CustomerRow) int64 { return c.CustomerID })
	joinedDS := dataflow.Join(keyedSales, keyedCust)
	seg := dataflow.Map(joinedDS, func(p dataflow.Pair[int64, dataflow.Joined[float64, workload.CustomerRow]]) dataflow.Pair[string, float64] {
		return dataflow.Pair[string, float64]{Key: p.Val.Right.Segment, Val: p.Val.Left}
	})
	summed := dataflow.ReduceByKey(seg, func(a, b float64) float64 { return a + b })
	dfOut, err := dataflow.Collect(summed)
	if err != nil {
		panic(err)
	}
	dfWall := time.Since(t0)
	dfStages, dfTasks, dfShuffled := salesDS.M.Snapshot()
	_ = dfTasks

	// ---- Cross-check all three agree.
	mrMap := map[string]float64{}
	for k, v := range bySeg {
		mrMap[k] = v
	}
	dfMap := map[string]float64{}
	for _, kv := range dfOut {
		dfMap[kv.Key] = kv.Val
	}
	agree := 1.0
	for _, sr := range sqlOut {
		if math.Abs(mrMap[sr.seg]-sr.rev) > 1e-6*math.Abs(sr.rev) ||
			math.Abs(dfMap[sr.seg]-sr.rev) > 1e-6*math.Abs(sr.rev) {
			agree = 0
		}
	}

	tab := metrics.NewTable("Same analytics, three abstractions (20k sales × 500 customers)",
		"abstraction", "user writes", "plan steps / stages", "shuffled records", "wall (ms)")
	tab.AddRowf("SQL", "1 declarative query", sqlSteps, "hidden (engine-managed)", float64(sqlWall.Microseconds())/1000)
	tab.AddRowf("MapReduce", "2 jobs, manual tagged-union join", 2*3, mrShuffle, float64(mrWall.Microseconds())/1000)
	tab.AddRowf("dataflow", "1 pipeline, explicit keying", dfStages, dfShuffled, float64(dfWall.Microseconds())/1000)
	r.Tables = append(r.Tables, tab)
	r.Key["results_agree"] = agree
	r.Key["segments"] = float64(len(sqlOut))
	r.Key["mr_shuffled"] = float64(mrShuffle)
	r.Key["df_shuffled"] = float64(dfShuffled)
	return r
}

// E9 executes one portable program on the three backend models and
// reports the performance-portability gap.
func E9() *Report {
	r := newReport("E9", "Correctness- vs performance-portability",
		`Section IV.C.3: "OpenCL only ensures correctness of the computation on each platform. It does not ensure that the computation has been optimized"`)
	p := &accel.Program{
		Name: "feature-normalize",
		Stages: []accel.Stage{
			accel.MapE(accel.Bin{Op: accel.Mul, L: accel.X{}, R: accel.Const(0.5)}),
			accel.MapE(accel.Bin{Op: accel.Add, L: accel.Un{Op: accel.Sq, E: accel.X{}}, R: accel.Const(1)}),
			accel.FilterE(accel.Bin{Op: accel.Sub, L: accel.X{}, R: accel.Const(1.05)}),
			accel.ReduceE(accel.SumReduce),
		},
	}
	n := 1 << 22
	in := make([]float64, n)
	rngState := uint64(99)
	for i := range in {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		in[i] = float64(rngState%2000)/1000 - 1
	}
	res, err := p.Run(in)
	if err != nil {
		panic(err)
	}
	var ests []accel.Estimate
	tab := metrics.NewTable("One program, three backends (4M elements)",
		"backend", "modeled time (ms)", "energy (J)", "setup (s)")
	for _, b := range accel.DefaultBackends() {
		est, err := b.Estimate(p, n, res.Selectivity)
		if err != nil {
			panic(err)
		}
		ests = append(ests, est)
		tab.AddRowf(est.Backend, est.Seconds*1000, est.EnergyJ, est.SetupSeconds)
	}
	pp := accel.PerformancePortability(ests)
	r.Tables = append(r.Tables, tab)
	r.Key["performance_portability"] = pp
	r.Key["result_scalar"] = res.Scalar
	best, worst := math.Inf(1), 0.0
	for _, e := range ests {
		if e.Seconds < best {
			best = e.Seconds
		}
		if e.Seconds > worst {
			worst = e.Seconds
		}
	}
	r.Key["spread_worst_over_best"] = worst / best
	return r
}

// AblationSort times the real radix sort against the stdlib comparison
// sort — the DESIGN.md sort ablation, measured, not modeled.
func AblationSort() *Report {
	r := newReport("ABL-sort", "Radix vs comparison sort (measured)",
		"DESIGN.md: radix vs comparison sort for the shuffle building block")
	sizes := []int{1 << 16, 1 << 18, 1 << 20}
	tab := metrics.NewTable("Wall time (ms) on this machine", "n", "radix", "stdlib", "radix speedup")
	var lastSpeedup float64
	for _, n := range sizes {
		base := make([]uint64, n)
		st := uint64(7)
		for i := range base {
			st = st*2862933555777941757 + 3037000493
			base[i] = st
		}
		a := append([]uint64(nil), base...)
		t0 := time.Now()
		radixSort(a)
		radixMS := float64(time.Since(t0).Microseconds()) / 1000
		b := append([]uint64(nil), base...)
		t0 = time.Now()
		comparisonSort(b)
		stdMS := float64(time.Since(t0).Microseconds()) / 1000
		lastSpeedup = stdMS / radixMS
		tab.AddRowf(n, radixMS, stdMS, lastSpeedup)
	}
	r.Tables = append(r.Tables, tab)
	r.Key["radix_speedup_at_1M"] = lastSpeedup
	return r
}

func radixSort(xs []uint64)      { kernelsRadix(xs) }
func comparisonSort(xs []uint64) { kernelsComparison(xs) }
