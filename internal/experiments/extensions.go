package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/ecosystem"
	"repro/internal/hw"
	"repro/internal/memtier"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// E17 makes Recommendation 7 quantitative: where neuromorphic processors
// actually win (always-on sparse event-driven inference, where idle power
// dominates) and how far behind its market ecosystem sits (Bass adoption
// lead time vs GPGPU).
func E17() *Report {
	r := newReport("E17", "Neuromorphic computing: workload fit and market gap",
		"Recommendation 7: pioneer markets for neuromorphic computing; the principal issue is the lack of a market ecosystem")
	npu := hw.Neuromorphic()
	gpu := hw.GPGPU()
	cpu := hw.XeonCPU()
	// One sparse inference event: ~2 MOps of spiking network activity over
	// ~64 KiB of state (event-driven sparsity: only active paths compute).
	event := hw.Kernel{Name: "sparse-inference", Ops: 2e6, Bytes: 6.4e4, ParallelFraction: 0.99}

	tab := metrics.NewTable("Always-on edge inference: energy per day (J) by event rate",
		"events/s", "npu", "gpu", "cpu", "npu advantage vs gpu")
	const (
		daySeconds = 86400.0
		// batchWindow is the latency budget within which a deployment may
		// batch events to amortize launch overhead (10 ms).
		batchWindow = 0.01
	)
	perDay := func(d *hw.Device, rate float64) float64 {
		batch := rate * batchWindow
		if batch < 1 {
			batch = 1
		}
		kb := hw.Kernel{
			Name: event.Name, Ops: event.Ops * batch,
			Bytes: event.Bytes * batch, ParallelFraction: event.ParallelFraction,
		}
		busy := d.Seconds(kb) * rate / batch // fraction of each second busy
		if busy > 1 {
			busy = 1
		}
		// Busy time at full power, the rest at idle floor.
		return daySeconds * (busy*d.Power(1) + (1-busy)*d.Power(0))
	}
	var advLow, advHigh float64
	rates := []float64{1, 10, 100, 1000, 10000}
	for _, rate := range rates {
		n, g, c := perDay(npu, rate), perDay(gpu, rate), perDay(cpu, rate)
		adv := g / n
		tab.AddRowf(rate, n, g, c, adv)
		if rate == rates[0] {
			advLow = adv
		}
		advHigh = adv
		r.Key[fmt.Sprintf("npu_day_J_at_%g", rate)] = n
	}
	r.Tables = append(r.Tables, tab)
	r.Key["npu_advantage_at_1eps"] = advLow
	r.Key["npu_advantage_at_10keps"] = advHigh

	// Market-ecosystem gap: years to 10% adoption vs GPGPU.
	techs := core.TechByName()
	neuro := techs["Neuromorphic computing"]
	gpgpu := techs["GPGPU analytics"]
	ny := neuro.YearToAdoption(0.10)
	gy := gpgpu.YearToAdoption(0.10)
	gap := metrics.NewTable("Ecosystem gap (Bass diffusion)", "technology", "TRL 2016", "year to 10% adoption")
	gap.AddRowf(gpgpu.Name, gpgpu.TRL, gy)
	gap.AddRowf(neuro.Name, neuro.TRL, ny)
	r.Tables = append(r.Tables, gap)
	r.Key["adoption_gap_years"] = float64(ny - gy)
	return r
}

// E18 makes Recommendation 8 quantitative: pooled anonymized training data
// versus siloed corpora on the standard learning-curve model.
func E18() *Report {
	r := newReport("E18", "Training-data pooling",
		"Recommendation 8: encourage collection of open anonymized training data and sharing inside EC-funded projects")
	study := ecosystem.NewStudy(2016, 15, 500, 5e6)
	results, err := study.Run()
	if err != nil {
		panic(err)
	}
	const target = 0.10
	sum := ecosystem.Summarize(results, target)

	tab := metrics.NewTable("Consortium of 15 members (Zipf data holdings), target error 10%",
		"metric", "siloed", "pooled (80% efficiency)")
	tab.AddRowf("mean model error", sum.MeanSiloedErr, sum.MeanPooledErr)
	tab.AddRowf("members at target", sum.ViableSolo, sum.ViablePooled)
	r.Tables = append(r.Tables, tab)

	gains := metrics.NewTable("Who gains (improvement in model error)", "member profile", "gain")
	gains.AddRowf("most data-poor member", sum.SmallestMemberGain)
	gains.AddRowf("most data-rich member", sum.LargestMemberGain)
	r.Tables = append(r.Tables, gains)

	r.Key["mean_err_siloed"] = sum.MeanSiloedErr
	r.Key["mean_err_pooled"] = sum.MeanPooledErr
	r.Key["viable_solo"] = float64(sum.ViableSolo)
	r.Key["viable_pooled"] = float64(sum.ViablePooled)
	r.Key["small_member_gain"] = sum.SmallestMemberGain
	return r
}

// E20 makes Recommendation 5's memory argument quantitative: what a
// latency target costs for a 10 TB analytics footprint with and without a
// storage-class-memory tier between DRAM and flash.
func E20() *Report {
	r := newReport("E20", "Non-volatile memory tiering",
		"Recommendation 5: hardware must integrate more subsystems, new non-volatile memories and I/O interfaces")
	const footprintGB = 10000.0
	tab := metrics.NewTable("Cheapest hierarchy meeting an average-latency target (10 TB footprint, 80/20 skew)",
		"target (µs)", "DRAM+SSD cost (kEUR)", "DRAM+NVM+SSD cost (kEUR)", "NVM saving", "NVM GB in winner")
	for _, targetUS := range []float64{0.5, 1, 2, 5, 20} {
		targetNS := targetUS * 1000
		with, okW := memtier.CheapestMeeting(footprintGB, targetNS, true)
		without, okO := memtier.CheapestMeeting(footprintGB, targetNS, false)
		if !okW || !okO {
			tab.AddRowf(targetUS, "infeasible", "infeasible", "-", 0)
			continue
		}
		saving := 1 - with.CostEUR/without.CostEUR
		tab.AddRowf(targetUS, without.CostEUR/1000, with.CostEUR/1000,
			fmt.Sprintf("%.0f%%", saving*100), with.NVMGB)
		r.Key[fmt.Sprintf("saving_at_%gus", targetUS)] = saving
	}
	r.Tables = append(r.Tables, tab)
	return r
}

// E21 exercises Recommendation 11's edge/cloud clause: a sensor-analytics
// DAG with latency-critical detection (data at the edge, 40 ms deadlines)
// feeding heavy training, placed on edge-only, cloud-only and hybrid
// clusters.
func E21() *Report {
	r := newReport("E21", "Edge/cloud heterogeneous placement",
		"Recommendation 11: edge computing and cloud computing environments calling for heterogeneous hardware platforms")
	buildDAG := func() *sched.DAG {
		detect := hw.Kernel{Name: "detect", Ops: 5e8, Bytes: 5e7, ParallelFraction: 0.95}
		train := hw.Kernel{Name: "train", Ops: 5e10, Bytes: 5e8, ParallelFraction: 0.99}
		d := &sched.DAG{}
		for i := 0; i < 4; i++ {
			d.Tasks = append(d.Tasks, sched.Task{
				ID: i, Name: "detect", Kernel: detect,
				InputBytes: 2e7, InputSite: sched.Edge,
				DeadlineS: 0.04, OutBytes: 1e6,
			})
		}
		d.Tasks = append(d.Tasks, sched.Task{
			ID: 4, Name: "train", Kernel: train, Deps: []int{0, 1, 2, 3},
		})
		return d
	}
	tab := metrics.NewTable("Sensor analytics: 4 detect tasks (40 ms deadline) + 1 training task",
		"cluster", "makespan (s)", "deadline misses", "energy (kJ)")
	for _, cfg := range []struct {
		name        string
		edge, cloud int
	}{
		{"edge-only (4 CPU)", 4, 0},
		{"cloud-only (4 accel)", 0, 4},
		{"hybrid (2+2)", 2, 2},
	} {
		cluster := sched.EdgeCloud(cfg.edge, cfg.cloud)
		res, err := sched.Schedule(buildDAG(), cluster, sched.MinMin)
		if err != nil {
			panic(err)
		}
		tab.AddRowf(cfg.name, res.MakespanS, res.DeadlineMisses, res.EnergyJ/1000)
		key := map[string]string{
			"edge-only (4 CPU)":    "edge",
			"cloud-only (4 accel)": "cloud",
			"hybrid (2+2)":         "hybrid",
		}[cfg.name]
		r.Key["makespan_"+key] = res.MakespanS
		r.Key["misses_"+key] = float64(res.DeadlineMisses)
	}
	r.Tables = append(r.Tables, tab)
	return r
}

// AblationFusion quantifies map-map kernel fusion per backend: fused
// pipelines skip intermediate memory round trips on stage-at-a-time
// backends; the FPGA's spatial pipeline is fusion-invariant.
func AblationFusion() *Report {
	r := newReport("ABL-fusion", "Kernel fusion ablation",
		"accel IR: adjacent map stages composed into one pass (the optimization separating naive from tuned backends, Section IV.C.3)")
	p := &accel.Program{Name: "deep"}
	for i := 0; i < 10; i++ {
		p.Stages = append(p.Stages, accel.MapE(accel.Bin{
			Op: accel.Add, L: accel.Bin{Op: accel.Mul, L: accel.X{}, R: accel.Const(1.01)}, R: accel.Const(0.5),
		}))
	}
	fused := p.Fuse()
	n := 1 << 22
	tab := metrics.NewTable("10-map pipeline over 4M elements: modeled time (ms)",
		"backend", "unfused", "fused", "speedup")
	for _, b := range accel.DefaultBackends() {
		orig, err := b.Estimate(p, n, nil)
		if err != nil {
			panic(err)
		}
		fu, err := b.Estimate(fused, n, nil)
		if err != nil {
			panic(err)
		}
		speed := orig.Seconds / fu.Seconds
		tab.AddRowf(orig.Backend, orig.Seconds*1000, fu.Seconds*1000, speed)
		r.Key["fusion_speedup_"+orig.Backend] = speed
	}
	r.Tables = append(r.Tables, tab)
	return r
}

// E19 makes Recommendation 12 quantitative: re-asking the survey question
// year after year on corpora whose calibration follows analytics maturity,
// until "industry sees no hardware bottleneck" inverts.
func E19() *Report {
	r := newReport("E19", "Longitudinal re-survey (continue to ask the question)",
		`Recommendation 12: "we expect companies to run into more and more undesirable performance bottlenecks that will require optimized hardware"`)
	points, err := core.ProjectFindings(2016, 2016, 2026)
	if err != nil {
		panic(err)
	}
	tab := metrics.NewTable("Projected corpus, year by year",
		"year", "analytics maturity", "sees HW bottleneck", "finding 1 holds")
	fig := metrics.NewFigure("Bottleneck awareness vs analytics maturity")
	aw := fig.Line("sees bottleneck")
	mt := fig.Line("maturity")
	for _, p := range points {
		tab.AddRowf(p.Year, p.Maturity, p.SeesBottleneck, b2f(p.Finding1Holds) == 1)
		aw.Add(float64(p.Year), p.SeesBottleneck)
		mt.Add(float64(p.Year), p.Maturity)
	}
	r.Tables = append(r.Tables, tab)
	r.Figures = append(r.Figures, fig)
	if y, ok := core.InversionYear(points); ok {
		r.Key["finding1_inversion_year"] = float64(y)
	} else {
		r.Key["finding1_inversion_year"] = 0
	}
	r.Key["bottleneck_awareness_2016"] = points[0].SeesBottleneck
	r.Key["bottleneck_awareness_2026"] = points[len(points)-1].SeesBottleneck
	return r
}
