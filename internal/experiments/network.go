package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nfv"
	"repro/internal/sdn"
	"repro/internal/topo"
)

// E2 measures control-plane scale: operator actions and wall-clock to
// apply a fabric-wide change, SDN controller versus per-box management, as
// the fabric grows toward the "10,000 switches" regime.
func E2() *Report {
	r := newReport("E2", "SDN control-plane scaling",
		`Section IV.A.2: "a software control plane ... can make 10,000 switches look like one"`)
	tab := metrics.NewTable("Fabric-wide policy change: SDN vs per-box",
		"switches", "sdn ops", "legacy ops", "sdn reconfig (s)", "legacy reconfig (s, 4 operators)")
	fig := metrics.NewFigure("Operator actions vs fabric size")
	sdnLine := fig.Line("sdn")
	legacyLine := fig.Line("per-box")
	var lastSDNOps, lastLegacyOps float64
	for _, k := range []int{4, 8, 16, 32} {
		net := topo.FatTree(k, topo.Gen40)
		switches := len(net.Switches())
		c := sdn.NewController(net, sdn.Reactive, 0)
		hosts := net.Hosts()
		before := c.ControlOps
		lat, err := c.FlowSetupUS(hosts[0], hosts[len(hosts)-1])
		if err != nil {
			panic(err)
		}
		sdnOps := float64(c.ControlOps - before)
		legacy := sdn.NewLegacyFabric(net)
		legacyS := legacy.ApplyPolicy(4) / 1e6
		tab.AddRowf(switches, sdnOps, legacy.ControlOps, lat/1e6, legacyS)
		sdnLine.Add(float64(switches), sdnOps)
		legacyLine.Add(float64(switches), float64(legacy.ControlOps))
		lastSDNOps, lastLegacyOps = sdnOps, float64(legacy.ControlOps)
	}
	r.Tables = append(r.Tables, tab)
	r.Figures = append(r.Figures, fig)
	r.Key["sdn_ops_at_max"] = lastSDNOps
	r.Key["legacy_ops_at_max"] = lastLegacyOps
	r.Key["ops_ratio"] = lastLegacyOps / lastSDNOps
	return r
}

// E3 sweeps the fabric Ethernet generation under an all-to-all shuffle on
// a leaf-spine and reports flow completion times.
func E3() *Report {
	r := newReport("E3", "Ethernet generation sweep (10→400 GbE)",
		"Sections IV.A.1/3 and Recommendations 1, 3: bandwidth generations gate Big Data shuffles")
	tab := metrics.NewTable("All-to-all shuffle (16 hosts × 100 MB) on leaf-spine",
		"fabric", "max FCT (s)", "mean FCT (s)", "speedup vs 10GbE")
	fig := metrics.NewFigure("Shuffle completion vs fabric generation")
	line := fig.Line("max FCT (s)")
	base := 0.0
	for _, gen := range []topo.GbE{topo.Gen10, topo.Gen40, topo.Gen100, topo.Gen400} {
		net := topo.LeafSpine(topo.LeafSpineSpec{
			Leaves: 4, Spines: 2, HostsPerLeaf: 4,
			HostSpeed: topo.Gen40, FabricSpeed: gen,
		})
		s := netsim.NewSimulator(net)
		hosts := net.Hosts()
		for _, src := range hosts {
			for _, dst := range hosts {
				if src != dst {
					if _, err := s.StartFlow(src, dst, 1e8); err != nil {
						panic(err)
					}
				}
			}
		}
		s.Run()
		maxFCT := s.FCTs().Max()
		if gen == topo.Gen10 {
			base = maxFCT
		}
		tab.AddRowf(fmt.Sprintf("%gGbE", float64(gen)), maxFCT, s.FCTs().Mean(), base/maxFCT)
		line.Add(float64(gen), maxFCT)
		r.Key[fmt.Sprintf("maxfct_%g", float64(gen))] = maxFCT
	}
	r.Tables = append(r.Tables, tab)
	r.Figures = append(r.Figures, fig)
	r.Key["speedup_400_vs_10"] = r.Key["maxfct_10"] / r.Key["maxfct_400"]
	return r
}

// E15 compares a firewall→DPI→LB service chain as hardware appliances,
// software NFV, and NFV with SmartNIC/FPGA offload.
func E15() *Report {
	r := newReport("E15", "NFV softwarization",
		"Section IV.A.2: NFV implements functions in software for control, flexibility and scalability — at a performance cost hardware offload wins back")
	fns := []nfv.Function{nfv.Firewall, nfv.DPI, nfv.LoadBalancer}
	lambda := 2e6 // 2 Mpps offered

	hwc := nfv.NewApplianceChain("appliance", 5, fns...)
	swc := nfv.NewSoftwareChain("nfv", 8, 5, fns...)
	if _, err := swc.AutoScale(lambda, 0.7); err != nil {
		panic(err)
	}
	off := nfv.NewSoftwareChain("nfv", 8, 5, fns...).OffloadAll()
	if _, err := off.AutoScale(lambda, 0.7); err != nil {
		panic(err)
	}

	tab := metrics.NewTable("Service chain at 2 Mpps (firewall → dpi → lb)",
		"implementation", "capacity (Mpps)", "latency (µs)", "price (kEUR)", "deploy lead time (days)")
	for _, c := range []*nfv.Chain{hwc, swc, off} {
		lat, err := c.LatencyUS(lambda)
		if err != nil {
			panic(err)
		}
		price := c.PriceEUR(8000, 32, 2000) / 1000
		tab.AddRowf(c.Name, c.CapacityPPS()/1e6, lat, price, c.DeployDays())
		r.Key["latency_"+c.Name] = lat
		r.Key["price_"+c.Name] = price
	}
	r.Tables = append(r.Tables, tab)
	r.Key["price_ratio_hw_vs_sw"] = r.Key["price_appliance"] / r.Key["price_nfv"]
	return r
}

// AblationFairness compares max-min progressive filling against the
// single-pass proportional heuristic. The distinguishing scenario: a flow
// throttled elsewhere (slow access link) shares a fast link with an
// unconstrained flow. Max-min redistributes the throttled flow's unused
// share; the proportional pass strands it.
func AblationFairness() *Report {
	r := newReport("ABL-fairness", "Bandwidth sharing ablation",
		"DESIGN.md: max-min progressive filling vs proportional share in netsim")
	build := func() *topo.Network {
		n := topo.New()
		a := n.AddNode(topo.Host, "a") // behind a 2 Gbps access link
		m := n.AddNode(topo.ToR, "m")
		b := n.AddNode(topo.Host, "b")
		c := n.AddNode(topo.Host, "c") // fat uplink
		n.AddLink(a, m, topo.GbE(2), 0)
		n.AddLink(m, b, topo.Gen10, 0)
		n.AddLink(c, m, topo.Gen40, 0)
		return n
	}
	run := func(mode netsim.Fairness) (meanFCT float64) {
		s := netsim.NewSimulator(build())
		s.Fairness = mode
		// a->b is access-limited to 2 Gbps; c->b should receive the
		// remaining 8 Gbps of the m->b link under max-min.
		if _, err := s.StartFlow(0, 2, 1.25e9); err != nil {
			panic(err)
		}
		if _, err := s.StartFlow(3, 2, 1.25e9); err != nil {
			panic(err)
		}
		s.Run()
		return s.FCTs().Mean()
	}
	mm := run(netsim.MaxMin)
	pr := run(netsim.Proportional)
	tab := metrics.NewTable("Fairness ablation (constrained + unconstrained flow)",
		"policy", "mean FCT (s)")
	tab.AddRowf("max-min", mm)
	tab.AddRowf("proportional", pr)
	r.Tables = append(r.Tables, tab)
	r.Key["maxmin_fct"] = mm
	r.Key["proportional_fct"] = pr
	r.Key["stranding_penalty"] = pr/mm - 1
	return r
}

// AblationSDNMode compares reactive and proactive rule installation.
func AblationSDNMode() *Report {
	r := newReport("ABL-sdnmode", "Reactive vs proactive SDN",
		"DESIGN.md: reactive punts pay a first-packet tax; proactive burns table space up front")
	net := topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
	hosts := net.Hosts()
	var pairs [][2]int
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				pairs = append(pairs, [2]int{s, d})
			}
		}
	}

	reactive := sdn.NewController(net, sdn.Reactive, 0)
	var worst float64
	for _, p := range pairs {
		lat, err := reactive.FlowSetupUS(p[0], p[1])
		if err != nil {
			panic(err)
		}
		if lat > worst {
			worst = lat
		}
	}

	net2 := topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	})
	proactive := sdn.NewController(net2, sdn.Proactive, 0)
	preUS, err := proactive.Preinstall(pairs)
	if err != nil {
		panic(err)
	}
	tab := metrics.NewTable("SDN mode ablation", "mode", "first-packet tax (µs)", "preload time (µs)", "rules installed")
	tab.AddRowf("reactive", worst, 0.0, reactive.TotalRules())
	lat0, err := proactive.FlowSetupUS(hosts[0], hosts[1])
	if err != nil {
		panic(err)
	}
	tab.AddRowf("proactive", lat0, preUS, proactive.TotalRules())
	r.Tables = append(r.Tables, tab)
	r.Key["reactive_first_packet_us"] = worst
	r.Key["proactive_first_packet_us"] = lat0
	r.Key["proactive_rules"] = float64(proactive.TotalRules())
	return r
}
