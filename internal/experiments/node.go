package experiments

import (
	"fmt"
	"sort"

	"repro/internal/chiplet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tco"
)

// E1 reproduces the Catapult claim: FPGA offload of the ranking stage of
// a search service cuts tail latency. A ranking request's service time is
// drawn from a lognormal (heavy tail, as in production rankers); offload
// compresses the scoring fraction of the work by the FPGA speedup. Both
// systems face identical Poisson load on a 16-server station.
func E1() *Report {
	r := newReport("E1", "FPGA offload tail latency (Catapult)",
		`Section I: FPGA acceleration "resulting in a 29% reduction in tail latency" for Bing ranking`)
	const (
		servers   = 16
		rho       = 0.75  // offered utilization
		meanSW    = 0.005 // 5 ms software ranking
		sigma     = 0.6   // lognormal shape
		scoreFrac = 0.40  // fraction of work the FPGA absorbs
		accel     = 8.0   // FPGA speedup on that fraction
		requests  = 60000
	)
	run := func(offload bool) *metrics.Sample {
		e := sim.NewEngine()
		st := netsim.NewStation(e, servers)
		rng := sim.NewRNG(42)
		mean := meanSW
		if offload {
			mean = meanSW * (1 - scoreFrac + scoreFrac/accel)
		}
		// Keep the arrival rate FIXED at the software system's sizing: the
		// offloaded system serves the same traffic with headroom.
		lambda := rho * float64(servers) / meanSW
		arr := sim.NewPoisson(rng.Split(), lambda)
		srv := rng.Split()
		// Lognormal with the chosen mean: mu = ln(mean) - sigma²/2.
		mu := logMeanFor(mean, sigma)
		t := sim.Time(0)
		for i := 0; i < requests; i++ {
			t += arr.NextGap()
			e.At(t, func() {
				st.Submit(sim.Time(srv.Lognormal(mu, sigma)), nil)
			})
		}
		e.Run()
		return st.Latency()
	}
	sw := run(false)
	fp := run(true)
	cut := 1 - fp.P99()/sw.P99()
	tab := metrics.NewTable("Ranking service latency (s), 16 servers, ρ=0.75",
		"system", "p50", "p95", "p99", "p999")
	tab.AddRowf("software", sw.P50(), sw.P95(), sw.P99(), sw.P999())
	tab.AddRowf("fpga-offload", fp.P50(), fp.P95(), fp.P99(), fp.P999())
	r.Tables = append(r.Tables, tab)
	r.Key["p99_software"] = sw.P99()
	r.Key["p99_fpga"] = fp.P99()
	r.Key["p99_cut_fraction"] = cut
	return r
}

// logMeanFor returns the lognormal mu for a target mean:
// ln E[X] = mu + sigma²/2.
func logMeanFor(mean, sigma float64) float64 {
	return mathLog(mean) - sigma*sigma/2
}

// E5 checks Recommendation 4's 10× target across the building blocks and
// the device catalog.
func E5() *Report {
	r := newReport("E5", "Accelerator speedups per building block",
		"Recommendation 4: demonstrate significant (10x) increase in throughput per node on real analytics applications")
	cpu := hw.XeonCPU()
	devices := []*hw.Device{hw.GPGPU(), hw.FPGACard(), hw.RankingASIC()}
	blocks := blockOrder()
	tab := metrics.NewTable("Modeled speedup vs 2-socket CPU", append([]string{"block"}, deviceNames(devices)...)...)
	maxSpeed := 0.0
	tenx := 0
	for _, name := range blocks {
		k := kernelBlocks()[name]
		row := []string{name}
		for _, d := range devices {
			s := hw.Speedup(cpu, d, k)
			row = append(row, fmt.Sprintf("%.1f", s))
			if s > maxSpeed {
				maxSpeed = s
			}
			if s >= 10 {
				tenx++
			}
		}
		tab.AddRow(row...)
	}
	r.Tables = append(r.Tables, tab)
	r.Key["max_speedup"] = maxSpeed
	r.Key["cells_at_10x"] = float64(tenx)
	return r
}

// E6 sweeps operator scale (sustained workload) to find where GPGPU
// deployment pays. The roadmap's claim is about small-to-medium
// operators: a small workload fits one CPU node, so a GPU adds capex,
// idle power and porting cost while its silicon sits mostly idle — the
// "utilization too low" regime. At hyperscale the 5× node reduction
// dominates.
func E6() *Report {
	r := newReport("E6", "GPGPU deployment ROI vs operator scale",
		`Section IV.B.2: GPGPUs have not penetrated data centers since "the power consumption is too high and utilization too low to justify the investment" for small and medium operators`)
	k := hw.Kernel{Name: "analytics", Ops: 2e9, Bytes: 4e7, ParallelFraction: 0.98}
	fig := metrics.NewFigure("TCO savings (GPU fleet vs CPU fleet) by sustained workload")
	tab := metrics.NewTable("3-year TCO: CPU-only vs GPU fleet at 30% duty cycle",
		"workload (kernels/s)", "cpu nodes", "gpu nodes", "gpu silicon utilization", "savings (kEUR)")
	line := fig.Line("savings kEUR")
	for _, w := range []float64{10, 50, 200, 1000, 10000, 100000} {
		s := tco.DefaultStudy(hw.CommodityNode(), hw.GPUNode(), k)
		s.Utilization = 0.3
		s.WorkRate = w
		res, err := s.Evaluate()
		if err != nil {
			panic(err)
		}
		// How busy the purchased GPU silicon actually is.
		perGPU := tco.NodeThroughput(hw.GPUNode(), k, s.OffloadFraction)
		gpuUtil := w / (float64(res.AcceleratedNodes) * perGPU)
		tab.AddRowf(w, res.BaselineNodes, res.AcceleratedNodes, gpuUtil, res.SavingsEUR/1000)
		line.Add(w, res.SavingsEUR/1000)
		r.Key[fmt.Sprintf("savings_at_%g", w)] = res.SavingsEUR
	}
	// Break-even workload at the same duty cycle.
	s := tco.DefaultStudy(hw.CommodityNode(), hw.GPUNode(), k)
	s.Utilization = 0.3
	if be, ok := s.BreakEvenWorkRate(1, 1e7); ok {
		r.Key["breakeven_workrate_kernels_per_s"] = be
	}
	r.Tables = append(r.Tables, tab)
	r.Figures = append(r.Figures, fig)
	return r
}

// E7 sweeps product volume for the EUROSERVER-style design, SoC vs SiP,
// and prices the 40 GbE retrofit both ways.
func E7() *Report {
	r := newReport("E7", "SoC vs SiP economics",
		"Section IV.B.3: SoCs need leading-edge silicon and full respins; SiP separates fast- and slow-evolving parts")
	soc := chiplet.EuroserverSoC()
	sip := chiplet.EuroserverSiP()
	tab := metrics.NewTable("Per-unit product cost (EUR) vs volume",
		"volume", "SoC", "SiP", "winner")
	fig := metrics.NewFigure("Product cost vs volume")
	socLine := fig.Line("soc")
	sipLine := fig.Line("sip")
	for _, v := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
		sc, pc := soc.ProductCostEUR(v), sip.ProductCostEUR(v)
		winner := "SoC"
		if pc < sc {
			winner = "SiP"
		}
		tab.AddRowf(metrics.FormatSI(v), sc, pc, winner)
		socLine.Add(v, sc)
		sipLine.Add(v, pc)
	}
	cross, socWins := chiplet.CrossoverVolume(soc, sip)
	retro := metrics.NewTable("Adding a 40GbE interface (retrofit)",
		"design", "NRE (MEUR)", "lead time (months)", "what respins")
	rs := chiplet.RetrofitSoC(soc)
	rp := chiplet.RetrofitSiP(sip)
	retro.AddRowf("SoC", rs.NREEUR/1e6, rs.TimeMonths, rs.Description)
	retro.AddRowf("SiP", rp.NREEUR/1e6, rp.TimeMonths, rp.Description)
	r.Tables = append(r.Tables, tab, retro)
	r.Figures = append(r.Figures, fig)
	r.Key["crossover_volume"] = cross
	r.Key["soc_wins_at_scale"] = b2f(socWins)
	r.Key["retrofit_nre_ratio"] = rs.NREEUR / rp.NREEUR
	return r
}

// E11 measures the real Go implementations of the building blocks
// (throughput on this machine) alongside their modeled accelerator
// speedups — the Recommendation 10 catalog.
func E11() *Report {
	r := newReport("E11", "Accelerated building blocks",
		"Recommendation 10: identify often-required functional building blocks and replace them with hardware-accelerated implementations")
	cpu := hw.XeonCPU()
	gpu := hw.GPGPU()
	fpga := hw.FPGACard()
	tab := metrics.NewTable("Building-block catalog",
		"block", "intensity (ops/B)", "gpu speedup", "fpga speedup", "best device")
	for _, name := range blockOrder() {
		k := kernelBlocks()[name]
		gs := hw.Speedup(cpu, gpu, k)
		fs := hw.Speedup(cpu, fpga, k)
		best := "cpu"
		switch {
		case gs >= 1 && gs >= fs:
			best = "gpu"
		case fs > 1:
			best = "fpga"
		}
		tab.AddRowf(name, k.Intensity(), gs, fs, best)
		r.Key["gpu_speedup_"+name] = gs
	}
	r.Tables = append(r.Tables, tab)
	return r
}

func deviceNames(ds []*hw.Device) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

func blockOrder() []string {
	var names []string
	for n := range kernelBlocks() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
