// Package experiments implements the per-experiment harnesses of the
// reproduction: one function per experiment ID (T1, F1, E1–E16 and the
// ablations listed in DESIGN.md). Each returns a Report whose tables and
// figures are the reproduced exhibits; the repo-root benchmarks wrap these
// functions, cmd/rethink-bench prints them, and EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// PaperClaim is the sentence in the paper this experiment tests.
	PaperClaim string
	Tables     []*metrics.Table
	Figures    []*metrics.Figure
	// Key holds the headline numbers (asserted by tests, reported by
	// benchmarks).
	Key map[string]float64
}

func newReport(id, title, claim string) *Report {
	return &Report{ID: id, Title: title, PaperClaim: claim, Key: map[string]float64{}}
}

// Render emits the full report as text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f.Render())
		b.WriteByte('\n')
	}
	if len(r.Key) > 0 {
		keys := make([]string, 0, len(r.Key))
		for k := range r.Key {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("key metrics:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s = %.6g\n", k, r.Key[k])
		}
	}
	return b.String()
}

// All runs every experiment in ID order and returns the reports. It is
// the single entry point cmd/rethink-bench uses.
func All() []*Report {
	return []*Report{
		T1(), F1(),
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(),
		E9(), E10(), E11(), E12(), E13(), E14(), E15(), E16(),
		E17(), E18(), E19(), E20(), E21(),
		AblationFairness(), AblationSDNMode(), AblationSort(), AblationPacking(),
		AblationFusion(),
	}
}
