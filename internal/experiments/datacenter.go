package experiments

import (
	"fmt"

	"repro/internal/benchsuite"
	"repro/internal/disagg"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// E4 quantifies disaggregation: acceptance and stranding under skewed
// machine shapes, plus the upgrade economics over a six-year horizon.
func E4() *Report {
	r := newReport("E4", "Composable vs monolithic datacenter",
		`Section IV.A.3: disaggregating the data center "facilitates regular upgrades and potentially eliminates the need and cost of replacing entire servers"`)
	spec := disagg.CommodityServer()
	const servers = 32
	// The canonical stranding scenario: machine shapes skewed against the
	// server's fixed ratio. Memory-heavy analytics VMs exhaust a server's
	// DRAM at 2 cores used out of 32; pooled hardware serves the same
	// stream until the *total* DRAM runs out.
	memHeavy := disagg.V(2, 192, 1, 1, 0)
	run := func(a disagg.Allocator) (granted int, util disagg.Vector) {
		for i := 0; i < 400; i++ {
			if _, ok := a.Allocate(disagg.Request{ID: i, Demand: memHeavy}); ok {
				granted++
			}
		}
		return granted, disagg.Utilization(a)
	}
	mono := disagg.NewMonolithic(spec, servers, disagg.BestFit)
	comp := disagg.NewComposableFromServers(spec, servers)
	gm, um := run(mono)
	gc, uc := run(comp)
	stranded := mono.Stranded(memHeavy)

	tab := metrics.NewTable("Memory-heavy machines (2 cores / 192 GiB) on 32 servers' worth of hardware",
		"architecture", "granted", "cpu util", "mem util", "stranded cpu")
	tab.AddRowf("monolithic (best-fit)", gm, um[disagg.CPU], um[disagg.Memory], stranded[disagg.CPU])
	tab.AddRowf("composable pools", gc, uc[disagg.CPU], uc[disagg.Memory], 0.0)
	r.Tables = append(r.Tables, tab)
	r.Key["stranded_cpu_fraction"] = stranded[disagg.CPU]

	plan := disagg.NewUpgradePlan(spec.PriceEUR, 100, 6)
	delta, ratio := plan.Savings()
	up := metrics.NewTable("Keeping a 100-server fleet current for 6 years",
		"strategy", "cost (MEUR)", "relative")
	up.AddRowf("monolithic (whole-server refresh)", plan.MonolithicCostEUR()/1e6, 1.0)
	up.AddRowf("composable (per-sled refresh)", plan.ComposableCostEUR()/1e6, ratio)
	r.Tables = append(r.Tables, up)

	r.Key["granted_monolithic"] = float64(gm)
	r.Key["granted_composable"] = float64(gc)
	r.Key["upgrade_savings_eur"] = delta
	r.Key["upgrade_cost_ratio"] = ratio
	return r
}

// E10 runs the Recommendation-9 standard suite over the four architecture
// configurations.
func E10() *Report {
	r := newReport("E10", "Standard benchmark suite",
		"Recommendation 9: establish benchmarks to compare current and novel architectures using Big Data applications")
	base := benchsuite.SUT{Name: "commodity", Node: hw.CommodityNode()}
	res, err := benchsuite.Run(benchsuite.StandardSuite(), base, benchsuite.StandardSUTs())
	if err != nil {
		panic(err)
	}
	r.Tables = append(r.Tables, res.Table())
	for i, s := range res.SUTs {
		r.Key["overall_"+s.Name] = res.Overall[i]
		r.Key["energy_"+s.Name] = res.OverallEnergy[i]
	}
	ranking := res.Ranking()
	r.Key["winner_is_hetero"] = b2f(ranking[0] == "hetero")
	return r
}

// E12 compares the six scheduling policies on a heterogeneous cluster.
func E12() *Report {
	r := newReport("E12", "Heterogeneous scheduling policies",
		"Recommendation 11: dynamic scheduling and resource allocation strategies for heterogeneous platforms")
	dag := sched.AnalyticsDAG(sched.AnalyticsDAGSpec{Seed: 17, Stages: 6, WidthPerStage: 8, ComputeHeavy: true})
	cluster := sched.Heterogeneous(6)
	tab := metrics.NewTable("48-task analytics DAG on 6 heterogeneous nodes",
		"policy", "makespan (s)", "energy (kJ)", "mean utilization")
	best := ""
	bestMk := 0.0
	for _, p := range sched.AllPolicies() {
		res, err := sched.Schedule(dag, cluster, p)
		if err != nil {
			panic(err)
		}
		tab.AddRowf(p.String(), res.MakespanS, res.EnergyJ/1000, res.MeanUtilization())
		r.Key["makespan_"+p.String()] = res.MakespanS
		r.Key["energy_"+p.String()] = res.EnergyJ
		if best == "" || res.MakespanS < bestMk {
			best, bestMk = p.String(), res.MakespanS
		}
	}
	r.Tables = append(r.Tables, tab)
	r.Key["heft_vs_rr_speedup"] = r.Key["makespan_round-robin"] / r.Key["makespan_heft"]
	return r
}

// E16 studies HPC/Big-Data convergence: segregated versus shared clusters
// across fabric speeds — pooling pays only once the fabric stops
// penalizing spreading (Recommendations 2 and 3 interlock).
func E16() *Report {
	r := newReport("E16", "HPC/Big-Data convergence",
		"Recommendation 2: dual-purpose HPC/Big-Data hardware differentiated in software widens markets — contingent on fabric headroom (Recommendation 3)")
	hpc := sched.AnalyticsDAG(sched.AnalyticsDAGSpec{Seed: 21, Stages: 4, WidthPerStage: 6, ComputeHeavy: true})
	bd := sched.AnalyticsDAG(sched.AnalyticsDAGSpec{Seed: 22, Stages: 4, WidthPerStage: 6})
	merged := mergeDAGs(hpc, bd)

	tab := metrics.NewTable("Worst job completion: segregated 2+2 nodes vs shared 4 nodes",
		"fabric GB/s", "segregated (s)", "shared (s)", "shared wins")
	fig := metrics.NewFigure("Convergence benefit vs fabric bandwidth")
	segLine := fig.Line("segregated")
	shLine := fig.Line("shared")
	for _, gbs := range []float64{1.25, 5, 12.5, 50} {
		a, b := sched.Heterogeneous(2), sched.Heterogeneous(2)
		a.InterNodeGBs, b.InterNodeGBs = gbs, gbs
		sh := sched.NewCluster(append(append([]*hw.Node{}, a.Nodes...), b.Nodes...)...)
		sh.InterNodeGBs = gbs
		ra, err := sched.Schedule(hpc, a, sched.HEFT)
		if err != nil {
			panic(err)
		}
		rb, err := sched.Schedule(bd, b, sched.HEFT)
		if err != nil {
			panic(err)
		}
		seg := ra.MakespanS
		if rb.MakespanS > seg {
			seg = rb.MakespanS
		}
		rs, err := sched.Schedule(merged, sh, sched.HEFT)
		if err != nil {
			panic(err)
		}
		tab.AddRowf(gbs, seg, rs.MakespanS, b2f(rs.MakespanS <= seg))
		segLine.Add(gbs, seg)
		shLine.Add(gbs, rs.MakespanS)
		r.Key[fmt.Sprintf("shared_minus_seg_at_%g", gbs)] = rs.MakespanS - seg
	}
	r.Tables = append(r.Tables, tab)
	r.Figures = append(r.Figures, fig)
	return r
}

func mergeDAGs(a, b *sched.DAG) *sched.DAG {
	out := &sched.DAG{}
	out.Tasks = append(out.Tasks, a.Tasks...)
	off := len(out.Tasks)
	for _, t := range b.Tasks {
		nt := t
		nt.ID += off
		nt.Deps = append([]int(nil), t.Deps...)
		for i := range nt.Deps {
			nt.Deps[i] += off
		}
		out.Tasks = append(out.Tasks, nt)
	}
	return out
}

// AblationPacking compares first-fit and best-fit monolithic packing
// under allocate/release churn: fragmentation is what separates them —
// best-fit preserves large holes for large requests, first-fit sprays
// small requests across them.
func AblationPacking() *Report {
	r := newReport("ABL-packing", "Bin-packing ablation",
		"DESIGN.md: best-fit vs first-fit composition in disagg")
	spec := disagg.CommodityServer()
	run := func(p disagg.Packing) (granted, rejectedBig int) {
		rng := sim.NewRNG(23)
		m := disagg.NewMonolithic(spec, 16, p)
		var live []disagg.Placement
		for i := 0; i < 2000; i++ {
			// Churn: 40% of the time release something.
			if len(live) > 0 && rng.Bool(0.4) {
				j := rng.Intn(len(live))
				m.Release(live[j])
				live = append(live[:j], live[j+1:]...)
				continue
			}
			var d disagg.Vector
			big := rng.Bool(0.25)
			if big {
				d = disagg.V(24, 192, 4, 5, 0)
			} else {
				d = disagg.V(4, 32, 1, 1, 0)
			}
			pl, ok := m.Allocate(disagg.Request{ID: i, Demand: d})
			if ok {
				granted++
				live = append(live, pl)
			} else if big {
				rejectedBig++
			}
		}
		return granted, rejectedBig
	}
	ffG, ffR := run(disagg.FirstFit)
	bfG, bfR := run(disagg.BestFit)
	tab := metrics.NewTable("2000 allocate/release events on 16 servers",
		"packing", "granted", "large requests rejected")
	tab.AddRowf("first-fit", ffG, ffR)
	tab.AddRowf("best-fit", bfG, bfR)
	r.Tables = append(r.Tables, tab)
	r.Key["first_fit_granted"] = float64(ffG)
	r.Key["best_fit_granted"] = float64(bfG)
	r.Key["first_fit_big_rejects"] = float64(ffR)
	r.Key["best_fit_big_rejects"] = float64(bfR)
	return r
}
