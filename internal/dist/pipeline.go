package dist

import (
	"fmt"

	"repro/internal/relational"
)

// ChunkComputeBytesPerSec prices the modeled consumer compute of a
// landed chunk — hash-build inserts, partial-agg folds, gather merges —
// in bytes digested per second. 4 GiB/s is a memory-bandwidth-bound
// single-host rate consistent with the device and spill models: fast
// enough that bulk-synchronous runs stay network-dominated, slow enough
// that hiding it under in-flight flows is worth measuring.
const ChunkComputeBytesPerSec = 4 * float64(1<<30)

// GatherWeightBoost scales the final gather's flow weights over the
// query's own weight (RunPhaseQoS/RunPipelined weightScale): the
// latency-critical tail phase competes hotter than the bulk shuffle
// chunks it coexists with under pipelining. A power of two, and applied
// uniformly to every flow of the phase, so a gather-only round's
// weighted max-min rates — share = cap/Σw scaled back by w — are
// bit-identical to the unboosted allocation; the boost only matters when
// gather flows share a round with other traffic, which is exactly the
// pipelined case it exists for.
const GatherWeightBoost = 4

// GatherClass tags final-gather flows for per-class fabric attribution
// and controller policies.
const GatherClass = "gather"

// Chunk is one pipelined sub-round of a movement phase: the flows that
// cross the fabric for this slice of the payload, plus the bytes the
// receiving side must digest once they land (priced at
// ChunkComputeBytesPerSec). ComputeBytes counts the whole slice — rows
// that stayed on their host still cost consumer compute even though they
// moved nothing.
type Chunk struct {
	Transfers    []Transfer
	ComputeBytes float64
}

// ComputeSeconds is the modeled time a consumer needs to digest the
// chunk once landed.
func (c Chunk) ComputeSeconds() float64 {
	return c.ComputeBytes / ChunkComputeBytesPerSec
}

// RunPipelined runs one movement phase as pipelined sub-rounds: chunk
// k's flows are admitted eagerly on the shared fabric (netsim
// sub-rounds, not full barriers) while a goroutine consumes chunk k−1,
// and the last chunk is consumed after its flows drain. consume(k) is
// called exactly once per chunk, in order, and never concurrently with
// itself — but it does run concurrently with the admission of chunk
// k+1, so it must not touch the transfer lists it shares with them.
//
// The phase records measured overlap, not assumed: each chunk's network
// seconds come from the simulator, its compute seconds from
// ComputeBytes, and the phase's OverlapSeconds is the compute the
// pipeline hid under in-flight flows (zero for a single chunk, bounded
// by min(net, compute)). class/weightScale are per-phase QoS as in
// RunPhaseQoS.
//
// On any error — cancellation, a failed submission, a failed consumer —
// the in-flight consumer goroutine is joined before returning, so
// callers never leak one.
func (q *QueryRun) RunPipelined(name string, chunks []Chunk, class string, weightScale float64, consume func(k int) error) error {
	var netSum, compSum, netDone, compDone float64
	flowsN := 0
	bytesSum := 0.0
	done := make(chan error, 1)
	inFlight := false
	join := func() error {
		if !inFlight {
			return nil
		}
		inFlight = false
		return <-done
	}
	for k := range chunks {
		if err := q.cancel.Err(); err != nil {
			join()
			return fmt.Errorf("dist: phase %s: %w", name, err)
		}
		reqs, bytes := q.flowReqs(chunks[k].Transfers, class, weightScale)
		if k > 0 {
			// Overlap: digest the previous chunk while this one drains.
			inFlight = true
			go func(kk int) { done <- consume(kk) }(k - 1)
		}
		sec, flows, err := q.party.SubmitEager(reqs)
		if err != nil {
			join()
			return fmt.Errorf("dist: phase %s chunk %d: %w", name, k, err)
		}
		if err := join(); err != nil {
			return fmt.Errorf("dist: phase %s chunk %d consume: %w", name, k-1, err)
		}
		q.attribute(flows)
		flowsN += len(reqs)
		bytesSum += bytes
		netSum += sec
		// Modeled timeline: network chunks serialize (netDone), chunk k's
		// compute starts when its bytes have landed and the previous
		// chunk's compute is done, whichever is later.
		netDone += sec
		if netDone > compDone {
			compDone = netDone
		}
		cs := chunks[k].ComputeSeconds()
		compDone += cs
		compSum += cs
	}
	if len(chunks) > 0 {
		if err := consume(len(chunks) - 1); err != nil {
			return fmt.Errorf("dist: phase %s chunk %d consume: %w", name, len(chunks)-1, err)
		}
	}
	overlap := netSum + compSum - compDone
	q.stats.Phases = append(q.stats.Phases, PhaseStat{
		Name: name, Flows: flowsN, Bytes: bytesSum, Seconds: netSum,
		Chunks: len(chunks), ComputeSeconds: compSum, OverlapSeconds: overlap,
	})
	q.stats.Flows += flowsN
	q.stats.BytesShuffled += bytesSum
	q.stats.NetSeconds += netSum
	q.stats.ComputeSeconds += compSum
	q.stats.OverlapSeconds += overlap
	return nil
}

// chunkCount returns how many chunkRows-sized chunks cover total rows.
func chunkCount(total, chunkRows int) int {
	return (total + chunkRows - 1) / chunkRows
}

// chunkWindow clips source-local chunk g's row window [g·chunkRows,
// (g+1)·chunkRows) to the relation, returning an empty window for
// exhausted sources.
func chunkWindow(rel *relational.Relation, g, chunkRows int) (lo, hi int) {
	lo, hi = g*chunkRows, (g+1)*chunkRows
	if lo > len(rel.Rows) {
		lo = len(rel.Rows)
	}
	if hi > len(rel.Rows) {
		hi = len(rel.Rows)
	}
	return lo, hi
}

// chunkWatermark returns the seq value below which every row has
// provably landed once all sources have shipped their local chunks
// 0..g: the minimum, across sources, of the first still-unshipped row's
// seq (shard streams are seq-ascending). ok is false when every source
// is exhausted — everything has landed.
func chunkWatermark(shards []*relational.Relation, seqCol, g, chunkRows int) (w int64, ok bool) {
	for _, rel := range shards {
		if hi := (g + 1) * chunkRows; hi < len(rel.Rows) {
			if seq := rel.Rows[hi][seqCol].I; !ok || seq < w {
				w, ok = seq, true
			}
		}
	}
	return w, ok
}

// RepartitionChunks is Repartition split into pipelined chunks. The
// destination relations are identical to the bulk path's (same rows,
// same seq order); the movement is striped across sources — chunk g
// carries every source's local rows [g·chunkRows, (g+1)·chunkRows), so
// all source uplinks transmit in parallel within each sub-round,
// exactly as they do in the one bulk round. cum[g][d] is the prefix of
// the seq-sorted bucket dests[d].Rows a consumer may digest after chunk
// g: the rows below the landed-seq watermark, which is what lets an
// incremental hash build insert in the bulk build's exact order while
// later chunks are still in flight. The per-(src,dst) chunk bytes sum
// to the bulk transfer bytes exactly (byte counts are integers, so
// float summation order cannot perturb them), and a single covering
// chunk emits the bulk transfer list bit-for-bit.
func RepartitionChunks(shards []*relational.Relation, keyCol, seqCol, chunkRows int) (dests []*relational.Relation, chunks []Chunk, cum [][]int) {
	dests, _ = Repartition(shards, keyCol, seqCol)
	s := len(shards)
	maxRows := 0
	for _, sh := range shards {
		if len(sh.Rows) > maxRows {
			maxRows = len(sh.Rows)
		}
	}
	if maxRows == 0 {
		return dests, nil, nil
	}
	n := chunkCount(maxRows, chunkRows)
	chunks = make([]Chunk, n)
	for g := 0; g < n; g++ {
		var ts []Transfer
		for src, rel := range shards {
			lo, hi := chunkWindow(rel, g, chunkRows)
			if lo == hi {
				continue
			}
			bytesTo := make([]float64, s)
			for _, row := range rel.Rows[lo:hi] {
				d := int(hashValue(row[keyCol]) % uint64(s))
				b := row.EncodedBytes()
				chunks[g].ComputeBytes += b
				if d != src {
					bytesTo[d] += b
				}
			}
			for d, b := range bytesTo {
				if b > 0 {
					ts = append(ts, Transfer{Src: src, Dst: d, Bytes: b})
				}
			}
		}
		chunks[g].Transfers = ts
	}
	cum = make([][]int, n)
	pos := make([]int, s)
	for g := 0; g < n; g++ {
		if w, ok := chunkWatermark(shards, seqCol, g, chunkRows); ok {
			for d := range pos {
				rows := dests[d].Rows
				for pos[d] < len(rows) && rows[pos[d]][seqCol].I < w {
					pos[d]++
				}
			}
		} else {
			for d := range pos {
				pos[d] = len(dests[d].Rows)
			}
		}
		cum[g] = append([]int(nil), pos...)
	}
	return dests, chunks, cum
}

// BroadcastChunks is Broadcast split into pipelined chunks. merged is
// identical to the bulk path's seq-merged build side; chunk g carries
// every source's local rows [g·chunkRows, (g+1)·chunkRows) to every
// other shard — striped across sources like RepartitionChunks, so all
// uplinks transmit in parallel within each sub-round. bounds[g] is the
// prefix of merged a consumer may digest after chunk g (the rows below
// the landed-seq watermark; counted against the unstripped shards, so
// it works whether or not merged kept the seq column). The per-source
// bytes across chunks sum to the bulk per-source relation bytes
// exactly, and byte accounting is done pre-strip (the wire carries the
// seq column, as in the bulk path).
func BroadcastChunks(shards []*relational.Relation, seqCol int, strip bool, chunkRows int) (merged *relational.Relation, chunks []Chunk, bounds []int) {
	merged = MergeBySeq(shards[0].Name, shards, seqCol, strip)
	total := len(merged.Rows)
	if total == 0 {
		return merged, nil, nil
	}
	maxRows := 0
	for _, sh := range shards {
		if len(sh.Rows) > maxRows {
			maxRows = len(sh.Rows)
		}
	}
	n := chunkCount(maxRows, chunkRows)
	chunks = make([]Chunk, n)
	bounds = make([]int, n)
	pos := make([]int, len(shards))
	for g := 0; g < n; g++ {
		var ts []Transfer
		for src, rel := range shards {
			lo, hi := chunkWindow(rel, g, chunkRows)
			if lo == hi {
				continue
			}
			b := 0.0
			for _, row := range rel.Rows[lo:hi] {
				b += row.EncodedBytes()
			}
			chunks[g].ComputeBytes += b
			if b > 0 {
				for dst := range shards {
					if dst != src {
						ts = append(ts, Transfer{Src: src, Dst: dst, Bytes: b})
					}
				}
			}
		}
		chunks[g].Transfers = ts
		if w, ok := chunkWatermark(shards, seqCol, g, chunkRows); ok {
			for i, rel := range shards {
				for pos[i] < len(rel.Rows) && rel.Rows[pos[i]][seqCol].I < w {
					pos[i]++
				}
			}
			b := 0
			for _, p := range pos {
				b += p
			}
			bounds[g] = b
		} else {
			bounds[g] = total
		}
	}
	return merged, chunks, bounds
}

// GatherChunks splits the final gather of per-shard relations into seq-
// rank chunks: chunk g ships each shard's share of rows ranked
// [g·chunkRows, (g+1)·chunkRows) to the coordinator, and bounds[g] is
// the cumulative global row count landed through chunk g (feed it to a
// SeqMerger to reassemble the exact MergeBySeq order incrementally).
func GatherChunks(shards []*relational.Relation, seqCol, chunkRows int) (chunks []Chunk, bounds []int) {
	total := 0
	for _, sh := range shards {
		total += len(sh.Rows)
	}
	if total == 0 {
		return nil, nil
	}
	n := chunkCount(total, chunkRows)
	srcBytes := make([][]float64, n)
	compute := make([]float64, n)
	for g := range srcBytes {
		srcBytes[g] = make([]float64, len(shards))
	}
	r := 0
	ForEachBySeq(shards, seqCol, func(shard, row int) {
		g := r / chunkRows
		r++
		b := shards[shard].Rows[row].EncodedBytes()
		srcBytes[g][shard] += b
		compute[g] += b
	})
	chunks = make([]Chunk, n)
	bounds = make([]int, n)
	for g := 0; g < n; g++ {
		var ts []Transfer
		for src, b := range srcBytes[g] {
			if b > 0 {
				ts = append(ts, Transfer{Src: src, Dst: Coordinator, Bytes: b})
			}
		}
		chunks[g] = Chunk{Transfers: ts, ComputeBytes: compute[g]}
		end := (g + 1) * chunkRows
		if end > total {
			end = total
		}
		bounds[g] = end
	}
	return chunks, bounds
}

// PartialGatherChunks builds the pipelined gather of per-shard partial
// aggregations: chunk g carries each shard's g-th sub-partial (shards
// with fewer sub-partials simply stop contributing). Transfer and
// compute bytes use the partials' own encoded size, as the bulk gather
// does.
func PartialGatherChunks(subs [][]*relational.PartialAgg) []Chunk {
	n := 0
	for _, s := range subs {
		if len(s) > n {
			n = len(s)
		}
	}
	chunks := make([]Chunk, n)
	for g := 0; g < n; g++ {
		var ts []Transfer
		compute := 0.0
		for i, s := range subs {
			if g >= len(s) {
				continue
			}
			b := s[g].EncodedBytes()
			compute += b
			if b > 0 {
				ts = append(ts, Transfer{Src: i, Dst: Coordinator, Bytes: b})
			}
		}
		chunks[g] = Chunk{Transfers: ts, ComputeBytes: compute}
	}
	return chunks
}

// SeqMerger incrementally reproduces MergeBySeq: Take(upto) appends the
// globally seq-ordered rows ranked below upto that have not been taken
// yet. Taking bounds[0], bounds[1], … as gather chunks land yields, row
// for row, the relation the bulk MergeBySeq builds in one shot.
type SeqMerger struct {
	shards []*relational.Relation
	seqCol int
	pos    []int
	taken  int
}

// NewSeqMerger returns a merger over the per-shard relations (each must
// be seq-ascending, as shard streams are by construction).
func NewSeqMerger(shards []*relational.Relation, seqCol int) *SeqMerger {
	return &SeqMerger{shards: shards, seqCol: seqCol, pos: make([]int, len(shards))}
}

// Take visits rows ranked [taken, upto) in global seq order, calling
// fn(shard, rowIndex) for each, and advances the merger.
func (m *SeqMerger) Take(upto int, fn func(shard, row int)) {
	for m.taken < upto {
		best := -1
		var bestSeq int64
		for i, s := range m.shards {
			if m.pos[i] >= len(s.Rows) {
				continue
			}
			if seq := s.Rows[m.pos[i]][m.seqCol].I; best < 0 || seq < bestSeq {
				best, bestSeq = i, seq
			}
		}
		if best < 0 {
			return
		}
		fn(best, m.pos[best])
		m.pos[best]++
		m.taken++
	}
}
