// Package dist is the distributed execution substrate of the SQL engine:
// it places query shards on the hosts of a simulated datacenter fabric
// (internal/topo) and charges every inter-shard data movement — broadcast
// of join build sides, hash-repartition shuffles, the final gather to the
// coordinator — as flows in the flow-level network simulator
// (internal/netsim). Each query therefore reports rows *and* simulated
// network time, bytes shuffled and per-link utilization, which is the
// roadmap's core claim made executable: big-data performance is decided
// in the fabric, not just the cores.
//
// The package deliberately separates the two clocks: shard-local compute
// runs for real on goroutines (one per simulated host) using the
// morsel-parallel batch operators, while data movement advances the
// netsim virtual clock. A query's network cost is exact under the
// max-min fairness model; its compute cost is whatever the hardware
// does.
package dist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/relational"
	"repro/internal/topo"
)

// Coordinator is the pseudo shard index addressing the coordinator host
// in a Transfer.
const Coordinator = -1

// Cluster is a set of shard workers plus a coordinator placed on the
// hosts of a simulated datacenter fabric. It is immutable once built and
// safe to share across queries; per-query flow accounting lives in
// QueryRun.
type Cluster struct {
	Net      *topo.Network
	Topology string
	// Coord is the coordinator's host node ID; Workers maps shard index
	// to host node ID.
	Coord   int
	Workers []int
}

// Topologies supported by NewCluster.
var Topologies = []string{"leafspine", "single", "fattree", "torus"}

// NewCluster builds the named topology sized for shards workers plus one
// coordinator and places them on its hosts (coordinator on the first
// host, shard i on host i+1). An empty name selects "leafspine".
func NewCluster(topology string, shards int) (*Cluster, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dist: need at least 1 shard, got %d", shards)
	}
	need := shards + 1
	var net *topo.Network
	switch topology {
	case "", "leafspine":
		topology = "leafspine"
		leaves := (need + 3) / 4
		if leaves < 2 {
			leaves = 2
		}
		net = topo.LeafSpine(topo.LeafSpineSpec{
			Leaves: leaves, Spines: 2, HostsPerLeaf: 4,
			HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
		})
	case "single":
		net = topo.SingleSwitch(need, topo.Gen10)
	case "fattree":
		k := 4
		for k*k*k/4 < need {
			k += 2
		}
		net = topo.FatTree(k, topo.Gen10)
	case "torus":
		w := 2
		for w*w < need {
			w++
		}
		net = topo.Torus2D(w, w, topo.Gen10)
	default:
		return nil, fmt.Errorf("dist: unknown topology %q (have %s)", topology, strings.Join(Topologies, ", "))
	}
	hosts := net.Hosts()
	return &Cluster{Net: net, Topology: topology, Coord: hosts[0], Workers: hosts[1:need]}, nil
}

// Shards returns the worker count.
func (c *Cluster) Shards() int { return len(c.Workers) }

// host resolves a Transfer endpoint (shard index or Coordinator) to a
// host node ID.
func (c *Cluster) host(i int) int {
	if i == Coordinator {
		return c.Coord
	}
	return c.Workers[i]
}

// PathSeconds prices a contention-free transfer between two endpoints:
// serialization at the path's bottleneck link plus propagation. The
// distributed planner uses it to cost broadcast against repartition
// before any byte moves.
func (c *Cluster) PathSeconds(src, dst int, bytes float64) float64 {
	a, b := c.host(src), c.host(dst)
	if a == b {
		return 0
	}
	p, ok := c.Net.ShortestPath(a, b)
	if !ok {
		return 0
	}
	return p.TransferSeconds(c.Net, bytes)
}

// EstimateFanoutSeconds prices a phase in which shard i pushes sendBytes[i]
// into the fabric: the slowest sender's serialization bounds the phase.
// It is a contention-free lower bound — the simulator charges the real
// shared-link cost — but it ranks plans correctly when senders are the
// bottleneck, which access-limited fabrics make the common case.
func (c *Cluster) EstimateFanoutSeconds(sendBytes []float64) float64 {
	worst := 0.0
	for i, b := range sendBytes {
		if b <= 0 {
			continue
		}
		dst := (i + 1) % c.Shards()
		if dst == i {
			dst = Coordinator
		}
		if t := c.PathSeconds(i, dst, b); t > worst {
			worst = t
		}
	}
	return worst
}

// Transfer is one point-to-point bulk movement in a phase. Src and Dst
// are shard indexes, or Coordinator.
type Transfer struct {
	Src, Dst int
	Bytes    float64
}

// PhaseStat records one data-movement phase of a query.
type PhaseStat struct {
	Name    string
	Flows   int
	Bytes   float64
	Seconds float64
	// Chunks is the number of pipelined sub-rounds the phase was split
	// into (0 for bulk-synchronous phases). ComputeSeconds is the modeled
	// consumer compute the phase performed on landed chunks, and
	// OverlapSeconds is the part of it hidden under in-flight flows —
	// both zero for bulk phases, whose compute happens strictly after the
	// movement.
	Chunks         int
	ComputeSeconds float64
	OverlapSeconds float64
}

// QueryStats is the network-side report of one distributed query, sourced
// from real netsim flows over the cluster fabric.
type QueryStats struct {
	Shards        int
	Topology      string
	Phases        []PhaseStat
	Flows         int
	BytesShuffled float64
	NetSeconds    float64
	MeanLinkUtil  float64
	MaxLinkUtil   float64
	Links         []netsim.LinkLoad
	// Adm is the query's admission-layer report: rounds its phases
	// joined, wall-clock barrier wait (the queueing delay of sharing the
	// fabric with concurrent queries), and the QoS class/weight its flows
	// competed under.
	Adm netsim.PartyStats
	// SpillSeconds is the modeled out-of-core I/O time (spill writes
	// plus read-back) the query's shard-local operators charged against
	// their memory budgets. Zero on unbudgeted runs. It is storage-tier
	// time, not fabric time, so it is reported beside NetSeconds rather
	// than folded in.
	SpillSeconds float64
	// ComputeSeconds is the modeled time pipelined phases spent consuming
	// landed chunks (probe inserts, partial-agg folds, gather merges),
	// priced at ChunkComputeBytesPerSec. OverlapSeconds is the portion of
	// that compute hidden under in-flight flows — the measured (not
	// assumed) win of pipelining. Both are zero on bulk-synchronous runs,
	// where consumption starts only after NetSeconds has fully elapsed.
	ComputeSeconds float64
	OverlapSeconds float64
	// RecoverySeconds is the modeled cost of surviving injected faults:
	// the network time of recovery phases that re-shipped data lost with
	// a dead host from surviving replicas, plus the modeled re-derivation
	// compute of that data, plus the duplicated compute of speculative
	// fragment executions whose backup won. RetriedFragments counts shard
	// fragments re-dispatched from a dead host to a surviving replica;
	// SpeculativeWins counts straggler fragments whose speculative
	// duplicate finished first. All three are zero on fault-free runs —
	// the failure-free engine never records recovery work.
	RecoverySeconds  float64
	RetriedFragments int
	SpeculativeWins  int
}

// WallSeconds is the modeled movement-plus-consumption critical path:
// network time plus chunk-consumption compute, minus the compute that ran
// under in-flight flows. On bulk runs it degenerates to
// NetSeconds+ComputeSeconds (no overlap); a perfectly pipelined phase
// approaches max(net, compute).
func (s *QueryStats) WallSeconds() float64 {
	return s.NetSeconds + s.ComputeSeconds - s.OverlapSeconds
}

// Summary renders the stats as one human-readable block.
func (s *QueryStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network: %s fabric, %d shards — %.0f bytes shuffled in %d flows, %.3f ms simulated\n",
		s.Topology, s.Shards, s.BytesShuffled, s.Flows, s.NetSeconds*1e3)
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "  phase %-12s %3d flows %12.0f B %10.3f ms", p.Name, p.Flows, p.Bytes, p.Seconds*1e3)
		if p.Chunks > 0 {
			fmt.Fprintf(&b, "  (%d chunks, %.3f ms compute, %.3f ms overlapped)", p.Chunks, p.ComputeSeconds*1e3, p.OverlapSeconds*1e3)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  link utilization: mean %.1f%%, max %.1f%%", s.MeanLinkUtil*100, s.MaxLinkUtil*100)
	class := s.Adm.Class
	if class == "" {
		class = "best-effort"
	}
	fmt.Fprintf(&b, "\n  admission: class %s, weight %.3g — %d rounds joined, %.3f ms barrier wait",
		class, s.Adm.Weight, s.Adm.RoundsJoined, s.Adm.BarrierWaitSeconds*1e3)
	if s.SpillSeconds > 0 {
		fmt.Fprintf(&b, "\n  spill: %.3f ms modeled tier I/O", s.SpillSeconds*1e3)
	}
	if s.ComputeSeconds > 0 {
		fmt.Fprintf(&b, "\n  pipeline: %.3f ms chunk compute, %.3f ms overlapped — %.3f ms wall (vs %.3f ms bulk)",
			s.ComputeSeconds*1e3, s.OverlapSeconds*1e3, s.WallSeconds()*1e3, (s.NetSeconds+s.ComputeSeconds)*1e3)
	}
	if s.RecoverySeconds > 0 || s.RetriedFragments > 0 || s.SpeculativeWins > 0 {
		fmt.Fprintf(&b, "\n  recovery: %.3f ms modeled, %d fragments retried, %d speculative wins",
			s.RecoverySeconds*1e3, s.RetriedFragments, s.SpeculativeWins)
	}
	return b.String()
}

// dirKey identifies one direction of a link for per-query accounting.
type dirKey struct {
	link    int
	forward bool
}

// QueryRun charges the data movements of one query as netsim flows over
// the cluster fabric. Phases run sequentially from the query's point of
// view; on a shared Fabric, a phase's flows are admitted in a round
// together with whatever other queries are moving data at the same time,
// and contend with them under max-min fairness. The per-query stats
// attribute only this query's bytes to links, windowed over this query's
// own network time.
type QueryRun struct {
	c      *Cluster
	fab    *Fabric
	party  *netsim.Party
	cancel *relational.CancelToken
	stats  *QueryStats
	link   map[dirKey]float64
	closed bool
	// class/weight are the query's QoS defaults, kept so per-phase
	// overrides (RunPhaseQoS boosting the final gather) can scale the
	// query's own weight rather than replace it with an absolute one.
	class  string
	weight float64
	// hostOf, when set, overrides the cluster's static shard→host map for
	// this query's flow endpoints. The lifecycle layer installs it so a
	// shard whose primary host died resolves to a surviving replica, and
	// every later phase of the query ships to and from the new placement.
	hostOf func(i int) int
}

// SetHostResolver installs a shard→host resolver overriding the
// cluster's static placement for this query's flows. The resolver
// receives a Transfer endpoint (shard index or Coordinator) and returns
// a host node ID. A nil resolver restores static placement.
func (q *QueryRun) SetHostResolver(fn func(i int) int) { q.hostOf = fn }

// host resolves a Transfer endpoint through the installed resolver, or
// the cluster's static placement when none is set.
func (q *QueryRun) host(i int) int {
	if q.hostOf != nil {
		return q.hostOf(i)
	}
	return q.c.host(i)
}

// NewQuery starts a flow-accounting run for one query on a private
// fabric. Engines sharing a fabric across queries register through
// Fabric.NewQuery instead; this entry point keeps single-query callers
// (tests, one-shot tools) working without managing a Fabric.
func (c *Cluster) NewQuery() *QueryRun {
	return NewFabric(c).NewQuery()
}

// flowReqs converts a transfer list into flow requests: deterministic
// submission order (netsim allocates rates in flow-ID order, so transfer
// order must not depend on map iteration upstream), transfers with no
// bytes or identical endpoints skipped (data that stays on its host does
// not cross the fabric). class and weightScale, when set, tag each
// request with a per-phase QoS override: the phase's flows compete at
// the query's own weight scaled by weightScale, and carry class — but
// only when the session declared no class of its own. Session identity
// wins for attribution and controller policies (a strict-priority
// controller must keep seeing "interactive", not "gather"); the phase
// boost then rides on weight alone.
func (q *QueryRun) flowReqs(transfers []Transfer, class string, weightScale float64) ([]netsim.FlowReq, float64) {
	if q.class != "" {
		class = ""
	}
	sort.SliceStable(transfers, func(i, j int) bool {
		if transfers[i].Src != transfers[j].Src {
			return transfers[i].Src < transfers[j].Src
		}
		return transfers[i].Dst < transfers[j].Dst
	})
	weight := 0.0
	if weightScale > 0 {
		weight = q.weight
		if weight <= 0 {
			weight = 1
		}
		weight *= weightScale
	}
	var reqs []netsim.FlowReq
	bytes := 0.0
	for _, t := range transfers {
		if t.Bytes <= 0 || q.host(t.Src) == q.host(t.Dst) {
			continue
		}
		reqs = append(reqs, netsim.FlowReq{
			Src: q.host(t.Src), Dst: q.host(t.Dst), Bytes: t.Bytes,
			Class: class, Weight: weight,
		})
		bytes += t.Bytes
	}
	return reqs, bytes
}

// attribute charges this query's completed flows to the directed links
// they traversed (a completed flow charges its full size to every link on
// its path).
func (q *QueryRun) attribute(flows []*netsim.Flow) {
	for _, f := range flows {
		for i, lid := range f.Path.LinkIDs {
			forward := q.c.Net.Links[lid].A == f.Path.NodeIDs[i]
			q.link[dirKey{link: lid, forward: forward}] += f.Bytes
		}
	}
}

// RunPhase submits one flow per transfer for admission, blocks until the
// round containing them completes, and records the phase makespan.
func (q *QueryRun) RunPhase(name string, transfers []Transfer) error {
	return q.RunPhaseQoS(name, transfers, "", 0)
}

// RunPhaseQoS is RunPhase with a per-phase QoS override: the phase's
// flows carry class (empty inherits the query's class) and compete at the
// query's weight scaled by weightScale (≤0 inherits the query's weight
// unscaled). The lowerer uses it to mark the latency-critical final
// gather hotter than the bulk shuffles it now coexists with.
func (q *QueryRun) RunPhaseQoS(name string, transfers []Transfer, class string, weightScale float64) error {
	_, err := q.RunPhaseMeasured(name, transfers, class, weightScale)
	return err
}

// RunPhaseMeasured is RunPhaseQoS returning the phase's simulated
// makespan. The lifecycle fault injector uses the measurement to place a
// host death *within* the phase (die at Frac×makespan) and to price the
// recovery phases it then runs.
func (q *QueryRun) RunPhaseMeasured(name string, transfers []Transfer, class string, weightScale float64) (float64, error) {
	if err := q.cancel.Err(); err != nil {
		return 0, fmt.Errorf("dist: phase %s: %w", name, err)
	}
	reqs, bytes := q.flowReqs(transfers, class, weightScale)
	sec, flows, err := q.party.Submit(reqs)
	if err != nil {
		return 0, fmt.Errorf("dist: phase %s: %w", name, err)
	}
	q.attribute(flows)
	q.stats.Phases = append(q.stats.Phases, PhaseStat{Name: name, Flows: len(reqs), Bytes: bytes, Seconds: sec})
	q.stats.Flows += len(reqs)
	q.stats.BytesShuffled += bytes
	q.stats.NetSeconds += sec
	return sec, nil
}

// AddRecovery folds fault-recovery work into the query's stats: sec of
// modeled recovery time (re-shipped data, re-derivation, duplicated
// speculative compute), retried fragments re-dispatched off dead hosts,
// and speculative executions whose backup won.
func (q *QueryRun) AddRecovery(sec float64, retried, wins int) {
	q.stats.RecoverySeconds += sec
	q.stats.RetriedFragments += retried
	q.stats.SpeculativeWins += wins
}

// Close deregisters the query from the shared fabric without finalizing
// stats. Error paths MUST reach it (or Finish): an abandoned
// registration would park every concurrent query at the admission
// barrier forever. Close is idempotent and safe after Finish.
func (q *QueryRun) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.party.Leave()
}

// Finish computes the query's link-level utilization — its own bytes
// over its own network time — deregisters it from the fabric, and
// returns the stats.
func (q *QueryRun) Finish() *QueryStats {
	q.Close()
	q.stats.Adm = q.party.Stats()
	if q.stats.NetSeconds > 0 {
		denom := q.stats.NetSeconds
		total := 0.0
		links := make([]netsim.LinkLoad, 0, len(q.link))
		for lid := range q.c.Net.Links {
			for _, forward := range []bool{true, false} {
				b := q.link[dirKey{link: lid, forward: forward}]
				util := b / (q.c.Net.Links[lid].Speed.BytesPerSec() * denom)
				total += util
				if util > q.stats.MaxLinkUtil {
					q.stats.MaxLinkUtil = util
				}
				links = append(links, netsim.LinkLoad{LinkID: lid, Forward: forward, Bytes: b, Util: util})
			}
		}
		q.stats.Links = links
		q.stats.MeanLinkUtil = total / float64(len(links))
	}
	return q.stats
}
