package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/netsim"
	"repro/internal/relational"
	"repro/internal/topo"
)

// Fabric is the shared network of one SQL engine: a single long-lived
// netsim.Simulator over the cluster's topology, fronted by the
// concurrent admission layer so any number of queries can charge their
// broadcasts, shuffles and gathers as coexisting flows. Two queries
// executing at the same time contend for the same links — per-query
// simulated network time degrades under load, which a per-query private
// simulator (the pre-engine design) could never show.
//
// A Fabric is safe for concurrent use and lives as long as its Engine.
type Fabric struct {
	c   *Cluster
	adm *netsim.Admission
}

// NewFabric wraps the cluster's topology in one shared simulator with
// no controller: flows keep their default seeded-ECMP routes and
// requested weights (the fixed data plane).
func NewFabric(c *Cluster) *Fabric {
	return NewFabricController(c, nil)
}

// NewFabricController is NewFabric with a programmable control plane:
// ctl observes every admission round (pending flows, link loads) and may
// reroute or reweight flows before they enter the fabric. A nil ctl is
// the fixed data plane. sdn.NewNetController builds the reference
// implementation; controllers constructed with a nil topology bind their
// view from the first round.
func NewFabricController(c *Cluster, ctl netsim.Controller) *Fabric {
	adm := netsim.NewAdmission(netsim.NewSimulator(c.Net))
	if ctl != nil {
		adm.SetController(ctl)
	}
	return &Fabric{c: c, adm: adm}
}

// Cluster returns the fabric's host placement.
func (f *Fabric) Cluster() *Cluster { return f.c }

// Expect delays the next admission round until n queries are in flight —
// the deterministic way to guarantee a batch of concurrently launched
// queries actually shares its first round. Pair every launched workload
// that can fail before its first data movement with Withdraw on that
// error path. See netsim.Admission.Expect.
func (f *Fabric) Expect(n int) { f.adm.Expect(n) }

// Withdraw releases one Expect slot: an expected query failed before
// registering (e.g. a parse or plan error), so the barrier must stop
// waiting for it.
//
// Withdraw is a raw decrement: a workload whose error handling can reach
// it twice (an error path that also fires a cancellation hook, say)
// would release two slots for one failure, letting the barrier run a
// round before a genuinely expected query arrives. Callers with more
// than one release site should hold a Slot instead.
func (f *Fabric) Withdraw() { f.adm.Withdraw() }

// Slot is an idempotent handle on one Expect slot. However many error
// paths call Withdraw — a failure handler and a cancellation hook both
// firing, a retry loop re-entering cleanup — the underlying slot is
// released exactly once. A nil Slot is safe to withdraw (no-op), so
// callers can hold one unconditionally whether or not a fabric exists.
type Slot struct {
	f    *Fabric
	once sync.Once
}

// Claim reserves an idempotent release handle for one Expect slot. It
// performs no accounting by itself — the slot was created by Expect —
// it only guarantees the paired Withdraw happens at most once.
func (f *Fabric) Claim() *Slot { return &Slot{f: f} }

// Withdraw releases the slot on first call; later calls (and calls on a
// nil Slot) are no-ops.
func (s *Slot) Withdraw() {
	if s == nil {
		return
	}
	s.once.Do(func() { s.f.adm.Withdraw() })
}

// MutateNet runs fn against the fabric's live topology under the
// admission lock, between rounds: link-speed changes (degradation,
// partition) are atomic with respect to rate allocation and take effect
// from the next admission round. The lifecycle fault injector is the
// intended caller.
func (f *Fabric) MutateNet(fn func(*topo.Network)) { f.adm.MutateNet(fn) }

// NewQuery registers a query with the shared fabric and starts its flow
// accounting. The query MUST end with Finish (for stats) or Close (on
// error paths): an abandoned registration would hold every other
// in-flight query at the admission barrier.
func (f *Fabric) NewQuery() *QueryRun { return f.NewQueryCancel(nil) }

// NewQueryCancel is NewQuery wired to a cancellation token: tripping the
// token aborts phases parked at the admission barrier, and Close/Finish
// still deregisters as usual.
func (f *Fabric) NewQueryCancel(t *relational.CancelToken) *QueryRun {
	return f.NewQueryQoS(t, "", 0)
}

// NewQueryQoS is NewQueryCancel with a QoS identity: every flow the
// query charges carries the class tag (per-class fabric attribution,
// controller policy input) and competes with the given weight under the
// weighted max-min allocator (0 = uniform weight 1). Two concurrent
// queries at weights 3:1 see ~3:1 rates on shared bottlenecks, so the
// weighted query's phases complete sooner.
func (f *Fabric) NewQueryQoS(t *relational.CancelToken, class string, weight float64) *QueryRun {
	q := &QueryRun{
		c:      f.c,
		fab:    f,
		cancel: t,
		stats:  &QueryStats{Shards: f.c.Shards(), Topology: f.c.Topology},
		link:   map[dirKey]float64{},
		class:  class,
		weight: weight,
	}
	q.party = f.adm.JoinQoS(t.Err, class, weight)
	if t != nil {
		t.OnCancel(f.adm.Wake)
	}
	return q
}

// Admission snapshots the raw admission-layer aggregate — everything
// FabricStats summarizes plus the counters it omits (eager sub-rounds,
// rejected controller overrides). Operational surfaces (a daemon's
// /metrics endpoint) report it verbatim.
func (f *Fabric) Admission() netsim.AdmissionStats { return f.adm.Stats() }

// FabricStats is the aggregate, cross-query view of the shared fabric:
// the contention counters plus link utilization over the fabric's total
// busy time. Per-query views live in QueryStats.
type FabricStats struct {
	Topology string
	// Rounds, PeakFlows and PeakQueries summarize admission: how many
	// bulk-synchronous rounds ran, the most flows that coexisted in one
	// round, and the most queries whose flows shared a round. PeakQueries
	// > 1 is the direct witness that queries contended.
	Rounds      int
	PeakFlows   int
	PeakQueries int
	// BusySeconds is the virtual time the fabric carried at least one
	// flow; Bytes is the total traffic admitted.
	BusySeconds float64
	Bytes       float64
	// ClassBytes attributes the admitted bytes to QoS classes ("" is
	// best-effort traffic) — the per-tenant view of who used the fabric.
	ClassBytes map[string]float64
	// PathOverrides counts flows the fabric controller rerouted off
	// their default ECMP routes.
	PathOverrides int
	// MeanLinkUtil / MaxLinkUtil are computed over BusySeconds, so two
	// queries sharing rounds (overlapping in time) drive utilization
	// strictly above what either achieves alone.
	MeanLinkUtil float64
	MaxLinkUtil  float64
}

// Stats snapshots the fabric-wide aggregate.
func (f *Fabric) Stats() *FabricStats {
	a := f.adm.Stats()
	st := &FabricStats{
		Topology:      f.c.Topology,
		Rounds:        a.Rounds,
		PeakFlows:     a.PeakFlows,
		PeakQueries:   a.PeakParties,
		BusySeconds:   a.BusySeconds,
		Bytes:         a.Bytes,
		ClassBytes:    a.ClassBytes,
		PathOverrides: a.PathOverrides,
	}
	if a.BusySeconds <= 0 {
		return st
	}
	loads := f.adm.LinkLoads()
	total := 0.0
	for _, l := range loads {
		util := l.Bytes / (f.c.Net.Links[l.LinkID].Speed.BytesPerSec() * a.BusySeconds)
		total += util
		if util > st.MaxLinkUtil {
			st.MaxLinkUtil = util
		}
	}
	if len(loads) > 0 {
		st.MeanLinkUtil = total / float64(len(loads))
	}
	return st
}

// Summary renders the aggregate as one human-readable block.
func (s *FabricStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: %s — %d admission rounds, peak %d concurrent queries / %d coexisting flows\n",
		s.Topology, s.Rounds, s.PeakQueries, s.PeakFlows)
	fmt.Fprintf(&b, "  %.0f bytes over %.3f ms busy; link utilization mean %.1f%%, max %.1f%%",
		s.Bytes, s.BusySeconds*1e3, s.MeanLinkUtil*100, s.MaxLinkUtil*100)
	if len(s.ClassBytes) > 0 {
		classes := make([]string, 0, len(s.ClassBytes))
		for c := range s.ClassBytes {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		b.WriteString("\n  per-class bytes:")
		for _, c := range classes {
			name := c
			if name == "" {
				name = "best-effort"
			}
			fmt.Fprintf(&b, " %s=%.0f", name, s.ClassBytes[c])
		}
	}
	if s.PathOverrides > 0 {
		fmt.Fprintf(&b, "\n  controller: %d flows rerouted", s.PathOverrides)
	}
	return b.String()
}
