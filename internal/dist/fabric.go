package dist

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
	"repro/internal/relational"
)

// Fabric is the shared network of one SQL engine: a single long-lived
// netsim.Simulator over the cluster's topology, fronted by the
// concurrent admission layer so any number of queries can charge their
// broadcasts, shuffles and gathers as coexisting flows. Two queries
// executing at the same time contend for the same links — per-query
// simulated network time degrades under load, which a per-query private
// simulator (the pre-engine design) could never show.
//
// A Fabric is safe for concurrent use and lives as long as its Engine.
type Fabric struct {
	c   *Cluster
	adm *netsim.Admission
}

// NewFabric wraps the cluster's topology in one shared simulator.
func NewFabric(c *Cluster) *Fabric {
	return &Fabric{c: c, adm: netsim.NewAdmission(netsim.NewSimulator(c.Net))}
}

// Cluster returns the fabric's host placement.
func (f *Fabric) Cluster() *Cluster { return f.c }

// Expect delays the next admission round until n queries are in flight —
// the deterministic way to guarantee a batch of concurrently launched
// queries actually shares its first round. Pair every launched workload
// that can fail before its first data movement with Withdraw on that
// error path. See netsim.Admission.Expect.
func (f *Fabric) Expect(n int) { f.adm.Expect(n) }

// Withdraw releases one Expect slot: an expected query failed before
// registering (e.g. a parse or plan error), so the barrier must stop
// waiting for it.
func (f *Fabric) Withdraw() { f.adm.Withdraw() }

// NewQuery registers a query with the shared fabric and starts its flow
// accounting. The query MUST end with Finish (for stats) or Close (on
// error paths): an abandoned registration would hold every other
// in-flight query at the admission barrier.
func (f *Fabric) NewQuery() *QueryRun { return f.NewQueryCancel(nil) }

// NewQueryCancel is NewQuery wired to a cancellation token: tripping the
// token aborts phases parked at the admission barrier, and Close/Finish
// still deregisters as usual.
func (f *Fabric) NewQueryCancel(t *relational.CancelToken) *QueryRun {
	q := &QueryRun{
		c:      f.c,
		fab:    f,
		cancel: t,
		stats:  &QueryStats{Shards: f.c.Shards(), Topology: f.c.Topology},
		link:   map[dirKey]float64{},
	}
	q.party = f.adm.Join(t.Err)
	if t != nil {
		t.OnCancel(f.adm.Wake)
	}
	return q
}

// FabricStats is the aggregate, cross-query view of the shared fabric:
// the contention counters plus link utilization over the fabric's total
// busy time. Per-query views live in QueryStats.
type FabricStats struct {
	Topology string
	// Rounds, PeakFlows and PeakQueries summarize admission: how many
	// bulk-synchronous rounds ran, the most flows that coexisted in one
	// round, and the most queries whose flows shared a round. PeakQueries
	// > 1 is the direct witness that queries contended.
	Rounds      int
	PeakFlows   int
	PeakQueries int
	// BusySeconds is the virtual time the fabric carried at least one
	// flow; Bytes is the total traffic admitted.
	BusySeconds float64
	Bytes       float64
	// MeanLinkUtil / MaxLinkUtil are computed over BusySeconds, so two
	// queries sharing rounds (overlapping in time) drive utilization
	// strictly above what either achieves alone.
	MeanLinkUtil float64
	MaxLinkUtil  float64
}

// Stats snapshots the fabric-wide aggregate.
func (f *Fabric) Stats() *FabricStats {
	a := f.adm.Stats()
	st := &FabricStats{
		Topology:    f.c.Topology,
		Rounds:      a.Rounds,
		PeakFlows:   a.PeakFlows,
		PeakQueries: a.PeakParties,
		BusySeconds: a.BusySeconds,
		Bytes:       a.Bytes,
	}
	if a.BusySeconds <= 0 {
		return st
	}
	loads := f.adm.LinkLoads()
	total := 0.0
	for _, l := range loads {
		util := l.Bytes / (f.c.Net.Links[l.LinkID].Speed.BytesPerSec() * a.BusySeconds)
		total += util
		if util > st.MaxLinkUtil {
			st.MaxLinkUtil = util
		}
	}
	if len(loads) > 0 {
		st.MeanLinkUtil = total / float64(len(loads))
	}
	return st
}

// Summary renders the aggregate as one human-readable block.
func (s *FabricStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: %s — %d admission rounds, peak %d concurrent queries / %d coexisting flows\n",
		s.Topology, s.Rounds, s.PeakQueries, s.PeakFlows)
	fmt.Fprintf(&b, "  %.0f bytes over %.3f ms busy; link utilization mean %.1f%%, max %.1f%%",
		s.Bytes, s.BusySeconds*1e3, s.MeanLinkUtil*100, s.MaxLinkUtil*100)
	return b.String()
}
