package dist

import "repro/internal/relational"

// Strategy selects how a relation's rows map to shards.
type Strategy int

const (
	// RangeShard cuts contiguous row ranges: shard i holds rows
	// [i·n/S, (i+1)·n/S). Shard order equals serial order, so
	// shard-ordered concatenation needs no re-sorting.
	RangeShard Strategy = iota
	// HashShard hashes a key column: co-locates equal keys, survives
	// skew badly but makes single-key lookups local. Rows keep their
	// relative order within each shard.
	HashShard
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == HashShard {
		return "hash"
	}
	return "range"
}

// SeqColName is the hidden Int column appended to every shard relation,
// carrying each row's index in the original relation. '#' cannot appear
// in a SQL identifier, so user queries can never reference or collide
// with it. Every shard-local stream stays #seq-ascending through
// filters, projections and probe-driven joins, which is what lets the
// coordinator's k-way merge reproduce the single-node row order exactly.
const SeqColName = "#seq"

// ShardedTable is one relation partitioned across the cluster's workers.
type ShardedTable struct {
	Rel      *relational.Relation
	Strategy Strategy
	KeyCol   int // hash key column; -1 under RangeShard
	// Shards[i] lives on cluster worker i. Schema is Rel.Schema plus the
	// trailing #seq column.
	Shards []*relational.Relation
}

// ShardRelation splits rel across shards workers using the given
// strategy (keyCol names the hash column; ignored for RangeShard).
func ShardRelation(rel *relational.Relation, shards int, strategy Strategy, keyCol int) *ShardedTable {
	schema := append(append(relational.Schema{}, rel.Schema...),
		relational.Column{Name: SeqColName, Type: relational.Int})
	t := &ShardedTable{Rel: rel, Strategy: strategy, KeyCol: keyCol, Shards: make([]*relational.Relation, shards)}
	if strategy != HashShard {
		t.KeyCol = -1
	}
	for i := range t.Shards {
		t.Shards[i] = relational.NewRelation(rel.Name, schema)
	}
	n := len(rel.Rows)
	for i, row := range rel.Rows {
		s := 0
		if strategy == HashShard {
			s = int(hashValue(row[keyCol]) % uint64(shards))
		} else if n > 0 {
			s = i * shards / n
		}
		tagged := make(relational.Row, 0, len(row)+1)
		tagged = append(tagged, row...)
		tagged = append(tagged, relational.IntV(int64(i)))
		t.Shards[s].Rows = append(t.Shards[s].Rows, tagged)
	}
	return t
}

// SeqCol returns the index of the #seq column in the shard schema.
func (t *ShardedTable) SeqCol() int { return len(t.Rel.Schema) }

// ShardFor returns the destination shard of row idx (of total rows)
// under the given placement strategy — the same mapping ShardRelation
// applies, exposed so the streaming ingest path can bill an appended
// row's movement to the shard it will land on when the table is next
// (re)sharded. keyCol is ignored for RangeShard.
func ShardFor(strategy Strategy, keyCol, shards int, row relational.Row, idx, total int) int {
	if shards <= 0 {
		return 0
	}
	if strategy == HashShard {
		return int(hashValue(row[keyCol]) % uint64(shards))
	}
	if total <= 0 {
		return 0
	}
	return idx * shards / total
}

// SourceRows returns how many source rows the placement covers. Callers
// caching placements compare it against the live relation's length to
// detect appends since sharding (mirroring Relation.Columnar's own
// append detection).
func (t *ShardedTable) SourceRows() int {
	n := 0
	for _, s := range t.Shards {
		n += len(s.Rows)
	}
	return n
}

// hashValue is the FNV-1a hash of a value's type-tagged key form, shared
// by table sharding and shuffle repartitioning so both place equal keys
// identically.
func hashValue(v relational.Value) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(v.Key()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
