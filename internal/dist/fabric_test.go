package dist

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFabricSharedContention: two QueryRuns on one fabric share rounds;
// each sees strictly more network time than an identical isolated run,
// and the fabric aggregate reports the coexistence.
func TestFabricSharedContention(t *testing.T) {
	// Two 2-phase queries whose phases are anti-aligned: in round 1 each
	// query moves worker-to-worker on disjoint links; in round 2 both
	// gather to the coordinator and share its downlink. The overlap keeps
	// links busy through windows they would idle through in isolation, so
	// the aggregate utilization rises while each query's own time
	// stretches.
	phases := [2][2][]Transfer{
		{{{Src: 0, Dst: 1, Bytes: 8e6}}, {{Src: 2, Dst: Coordinator, Bytes: 8e6}}},
		{{{Src: 2, Dst: 3, Bytes: 8e6}}, {{Src: 0, Dst: Coordinator, Bytes: 8e6}}},
	}

	solo := func(q int) *QueryStats {
		c, err := NewCluster("single", 4)
		if err != nil {
			t.Fatal(err)
		}
		qr := NewFabric(c).NewQuery()
		for pi, ts := range phases[q] {
			if err := qr.RunPhase([]string{"move", "gather"}[pi], append([]Transfer{}, ts...)); err != nil {
				t.Fatal(err)
			}
		}
		return qr.Finish()
	}
	solos := []*QueryStats{solo(0), solo(1)}
	for q, s := range solos {
		if s.NetSeconds <= 0 || s.MaxLinkUtil <= 0 || s.MaxLinkUtil > 1+1e-9 {
			t.Fatalf("solo %d stats out of range: %+v", q, s)
		}
	}

	c, err := NewCluster("single", 4)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(c)
	f.Expect(2)
	stats := make([]*QueryStats, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr := f.NewQuery()
			defer qr.Close()
			for pi, ts := range phases[i] {
				if err := qr.RunPhase([]string{"move", "gather"}[pi], append([]Transfer{}, ts...)); err != nil {
					t.Error(err)
					return
				}
			}
			stats[i] = qr.Finish()
		}(i)
	}
	wg.Wait()
	for i, s := range stats {
		if s == nil {
			t.Fatal("missing stats")
		}
		if s.NetSeconds <= solos[i].NetSeconds {
			t.Fatalf("query %d: contended %.6fs must exceed solo %.6fs", i, s.NetSeconds, solos[i].NetSeconds)
		}
		// Per-query utilization attributes only the query's own bytes over
		// its own (stretched) window, so it stays within [0, 1].
		if s.MaxLinkUtil <= 0 || s.MaxLinkUtil > 1+1e-9 {
			t.Fatalf("query %d: per-query util out of range: %v", i, s.MaxLinkUtil)
		}
	}
	fs := f.Stats()
	if fs.PeakQueries != 2 || fs.Rounds != 2 || fs.PeakFlows != 2 {
		t.Fatalf("fabric aggregate missed the coexistence: %+v", fs)
	}
	if fs.MaxLinkUtil <= solos[0].MaxLinkUtil || fs.MaxLinkUtil <= solos[1].MaxLinkUtil {
		t.Fatalf("aggregate util %.4f must exceed solo %.4f / %.4f",
			fs.MaxLinkUtil, solos[0].MaxLinkUtil, solos[1].MaxLinkUtil)
	}
	if !strings.Contains(fs.Summary(), "peak 2 concurrent queries") {
		t.Fatalf("summary: %s", fs.Summary())
	}
}

// TestQueryRunCloseIdempotent: Close on every path (and after Finish)
// must be safe, and an abandoned-then-closed query must not wedge the
// fabric for followers.
func TestQueryRunCloseIdempotent(t *testing.T) {
	c, err := NewCluster("single", 2)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(c)
	q1 := f.NewQuery()
	q1.Close()
	q1.Close()
	q1.Finish()
	q2 := f.NewQuery()
	if err := q2.RunPhase("move", []Transfer{{Src: 0, Dst: 1, Bytes: 1e6}}); err != nil {
		t.Fatal(err)
	}
	if s := q2.Finish(); s.NetSeconds <= 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestSlotWithdrawOnce: regression for the double-withdraw over-release.
// A workload whose error handling has two release sites (an error path
// plus a cancellation hook) used to call Fabric.Withdraw twice for one
// failure, dropping the barrier floor by 2 — a round could then run
// before a genuinely expected query arrived. A Slot releases exactly
// once no matter how many paths fire: after Expect(3) and one failed
// party double-withdrawing through its Slot, a single live party must
// still park at the barrier until the second arrives.
func TestSlotWithdrawOnce(t *testing.T) {
	c, err := NewCluster("single", 4)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(c)
	f.Expect(3)

	// The failed party's cleanup fires from two goroutines at once.
	slot := f.Claim()
	var cleanup sync.WaitGroup
	for i := 0; i < 2; i++ {
		cleanup.Add(1)
		go func() {
			defer cleanup.Done()
			slot.Withdraw()
		}()
	}
	cleanup.Wait()
	var nilSlot *Slot
	nilSlot.Withdraw() // nil handle: no-op, not a panic

	// Party A alone must wait: the floor is 2, not 1.
	var aDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		qr := f.NewQuery()
		defer qr.Close()
		if err := qr.RunPhase("move", []Transfer{{Src: 0, Dst: 1, Bytes: 1e6}}); err != nil {
			t.Error(err)
		}
		qr.Finish()
		aDone.Store(true)
	}()
	time.Sleep(50 * time.Millisecond)
	if aDone.Load() {
		t.Fatal("single party ran a round: the double Withdraw over-released the barrier floor")
	}

	// Party B joins; the round runs and both complete.
	qr := f.NewQuery()
	defer qr.Close()
	if err := qr.RunPhase("move", []Transfer{{Src: 2, Dst: 3, Bytes: 1e6}}); err != nil {
		t.Fatal(err)
	}
	qr.Finish()
	wg.Wait()
	if !aDone.Load() {
		t.Fatal("party A never completed")
	}
}
