package dist

import (
	"testing"

	"repro/internal/relational"
)

func testRel(n int) *relational.Relation {
	rel := relational.NewRelation("t", relational.Schema{
		{Name: "k", Type: relational.Int},
		{Name: "s", Type: relational.String},
	})
	for i := 0; i < n; i++ {
		rel.MustAppend(relational.Row{relational.IntV(int64(i % 7)), relational.StringV("v")})
	}
	return rel
}

// TestShardRelationRange: contiguous ranges, all rows tagged with their
// global index, shard-local order ascending.
func TestShardRelationRange(t *testing.T) {
	rel := testRel(100)
	st := ShardRelation(rel, 8, RangeShard, -1)
	if st.SeqCol() != 2 {
		t.Fatalf("seq col = %d", st.SeqCol())
	}
	total, next := 0, int64(0)
	for _, sh := range st.Shards {
		for _, row := range sh.Rows {
			if row[2].I != next {
				t.Fatalf("range sharding must keep global order: got seq %d want %d", row[2].I, next)
			}
			next++
			total++
		}
	}
	if total != 100 {
		t.Fatalf("lost rows: %d", total)
	}
}

// TestShardRelationHash: equal keys co-locate and per-shard seqs ascend.
func TestShardRelationHash(t *testing.T) {
	rel := testRel(100)
	st := ShardRelation(rel, 4, HashShard, 0)
	keyShard := map[int64]int{}
	total := 0
	for si, sh := range st.Shards {
		last := int64(-1)
		for _, row := range sh.Rows {
			if prev, ok := keyShard[row[0].I]; ok && prev != si {
				t.Fatalf("key %d split across shards %d and %d", row[0].I, prev, si)
			}
			keyShard[row[0].I] = si
			if row[2].I <= last {
				t.Fatalf("shard %d not seq-ascending: %d after %d", si, row[2].I, last)
			}
			last = row[2].I
			total++
		}
	}
	if total != 100 {
		t.Fatalf("lost rows: %d", total)
	}
}

// TestMergeBySeq reconstructs the original relation from its shards.
func TestMergeBySeq(t *testing.T) {
	rel := testRel(57)
	for _, strat := range []Strategy{RangeShard, HashShard} {
		st := ShardRelation(rel, 5, strat, 0)
		merged := MergeBySeq("m", st.Shards, st.SeqCol(), true)
		if len(merged.Rows) != 57 || len(merged.Schema) != 2 {
			t.Fatalf("%v: merged %d rows, %d cols", strat, len(merged.Rows), len(merged.Schema))
		}
		for i, row := range merged.Rows {
			if row[0].I != rel.Rows[i][0].I {
				t.Fatalf("%v: row %d differs", strat, i)
			}
		}
	}
}

// TestRepartition: buckets by hash, destinations seq-sorted, transfers
// only for rows that change shards.
func TestRepartition(t *testing.T) {
	rel := testRel(80)
	st := ShardRelation(rel, 4, RangeShard, -1)
	dests, transfers := Repartition(st.Shards, 0, st.SeqCol())
	total := 0
	for d, rel2 := range dests {
		last := int64(-1)
		for _, row := range rel2.Rows {
			if got := int(hashValue(row[0]) % 4); got != d {
				t.Fatalf("row with key %d landed on shard %d, want %d", row[0].I, d, got)
			}
			if row[2].I <= last {
				t.Fatalf("dest %d not seq-sorted", d)
			}
			last = row[2].I
			total++
		}
	}
	if total != 80 {
		t.Fatalf("lost rows: %d", total)
	}
	for _, tr := range transfers {
		if tr.Src == tr.Dst || tr.Bytes <= 0 {
			t.Fatalf("bogus transfer %+v", tr)
		}
	}
}

// TestBroadcast: the merged build side is the original serial order and
// every non-empty shard ships to every other shard.
func TestBroadcast(t *testing.T) {
	rel := testRel(40)
	st := ShardRelation(rel, 4, HashShard, 0)
	merged, transfers := Broadcast(st.Shards, st.SeqCol(), true)
	if len(merged.Rows) != 40 {
		t.Fatalf("merged %d rows", len(merged.Rows))
	}
	for i, row := range merged.Rows {
		if row[0].I != rel.Rows[i][0].I {
			t.Fatalf("broadcast build side out of order at %d", i)
		}
	}
	nonEmpty := 0
	for _, sh := range st.Shards {
		if len(sh.Rows) > 0 {
			nonEmpty++
		}
	}
	if want := nonEmpty * 3; len(transfers) != want {
		t.Fatalf("got %d transfers, want %d", len(transfers), want)
	}
}

// TestClusterPhases: every topology hosts the cluster, routes flows and
// reports a positive makespan and link loads.
func TestClusterPhases(t *testing.T) {
	for _, name := range Topologies {
		c, err := NewCluster(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c.Shards() != 4 {
			t.Fatalf("%s: %d shards", name, c.Shards())
		}
		if sec := c.PathSeconds(0, Coordinator, 1e6); sec <= 0 {
			t.Fatalf("%s: path pricing returned %v", name, sec)
		}
		qr := c.NewQuery()
		if err := qr.RunPhase("shuffle", []Transfer{
			{Src: 0, Dst: 1, Bytes: 1e6},
			{Src: 1, Dst: 2, Bytes: 2e6},
			{Src: 3, Dst: 3, Bytes: 1e6}, // same host: skipped
			{Src: 2, Dst: 0, Bytes: 0},   // empty: skipped
		}); err != nil {
			t.Fatal(err)
		}
		if err := qr.RunPhase("gather", GatherTransfers([]float64{1e5, 0, 1e5, 1e5})); err != nil {
			t.Fatal(err)
		}
		s := qr.Finish()
		if s.Flows != 5 || s.BytesShuffled != 3.3e6 {
			t.Fatalf("%s: flows=%d bytes=%v", name, s.Flows, s.BytesShuffled)
		}
		if s.NetSeconds <= 0 || len(s.Phases) != 2 || s.Phases[0].Seconds <= 0 {
			t.Fatalf("%s: bad phase accounting: %+v", name, s)
		}
		if s.MaxLinkUtil <= 0 || len(s.Links) == 0 {
			t.Fatalf("%s: missing link accounting", name)
		}
	}
	if _, err := NewCluster("nonsense", 2); err == nil {
		t.Fatal("expected unknown-topology error")
	}
}

// TestRunPartialAggs: per-shard partials merged by seq reproduce the
// global first-seen group order.
func TestRunPartialAggs(t *testing.T) {
	rel := testRel(63) // keys cycle 0..6: first-seen order 0,1,2,...,6
	st := ShardRelation(rel, 4, HashShard, 0)
	frags := make([]relational.BatchOp, len(st.Shards))
	for i, sh := range st.Shards {
		frags[i] = relational.NewBatchScan(sh)
	}
	aggs := []relational.AggSpec{{Fn: relational.CountAgg, Col: -1, Name: "n"}}
	partials, err := RunPartialAggs(frags, []int{0}, aggs, st.SeqCol(), 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged := partials[0]
	for _, pa := range partials[1:] {
		merged.MergeFrom(pa)
	}
	schema, err := relational.AggOutputSchema(relational.Schema{{Name: "k", Type: relational.Int}}, []int{0}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	rows := merged.EmitRows(schema, true)
	if len(rows) != 7 {
		t.Fatalf("got %d groups", len(rows))
	}
	for i, row := range rows {
		if row[0].I != int64(i) || row[1].I != 9 {
			t.Fatalf("group %d: got key %d count %d", i, row[0].I, row[1].I)
		}
	}
}
