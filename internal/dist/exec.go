package dist

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/relational"
)

// fragAbort is the cross-shard abort flag of one fragment run: the first
// failing shard records its error, and every other shard observes the
// flag at its next batch boundary through the abortable wrapper instead
// of draining its full input.
type fragAbort struct {
	tripped atomic.Bool
	mu      sync.Mutex
	err     error
}

func (a *fragAbort) abort(err error) {
	if err == nil {
		return
	}
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
	a.tripped.Store(true)
}

// Err returns the first recorded error.
func (a *fragAbort) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// abortable surfaces a sibling shard's failure into this shard's stream
// at the next batch boundary. It partitions like its child, so the
// check also reaches every intra-shard Exchange worker.
type abortable struct {
	child relational.BatchOp
	flag  *fragAbort
}

// Schema implements relational.BatchOp.
func (a *abortable) Schema() relational.Schema { return a.child.Schema() }

// NextBatch implements relational.BatchOp.
func (a *abortable) NextBatch() (*relational.Batch, error) {
	if a.flag.tripped.Load() {
		return nil, a.flag.Err()
	}
	return a.child.NextBatch()
}

// Stats implements relational.BatchOp.
func (a *abortable) Stats() relational.OpStats { return a.child.Stats() }

// Partition implements relational.Partitioner.
func (a *abortable) Partition(n int, static bool) []relational.BatchOp {
	p, ok := a.child.(relational.Partitioner)
	if !ok {
		return nil
	}
	parts := p.Partition(n, static)
	out := make([]relational.BatchOp, len(parts))
	for i, cp := range parts {
		out[i] = &abortable{child: cp, flag: a.flag}
	}
	return out
}

// RunFragments executes one shard-local operator tree per worker
// concurrently — each shard is its own simulated host — and materializes
// each stream into a relation. workers caps intra-shard morsel
// parallelism (the per-host core count; 0 = NumCPU). The shards share an
// abort flag: one failing shard stops its siblings at their next batch
// boundary.
func RunFragments(name string, frags []relational.BatchOp, workers int) ([]*relational.Relation, error) {
	outs := make([]*relational.Relation, len(frags))
	errs := make([]error, len(frags))
	flag := &fragAbort{}
	var wg sync.WaitGroup
	for i, f := range frags {
		wg.Add(1)
		go func(i int, f relational.BatchOp) {
			defer wg.Done()
			op := relational.RowsOf(relational.NewExchange(&abortable{child: f, flag: flag}, workers))
			outs[i], errs[i] = relational.Collect(op, name)
			flag.abort(errs[i])
		}(i, f)
	}
	wg.Wait()
	if err := flag.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// RunPartialAggs drains one shard-local fragment per worker concurrently
// into a private PartialAgg, tagging each group's first appearance with
// the stream's seqCol so the coordinator can merge partials into the
// exact single-node first-seen order. As in RunFragments, the shards
// share an abort flag so one failure stops the others early. disp, when
// non-nil, routes shard i's per-batch partial updates through disp[i] —
// each simulated worker host placing its aggregation morsels on its own
// device set (nil slice or entries keep the homogeneous engine).
// budgets, when non-nil, charges shard i's group state against
// budgets[i] — each simulated host accounting its own memory — and
// spills overflowing generations to the budget's tier (nil slice or
// entries keep the unbudgeted engine, bit-identically).
func RunPartialAggs(frags []relational.BatchOp, groupCols []int, aggs []relational.AggSpec, seqCol, workers int, disp []*exec.Dispatcher, budgets []*relational.MemoryBudget) ([]*relational.PartialAgg, error) {
	out := make([]*relational.PartialAgg, len(frags))
	errs := make([]error, len(frags))
	flag := &fragAbort{}
	var wg sync.WaitGroup
	for i, f := range frags {
		wg.Add(1)
		go func(i int, f relational.BatchOp) {
			defer wg.Done()
			var di *exec.Dispatcher
			if i < len(disp) {
				di = disp[i]
			}
			var bg *relational.MemoryBudget
			if i < len(budgets) {
				bg = budgets[i]
			}
			sa := relational.NewSpillableAgg(groupCols, aggs, bg, nil)
			op := relational.NewExchange(&abortable{child: f, flag: flag}, workers)
			// The Exchange must be drained to end-of-stream even after an
			// observation error, or its workers stay blocked on their
			// bounded channels; tripping the flag first makes the drain
			// terminate at the next batch boundary.
			drain := func() {
				for {
					if b, err := op.NextBatch(); b == nil || err != nil {
						return
					}
				}
			}
			for {
				b, err := op.NextBatch()
				if err != nil {
					errs[i] = err
					flag.abort(err)
					return
				}
				if b == nil {
					out[i] = sa.Finish()
					return
				}
				if err := di.Run(b.Len(), func() error { return sa.ObserveBatch(b, seqCol) }); err != nil {
					errs[i] = err
					flag.abort(err)
					drain()
					return
				}
			}
		}(i, f)
	}
	wg.Wait()
	if err := flag.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEachBySeq visits every row of the per-shard relations in ascending
// seqCol order, calling fn(shard, rowIndex) per row. Every input must be
// seq-ascending (shard streams are by construction); equal tags — join
// fan-out duplicates — can only occur within one shard (the strict '<'
// then keeps that shard's run together), so the visit order is a total
// deterministic order equal to the single-node row order. MergeBySeq and
// the planner's re-sequencing both iterate through it, keeping the
// tie-break rule in one place.
func ForEachBySeq(shards []*relational.Relation, seqCol int, fn func(shard, row int)) {
	pos := make([]int, len(shards))
	for {
		best := -1
		var bestSeq int64
		for i, s := range shards {
			if pos[i] >= len(s.Rows) {
				continue
			}
			if seq := s.Rows[pos[i]][seqCol].I; best < 0 || seq < bestSeq {
				best, bestSeq = i, seq
			}
		}
		if best < 0 {
			return
		}
		fn(best, pos[best])
		pos[best]++
	}
}

// MergeBySeq k-way merges per-shard relations on the seqCol column into
// one relation. strip drops the seq column (which must be the last) from
// the output rows.
func MergeBySeq(name string, shards []*relational.Relation, seqCol int, strip bool) *relational.Relation {
	schema := shards[0].Schema
	if strip {
		schema = schema[:seqCol]
	}
	out := relational.NewRelation(name, schema)
	total := 0
	for _, s := range shards {
		total += len(s.Rows)
	}
	out.Rows = make([]relational.Row, 0, total)
	ForEachBySeq(shards, seqCol, func(shard, row int) {
		r := shards[shard].Rows[row]
		if strip {
			r = r[:seqCol]
		}
		out.Rows = append(out.Rows, r)
	})
	return out
}

// Repartition hashes each shard relation's rows on keyCol into one
// bucket per destination shard and reassembles every destination's
// bucket sorted by seqCol (stable, so fan-out duplicates keep their
// order). It returns the per-destination relations plus the transfers
// crossing the fabric (rows whose bucket is their current shard move no
// bytes).
func Repartition(shards []*relational.Relation, keyCol, seqCol int) ([]*relational.Relation, []Transfer) {
	s := len(shards)
	dests := make([]*relational.Relation, s)
	for i := range dests {
		dests[i] = relational.NewRelation(shards[0].Name, shards[0].Schema)
	}
	var transfers []Transfer
	for src, rel := range shards {
		bytesTo := make([]float64, s)
		for _, row := range rel.Rows {
			d := int(hashValue(row[keyCol]) % uint64(s))
			dests[d].Rows = append(dests[d].Rows, row)
			if d != src {
				bytesTo[d] += row.EncodedBytes()
			}
		}
		for d, b := range bytesTo {
			if b > 0 {
				transfers = append(transfers, Transfer{Src: src, Dst: d, Bytes: b})
			}
		}
	}
	for _, d := range dests {
		rows := d.Rows
		sort.SliceStable(rows, func(i, j int) bool { return rows[i][seqCol].I < rows[j][seqCol].I })
	}
	return dests, transfers
}

// Broadcast replicates the union of the shard relations to every worker:
// it returns the seq-merged relation (the build side every shard will
// probe against, in exact serial order, seq column stripped when strip)
// plus the all-to-all transfer list.
func Broadcast(shards []*relational.Relation, seqCol int, strip bool) (*relational.Relation, []Transfer) {
	merged := MergeBySeq(shards[0].Name, shards, seqCol, strip)
	var transfers []Transfer
	for src, rel := range shards {
		b := rel.EncodedBytes()
		if b <= 0 {
			continue
		}
		for dst := range shards {
			if dst != src {
				transfers = append(transfers, Transfer{Src: src, Dst: dst, Bytes: b})
			}
		}
	}
	return merged, transfers
}

// GatherTransfers returns the flows shipping each shard's bytes to the
// coordinator.
func GatherTransfers(bytes []float64) []Transfer {
	var out []Transfer
	for i, b := range bytes {
		if b > 0 {
			out = append(out, Transfer{Src: i, Dst: Coordinator, Bytes: b})
		}
	}
	return out
}
