package dist

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/relational"
)

var chunkSizes = []int{1, 7, 32, 1000}

// TestRepartitionChunksParity: chunked repartition lands exactly the
// bulk destinations, its per-(src,dst) bytes sum to the bulk transfers,
// and each destination's cum counts are a prefix walk of its bucket.
func TestRepartitionChunksParity(t *testing.T) {
	rel := testRel(123)
	st := ShardRelation(rel, 4, RangeShard, -1)
	bulkDests, bulkTransfers := Repartition(st.Shards, 0, st.SeqCol())
	bulkBytes := map[[2]int]float64{}
	for _, tr := range bulkTransfers {
		bulkBytes[[2]int{tr.Src, tr.Dst}] += tr.Bytes
	}
	for _, cr := range chunkSizes {
		dests, chunks, cum := RepartitionChunks(st.Shards, 0, st.SeqCol(), cr)
		for d := range dests {
			if len(dests[d].Rows) != len(bulkDests[d].Rows) {
				t.Fatalf("cr=%d dest %d: %d rows want %d", cr, d, len(dests[d].Rows), len(bulkDests[d].Rows))
			}
			for i := range dests[d].Rows {
				if dests[d].Rows[i][st.SeqCol()].I != bulkDests[d].Rows[i][st.SeqCol()].I {
					t.Fatalf("cr=%d dest %d row %d differs", cr, d, i)
				}
			}
		}
		got := map[[2]int]float64{}
		totalCompute := 0.0
		for _, ch := range chunks {
			for _, tr := range ch.Transfers {
				if tr.Bytes <= 0 || tr.Src == tr.Dst {
					t.Fatalf("cr=%d bogus chunk transfer %+v", cr, tr)
				}
				got[[2]int{tr.Src, tr.Dst}] += tr.Bytes
			}
			totalCompute += ch.ComputeBytes
		}
		if len(got) != len(bulkBytes) {
			t.Fatalf("cr=%d: %d flow pairs want %d", cr, len(got), len(bulkBytes))
		}
		for k, b := range bulkBytes {
			if got[k] != b {
				t.Fatalf("cr=%d pair %v: %v bytes want %v", cr, k, got[k], b)
			}
		}
		if want := rel.EncodedBytes() + 8*float64(len(rel.Rows)); totalCompute != want {
			// every row (seq col included) is digested exactly once
			t.Fatalf("cr=%d compute bytes %v want %v", cr, totalCompute, want)
		}
		last := cum[len(cum)-1]
		for d := range dests {
			if last[d] != len(dests[d].Rows) {
				t.Fatalf("cr=%d dest %d final cum %d want %d", cr, d, last[d], len(dests[d].Rows))
			}
		}
		for g := 1; g < len(cum); g++ {
			for d := range cum[g] {
				if cum[g][d] < cum[g-1][d] {
					t.Fatalf("cr=%d cum not monotone at chunk %d dest %d", cr, g, d)
				}
			}
		}
	}
}

// TestBroadcastChunksParity: the chunked broadcast's merged build side
// matches bulk, and each source's chunk bytes sum to its bulk relation
// bytes.
func TestBroadcastChunksParity(t *testing.T) {
	rel := testRel(60)
	st := ShardRelation(rel, 4, HashShard, 0)
	bulkMerged, bulkTransfers := Broadcast(st.Shards, st.SeqCol(), true)
	bulkPerSrc := map[int]float64{}
	for _, tr := range bulkTransfers {
		bulkPerSrc[tr.Src] += tr.Bytes
	}
	for _, cr := range chunkSizes {
		merged, chunks, bounds := BroadcastChunks(st.Shards, st.SeqCol(), true, cr)
		if len(merged.Rows) != len(bulkMerged.Rows) {
			t.Fatalf("cr=%d merged %d rows want %d", cr, len(merged.Rows), len(bulkMerged.Rows))
		}
		for i := range merged.Rows {
			if merged.Rows[i][0].I != bulkMerged.Rows[i][0].I {
				t.Fatalf("cr=%d merged row %d differs", cr, i)
			}
		}
		perSrc := map[int]float64{}
		for _, ch := range chunks {
			for _, tr := range ch.Transfers {
				if tr.Bytes <= 0 || tr.Src == tr.Dst || tr.Dst == Coordinator {
					t.Fatalf("cr=%d bogus transfer %+v", cr, tr)
				}
				perSrc[tr.Src] += tr.Bytes
			}
		}
		for src, b := range bulkPerSrc {
			if perSrc[src] != b {
				t.Fatalf("cr=%d src %d: %v bytes want %v", cr, src, perSrc[src], b)
			}
		}
		if bounds[len(bounds)-1] != len(merged.Rows) {
			t.Fatalf("cr=%d final bound %d want %d", cr, bounds[len(bounds)-1], len(merged.Rows))
		}
	}
}

// TestGatherChunksSeqMerger: taking each chunk's bound from a SeqMerger
// reconstructs MergeBySeq row for row, and chunk bytes sum to the bulk
// per-shard bytes.
func TestGatherChunksSeqMerger(t *testing.T) {
	rel := testRel(91)
	st := ShardRelation(rel, 3, HashShard, 0)
	bulk := MergeBySeq("m", st.Shards, st.SeqCol(), true)
	for _, cr := range chunkSizes {
		chunks, bounds := GatherChunks(st.Shards, st.SeqCol(), cr)
		perShard := make([]float64, 3)
		for _, ch := range chunks {
			for _, tr := range ch.Transfers {
				if tr.Dst != Coordinator || tr.Bytes <= 0 {
					t.Fatalf("cr=%d bogus transfer %+v", cr, tr)
				}
				perShard[tr.Src] += tr.Bytes
			}
		}
		for i, sh := range st.Shards {
			if want := sh.EncodedBytes(); perShard[i] != want {
				t.Fatalf("cr=%d shard %d: %v bytes want %v", cr, i, perShard[i], want)
			}
		}
		out := relational.NewRelation("m", bulk.Schema)
		m := NewSeqMerger(st.Shards, st.SeqCol())
		for _, b := range bounds {
			m.Take(b, func(shard, row int) {
				out.Rows = append(out.Rows, st.Shards[shard].Rows[row][:st.SeqCol()])
			})
		}
		if len(out.Rows) != len(bulk.Rows) {
			t.Fatalf("cr=%d merged %d rows want %d", cr, len(out.Rows), len(bulk.Rows))
		}
		for i := range out.Rows {
			if out.Rows[i][0].I != bulk.Rows[i][0].I {
				t.Fatalf("cr=%d row %d differs", cr, i)
			}
		}
	}
}

// TestEmptyShardNoZeroByteFlows: empty shards must not emit zero-byte
// transfers that would join admission rounds — on the bulk emitters and
// on every chunked path.
func TestEmptyShardNoZeroByteFlows(t *testing.T) {
	empty := relational.NewRelation("t", relational.Schema{
		{Name: "k", Type: relational.Int},
		{Name: "seq", Type: relational.Int},
	})
	full := relational.NewRelation("t", empty.Schema)
	for i := 0; i < 10; i++ {
		full.MustAppend(relational.Row{relational.IntV(int64(i)), relational.IntV(int64(i))})
	}
	shards := []*relational.Relation{empty, full, empty}
	if got := GatherTransfers([]float64{0, 5, 0}); len(got) != 1 || got[0].Src != 1 {
		t.Fatalf("GatherTransfers kept zero-byte flows: %+v", got)
	}
	_, transfers := Repartition(shards, 0, 1)
	for _, tr := range transfers {
		if tr.Bytes <= 0 {
			t.Fatalf("Repartition emitted zero-byte transfer %+v", tr)
		}
	}
	_, bTransfers := Broadcast(shards, 1, false)
	for _, tr := range bTransfers {
		if tr.Bytes <= 0 || tr.Src != 1 {
			t.Fatalf("Broadcast emitted transfer from empty shard: %+v", tr)
		}
	}
	_, chunks, _ := RepartitionChunks(shards, 0, 1, 4)
	_, bChunks, _ := BroadcastChunks(shards, 1, false, 4)
	gChunks, _ := GatherChunks(shards, 1, 4)
	for _, set := range [][]Chunk{chunks, bChunks, gChunks} {
		for _, ch := range set {
			for _, tr := range ch.Transfers {
				if tr.Bytes <= 0 {
					t.Fatalf("chunked path emitted zero-byte transfer %+v", tr)
				}
			}
		}
	}
}

// pipelineChunks builds n identical test chunks moving bytes 0→1 with
// the given per-chunk compute bytes.
func pipelineChunks(n int, bytes, compute float64) []Chunk {
	out := make([]Chunk, n)
	for i := range out {
		out[i] = Chunk{
			Transfers:    []Transfer{{Src: 0, Dst: 1, Bytes: bytes}},
			ComputeBytes: compute,
		}
	}
	return out
}

// TestRunPipelinedOverlap: consumers run once each in order, and the
// measured overlap is positive for a multi-chunk phase, zero for a
// single chunk, and bounded by min(net, compute).
func TestRunPipelinedOverlap(t *testing.T) {
	c, err := NewCluster("single", 4)
	if err != nil {
		t.Fatal(err)
	}
	q := c.NewQuery()
	defer q.Close()
	var order []int
	err = q.RunPipelined("shuffle", pipelineChunks(4, 1e6, float64(1<<28)), "", 0, func(k int) error {
		order = append(order, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range order {
		if k != i {
			t.Fatalf("consume order %v", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("consume order %v", order)
	}
	st := q.Finish()
	if len(st.Phases) != 1 || st.Phases[0].Chunks != 4 {
		t.Fatalf("phases: %+v", st.Phases)
	}
	if st.NetSeconds <= 0 || st.ComputeSeconds <= 0 {
		t.Fatalf("net=%v compute=%v", st.NetSeconds, st.ComputeSeconds)
	}
	if st.OverlapSeconds <= 0 {
		t.Fatalf("multi-chunk phase hid no compute: %+v", st)
	}
	min := st.NetSeconds
	if st.ComputeSeconds < min {
		min = st.ComputeSeconds
	}
	if st.OverlapSeconds > min+1e-12 {
		t.Fatalf("overlap %v exceeds min(net,compute)=%v", st.OverlapSeconds, min)
	}
	if got, want := st.WallSeconds(), st.NetSeconds+st.ComputeSeconds-st.OverlapSeconds; got != want {
		t.Fatalf("wall %v want %v", got, want)
	}

	// Single chunk: strictly sequential, no overlap.
	c2, _ := NewCluster("single", 4)
	q2 := c2.NewQuery()
	defer q2.Close()
	if err := q2.RunPipelined("shuffle", pipelineChunks(1, 1e6, float64(1<<28)), "", 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st2 := q2.Finish(); st2.OverlapSeconds != 0 || st2.ComputeSeconds <= 0 {
		t.Fatalf("single chunk: %+v", st2)
	}
}

// TestRunPipelinedRepeatable: a solo pipelined phase replays with
// bit-identical network accounting.
func TestRunPipelinedRepeatable(t *testing.T) {
	run := func() *QueryStats {
		c, _ := NewCluster("leafspine", 4)
		q := c.NewQuery()
		defer q.Close()
		if err := q.RunPipelined("shuffle", pipelineChunks(5, 2e6, float64(1<<27)), "", 0, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return q.Finish()
	}
	a, b := run(), run()
	if a.NetSeconds != b.NetSeconds || a.OverlapSeconds != b.OverlapSeconds || a.ComputeSeconds != b.ComputeSeconds {
		t.Fatalf("replay differs: %+v vs %+v", a, b)
	}
}

// TestRunPipelinedConsumeError: a failing consumer aborts the phase with
// its error and the in-flight goroutine is joined (the test would hang
// or trip the race detector otherwise).
func TestRunPipelinedConsumeError(t *testing.T) {
	c, _ := NewCluster("single", 4)
	q := c.NewQuery()
	defer q.Close()
	boom := errors.New("boom")
	err := q.RunPipelined("shuffle", pipelineChunks(3, 1e6, 0), "", 0, func(k int) error {
		if k == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestRunPipelinedCancelMidChunk: tripping the query's cancel token
// between chunks aborts the phase promptly.
func TestRunPipelinedCancelMidChunk(t *testing.T) {
	c, _ := NewCluster("single", 4)
	tok := relational.NewCancelToken()
	q := NewFabric(c).NewQueryCancel(tok)
	defer q.Close()
	cancelErr := fmt.Errorf("query cancelled")
	n := 0
	err := q.RunPipelined("shuffle", pipelineChunks(4, 1e6, 0), "", 0, func(k int) error {
		n++
		tok.Cancel(cancelErr)
		return nil
	})
	if !errors.Is(err, cancelErr) {
		t.Fatalf("err = %v", err)
	}
	if n == 0 || n >= 4 {
		t.Fatalf("consumed %d chunks", n)
	}
}
