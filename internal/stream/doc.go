// Package stream drops the engine's "data is static" assumption: it is
// the streaming-execution subsystem that lets registered relations grow
// while continuous queries run over them.
//
// Three pieces cooperate:
//
//   - Source is the append handle of one growing relation. Batches of
//     timestamped rows feed through the sql engine's append path into
//     the catalog (snapshot-swapped, so running queries keep their
//     consistent view) and, on a distributed engine, every appended byte
//     is billed to the shared fabric as an "ingest"-class QoS flow that
//     contends with queries in the same admission rounds.
//
//   - Hub fans appended batches out to Subscriptions. The sql layer owns
//     exactly one Hub per Engine and publishes under the engine's
//     catalog lock, so subscription arrival order equals append order —
//     the property that makes windowed group emission order reproduce
//     the batch engine's first-seen order.
//
//   - Subscription evaluates one compiled continuous query (see
//     sql.Session.Subscribe) over tumbling or sliding event-time
//     windows. Windows are maintained incrementally: events fold into
//     per-pane partial aggregates (pane width = gcd(size, slide)), and a
//     closing window merges deep-copied pane snapshots — reusing the
//     PartialAgg/SpillableAgg machinery the batch and distributed
//     engines already share, so budgeted subscriptions spill window
//     state to the tiered store exactly like budgeted queries do.
//     Emission is watermark-driven (watermark = max event time seen
//     minus the allowed lateness); events behind the watermark but
//     inside a still-open window are accepted and counted late, events
//     whose every window has already emitted are counted dropped.
//
// The subsystem's contract mirrors every layer before it: a closed
// stream's final windowed results are row-for-row identical to the
// batch engine's answer over the fully materialized relation (assert
// DroppedEvents == 0 — a dropped event is in the relation but missed
// its window), and an engine with no streams configured touches none of
// this code.
package stream
