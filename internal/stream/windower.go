package stream

import (
	"fmt"

	"repro/internal/relational"
)

// windower is the incremental window-maintenance state machine of one
// subscription. It is not safe for concurrent use — the subscription's
// delivery goroutine owns it.
//
// Events bucket into panes of width gcd(Size, Slide); window boundaries
// are multiples of Slide and window length is Size, so every pane is
// fully contained in every window that touches it and a closing window
// is exactly the merge of Size/paneW consecutive pane aggregates. Panes
// hold SpillableAgg accumulators (budget-aware, transparent when the
// budget is nil); a window emission merges deep-copied pane snapshots so
// a pane feeding several sliding windows is never aliased into a merge
// that would mutate it.
type windower struct {
	q     *Query
	spec  WindowSpec
	paneW int64
	// preSeq is the pane batch schema: the pre-projection plus a trailing
	// Int #seq column carrying the global accepted-event ordinal. Feeding
	// it as the seq column makes EmitRows(bySeq) reproduce first-seen
	// order in append order — the batch engine's group order.
	preSeq relational.Schema
	seqCol int

	panes map[int64]*pane
	seq   int64 // accepted events (post-filter), append order
	// maxTime/seen track the watermark base; emittedUpTo seals windows:
	// once sealed, every window with start < emittedUpTo has emitted.
	maxTime     int64
	seen        bool
	sealed      bool
	emittedUpTo int64

	// counters for Stats.
	events, filtered, late, dropped int64
}

// pane is one pane's accumulated state: an aggregate in incremental
// mode, retained raw rows in recompute mode. snap memoizes the
// aggregate's snapshot between observations — a sliding window's pane is
// read by Size/Slide windows, and the snapshot only changes when a (late)
// event lands in the pane, so the common case pays one snapshot per pane
// instead of one per covering window.
type pane struct {
	agg    *relational.SpillableAgg
	snap   *relational.PartialAgg
	rows   []relational.Row
	events int64
	late   int64
}

// snapshot returns the pane's current aggregate state, memoized until
// the next event invalidates it. The result is only ever read via
// MergeCopy, which never aliases it.
func (p *pane) snapshot() *relational.PartialAgg {
	if p.snap == nil {
		p.snap = p.agg.Snapshot()
	}
	return p.snap
}

func newWindower(q *Query, spec WindowSpec) *windower {
	w := &windower{
		q:     q,
		spec:  spec,
		paneW: gcd(spec.Size, spec.Slide),
		panes: map[int64]*pane{},
	}
	w.preSeq = append(append(relational.Schema{}, q.PreSchema...),
		relational.Column{Name: "#seq", Type: relational.Int})
	w.seqCol = len(q.PreSchema)
	return w
}

// observe folds one published batch in, advances the watermark, and
// returns any windows that became emittable (ascending start order).
func (w *windower) observe(rows []relational.Row) ([]Window, error) {
	var batches map[int64]*relational.Batch
	var touched []int64
	for _, row := range rows {
		if w.q.Filter != nil {
			keep, err := w.q.Filter(row)
			if err != nil {
				return nil, err
			}
			if !keep {
				w.filtered++
				continue
			}
		}
		t := row[w.q.TimeCol].I
		// The latest window containing t starts at alignDown(t, Slide); if
		// even that one has emitted, the event has nowhere to land.
		if w.sealed && alignDown(t, w.spec.Slide) < w.emittedUpTo {
			w.dropped++
			continue
		}
		late := w.seen && t < w.maxTime
		if late {
			w.late++
		}
		if !w.seen || t > w.maxTime {
			w.maxTime, w.seen = t, true
		}
		pre := make(relational.Row, 0, len(w.q.PreExprs)+1)
		for _, ex := range w.q.PreExprs {
			v, err := ex(row)
			if err != nil {
				return nil, err
			}
			pre = append(pre, v)
		}
		pre = append(pre, relational.IntV(w.seq))
		w.seq++
		w.events++

		pS := alignDown(t, w.paneW)
		p := w.panes[pS]
		if p == nil {
			p = &pane{}
			if !w.spec.Recompute {
				p.agg = relational.NewSpillableAgg(w.q.GroupCols, w.q.AggSpecs, w.q.Budget, nil)
			}
			w.panes[pS] = p
		}
		p.events++
		p.snap = nil
		if late {
			p.late++
		}
		if w.spec.Recompute {
			p.rows = append(p.rows, pre)
			continue
		}
		if batches == nil {
			batches = map[int64]*relational.Batch{}
		}
		b := batches[pS]
		if b == nil {
			b = relational.NewBatch(w.preSeq, len(rows))
			batches[pS] = b
			touched = append(touched, pS)
		}
		b.AppendRow(pre)
	}
	for _, pS := range touched {
		if err := w.panes[pS].agg.ObserveBatch(batches[pS], w.seqCol); err != nil {
			return nil, err
		}
	}
	if !w.seen {
		return nil, nil
	}
	return w.advance(w.maxTime - w.spec.Lateness)
}

// flush emits every remaining window — the end-of-stream watermark.
func (w *windower) flush() ([]Window, error) {
	var out []Window
	for {
		s, ok := w.nextWindow()
		if !ok {
			return out, nil
		}
		win, err := w.emitWindow(s)
		if err != nil {
			return out, err
		}
		out = append(out, win)
		w.seal(s)
	}
}

// advance emits every window whose end the watermark has reached.
func (w *windower) advance(wm int64) ([]Window, error) {
	var out []Window
	for {
		s, ok := w.nextWindow()
		if !ok || s+w.spec.Size > wm {
			return out, nil
		}
		win, err := w.emitWindow(s)
		if err != nil {
			return out, err
		}
		out = append(out, win)
		w.seal(s)
	}
}

// nextWindow finds the earliest un-emitted window start covered by at
// least one live pane. Empty windows never emit — the batch engine's
// answer over an eventless range would be empty too (grouped queries)
// and enumerating them is unbounded for sparse streams.
func (w *windower) nextWindow() (int64, bool) {
	var sMin int64
	found := false
	for pS := range w.panes {
		lo := alignUp(pS+w.paneW-w.spec.Size, w.spec.Slide)
		if w.sealed && lo < w.emittedUpTo {
			lo = w.emittedUpTo
		}
		if lo > pS {
			continue
		}
		if !found || lo < sMin {
			sMin, found = lo, true
		}
	}
	return sMin, found
}

// seal marks window start s emitted and retires panes no future window
// can cover, releasing their budget reservations.
func (w *windower) seal(s int64) {
	w.emittedUpTo = s + w.spec.Slide
	w.sealed = true
	for pS, p := range w.panes {
		if pS < w.emittedUpTo {
			if p.agg != nil {
				p.agg.Discard()
			}
			delete(w.panes, pS)
		}
	}
}

// emitWindow materializes window [s, s+Size): merge pane snapshots
// (incremental) or re-aggregate retained rows (recompute baseline), emit
// groups in global first-seen order, apply the final projection.
func (w *windower) emitWindow(s int64) (Window, error) {
	acc := relational.NewPartialAgg(w.q.GroupCols, w.q.AggSpecs)
	var events, late int64
	for pS := s; pS < s+w.spec.Size; pS += w.paneW {
		p := w.panes[pS]
		if p == nil {
			continue
		}
		events += p.events
		late += p.late
		if w.spec.Recompute {
			b := relational.NewBatch(w.preSeq, len(p.rows))
			for _, r := range p.rows {
				b.AppendRow(r)
			}
			if err := acc.ObserveBatch(b, w.seqCol); err != nil {
				return Window{}, err
			}
			continue
		}
		acc.MergeCopy(p.snapshot())
	}
	aggRows := acc.EmitRows(w.q.AggSchema, true)
	rel := relational.NewRelation("window", w.q.OutSchema)
	for _, r := range aggRows {
		out := make(relational.Row, len(w.q.OutExprs))
		for i, ex := range w.q.OutExprs {
			v, err := ex(r)
			if err != nil {
				return Window{}, err
			}
			out[i] = v
		}
		if err := rel.Append(out); err != nil {
			return Window{}, fmt.Errorf("stream: window [%d,%d): %w", s, s+w.spec.Size, err)
		}
	}
	return Window{Start: s, End: s + w.spec.Size, Rows: rel, Events: events, Late: late}, nil
}
