package stream

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/relational"
)

// Hub fans appended batches out to the subscriptions of each table. The
// sql engine owns one Hub and publishes under its catalog lock, so every
// subscription sees batches in append order. All methods are safe for
// concurrent use; Publish and CloseTable never block on consumers
// (subscriptions queue internally and deliver from their own goroutine).
type Hub struct {
	mu     sync.Mutex
	subs   map[string][]*Subscription
	closed map[string]bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[string][]*Subscription{}, closed: map[string]bool{}}
}

// msg is one queued delivery: an ingest batch or the end-of-stream mark.
type msg struct {
	rows  []relational.Row
	at    time.Time
	close bool
}

// Publish enqueues one appended batch to every subscription of table.
// The caller serializes Publish calls in append order (the engine holds
// its catalog lock across swap-and-publish).
func (h *Hub) Publish(table string, rows []relational.Row) {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs[strings.ToLower(table)] {
		s.enqueue(msg{rows: rows, at: now})
	}
}

// CloseTable marks table's stream ended: every subscription flushes its
// remaining windows and completes, and later subscriptions to the table
// flush immediately. Idempotent.
func (h *Hub) CloseTable(table string) {
	name := strings.ToLower(table)
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed[name] {
		return
	}
	h.closed[name] = true
	for _, s := range h.subs[name] {
		s.enqueue(msg{at: now, close: true})
	}
	delete(h.subs, name)
}

// Reopen clears a closed mark: the catalog replaced the relation, so
// the name starts a fresh stream. Subscriptions to the old incarnation
// have already completed (CloseTable dropped them); new ones window the
// replacement.
func (h *Hub) Reopen(table string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.closed, strings.ToLower(table))
}

// TableClosed reports whether table's stream has ended.
func (h *Hub) TableClosed(table string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed[strings.ToLower(table)]
}

// Subscribe registers a continuous query. prime is the table's current
// row snapshot, delivered as the first batch (so results cover rows
// appended before the subscription too); the caller must hold whatever
// lock serializes appends while calling Subscribe, or primed rows could
// also arrive as published batches. ctx cancellation aborts delivery:
// the output channel closes without a final flush and Err reports the
// cause.
func (h *Hub) Subscribe(ctx context.Context, q *Query, spec WindowSpec, prime []relational.Row) (*Subscription, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	name := strings.ToLower(q.Table)
	s := &Subscription{
		hub:   h,
		table: name,
		win:   newWindower(q, spec),
		out:   make(chan Window, spec.Buffer),
		done:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	now := time.Now()
	if len(prime) > 0 {
		s.queue = append(s.queue, msg{rows: prime, at: now})
	}
	h.mu.Lock()
	if h.closed[name] {
		s.queue = append(s.queue, msg{at: now, close: true})
	} else {
		h.subs[name] = append(h.subs[name], s)
	}
	h.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cancelErr = context.Cause(ctx)
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	go s.run(ctx, stop)
	return s, nil
}

// remove drops a finished or cancelled subscription from the fan-out.
func (h *Hub) remove(sub *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	list := h.subs[sub.table]
	for i, s := range list {
		if s == sub {
			h.subs[sub.table] = append(list[:i:i], list[i+1:]...)
			return
		}
	}
}

// Subscription is one live continuous query: read emitted windows from
// Out until it closes (stream closed, context cancelled, or evaluation
// error — Err distinguishes), then read the final Stats.
type Subscription struct {
	hub   *Hub
	table string
	win   *windower
	out   chan Window
	done  chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []msg
	cancelErr error
	err       error
	windows   int64
	freshness []float64
}

// Out is the emission channel. It closes when the stream closes (after
// the final flush), the subscription's context is cancelled, or window
// evaluation fails.
func (s *Subscription) Out() <-chan Window { return s.out }

// Done closes when delivery has fully stopped (after Out closes).
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Err reports why Out closed: nil for a clean end-of-stream, the context
// cause for cancellation, or the evaluation error.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.cancelErr
}

// enqueue appends one delivery without blocking the publisher.
func (s *Subscription) enqueue(m msg) {
	s.mu.Lock()
	s.queue = append(s.queue, m)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// next blocks for the next delivery; ok is false on cancellation.
func (s *Subscription) next() (msg, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.cancelErr != nil {
			return msg{}, false
		}
		if len(s.queue) > 0 {
			m := s.queue[0]
			s.queue = s.queue[1:]
			return m, true
		}
		s.cond.Wait()
	}
}

// run is the delivery goroutine: drain the queue through the windower,
// emit windows, flush on close.
func (s *Subscription) run(ctx context.Context, stop func() bool) {
	defer close(s.done)
	defer close(s.out)
	defer stop()
	defer s.hub.remove(s)
	for {
		m, ok := s.next()
		if !ok {
			return
		}
		var wins []Window
		var err error
		if m.close {
			wins, err = s.win.flush()
		} else {
			wins, err = s.win.observe(m.rows)
		}
		if err != nil {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
			return
		}
		for _, w := range wins {
			w.FreshnessSeconds = time.Since(m.at).Seconds()
			s.mu.Lock()
			s.windows++
			s.freshness = append(s.freshness, w.FreshnessSeconds)
			s.mu.Unlock()
			select {
			case s.out <- w:
			case <-ctx.Done():
				s.mu.Lock()
				if s.cancelErr == nil {
					s.cancelErr = context.Cause(ctx)
				}
				s.mu.Unlock()
				return
			}
		}
		if m.close {
			return
		}
	}
}

// Stats snapshots the subscription's accounting. Final once Done.
func (s *Subscription) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.win
	st := Stats{
		Events:   w.events,
		Filtered: w.filtered,
		Late:     w.late,
		Dropped:  w.dropped,
		Windows:  s.windows,
	}
	if n := len(s.freshness); n > 0 {
		fr := append([]float64(nil), s.freshness...)
		sort.Float64s(fr)
		st.FreshnessP50 = fr[n/2]
		st.FreshnessP95 = fr[(n*95)/100]
		st.FreshnessMax = fr[n-1]
	}
	if w.q.Budget != nil {
		sp := w.q.Budget.Stats()
		st.Spill = &sp
	}
	return st
}

// Stats is one subscription's streaming report.
type Stats struct {
	// Events counts accepted (post-filter) events; Filtered those the
	// query's WHERE rejected; Late accepted events that arrived behind
	// the maximum event time; Dropped events whose every window had
	// already emitted (they are in the relation but in no window).
	Events, Filtered, Late, Dropped int64
	// Windows is the emitted-window count.
	Windows int64
	// Freshness quantiles over per-window emission delay, seconds.
	FreshnessP50, FreshnessP95, FreshnessMax float64
	// Spill is the budgeted subscription's out-of-core report (nil when
	// unbudgeted).
	Spill *relational.SpillStats
}

// Ingest is the engine's acknowledgement of one appended batch.
type Ingest struct {
	// Start is the global row ordinal of the batch's first row.
	Start int64
	// Rows and Bytes size the batch (encoded bytes, the wire/spill
	// sizing every other layer uses).
	Rows  int
	Bytes float64
	// NetSeconds is the modeled fabric time the distributed append's
	// ingest-class flows took (0 on single-node engines).
	NetSeconds float64
}

// IngestStats accumulates a Source's acknowledgements.
type IngestStats struct {
	Batches    int64
	Rows       int64
	Bytes      float64
	NetSeconds float64
	// WallSeconds is real time spent inside Append calls.
	WallSeconds float64
}

// AppendFunc is the engine-side append path a Source feeds
// (sql.Engine.AppendRows bound to a table).
type AppendFunc func(rows []relational.Row) (Ingest, error)

// Source is the producer handle of one growing relation. It is safe for
// concurrent use; concurrent Appends serialize at the engine's catalog
// lock.
type Source struct {
	table   string
	app     AppendFunc
	closeFn func()

	mu     sync.Mutex
	closed bool
	st     IngestStats
}

// NewSource wraps an append path. closeFn (may be nil) runs once on
// Close — the sql layer passes the hub's end-of-stream mark.
func NewSource(table string, app AppendFunc, closeFn func()) *Source {
	return &Source{table: table, app: app, closeFn: closeFn}
}

// Table returns the source's table name.
func (s *Source) Table() string { return s.table }

// Append feeds one batch of rows into the relation. The returned error
// is the engine's validation or billing error; acknowledged rows are
// durable in the catalog before Append returns.
func (s *Source) Append(rows ...relational.Row) error {
	if len(rows) == 0 {
		return nil
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return errClosed(s.table)
	}
	start := time.Now()
	ing, err := s.app(rows)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.st.Batches++
	s.st.Rows += int64(ing.Rows)
	s.st.Bytes += ing.Bytes
	s.st.NetSeconds += ing.NetSeconds
	s.st.WallSeconds += time.Since(start).Seconds()
	s.mu.Unlock()
	return nil
}

// Close ends the stream: subscriptions flush their remaining windows and
// complete. Idempotent; Append after Close errors.
func (s *Source) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.closeFn != nil {
		s.closeFn()
	}
}

// Stats snapshots the source's ingest accounting.
func (s *Source) Stats() IngestStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

type errClosed string

func (e errClosed) Error() string { return "stream: source for table " + string(e) + " is closed" }
