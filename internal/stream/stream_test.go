package stream

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/memtier"
	"repro/internal/relational"
)

// Event source schema: k String, t Int (event time), v Int.
var srcSchema = relational.Schema{
	{Name: "k", Type: relational.String},
	{Name: "t", Type: relational.Int},
	{Name: "v", Type: relational.Int},
}

func ev(k string, t, v int64) relational.Row {
	return relational.Row{relational.StringV(k), relational.IntV(t), relational.IntV(v)}
}

func pick(i int) relational.Projector {
	return func(r relational.Row) (relational.Value, error) { return r[i], nil }
}

// testQuery is "SELECT k, SUM(v), COUNT(*) FROM events GROUP BY k"
// compiled by hand (the sql layer's compiler is exercised in its own
// package; these tests isolate the window machinery).
func testQuery(t testing.TB, budget *relational.MemoryBudget) *Query {
	pre := relational.Schema{
		{Name: "g0", Type: relational.String},
		{Name: "a0", Type: relational.Int},
	}
	groups := []int{0}
	aggs := []relational.AggSpec{
		{Fn: relational.SumAgg, Col: 1, Name: "sum(v)"},
		{Fn: relational.CountAgg, Col: -1, Name: "count(*)"},
	}
	aggSchema, err := relational.AggOutputSchema(pre, groups, aggs)
	if err != nil {
		t.Fatal(err)
	}
	return &Query{
		Table:     "events",
		TimeCol:   1,
		PreExprs:  []relational.Projector{pick(0), pick(2)},
		PreSchema: pre,
		GroupCols: groups,
		AggSpecs:  aggs,
		AggSchema: aggSchema,
		OutExprs:  []relational.Projector{pick(0), pick(1), pick(2)},
		OutSchema: aggSchema,
		Budget:    budget,
	}
}

// oracle computes the window [s, e) answer by brute force: per key in
// first-seen (append) order, sum and count of the events inside.
func oracle(events []relational.Row, s, e int64) []relational.Row {
	var order []string
	sums := map[string]int64{}
	counts := map[string]int64{}
	for _, r := range events {
		t := r[1].I
		if t < s || t >= e {
			continue
		}
		k := r[0].S
		if _, ok := sums[k]; !ok {
			order = append(order, k)
		}
		sums[k] += r[2].I
		counts[k]++
	}
	out := make([]relational.Row, 0, len(order))
	for _, k := range order {
		out = append(out, relational.Row{relational.StringV(k), relational.IntV(sums[k]), relational.IntV(counts[k])})
	}
	return out
}

func checkWindows(t *testing.T, events []relational.Row, wins []Window) {
	t.Helper()
	for _, w := range wins {
		want := oracle(events, w.Start, w.End)
		if !reflect.DeepEqual(w.Rows.Rows, want) {
			t.Fatalf("window [%d,%d):\n got %v\nwant %v", w.Start, w.End, w.Rows.Rows, want)
		}
		if len(want) == 0 {
			t.Fatalf("empty window [%d,%d) emitted", w.Start, w.End)
		}
	}
}

func runWindower(t *testing.T, spec WindowSpec, budget *relational.MemoryBudget, batches ...[]relational.Row) ([]Window, *windower) {
	t.Helper()
	spec, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindower(testQuery(t, budget), spec)
	var wins []Window
	for _, b := range batches {
		out, err := w.observe(b)
		if err != nil {
			t.Fatal(err)
		}
		wins = append(wins, out...)
	}
	out, err := w.flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(wins, out...), w
}

// TestTumblingWindows: in-order events over abutting windows, emission
// driven by the watermark, remainder flushed at close.
func TestTumblingWindows(t *testing.T) {
	var events []relational.Row
	for i := int64(0); i < 26; i++ {
		k := "a"
		if i%2 == 1 {
			k = "b"
		}
		events = append(events, ev(k, i, i))
	}
	spec := WindowSpec{TimeCol: "t", Size: 10}
	wins, w := runWindower(t, spec, nil, events)
	if len(wins) != 3 {
		t.Fatalf("want 3 windows, got %d", len(wins))
	}
	for i, s := range []int64{0, 10, 20} {
		if wins[i].Start != s || wins[i].End != s+10 {
			t.Fatalf("window %d is [%d,%d), want [%d,%d)", i, wins[i].Start, wins[i].End, s, s+10)
		}
	}
	checkWindows(t, events, wins)
	if w.events != 26 || w.late != 0 || w.dropped != 0 {
		t.Fatalf("counters: events=%d late=%d dropped=%d", w.events, w.late, w.dropped)
	}
	// The first two windows emitted before close (watermark 25 > 20).
	out, err := newWindower(testQuery(t, nil), mustNorm(t, spec)).observe(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("watermark should emit 2 windows before close, got %d", len(out))
	}
}

func mustNorm(t *testing.T, spec WindowSpec) WindowSpec {
	t.Helper()
	s, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSlidingWindows: overlapping windows — every event lands in
// Size/Slide windows, pane merges must match brute force.
func TestSlidingWindows(t *testing.T) {
	var events []relational.Row
	for i := int64(0); i < 20; i++ {
		events = append(events, ev(fmt.Sprintf("k%d", i%3), i, i*i))
	}
	wins, _ := runWindower(t, WindowSpec{TimeCol: "t", Size: 6, Slide: 2}, nil, events)
	checkWindows(t, events, wins)
	// Every event is covered by 3 windows: starts -4..18 step 2.
	if len(wins) != 12 {
		t.Fatalf("want 12 windows, got %d", len(wins))
	}
	if wins[0].Start != -4 || wins[len(wins)-1].Start != 18 {
		t.Fatalf("window range [%d..%d]", wins[0].Start, wins[len(wins)-1].Start)
	}
}

// TestEmptyWindowsSkipped: a time gap produces no empty emissions.
func TestEmptyWindowsSkipped(t *testing.T) {
	events := []relational.Row{ev("a", 1, 1), ev("a", 100, 2), ev("a", 105, 3)}
	wins, _ := runWindower(t, WindowSpec{TimeCol: "t", Size: 10}, nil, events)
	if len(wins) != 2 {
		t.Fatalf("want 2 non-empty windows, got %d: %+v", len(wins), wins)
	}
	checkWindows(t, events, wins)
}

// TestLateAndDropped: an event behind the max time but inside an open
// window is late-but-counted; an event whose windows all emitted is
// dropped and appears in no window.
func TestLateAndDropped(t *testing.T) {
	spec := WindowSpec{TimeCol: "t", Size: 10}
	q := testQuery(t, nil)
	w := newWindower(q, mustNorm(t, spec))
	wins, err := w.observe([]relational.Row{ev("a", 5, 1), ev("a", 12, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 1 || wins[0].Start != 0 {
		t.Fatalf("watermark 12 should seal [0,10): %+v", wins)
	}
	// t=3: its only window [0,10) has emitted — dropped.
	wins, err = w.observe([]relational.Row{ev("a", 3, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 0 || w.dropped != 1 {
		t.Fatalf("expected a silent drop, wins=%v dropped=%d", wins, w.dropped)
	}
	// t=11: late (behind max 12) but [10,20) is open — included.
	if _, err = w.observe([]relational.Row{ev("a", 11, 5)}); err != nil {
		t.Fatal(err)
	}
	if w.late != 1 {
		t.Fatalf("late=%d, want 1", w.late)
	}
	out, err := w.flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Start != 10 {
		t.Fatalf("flush: %+v", out)
	}
	// [10,20) holds t=12 (v=1) and the late t=11 (v=5).
	want := []relational.Row{{relational.StringV("a"), relational.IntV(6), relational.IntV(2)}}
	if !reflect.DeepEqual(out[0].Rows.Rows, want) {
		t.Fatalf("late event lost: %v want %v", out[0].Rows.Rows, want)
	}
	if out[0].Late != 1 || out[0].Events != 2 {
		t.Fatalf("window accounting: %+v", out[0])
	}
}

// TestLatenessDelaysEmission: the watermark trails max event time by
// Lateness, so disorder within the allowance is never even late.
func TestLatenessDelaysEmission(t *testing.T) {
	spec := WindowSpec{TimeCol: "t", Size: 10, Lateness: 5}
	w := newWindower(testQuery(t, nil), mustNorm(t, spec))
	wins, err := w.observe([]relational.Row{ev("a", 5, 1), ev("a", 14, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 0 {
		t.Fatalf("watermark 9 must not seal [0,10): %+v", wins)
	}
	wins, err = w.observe([]relational.Row{ev("a", 15, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 1 || wins[0].Start != 0 {
		t.Fatalf("watermark 10 seals [0,10): %+v", wins)
	}
}

// disorderedEvents is a deterministic stream with bounded disorder (an
// LCG shuffles event times within a small horizon).
func disorderedEvents(n int, keys int, disorder int64) []relational.Row {
	events := make([]relational.Row, 0, n)
	seed := int64(12345)
	for i := 0; i < n; i++ {
		seed = (seed*1103515245 + 12347) % (1 << 31)
		jitter := seed % (disorder + 1)
		t := int64(i) - jitter
		if t < 0 {
			t = 0
		}
		events = append(events, ev(fmt.Sprintf("k%d", seed%int64(keys)), t, seed%97))
	}
	return events
}

// TestRecomputeAndBudgetParity: the incremental path, the recompute
// baseline, and a budget so tight every pane spills must all emit
// identical windows. Sliding windows make each pane feed several
// emissions, so this also proves snapshots never alias mutable state.
func TestRecomputeAndBudgetParity(t *testing.T) {
	events := disorderedEvents(3000, 7, 4)
	spec := WindowSpec{TimeCol: "t", Size: 40, Slide: 10, Lateness: 4}
	var batches [][]relational.Row
	for i := 0; i < len(events); i += 100 {
		batches = append(batches, events[i:min(i+100, len(events)):min(i+100, len(events))])
	}
	inc, wInc := runWindower(t, spec, nil, batches...)
	rec, _ := runWindower(t, WindowSpec{TimeCol: "t", Size: 40, Slide: 10, Lateness: 4, Recompute: true}, nil, batches...)
	dev, err := memtier.NewSpillDevice("ssd")
	if err != nil {
		t.Fatal(err)
	}
	budget := relational.NewMemoryBudget(1<<11, dev)
	bud, _ := runWindower(t, spec, budget, batches...)

	if wInc.dropped != 0 {
		t.Fatalf("disorder within lateness must not drop: %d", wInc.dropped)
	}
	diff := func(name string, got []Window) {
		t.Helper()
		if len(got) != len(inc) {
			t.Fatalf("%s emitted %d windows, incremental %d", name, len(got), len(inc))
		}
		for i := range got {
			if got[i].Start != inc[i].Start || !reflect.DeepEqual(got[i].Rows.Rows, inc[i].Rows.Rows) {
				t.Fatalf("%s window %d diverges:\n got [%d) %v\nwant [%d) %v",
					name, i, got[i].Start, got[i].Rows.Rows, inc[i].Start, inc[i].Rows.Rows)
			}
		}
	}
	diff("recompute", rec)
	diff("budgeted", bud)
	checkWindows(t, events, inc)
	st := budget.Stats()
	if st.Partitions == 0 || st.SpilledBytes <= 0 {
		t.Fatalf("2KiB budget on 3000 events must spill: %+v", st)
	}
}

// TestHubDelivery: publish order in, window order out, close flushes,
// a subscription arriving after close completes immediately.
func TestHubDelivery(t *testing.T) {
	h := NewHub()
	spec := WindowSpec{TimeCol: "t", Size: 10}
	sub, err := h.Subscribe(context.Background(), testQuery(t, nil), spec, []relational.Row{ev("a", 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	h.Publish("events", []relational.Row{ev("a", 5, 2)})
	h.Publish("events", []relational.Row{ev("b", 15, 3)})
	h.CloseTable("events")
	var wins []Window
	for w := range sub.Out() {
		wins = append(wins, w)
	}
	<-sub.Done()
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("want 2 windows, got %+v", wins)
	}
	if wins[0].FreshnessSeconds < 0 {
		t.Fatalf("freshness: %v", wins[0].FreshnessSeconds)
	}
	st := sub.Stats()
	if st.Events != 3 || st.Windows != 2 || st.FreshnessMax < st.FreshnessP50 {
		t.Fatalf("stats: %+v", st)
	}
	if !h.TableClosed("events") {
		t.Fatal("table not marked closed")
	}
	late, err := h.Subscribe(context.Background(), testQuery(t, nil), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-late.Out(); ok {
		t.Fatal("post-close subscription emitted")
	}
	<-late.Done()
}

// TestSubscriptionCancel: cancelling the context closes the stream
// without a flush, reports the cause, and leaks no goroutine even when
// the consumer never reads (the emission send must also honour ctx).
func TestSubscriptionCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := NewHub()
	ctx, cancel := context.WithCancel(context.Background())
	// Buffer 1 and no consumer: the second window blocks in the send.
	spec := WindowSpec{TimeCol: "t", Size: 5, Buffer: 1}
	sub, err := h.Subscribe(ctx, testQuery(t, nil), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i += 2 {
		h.Publish("events", []relational.Row{ev("a", i, 1)})
	}
	cancel()
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not stop after cancel")
	}
	if err := sub.Err(); err != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	// Publishing to a removed subscription is a no-op.
	h.Publish("events", []relational.Row{ev("a", 100, 1)})
	for range 100 {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
}

// TestWindowSpecValidation: the rejection matrix of normalize.
func TestWindowSpecValidation(t *testing.T) {
	bad := []WindowSpec{
		{Size: 10},                                // no time column
		{TimeCol: "t"},                            // no size
		{TimeCol: "t", Size: -1},                  // negative size
		{TimeCol: "t", Size: 4, Slide: 8},         // sampling gap
		{TimeCol: "t", Size: 4, Slide: -2},        // negative slide
		{TimeCol: "t", Size: 4, Lateness: -1},     // negative lateness
	}
	for _, s := range bad {
		if _, err := s.normalize(); err == nil {
			t.Fatalf("spec %+v must not normalize", s)
		}
	}
	got := mustNorm(t, WindowSpec{TimeCol: "t", Size: 8})
	if got.Slide != 8 || got.Buffer != 16 || !got.Tumbling() {
		t.Fatalf("defaults: %+v", got)
	}
}

// TestSourceLifecycle: append-after-close errors, stats accumulate.
func TestSourceLifecycle(t *testing.T) {
	var got int
	src := NewSource("events", func(rows []relational.Row) (Ingest, error) {
		got += len(rows)
		return Ingest{Rows: len(rows), Bytes: 8}, nil
	}, nil)
	if err := src.Append(ev("a", 1, 1), ev("a", 2, 1)); err != nil {
		t.Fatal(err)
	}
	src.Close()
	src.Close() // idempotent
	if err := src.Append(ev("a", 3, 1)); err == nil {
		t.Fatal("append after close must error")
	}
	st := src.Stats()
	if got != 2 || st.Batches != 1 || st.Rows != 2 || st.Bytes != 8 {
		t.Fatalf("stats: got=%d %+v", got, st)
	}
}

// BenchmarkSlidingWindowMaintenance is the PR's acceptance benchmark: a
// 1M-event sliding-window workload where incremental pane maintenance
// must beat full per-window recomputation by at least 2x. The assertion
// lives in the benchmark so a regression fails CI's bench step, not
// just drifts.
func BenchmarkSlidingWindowMaintenance(b *testing.B) {
	const n = 1_000_000
	events := make([]relational.Row, 0, n)
	seed := int64(99991)
	for i := 0; i < n; i++ {
		seed = (seed*1103515245 + 12347) % (1 << 31)
		events = append(events, ev(fmt.Sprintf("k%02d", seed%100), int64(i), seed%7))
	}
	run := func(recompute bool) (time.Duration, int) {
		spec := mustNorm2(b, WindowSpec{TimeCol: "t", Size: 20_000, Slide: 1_000, Recompute: recompute})
		w := newWindower(testQuery(b, nil), spec)
		start := time.Now()
		emitted := 0
		for i := 0; i < len(events); i += 10_000 {
			wins, err := w.observe(events[i : i+10_000])
			if err != nil {
				b.Fatal(err)
			}
			emitted += len(wins)
		}
		wins, err := w.flush()
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start), emitted + len(wins)
	}
	b.ResetTimer()
	var incr, rec time.Duration
	for i := 0; i < b.N; i++ {
		di, wi := run(false)
		dr, wr := run(true)
		if wi != wr || wi == 0 {
			b.Fatalf("window counts diverge: incremental %d, recompute %d", wi, wr)
		}
		incr += di
		rec += dr
	}
	ratio := float64(rec) / float64(incr)
	b.ReportMetric(float64(n)*float64(b.N)/incr.Seconds(), "events/s")
	b.ReportMetric(ratio, "x-vs-recompute")
	if ratio < 2 {
		b.Fatalf("incremental maintenance only %.2fx faster than recomputation (want >= 2x): %v vs %v", ratio, incr/time.Duration(b.N), rec/time.Duration(b.N))
	}
}

func mustNorm2(b *testing.B, spec WindowSpec) WindowSpec {
	b.Helper()
	s, err := spec.normalize()
	if err != nil {
		b.Fatal(err)
	}
	return s
}
