package stream

import (
	"fmt"

	"repro/internal/relational"
)

// WindowSpec describes the event-time windowing of one subscription.
// Event time is an Int column of the source relation, in abstract ticks
// (the engine never interprets them as wall clock).
type WindowSpec struct {
	// TimeCol names the Int column carrying each event's time.
	TimeCol string
	// Size is the window length in ticks (required, > 0).
	Size int64
	// Slide is the window stride: Slide == Size (or 0, the default) is
	// tumbling; Slide < Size overlaps windows. Slide > Size (sampling
	// gaps) is rejected — every event must belong to at least one window
	// or batch parity over the union of windows is unverifiable.
	Slide int64
	// Lateness is how many ticks behind the maximum seen event time the
	// watermark trails: a window [s, s+Size) emits once watermark =
	// maxSeen - Lateness reaches s+Size. Larger lateness tolerates more
	// disorder at the cost of result freshness.
	Lateness int64
	// Recompute disables incremental maintenance: panes retain raw
	// pre-projected rows and every closing window re-aggregates them from
	// scratch. It exists as the measured baseline the incremental path is
	// benchmarked against (and doubles as a test oracle); results are
	// identical either way.
	Recompute bool
	// Buffer is the emission channel capacity (default 16).
	Buffer int
}

// normalize validates the spec and fills defaults.
func (w WindowSpec) normalize() (WindowSpec, error) {
	if w.TimeCol == "" {
		return w, fmt.Errorf("stream: WindowSpec needs a TimeCol")
	}
	if w.Size <= 0 {
		return w, fmt.Errorf("stream: window Size must be positive, got %d", w.Size)
	}
	if w.Slide == 0 {
		w.Slide = w.Size
	}
	if w.Slide < 0 || w.Slide > w.Size {
		return w, fmt.Errorf("stream: Slide %d must be in (0, Size=%d]", w.Slide, w.Size)
	}
	if w.Lateness < 0 {
		return w, fmt.Errorf("stream: negative Lateness %d", w.Lateness)
	}
	if w.Buffer <= 0 {
		w.Buffer = 16
	}
	return w, nil
}

// Tumbling reports whether windows abut without overlap.
func (w WindowSpec) Tumbling() bool { return w.Slide == w.Size }

// Window is one emitted windowed result: the aggregate rows of event
// window [Start, End).
type Window struct {
	Start, End int64
	// Rows is the window's result relation (the subscription's output
	// schema). Group emission order matches the batch engine's answer to
	// the same query restricted to [Start, End).
	Rows *relational.Relation
	// Events is how many accepted events the window aggregated; Late is
	// how many of them arrived behind the then-maximum event time.
	Events, Late int64
	// FreshnessSeconds is the wall-clock delay between the ingest batch
	// that made this window emittable entering the hub and the emission.
	FreshnessSeconds float64
}

// Query is a compiled continuous query, produced by the sql layer
// (Session.Subscribe) and consumed by the windower. All projectors and
// the filter evaluate over rows of the source relation's schema; the
// aggregate machinery mirrors the batch planner's aggPlan shape.
type Query struct {
	// Table is the lowercased source relation name.
	Table string
	// TimeCol is the event-time column's index in the source schema.
	TimeCol int
	// Filter is the compiled WHERE predicate (nil keeps every row).
	Filter relational.Predicate
	// PreExprs/PreSchema are the pre-aggregation projection: group
	// expressions then aggregate arguments.
	PreExprs  []relational.Projector
	PreSchema relational.Schema
	// GroupCols/AggSpecs address columns of the pre-projection.
	GroupCols []int
	AggSpecs  []relational.AggSpec
	// AggSchema is the aggregate output schema (groups then aggregates).
	AggSchema relational.Schema
	// OutExprs/OutSchema are the final select-item projection over
	// aggregate output rows.
	OutExprs  []relational.Projector
	OutSchema relational.Schema
	// Budget, when non-nil, caps resident window state: panes spill
	// generations to the tiered store exactly like budgeted batch
	// aggregation. One budget instance per subscription.
	Budget *relational.MemoryBudget
}

// floorDiv is integer division rounding toward negative infinity (event
// times may be negative; Go's / truncates toward zero).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// alignDown rounds x down to a multiple of m.
func alignDown(x, m int64) int64 { return floorDiv(x, m) * m }

// alignUp rounds x up to a multiple of m.
func alignUp(x, m int64) int64 { return alignDown(x+m-1, m) }

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
