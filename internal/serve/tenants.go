package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/sql"
)

// Tenant is one project on a shared engine: an API key to authenticate
// its requests and the per-session defaults every query it submits runs
// under. The QoS fields map straight onto sql.Session — a tenant at
// Weight 3 competes for the shared fabric with three times the
// bandwidth share of a Weight-1 tenant, which is the whole point of
// fronting one engine with a multi-tenant daemon.
type Tenant struct {
	// Name identifies the tenant in metrics and reports.
	Name string `json:"name"`
	// APIKey authenticates requests (Authorization: Bearer <key> or
	// X-API-Key). Keys must be unique across the tenant set.
	APIKey string `json:"api_key"`
	// Priority is the QoS class the tenant's fabric flows carry
	// (sql.Session.Priority); "" is best-effort.
	Priority string `json:"priority,omitempty"`
	// Weight is the tenant's weighted max-min scheduling weight
	// (sql.Session.Weight); 0 inherits uniform weight 1.
	Weight float64 `json:"weight,omitempty"`
	// Workers overrides per-host batch parallelism (sql.Session.Workers).
	Workers int `json:"workers,omitempty"`
	// MemoryBudget caps the tenant's resident operator state in bytes
	// (sql.Session.MemoryBudget); 0 inherits the engine's.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// SpillTier names where the tenant's budget overflow spills
	// ("nvm", "ssd", "disk"); "" inherits the engine's.
	SpillTier string `json:"spill_tier,omitempty"`
	// Placement overrides the morsel placement policy over the engine's
	// device set; "" inherits the engine's.
	Placement string `json:"placement,omitempty"`
	// DistJoin overrides the distributed join movement strategy; ""
	// inherits the engine's.
	DistJoin string `json:"dist_join,omitempty"`
	// PipelineChunkRows overrides the pipelined-movement chunk size; 0
	// inherits the engine's.
	PipelineChunkRows int `json:"pipeline_chunk_rows,omitempty"`
	// MaxInflight caps the tenant's concurrently executing queries: a
	// submission past the cap is refused with 429 and a Retry-After hint
	// instead of queueing, so one tenant's burst cannot monopolize the
	// engine ahead of the fabric's QoS weights. 0 means uncapped.
	MaxInflight int `json:"max_inflight,omitempty"`
	// RatePerSec caps the tenant's sustained submission rate across
	// /v1/sql and /v1/stream in requests per second, enforced by a token
	// bucket: a submission with no token is refused with 429 and a
	// Retry-After hint sized to the bucket's deficit. Where MaxInflight
	// bounds concurrency, RatePerSec bounds throughput — a tenant issuing
	// fast one-shot queries can stay under one cap while blowing through
	// the other. 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token bucket's depth — how many submissions may land
	// back-to-back before RatePerSec applies. 0 defaults to RatePerSec
	// (at least 1).
	Burst float64 `json:"burst,omitempty"`
}

// burst is the tenant's effective bucket depth.
func (t *Tenant) burst() float64 {
	b := t.Burst
	if b <= 0 {
		b = t.RatePerSec
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Session opens a fresh engine session carrying the tenant's defaults.
// Sessions are cheap; the server opens one per request.
func (t *Tenant) Session(eng *sql.Engine) *sql.Session {
	s := eng.Session()
	s.Priority = t.Priority
	s.Weight = t.Weight
	s.Workers = t.Workers
	s.MemoryBudget = t.MemoryBudget
	s.SpillTier = t.SpillTier
	s.Placement = t.Placement
	s.DistJoin = t.DistJoin
	s.PipelineChunkRows = t.PipelineChunkRows
	return s
}

// configKey renders the tenant's effective session configuration as a
// deterministic string — the "session-config" leg of the plan-cache
// key, so two tenants (or one reconfigured tenant) never share a cached
// statement unless every knob that affects planning agrees. MaxInflight,
// RatePerSec and Burst are deliberately absent: they gate admission, not
// planning.
func (t *Tenant) configKey() string {
	return fmt.Sprintf("%s|%g|%d|%d|%s|%s|%s|%d",
		t.Priority, t.Weight, t.Workers, t.MemoryBudget, t.SpillTier,
		t.Placement, t.DistJoin, t.PipelineChunkRows)
}

// Tenants is an immutable tenant set with API-key lookup.
type Tenants struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	order  []*Tenant
}

// NewTenants validates the set: names and API keys must be non-empty
// and unique, weights non-negative.
func NewTenants(list []Tenant) (*Tenants, error) {
	if len(list) == 0 {
		return nil, fmt.Errorf("serve: no tenants configured")
	}
	ts := &Tenants{byKey: map[string]*Tenant{}, byName: map[string]*Tenant{}}
	for i := range list {
		t := &list[i]
		if t.Name == "" || t.APIKey == "" {
			return nil, fmt.Errorf("serve: tenant %d needs a name and an api_key", i)
		}
		if t.Weight < 0 {
			return nil, fmt.Errorf("serve: tenant %s: negative weight %g", t.Name, t.Weight)
		}
		if t.MaxInflight < 0 {
			return nil, fmt.Errorf("serve: tenant %s: negative max_inflight %d", t.Name, t.MaxInflight)
		}
		if t.RatePerSec < 0 {
			return nil, fmt.Errorf("serve: tenant %s: negative rate_per_sec %g", t.Name, t.RatePerSec)
		}
		if t.Burst < 0 {
			return nil, fmt.Errorf("serve: tenant %s: negative burst %g", t.Name, t.Burst)
		}
		if _, dup := ts.byName[t.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant name %q", t.Name)
		}
		if _, dup := ts.byKey[t.APIKey]; dup {
			return nil, fmt.Errorf("serve: duplicate api key (tenant %s)", t.Name)
		}
		ts.byName[t.Name] = t
		ts.byKey[t.APIKey] = t
		ts.order = append(ts.order, t)
	}
	return ts, nil
}

// ParseTenants decodes a JSON tenant list (the -tenants file format of
// rethinkd: a top-level array of Tenant objects) and validates it.
func ParseTenants(data []byte) (*Tenants, error) {
	var list []Tenant
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("serve: tenants config: %w", err)
	}
	return NewTenants(list)
}

// DefaultTenants is the two-tenant playground the daemon and load
// harness boot with when no tenant file is given: "gold" at weight 3 in
// the interactive class against best-effort "bronze" at weight 1 — the
// 3:1 walkthrough of the QoS examples, as a serving config.
func DefaultTenants() *Tenants {
	ts, err := NewTenants([]Tenant{
		{Name: "gold", APIKey: "gold-key", Priority: "interactive", Weight: 3},
		{Name: "bronze", APIKey: "bronze-key", Weight: 1},
	})
	if err != nil {
		panic(err)
	}
	return ts
}

// ByKey resolves an API key to its tenant.
func (ts *Tenants) ByKey(key string) (*Tenant, bool) {
	t, ok := ts.byKey[key]
	return t, ok
}

// ByName resolves a tenant name.
func (ts *Tenants) ByName(name string) (*Tenant, bool) {
	t, ok := ts.byName[name]
	return t, ok
}

// List returns the tenants in configuration order.
func (ts *Tenants) List() []*Tenant { return ts.order }
