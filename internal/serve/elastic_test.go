package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
)

// TestServeThrottleMaxInflight: a tenant at its max_inflight cap gets
// 429 with a Retry-After hint before the body is read, the refusal is
// counted, and capacity frees as soon as the in-flight query finishes.
func TestServeThrottleMaxInflight(t *testing.T) {
	eng := testEngine(t, 500)
	tenants, err := NewTenants([]Tenant{
		{Name: "capped", APIKey: "capped-key", MaxInflight: 1},
		{Name: "free", APIKey: "free-key"},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, tenants, Options{})
	h := srv.Handler()

	// Park one capped query at the fabric's admission barrier: announce a
	// gang of 2, submit one — it waits for a peer, holding the tenant's
	// single inflight slot.
	if code := do(t, h, "POST", "/v1/gang", "capped-key", GangRequest{Announce: 2}, nil); code != http.StatusOK {
		t.Fatalf("gang announce: %d", code)
	}
	firstDone := make(chan int, 1)
	go func() {
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(QueryRequest{SQL: testQuery})
		req := httptest.NewRequest("POST", "/v1/sql", &buf)
		req.Header.Set("X-API-Key", "capped-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		firstDone <- rec.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.MetricsSnapshot().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never entered flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Second capped submission: refused, with the retry hint.
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(QueryRequest{SQL: testQuery})
	req := httptest.NewRequest("POST", "/v1/sql", &buf)
	req.Header.Set("X-API-Key", "capped-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission: got %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}

	// An uncapped tenant is unaffected — and fills the gang, releasing
	// the parked query.
	if code := do(t, h, "POST", "/v1/sql", "free-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusOK {
		t.Fatalf("uncapped tenant: got %d, want 200", code)
	}
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("parked query: got %d, want 200", code)
	}

	m := srv.MetricsSnapshot()
	if m.Tenants["capped"].Throttled != 1 {
		t.Fatalf("throttled counter = %d, want 1", m.Tenants["capped"].Throttled)
	}
	// Capacity is back: the capped tenant runs again.
	if code := do(t, h, "POST", "/v1/sql", "capped-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusOK {
		t.Fatalf("post-release submission: got %d, want 200", code)
	}
}

// elasticServer fronts a replication-2 engine (lifecycle active).
func elasticServer(t *testing.T) *Server {
	t.Helper()
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Replication = 2
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, 500, 50)
	return New(eng, DefaultTenants(), Options{})
}

// TestServeHostsEndpoint: drain, restore and join through the wire,
// with cluster health in every response and in /metrics; a
// lifecycle-less engine answers 409.
func TestServeHostsEndpoint(t *testing.T) {
	srv := elasticServer(t)
	h := srv.Handler()
	// Shard the tables so the drain has resident bytes to move.
	if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusOK {
		t.Fatalf("warm-up query: %d", code)
	}

	var resp HostResponse
	if code := do(t, h, "POST", "/v1/hosts", "gold-key", HostRequest{Action: "drain", Worker: 1}, &resp); code != http.StatusOK {
		t.Fatalf("drain: %d", code)
	}
	if resp.Cluster == nil || resp.Cluster.Drained != 1 || resp.Cluster.RebalancedBytes <= 0 {
		t.Fatalf("drain response: %+v", resp.Cluster)
	}
	if code := do(t, h, "POST", "/v1/hosts", "gold-key", HostRequest{Action: "restore", Worker: 1}, &resp); code != http.StatusOK {
		t.Fatalf("restore: %d", code)
	}
	if resp.Cluster.Drained != 0 {
		t.Fatalf("restore response: %+v", resp.Cluster)
	}
	if code := do(t, h, "POST", "/v1/hosts", "gold-key", HostRequest{Action: "join"}, &resp); code != http.StatusOK {
		t.Fatalf("join: %d", code)
	}
	if resp.Worker != 4 || resp.Cluster.Workers != 5 {
		t.Fatalf("join response: worker %d, %+v", resp.Worker, resp.Cluster)
	}
	if code := do(t, h, "POST", "/v1/hosts", "gold-key", HostRequest{Action: "explode"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad action: got %d, want 400", code)
	}
	if code := do(t, h, "POST", "/v1/hosts", "", HostRequest{Action: "join"}, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated: got %d, want 401", code)
	}
	// Queries still work on the reshaped cluster, and /metrics reports it.
	if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusOK {
		t.Fatalf("post-reshape query: %d", code)
	}
	m := srv.MetricsSnapshot()
	if m.Cluster == nil || m.Cluster.Replication != 2 || m.Cluster.Workers != 5 {
		t.Fatalf("metrics cluster: %+v", m.Cluster)
	}

	// No lifecycle, no membership surface.
	plain := testServer(t, 100)
	if code := do(t, plain.Handler(), "POST", "/v1/hosts", "gold-key", HostRequest{Action: "drain", Worker: 0}, nil); code != http.StatusConflict {
		t.Fatalf("lifecycle-less drain: got %d, want 409", code)
	}
	if m := plain.MetricsSnapshot(); m.Cluster != nil {
		t.Fatalf("lifecycle-less metrics grew a cluster: %+v", m.Cluster)
	}
}

// TestServeRegisterRaceFreshPlans races catalog Registers against
// prepared-statement cache hits: a reader must never get rows older
// than the last Register that completed before its request started.
// Run with -race; the assertion catches logically stale plans, the
// detector catches unsynchronized epoch/cache access.
func TestServeRegisterRaceFreshPlans(t *testing.T) {
	cfg := sql.DefaultConfig()
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schema := relational.Schema{{Name: "ver", Type: relational.Int}}
	version := func(v int64) *relational.Relation {
		rel := relational.NewRelation("v", schema)
		if err := rel.Append(relational.Row{relational.IntV(v)}); err != nil {
			t.Fatal(err)
		}
		return rel
	}
	eng.Register(version(0))
	srv := New(eng, DefaultTenants(), Options{})
	h := srv.Handler()

	var registered atomic.Int64
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			eng.Register(version(v))
			registered.Store(v)
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				floor := registered.Load()
				var resp QueryResponse
				var buf bytes.Buffer
				_ = json.NewEncoder(&buf).Encode(QueryRequest{SQL: "SELECT ver FROM v", Prepare: true})
				req := httptest.NewRequest("POST", "/v1/sql", &buf)
				req.Header.Set("X-API-Key", "gold-key")
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("query %d: code %d: %s", i, rec.Code, rec.Body.String())
					return
				}
				if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
					t.Error(err)
					return
				}
				got := int64(resp.Result.Rows[0][0].(float64))
				if got < floor {
					t.Errorf("stale plan served: ver %d, but %d was registered before the request", got, floor)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	if t.Failed() {
		t.Logf("plan cache at failure: %+v", srv.MetricsSnapshot().PlanCache)
	}
}
