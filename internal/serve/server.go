// Package serve is the multi-tenant serving front door over one shared
// sql.Engine: the wire surface of the rethinkd daemon. It authenticates
// tenants by API key, maps each tenant's QoS/budget configuration onto
// per-request engine sessions, caches prepared statements per (tenant,
// statement, session-config) with catalog-epoch invalidation, threads
// client disconnects onto the engine's cancellation path, rate-limits
// each tenant's submissions with a token bucket (429 + Retry-After),
// serves streaming ingest and held-open continuous-query subscriptions
// on /v1/stream, and drains
// gracefully — in-flight queries finish, new ones get 503, and any
// announced-but-unfilled fabric gang slots are withdrawn so the shared
// admission barrier can never deadlock on a query that will now never
// arrive.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/relational"
	"repro/internal/serve/wire"
	"repro/internal/sql"
)

// Server is the HTTP front door of one engine. Create with New, mount
// via Handler. All methods are safe for concurrent use.
type Server struct {
	eng     *sql.Engine
	tenants *Tenants
	cache   *PlanCache
	limiter *rateLimiter
	mux     *http.ServeMux
	start   time.Time

	mu            sync.Mutex
	draining      bool
	drained       chan struct{} // closed when the first Drain completes
	subsStop      chan struct{} // closed when a drain starts: ends held-open subscriptions
	drainOnce     sync.Once
	inflight      sync.WaitGroup
	inflightCount int
	gangRemaining int
	served        uint64
	tstats        map[string]*TenantCounters
	tinflight     map[string]int
}

// TenantCounters is one tenant's serving totals for /metrics.
type TenantCounters struct {
	Queries   uint64 `json:"queries"`
	Errors    uint64 `json:"errors"`
	Rows      uint64 `json:"rows"`
	CacheHits uint64 `json:"cache_hits"`
	// Throttled counts submissions refused with 429 because the tenant
	// was at its max_inflight cap.
	Throttled uint64 `json:"throttled,omitempty"`
	// RateLimited counts submissions refused with 429 because the
	// tenant's rate_per_sec token bucket was empty.
	RateLimited uint64 `json:"rate_limited,omitempty"`
}

// DefaultCacheCap bounds the plan cache when Options.CacheCap is 0.
const DefaultCacheCap = 1024

// Options tunes the server.
type Options struct {
	// CacheCap bounds the prepared-statement cache (default 1024).
	CacheCap int
}

// New fronts eng with the given tenant set.
func New(eng *sql.Engine, tenants *Tenants, opt Options) *Server {
	cap := opt.CacheCap
	if cap <= 0 {
		cap = DefaultCacheCap
	}
	s := &Server{
		eng:     eng,
		tenants: tenants,
		cache:   NewPlanCache(cap),
		limiter: newRateLimiter(nil),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		drained:   make(chan struct{}),
		subsStop:  make(chan struct{}),
		tstats:    map[string]*TenantCounters{},
		tinflight: map[string]int{},
	}
	for _, t := range tenants.List() {
		s.tstats[t.Name] = &TenantCounters{}
	}
	s.mux.HandleFunc("POST /v1/sql", s.handleSQL)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/tables", s.handleTables)
	s.mux.HandleFunc("POST /v1/gang", s.handleGang)
	s.mux.HandleFunc("POST /v1/hosts", s.handleHosts)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /drain", s.handleDrain)
	return s
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the fronted engine (tests register fixtures on it).
func (s *Server) Engine() *sql.Engine { return s.eng }

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// authenticate resolves the request's tenant from Authorization: Bearer
// or X-API-Key.
func (s *Server) authenticate(r *http.Request) (*Tenant, bool) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		return nil, false
	}
	return s.tenants.ByKey(key)
}

// admit gates a request on the drain state and tracks it in-flight.
// The returned release must be called when the request finishes; ok is
// false when the server is draining (the caller 503s).
func (s *Server) admit() (release func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	s.inflightCount++
	return func() {
		s.mu.Lock()
		s.inflightCount--
		s.mu.Unlock()
		s.inflight.Done()
	}, true
}

// admitRate charges one submission to the tenant's token bucket,
// answering the refusal (429 + Retry-After sized to the bucket's
// deficit) itself. Returns false when the caller should stop.
func (s *Server) admitRate(t *Tenant, w http.ResponseWriter) bool {
	ok, retryAfter := s.limiter.allow(t)
	if ok {
		return true
	}
	s.mu.Lock()
	s.tstats[t.Name].RateLimited++
	s.mu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeErr(w, http.StatusTooManyRequests,
		"serve: tenant %s over rate limit (%g/s) — retry in %ds", t.Name, t.RatePerSec, retryAfter)
	return false
}

// admitTenant gates one query on its tenant's max_inflight cap. ok is
// false when the tenant is at its limit (the caller 429s); otherwise
// the returned release must be called when the query finishes.
func (s *Server) admitTenant(t *Tenant) (release func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.MaxInflight > 0 && s.tinflight[t.Name] >= t.MaxInflight {
		s.tstats[t.Name].Throttled++
		return nil, false
	}
	s.tinflight[t.Name]++
	return func() {
		s.mu.Lock()
		s.tinflight[t.Name]--
		s.mu.Unlock()
	}, true
}

// consumeGangSlot claims one announced gang slot, if any are
// outstanding. The returned Slot (nil when none were outstanding or the
// engine has no fabric — nil is safe to Withdraw) is the idempotent
// release handle: however many error paths fire on a query that dies
// without reaching the fabric, the slot is withdrawn at most once.
func (s *Server) consumeGangSlot() *dist.Slot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gangRemaining <= 0 {
		return nil
	}
	s.gangRemaining--
	if fab := s.eng.Fabric(); fab != nil {
		return fab.Claim()
	}
	return nil
}

// QueryRequest is the /v1/sql body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Prepare routes the statement through the prepared-statement cache:
	// the first submission prepares and caches, repeats hit. One-shot
	// queries (Prepare false) parse fresh every time.
	Prepare bool `json:"prepare,omitempty"`
}

// QueryResponse is the /v1/sql response: the canonical wire result plus
// the serving envelope.
type QueryResponse struct {
	Tenant string `json:"tenant"`
	// CacheHit reports that a prepared submission was served from the
	// plan cache (false on the priming miss and for one-shot queries).
	CacheHit bool `json:"cache_hit"`
	// CatalogEpoch is the engine catalog version the statement ran
	// against.
	CatalogEpoch uint64 `json:"catalog_epoch"`
	// ElapsedMS is the server-side wall-clock handling time.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ModelMS is the modeled service time (simulated network wall plus
	// spill I/O; 0 for single-node runs) — see wire.Result.ModelSeconds.
	ModelMS float64      `json:"model_ms"`
	Result  *wire.Result `json:"result"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authenticate(r)
	if !ok {
		writeErr(w, http.StatusUnauthorized, "serve: unknown or missing API key")
		return
	}
	release, ok := s.admit()
	if !ok {
		writeErr(w, http.StatusServiceUnavailable, "serve: draining — not accepting new queries")
		return
	}
	defer release()
	if !s.admitRate(tenant, w) {
		return
	}
	trelease, ok := s.admitTenant(tenant)
	if !ok {
		// Refused before the body is even read: an over-limit tenant
		// costs the server one map lookup, not a parse.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			"serve: tenant %s at max inflight (%d) — retry later", tenant.Name, tenant.MaxInflight)
		return
	}
	defer trelease()
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "serve: body must be JSON {\"sql\": ...}")
		return
	}
	gangSlot := s.consumeGangSlot()
	started := time.Now()
	res, hit, epoch, err := s.execute(r.Context(), tenant, req)
	ts := s.tstats[tenant.Name]
	if err != nil {
		// The query never reached (or died holding) its barrier slot; if
		// it was counted toward an announced gang, release the slot so
		// the surviving parties' admission round can run. The Slot is
		// once-guarded, so this stays safe even if another error hook
		// (a cancellation path, say) also withdraws it.
		gangSlot.Withdraw()
		s.mu.Lock()
		ts.Errors++
		s.mu.Unlock()
		code := http.StatusUnprocessableEntity
		if r.Context().Err() != nil {
			// Client went away mid-query; the write below is best-effort.
			code = http.StatusRequestTimeout
		}
		writeErr(w, code, "%v", err)
		return
	}
	wres := wire.FromResult(res)
	s.mu.Lock()
	s.served++
	ts.Queries++
	ts.Rows += uint64(wres.RowCount)
	if hit {
		ts.CacheHits++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, QueryResponse{
		Tenant:       tenant.Name,
		CacheHit:     hit,
		CatalogEpoch: epoch,
		ElapsedMS:    time.Since(started).Seconds() * 1e3,
		ModelMS:      wres.ModelSeconds() * 1e3,
		Result:       wres,
	})
}

// execute runs one statement for a tenant, through the plan cache when
// the request asks for a prepared statement.
func (s *Server) execute(ctx context.Context, tenant *Tenant, req QueryRequest) (*sql.Result, bool, uint64, error) {
	sess := tenant.Session(s.eng)
	if !req.Prepare {
		res, err := sess.Query(ctx, req.SQL)
		return res, false, s.eng.CatalogEpoch(), err
	}
	key := s.cache.Key(tenant, req.SQL)
	epoch := s.eng.CatalogEpoch()
	if stmt, ok := s.cache.Get(key, epoch); ok {
		res, err := stmt.Bind(sess).Exec(ctx)
		return res, true, epoch, err
	}
	stmt, err := sess.Prepare(req.SQL)
	if err != nil {
		return nil, false, epoch, err
	}
	// Cache under the epoch read before preparing: if a Register landed
	// in between, the entry is already stale and the next lookup
	// re-prepares — conservative, never wrong.
	s.cache.Put(key, stmt, epoch)
	res, err := stmt.Exec(ctx)
	return res, false, epoch, err
}

// TableRequest is the /v1/tables body: a relation to register (or
// replace) in the engine catalog.
type TableRequest struct {
	Name   string        `json:"name"`
	Schema []wire.Column `json:"schema"`
	// Rows carries one []any per row; int cells may arrive as JSON
	// numbers (float64) and are accepted when integral.
	Rows [][]any `json:"rows"`
}

// TableResponse acknowledges a registration.
type TableResponse struct {
	Name         string `json:"name"`
	Rows         int    `json:"rows"`
	CatalogEpoch uint64 `json:"catalog_epoch"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authenticate(r); !ok {
		writeErr(w, http.StatusUnauthorized, "serve: unknown or missing API key")
		return
	}
	release, ok := s.admit()
	if !ok {
		writeErr(w, http.StatusServiceUnavailable, "serve: draining — not accepting new registrations")
		return
	}
	defer release()
	var req TableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "serve: bad table body: %v", err)
		return
	}
	rel, err := decodeRelation(&req)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.eng.Register(rel)
	writeJSON(w, http.StatusOK, TableResponse{Name: rel.Name, Rows: rel.Len(), CatalogEpoch: s.eng.CatalogEpoch()})
}

// decodeRelation converts a wire table into a relational.Relation.
func decodeRelation(req *TableRequest) (*relational.Relation, error) {
	if req.Name == "" || len(req.Schema) == 0 {
		return nil, fmt.Errorf("serve: table needs a name and a schema")
	}
	schema := make(relational.Schema, len(req.Schema))
	for i, c := range req.Schema {
		var t relational.Type
		switch c.Type {
		case "int":
			t = relational.Int
		case "float":
			t = relational.Float
		case "string":
			t = relational.String
		default:
			return nil, fmt.Errorf("serve: column %s: unknown type %q", c.Name, c.Type)
		}
		schema[i] = relational.Column{Name: c.Name, Type: t}
	}
	rel := relational.NewRelation(req.Name, schema)
	for rn, cells := range req.Rows {
		if len(cells) != len(schema) {
			return nil, fmt.Errorf("serve: row %d: arity %d != schema arity %d", rn, len(cells), len(schema))
		}
		row := make(relational.Row, len(cells))
		for i, cell := range cells {
			v, err := decodeCell(cell, schema[i].Type)
			if err != nil {
				return nil, fmt.Errorf("serve: row %d, column %s: %w", rn, schema[i].Name, err)
			}
			row[i] = v
		}
		if err := rel.Append(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// decodeCell converts one JSON scalar to a typed value.
func decodeCell(cell any, t relational.Type) (relational.Value, error) {
	switch t {
	case relational.Int:
		f, ok := cell.(float64)
		if !ok || f != float64(int64(f)) {
			return relational.Value{}, fmt.Errorf("expected integer, got %v", cell)
		}
		return relational.IntV(int64(f)), nil
	case relational.Float:
		f, ok := cell.(float64)
		if !ok {
			return relational.Value{}, fmt.Errorf("expected number, got %v", cell)
		}
		return relational.FloatV(f), nil
	default:
		str, ok := cell.(string)
		if !ok {
			return relational.Value{}, fmt.Errorf("expected string, got %v", cell)
		}
		return relational.StringV(str), nil
	}
}

// GangRequest is the /v1/gang body: Announce delays the shared fabric's
// next admission round until that many queries are in flight (the load
// harness uses it so a wave of concurrent sessions genuinely contends —
// the serving analogue of rethink-sql's Expect barrier), and Withdraw
// releases slots a client announced but can no longer fill (e.g. its
// own request errored before reaching the server).
type GangRequest struct {
	Announce int `json:"announce,omitempty"`
	Withdraw int `json:"withdraw,omitempty"`
}

// GangResponse reports the outstanding slot count.
type GangResponse struct {
	Outstanding int `json:"outstanding"`
}

func (s *Server) handleGang(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authenticate(r); !ok {
		writeErr(w, http.StatusUnauthorized, "serve: unknown or missing API key")
		return
	}
	var req GangRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Announce < 0 || req.Withdraw < 0 {
		writeErr(w, http.StatusBadRequest, "serve: body must be JSON {\"announce\": n} or {\"withdraw\": n}")
		return
	}
	fab := s.eng.Fabric()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "serve: draining")
		return
	}
	if req.Announce > 0 {
		s.gangRemaining += req.Announce
		if fab != nil {
			fab.Expect(s.gangRemaining)
		}
	}
	wd := req.Withdraw
	if wd > s.gangRemaining {
		wd = s.gangRemaining
	}
	s.gangRemaining -= wd
	out := s.gangRemaining
	s.mu.Unlock()
	if fab != nil {
		for i := 0; i < wd; i++ {
			fab.Withdraw()
		}
	}
	writeJSON(w, http.StatusOK, GangResponse{Outstanding: out})
}

// Metrics is the /metrics document.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Inflight      int     `json:"inflight"`
	QueriesServed uint64  `json:"queries_served"`
	CatalogEpoch  uint64  `json:"catalog_epoch"`
	// Tenants maps tenant name to its serving totals.
	Tenants map[string]*TenantCounters `json:"tenants"`
	// PlanCache is the prepared-statement cache counter snapshot.
	PlanCache PlanCacheStats `json:"plan_cache"`
	// Fabric is the shared-fabric aggregate (nil on single-node engines):
	// link utilization plus the raw admission counters, whose ClassBytes
	// map is the per-tenant-class bandwidth attribution.
	Fabric *wire.FabricMetrics `json:"fabric,omitempty"`
	// Cluster is the elastic-cluster health snapshot (nil unless the
	// engine runs with replication > 1 or a fault plan): membership
	// counts, rebalance/repair totals, and fault-schedule progress.
	Cluster *wire.ClusterHealth `json:"cluster,omitempty"`
}

// MetricsSnapshot builds the /metrics document (exported for in-process
// harnesses).
func (s *Server) MetricsSnapshot() *Metrics {
	m := &Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		CatalogEpoch:  s.eng.CatalogEpoch(),
		PlanCache:     s.cache.Stats(),
		Tenants:       map[string]*TenantCounters{},
	}
	s.mu.Lock()
	m.Draining = s.draining
	m.Inflight = s.inflightCount
	m.QueriesServed = s.served
	for name, ts := range s.tstats {
		c := *ts
		m.Tenants[name] = &c
	}
	s.mu.Unlock()
	if fab := s.eng.Fabric(); fab != nil {
		m.Fabric = wire.FromFabric(fab.Stats(), fab.Admission())
	}
	if lcm := s.eng.Lifecycle(); lcm != nil {
		m.Cluster = wire.FromHealth(lcm.Health())
	}
	return m
}

// HostRequest is the /v1/hosts body: one membership action against the
// elastic cluster. "drain" evacuates a worker's shards to other live
// replicas (the host stays up as a copy source but serves no primaries),
// "restore" re-admits a drained worker, "join" annexes a spare topology
// host as a new worker. Drain/restore address a worker index; join
// ignores it.
type HostRequest struct {
	Action string `json:"action"`
	Worker int    `json:"worker"`
}

// HostResponse reports the affected worker (the new worker's index for
// join) and the post-action cluster health.
type HostResponse struct {
	Action  string              `json:"action"`
	Worker  int                 `json:"worker"`
	Cluster *wire.ClusterHealth `json:"cluster"`
}

func (s *Server) handleHosts(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authenticate(r); !ok {
		writeErr(w, http.StatusUnauthorized, "serve: unknown or missing API key")
		return
	}
	release, ok := s.admit()
	if !ok {
		writeErr(w, http.StatusServiceUnavailable, "serve: draining — not accepting membership changes")
		return
	}
	defer release()
	var req HostRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "serve: body must be JSON {\"action\": ..., \"worker\": n}")
		return
	}
	lcm := s.eng.Lifecycle()
	if lcm == nil {
		writeErr(w, http.StatusConflict,
			"serve: cluster lifecycle inactive — boot the engine with replication > 1 or a fault plan")
		return
	}
	worker := req.Worker
	var err error
	switch req.Action {
	case "drain":
		err = s.eng.DrainHost(req.Worker)
	case "restore":
		err = s.eng.RestoreHost(req.Worker)
	case "join":
		worker, err = s.eng.JoinHost()
	default:
		writeErr(w, http.StatusBadRequest, "serve: unknown host action %q (have drain, restore, join)", req.Action)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, HostResponse{Action: req.Action, Worker: worker, Cluster: wire.FromHealth(lcm.Health())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

// Drain puts the server into graceful shutdown: new work is refused
// with 503, announced-but-unfilled gang slots are withdrawn from the
// fabric's admission barrier (so in-flight queries parked there resume
// instead of waiting for peers that will never arrive), and the call
// blocks until every in-flight request has finished or ctx expires.
// Drain is idempotent; concurrent calls all wait for the same drain.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		orphans := s.gangRemaining
		s.gangRemaining = 0
		s.mu.Unlock()
		close(s.subsStop) // held-open subscriptions end now, not at stream close
		if fab := s.eng.Fabric(); fab != nil {
			for i := 0; i < orphans; i++ {
				fab.Withdraw()
			}
		}
		go func() {
			s.inflight.Wait()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := s.Drain(r.Context()); err != nil {
		writeErr(w, http.StatusRequestTimeout, "serve: drain interrupted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
