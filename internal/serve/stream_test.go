package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
)

// streamServer boots a distributed server fronting an empty "events"
// relation ready for streaming ingest.
func streamServer(t *testing.T, tenants *Tenants) *Server {
	t.Helper()
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 2
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(relational.NewRelation("events", relational.Schema{
		{Name: "k", Type: relational.String},
		{Name: "t", Type: relational.Int},
		{Name: "v", Type: relational.Int},
	}))
	return New(eng, tenants, Options{})
}

// rawDo posts a JSON body and returns the raw recorder (headers and
// all).
func rawDo(t *testing.T, h http.Handler, path, apiKey string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, &buf)
	req.Header.Set("Authorization", "Bearer "+apiKey)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// serveEvents is the deterministic fixture: keys cycle k0..k4, time
// advances every other event with disorder bounded by lateness 2.
func serveEvents(n int) [][]any {
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		tt := i/2 - i%2
		if tt < 0 {
			tt = 0
		}
		rows[i] = []any{fmt.Sprintf("k%d", i%5), tt, i % 7}
	}
	return rows
}

// TestServeStreamIngestSubscribeParity: batches in over /v1/stream, a
// subscription out as NDJSON, and every emitted window row-for-row
// equal to a /v1/sql batch query over the same time range.
func TestServeStreamIngestSubscribeParity(t *testing.T) {
	srv := streamServer(t, DefaultTenants())
	h := srv.Handler()
	events := serveEvents(300)

	for i := 0; i < len(events); i += 100 {
		var resp IngestResponse
		rec := rawDo(t, h, "/v1/stream", "gold-key", StreamRequest{Table: "events", Rows: events[i : i+100]})
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest: got %d: %s", rec.Code, rec.Body.String())
		}
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Start != int64(i) || resp.Rows != 100 {
			t.Fatalf("ingest ack = %+v, want start %d rows 100", resp, i)
		}
		if resp.Bytes <= 0 || resp.NetSeconds <= 0 {
			t.Fatalf("distributed ingest should bill bytes and fabric time: %+v", resp)
		}
		// Registration is data version 1; each batch bumps from there.
		if resp.DataEpoch != uint64(i/100+2) {
			t.Fatalf("DataEpoch = %d after batch %d", resp.DataEpoch, i/100)
		}
	}

	// Close the stream, then subscribe: primed rows replay through the
	// windower and the close flushes, so the response terminates.
	if rec := rawDo(t, h, "/v1/stream", "gold-key", StreamRequest{Table: "events", Close: true}); rec.Code != http.StatusOK {
		t.Fatalf("close: got %d: %s", rec.Code, rec.Body.String())
	}
	sub := rawDo(t, h, "/v1/stream", "gold-key", StreamRequest{
		SQL:    "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM events GROUP BY k",
		Window: &WindowRequest{TimeCol: "t", Size: 8, Slide: 4, Lateness: 2},
	})
	if sub.Code != http.StatusOK {
		t.Fatalf("subscribe: got %d: %s", sub.Code, sub.Body.String())
	}
	if ct := sub.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(sub.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("subscription emitted %d lines, want windows + done", len(lines))
	}
	var end StreamEnd
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &end); err != nil {
		t.Fatal(err)
	}
	if !end.Done || end.Error != "" || end.Tenant != "gold" {
		t.Fatalf("terminal line = %+v", end)
	}
	if end.Stats == nil || end.Stats.Events != 300 || end.Stats.Dropped != 0 {
		t.Fatalf("stream stats = %+v, want 300 events, 0 dropped", end.Stats)
	}
	wins := lines[:len(lines)-1]
	if len(wins) < 10 {
		t.Fatalf("only %d windows emitted", len(wins))
	}
	if int64(len(wins)) != end.Stats.Windows {
		t.Fatalf("emitted %d window lines, stats say %d", len(wins), end.Stats.Windows)
	}
	for _, line := range wins {
		var win StreamWindow
		if err := json.Unmarshal([]byte(line), &win); err != nil {
			t.Fatal(err)
		}
		batch := QueryRequest{SQL: fmt.Sprintf(
			"SELECT k, SUM(v) AS s, COUNT(*) AS n FROM events WHERE t >= %d AND t < %d GROUP BY k",
			win.Start, win.End)}
		var resp QueryResponse
		if code := do(t, h, "POST", "/v1/sql", "gold-key", batch, &resp); code != http.StatusOK {
			t.Fatalf("batch rerun: got %d", code)
		}
		if !reflect.DeepEqual(win.Rows, resp.Result.Rows) {
			t.Fatalf("window [%d,%d) diverges from batch:\nstream: %v\nbatch:  %v",
				win.Start, win.End, win.Rows, resp.Result.Rows)
		}
	}
	// Appends to a closed stream are refused.
	if rec := rawDo(t, h, "/v1/stream", "gold-key", StreamRequest{Table: "events", Rows: events[:1]}); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("append after close: got %d, want 422", rec.Code)
	}
}

// TestServeStreamBadRequests: the mode matrix's error paths.
func TestServeStreamBadRequests(t *testing.T) {
	srv := streamServer(t, DefaultTenants())
	h := srv.Handler()
	cases := []struct {
		req  StreamRequest
		code int
	}{
		{StreamRequest{}, http.StatusBadRequest},
		{StreamRequest{Table: "events"}, http.StatusBadRequest}, // no rows, no close
		{StreamRequest{SQL: "SELECT 1", Table: "events", Close: true}, http.StatusBadRequest},
		{StreamRequest{SQL: "SELECT k FROM events"}, http.StatusBadRequest}, // no window
		{StreamRequest{Table: "nope", Rows: [][]any{{"a", 1, 2}}}, http.StatusUnprocessableEntity},
		{StreamRequest{Table: "events", Rows: [][]any{{"a", "not-int", 2}}}, http.StatusUnprocessableEntity},
		{StreamRequest{Table: "events", Rows: [][]any{{"a", 1}}}, http.StatusUnprocessableEntity}, // arity
		{StreamRequest{SQL: "SELECT k FROM events", Window: &WindowRequest{TimeCol: "t", Size: 8}}, http.StatusUnprocessableEntity}, // non-aggregate
		{StreamRequest{SQL: "SELECT k, COUNT(*) AS n FROM events GROUP BY k", Window: &WindowRequest{TimeCol: "k", Size: 8}}, http.StatusUnprocessableEntity}, // String time col
	}
	for i, c := range cases {
		if rec := rawDo(t, h, "/v1/stream", "gold-key", c.req); rec.Code != c.code {
			t.Fatalf("case %d: got %d, want %d: %s", i, rec.Code, c.code, rec.Body.String())
		}
	}
	if rec := rawDo(t, h, "/v1/stream", "", StreamRequest{Table: "events", Close: true}); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated: got %d", rec.Code)
	}
}

// TestServeRateLimit: the token bucket refuses over-rate submissions
// with 429 + Retry-After on both endpoints, counts them per tenant, and
// refills with (injected) time. Unmetered tenants never hit it.
func TestServeRateLimit(t *testing.T) {
	tenants, err := NewTenants([]Tenant{
		{Name: "metered", APIKey: "m-key", RatePerSec: 1, Burst: 2},
		{Name: "free", APIKey: "f-key"},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := streamServer(t, tenants)
	now := time.Unix(1_000_000, 0)
	srv.limiter = newRateLimiter(func() time.Time { return now })
	h := srv.Handler()
	q := QueryRequest{SQL: "SELECT COUNT(*) AS n FROM events"}

	for i := 0; i < 2; i++ { // burst drains
		if rec := rawDo(t, h, "/v1/sql", "m-key", q); rec.Code != http.StatusOK {
			t.Fatalf("burst query %d: got %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := rawDo(t, h, "/v1/sql", "m-key", q)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate: got %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	// /v1/stream draws from the same bucket.
	if rec := rawDo(t, h, "/v1/stream", "m-key", StreamRequest{Table: "events", Close: true}); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("stream over-rate: got %d, want 429", rec.Code)
	}
	// The free tenant runs unmetered alongside.
	for i := 0; i < 5; i++ {
		if rec := rawDo(t, h, "/v1/sql", "f-key", q); rec.Code != http.StatusOK {
			t.Fatalf("free query %d: got %d", i, rec.Code)
		}
	}
	// A second of refill buys exactly one more token.
	now = now.Add(time.Second)
	if rec := rawDo(t, h, "/v1/sql", "m-key", q); rec.Code != http.StatusOK {
		t.Fatalf("post-refill: got %d", rec.Code)
	}
	if rec := rawDo(t, h, "/v1/sql", "m-key", q); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("post-refill second: got %d, want 429", rec.Code)
	}
	m := srv.MetricsSnapshot()
	if got := m.Tenants["metered"].RateLimited; got != 3 {
		t.Fatalf("metered rate_limited = %d, want 3", got)
	}
	if got := m.Tenants["free"].RateLimited; got != 0 {
		t.Fatalf("free rate_limited = %d, want 0", got)
	}
}

// TestServeStreamDrainEndsSubscription: a held-open subscription must
// not wedge graceful shutdown — drain cancels it and completes.
func TestServeStreamDrainEndsSubscription(t *testing.T) {
	srv := streamServer(t, DefaultTenants())
	h := srv.Handler()
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- rawDo(t, h, "/v1/stream", "gold-key", StreamRequest{
			SQL:    "SELECT k, COUNT(*) AS n FROM events GROUP BY k",
			Window: &WindowRequest{TimeCol: "t", Size: 8},
		})
	}()
	// Wait for the subscription to be admitted before draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := srv.inflightCount
		srv.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain wedged on subscription: %v", err)
	}
	rec := <-done
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var end StreamEnd
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &end); err != nil {
		t.Fatalf("terminal line: %v (%q)", err, rec.Body.String())
	}
	if !end.Done || end.Error == "" {
		t.Fatalf("drained subscription should report its cancellation: %+v", end)
	}
}
