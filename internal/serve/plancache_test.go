package serve

import (
	"net/http"
	"testing"

	"repro/internal/relational"
	"repro/internal/serve/wire"
	"repro/internal/sql"
)

// registerScores installs (or replaces) a small relation whose contents
// encode a version marker, so a stale cached plan is detectable in the
// served rows, not just in counters.
func registerScores(eng *sql.Engine, version int64) {
	rel := relational.NewRelation("scores", relational.Schema{
		{Name: "id", Type: relational.Int},
		{Name: "v", Type: relational.Int},
	})
	for i := int64(0); i < 4; i++ {
		_ = rel.Append(relational.Row{relational.IntV(i), relational.IntV(version)})
	}
	eng.Register(rel)
}

// TestPlanCacheEpochRegression is the ISSUE-mandated staleness
// regression: a cached prepared statement must NOT be served after
// Register replaces a relation. The replacement bumps the engine's
// catalog epoch; the next prepared submission must be an epoch
// invalidation (miss), and its rows must reflect the new catalog.
func TestPlanCacheEpochRegression(t *testing.T) {
	eng := testEngine(t, 0)
	registerScores(eng, 1)
	srv := New(eng, DefaultTenants(), Options{})
	h := srv.Handler()
	const q = "SELECT SUM(v) AS total FROM scores"

	run := func() (QueryResponse, int) {
		var resp QueryResponse
		code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: q, Prepare: true}, &resp)
		return resp, code
	}

	// Prime: miss, then hit.
	r1, code := run()
	if code != http.StatusOK || r1.CacheHit {
		t.Fatalf("prime: code %d, hit %v (want 200, miss)", code, r1.CacheHit)
	}
	r2, _ := run()
	if !r2.CacheHit {
		t.Fatal("repeat without Register: want cache hit")
	}
	if total := r2.Result.Rows[0][0].(float64); total != 4 {
		// JSON numbers decode as float64; SUM over int stays int64-exact.
		t.Fatalf("v1 total = %v, want 4", total)
	}

	// Replace the relation: epoch moves, cached plan must not be served.
	registerScores(eng, 100)
	r3, _ := run()
	if r3.CacheHit {
		t.Fatal("after Register: cached plan served (staleness regression)")
	}
	if r3.CatalogEpoch != r2.CatalogEpoch+1 {
		t.Fatalf("epoch = %d after Register, want %d", r3.CatalogEpoch, r2.CatalogEpoch+1)
	}
	if total := r3.Result.Rows[0][0].(float64); total != 400 {
		t.Fatalf("post-replace total = %v, want 400 (stale rows served?)", total)
	}
	st := srv.cache.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", st.Hits, st.Misses)
	}

	// And the re-prepared plan is cached again under the new epoch.
	r4, _ := run()
	if !r4.CacheHit {
		t.Fatal("repeat after re-prepare: want cache hit")
	}
}

// TestPlanCacheKeying: same statement under different tenants or
// different session configs never shares an entry.
func TestPlanCacheKeying(t *testing.T) {
	c := NewPlanCache(8)
	gold := &Tenant{Name: "gold", APIKey: "g", Priority: "interactive", Weight: 3}
	bronze := &Tenant{Name: "bronze", APIKey: "b", Weight: 1}
	const q = "SELECT 1"
	if c.Key(gold, q) == c.Key(bronze, q) {
		t.Fatal("distinct tenants share a cache key")
	}
	retuned := *gold
	retuned.Workers = 2
	if c.Key(gold, q) == c.Key(&retuned, q) {
		t.Fatal("distinct session configs share a cache key")
	}
	if c.Key(gold, q) == c.Key(gold, "SELECT 2") {
		t.Fatal("distinct statements share a cache key")
	}
}

// TestPlanCacheLRU: capacity bounds hold and eviction is
// least-recently-used.
func TestPlanCacheLRU(t *testing.T) {
	eng := testEngine(t, 100)
	sess := eng.Session()
	stmt, err := sess.Prepare("SELECT COUNT(*) AS n FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(2)
	c.Put("a", stmt, 1)
	c.Put("b", stmt, 1)
	if _, ok := c.Get("a", 1); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", stmt, 1)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a", 1); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries/evictions = %d/%d, want 2/1", st.Entries, st.Evictions)
	}
}

// TestPlanCacheEpochMismatchCounts: a direct Get under a newer epoch
// removes the entry and counts invalidation + miss.
func TestPlanCacheEpochMismatchCounts(t *testing.T) {
	eng := testEngine(t, 100)
	stmt, err := eng.Session().Prepare("SELECT COUNT(*) AS n FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(4)
	c.Put("k", stmt, 7)
	if _, ok := c.Get("k", 8); ok {
		t.Fatal("stale-epoch entry served")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Entry is gone, so a retry at the old epoch is a plain miss.
	if _, ok := c.Get("k", 7); ok {
		t.Fatal("removed entry resurrected")
	}
}

// TestStmtBindIsolation: one cached statement executed from two
// different sessions carries each session's QoS, proving Bind shares
// only the parsed form.
func TestStmtBindIsolation(t *testing.T) {
	eng := testEngine(t, 500)
	base, err := eng.Session().Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	gold, _ := DefaultTenants().ByName("gold")
	bronze, _ := DefaultTenants().ByName("bronze")
	rg, err := base.Bind(gold.Session(eng)).Exec(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Bind(bronze.Session(eng)).Exec(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rg.Admission == nil || rg.Admission.Class != "interactive" || rg.Admission.Weight != 3 {
		t.Fatalf("gold exec admission = %+v", rg.Admission)
	}
	if rb.Admission == nil || rb.Admission.Weight != 1 {
		t.Fatalf("bronze exec admission = %+v", rb.Admission)
	}
	if wire.Fingerprint(wire.FromResult(rg)) != wire.Fingerprint(wire.FromResult(rb)) {
		t.Fatal("same statement, different rows across sessions")
	}
}
