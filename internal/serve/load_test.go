package serve

import (
	"context"
	"testing"

	"repro/internal/sql"
)

// loadEngine builds the distributed engine the load tests drive (and
// an identically-configured reference for row verification).
func loadEngine(t *testing.T, rows int) *sql.Engine {
	t.Helper()
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 4
	cfg.Topology = "leafspine"
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, 200)
	return eng
}

// TestLoadWeighted3to1 is the in-process acceptance run: two tenants at
// fabric weight 3:1, a gang-announced wave of concurrent sessions, and
// the weighted tenant's model p95 must come out measurably lower. Rows
// must be identical across every session and identical to direct
// library execution. (CI drives the same assertion at 1000 sessions
// through the rethink-load binary; this keeps it race-checked.)
func TestLoadWeighted3to1(t *testing.T) {
	const rows = 4000
	srv := New(loadEngine(t, rows), DefaultTenants(), Options{})
	cfg := LoadConfig{
		Handler:           srv.Handler(),
		Sessions:          60,
		QueriesPerSession: 2,
		Prepare:           true,
		Gang:              true,
		Tenants: []LoadTenant{
			{Name: "gold", APIKey: "gold-key", Share: 1},
			{Name: "bronze", APIKey: "bronze-key", Share: 1},
		},
	}
	report, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalErrors != 0 {
		t.Fatalf("%d queries failed", report.TotalErrors)
	}
	if report.TotalQueries != cfg.Sessions*cfg.QueriesPerSession {
		t.Fatalf("queries = %d, want %d", report.TotalQueries, cfg.Sessions*cfg.QueriesPerSession)
	}
	gold, bronze := report.Tenants["gold"], report.Tenants["bronze"]
	if gold == nil || bronze == nil {
		t.Fatalf("missing tenant reports: %v", report.Tenants)
	}
	if gold.Sessions != 30 || bronze.Sessions != 30 {
		t.Fatalf("session split = %d/%d, want 30/30", gold.Sessions, bronze.Sessions)
	}
	// The entire first wave coexisted in one admission round: the gang
	// floor held until all sessions joined.
	adm := report.Metrics.Fabric.Admission
	if adm.PeakParties < cfg.Sessions {
		t.Fatalf("peak parties = %d, want >= %d (gang floor broke early)", adm.PeakParties, cfg.Sessions)
	}
	// Weight 3 vs 1 on the same fabric under the same contention: the
	// weighted tenant's modeled latency distribution sits lower.
	if gold.Model.P95 >= bronze.Model.P95 {
		t.Fatalf("weighted tenant not faster: gold model p95 %.3fms vs bronze %.3fms",
			gold.Model.P95, bronze.Model.P95)
	}
	if gold.Model.P50 >= bronze.Model.P50 {
		t.Fatalf("weighted tenant not faster at the median: gold %.3fms vs bronze %.3fms",
			gold.Model.P50, bronze.Model.P50)
	}
	// Every distinct statement produced one fingerprint across all
	// sessions (RunLoad errors on divergence) and those rows match
	// direct library execution on a fresh engine with the same catalog.
	if len(report.Fingerprints) != len(DefaultLoadQueries) {
		t.Fatalf("fingerprints for %d statements, want %d", len(report.Fingerprints), len(DefaultLoadQueries))
	}
	if err := VerifyAgainstEngine(report, loadEngine(t, rows)); err != nil {
		t.Fatal(err)
	}
	// Prepared statements hit the plan cache. The whole first wave can
	// race past an empty cache before any priming Put lands, so the
	// miss count is not exact — but every query went through the cache,
	// only 6 (tenant, statement) keys exist, and a healthy share of the
	// run must be hits.
	pc := report.Metrics.PlanCache
	if pc.Hits+pc.Misses != uint64(report.TotalQueries) {
		t.Fatalf("plan cache hits+misses = %d+%d, want %d lookups", pc.Hits, pc.Misses, report.TotalQueries)
	}
	if pc.Entries != len(DefaultLoadQueries)*2 {
		t.Fatalf("plan cache entries = %d, want %d", pc.Entries, len(DefaultLoadQueries)*2)
	}
	if pc.Hits < uint64(report.TotalQueries)/4 {
		t.Fatalf("plan cache hits = %d of %d queries — cache not being used", pc.Hits, report.TotalQueries)
	}
	// Both tenants moved bytes over the fabric, attributed to their QoS
	// classes.
	if gold.NetBytes <= 0 || bronze.NetBytes <= 0 {
		t.Fatalf("net breakdowns missing: gold %v, bronze %v", gold.NetBytes, bronze.NetBytes)
	}
	if adm.ClassBytes["interactive"] <= 0 || adm.ClassBytes[""] <= 0 {
		t.Fatalf("per-class byte attribution missing: %v", adm.ClassBytes)
	}
	if report.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestLoadSessionDealing: shares deal sessions proportionally.
func TestLoadSessionDealing(t *testing.T) {
	srv := New(loadEngine(t, 200), DefaultTenants(), Options{})
	report, err := RunLoad(context.Background(), LoadConfig{
		Handler:  srv.Handler(),
		Sessions: 8,
		Queries:  []string{"SELECT COUNT(*) AS n FROM customers"},
		Tenants: []LoadTenant{
			{Name: "gold", APIKey: "gold-key", Share: 3},
			{Name: "bronze", APIKey: "bronze-key", Share: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Tenants["gold"].Sessions != 6 || report.Tenants["bronze"].Sessions != 2 {
		t.Fatalf("3:1 share dealt %d/%d sessions, want 6/2",
			report.Tenants["gold"].Sessions, report.Tenants["bronze"].Sessions)
	}
}

// TestLoadConfigValidation: bad configs fail fast.
func TestLoadConfigValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{Sessions: 0}); err == nil {
		t.Fatal("Sessions 0 accepted")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{Sessions: 1}); err == nil {
		t.Fatal("no tenants accepted")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{Sessions: 1, Tenants: []LoadTenant{{Name: "x", APIKey: "k"}}}); err == nil {
		t.Fatal("no target accepted")
	}
}

// TestLoadErrorsCounted: a tenant with a bad key produces per-tenant
// errors, not a harness crash.
func TestLoadErrorsCounted(t *testing.T) {
	srv := New(loadEngine(t, 200), DefaultTenants(), Options{})
	report, err := RunLoad(context.Background(), LoadConfig{
		Handler:  srv.Handler(),
		Sessions: 4,
		Queries:  []string{"SELECT COUNT(*) AS n FROM customers"},
		Tenants: []LoadTenant{
			{Name: "gold", APIKey: "gold-key", Share: 1},
			{Name: "intruder", APIKey: "wrong-key", Share: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Tenants["intruder"].Errors != 2 || report.TotalErrors != 2 {
		t.Fatalf("intruder errors = %d (total %d), want 2", report.Tenants["intruder"].Errors, report.TotalErrors)
	}
	if report.Tenants["gold"].Queries != 2 {
		t.Fatalf("gold queries = %d, want 2", report.Tenants["gold"].Queries)
	}
}
