package serve

import (
	"math"
	"sync"
	"time"
)

// rateLimiter enforces each tenant's RatePerSec with a classic token
// bucket: a bucket of depth Burst refills continuously at RatePerSec
// and every admitted request takes one token. Tenants with no rate
// configured never touch a bucket. The limiter sits in front of the
// inflight cap — it bounds how often a tenant may *submit*, which
// MaxInflight (a concurrency cap) cannot see when queries are short.
type rateLimiter struct {
	mu  sync.Mutex
	now func() time.Time
	b   map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter reading time from now; nil means
// time.Now (tests inject a fake clock for determinism).
func newRateLimiter(now func() time.Time) *rateLimiter {
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{now: now, b: map[string]*bucket{}}
}

// allow charges one submission to t's bucket. When refused, retryAfter
// is the whole number of seconds (at least 1) until the bucket will
// hold a full token again — the value served in the Retry-After header.
func (rl *rateLimiter) allow(t *Tenant) (ok bool, retryAfter int) {
	if t.RatePerSec <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	burst := t.burst()
	bk := rl.b[t.Name]
	if bk == nil {
		bk = &bucket{tokens: burst, last: now}
		rl.b[t.Name] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(burst, bk.tokens+dt*t.RatePerSec)
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	wait := (1 - bk.tokens) / t.RatePerSec
	retryAfter = int(math.Ceil(wait))
	if retryAfter < 1 {
		retryAfter = 1
	}
	return false, retryAfter
}
