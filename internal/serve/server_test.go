package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve/wire"
	"repro/internal/sql"
)

// testEngine builds a small distributed engine with the demo catalog.
func testEngine(t *testing.T, rows int) *sql.Engine {
	t.Helper()
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 2
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, rows, 50)
	return eng
}

func testServer(t *testing.T, rows int) *Server {
	t.Helper()
	return New(testEngine(t, rows), DefaultTenants(), Options{})
}

// do posts a JSON body and decodes the JSON response into out.
func do(t *testing.T, h http.Handler, method, path, apiKey string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: bad response JSON: %v", method, path, err)
		}
	}
	return rec.Code
}

const testQuery = "SELECT region, COUNT(*) AS orders, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC"

// TestServeAuth: requests without a key, with an unknown key, and with
// each header form.
func TestServeAuth(t *testing.T) {
	srv := testServer(t, 500)
	h := srv.Handler()
	if code := do(t, h, "POST", "/v1/sql", "", QueryRequest{SQL: testQuery}, nil); code != http.StatusUnauthorized {
		t.Fatalf("no key: got %d, want 401", code)
	}
	if code := do(t, h, "POST", "/v1/sql", "wrong-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusUnauthorized {
		t.Fatalf("unknown key: got %d, want 401", code)
	}
	var resp QueryResponse
	if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, &resp); code != http.StatusOK {
		t.Fatalf("bearer auth: got %d, want 200", code)
	}
	if resp.Tenant != "gold" {
		t.Fatalf("tenant = %q, want gold", resp.Tenant)
	}
	// X-API-Key form.
	req := httptest.NewRequest("POST", "/v1/sql", bytes.NewBufferString(`{"sql":"SELECT COUNT(*) AS n FROM customers"}`))
	req.Header.Set("X-API-Key", "bronze-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("X-API-Key auth: got %d, want 200", rec.Code)
	}
}

// TestServeRowParity: rows served over the wire are row-for-row
// identical to direct library execution, and the full stats envelope
// (net, admission) rides along for distributed runs.
func TestServeRowParity(t *testing.T) {
	eng := testEngine(t, 2000)
	srv := New(eng, DefaultTenants(), Options{})
	var resp QueryResponse
	if code := do(t, srv.Handler(), "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, &resp); code != http.StatusOK {
		t.Fatalf("query: got %d", code)
	}
	// Direct execution on a fresh engine with the identical catalog (the
	// served engine's fabric already carries the first query's flows).
	ref := testEngine(t, 2000)
	res, err := ref.Session().Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := wire.Fingerprint(wire.FromResult(res))
	got := wire.Fingerprint(resp.Result)
	if got != want {
		t.Fatalf("served rows differ from direct execution:\n%s\nvs\n%s", got, want)
	}
	if resp.Result.Net == nil || resp.Result.Net.Shards != 2 {
		t.Fatalf("distributed result missing net stats: %+v", resp.Result.Net)
	}
	if resp.Result.Admission == nil || resp.Result.Admission.Class != "interactive" || resp.Result.Admission.Weight != 3 {
		t.Fatalf("admission stats missing tenant QoS: %+v", resp.Result.Admission)
	}
	if resp.ModelMS <= 0 {
		t.Fatalf("ModelMS = %v, want > 0 for a distributed run", resp.ModelMS)
	}
}

// TestServeTenantQoSMapping: each tenant's configured session defaults
// reach the engine (class/weight visible in the admission report).
func TestServeTenantQoSMapping(t *testing.T) {
	srv := testServer(t, 500)
	var gold, bronze QueryResponse
	do(t, srv.Handler(), "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, &gold)
	do(t, srv.Handler(), "POST", "/v1/sql", "bronze-key", QueryRequest{SQL: testQuery}, &bronze)
	if gold.Result.Admission.Class != "interactive" || gold.Result.Admission.Weight != 3 {
		t.Fatalf("gold admission = %+v", gold.Result.Admission)
	}
	if bronze.Result.Admission.Class != "" || bronze.Result.Admission.Weight != 1 {
		t.Fatalf("bronze admission = %+v", bronze.Result.Admission)
	}
}

// TestServeTables: registering a relation over the wire, then querying
// it; types round-trip and the catalog epoch moves.
func TestServeTables(t *testing.T) {
	srv := testServer(t, 100)
	h := srv.Handler()
	var before Metrics
	do(t, h, "GET", "/metrics", "", nil, &before)
	table := TableRequest{
		Name: "cities",
		Schema: []wire.Column{
			{Name: "id", Type: "int"},
			{Name: "name", Type: "string"},
			{Name: "pop", Type: "float"},
		},
		Rows: [][]any{
			{1, "lisbon", 0.5},
			{2, "berlin", 3.7},
			{3, "athens", 0.6},
		},
	}
	var tresp TableResponse
	if code := do(t, h, "POST", "/v1/tables", "gold-key", table, &tresp); code != http.StatusOK {
		t.Fatalf("register: got %d", code)
	}
	if tresp.Rows != 3 || tresp.CatalogEpoch != before.CatalogEpoch+1 {
		t.Fatalf("register response %+v (epoch before %d)", tresp, before.CatalogEpoch)
	}
	var resp QueryResponse
	if code := do(t, h, "POST", "/v1/sql", "bronze-key", QueryRequest{SQL: "SELECT name, pop FROM cities WHERE id >= 2 ORDER BY name"}, &resp); code != http.StatusOK {
		t.Fatalf("query: got %d", code)
	}
	if resp.Result.RowCount != 2 || resp.Result.Rows[0][0] != "athens" {
		t.Fatalf("rows = %v", resp.Result.Rows)
	}
	// Bad rows are rejected with a clear error.
	bad := table
	bad.Rows = [][]any{{1.5, "x", 1.0}}
	if code := do(t, h, "POST", "/v1/tables", "gold-key", bad, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("fractional int: got %d, want 422", code)
	}
}

// TestServeMetrics: counters move with traffic.
func TestServeMetrics(t *testing.T) {
	srv := testServer(t, 500)
	h := srv.Handler()
	for i := 0; i < 3; i++ {
		if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery, Prepare: true}, nil); code != http.StatusOK {
			t.Fatalf("query %d: got %d", i, code)
		}
	}
	do(t, h, "POST", "/v1/sql", "bronze-key", QueryRequest{SQL: "SELECT nope FROM sales"}, nil)
	var m Metrics
	do(t, h, "GET", "/metrics", "", nil, &m)
	if m.QueriesServed != 3 {
		t.Fatalf("served = %d, want 3", m.QueriesServed)
	}
	g := m.Tenants["gold"]
	if g == nil || g.Queries != 3 || g.CacheHits != 2 {
		t.Fatalf("gold counters = %+v (want 3 queries, 2 cache hits)", g)
	}
	b := m.Tenants["bronze"]
	if b == nil || b.Errors != 1 {
		t.Fatalf("bronze counters = %+v (want 1 error)", b)
	}
	if m.PlanCache.Hits != 2 || m.PlanCache.Misses != 1 {
		t.Fatalf("plan cache = %+v", m.PlanCache)
	}
	if m.Fabric == nil || m.Fabric.Admission == nil || m.Fabric.Admission.Rounds == 0 {
		t.Fatalf("fabric metrics missing: %+v", m.Fabric)
	}
	if m.Fabric.Admission.ClassBytes["interactive"] <= 0 {
		t.Fatalf("per-class bytes missing interactive traffic: %v", m.Fabric.Admission.ClassBytes)
	}
}

// TestServeHealthz flips to 503 once draining.
func TestServeHealthz(t *testing.T) {
	srv := testServer(t, 100)
	h := srv.Handler()
	if code := do(t, h, "GET", "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, "GET", "/healthz", "", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", code)
	}
}

// TestServeBadRequests: malformed bodies are 400s, SQL errors 422s.
func TestServeBadRequests(t *testing.T) {
	srv := testServer(t, 100)
	h := srv.Handler()
	req := httptest.NewRequest("POST", "/v1/sql", bytes.NewBufferString("{not json"))
	req.Header.Set("Authorization", "Bearer gold-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: got %d, want 400", rec.Code)
	}
	if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: "SELEKT 1"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad SQL: got %d, want 422", code)
	}
}

// TestTenantsValidation covers the registry's error cases.
func TestTenantsValidation(t *testing.T) {
	cases := []struct {
		name string
		list []Tenant
	}{
		{"empty", nil},
		{"no key", []Tenant{{Name: "a"}}},
		{"dup name", []Tenant{{Name: "a", APIKey: "k1"}, {Name: "a", APIKey: "k2"}}},
		{"dup key", []Tenant{{Name: "a", APIKey: "k"}, {Name: "b", APIKey: "k"}}},
		{"negative weight", []Tenant{{Name: "a", APIKey: "k", Weight: -1}}},
	}
	for _, c := range cases {
		if _, err := NewTenants(c.list); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	ts, err := ParseTenants([]byte(`[{"name":"x","api_key":"xk","weight":2,"priority":"batch"}]`))
	if err != nil {
		t.Fatal(err)
	}
	tenant, ok := ts.ByKey("xk")
	if !ok || tenant.Weight != 2 || tenant.Priority != "batch" {
		t.Fatalf("parsed tenant = %+v", tenant)
	}
}

// TestServeConcurrentTenants hammers one server from many goroutines
// across both tenants (race detector coverage for the counters, cache
// and shared fabric).
func TestServeConcurrentTenants(t *testing.T) {
	srv := testServer(t, 1000)
	h := srv.Handler()
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			key := "gold-key"
			if i%2 == 1 {
				key = "bronze-key"
			}
			var resp QueryResponse
			if code := do(t, h, "POST", "/v1/sql", key, QueryRequest{SQL: testQuery, Prepare: true}, &resp); code != http.StatusOK {
				errs <- fmt.Errorf("request %d: code %d", i, code)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	var m Metrics
	do(t, h, "GET", "/metrics", "", nil, &m)
	if m.QueriesServed != n {
		t.Fatalf("served = %d, want %d", m.QueriesServed, n)
	}
}
