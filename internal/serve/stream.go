package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/relational"
	"repro/internal/serve/wire"
	"repro/internal/stream"
)

// StreamRequest is the /v1/stream body. One endpoint, three modes:
//
//   - ingest: {"table": ..., "rows": [[...], ...]} appends a timestamped
//     batch to a registered relation — running queries keep their
//     snapshot, subscriptions see the batch, distributed engines bill
//     the movement to the fabric's ingest class. Add "close": true to
//     end the stream after the batch.
//   - close: {"table": ..., "close": true} ends the table's stream
//     without appending; every subscription flushes and completes.
//   - subscribe: {"sql": ..., "window": {...}} registers a continuous
//     query and holds the response open, emitting one NDJSON line per
//     closed window and a terminal summary line.
type StreamRequest struct {
	Table string  `json:"table,omitempty"`
	Rows  [][]any `json:"rows,omitempty"`
	Close bool    `json:"close,omitempty"`

	SQL    string         `json:"sql,omitempty"`
	Window *WindowRequest `json:"window,omitempty"`
}

// WindowRequest is the wire form of stream.WindowSpec.
type WindowRequest struct {
	// TimeCol names the Int column carrying event time (ticks).
	TimeCol string `json:"time_col"`
	// Size is the window length in ticks.
	Size int64 `json:"size"`
	// Slide is the emission stride; 0 means tumbling (Slide = Size).
	Slide int64 `json:"slide,omitempty"`
	// Lateness is how many ticks of disorder to absorb before emitting.
	Lateness int64 `json:"lateness,omitempty"`
}

// IngestResponse acknowledges an append (and/or close): once a client
// holds one, the batch is durable in the engine's catalog — the chaos
// suite's "acked events survive a kill" contract hangs off this.
type IngestResponse struct {
	Tenant string `json:"tenant"`
	Table  string `json:"table"`
	// Start is the row offset the batch landed at.
	Start int64 `json:"start"`
	Rows  int   `json:"rows"`
	Bytes float64 `json:"bytes"`
	// NetSeconds is the modeled fabric time the ingest flows took
	// (0 single-node).
	NetSeconds float64 `json:"net_seconds,omitempty"`
	// DataEpoch is the table's post-append data version.
	DataEpoch uint64 `json:"data_epoch"`
	// Closed reports that the table's stream is now closed.
	Closed bool `json:"closed,omitempty"`
}

// StreamWindow is one NDJSON line of a subscription: a closed window's
// result relation plus its accounting.
type StreamWindow struct {
	Start  int64 `json:"window_start"`
	End    int64 `json:"window_end"`
	Events int64 `json:"events"`
	Late   int64 `json:"late,omitempty"`
	// FreshnessMS is how long after the closing event the window was
	// handed to the wire.
	FreshnessMS float64       `json:"freshness_ms"`
	Columns     []wire.Column `json:"columns"`
	Rows        [][]any       `json:"rows"`
}

// StreamEnd is the terminal NDJSON line of a subscription.
type StreamEnd struct {
	Done   bool              `json:"done"`
	Tenant string            `json:"tenant"`
	Error  string            `json:"error,omitempty"`
	Stats  *wire.StreamStats `json:"stats,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authenticate(r)
	if !ok {
		writeErr(w, http.StatusUnauthorized, "serve: unknown or missing API key")
		return
	}
	release, ok := s.admit()
	if !ok {
		writeErr(w, http.StatusServiceUnavailable, "serve: draining — not accepting stream requests")
		return
	}
	defer release()
	if !s.admitRate(tenant, w) {
		return
	}
	var req StreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "serve: bad stream body: %v", err)
		return
	}
	switch {
	case req.SQL != "":
		if req.Table != "" || len(req.Rows) > 0 || req.Close {
			writeErr(w, http.StatusBadRequest, "serve: a subscription carries only sql and window")
			return
		}
		s.streamSubscribe(w, r, tenant, &req)
	case req.Table != "" && (len(req.Rows) > 0 || req.Close):
		s.streamIngest(w, tenant, &req)
	default:
		writeErr(w, http.StatusBadRequest,
			"serve: stream body must carry table+rows (ingest), table+close, or sql+window (subscribe)")
	}
}

// streamIngest appends req.Rows to the table (decoding wire cells
// against its registered schema) and/or closes its stream.
func (s *Server) streamIngest(w http.ResponseWriter, tenant *Tenant, req *StreamRequest) {
	rel, ok := s.eng.Table(req.Table)
	if !ok {
		writeErr(w, http.StatusUnprocessableEntity, "serve: unknown table %q", req.Table)
		return
	}
	resp := IngestResponse{Tenant: tenant.Name, Table: rel.Name}
	if len(req.Rows) > 0 {
		rows, err := decodeBatch(req.Rows, rel.Schema)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		ing, err := s.eng.AppendRows(req.Table, rows)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.Start, resp.Rows = ing.Start, ing.Rows
		resp.Bytes, resp.NetSeconds = ing.Bytes, ing.NetSeconds
	}
	if req.Close {
		if err := s.eng.CloseStream(req.Table); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	}
	resp.DataEpoch = s.eng.DataEpoch(req.Table)
	resp.Closed = s.eng.StreamClosed(req.Table)
	writeJSON(w, http.StatusOK, resp)
}

// decodeBatch converts wire rows to typed rows against schema.
func decodeBatch(in [][]any, schema relational.Schema) ([]relational.Row, error) {
	rows := make([]relational.Row, len(in))
	for rn, cells := range in {
		if len(cells) != len(schema) {
			return nil, fmt.Errorf("serve: row %d: arity %d != schema arity %d", rn, len(cells), len(schema))
		}
		row := make(relational.Row, len(cells))
		for i, cell := range cells {
			v, err := decodeCell(cell, schema[i].Type)
			if err != nil {
				return nil, fmt.Errorf("serve: row %d, column %s: %w", rn, schema[i].Name, err)
			}
			row[i] = v
		}
		rows[rn] = row
	}
	return rows, nil
}

// streamSubscribe runs a continuous query, holding the response open
// and flushing one NDJSON line per closed window. The subscription ends
// when the source stream closes (final flush, done line carries the
// stats), the client disconnects, or the server drains.
func (s *Server) streamSubscribe(w http.ResponseWriter, r *http.Request, tenant *Tenant, req *StreamRequest) {
	if req.Window == nil {
		writeErr(w, http.StatusBadRequest, "serve: a subscription needs a window {time_col, size, ...}")
		return
	}
	spec := stream.WindowSpec{
		TimeCol:  req.Window.TimeCol,
		Size:     req.Window.Size,
		Slide:    req.Window.Slide,
		Lateness: req.Window.Lateness,
	}
	// The subscription dies with the client's connection or a server
	// drain, whichever comes first — a held-open response must not
	// wedge graceful shutdown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.subsStop:
			cancel()
		case <-ctx.Done():
		}
	}()
	sub, err := tenant.Session(s.eng).Subscribe(ctx, req.SQL, spec)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for win := range sub.Out() {
		line := StreamWindow{
			Start:       win.Start,
			End:         win.End,
			Events:      win.Events,
			Late:        win.Late,
			FreshnessMS: win.FreshnessSeconds * 1e3,
			Columns:     wire.Columns(win.Rows.Schema),
			Rows:        wire.Rows(win.Rows),
		}
		if err := enc.Encode(line); err != nil {
			cancel() // writer gone; unhook the subscription
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	<-sub.Done()
	st := sub.Stats()
	end := StreamEnd{Done: true, Tenant: tenant.Name, Stats: wire.FromStream(&st)}
	if err := sub.Err(); err != nil {
		end.Error = err.Error()
	}
	s.mu.Lock()
	s.tstats[tenant.Name].Queries++
	s.tstats[tenant.Name].Rows += uint64(st.Windows)
	s.mu.Unlock()
	_ = enc.Encode(end)
	if flusher != nil {
		flusher.Flush()
	}
}
