package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/serve/wire"
	"repro/internal/sql"
)

// LoadTenant is one tenant the load harness drives: its credentials
// plus the share of sessions it receives (shares are relative; 0 reads
// as 1).
type LoadTenant struct {
	Name   string `json:"name"`
	APIKey string `json:"api_key"`
	Share  int    `json:"share,omitempty"`
}

// LoadConfig drives one load run against a serving front door.
type LoadConfig struct {
	// BaseURL targets a running daemon ("http://host:port"). Leave empty
	// and set Handler to drive an in-process server without sockets.
	BaseURL string
	// Handler, when set, is driven directly through an in-memory
	// round-tripper — the "in-process engine" mode of the harness, which
	// exercises the full HTTP surface without consuming file
	// descriptors (thousands of concurrent sessions on one box).
	Handler http.Handler
	// Client overrides the HTTP client (BaseURL mode only); the default
	// pools enough connections for Sessions concurrent requests.
	Client *http.Client
	// Tenants is the tenant mix; sessions are dealt to tenants by Share.
	Tenants []LoadTenant
	// Queries is the statement mix; session i starts at query i%len and
	// round-robins. Empty uses DefaultLoadQueries.
	Queries []string
	// Sessions is the number of concurrent sessions (goroutines), each
	// holding exactly one query in flight at a time.
	Sessions int
	// QueriesPerSession is how many statements each session submits
	// sequentially (default 1).
	QueriesPerSession int
	// Prepare routes every statement through the server's plan cache.
	Prepare bool
	// Gang announces the first wave on the fabric's admission barrier,
	// so all Sessions first-queries genuinely coexist in one round
	// (deterministic contention, like rethink-sql's Expect). Requires a
	// distributed engine behind the target to have any effect.
	Gang bool
}

// DefaultLoadQueries is the statement mix used when LoadConfig.Queries
// is empty: a shuffle-heavy join and two aggregations over the demo
// star schema.
var DefaultLoadQueries = []string{
	"SELECT region, COUNT(*) AS orders, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC",
	"SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC",
	"SELECT product, MAX(price) AS top_price FROM sales WHERE year >= 2014 GROUP BY product ORDER BY top_price DESC LIMIT 5",
}

// Quantiles summarizes one latency distribution in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// quantiles computes the summary over ms samples (empty → zeros).
func quantiles(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Quantiles{
		P50:  pick(0.50),
		P95:  pick(0.95),
		P99:  pick(0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// TenantReport is one tenant's slice of a load run.
type TenantReport struct {
	Sessions  int `json:"sessions"`
	Queries   int `json:"queries"`
	Errors    int `json:"errors"`
	CacheHits int `json:"cache_hits"`
	// Wall is the client-observed request latency; Model is the modeled
	// service time (simulated fabric wall + spill I/O) the server
	// reported per query. Fabric weights show up in Model: barrier
	// wall-clock is shared by construction, simulated bandwidth is not.
	Wall  Quantiles `json:"wall"`
	Model Quantiles `json:"model"`
	// Net/spill/overlap breakdowns summed over the tenant's queries.
	NetBytes       float64 `json:"net_bytes"`
	NetSeconds     float64 `json:"net_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	OverlapSeconds float64 `json:"overlap_seconds"`
	SpillSeconds   float64 `json:"spill_seconds"`
	RowsReturned   uint64  `json:"rows_returned"`
}

// Report is the machine-readable artifact of one load run.
type Report struct {
	Target            string                   `json:"target"`
	Sessions          int                      `json:"sessions"`
	QueriesPerSession int                      `json:"queries_per_session"`
	Prepare           bool                     `json:"prepare"`
	Gang              bool                     `json:"gang"`
	TotalQueries      int                      `json:"total_queries"`
	TotalErrors       int                      `json:"total_errors"`
	WallSeconds       float64                  `json:"wall_seconds"`
	Throughput        float64                  `json:"throughput_qps"`
	Tenants           map[string]*TenantReport `json:"tenants"`
	// Fingerprints maps each distinct statement to the row fingerprint
	// every session observed for it. A load run fails if two sessions
	// see different rows for the same statement — results must not
	// depend on who asked or how contended the fabric was.
	Fingerprints map[string]string `json:"fingerprints"`
	// Metrics is the server's /metrics snapshot taken after the run
	// (plan-cache hit/miss counters, per-class fabric bytes, …).
	Metrics *Metrics `json:"metrics,omitempty"`
}

// handlerTransport drives an http.Handler in-process: the full wire
// surface without sockets.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, r)
	return rec.Result(), nil
}

// client builds the harness's HTTP client for the configured target.
func (c *LoadConfig) client() (*http.Client, string, error) {
	if c.Handler != nil {
		return &http.Client{Transport: handlerTransport{c.Handler}}, "http://in-process", nil
	}
	if c.BaseURL == "" {
		return nil, "", fmt.Errorf("serve: load config needs a BaseURL or a Handler")
	}
	cl := c.Client
	if cl == nil {
		tr := &http.Transport{
			MaxIdleConns:        c.Sessions + 16,
			MaxIdleConnsPerHost: c.Sessions + 16,
		}
		cl = &http.Client{Transport: tr}
	}
	return cl, strings.TrimRight(c.BaseURL, "/"), nil
}

// sample is one completed request.
type sample struct {
	tenant   string
	query    string
	wallMS   float64
	modelMS  float64
	cacheHit bool
	resp     *QueryResponse
	err      error
}

// RunLoad executes the configured load and aggregates the report.
// Sessions run as goroutines, each submitting its statements
// sequentially over the shared client; errors are counted per tenant
// and the first row-fingerprint divergence is returned as an error.
func RunLoad(ctx context.Context, cfg LoadConfig) (*Report, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("serve: load config needs Sessions > 0")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: load config needs at least one tenant")
	}
	queries := cfg.Queries
	if len(queries) == 0 {
		queries = DefaultLoadQueries
	}
	perSession := cfg.QueriesPerSession
	if perSession <= 0 {
		perSession = 1
	}
	client, base, err := cfg.client()
	if err != nil {
		return nil, err
	}
	// Deal sessions to tenants proportionally to Share: session i goes
	// to the tenant whose cumulative share bucket contains i.
	owners := make([]*LoadTenant, cfg.Sessions)
	totalShare := 0
	for i := range cfg.Tenants {
		if cfg.Tenants[i].Share <= 0 {
			cfg.Tenants[i].Share = 1
		}
		totalShare += cfg.Tenants[i].Share
	}
	for i := range owners {
		cum, point := 0, i*totalShare
		for ti := range cfg.Tenants {
			cum += cfg.Tenants[ti].Share * cfg.Sessions
			if point < cum {
				owners[i] = &cfg.Tenants[ti]
				break
			}
		}
		if owners[i] == nil {
			owners[i] = &cfg.Tenants[len(cfg.Tenants)-1]
		}
	}
	if cfg.Gang {
		if err := postGang(ctx, client, base, cfg.Tenants[0].APIKey, GangRequest{Announce: cfg.Sessions}); err != nil {
			return nil, fmt.Errorf("serve: gang announce: %w", err)
		}
	}
	samples := make([]sample, cfg.Sessions*perSession)
	var wg sync.WaitGroup
	started := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := owners[i]
			for j := 0; j < perSession; j++ {
				q := queries[(i+j)%len(queries)]
				s := runQuery(ctx, client, base, tenant, q, cfg.Prepare)
				if s.err != nil && cfg.Gang && j == 0 {
					// This session's first-wave slot will never be filled;
					// release it so the rest of the wave's barrier resolves.
					_ = postGang(ctx, client, base, tenant.APIKey, GangRequest{Withdraw: 1})
				}
				samples[i*perSession+j] = s
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(started).Seconds()

	report := &Report{
		Target:            base,
		Sessions:          cfg.Sessions,
		QueriesPerSession: perSession,
		Prepare:           cfg.Prepare,
		Gang:              cfg.Gang,
		WallSeconds:       wall,
		Tenants:           map[string]*TenantReport{},
		Fingerprints:      map[string]string{},
	}
	sessionsPer := map[string]int{}
	for _, o := range owners {
		sessionsPer[o.Name]++
	}
	wallMS := map[string][]float64{}
	modelMS := map[string][]float64{}
	var fpErr error
	for _, s := range samples {
		tr := report.Tenants[s.tenant]
		if tr == nil {
			tr = &TenantReport{Sessions: sessionsPer[s.tenant]}
			report.Tenants[s.tenant] = tr
		}
		if s.err != nil {
			tr.Errors++
			report.TotalErrors++
			continue
		}
		report.TotalQueries++
		tr.Queries++
		if s.cacheHit {
			tr.CacheHits++
		}
		wallMS[s.tenant] = append(wallMS[s.tenant], s.wallMS)
		modelMS[s.tenant] = append(modelMS[s.tenant], s.modelMS)
		res := s.resp.Result
		tr.RowsReturned += uint64(res.RowCount)
		if res.Net != nil {
			tr.NetBytes += res.Net.BytesShuffled
			tr.NetSeconds += res.Net.NetSeconds
			tr.ComputeSeconds += res.Net.ComputeSeconds
			tr.OverlapSeconds += res.Net.OverlapSeconds
			tr.SpillSeconds += res.Net.SpillSeconds
		}
		fp := rowFingerprint(res)
		if prev, ok := report.Fingerprints[s.query]; !ok {
			report.Fingerprints[s.query] = fp
		} else if prev != fp && fpErr == nil {
			fpErr = fmt.Errorf("serve: row divergence for %q: sessions observed different results under load", s.query)
		}
	}
	for name, tr := range report.Tenants {
		tr.Wall = quantiles(wallMS[name])
		tr.Model = quantiles(modelMS[name])
	}
	if wall > 0 {
		report.Throughput = float64(report.TotalQueries) / wall
	}
	if m, err := fetchMetrics(ctx, client, base); err == nil {
		report.Metrics = m
	}
	return report, fpErr
}

// rowFingerprint hashes a result's schema and rows.
func rowFingerprint(r *wire.Result) string {
	h := fnv.New64a()
	io.WriteString(h, wire.Fingerprint(r))
	return fmt.Sprintf("%016x", h.Sum64())
}

// runQuery submits one statement and parses the response.
func runQuery(ctx context.Context, client *http.Client, base string, tenant *LoadTenant, q string, prepare bool) sample {
	s := sample{tenant: tenant.Name, query: q}
	body, _ := json.Marshal(QueryRequest{SQL: q, Prepare: prepare})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sql", bytes.NewReader(body))
	if err != nil {
		s.err = err
		return s
	}
	req.Header.Set("Authorization", "Bearer "+tenant.APIKey)
	req.Header.Set("Content-Type", "application/json")
	started := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		s.err = err
		return s
	}
	defer resp.Body.Close()
	s.wallMS = time.Since(started).Seconds() * 1e3
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		s.err = fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		return s
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		s.err = err
		return s
	}
	s.resp = &qr
	s.modelMS = qr.ModelMS
	s.cacheHit = qr.CacheHit
	return s
}

// postGang announces or withdraws wave slots.
func postGang(ctx context.Context, client *http.Client, base, apiKey string, g GangRequest) error {
	body, _ := json.Marshal(g)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/gang", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+apiKey)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// fetchMetrics pulls the server's /metrics snapshot.
func fetchMetrics(ctx context.Context, client *http.Client, base string) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// VerifyAgainstEngine replays every distinct statement of a report on a
// reference engine directly through the library API and compares row
// fingerprints — the served rows must be row-for-row identical to
// direct execution. The reference engine must hold the same catalog the
// daemon served.
func VerifyAgainstEngine(report *Report, eng *sql.Engine) error {
	sess := eng.Session()
	for q, fp := range report.Fingerprints {
		res, err := sess.Query(context.Background(), q)
		if err != nil {
			return fmt.Errorf("serve: verify %q: %w", q, err)
		}
		if ref := rowFingerprint(wire.FromResult(res)); ref != fp {
			return fmt.Errorf("serve: verify %q: served rows differ from direct library execution (%s != %s)", q, fp, ref)
		}
	}
	return nil
}

// Summary renders the report as a human-readable block.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d sessions x %d queries against %s — %d ok, %d errors in %.2fs (%.0f q/s)\n",
		r.Sessions, r.QueriesPerSession, r.Target, r.TotalQueries, r.TotalErrors, r.WallSeconds, r.Throughput)
	names := make([]string, 0, len(r.Tenants))
	for n := range r.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := r.Tenants[n]
		fmt.Fprintf(&b, "  %-8s %4d sessions %6d q (%d err, %d cache hits)\n", n, t.Sessions, t.Queries, t.Errors, t.CacheHits)
		fmt.Fprintf(&b, "           wall  p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms\n", t.Wall.P50, t.Wall.P95, t.Wall.P99)
		fmt.Fprintf(&b, "           model p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms\n", t.Model.P50, t.Model.P95, t.Model.P99)
		fmt.Fprintf(&b, "           net %.0f B in %.3fs, compute %.3fs (%.3fs overlapped), spill %.3fs\n",
			t.NetBytes, t.NetSeconds, t.ComputeSeconds, t.OverlapSeconds, t.SpillSeconds)
	}
	if r.Metrics != nil {
		pc := r.Metrics.PlanCache
		fmt.Fprintf(&b, "  plan cache: %d/%d entries, %d hits, %d misses, %d invalidations\n",
			pc.Entries, pc.Capacity, pc.Hits, pc.Misses, pc.Invalidations)
		if r.Metrics.Fabric != nil && r.Metrics.Fabric.Admission != nil {
			a := r.Metrics.Fabric.Admission
			fmt.Fprintf(&b, "  fabric: %d rounds, peak %d queries / %d flows, %.0f bytes",
				a.Rounds, a.PeakParties, a.PeakFlows, a.Bytes)
			if len(a.ClassBytes) > 0 {
				classes := make([]string, 0, len(a.ClassBytes))
				for c := range a.ClassBytes {
					classes = append(classes, c)
				}
				sort.Strings(classes)
				b.WriteString("; per-class:")
				for _, c := range classes {
					name := c
					if name == "" {
						name = "best-effort"
					}
					fmt.Fprintf(&b, " %s=%.0f", name, a.ClassBytes[c])
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
