package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve/wire"
)

// StreamLoadConfig drives one streaming run against a serving front
// door: register a fresh events relation, hold a continuous-query
// subscription open, pump batches through /v1/stream, close, and
// report ingest throughput plus window freshness.
type StreamLoadConfig struct {
	// BaseURL targets a running daemon; leave empty and set Handler to
	// drive an in-process server (as LoadConfig).
	BaseURL string
	Handler http.Handler
	Client  *http.Client
	// APIKey authenticates the run (default gold-key, the demo tenant).
	APIKey string
	// Table names the streamed relation (default "events"; registered
	// fresh at the start of the run with schema k string, t int, v int).
	Table string
	// Events is the total event count (default 100000).
	Events int
	// Batch is the events-per-request ingest granularity (default 500).
	Batch int
	// Keys is the group-key cardinality (default 50).
	Keys int
	// Window shapes the subscription (defaults: time_col t, size 1000,
	// slide 250, lateness 0 — events arrive in time order).
	Window WindowRequest
	// SQL is the continuous query (default per-key SUM/COUNT over Table).
	SQL string
}

// StreamLoadReport is the machine-readable result (the BENCH artifact
// format for the streaming smoke).
type StreamLoadReport struct {
	Table   string  `json:"table"`
	Events  int     `json:"events"`
	Batches int     `json:"batches"`
	Bytes   float64 `json:"bytes"`
	// IngestWallMS is the client-observed wall time from the first batch
	// post to the close ack; IngestEventsPerSec is Events over that wall.
	IngestWallMS       float64 `json:"ingest_wall_ms"`
	IngestEventsPerSec float64 `json:"ingest_events_per_sec"`
	// IngestNetSeconds is the modeled fabric time the ingest-class flows
	// took (0 on single-node engines).
	IngestNetSeconds float64 `json:"ingest_net_seconds"`
	// Windows/Late/Dropped are the subscription's terminal accounting.
	Windows int64 `json:"windows"`
	Late    int64 `json:"late"`
	Dropped int64 `json:"dropped"`
	// Freshness quantiles are engine-side emission lag: batch arrival to
	// window handoff, in milliseconds.
	FreshnessP50MS float64 `json:"freshness_p50_ms"`
	FreshnessP95MS float64 `json:"freshness_p95_ms"`
	FreshnessMaxMS float64 `json:"freshness_max_ms"`
}

// Summary renders the human-readable report.
func (r *StreamLoadReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream %s: %d events in %d batches (%.0f bytes)\n",
		r.Table, r.Events, r.Batches, r.Bytes)
	fmt.Fprintf(&b, "  ingest: %.1f ms wall, %.0f events/s", r.IngestWallMS, r.IngestEventsPerSec)
	if r.IngestNetSeconds > 0 {
		fmt.Fprintf(&b, ", %.3fs modeled fabric time (ingest class)", r.IngestNetSeconds)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  windows: %d emitted (%d late, %d dropped)\n", r.Windows, r.Late, r.Dropped)
	fmt.Fprintf(&b, "  freshness: p50 %.2f ms, p95 %.2f ms, max %.2f ms\n",
		r.FreshnessP50MS, r.FreshnessP95MS, r.FreshnessMaxMS)
	return b.String()
}

// RunStreamLoad executes one streaming run. The subscription is opened
// before the first batch, so windows emit live as the watermark passes
// them while ingest is still running (in BaseURL mode; the in-process
// transport buffers the response but the engine-side subscription still
// runs live); closing the stream flushes the tail and terminates it.
func RunStreamLoad(ctx context.Context, cfg StreamLoadConfig) (*StreamLoadReport, error) {
	if cfg.APIKey == "" {
		cfg.APIKey = "gold-key"
	}
	if cfg.Table == "" {
		cfg.Table = "events"
	}
	if cfg.Events <= 0 {
		cfg.Events = 100_000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 500
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 50
	}
	if cfg.Window.TimeCol == "" {
		cfg.Window.TimeCol = "t"
	}
	if cfg.Window.Size <= 0 {
		cfg.Window.Size = 1000
		cfg.Window.Slide = 250
	}
	if cfg.SQL == "" {
		cfg.SQL = fmt.Sprintf("SELECT k, SUM(v) AS total, COUNT(*) AS n FROM %s GROUP BY k", cfg.Table)
	}
	lc := LoadConfig{BaseURL: cfg.BaseURL, Handler: cfg.Handler, Client: cfg.Client, Sessions: 2}
	client, base, err := lc.client()
	if err != nil {
		return nil, err
	}

	// A fresh relation every run keeps the harness re-runnable against a
	// long-lived daemon (a closed stream stays closed).
	if err := postJSON(ctx, client, base+"/v1/tables", cfg.APIKey, TableRequest{
		Name: cfg.Table,
		Schema: []wire.Column{
			{Name: "k", Type: "string"},
			{Name: "t", Type: "int"},
			{Name: "v", Type: "int"},
		},
	}, nil); err != nil {
		return nil, err
	}

	// The subscriber holds the NDJSON response open for the whole run
	// and parses it down to the terminal stats line.
	type subResult struct {
		windows int
		end     *StreamEnd
		err     error
	}
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	subCh := make(chan subResult, 1)
	go func() {
		n, end, err := runSubscriber(subCtx, client, base, cfg)
		subCh <- subResult{windows: n, end: end, err: err}
	}()

	rep := &StreamLoadReport{Table: cfg.Table, Events: cfg.Events}
	start := time.Now()
	for off := 0; off < cfg.Events; off += cfg.Batch {
		n := cfg.Batch
		if off+n > cfg.Events {
			n = cfg.Events - off
		}
		rows := make([][]any, n)
		for i := 0; i < n; i++ {
			g := off + i
			rows[i] = []any{fmt.Sprintf("k%03d", g%cfg.Keys), g, g % 97}
		}
		var ack IngestResponse
		if err := postJSON(ctx, client, base+"/v1/stream", cfg.APIKey,
			StreamRequest{Table: cfg.Table, Rows: rows}, &ack); err != nil {
			return nil, fmt.Errorf("serve: ingest batch at %d: %w", off, err)
		}
		rep.Batches++
		rep.Bytes += ack.Bytes
		rep.IngestNetSeconds += ack.NetSeconds
	}
	if err := postJSON(ctx, client, base+"/v1/stream", cfg.APIKey,
		StreamRequest{Table: cfg.Table, Close: true}, nil); err != nil {
		return nil, fmt.Errorf("serve: close stream: %w", err)
	}
	rep.IngestWallMS = time.Since(start).Seconds() * 1e3
	if rep.IngestWallMS > 0 {
		rep.IngestEventsPerSec = float64(cfg.Events) / (rep.IngestWallMS / 1e3)
	}

	sub := <-subCh
	if sub.err != nil {
		return nil, fmt.Errorf("serve: subscription: %w", sub.err)
	}
	st := sub.end.Stats
	if st == nil {
		return nil, fmt.Errorf("serve: subscription ended without stats (%d windows)", sub.windows)
	}
	if st.Events != int64(cfg.Events) {
		return nil, fmt.Errorf("serve: subscription saw %d events, ingested %d", st.Events, cfg.Events)
	}
	if int64(sub.windows) != st.Windows {
		return nil, fmt.Errorf("serve: read %d window lines, stats say %d", sub.windows, st.Windows)
	}
	rep.Windows, rep.Late, rep.Dropped = st.Windows, st.Late, st.Dropped
	rep.FreshnessP50MS = st.FreshnessP50 * 1e3
	rep.FreshnessP95MS = st.FreshnessP95 * 1e3
	rep.FreshnessMaxMS = st.FreshnessMax * 1e3
	return rep, nil
}

// runSubscriber posts the subscription and consumes its NDJSON lines
// until the terminal StreamEnd.
func runSubscriber(ctx context.Context, client *http.Client, base string, cfg StreamLoadConfig) (int, *StreamEnd, error) {
	body, err := json.Marshal(StreamRequest{SQL: cfg.SQL, Window: &cfg.Window})
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Authorization", "Bearer "+cfg.APIKey)
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	windows := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return windows, nil, fmt.Errorf("stream ended without a terminal line")
			}
			return windows, nil, err
		}
		var end StreamEnd
		if json.Unmarshal(raw, &end) == nil && end.Done {
			if end.Error != "" {
				return windows, &end, fmt.Errorf("subscription error: %s", end.Error)
			}
			return windows, &end, nil
		}
		windows++
	}
}

// postJSON posts body and decodes a JSON response into out (when
// non-nil), turning non-2xx statuses into errors.
func postJSON(ctx context.Context, client *http.Client, url, apiKey string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+apiKey)
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
