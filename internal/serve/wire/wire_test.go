package wire

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/sql"
)

// TestCellTypes: each relational type maps to its JSON scalar.
func TestCellTypes(t *testing.T) {
	if v := Cell(relational.IntV(42)); v != int64(42) {
		t.Fatalf("int cell = %v (%T)", v, v)
	}
	if v := Cell(relational.FloatV(2.5)); v != 2.5 {
		t.Fatalf("float cell = %v (%T)", v, v)
	}
	if v := Cell(relational.StringV("x")); v != "x" {
		t.Fatalf("string cell = %v (%T)", v, v)
	}
}

// TestFromResultRoundTrip: a distributed query's full report survives a
// JSON round trip — rows stay row-for-row identical (same fingerprint)
// and the stats envelope keeps its numbers.
func TestFromResultRoundTrip(t *testing.T) {
	cfg := sql.DefaultConfig()
	cfg.Distributed = true
	cfg.Shards = 2
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sql.RegisterDemo(eng, 42, 2000, 50)
	res, err := eng.Session().Query(context.Background(),
		"SELECT c.segment, SUM(s.price) AS revenue FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY revenue DESC")
	if err != nil {
		t.Fatal(err)
	}
	w := FromResult(res)
	if w.RowCount != res.Rows.Len() || len(w.Rows) != w.RowCount {
		t.Fatalf("row counts: wire %d/%d, library %d", w.RowCount, len(w.Rows), res.Rows.Len())
	}
	if len(w.Columns) != 2 || w.Columns[0].Type != "string" || w.Columns[1].Type != "float" {
		t.Fatalf("columns = %+v", w.Columns)
	}
	if w.Net == nil || w.Net.Shards != 2 || w.Net.BytesShuffled <= 0 || w.Net.WallSeconds <= 0 {
		t.Fatalf("net stats = %+v", w.Net)
	}
	if w.Admission == nil || w.Admission.RoundsJoined == 0 {
		t.Fatalf("admission stats = %+v", w.Admission)
	}
	if w.ModelSeconds() != w.Net.WallSeconds+w.Net.SpillSeconds {
		t.Fatal("ModelSeconds != wall + spill")
	}

	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(&back) != Fingerprint(w) {
		t.Fatal("fingerprint changed across the JSON round trip")
	}
	if back.Net.BytesShuffled != w.Net.BytesShuffled || back.Net.WallSeconds != w.Net.WallSeconds {
		t.Fatal("net stats changed across the JSON round trip")
	}
}

// TestFingerprintSensitivity: the fingerprint must distinguish row
// order, cell values, and schema.
func TestFingerprintSensitivity(t *testing.T) {
	base := &Result{
		Columns: []Column{{Name: "a", Type: "int"}},
		Rows:    [][]any{{int64(1)}, {int64(2)}},
	}
	same := &Result{
		Columns: []Column{{Name: "a", Type: "int"}},
		Rows:    [][]any{{int64(1)}, {int64(2)}},
	}
	if Fingerprint(base) != Fingerprint(same) {
		t.Fatal("identical results, different fingerprints")
	}
	swapped := &Result{Columns: base.Columns, Rows: [][]any{{int64(2)}, {int64(1)}}}
	if Fingerprint(base) == Fingerprint(swapped) {
		t.Fatal("row order not fingerprinted")
	}
	renamed := &Result{Columns: []Column{{Name: "b", Type: "int"}}, Rows: base.Rows}
	if Fingerprint(base) == Fingerprint(renamed) {
		t.Fatal("schema not fingerprinted")
	}
}

// TestIntCellsStayExact: Int cells marshal as JSON integers, not
// floats, so int64 values round-trip exactly in the canonical encoding.
func TestIntCellsStayExact(t *testing.T) {
	rel := relational.NewRelation("t", relational.Schema{{Name: "n", Type: relational.Int}})
	_ = rel.Append(relational.Row{relational.IntV(1 << 40)})
	w := &Result{Columns: []Column{{Name: "n", Type: "int"}}, Rows: Rows(rel), RowCount: 1}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1099511627776") {
		t.Fatalf("int cell lost exactness: %s", data)
	}
}
