// Package wire is the canonical JSON encoding of the engine's query
// results and execution reports. Every surface that speaks JSON — the
// rethinkd daemon's responses, the rethink-load harness's latency
// reports, rethink-sql's -json mode — converts through these types, so
// the wire format has exactly one source of truth and a stats field
// added here shows up everywhere at once.
//
// The conversions are lossy only in representation: every number the
// library-level reports carry (dist.QueryStats, netsim stats,
// relational.SpillStats, exec.DeviceStats) maps to one JSON field of the
// same meaning and unit. Rows encode as typed JSON scalars — Int columns
// as JSON numbers (int64-exact), Float as numbers, String as strings —
// in schema column order.
package wire

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/lifecycle"
	"repro/internal/netsim"
	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Column is one result-schema column.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"` // "int", "float", "string"
}

// Result is one executed query on the wire: the materialized rows plus
// the full execution report of sql.Result.
type Result struct {
	Columns []Column `json:"columns"`
	// Rows holds one []any per row: int64, float64 or string cells in
	// column order.
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	Steps    []string `json:"steps,omitempty"`
	// Net is the simulated-network report (distributed runs only).
	Net *NetStats `json:"net,omitempty"`
	// Admission is the query's shared-fabric admission report
	// (distributed runs only).
	Admission *PartyStats `json:"admission,omitempty"`
	// Devices is the heterogeneous-placement report (engines with a
	// device set only); Placement names the policy that placed morsels.
	Devices   []DeviceStats `json:"devices,omitempty"`
	Placement string        `json:"placement,omitempty"`
	// Spill is the out-of-core report (budgeted runs only).
	Spill *SpillStats `json:"spill,omitempty"`
	// Stream is the streaming report (results assembled by the streaming
	// subsystem only).
	Stream *StreamStats `json:"stream,omitempty"`
}

// StreamStats mirrors stream.Stats plus the ingest-side accounting of
// stream.IngestStats — one streaming subscription's (or source's)
// report on the wire.
type StreamStats struct {
	// Subscription side: event dispositions, emitted windows, and
	// freshness quantiles over per-window emission delay.
	Events       int64   `json:"events"`
	Filtered     int64   `json:"filtered,omitempty"`
	Late         int64   `json:"late,omitempty"`
	Dropped      int64   `json:"dropped,omitempty"`
	Windows      int64   `json:"windows"`
	FreshnessP50 float64 `json:"freshness_p50_s"`
	FreshnessP95 float64 `json:"freshness_p95_s"`
	FreshnessMax float64 `json:"freshness_max_s"`
	// Spill is the budgeted subscription's out-of-core report.
	Spill *SpillStats `json:"spill,omitempty"`
	// Ingest side (present on ingest acknowledgements).
	IngestBatches    int64   `json:"ingest_batches,omitempty"`
	IngestRows       int64   `json:"ingest_rows,omitempty"`
	IngestBytes      float64 `json:"ingest_bytes,omitempty"`
	IngestNetSeconds float64 `json:"ingest_net_seconds,omitempty"`
	IngestSeconds    float64 `json:"ingest_seconds,omitempty"`
}

// FromStream converts a subscription report (nil in, nil out).
func FromStream(s *stream.Stats) *StreamStats {
	if s == nil {
		return nil
	}
	return &StreamStats{
		Events:       s.Events,
		Filtered:     s.Filtered,
		Late:         s.Late,
		Dropped:      s.Dropped,
		Windows:      s.Windows,
		FreshnessP50: s.FreshnessP50,
		FreshnessP95: s.FreshnessP95,
		FreshnessMax: s.FreshnessMax,
		Spill:        FromSpill(s.Spill),
	}
}

// FromIngest converts a source's ingest accounting.
func FromIngest(s stream.IngestStats) *StreamStats {
	return &StreamStats{
		IngestBatches:    s.Batches,
		IngestRows:       s.Rows,
		IngestBytes:      s.Bytes,
		IngestNetSeconds: s.NetSeconds,
		IngestSeconds:    s.WallSeconds,
	}
}

// NetStats mirrors dist.QueryStats.
type NetStats struct {
	Shards         int         `json:"shards"`
	Topology       string      `json:"topology"`
	Flows          int         `json:"flows"`
	BytesShuffled  float64     `json:"bytes_shuffled"`
	NetSeconds     float64     `json:"net_seconds"`
	ComputeSeconds float64     `json:"compute_seconds,omitempty"`
	OverlapSeconds float64     `json:"overlap_seconds,omitempty"`
	WallSeconds    float64     `json:"wall_seconds"`
	SpillSeconds   float64     `json:"spill_seconds,omitempty"`
	MeanLinkUtil   float64     `json:"mean_link_util"`
	MaxLinkUtil    float64     `json:"max_link_util"`
	// Recovery fields are nonzero only when the elastic lifecycle layer
	// had to repair the query: modeled seconds spent re-shipping and
	// re-deriving lost data, fragments re-dispatched off a dead host, and
	// speculative duplicates that beat their straggling primaries.
	RecoverySeconds  float64     `json:"recovery_seconds,omitempty"`
	RetriedFragments int         `json:"retried_fragments,omitempty"`
	SpeculativeWins  int         `json:"speculative_wins,omitempty"`
	Phases           []PhaseStat `json:"phases,omitempty"`
}

// PhaseStat mirrors dist.PhaseStat.
type PhaseStat struct {
	Name           string  `json:"name"`
	Flows          int     `json:"flows"`
	Bytes          float64 `json:"bytes"`
	Seconds        float64 `json:"seconds"`
	Chunks         int     `json:"chunks,omitempty"`
	ComputeSeconds float64 `json:"compute_seconds,omitempty"`
	OverlapSeconds float64 `json:"overlap_seconds,omitempty"`
}

// PartyStats mirrors netsim.PartyStats — one query's admission view.
type PartyStats struct {
	RoundsJoined       int     `json:"rounds_joined"`
	BarrierWaitSeconds float64 `json:"barrier_wait_seconds"`
	Class              string  `json:"class,omitempty"`
	Weight             float64 `json:"weight"`
	SubRounds          int     `json:"sub_rounds,omitempty"`
}

// SpillStats mirrors relational.SpillStats.
type SpillStats struct {
	Tier         string  `json:"tier"`
	Partitions   int     `json:"partitions"`
	SpilledBytes int64   `json:"spilled_bytes"`
	WriteSeconds float64 `json:"write_seconds"`
	ReadSeconds  float64 `json:"read_seconds"`
	EnergyJ      float64 `json:"energy_j"`
	MaxDepth     int     `json:"max_depth"`
}

// DeviceStats mirrors exec.DeviceStats.
type DeviceStats struct {
	Device          string  `json:"device"`
	Style           string  `json:"style"`
	Morsels         int     `json:"morsels"`
	Rows            int64   `json:"rows"`
	Seconds         float64 `json:"seconds"`
	TransferSeconds float64 `json:"transfer_seconds"`
	LaunchSeconds   float64 `json:"launch_seconds"`
	SetupSeconds    float64 `json:"setup_seconds"`
	EnergyJ         float64 `json:"energy_j"`
	QueueWaits      int     `json:"queue_waits,omitempty"`
	QueueSeconds    float64 `json:"queue_seconds,omitempty"`
}

// AdmissionStats mirrors netsim.AdmissionStats — the fabric-wide
// aggregate across every round.
type AdmissionStats struct {
	Rounds            int                `json:"rounds"`
	EagerRounds       int                `json:"eager_rounds,omitempty"`
	PeakFlows         int                `json:"peak_flows"`
	PeakParties       int                `json:"peak_parties"`
	BusySeconds       float64            `json:"busy_seconds"`
	Bytes             float64            `json:"bytes"`
	ClassBytes        map[string]float64 `json:"class_bytes,omitempty"`
	PathOverrides     int                `json:"path_overrides,omitempty"`
	RejectedOverrides int                `json:"rejected_overrides,omitempty"`
}

// FabricMetrics is the operational fabric view a daemon's /metrics
// endpoint reports: the FabricStats summary plus the raw admission
// aggregate.
type FabricMetrics struct {
	Topology     string          `json:"topology"`
	MeanLinkUtil float64         `json:"mean_link_util"`
	MaxLinkUtil  float64         `json:"max_link_util"`
	Admission    *AdmissionStats `json:"admission"`
}

// ClusterHealth mirrors lifecycle.Health — the elastic-cluster view a
// daemon's /metrics endpoint reports when the lifecycle layer is active.
type ClusterHealth struct {
	Generation  int `json:"generation"`
	Replication int `json:"replication"`
	// The membership counts are always present — a zero is a fact about
	// the cluster, not an omission.
	Workers          int     `json:"workers"`
	Live             int     `json:"live"`
	Drained          int     `json:"drained"`
	Dead             int     `json:"dead"`
	Spares           int     `json:"spares"`
	RebalancedBytes  float64 `json:"rebalanced_bytes,omitempty"`
	RebalanceSeconds float64 `json:"rebalance_seconds,omitempty"`
	RepairBytes      float64 `json:"repair_bytes,omitempty"`
	RepairSeconds    float64 `json:"repair_seconds,omitempty"`
	Repairs          int     `json:"repairs,omitempty"`
	EventsFired      int     `json:"events_fired"`
	EventsTotal      int     `json:"events_total"`
}

// FromHealth converts an elastic-cluster snapshot to its wire form.
func FromHealth(h lifecycle.Health) *ClusterHealth {
	return &ClusterHealth{
		Generation:       h.Generation,
		Replication:      h.Replication,
		Workers:          h.Workers,
		Live:             h.Live,
		Drained:          h.Drained,
		Dead:             h.Dead,
		Spares:           h.Spares,
		RebalancedBytes:  h.RebalancedBytes,
		RebalanceSeconds: h.RebalanceSeconds,
		RepairBytes:      h.RepairBytes,
		RepairSeconds:    h.RepairSeconds,
		Repairs:          h.Repairs,
		EventsFired:      h.EventsFired,
		EventsTotal:      h.EventsTotal,
	}
}

// Cell converts one relational value to its JSON scalar.
func Cell(v relational.Value) any {
	switch v.T {
	case relational.Int:
		return v.I
	case relational.Float:
		return v.F
	default:
		return v.S
	}
}

// Rows converts a relation's rows to wire cells in schema order.
func Rows(rel *relational.Relation) [][]any {
	out := make([][]any, rel.Len())
	for i, row := range rel.Rows {
		cells := make([]any, len(row))
		for j, v := range row {
			cells[j] = Cell(v)
		}
		out[i] = cells
	}
	return out
}

// Fingerprint renders the wire rows as one deterministic string —
// the row-for-row identity check the load harness and parity tests use
// to compare server results against direct library execution. Float
// cells render with strconv-exact precision via %v on the float64.
func Fingerprint(r *Result) string {
	s := ""
	for _, c := range r.Columns {
		s += c.Name + ":" + c.Type + ";"
	}
	s += "\n"
	for _, row := range r.Rows {
		for _, cell := range row {
			s += fmt.Sprintf("%v|", cell)
		}
		s += "\n"
	}
	return s
}

// FromResult converts a library result to its wire form.
func FromResult(res *sql.Result) *Result {
	out := &Result{
		Rows:      Rows(res.Rows),
		RowCount:  res.Rows.Len(),
		Steps:     res.Steps,
		Net:       FromQueryStats(res.Net),
		Admission: FromParty(res.Admission),
		Devices:   FromDevices(res.Devices),
		Placement: res.Placement,
		Spill:     FromSpill(res.Spill),
		Stream:    FromStream(res.Stream),
	}
	out.Columns = Columns(res.Rows.Schema)
	return out
}

// Columns converts a relational schema to its wire form.
func Columns(schema relational.Schema) []Column {
	out := make([]Column, len(schema))
	for i, c := range schema {
		out[i] = Column{Name: c.Name, Type: c.Type.String()}
	}
	return out
}

// FromQueryStats converts the distributed network report (nil in, nil
// out).
func FromQueryStats(s *dist.QueryStats) *NetStats {
	if s == nil {
		return nil
	}
	out := &NetStats{
		Shards:         s.Shards,
		Topology:       s.Topology,
		Flows:          s.Flows,
		BytesShuffled:  s.BytesShuffled,
		NetSeconds:     s.NetSeconds,
		ComputeSeconds: s.ComputeSeconds,
		OverlapSeconds: s.OverlapSeconds,
		WallSeconds:    s.WallSeconds(),
		SpillSeconds:   s.SpillSeconds,
		MeanLinkUtil:   s.MeanLinkUtil,
		MaxLinkUtil:    s.MaxLinkUtil,

		RecoverySeconds:  s.RecoverySeconds,
		RetriedFragments: s.RetriedFragments,
		SpeculativeWins:  s.SpeculativeWins,
	}
	for _, p := range s.Phases {
		out.Phases = append(out.Phases, PhaseStat{
			Name: p.Name, Flows: p.Flows, Bytes: p.Bytes, Seconds: p.Seconds,
			Chunks: p.Chunks, ComputeSeconds: p.ComputeSeconds, OverlapSeconds: p.OverlapSeconds,
		})
	}
	return out
}

// FromParty converts a query's admission report (nil in, nil out).
func FromParty(s *netsim.PartyStats) *PartyStats {
	if s == nil {
		return nil
	}
	return &PartyStats{
		RoundsJoined:       s.RoundsJoined,
		BarrierWaitSeconds: s.BarrierWaitSeconds,
		Class:              s.Class,
		Weight:             s.Weight,
		SubRounds:          s.SubRounds,
	}
}

// FromSpill converts an out-of-core report (nil in, nil out).
func FromSpill(s *relational.SpillStats) *SpillStats {
	if s == nil {
		return nil
	}
	return &SpillStats{
		Tier:         s.Tier,
		Partitions:   s.Partitions,
		SpilledBytes: s.SpilledBytes,
		WriteSeconds: s.WriteSeconds,
		ReadSeconds:  s.ReadSeconds,
		EnergyJ:      s.EnergyJ,
		MaxDepth:     s.MaxDepth,
	}
}

// FromDevices converts a heterogeneous-placement report.
func FromDevices(ds []exec.DeviceStats) []DeviceStats {
	if len(ds) == 0 {
		return nil
	}
	out := make([]DeviceStats, len(ds))
	for i, d := range ds {
		out[i] = DeviceStats{
			Device: d.Device, Style: d.Style, Morsels: d.Morsels, Rows: d.Rows,
			Seconds: d.Seconds, TransferSeconds: d.TransferSeconds,
			LaunchSeconds: d.LaunchSeconds, SetupSeconds: d.SetupSeconds,
			EnergyJ: d.EnergyJ, QueueWaits: d.QueueWaits, QueueSeconds: d.QueueSeconds,
		}
	}
	return out
}

// FromAdmission converts the fabric-wide admission aggregate.
func FromAdmission(a netsim.AdmissionStats) *AdmissionStats {
	return &AdmissionStats{
		Rounds:            a.Rounds,
		EagerRounds:       a.EagerRounds,
		PeakFlows:         a.PeakFlows,
		PeakParties:       a.PeakParties,
		BusySeconds:       a.BusySeconds,
		Bytes:             a.Bytes,
		ClassBytes:        a.ClassBytes,
		PathOverrides:     a.PathOverrides,
		RejectedOverrides: a.RejectedOverrides,
	}
}

// FromFabric converts the operational fabric view: the summary stats
// plus the raw admission aggregate.
func FromFabric(fs *dist.FabricStats, adm netsim.AdmissionStats) *FabricMetrics {
	if fs == nil {
		return nil
	}
	return &FabricMetrics{
		Topology:     fs.Topology,
		MeanLinkUtil: fs.MeanLinkUtil,
		MaxLinkUtil:  fs.MaxLinkUtil,
		Admission:    FromAdmission(adm),
	}
}

// ModelSeconds is the query's modeled service time: the simulated
// movement-plus-compute critical path of its distributed phases plus the
// modeled spill I/O. Zero for single-node runs (their cost is real CPU,
// not simulated). The load harness reports latency quantiles over this
// — it is where a 3:1 fabric weight actually shows up, since barrier
// wall-clock waits are shared by construction.
func (r *Result) ModelSeconds() float64 {
	if r.Net == nil {
		return 0
	}
	return r.Net.WallSeconds + r.Net.SpillSeconds
}
