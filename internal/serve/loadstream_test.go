package serve

import (
	"context"
	"testing"
)

// TestStreamLoadInProc: the streaming harness end to end over the
// in-process transport, twice — the second run exercises the
// re-register-reopens-the-stream path against a daemon whose previous
// events stream was closed.
func TestStreamLoadInProc(t *testing.T) {
	srv := streamServer(t, DefaultTenants())
	for run := 0; run < 2; run++ {
		rep, err := RunStreamLoad(context.Background(), StreamLoadConfig{
			Handler: srv.Handler(),
			Events:  5000,
			Batch:   250,
			Window:  WindowRequest{TimeCol: "t", Size: 500, Slide: 100},
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if rep.Batches != 20 || rep.Events != 5000 {
			t.Fatalf("run %d: report = %+v", run, rep)
		}
		if rep.Windows < 40 {
			t.Fatalf("run %d: only %d windows (size 500 slide 100 over t=0..4999)", run, rep.Windows)
		}
		if rep.Dropped != 0 || rep.Late != 0 {
			t.Fatalf("run %d: in-order feed dropped %d late %d", run, rep.Dropped, rep.Late)
		}
		if rep.IngestEventsPerSec <= 0 || rep.Bytes <= 0 {
			t.Fatalf("run %d: throughput missing: %+v", run, rep)
		}
		if rep.IngestNetSeconds <= 0 {
			t.Fatalf("run %d: distributed ingest should bill fabric time", run)
		}
		if rep.FreshnessP95MS < 0 || rep.FreshnessMaxMS < rep.FreshnessP95MS {
			t.Fatalf("run %d: freshness quantiles inconsistent: %+v", run, rep)
		}
	}
}
